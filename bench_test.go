package rfipad

// One benchmark per table and figure of the paper's evaluation (§V),
// plus the DESIGN.md ablations and micro-benchmarks of the pipeline's
// hot paths. The table/figure benches print the regenerated rows on
// their first iteration; run
//
//	go test -bench=. -benchmem
//
// for the quick pass, or cmd/rfipad-bench -full for paper-scale sample
// sizes.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/dsp"
	"rfipad/internal/engine"
	"rfipad/internal/experiments"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
)

// benchCfg keeps the per-figure benches to a few seconds each.
func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Trials = 2
	cfg.Groups = 2
	cfg.Parallelism = 4
	return cfg
}

var benchPrintOnce sync.Map

// runExperiment executes the named experiment b.N times and prints the
// regenerated table once.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, ok := experiments.Run(name, benchCfg())
		if !ok {
			b.Fatalf("unknown experiment %q", name)
		}
		if _, printed := benchPrintOnce.LoadOrStore(name, true); !printed {
			b.Logf("\n%s", res)
		}
	}
}

// Evaluation tables and figures (§V).

func BenchmarkFig02ChannelTraces(b *testing.B)    { runExperiment(b, "fig02") }
func BenchmarkFig04TagDiversity(b *testing.B)     { runExperiment(b, "fig04") }
func BenchmarkFig05DeviationBias(b *testing.B)    { runExperiment(b, "fig05") }
func BenchmarkFig06Unwrap(b *testing.B)           { runExperiment(b, "fig06") }
func BenchmarkFig07GrayMaps(b *testing.B)         { runExperiment(b, "fig07") }
func BenchmarkFig08PhaseSymmetry(b *testing.B)    { runExperiment(b, "fig08") }
func BenchmarkFig11PairInterference(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12ArrayShadowing(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkDeploymentGeometry(b *testing.B)    { runExperiment(b, "geometry") }
func BenchmarkTable1LOSvsNLOS(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkFig16Environments(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17TxPower(b *testing.B)          { runExperiment(b, "fig17") }
func BenchmarkFig18ReaderAngle(b *testing.B)      { runExperiment(b, "fig18") }
func BenchmarkFig19ReaderDistance(b *testing.B)   { runExperiment(b, "fig19") }
func BenchmarkFig20UserDiversity(b *testing.B)    { runExperiment(b, "fig20") }
func BenchmarkFig21StrokeTimeCDF(b *testing.B)    { runExperiment(b, "fig21") }
func BenchmarkFig22Segmentation(b *testing.B)     { runExperiment(b, "fig22") }
func BenchmarkFig23LetterAccuracy(b *testing.B)   { runExperiment(b, "fig23") }
func BenchmarkFig24ResponseTime(b *testing.B)     { runExperiment(b, "fig24") }
func BenchmarkFig25KinectComparison(b *testing.B) { runExperiment(b, "fig25") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationAccumulator(b *testing.B)  { runExperiment(b, "ablation-accumulator") }
func BenchmarkAblationSuppression(b *testing.B)  { runExperiment(b, "ablation-suppression") }
func BenchmarkAblationSegmentation(b *testing.B) { runExperiment(b, "ablation-segmentation") }
func BenchmarkAblationWholeLetter(b *testing.B)  { runExperiment(b, "ablation-wholeletter") }
func BenchmarkAblationFastMAC(b *testing.B)      { runExperiment(b, "ablation-fastmac") }
func BenchmarkAblationHopping(b *testing.B)      { runExperiment(b, "ablation-hopping") }
func BenchmarkMotionConfusion(b *testing.B)      { runExperiment(b, "confusion") }

// Micro-benchmarks of the pipeline's hot paths.

// benchCapture synthesizes one stroke capture for reuse across
// micro-bench iterations.
func benchCapture(b *testing.B) (*Simulator, *Calibration, []Reading, time.Duration) {
	b.Helper()
	sim, err := NewSimulator(SimulatorConfig{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	readings, dur := sim.PerformMotion(M(Vertical, Forward), 77)
	return sim, cal, readings, dur
}

func BenchmarkPipelineRecognizeStream(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	p := sim.NewPipeline(cal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := p.RecognizeStream(readings, nil, 0, dur+time.Second)
		if len(results) == 0 {
			b.Fatal("no spans")
		}
	}
}

func BenchmarkDisturbanceMap(b *testing.B) {
	sim, cal, readings, _ := benchCapture(b)
	_ = sim
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DisturbanceMap(readings, cal, core.DisturbanceOptions{})
	}
}

func BenchmarkSegmenter(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	_ = sim
	seg := core.NewSegmenter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spans := seg.Segment(readings, cal, 0, dur+time.Second); len(spans) == 0 {
			b.Fatal("no spans")
		}
	}
}

func BenchmarkOtsuBinarize(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, 25)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	for _, i := range []int{2, 7, 12, 17, 22} {
		vals[i] = 10 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.OtsuBinarize(vals)
	}
}

func BenchmarkPhaseUnwrap(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	phases := make([]float64, 200)
	x := 0.0
	for i := range phases {
		x += rng.Float64() * 0.4
		phases[i] = dsp.Wrap(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.Unwrap(phases)
	}
}

func BenchmarkSimulatedCapture(b *testing.B) {
	sim, _, _, _ := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.PerformMotion(M(Horizontal, Forward), int64(i))
	}
}

// BenchmarkRecognizerIngestSteadyState measures the marginal cost of
// one Ingest call with ~8 s of retained history — the steady state a
// long-running stream settles into between letters. The capture cycles
// through a quiet stream so the cost is the recognizer's own, not
// stroke recognition.
func BenchmarkRecognizerIngestSteadyState(b *testing.B) {
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		b.Fatal("no quiet capture")
	}
	rec := sim.NewRecognizer(cal)
	for _, r := range quiet {
		rec.Ingest(r)
	}
	lap := quiet[len(quiet)-1].Time + time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := quiet[i%len(quiet)]
		r.Time += lap * time.Duration(1+i/len(quiet))
		rec.Ingest(r)
	}
}

// benchStreamSource replays a pre-built capture to the engine in
// batches, unpaced, like cmd/rfipad-bench's sliceSource.
type benchStreamSource struct {
	reports []llrp.TagReport
	pos     int
}

func (s *benchStreamSource) NextReports() ([]llrp.TagReport, error) {
	const chunk = 256
	if s.pos >= len(s.reports) {
		return nil, llrp.ErrStreamEnded
	}
	end := min(s.pos+chunk, len(s.reports))
	batch := s.reports[s.pos:end]
	s.pos = end
	return batch, nil
}

func (s *benchStreamSource) Stats() llrp.SessionStats { return llrp.SessionStats{} }

// synthesizeCapture builds a full capture (static prelude + the word)
// as wire reports, the same shape internal/replay serves — rebuilt
// here because the root package cannot import replay (it imports this
// package).
func synthesizeCapture(b *testing.B, seed int64, word string) []llrp.TagReport {
	b.Helper()
	sim, err := NewSimulator(SimulatorConfig{Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	var reports []llrp.TagReport
	add := func(rs []Reading, offset time.Duration) time.Duration {
		end := offset
		for _, r := range rs {
			ts := offset + r.Time
			reports = append(reports, llrp.TagReport{
				EPC: r.EPC, AntennaID: 1, PhaseRad: r.Phase,
				RSSdBm: r.RSS, DopplerHz: r.Doppler, Timestamp: ts,
			})
			end = max(end, ts)
		}
		return end
	}
	offset := add(sim.CollectStatic(3*time.Second), 0)
	for i, ch := range word {
		rs, _, err := sim.WriteLetter(ch, seed*100+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		offset = add(rs, offset+2*time.Second)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Timestamp < reports[j].Timestamp })
	return reports
}

// BenchmarkEngineMultiStream runs 8 independent streams through the
// sharded engine; one op is a complete multi-stream run (calibration
// through final flush on every stream). b.N scaling happens on fresh
// engines so per-run metrics registries don't accumulate.
func BenchmarkEngineMultiStream(b *testing.B) {
	const streams = 8
	captures := make([][]llrp.TagReport, streams)
	total := 0
	for i := range captures {
		captures[i] = synthesizeCapture(b, int64(40+i), "HI")
		total += len(captures[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		eng := engine.New(engine.Config{Workers: 2, Obs: obs.NewRegistry()})
		var wg sync.WaitGroup
		for i := range captures {
			id := engine.StreamID(fmt.Sprintf("stream-%02d", i))
			src := &benchStreamSource{reports: captures[i]}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := eng.RunStream(id, src); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
		for _, res := range eng.Close() {
			if res.Letters != "HI" {
				b.Fatalf("stream %s recognized %q, want %q", res.ID, res.Letters, "HI")
			}
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "readings/s")
}

func BenchmarkStreamingIngest(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := sim.NewRecognizer(cal)
		for _, r := range readings {
			rec.Ingest(r)
		}
		rec.Flush(dur + 2*time.Second)
	}
}

// denseQuiet interleaves `copies` time-offset replicas of a quiet
// capture into one strictly time-increasing stream — the wire-limit
// workload where hundreds of readings land inside each segmentation
// frame, so the per-poll cost amortizes the way a saturated reader
// would amortize it. The per-copy shift exceeds the capture's
// inter-read gap so copies of neighbouring readings interleave and the
// merged stream round-robins tags, the shape a reader's inventory loop
// actually produces at the wire limit.
func denseQuiet(quiet []Reading, copies int) []Reading {
	out := make([]Reading, 0, len(quiet)*copies)
	for _, r := range quiet {
		for c := 0; c < copies; c++ {
			rc := r
			rc.Time += time.Duration(c) * 2917 * time.Microsecond
			out = append(out, rc)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	// Strict monotonicity: equal timestamps would be dropped as
	// duplicates (same tag) or force the insert path; nudge collisions
	// forward by 100 ns.
	for i := 1; i < len(out); i++ {
		if out[i].Time <= out[i-1].Time {
			out[i].Time = out[i-1].Time + 100*time.Nanosecond
		}
	}
	return out
}

// BenchmarkIngestBatch measures the columnar hot path per reading:
// steady-state IngestBatch over a dense quiet stream in 256-reading
// batches, with ~8 s of retained history cycling through trims exactly
// like the scalar steady-state bench. One op is one reading. The CI
// bench smoke gates on this benchmark reporting 0 allocs/op.
func BenchmarkIngestBatch(b *testing.B) {
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		b.Fatal("no quiet capture")
	}
	dense := denseQuiet(quiet, 16)
	rec := sim.NewRecognizer(cal)
	lap := dense[len(dense)-1].Time + time.Millisecond

	const chunk = 256
	var batch ReadingBatch
	pos, laps := 0, 0
	feed := func() int {
		end := min(pos+chunk, len(dense))
		batch.Reset()
		off := lap * time.Duration(laps)
		for _, r := range dense[pos:end] {
			r.Time += off
			batch.AppendReading(r)
		}
		rec.IngestBatch(&batch)
		n := end - pos
		pos = end
		if pos >= len(dense) {
			pos = 0
			laps++
		}
		return n
	}
	// Warm through three dense laps: buffers reach high-water capacity
	// and the history cycles through several trim/compactions.
	for l := 0; l < 3; {
		if feed(); pos == 0 {
			l++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		done += feed()
	}
}
