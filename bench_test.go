package rfipad

// One benchmark per table and figure of the paper's evaluation (§V),
// plus the DESIGN.md ablations and micro-benchmarks of the pipeline's
// hot paths. The table/figure benches print the regenerated rows on
// their first iteration; run
//
//	go test -bench=. -benchmem
//
// for the quick pass, or cmd/rfipad-bench -full for paper-scale sample
// sizes.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/dsp"
	"rfipad/internal/experiments"
)

// benchCfg keeps the per-figure benches to a few seconds each.
func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Trials = 2
	cfg.Groups = 2
	cfg.Parallelism = 4
	return cfg
}

var benchPrintOnce sync.Map

// runExperiment executes the named experiment b.N times and prints the
// regenerated table once.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, ok := experiments.Run(name, benchCfg())
		if !ok {
			b.Fatalf("unknown experiment %q", name)
		}
		if _, printed := benchPrintOnce.LoadOrStore(name, true); !printed {
			b.Logf("\n%s", res)
		}
	}
}

// Evaluation tables and figures (§V).

func BenchmarkFig02ChannelTraces(b *testing.B)    { runExperiment(b, "fig02") }
func BenchmarkFig04TagDiversity(b *testing.B)     { runExperiment(b, "fig04") }
func BenchmarkFig05DeviationBias(b *testing.B)    { runExperiment(b, "fig05") }
func BenchmarkFig06Unwrap(b *testing.B)           { runExperiment(b, "fig06") }
func BenchmarkFig07GrayMaps(b *testing.B)         { runExperiment(b, "fig07") }
func BenchmarkFig08PhaseSymmetry(b *testing.B)    { runExperiment(b, "fig08") }
func BenchmarkFig11PairInterference(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12ArrayShadowing(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkDeploymentGeometry(b *testing.B)    { runExperiment(b, "geometry") }
func BenchmarkTable1LOSvsNLOS(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkFig16Environments(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17TxPower(b *testing.B)          { runExperiment(b, "fig17") }
func BenchmarkFig18ReaderAngle(b *testing.B)      { runExperiment(b, "fig18") }
func BenchmarkFig19ReaderDistance(b *testing.B)   { runExperiment(b, "fig19") }
func BenchmarkFig20UserDiversity(b *testing.B)    { runExperiment(b, "fig20") }
func BenchmarkFig21StrokeTimeCDF(b *testing.B)    { runExperiment(b, "fig21") }
func BenchmarkFig22Segmentation(b *testing.B)     { runExperiment(b, "fig22") }
func BenchmarkFig23LetterAccuracy(b *testing.B)   { runExperiment(b, "fig23") }
func BenchmarkFig24ResponseTime(b *testing.B)     { runExperiment(b, "fig24") }
func BenchmarkFig25KinectComparison(b *testing.B) { runExperiment(b, "fig25") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationAccumulator(b *testing.B)  { runExperiment(b, "ablation-accumulator") }
func BenchmarkAblationSuppression(b *testing.B)  { runExperiment(b, "ablation-suppression") }
func BenchmarkAblationSegmentation(b *testing.B) { runExperiment(b, "ablation-segmentation") }
func BenchmarkAblationWholeLetter(b *testing.B)  { runExperiment(b, "ablation-wholeletter") }
func BenchmarkAblationFastMAC(b *testing.B)      { runExperiment(b, "ablation-fastmac") }
func BenchmarkAblationHopping(b *testing.B)      { runExperiment(b, "ablation-hopping") }
func BenchmarkMotionConfusion(b *testing.B)      { runExperiment(b, "confusion") }

// Micro-benchmarks of the pipeline's hot paths.

// benchCapture synthesizes one stroke capture for reuse across
// micro-bench iterations.
func benchCapture(b *testing.B) (*Simulator, *Calibration, []Reading, time.Duration) {
	b.Helper()
	sim, err := NewSimulator(SimulatorConfig{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	readings, dur := sim.PerformMotion(M(Vertical, Forward), 77)
	return sim, cal, readings, dur
}

func BenchmarkPipelineRecognizeStream(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	p := sim.NewPipeline(cal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := p.RecognizeStream(readings, nil, 0, dur+time.Second)
		if len(results) == 0 {
			b.Fatal("no spans")
		}
	}
}

func BenchmarkDisturbanceMap(b *testing.B) {
	sim, cal, readings, _ := benchCapture(b)
	_ = sim
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DisturbanceMap(readings, cal, core.DisturbanceOptions{})
	}
}

func BenchmarkSegmenter(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	_ = sim
	seg := core.NewSegmenter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spans := seg.Segment(readings, cal, 0, dur+time.Second); len(spans) == 0 {
			b.Fatal("no spans")
		}
	}
}

func BenchmarkOtsuBinarize(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, 25)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	for _, i := range []int{2, 7, 12, 17, 22} {
		vals[i] = 10 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.OtsuBinarize(vals)
	}
}

func BenchmarkPhaseUnwrap(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	phases := make([]float64, 200)
	x := 0.0
	for i := range phases {
		x += rng.Float64() * 0.4
		phases[i] = dsp.Wrap(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.Unwrap(phases)
	}
}

func BenchmarkSimulatedCapture(b *testing.B) {
	sim, _, _, _ := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.PerformMotion(M(Horizontal, Forward), int64(i))
	}
}

func BenchmarkStreamingIngest(b *testing.B) {
	sim, cal, readings, dur := benchCapture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := sim.NewRecognizer(cal)
		for _, r := range readings {
			rec.Ingest(r)
		}
		rec.Flush(dur + 2*time.Second)
	}
}
