package rfipad

import (
	"testing"
	"time"
)

func TestSimulatorEndToEnd(t *testing.T) {
	sim, err := NewSimulator(SimulatorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if g := sim.Grid(); g.Rows != 5 || g.Cols != 5 {
		t.Fatalf("grid = %+v", g)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Offline path.
	p := sim.NewPipeline(cal)
	want := M(Horizontal, Forward)
	readings, dur := sim.PerformMotion(want, 42)
	results := p.RecognizeStream(readings, nil, 0, dur+time.Second)
	if len(results) != 1 || !results[0].Result.Ok {
		t.Fatalf("offline recognition failed: %d results", len(results))
	}
	if got := results[0].Result.Motion; got != want {
		t.Errorf("motion = %v, want %v", got, want)
	}

	// Streaming path on a letter.
	rec := sim.NewRecognizer(cal)
	lr, ldur, err := sim.WriteLetter('T', 43)
	if err != nil {
		t.Fatal(err)
	}
	var letter rune
	ingest := func(evs []Event) {
		for _, ev := range evs {
			if ev.Kind == LetterDeduced && ev.LetterOK {
				letter = ev.Letter
			}
		}
	}
	for _, r := range lr {
		ingest(rec.Ingest(r))
	}
	ingest(rec.Flush(ldur + 2*time.Second))
	if letter != 'T' {
		t.Errorf("letter = %q, want T", letter)
	}
}

func TestSimulatorConfigValidation(t *testing.T) {
	if _, err := NewSimulator(SimulatorConfig{Placement: "sideways"}); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := NewSimulator(SimulatorConfig{Location: 9}); err == nil {
		t.Error("bad location accepted")
	}
	if _, err := NewSimulator(SimulatorConfig{Placement: LOS, Location: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestVocabularyHelpers(t *testing.T) {
	if got := len(AllMotions()); got != 13 {
		t.Errorf("AllMotions = %d", got)
	}
	strokes, ok := LetterStrokes('H')
	if !ok || len(strokes) != 3 {
		t.Errorf("LetterStrokes(H) = %d,%v", len(strokes), ok)
	}
	if _, ok := LetterStrokes('?'); ok {
		t.Error("LetterStrokes(?) should fail")
	}
	if got := len(Volunteers()); got != 10 {
		t.Errorf("Volunteers = %d", got)
	}
	if DefaultUser().Speed <= 0 {
		t.Error("DefaultUser has no speed")
	}
}

func TestTagLookups(t *testing.T) {
	sim, err := NewSimulator(SimulatorConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	epc, ok := sim.TagEPC(2, 3)
	if !ok {
		t.Fatal("TagEPC(2,3) not found")
	}
	if idx := sim.TagIndexByEPC(epc); idx != 2*5+3 {
		t.Errorf("TagIndexByEPC = %d", idx)
	}
	if _, ok := sim.TagEPC(9, 9); ok {
		t.Error("out-of-range TagEPC should fail")
	}
	if idx := sim.TagIndexByEPC(EPC{}); idx != -1 {
		t.Errorf("unknown EPC index = %d", idx)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() []Reading {
		s, err := NewSimulator(SimulatorConfig{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := s.PerformMotion(M(ArcLeft, Forward), 5)
		return r
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestWriteWordStreaming(t *testing.T) {
	sim, err := NewSimulator(SimulatorConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	readings, dur, err := sim.WriteWord("IT", 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := sim.NewRecognizer(cal)
	got := ""
	collect := func(evs []Event) {
		for _, ev := range evs {
			if ev.Kind == LetterDeduced && ev.LetterOK {
				got += string(ev.Letter)
			}
		}
	}
	for _, r := range readings {
		collect(rec.Ingest(r))
	}
	collect(rec.Flush(dur + 3*time.Second))
	if got != "IT" {
		t.Errorf("recognized %q, want IT", got)
	}
	if _, _, err := sim.WriteWord("a1", 3); err == nil {
		t.Error("invalid word accepted")
	}
}

// dropTag filters every reading of one tag out of a stream,
// simulating a detached or fully occluded tag.
func dropTag(readings []Reading, tagIndex int) []Reading {
	out := make([]Reading, 0, len(readings))
	for _, r := range readings {
		if r.TagIndex == tagIndex {
			continue
		}
		out = append(out, r)
	}
	return out
}

func TestDegradedGridRecognizesAllShapes(t *testing.T) {
	// A 5×5 array with one dead tag in the middle of the board must
	// still calibrate (the tag is flagged dead, not fatal) and
	// classify all 7 basic motions: the disturbance image interpolates
	// the dead cell from its live neighbors before binarization.
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const deadIdx = 2*5 + 2 // centre tag — the harshest hole

	cal, err := Calibrate(dropTag(sim.CollectStatic(3*time.Second), deadIdx), sim.Grid().NumTags())
	if err != nil {
		t.Fatalf("degraded calibration failed: %v", err)
	}
	if cal.DeadCount() != 1 || !cal.IsDead(deadIdx) {
		t.Fatalf("dead count = %d, IsDead(%d) = %v", cal.DeadCount(), deadIdx, cal.IsDead(deadIdx))
	}

	p := sim.NewPipeline(cal)
	shapes := []Shape{Click, Horizontal, Vertical, SlashUp, SlashDown, ArcLeft, ArcRight}
	for _, shape := range shapes {
		want := M(shape, Forward)
		t.Run(want.String(), func(t *testing.T) {
			readings, dur := sim.PerformMotion(want, 42)
			readings = dropTag(readings, deadIdx)
			results := p.RecognizeStream(readings, nil, 0, dur+time.Second)
			var got []Motion
			for _, res := range results {
				if res.Result.Ok {
					got = append(got, res.Result.Motion)
				}
			}
			if len(got) != 1 {
				t.Fatalf("recognized %d motions, want 1: %v", len(got), got)
			}
			if got[0].Shape != shape {
				t.Errorf("shape = %v, want %v", got[0].Shape, shape)
			}
		})
	}
}

func TestStreamingToleratesReplayArtifacts(t *testing.T) {
	// Feed a letter through the streaming recognizer with the
	// artifacts a reconnecting transport produces — duplicated batches
	// and modest reordering — and require the same letter out.
	sim, err := NewSimulator(SimulatorConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	readings, dur, err := sim.WriteLetter('L', 9)
	if err != nil {
		t.Fatal(err)
	}

	// Duplicate a slab of the stream (replay overlap) and swap
	// adjacent readings here and there (frame reordering).
	mangled := make([]Reading, 0, len(readings)*5/4)
	for i, r := range readings {
		mangled = append(mangled, r)
		if i%4 == 1 && len(mangled) >= 2 {
			n := len(mangled)
			mangled[n-1], mangled[n-2] = mangled[n-2], mangled[n-1]
		}
		if i > 0 && i%10 == 0 {
			// Replay the previous 5 readings.
			mangled = append(mangled, readings[i-5:i]...)
		}
	}

	rec := sim.NewRecognizer(cal)
	var letter rune
	collect := func(evs []Event) {
		for _, ev := range evs {
			if ev.Kind == LetterDeduced && ev.LetterOK {
				letter = ev.Letter
			}
		}
	}
	for _, r := range mangled {
		collect(rec.Ingest(r))
	}
	collect(rec.Flush(dur + 2*time.Second))
	if letter != 'L' {
		t.Errorf("letter = %q, want L despite duplicates and reordering", letter)
	}
}

func TestFastMACSimulator(t *testing.T) {
	count := func(fast bool) int {
		s, err := NewSimulator(SimulatorConfig{Seed: 13, FastMAC: fast})
		if err != nil {
			t.Fatal(err)
		}
		return len(s.CollectStatic(2 * time.Second))
	}
	if fast, slow := count(true), count(false); fast < slow*3/2 {
		t.Errorf("fast MAC reads %d should be well above default %d", fast, slow)
	}
}
