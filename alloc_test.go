package rfipad

// Allocation-regression tests for the recognition hot path. The perf
// contract (DESIGN.md §8): steady-state Recognizer.Ingest and a
// scratch-reused disturbance map allocate nothing once their buffers
// reach the high-water mark, so a long-running multi-stream engine's
// per-reading cost is pure compute, not GC pressure.

import (
	"testing"
	"time"

	"rfipad/internal/core"
)

// steadyStateRecognizer returns a recognizer warmed past its buffer
// high-water marks (several trim/compaction cycles of quiet stream)
// plus a feed function that keeps ingesting the same capture with
// monotonically advancing timestamps.
func steadyStateRecognizer(t testing.TB) (feed func()) {
	t.Helper()
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		t.Fatal("no quiet capture")
	}
	rec := sim.NewRecognizer(cal)
	lap := quiet[len(quiet)-1].Time + time.Millisecond
	i := 0
	feed = func() {
		r := quiet[i%len(quiet)]
		r.Time += lap * time.Duration(1+i/len(quiet))
		rec.Ingest(r)
		i++
	}
	// Warm through several 8 s laps: the history buffer and the frame
	// cache grow to their high-water capacity and cycle through
	// multiple trim/compactions, after which ingest is allocation-free.
	for n := 0; n < 6*len(quiet); n++ {
		feed()
	}
	return feed
}

// TestRecognizerIngestSteadyStateAllocs pins steady-state ingest at
// zero allocations per reading.
func TestRecognizerIngestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	feed := steadyStateRecognizer(t)
	if avg := testing.AllocsPerRun(5000, func() { feed() }); avg != 0 {
		t.Errorf("steady-state Ingest allocates %.4f objects/reading, want 0", avg)
	}
}

// TestDisturbanceScratchMapAllocs pins the scratch-reused disturbance
// map at zero allocations per window, and the convenience
// core.DisturbanceMap wrapper (which builds a fresh scratch per call)
// at a small fixed count — the bound a regression would break.
func TestDisturbanceScratchMapAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	sim, err := NewSimulator(SimulatorConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.CollectStatic(4 * time.Second)
	window = window[len(window)/2:] // ~2 s window, a typical stroke span

	var sc core.DisturbanceScratch
	sc.Map(window, cal, core.DisturbanceOptions{}) // reach high-water
	if avg := testing.AllocsPerRun(500, func() {
		sc.Map(window, cal, core.DisturbanceOptions{})
	}); avg != 0 {
		t.Errorf("scratch-reused disturbance map allocates %.4f objects/window, want 0", avg)
	}

	// The allocating wrapper stays bounded: scratch struct + float
	// workspaces + append-growth of the per-tag series (a handful of
	// reallocations per tag as each series grows from nil). 12×numTags
	// sits comfortably above today's count and far below a
	// per-reading regression.
	bound := float64(12 * cal.NumTags())
	if avg := testing.AllocsPerRun(100, func() {
		core.DisturbanceMap(window, cal, core.DisturbanceOptions{})
	}); avg > bound {
		t.Errorf("DisturbanceMap allocates %.1f objects/window, want <= %.0f", avg, bound)
	}
}
