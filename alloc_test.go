package rfipad

// Allocation-regression tests for the recognition hot path. The perf
// contract (DESIGN.md §8): steady-state Recognizer.Ingest and a
// scratch-reused disturbance map allocate nothing once their buffers
// reach the high-water mark, so a long-running multi-stream engine's
// per-reading cost is pure compute, not GC pressure.

import (
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
)

// steadyStateRecognizer returns a recognizer warmed past its buffer
// high-water marks (several trim/compaction cycles of quiet stream)
// plus a feed function that keeps ingesting the same capture with
// monotonically advancing timestamps.
func steadyStateRecognizer(t testing.TB) (feed func()) {
	t.Helper()
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		t.Fatal("no quiet capture")
	}
	rec := sim.NewRecognizer(cal)
	lap := quiet[len(quiet)-1].Time + time.Millisecond
	i := 0
	feed = func() {
		r := quiet[i%len(quiet)]
		r.Time += lap * time.Duration(1+i/len(quiet))
		rec.Ingest(r)
		i++
	}
	// Warm through several 8 s laps: the history buffer and the frame
	// cache grow to their high-water capacity and cycle through
	// multiple trim/compactions, after which ingest is allocation-free.
	for n := 0; n < 6*len(quiet); n++ {
		feed()
	}
	return feed
}

// TestRecognizerIngestSteadyStateAllocs pins steady-state ingest at
// zero allocations per reading.
func TestRecognizerIngestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	feed := steadyStateRecognizer(t)
	if avg := testing.AllocsPerRun(5000, func() { feed() }); avg != 0 {
		t.Errorf("steady-state Ingest allocates %.4f objects/reading, want 0", avg)
	}
}

// TestIngestBatchSteadyStateAllocs pins the columnar hot path at zero
// allocations per batch (and therefore per reading): once warmed, a
// reused ReadingBatch fed through IngestBatch must never touch the
// heap — the DESIGN.md §13 contract the wire-rate ingest path is
// built on.
func TestIngestBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	sim, err := NewSimulator(SimulatorConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	quiet := sim.CollectStatic(8 * time.Second)
	if len(quiet) == 0 {
		t.Fatal("no quiet capture")
	}
	rec := sim.NewRecognizer(cal)
	lap := quiet[len(quiet)-1].Time + time.Millisecond

	const chunk = 256
	var batch core.ReadingBatch
	pos, laps := 0, 0
	feed := func() {
		end := pos + chunk
		if end > len(quiet) {
			end = len(quiet)
		}
		batch.Reset()
		off := lap * time.Duration(laps)
		for _, r := range quiet[pos:end] {
			r.Time += off
			batch.AppendReading(r)
		}
		rec.IngestBatch(&batch)
		pos = end
		if pos >= len(quiet) {
			pos = 0
			laps++
		}
	}
	// Warm through several laps, as in steadyStateRecognizer: history
	// and frame cache reach high-water capacity across multiple
	// trim/compaction cycles.
	for laps < 6 {
		feed()
	}
	if avg := testing.AllocsPerRun(2000, feed); avg != 0 {
		t.Errorf("steady-state IngestBatch allocates %.4f objects/batch, want 0", avg)
	}
}

// TestUnsampledTraceAllocs pins the unsampled tracing path at zero
// allocations: an unsampled stream resolves to a nil *StreamTrace, and
// recording through it — exactly what the engine's per-batch hot path
// does when a stream lost the sampling lottery — must cost nothing
// beyond the nil check. This guards the PR-7 contract that tracing is
// free for the (SampleEvery-1)/SampleEvery majority of streams.
func TestUnsampledTraceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	tr := trace.New(trace.Config{SampleEvery: -1, Obs: obs.NewRegistry()})
	st := tr.Stream("plate-0") // nil: sampling disabled
	if st != nil {
		t.Fatal("expected unsampled stream")
	}
	if avg := testing.AllocsPerRun(5000, func() {
		st.Add(trace.Span{Name: trace.SpanIngest, Count: 64})
	}); avg != 0 {
		t.Errorf("unsampled StreamTrace.Add allocates %.4f objects/span, want 0", avg)
	}
	// Resolving an already-decided stream is also allocation-free: the
	// engine hot path holds the handle, but the live pipeline re-resolves
	// per reconnect and must not leak decisions.
	if avg := testing.AllocsPerRun(5000, func() {
		tr.Stream("plate-0")
	}); avg != 0 {
		t.Errorf("memoized Tracer.Stream allocates %.4f objects/lookup, want 0", avg)
	}

	// A sampled stream's ring reuses preallocated slots, so even the
	// sampled path is allocation-free after the ring fills once.
	sampled := trace.New(trace.Config{SampleEvery: 1, BufSpans: 64, Obs: obs.NewRegistry()})
	hot := sampled.Stream("plate-1")
	for i := 0; i < 64; i++ {
		hot.Add(trace.Span{Name: trace.SpanIngest})
	}
	if avg := testing.AllocsPerRun(5000, func() {
		hot.Add(trace.Span{Name: trace.SpanIngest, Count: 64})
	}); avg != 0 {
		t.Errorf("sampled StreamTrace.Add allocates %.4f objects/span after ring warm-up, want 0", avg)
	}
}

// TestDisturbanceScratchMapAllocs pins the scratch-reused disturbance
// map at zero allocations per window, and the convenience
// core.DisturbanceMap wrapper (which builds a fresh scratch per call)
// at a small fixed count — the bound a regression would break.
func TestDisturbanceScratchMapAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	sim, err := NewSimulator(SimulatorConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.CollectStatic(4 * time.Second)
	window = window[len(window)/2:] // ~2 s window, a typical stroke span

	var sc core.DisturbanceScratch
	sc.Map(window, cal, core.DisturbanceOptions{}) // reach high-water
	if avg := testing.AllocsPerRun(500, func() {
		sc.Map(window, cal, core.DisturbanceOptions{})
	}); avg != 0 {
		t.Errorf("scratch-reused disturbance map allocates %.4f objects/window, want 0", avg)
	}

	// The allocating wrapper stays bounded: scratch struct + float
	// workspaces + append-growth of the per-tag series (a handful of
	// reallocations per tag as each series grows from nil). 12×numTags
	// sits comfortably above today's count and far below a
	// per-reading regression.
	bound := float64(12 * cal.NumTags())
	if avg := testing.AllocsPerRun(100, func() {
		core.DisturbanceMap(window, cal, core.DisturbanceOptions{})
	}); avg > bound {
		t.Errorf("DisturbanceMap allocates %.1f objects/window, want <= %.0f", avg, bound)
	}
}
