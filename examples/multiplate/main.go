// Multiplate: the paper's cost-efficiency headline (§I) — one reader,
// several RFIPad plates. The reader time-multiplexes its antenna ports
// across two plates while two visitors gesture simultaneously; each
// plate's pipeline recognizes its own writer from its thinner share of
// the read budget.
//
//	go run ./examples/multiplate
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
	"rfipad/internal/stroke"
)

func main() {
	// Two plates in different corners of the lobby, one shared reader.
	plateA := sim.NewPlateSystem(scene.Config{Location: scene.Location1}, 71)
	plateB := sim.NewPlateSystem(scene.Config{Location: scene.Location2}, 72)
	reader := sim.NewMultiPlate([]*sim.System{plateA, plateB}, 250*time.Millisecond)

	fmt.Println("calibrating both plates through the shared reader...")
	cals, err := reader.CalibrateAll(6 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// Visitor A swipes to the next page; visitor B scrolls down.
	synthA := plateA.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(1)))
	synthB := plateB.Synthesizer(hand.Volunteers()[4], rand.New(rand.NewSource(2)))
	scriptA := synthA.DrawOne(stroke.M(stroke.Horizontal, stroke.Forward))
	scriptB := synthB.DrawOne(stroke.M(stroke.Vertical, stroke.Forward))

	streams := reader.Run([]*hand.Script{scriptA, scriptB})

	for i, tc := range []struct {
		name   string
		plate  *sim.System
		script *hand.Script
	}{
		{"plate A (visitor swiping)", plateA, scriptA},
		{"plate B (visitor scrolling)", plateB, scriptB},
	} {
		pipeline := core.NewPipeline(tc.plate.Grid, cals[i])
		results := pipeline.RecognizeStream(streams[i], nil, 0, tc.script.Duration()+time.Second)
		fmt.Printf("%s: %d reads, ", tc.name, len(streams[i]))
		if len(results) == 1 && results[0].Result.Ok {
			fmt.Printf("recognized %v\n", results[0].Result.Motion)
		} else {
			fmt.Printf("%d spans detected\n", len(results))
		}
	}
	fmt.Println("\none reader, two pads — the extra cost per pad is 25 passive tags.")
}
