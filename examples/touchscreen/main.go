// Touchscreen: the paper's kiosk motivation (§I) — clicks, swipes, and
// scrolls drive an information terminal without anyone touching a
// screen. "−" swipes flip pages, "|" strokes scroll, and a push toward
// a tag clicks the highlighted entry (§II-C).
//
//	go run ./examples/touchscreen
package main

import (
	"fmt"
	"log"
	"time"

	"rfipad"
)

// kiosk is a minimal departure-board UI driven by recognized motions.
type kiosk struct {
	pages    [][]string
	page     int
	selected int
}

func (k *kiosk) handle(m rfipad.Motion) string {
	switch {
	case m.Shape == rfipad.Horizontal && m.Dir == rfipad.Forward:
		if k.page < len(k.pages)-1 {
			k.page++
			k.selected = 0
		}
		return "swipe → next page"
	case m.Shape == rfipad.Horizontal && m.Dir == rfipad.Reverse:
		if k.page > 0 {
			k.page--
			k.selected = 0
		}
		return "swipe ← previous page"
	case m.Shape == rfipad.Vertical && m.Dir == rfipad.Forward:
		if k.selected < len(k.pages[k.page])-1 {
			k.selected++
		}
		return "scroll ↓"
	case m.Shape == rfipad.Vertical && m.Dir == rfipad.Reverse:
		if k.selected > 0 {
			k.selected--
		}
		return "scroll ↑"
	case m.Shape == rfipad.Click:
		return fmt.Sprintf("click: open %q", k.pages[k.page][k.selected])
	default:
		return "ignored"
	}
}

func (k *kiosk) render() {
	fmt.Printf("  ┌─ page %d/%d ─────────────┐\n", k.page+1, len(k.pages))
	for i, item := range k.pages[k.page] {
		cursor := "  "
		if i == k.selected {
			cursor = "▶ "
		}
		fmt.Printf("  │ %s%-20s │\n", cursor, item)
	}
	fmt.Println("  └────────────────────────┘")
}

func main() {
	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	pipeline := sim.NewPipeline(cal)

	ui := &kiosk{pages: [][]string{
		{"Flight AA101 — gate B4", "Flight UA202 — gate C1", "Flight DL303 — gate A7"},
		{"Ward 3 — elevator left", "Radiology — floor 2", "Pharmacy — lobby"},
	}}

	// The visitor's gesture sequence.
	gestures := []rfipad.Motion{
		rfipad.M(rfipad.Vertical, rfipad.Forward),   // scroll down
		rfipad.M(rfipad.Vertical, rfipad.Forward),   // scroll down
		rfipad.M(rfipad.Horizontal, rfipad.Forward), // next page
		rfipad.M(rfipad.Vertical, rfipad.Forward),   // scroll down
		rfipad.M(rfipad.Click, 0),                   // open the entry
		rfipad.M(rfipad.Horizontal, rfipad.Reverse), // back
	}

	for i, g := range gestures {
		readings, dur := sim.PerformMotion(g, int64(500+i))
		results := pipeline.RecognizeStream(readings, nil, 0, dur+time.Second)
		if len(results) == 0 || !results[0].Result.Ok {
			fmt.Printf("gesture %v: not detected\n", g)
			continue
		}
		got := results[0].Result.Motion
		action := ui.handle(got)
		fmt.Printf("gesture %v → recognized %v → %s\n", g, got, action)
		ui.render()
	}
}
