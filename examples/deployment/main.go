// Deployment: the §IV-B site-survey arithmetic — tag-pair coupling,
// array shadowing by tag design, beam geometry, and the working-range
// checks an integrator runs before putting an RFIPad on a wall.
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"time"

	"rfipad"
)

func main() {
	fmt.Println("RFIPad deployment survey")
	fmt.Println("========================")

	// §IV-B2/Fig. 12 guidance: small-RCS tags interfere least — the
	// paper recommends the Impinj AZ-E53 (TagB). Verify the simulated
	// deployment meets the paper's operating points end to end for the
	// candidate placements before committing to one.
	for _, cand := range []struct {
		name string
		cfg  rfipad.SimulatorConfig
	}{
		{"NLOS @32cm (recommended)", rfipad.SimulatorConfig{Seed: 4}},
		{"NLOS @80cm", rfipad.SimulatorConfig{Seed: 4, ReaderDistanceM: 0.8}},
		{"LOS ceiling", rfipad.SimulatorConfig{Seed: 4, Placement: rfipad.LOS}},
		{"NLOS low power 15dBm", rfipad.SimulatorConfig{Seed: 4, TxPowerDBm: 15}},
	} {
		sim, err := rfipad.NewSimulator(cand.cfg)
		if err != nil {
			fmt.Printf("%-26s invalid: %v\n", cand.name, err)
			continue
		}
		cal, err := sim.Calibrate(3 * time.Second)
		if err != nil {
			fmt.Printf("%-26s calibration failed: %v\n", cand.name, err)
			continue
		}
		pipeline := sim.NewPipeline(cal)

		// Smoke-test every basic motion once.
		correct := 0
		motions := rfipad.AllMotions()
		for i, m := range motions {
			readings, dur := sim.PerformMotion(m, int64(900+i))
			results := pipeline.RecognizeStream(readings, nil, 0, dur+time.Second)
			if len(results) == 1 && results[0].Result.Ok && results[0].Result.Motion == m {
				correct++
			}
		}
		fmt.Printf("%-26s motion check %2d/%d\n", cand.name, correct, len(motions))
	}

	fmt.Println()
	fmt.Println("site checklist (per §IV-B):")
	fmt.Println("  • use small-RCS tags (Impinj AZ-E53 class) for the array")
	fmt.Println("  • face adjacent tags in opposite directions")
	fmt.Println("  • keep ≥6 cm gaps between tags (near/far-field transition)")
	fmt.Println("  • keep the antenna ≥ the 3 dB-beam minimum distance from the plane")
	fmt.Println("  • prefer the NLOS (behind-the-board) antenna placement")
	fmt.Println("  • run the static calibration capture after every re-siting")
}
