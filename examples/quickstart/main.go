// Quickstart: simulate one in-air stroke over the tag plate and
// recognize it with the offline pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rfipad"
)

func main() {
	// A simulated deployment with the paper's defaults: 5×5 TagB
	// array, NLOS antenna 32 cm behind the board, 30 dBm.
	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Deployment-time calibration: a few seconds of static capture
	// learn each tag's phase centre and noise level.
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// The writer swipes right-to-left across the plate.
	motion := rfipad.M(rfipad.Horizontal, rfipad.Reverse)
	readings, dur := sim.PerformMotion(motion, 42)
	fmt.Printf("performed %v: %d tag reads over %v\n", motion, len(readings), dur.Round(time.Millisecond))

	// Segment the stream and recognize each detected stroke.
	pipeline := sim.NewPipeline(cal)
	for _, res := range pipeline.RecognizeStream(readings, nil, 0, dur+time.Second) {
		fmt.Printf("detected %v in %v–%v\n", res.Result.Motion,
			res.Span.Start.Round(10*time.Millisecond), res.Span.End.Round(10*time.Millisecond))
		fmt.Println("disturbance image:")
		fmt.Println(res.Result.Image)
	}
}
