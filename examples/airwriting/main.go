// Airwriting: the paper's headline scenario — a user writes a word in
// the air, letter by letter, and the streaming recognizer reports
// strokes and letters as they happen (§III-C).
//
//	go run ./examples/airwriting
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"rfipad"
)

func main() {
	const word = "RFID"

	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{
		Seed: 2,
		// Use one of the paper's volunteers instead of the median
		// writer.
		Writer: rfipad.Volunteers()[2],
	})
	if err != nil {
		log.Fatal(err)
	}
	cal, err := sim.Calibrate(3 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	var recognized strings.Builder
	for i, ch := range word {
		// Each letter gets its own streaming recognizer, as a kiosk
		// would reset between inputs.
		rec := sim.NewRecognizer(cal)
		readings, dur, err := sim.WriteLetter(ch, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("writing %q", ch)
		if strokes, ok := rfipad.LetterStrokes(ch); ok {
			var parts []string
			for _, s := range strokes {
				parts = append(parts, s.Motion.String())
			}
			fmt.Printf("  (grammar: %s)", strings.Join(parts, " "))
		}
		fmt.Println()

		emit := func(evs []rfipad.Event) {
			for _, ev := range evs {
				switch ev.Kind {
				case rfipad.StrokeDetected:
					fmt.Printf("  %v at %v\n", ev.Stroke.Motion, ev.Span.Start.Round(100*time.Millisecond))
				case rfipad.LetterDeduced:
					fmt.Printf("  => %q\n", ev.Letter)
					recognized.WriteRune(ev.Letter)
				}
			}
		}
		for _, r := range readings {
			emit(rec.Ingest(r))
		}
		emit(rec.Flush(dur + 2*time.Second))
	}

	fmt.Printf("\nwrote %q — recognized %q\n", word, recognized.String())
}
