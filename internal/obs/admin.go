package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is one /healthz evaluation. OK selects the HTTP status (200
// vs 503); Detail fields are merged into the JSON body alongside
// "status".
type Health struct {
	OK     bool
	Detail map[string]any
}

// HealthFunc evaluates liveness at request time.
type HealthFunc func() Health

// AdminMux builds the admin endpoint set both daemons serve behind
// -obs-addr:
//
//	/metrics         Prometheus text exposition of r
//	/healthz         JSON liveness (200 ok / 503 degraded)
//	/readyz          JSON readiness (200 ready / 503 not ready)
//	/debug/vars      expvar (includes the Default registry mirror)
//	/debug/pprof/*   runtime profiles
//
// Liveness and readiness are distinct probes: /healthz answers "is the
// process functioning" (a load balancer restarts on sustained
// failure), while /readyz answers "should traffic be routed here" —
// for the live stack, ready only once calibration is restored from a
// checkpoint or completed from the prelude and the engine is accepting
// pushes, and deliberately unready again during a graceful drain.
// Either func may be nil, in which case its probe always reports ok.
func AdminMux(r *Registry, health, ready HealthFunc) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	probe := func(fn HealthFunc, down string) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			h := Health{OK: true}
			if fn != nil {
				h = fn()
			}
			body := map[string]any{"status": "ok"}
			if !h.OK {
				body["status"] = down
			}
			for k, v := range h.Detail {
				body[k] = v
			}
			w.Header().Set("Content-Type", "application/json")
			if !h.OK {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(body)
		}
	}
	mux.HandleFunc("/healthz", probe(health, "unhealthy"))
	mux.HandleFunc("/readyz", probe(ready, "unready"))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a started admin listener.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin binds addr and serves AdminMux(r, health, ready) in the
// background. Close releases the listener.
func StartAdmin(addr string, r *Registry, health, ready HealthFunc) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           AdminMux(r, health, ready),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin listener down.
func (a *AdminServer) Close() error { return a.srv.Close() }
