package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Health is one /healthz evaluation. OK selects the HTTP status (200
// vs 503); Detail fields are merged into the JSON body alongside
// "status".
type Health struct {
	OK     bool
	Detail map[string]any
}

// HealthFunc evaluates liveness at request time.
type HealthFunc func() Health

// Endpoint is one extra admin surface mounted alongside the built-in
// set — the tracing and flight-recorder debug endpoints
// (/debug/traces, /debug/flight) arrive this way, keeping package obs
// free of an import on the layers it observes.
type Endpoint struct {
	// Pattern is the mux pattern (e.g. "/debug/traces").
	Pattern string
	// Handler serves it.
	Handler http.Handler
}

// AdminMux builds the admin endpoint set both daemons serve behind
// -obs-addr:
//
//	/metrics         Prometheus text exposition of r
//	/healthz         JSON liveness (200 ok / 503 degraded)
//	/readyz          JSON readiness (200 ready / 503 not ready)
//	/debug/vars      expvar (includes the Default registry mirror)
//	/debug/pprof/*   runtime profiles
//
// plus any extra Endpoints (daemons mount /debug/traces and
// /debug/flight here when tracing is armed).
//
// Liveness and readiness are distinct probes: /healthz answers "is the
// process functioning" (a load balancer restarts on sustained
// failure), while /readyz answers "should traffic be routed here" —
// for the live stack, ready only once calibration is restored from a
// checkpoint or completed from the prelude and the engine is accepting
// pushes, and deliberately unready again during a graceful drain.
// Either func may be nil, in which case its probe always reports ok.
func AdminMux(r *Registry, health, ready HealthFunc, extra ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	probe := func(fn HealthFunc, down string) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			h := Health{OK: true}
			if fn != nil {
				h = fn()
			}
			body := map[string]any{"status": "ok"}
			if !h.OK {
				body["status"] = down
			}
			for k, v := range h.Detail {
				body[k] = v
			}
			w.Header().Set("Content-Type", "application/json")
			if !h.OK {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(body)
		}
	}
	mux.HandleFunc("/healthz", probe(health, "unhealthy"))
	mux.HandleFunc("/readyz", probe(ready, "unready"))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Pattern != "" && e.Handler != nil {
			mux.Handle(e.Pattern, e.Handler)
		}
	}
	return mux
}

// AdminServer is a started admin listener.
type AdminServer struct {
	ln       net.Listener
	srv      *http.Server
	serveErr chan error

	// ShutdownTimeout bounds how long Close waits for in-flight
	// requests (a /metrics scrape mid-write, a pprof profile) before
	// cutting them off (default 2 s).
	ShutdownTimeout time.Duration

	closeOnce sync.Once
	closeErr  error
}

// StartAdmin binds addr and serves AdminMux(r, health, ready, extra)
// in the background. Close drains gracefully.
func StartAdmin(addr string, r *Registry, health, ready HealthFunc, extra ...Endpoint) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           AdminMux(r, health, ready, extra...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	a := &AdminServer{ln: ln, srv: srv, serveErr: make(chan error, 1), ShutdownTimeout: 2 * time.Second}
	go func() { a.serveErr <- srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound address (useful with ":0").
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin listener down gracefully: the listener stops
// accepting immediately, in-flight requests get ShutdownTimeout to
// finish (so a scrape racing a drain sees a complete exposition, not a
// cut connection), and only then are stragglers cut. The background
// Serve error — previously discarded — is collected and returned when
// it was a real fault rather than the expected close. Idempotent:
// later calls return the first call's result instead of blocking on
// the already-consumed Serve error.
func (a *AdminServer) Close() error {
	a.closeOnce.Do(func() { a.closeErr = a.close() })
	return a.closeErr
}

func (a *AdminServer) close() error {
	ctx, cancel := context.WithTimeout(context.Background(), a.ShutdownTimeout)
	defer cancel()
	shutdownErr := a.srv.Shutdown(ctx)
	if shutdownErr != nil {
		// Deadline passed with requests still in flight: cut them.
		a.srv.Close()
	}
	serveErr := <-a.serveErr
	if errors.Is(serveErr, http.ErrServerClosed) {
		serveErr = nil
	}
	if serveErr != nil {
		return serveErr
	}
	if errors.Is(shutdownErr, context.DeadlineExceeded) {
		// In-flight requests were cut at the deadline; the listener
		// itself closed fine. Report it — callers log, not crash.
		return fmt.Errorf("obs: admin shutdown cut in-flight requests after %v", a.ShutdownTimeout)
	}
	return shutdownErr
}
