package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Log output formats.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// LogOptions configures NewLogger.
type LogOptions struct {
	// W is the destination (default os.Stderr, keeping stdout clean
	// for recognition output).
	W io.Writer
	// Format is FormatText or FormatJSON (default text).
	Format string
	// Level is the minimum level (default slog.LevelInfo).
	Level slog.Leveler
}

// NewLogger builds the shared structured logger both daemons use:
// slog with a component/field convention instead of ad-hoc stderr
// prints. Attach a component with Component before handing the logger
// to a subsystem.
func NewLogger(opts LogOptions) *slog.Logger {
	w := opts.W
	if w == nil {
		w = os.Stderr
	}
	h := &slog.HandlerOptions{Level: opts.Level}
	switch strings.ToLower(opts.Format) {
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, h))
	default:
		return slog.New(slog.NewTextHandler(w, h))
	}
}

// Component tags a logger with the shared component attribute
// ("session", "live", "readerd", ...). Nil-safe: a nil logger stays
// nil, and callers should treat a nil logger as disabled.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String("component", name))
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}
