package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests served.", L("code", "200")).Add(7)
	r.Counter("demo_requests_total", "Requests served.", L("code", "500")).Add(1)
	r.Gauge("demo_up", "Whether the stream is up.").Set(1)
	h := r.Histogram("demo_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP demo_requests_total Requests served.\n",
		"# TYPE demo_requests_total counter\n",
		`demo_requests_total{code="200"} 7` + "\n",
		`demo_requests_total{code="500"} 1` + "\n",
		"# TYPE demo_up gauge\n",
		"demo_up 1\n",
		"# TYPE demo_latency_seconds histogram\n",
		`demo_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`demo_latency_seconds_bucket{le="1"} 2` + "\n",
		`demo_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"demo_latency_seconds_sum 5.55\n",
		"demo_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// HELP/TYPE must precede the family's first sample and appear once.
	if strings.Count(out, "# TYPE demo_requests_total counter") != 1 {
		t.Error("TYPE line should appear exactly once per family")
	}
	typeIdx := strings.Index(out, "# TYPE demo_requests_total")
	sampleIdx := strings.Index(out, `demo_requests_total{code="200"}`)
	if typeIdx > sampleIdx {
		t.Error("TYPE line must precede samples")
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Line one\nline \\two.", L("path", `C:\tmp "x"`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total Line one\nline \\two.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="C:\\tmp \"x\"\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("admin_hits_total", "hits").Add(2)
	healthy := true
	ready := false
	srv, err := StartAdmin("127.0.0.1:0", r, func() Health {
		return Health{OK: healthy, Detail: map[string]any{"calibrated": true}}
	}, func() Health {
		return Health{OK: ready}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body := get(t, base+"/metrics", http.StatusOK)
	if !strings.Contains(body, "admin_hits_total 2") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	var h map[string]any
	if err := json.Unmarshal([]byte(get(t, base+"/healthz", http.StatusOK)), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["calibrated"] != true {
		t.Errorf("healthz = %v", h)
	}

	healthy = false
	if err := json.Unmarshal([]byte(get(t, base+"/healthz", http.StatusServiceUnavailable)), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "unhealthy" {
		t.Errorf("degraded healthz = %v", h)
	}

	// Readiness is a distinct probe: unready returns 503 even while
	// liveness is fine, and flips independently.
	if err := json.Unmarshal([]byte(get(t, base+"/readyz", http.StatusServiceUnavailable)), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "unready" {
		t.Errorf("unready readyz = %v", h)
	}
	ready = true
	if err := json.Unmarshal([]byte(get(t, base+"/readyz", http.StatusOK)), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("ready readyz = %v", h)
	}

	if body := get(t, base+"/debug/pprof/cmdline", http.StatusOK); body == "" {
		t.Error("pprof cmdline empty")
	}
	if body := get(t, base+"/debug/vars", http.StatusOK); !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Error("expvar endpoint not JSON")
	}
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
