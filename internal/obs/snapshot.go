package obs

import (
	"math"
	"sort"
)

// Bucket is one histogram bucket in a snapshot: the count of samples
// at or below UpperBound, non-cumulative.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Point is one metric series frozen at snapshot time.
type Point struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"-"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value (histograms: the sum).
	Value float64 `json:"value"`
	// Count and Buckets are populated for histograms.
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	bounds []float64
	counts []uint64
}

// Quantile estimates the q-th quantile of a histogram point (NaN for
// non-histograms or empty histograms).
func (p Point) Quantile(q float64) float64 {
	if p.Kind != KindHistogram || len(p.counts) == 0 {
		return math.NaN()
	}
	return quantile(q, p.bounds, p.counts)
}

// Snapshot is a point-in-time copy of every series in a registry —
// what live.Result carries out of a run so tests and callers can
// assert on telemetry without scraping.
type Snapshot struct {
	Points []Point `json:"points"`
}

// Snapshot freezes the registry. Points are ordered by family name,
// then series creation order. Registered collectors (AddCollector) run
// first, so pull-style panels — the runtime/metrics gauges — are
// refreshed in the same snapshot.
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var snap Snapshot
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		series := make([]*instrument, 0, len(order))
		for _, key := range order {
			series = append(series, f.series[key])
		}
		f.mu.Unlock()
		for _, in := range series {
			p := Point{Name: f.name, Kind: f.kind}
			if len(in.labels) > 0 {
				p.Labels = map[string]string{}
				for _, l := range in.labels {
					p.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				p.Value = float64(in.counter.Value())
			case KindGauge:
				p.Value = in.gauge.Value()
			case KindHistogram:
				p.Value = in.hist.Sum()
				p.Count = in.hist.Count()
				p.bounds = in.hist.bounds
				p.counts = in.hist.bucketCounts()
				for i, c := range p.counts {
					ub := math.Inf(1)
					if i < len(p.bounds) {
						ub = p.bounds[i]
					}
					p.Buckets = append(p.Buckets, Bucket{UpperBound: ub, Count: c})
				}
			}
			snap.Points = append(snap.Points, p)
		}
	}
	return snap
}

// Get returns the point matching name and the given labels (all must
// match exactly).
func (s Snapshot) Get(name string, labels ...Label) (Point, bool) {
	for _, p := range s.Points {
		if p.Name != name || len(p.Labels) != len(labels) {
			continue
		}
		match := true
		for _, l := range labels {
			if p.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return p, true
		}
	}
	return Point{}, false
}

// Value returns the counter/gauge value (histogram sum) of the named
// series, or 0 when absent.
func (s Snapshot) Value(name string, labels ...Label) float64 {
	p, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return p.Value
}

// HistCount returns the observation count of the named histogram, or 0
// when absent.
func (s Snapshot) HistCount(name string, labels ...Label) uint64 {
	p, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return p.Count
}
