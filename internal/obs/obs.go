// Package obs is the runtime telemetry layer for the live stack:
// counters, gauges, and fixed-bucket latency histograms with
// Prometheus text-format exposition and expvar mirroring, structured
// logging conventions on log/slog, lightweight span tracing, and an
// admin HTTP mux (/metrics, /healthz, /debug/pprof). It has zero
// dependencies outside the standard library so every internal package
// can instrument itself without import cycles or vendored collectors.
//
// Conventions:
//
//   - Metric names follow Prometheus style: snake_case, a unit suffix
//     (_seconds, _total), and a subsystem prefix (llrp_, rfipad_,
//     replay_, faultnet_).
//   - Components obtain metrics from a *Registry; a nil registry in
//     any config resolves to Default(), so daemons get a single
//     process-wide view while tests can isolate with NewRegistry().
//   - Loggers carry a "component" attribute (see Component) so one
//     stream interleaves readerd, session, and recognizer records
//     distinguishably.
package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric dimension.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets is the default histogram bucket layout for span and
// RTT latencies, in seconds: 5 µs up to 10 s, roughly logarithmic.
// The recognition stages land in the µs–ms decades; network outages in
// the upper ones.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families. All methods are safe for concurrent
// use; metric handles are get-or-create, so two components naming the
// same series share it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	collMu     sync.Mutex
	collectors []func(*Registry)
	runtimeOn  bool
}

// AddCollector registers a pull-style collector: fn runs at the start
// of every Snapshot (and therefore every /metrics scrape and expvar
// read), refreshing whatever gauges it owns. Collectors run outside
// the registry lock, so they are free to call Gauge/Counter/Histogram.
// This is how the runtime/metrics panel stays current without a
// polling goroutine per subsystem.
func (r *Registry) AddCollector(fn func(*Registry)) {
	r.collMu.Lock()
	r.collectors = append(r.collectors, fn)
	r.collMu.Unlock()
}

// collect runs the registered collectors (outside r.mu).
func (r *Registry) collect() {
	r.collMu.Lock()
	fns := append([]func(*Registry){}, r.collectors...)
	r.collMu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
}

type family struct {
	name, help string
	kind       Kind
	buckets    []float64

	mu     sync.Mutex
	series map[string]*instrument
	order  []string
}

type instrument struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry (use for tests or scoped
// subsystems; daemons use Default).
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var (
	defaultReg  = NewRegistry()
	defaultOnce sync.Once
)

// Default returns the process-wide registry. Its first use publishes
// the registry under the expvar name "rfipad_metrics", so /debug/vars
// mirrors every metric.
func Default() *Registry {
	defaultOnce.Do(func() {
		expvar.Publish("rfipad_metrics", defaultReg.ExpvarFunc())
	})
	return defaultReg
}

// Or resolves a possibly-nil registry to Default: the idiom for
// optional Obs config fields.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return Default()
}

// family fetches or creates a family, enforcing kind consistency.
func (r *Registry) family(name, help string, kind Kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*instrument{}}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// get fetches or creates the labeled series within a family.
func (f *family) get(labels []Label) *instrument {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, ok := f.series[key]
	if !ok {
		in = &instrument{labels: sortedLabels(labels)}
		switch f.kind {
		case KindCounter:
			in.counter = &Counter{}
		case KindGauge:
			in.gauge = &Gauge{}
		case KindHistogram:
			in.hist = newHistogram(f.buckets)
		}
		f.series[key] = in
		f.order = append(f.order, key)
	}
	return in
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, KindCounter, nil).get(labels).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, KindGauge, nil).get(labels).gauge
}

// Histogram returns the named histogram, creating it on first use. A
// nil buckets slice selects LatencyBuckets. Buckets are fixed at
// family creation; later callers inherit the first layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return r.family(name, help, KindHistogram, buckets).get(labels).hist
}

// Counter is a monotonically increasing metric. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is
// lock-free; the sum uses a CAS loop.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf bucket
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// bucketCounts snapshots per-bucket (non-cumulative) counts.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes. Samples in the
// +Inf bucket clamp to the highest finite bound. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(q, h.bounds, h.bucketCounts())
}

func quantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the highest finite bound.
			return bounds[len(bounds)-1]
		}
		hi := bounds[i]
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	return bounds[len(bounds)-1]
}

// sortedLabels returns a copy sorted by key.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey canonicalizes a label set into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}
