package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per
// family, then each labeled series; histograms expand into cumulative
// _bucket series (with le labels, +Inf last), _sum, and _count.
// Families are ordered by name so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastFamily string
	for _, p := range snap.Points {
		if p.Name != lastFamily {
			lastFamily = p.Name
			help := r.helpFor(p.Name)
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
		}
		if err := writePoint(w, p); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f.help
	}
	return ""
}

func writePoint(w io.Writer, p Point) error {
	switch p.Kind {
	case KindHistogram:
		var cum uint64
		for _, b := range p.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			labels := appendLabel(p.Labels, "le", le)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, labels, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, formatLabels(p.Labels), formatFloat(p.Value)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, formatLabels(p.Labels), p.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, formatLabels(p.Labels), formatFloat(p.Value))
		return err
	}
}

// formatLabels renders {k="v",...} with keys sorted, or "" when empty.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// appendLabel renders labels plus one extra pair (used for le).
func appendLabel(labels map[string]string, key, value string) string {
	merged := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged[key] = value
	return formatLabels(merged)
}

// escapeLabelValue escapes backslash, double-quote, and newline per
// the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// escapeHelp escapes backslash and newline (quotes are legal in HELP).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpvarFunc returns an expvar.Func mirroring the registry: a map of
// "name{labels}" to values, with histograms expanded into count, sum,
// and p50/p95/p99 estimates. Publish it under any name to surface the
// registry on /debug/vars.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		out := map[string]any{}
		for _, p := range r.Snapshot().Points {
			key := p.Name + formatLabels(p.Labels)
			switch p.Kind {
			case KindHistogram:
				out[key] = map[string]any{
					"count": p.Count,
					"sum":   p.Value,
					"p50":   finiteOrNil(p.Quantile(0.50)),
					"p95":   finiteOrNil(p.Quantile(0.95)),
					"p99":   finiteOrNil(p.Quantile(0.99)),
				}
			default:
				out[key] = p.Value
			}
		}
		return out
	}
}

// finiteOrNil maps NaN/Inf to nil so expvar's JSON stays valid.
func finiteOrNil(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}
