package obs_test

// Admin surface tests live in an external package so they can mount
// the trace debug endpoints through the Endpoint extension point the
// daemons use — obs itself must not import obs/trace.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
)

func TestAdminMetricsContentType(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total", "Demo.").Add(3)
	mux := obs.AdminMux(reg, nil, nil)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "demo_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
}

func TestAdminProbes(t *testing.T) {
	degraded := false
	health := func() obs.Health {
		return obs.Health{OK: !degraded, Detail: map[string]any{"active_conns": 2}}
	}
	// readyz left nil: must default to ok.
	mux := obs.AdminMux(obs.NewRegistry(), health, nil)

	get := func(path string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content type = %q", path, ct)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s body not JSON: %v", path, err)
		}
		return rec.Code, body
	}

	code, body := get("/healthz")
	if code != 200 || body["status"] != "ok" {
		t.Errorf("healthy probe = %d %v, want 200 ok", code, body)
	}
	if body["active_conns"] != float64(2) {
		t.Errorf("detail not merged into probe body: %v", body)
	}

	degraded = true
	code, body = get("/healthz")
	if code != 503 || body["status"] != "unhealthy" {
		t.Errorf("degraded probe = %d %v, want 503 unhealthy", code, body)
	}
	if body["active_conns"] != float64(2) {
		t.Errorf("detail dropped when degraded: %v", body)
	}

	if code, body := get("/readyz"); code != 200 || body["status"] != "ok" {
		t.Errorf("nil readyz func = %d %v, want 200 ok", code, body)
	}
}

func TestAdminMountsTraceEndpoints(t *testing.T) {
	// End-to-end through the same extension point the daemons use:
	// tracing and flight-recorder debug surfaces ride AdminMux extras.
	reg := obs.NewRegistry()
	tracer := trace.New(trace.Config{SampleEvery: 1, Seed: 1, Obs: reg})
	st := tracer.Stream("plate-0")
	st.Add(trace.Span{Name: trace.SpanIngest, Duration: time.Millisecond})
	st.Add(trace.Span{Name: trace.SpanResult, Duration: 40 * time.Millisecond})

	fl, err := trace.OpenFlight(t.TempDir(), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fl.Record(trace.Dump{Trigger: trace.TriggerPanic, Stream: "plate-0"})

	mux := obs.AdminMux(reg, nil, nil,
		obs.Endpoint{Pattern: "/debug/traces", Handler: tracer.Handler()},
		obs.Endpoint{Pattern: "/debug/flight", Handler: fl.Handler()},
		obs.Endpoint{Pattern: "", Handler: tracer.Handler()}, // ignored
		obs.Endpoint{Pattern: "/debug/nil", Handler: nil},    // ignored
	)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_duration=10ms", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces status = %d", rec.Code)
	}
	var traces struct {
		Traces []trace.StreamDump `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) != 1 || len(traces.Traces[0].Spans) != 1 ||
		traces.Traces[0].Spans[0].Name != trace.SpanResult {
		t.Errorf("filtered traces = %+v, want only the 40ms result span", traces.Traces)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/flight status = %d", rec.Code)
	}
	var flight struct {
		Total int              `json:"total"`
		Dumps []trace.DumpMeta `json:"dumps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &flight); err != nil {
		t.Fatal(err)
	}
	if flight.Total != 1 || len(flight.Dumps) != 1 || flight.Dumps[0].Trigger != trace.TriggerPanic {
		t.Errorf("flight index = %+v", flight)
	}

	// The built-in set survives alongside extras.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "obs_trace_spans_total") {
		t.Errorf("/metrics lost trace counters: %d", rec.Code)
	}
}

func TestAdminServerGracefulClose(t *testing.T) {
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", admin.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := admin.Close(); err != nil {
		t.Errorf("graceful Close with no in-flight requests = %v, want nil", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", admin.Addr())); err == nil {
		t.Error("listener still accepting after Close")
	}
}

func TestAdminServerCloseIdempotent(t *testing.T) {
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	// The second Close must return the cached result instead of
	// blocking on the already-consumed Serve error.
	done := make(chan error, 1)
	go func() { done <- admin.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("second Close = %v, want nil (first call's result)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second Close blocked: not idempotent")
	}
}

func TestAdminServerCloseCutsSlowRequests(t *testing.T) {
	// A request that outlives ShutdownTimeout must be cut, and Close
	// must say so rather than hang or silently succeed.
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.NewRegistry(), func() obs.Health {
		time.Sleep(2 * time.Second)
		return obs.Health{OK: true}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	admin.ShutdownTimeout = 50 * time.Millisecond

	started := make(chan struct{})
	go func() {
		close(started)
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", admin.Addr()))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the handler enter its sleep

	start := time.Now()
	err = admin.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Close took %v, want bounded by ShutdownTimeout", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "cut in-flight") {
		t.Errorf("Close with stuck request = %v, want cut-in-flight report", err)
	}
}
