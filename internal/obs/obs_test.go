package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine: all must share the
			// same series.
			c := r.Counter("test_ops_total", "ops", L("kind", "inc"))
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c := r.Counter("test_ops_total", "ops", L("kind", "inc"))
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_temp", "temperature")
	g.Set(20)
	g.Add(2.5)
	g.Add(-10)
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.1, 0.5, 1})
	// Exactly-on-bound samples land in the bucket whose le equals the
	// value (Prometheus le semantics: cumulative counts are ≤ bound).
	for _, v := range []float64{0.05, 0.1, 0.3, 0.5, 0.9, 1.0, 7} {
		h.Observe(v)
	}
	counts := h.bucketCounts()
	want := []uint64{2, 2, 2, 1} // (-inf,0.1], (0.1,0.5], (0.5,1], (1,+inf)
	if len(counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(0.05+0.1+0.3+0.5+0.9+1.0+7)) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 100 samples uniform in (0,1]: every quantile interpolates inside
	// the first bucket, linearly from 0 to 1.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5 (linear interpolation in [0,1])", got)
	}
	if got := h.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("p100 = %v, want 1", got)
	}

	// Spread across buckets: 50 in (0,1], 30 in (1,2], 20 in (2,4].
	h2 := r.Histogram("test_q2_seconds", "q2", []float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h2.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h2.Observe(3)
	}
	// rank(0.9) = 90 → 10 into the 20-count (2,4] bucket → 2 + 2·(10/20) = 3.
	if got := h2.Quantile(0.9); math.Abs(got-3) > 1e-9 {
		t.Errorf("p90 = %v, want 3", got)
	}
	// rank(0.5) = 50 → exactly the full first bucket → its upper bound.
	if got := h2.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("p50 = %v, want 1", got)
	}

	// Samples beyond the last finite bound clamp to it.
	h3 := r.Histogram("test_q3_seconds", "q3", []float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "conc", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w%2) * 0.9) // half below, half above the bound
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	counts := h.bucketCounts()
	if counts[0] != 2000 || counts[1] != 2000 {
		t.Fatalf("buckets = %v, want [2000 2000]", counts)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("test_x", "x")
}

func TestSnapshotLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", L("kind", "x")).Add(3)
	r.Counter("a_total", "a", L("kind", "y")).Add(5)
	r.Gauge("g", "g").Set(1.5)
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	snap := r.Snapshot()
	if v := snap.Value("a_total", L("kind", "x")); v != 3 {
		t.Errorf("a_total{kind=x} = %v, want 3", v)
	}
	if v := snap.Value("a_total", L("kind", "y")); v != 5 {
		t.Errorf("a_total{kind=y} = %v, want 5", v)
	}
	if v := snap.Value("g"); v != 1.5 {
		t.Errorf("g = %v, want 1.5", v)
	}
	if n := snap.HistCount("h_seconds"); n != 2 {
		t.Errorf("h_seconds count = %d, want 2", n)
	}
	p, ok := snap.Get("h_seconds")
	if !ok {
		t.Fatal("h_seconds missing from snapshot")
	}
	if got := p.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("snapshot p25 = %v, want 0.5", got)
	}
	if _, ok := snap.Get("a_total"); ok {
		t.Error("bare a_total should not match labeled series")
	}
	if v := snap.Value("missing"); v != 0 {
		t.Errorf("missing series value = %v, want 0", v)
	}
}

func TestSpanRecordsLatency(t *testing.T) {
	r := NewRegistry()
	sp := StartSpan(r, "stage_seconds", "stage latency", "segment")
	d := sp.End()
	if d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	snap := r.Snapshot()
	if n := snap.HistCount("stage_seconds", L("stage", "segment")); n != 1 {
		t.Fatalf("stage histogram count = %d, want 1", n)
	}
}
