package obs

import (
	"math"
	"runtime/metrics"
)

// EnableRuntimeMetrics arms the Go runtime instrument panel on a
// registry: goroutine count, heap and total memory, GC cycle and
// allocation totals, and the GC-pause and scheduler-latency
// distributions (as quantile gauges), all sampled from runtime/metrics
// at snapshot time via AddCollector — no polling goroutine, no stop
// handle, always fresh at scrape. Idempotent per registry, so every
// layer of the stack (session, engine, live loop, cluster, daemons)
// calls it unconditionally and exactly one collector runs.
//
// Exported series:
//
//	go_goroutines                         live goroutines
//	go_gomaxprocs                         scheduler parallelism (GOMAXPROCS)
//	go_heap_objects_bytes                 bytes in live + unswept heap objects
//	go_memory_total_bytes                 all memory mapped by the runtime
//	go_gc_cycles_total                    completed GC cycles
//	go_alloc_bytes_total                  cumulative bytes allocated
//	go_gc_pause_seconds{quantile=...}     stop-the-world pause distribution
//	go_sched_latency_seconds{quantile=...} goroutine scheduling latency
func EnableRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.collMu.Lock()
	armed := r.runtimeOn
	r.runtimeOn = true
	r.collMu.Unlock()
	if armed {
		return
	}
	r.AddCollector(newRuntimeCollector())
}

// runtimeSamples names the runtime/metrics series the panel reads; the
// order is fixed so the collector can index instead of matching names.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// runtimeQuantiles are the distribution cut points exported for the
// pause and scheduling-latency histograms. "1" is the observed max.
var runtimeQuantiles = []float64{0.5, 0.99, 1}

func newRuntimeCollector() func(*Registry) {
	return func(r *Registry) {
		// The sample buffer is per invocation: Registry.collect runs
		// collectors outside any lock, so concurrent Snapshot calls
		// (overlapping /metrics scrapes, a scrape racing /healthz) may
		// run this closure at the same time — a shared buffer would be
		// a data race under metrics.Read's in-place fill.
		samples := make([]metrics.Sample, len(runtimeSamples))
		for i, name := range runtimeSamples {
			samples[i].Name = name
		}
		metrics.Read(samples)
		setRuntimeGauge(r, "go_goroutines",
			"Live goroutines.", samples[0])
		setRuntimeGauge(r, "go_gomaxprocs",
			"Scheduler parallelism (GOMAXPROCS).", samples[1])
		setRuntimeGauge(r, "go_heap_objects_bytes",
			"Bytes occupied by live and unswept heap objects.", samples[2])
		setRuntimeGauge(r, "go_memory_total_bytes",
			"All memory mapped into the process by the Go runtime.", samples[3])
		setRuntimeGauge(r, "go_gc_cycles_total",
			"Completed garbage-collection cycles.", samples[4])
		setRuntimeGauge(r, "go_alloc_bytes_total",
			"Cumulative bytes allocated on the heap.", samples[5])
		setRuntimeHistQuantiles(r, "go_gc_pause_seconds",
			"Distribution of GC stop-the-world pause latencies.", samples[6])
		setRuntimeHistQuantiles(r, "go_sched_latency_seconds",
			"Distribution of goroutine scheduling latencies (runnable to running).", samples[7])
	}
}

// setRuntimeGauge stores one scalar runtime sample, tolerating
// KindBad (a metric absent from this Go version reads as nothing).
func setRuntimeGauge(r *Registry, name, help string, s metrics.Sample) {
	var v float64
	switch s.Value.Kind() {
	case metrics.KindUint64:
		v = float64(s.Value.Uint64())
	case metrics.KindFloat64:
		v = s.Value.Float64()
	default:
		return
	}
	r.Gauge(name, help).Set(v)
}

// setRuntimeHistQuantiles summarizes a runtime Float64Histogram into
// quantile gauges. The runtime's bucket layout differs per metric and
// per release, so the panel exports interpolated quantiles rather than
// re-bucketing into a Prometheus histogram.
func setRuntimeHistQuantiles(r *Registry, name, help string, s metrics.Sample) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return
	}
	for _, q := range runtimeQuantiles {
		label := formatFloat(q)
		r.Gauge(name, help, L("quantile", label)).Set(runtimeHistQuantile(h, q))
	}
}

// runtimeHistQuantile estimates the q-th quantile of a runtime
// histogram by linear interpolation inside the bucket holding the
// target rank; -Inf/+Inf bucket edges clamp to their finite neighbor.
// Returns 0 for an empty histogram (a gauge must hold something).
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		// Bucket i spans Buckets[i] .. Buckets[i+1].
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	// Unreachable with total > 0; keep the compiler honest.
	return 0
}
