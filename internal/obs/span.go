package obs

import "time"

// Span is one timed section of the pipeline. Spans are values, not
// pointers: starting one is two words on the stack plus a clock read,
// cheap enough to wrap every recognition stage of every stroke.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span recording into the histogram
// name{stage="stage"} in r, creating it (with LatencyBuckets) on first
// use. Call End to record. Hot paths that trace the same stage
// repeatedly should hold the histogram and use StartTimer instead, to
// skip the registry lookup.
func StartSpan(r *Registry, name, help, stage string) Span {
	return StartTimer(Or(r).Histogram(name, help, nil, L("stage", stage)))
}

// StartTimer opens a span against an already-resolved histogram.
func StartTimer(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End closes the span, records its latency, and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.ObserveDuration(d)
	}
	return d
}
