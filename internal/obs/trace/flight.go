package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rfipad/internal/obs"
)

// Anomaly triggers — the events that fire a flight-recorder dump.
// Each maps to one obs_flight_dumps_total{trigger} series.
const (
	// TriggerPanic is a stream handler panic that quarantined the
	// stream.
	TriggerPanic = "panic_quarantine"
	// TriggerBreakerOpen is a reconnect circuit breaker opening on a
	// flapping reader link.
	TriggerBreakerOpen = "breaker_open"
	// TriggerHandoffFallback is a cluster handoff that missed its
	// deadline (or had no usable checkpoint) and fell back to live
	// recalibration.
	TriggerHandoffFallback = "handoff_fallback"
	// TriggerCorruptCheckpoint is a checkpoint that failed its
	// integrity envelope (bad magic, CRC, version, or payload) at
	// restore or adoption.
	TriggerCorruptCheckpoint = "corrupt_checkpoint"
	// TriggerLeaseExpired is an ownership lease that expired unrenewed:
	// the (possibly partitioned) owner self-demoted the stream before
	// the failure detector could hand it to someone else.
	TriggerLeaseExpired = "lease_expired"
	// TriggerFencedWrite is a checkpoint write rejected by the epoch
	// fence — a stale former owner tried to overwrite its successor's
	// state.
	TriggerFencedWrite = "fenced_write"
)

// Summary is the recent-readings digest attached to a dump: enough to
// say what the stream had accomplished when the anomaly fired, without
// shipping raw readings.
type Summary struct {
	Readings   int           `json:"readings"`
	Dropped    int           `json:"dropped,omitempty"`
	Strokes    int           `json:"strokes,omitempty"`
	Letters    string        `json:"letters,omitempty"`
	Calibrated bool          `json:"calibrated"`
	DeadTags   int           `json:"dead_tags,omitempty"`
	LastTime   time.Duration `json:"last_time,omitempty"`
}

// Dump is one flight-recorder record: the anomaly, the stream's
// recent-readings summary, and the last spans of its trace — the black
// box a post-mortem replays instead of re-running the chaos blind.
type Dump struct {
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"`
	Node    string    `json:"node,omitempty"`
	Stream  string    `json:"stream,omitempty"`
	Trace   ID        `json:"trace,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Summary *Summary  `json:"summary,omitempty"`
	Spans   []Span    `json:"spans,omitempty"`
}

// DumpMeta is the index entry /debug/flight serves per dump (metadata
// only; the spans live in the JSONL file).
type DumpMeta struct {
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"`
	Node    string    `json:"node,omitempty"`
	Stream  string    `json:"stream,omitempty"`
	Trace   ID        `json:"trace,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Spans   int       `json:"spans"`
}

// maxIndex bounds the in-memory dump index; the JSONL file keeps
// everything.
const maxIndex = 256

// Flight is the anomaly flight recorder: Record appends one JSON line
// per dump to flight.jsonl under the configured directory (the
// -flight-dir flag on the daemons), counts it on
// obs_flight_dumps_total{trigger}, and keeps a bounded in-memory index
// for /debug/flight. A nil *Flight records nothing — callers wire it
// through unconditionally, exactly like the nil Tracer.
type Flight struct {
	reg  *obs.Registry
	path string

	mu    sync.Mutex
	f     *os.File
	total uint64
	index []DumpMeta
	// MaxSpans bounds spans per dump (default 64: "the last N spans").
	maxSpans int
	// Now overrides the dump clock (tests; nil = time.Now).
	Now func() time.Time
}

// OpenFlight opens (creating if needed) a flight-recorder directory
// and its flight.jsonl append-only log. Counters land in reg (nil =
// obs.Default()). maxSpans bounds how many trailing spans each dump
// keeps (0 = 64).
func OpenFlight(dir string, reg *obs.Registry, maxSpans int) (*Flight, error) {
	if dir == "" {
		return nil, fmt.Errorf("trace: empty flight dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: flight dir: %w", err)
	}
	path := filepath.Join(dir, "flight.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: flight log: %w", err)
	}
	if maxSpans <= 0 {
		maxSpans = 64
	}
	return &Flight{reg: obs.Or(reg), path: path, f: f, maxSpans: maxSpans}, nil
}

// Path returns the JSONL log path.
func (fl *Flight) Path() string {
	if fl == nil {
		return ""
	}
	return fl.path
}

// Record writes one dump: a zero Time is stamped now, spans beyond
// MaxSpans are trimmed oldest-first, and the trigger counter advances
// even if the disk write fails (the anomaly happened either way). A
// dump that never reaches disk — a write error, or Record after Close
// — is kept out of the /debug/flight index and counted on
// obs_flight_write_failures_total instead. No-op on the nil recorder.
func (fl *Flight) Record(d Dump) {
	if fl == nil {
		return
	}
	fl.reg.Counter("obs_flight_dumps_total",
		"Anomaly flight-recorder dumps written, by trigger.",
		obs.L("trigger", d.Trigger)).Inc()
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if d.Time.IsZero() {
		if fl.Now != nil {
			d.Time = fl.Now()
		} else {
			d.Time = time.Now()
		}
	}
	if len(d.Spans) > fl.maxSpans {
		d.Spans = d.Spans[len(d.Spans)-fl.maxSpans:]
	}
	line, err := json.Marshal(d)
	if err != nil {
		// A dump that cannot marshal (should be impossible for these
		// plain types) must not take the recorder down.
		return
	}
	line = append(line, '\n')
	if fl.f == nil {
		// Record after Close (a racing anomaly during shutdown): the
		// dump never reaches disk, so it must not appear in the index
		// either — /debug/flight only reports what flight.jsonl holds.
		fl.reg.Counter("obs_flight_write_failures_total",
			"Flight-recorder dumps lost to a failed or closed JSONL write.").Inc()
		return
	}
	if _, werr := fl.f.Write(line); werr != nil {
		fl.reg.Counter("obs_flight_write_failures_total",
			"Flight-recorder dumps lost to a failed or closed JSONL write.").Inc()
		return
	}
	fl.total++
	fl.index = append(fl.index, DumpMeta{
		Time: d.Time, Trigger: d.Trigger, Node: d.Node,
		Stream: d.Stream, Trace: d.Trace, Detail: d.Detail,
		Spans: len(d.Spans),
	})
	if len(fl.index) > maxIndex {
		fl.index = fl.index[len(fl.index)-maxIndex:]
	}
}

// Index returns the recent dump metadata, oldest first (bounded at
// maxIndex entries; Total counts everything ever recorded).
func (fl *Flight) Index() (total uint64, dumps []DumpMeta) {
	if fl == nil {
		return 0, nil
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.total, append([]DumpMeta(nil), fl.index...)
}

// Handler serves the /debug/flight index: where the black box lives
// and what it has captured, filterable with ?trigger= and ?stream=.
func (fl *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		wantTrigger, wantStream := q.Get("trigger"), q.Get("stream")
		total, dumps := fl.Index()
		out := make([]DumpMeta, 0, len(dumps))
		for _, d := range dumps {
			if wantTrigger != "" && d.Trigger != wantTrigger {
				continue
			}
			if wantStream != "" && d.Stream != wantStream {
				continue
			}
			out = append(out, d)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"file":  fl.Path(),
			"total": total,
			"dumps": out,
		})
	})
}

// Close syncs and closes the JSONL log (nil-safe, idempotent enough
// for deferred use).
func (fl *Flight) Close() error {
	if fl == nil {
		return nil
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return nil
	}
	err := fl.f.Sync()
	if cerr := fl.f.Close(); err == nil {
		err = cerr
	}
	fl.f = nil
	return err
}

// ReadDumps parses a flight.jsonl file back into dumps — the test-side
// inverse of Record, so chaos assertions read the same black box an
// operator would.
func ReadDumps(path string) ([]Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dumps []Dump
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var d Dump
		if err := dec.Decode(&d); err != nil {
			return dumps, fmt.Errorf("trace: flight log line %d: %w", len(dumps)+1, err)
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}
