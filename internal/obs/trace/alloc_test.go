package trace

import (
	"testing"
	"time"

	"rfipad/internal/obs"
)

// TestTraceAddAllocs pins the tracing cost contract at the package
// boundary (the engine-integration variant lives in the root alloc
// suite): recording through a nil handle — the unsampled majority of
// streams — and through a warmed ring are both zero allocations per
// span, so tracing never shows up as GC pressure on the ingest path.
func TestTraceAddAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	var unsampled *StreamTrace
	if avg := testing.AllocsPerRun(10000, func() {
		unsampled.Add(Span{Name: SpanIngest, Duration: time.Millisecond, Count: 400})
	}); avg != 0 {
		t.Errorf("nil StreamTrace.Add allocates %.4f objects/span, want 0", avg)
	}

	tr := New(Config{SampleEvery: 1, BufSpans: 32, Seed: 1, Obs: obs.NewRegistry()})
	st := tr.Stream("s")
	for i := 0; i < 32; i++ {
		st.Add(Span{Name: SpanIngest})
	}
	if avg := testing.AllocsPerRun(10000, func() {
		st.Add(Span{Name: SpanIngest, Duration: time.Millisecond, Count: 400})
	}); avg != 0 {
		t.Errorf("warmed StreamTrace.Add allocates %.4f objects/span, want 0", avg)
	}
}
