//go:build race

package trace

// raceEnabled mirrors the root package's guard: exact AllocsPerRun
// assertions are unreliable under the race detector's instrumentation.
const raceEnabled = true
