package trace

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rfipad/internal/obs"
)

func TestIDRoundTrip(t *testing.T) {
	id := ID(0xdeadbeef01020304)
	s := id.String()
	if len(s) != 16 || s != "deadbeef01020304" {
		t.Fatalf("ID.String() = %q, want 16 lowercase hex digits", s)
	}
	back, err := ParseID(s)
	if err != nil || back != id {
		t.Fatalf("ParseID(%q) = %v, %v; want %v", s, back, err, id)
	}
	if got, err := ParseID(""); err != nil || got != 0 {
		t.Fatalf("ParseID(\"\") = %v, %v; want 0, nil", got, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}

	data, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	var dec ID
	if err := json.Unmarshal(data, &dec); err != nil || dec != id {
		t.Fatalf("JSON round trip = %v, %v; want %v", dec, err, id)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var tr *Tracer
	if st := tr.Stream("s"); st != nil {
		t.Fatal("nil Tracer.Stream should return nil")
	}
	if st := tr.Adopt("s", 7); st != nil {
		t.Fatal("nil Tracer.Adopt should return nil")
	}
	if d := tr.Traces(); d != nil {
		t.Fatal("nil Tracer.Traces should return nil")
	}
	var st *StreamTrace
	st.Add(Span{Name: SpanIngest}) // must not panic
	if st.ID() != 0 {
		t.Fatal("nil StreamTrace.ID should be 0")
	}
	if st.Spans() != nil {
		t.Fatal("nil StreamTrace.Spans should be nil")
	}
	var fl *Flight
	fl.Record(Dump{Trigger: TriggerPanic}) // must not panic
	if total, dumps := fl.Index(); total != 0 || dumps != nil {
		t.Fatal("nil Flight.Index should be empty")
	}
	if err := fl.Close(); err != nil {
		t.Fatal("nil Flight.Close should be nil")
	}
}

func TestSamplingEveryNIsSticky(t *testing.T) {
	tr := New(Config{SampleEvery: 3, Seed: 1, Obs: obs.NewRegistry()})
	var sampled, unsampled int
	handles := map[string]*StreamTrace{}
	for i := 0; i < 9; i++ {
		name := string(rune('a' + i))
		st := tr.Stream(name)
		handles[name] = st
		if st != nil {
			sampled++
		} else {
			unsampled++
		}
	}
	if sampled != 3 || unsampled != 6 {
		t.Fatalf("SampleEvery=3 over 9 streams: %d sampled, %d unsampled; want 3/6", sampled, unsampled)
	}
	// Sticky: re-resolving returns the identical decision and handle.
	for name, want := range handles {
		if got := tr.Stream(name); got != want {
			t.Fatalf("stream %q resolved %p then %p: decision not sticky", name, want, got)
		}
	}
	// Negative disables everything.
	off := New(Config{SampleEvery: -1, Seed: 1, Obs: obs.NewRegistry()})
	if st := off.Stream("x"); st != nil {
		t.Fatal("SampleEvery=-1 must sample nothing")
	}
}

func TestRingWrapKeepsNewestAndCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{SampleEvery: 1, BufSpans: 4, Seed: 1, Obs: reg})
	st := tr.Stream("s")
	for i := 0; i < 10; i++ {
		st.Add(Span{Name: SpanIngest, Count: i})
	}
	spans := st.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := 6 + i; sp.Count != want {
			t.Errorf("span[%d].Count = %d, want %d (newest-4 retained in order)", i, sp.Count, want)
		}
		if sp.Seq != uint64(6+i) {
			t.Errorf("span[%d].Seq = %d, want %d", i, sp.Seq, 6+i)
		}
		if sp.Trace != st.ID() || sp.Stream != "s" {
			t.Errorf("span[%d] not stamped: trace=%v stream=%q", i, sp.Trace, sp.Stream)
		}
	}
	snap := reg.Snapshot()
	if v := snap.Value("obs_trace_spans_total"); v != 10 {
		t.Errorf("obs_trace_spans_total = %v, want 10", v)
	}
	if v := snap.Value("obs_trace_spans_dropped_total"); v != 6 {
		t.Errorf("obs_trace_spans_dropped_total = %v, want 6", v)
	}
	if v := snap.Value("obs_trace_streams_total", obs.L("sampled", "true")); v != 1 {
		t.Errorf("sampled streams = %v, want 1", v)
	}
}

func TestAdoptStitchesAcrossTracers(t *testing.T) {
	// Two tracers standing in for two nodes' processes: the donor
	// samples a stream, its ID crosses inside the checkpoint, and the
	// receiver's spans land under the same identity.
	donor := New(Config{SampleEvery: 1, Seed: 1, Obs: obs.NewRegistry()})
	src := donor.Stream("plate-0")
	src.Add(Span{Name: SpanIngest})
	id := src.ID()

	receiver := New(Config{SampleEvery: -1, Seed: 2, Obs: obs.NewRegistry()})
	dst := receiver.Adopt("plate-0", id)
	if dst == nil {
		t.Fatal("Adopt with a non-zero ID must sample regardless of local policy")
	}
	if dst.ID() != id {
		t.Fatalf("adopted trace ID = %v, want donor's %v", dst.ID(), id)
	}
	dst.Add(Span{Name: SpanAdopt})
	if spans := dst.Spans(); len(spans) != 1 || spans[0].Trace != id {
		t.Fatalf("receiver spans = %+v, want one adopt span under %v", spans, id)
	}

	// Shared-tracer adoption (in-process cluster): same ID reuses the
	// existing ring, so the trace simply continues.
	same := donor.Adopt("plate-0", id)
	if same != src {
		t.Fatal("Adopt with the existing ID must reuse the ring")
	}
	// A zero ID means the donor never sampled: stays unsampled.
	if st := receiver.Adopt("plate-1", 0); st != nil {
		t.Fatal("Adopt with zero ID must stay unsampled")
	}
}

func TestAdoptRebrandCountsStreamOnce(t *testing.T) {
	// The engine restore path resolves Stream() first and then calls
	// Adopt with the checkpoint's trace ID: the same stream must not be
	// counted twice on obs_trace_streams_total{sampled="true"}.
	reg := obs.NewRegistry()
	tr := New(Config{SampleEvery: 1, Seed: 1, Obs: reg})
	if st := tr.Stream("plate-0"); st == nil {
		t.Fatal("SampleEvery=1 must sample plate-0")
	}
	adopted := tr.Adopt("plate-0", 42)
	if adopted == nil || adopted.ID() != 42 {
		t.Fatalf("Adopt rebrand handle = %v, want ID 42", adopted.ID())
	}
	snap := reg.Snapshot()
	if v := snap.Value("obs_trace_streams_total", obs.L("sampled", "true")); v != 1 {
		t.Errorf("sampled streams after Stream()+Adopt rebrand = %v, want 1", v)
	}
	if v := snap.Value("obs_trace_streams_total", obs.L("sampled", "false")); v != 0 {
		t.Errorf("unsampled streams = %v, want 0", v)
	}
}

func TestTracesSortedAndHandlerFilters(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Seed: 1, Obs: obs.NewRegistry()})
	b := tr.Stream("b")
	a := tr.Stream("a")
	a.Add(Span{Name: SpanIngest, Duration: time.Millisecond})
	a.Add(Span{Name: SpanMailbox, Duration: time.Microsecond})
	b.Add(Span{Name: SpanResult, Duration: 2 * time.Millisecond})

	dumps := tr.Traces()
	if len(dumps) != 2 || dumps[0].Stream != "a" || dumps[1].Stream != "b" {
		t.Fatalf("Traces() = %+v, want [a b] sorted", dumps)
	}
	if dumps[0].Recorded != 2 {
		t.Errorf("stream a Recorded = %d, want 2", dumps[0].Recorded)
	}

	get := func(query string) map[string][]StreamDump {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", query, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q, want application/json", ct)
		}
		var out map[string][]StreamDump
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON from %s: %v", query, err)
		}
		return out
	}

	if all := get(""); len(all["traces"]) != 2 {
		t.Errorf("unfiltered traces = %d, want 2", len(all["traces"]))
	}
	byStream := get("?stream=a")["traces"]
	if len(byStream) != 1 || byStream[0].Stream != "a" {
		t.Errorf("?stream=a = %+v, want only a", byStream)
	}
	byTrace := get("?trace=" + b.ID().String())["traces"]
	if len(byTrace) != 1 || byTrace[0].Stream != "b" {
		t.Errorf("?trace= = %+v, want only b", byTrace)
	}
	byDur := get("?stream=a&min_duration=500us")["traces"]
	if len(byDur) != 1 || len(byDur[0].Spans) != 1 || byDur[0].Spans[0].Name != SpanIngest {
		t.Errorf("min_duration filter = %+v, want only the 1ms ingest span", byDur)
	}
	if byDur[0].Recorded != 2 {
		t.Errorf("filtered view Recorded = %d, want 2 (hiding is declared)", byDur[0].Recorded)
	}

	// Bad filters are 400s, not panics.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=zzz", nil))
	if rec.Code != 400 {
		t.Errorf("bad trace filter status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_duration=fast", nil))
	if rec.Code != 400 {
		t.Errorf("bad min_duration status = %d, want 400", rec.Code)
	}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fl, err := OpenFlight(dir, reg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Path() != filepath.Join(dir, "flight.jsonl") {
		t.Fatalf("Path() = %q", fl.Path())
	}
	fl.Record(Dump{
		Trigger: TriggerPanic,
		Node:    "node-00",
		Stream:  "plate-0",
		Trace:   ID(42),
		Detail:  "boom",
		Summary: &Summary{Readings: 7, Letters: "IT", Calibrated: true},
		Spans: []Span{
			{Name: SpanIngest, Seq: 1},
			{Name: SpanResult, Seq: 2},
			{Name: SpanQuarantine, Seq: 3},
		},
	})
	fl.Record(Dump{Trigger: TriggerBreakerOpen, Detail: "flapping"})
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	dumps, err := ReadDumps(fl.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 {
		t.Fatalf("ReadDumps = %d dumps, want 2", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != TriggerPanic || d.Node != "node-00" || d.Stream != "plate-0" ||
		d.Trace != ID(42) || d.Detail != "boom" {
		t.Errorf("dump[0] = %+v", d)
	}
	if d.Summary == nil || d.Summary.Readings != 7 || d.Summary.Letters != "IT" || !d.Summary.Calibrated {
		t.Errorf("dump[0].Summary = %+v", d.Summary)
	}
	// maxSpans=2 trims oldest-first: the quarantine span survives.
	if len(d.Spans) != 2 || d.Spans[0].Name != SpanResult || d.Spans[1].Name != SpanQuarantine {
		t.Errorf("dump[0].Spans = %+v, want newest 2", d.Spans)
	}
	if d.Time.IsZero() {
		t.Error("dump time not stamped")
	}

	snap := reg.Snapshot()
	if v := snap.Value("obs_flight_dumps_total", obs.L("trigger", TriggerPanic)); v != 1 {
		t.Errorf("dumps{panic} = %v, want 1", v)
	}
	if v := snap.Value("obs_flight_dumps_total", obs.L("trigger", TriggerBreakerOpen)); v != 1 {
		t.Errorf("dumps{breaker} = %v, want 1", v)
	}
}

func TestFlightIndexAndHandler(t *testing.T) {
	fl, err := OpenFlight(t.TempDir(), obs.NewRegistry(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fl.Record(Dump{Trigger: TriggerPanic, Stream: "a"})
	fl.Record(Dump{Trigger: TriggerHandoffFallback, Stream: "b"})
	fl.Record(Dump{Trigger: TriggerPanic, Stream: "b"})

	total, dumps := fl.Index()
	if total != 3 || len(dumps) != 3 {
		t.Fatalf("Index = %d, %d entries; want 3, 3", total, len(dumps))
	}

	get := func(query string) map[string]json.RawMessage {
		rec := httptest.NewRecorder()
		fl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight"+query, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", query, rec.Code)
		}
		var out map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	count := func(raw json.RawMessage) int {
		var metas []DumpMeta
		if err := json.Unmarshal(raw, &metas); err != nil {
			t.Fatal(err)
		}
		return len(metas)
	}
	if n := count(get("")["dumps"]); n != 3 {
		t.Errorf("unfiltered dumps = %d, want 3", n)
	}
	if n := count(get("?trigger=" + TriggerPanic)["dumps"]); n != 2 {
		t.Errorf("?trigger=panic dumps = %d, want 2", n)
	}
	if n := count(get("?stream=b")["dumps"]); n != 2 {
		t.Errorf("?stream=b dumps = %d, want 2", n)
	}
	if n := count(get("?trigger=" + TriggerPanic + "&stream=b")["dumps"]); n != 1 {
		t.Errorf("combined filter dumps = %d, want 1", n)
	}
	if file := string(get("")["file"]); !strings.Contains(file, "flight.jsonl") {
		t.Errorf("index file = %s, want the jsonl path", file)
	}
}

func TestFlightRecordAfterCloseNotIndexed(t *testing.T) {
	// A dump racing shutdown never reaches disk; it must not appear in
	// the /debug/flight index, and the loss must be visible on the
	// write-failure counter (the anomaly counter still advances — the
	// anomaly happened either way).
	reg := obs.NewRegistry()
	fl, err := OpenFlight(t.TempDir(), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	fl.Record(Dump{Trigger: TriggerPanic, Stream: "early"})
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	fl.Record(Dump{Trigger: TriggerPanic, Stream: "late"})

	total, dumps := fl.Index()
	if total != 1 || len(dumps) != 1 || dumps[0].Stream != "early" {
		t.Errorf("Index after post-Close record = %d, %+v; want only the early dump", total, dumps)
	}
	onDisk, err := ReadDumps(fl.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 1 {
		t.Errorf("flight.jsonl holds %d dumps, want 1", len(onDisk))
	}
	snap := reg.Snapshot()
	if v := snap.Value("obs_flight_write_failures_total"); v != 1 {
		t.Errorf("write failures = %v, want 1", v)
	}
	if v := snap.Value("obs_flight_dumps_total", obs.L("trigger", TriggerPanic)); v != 2 {
		t.Errorf("dumps{panic} = %v, want 2 (anomaly counter advances regardless)", v)
	}
}
