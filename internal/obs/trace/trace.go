// Package trace is the causal tracing layer for the live stack: each
// tag stream carries one TraceID for the lifetime of a word, and every
// stage of that word's journey — ingest, sanitize, mailbox queueing,
// shard recognition, calibration or restore, result emission, and the
// cluster's evict → transfer → adopt → skipto migration chain — emits
// a span into the stream's fixed-capacity ring buffer. Where the
// aggregate histograms in package obs answer "how fast is each stage
// on average", a trace answers "what happened to *this* stream's
// word": which handoff it rode, how long it sat in a mailbox, which
// node adopted it.
//
// Design constraints, in priority order:
//
//   - The unsampled hot path is free: an unsampled (or untraced)
//     stream resolves to a nil *StreamTrace, every method of which is
//     a nil-receiver no-op — one predictable branch, zero allocations.
//   - The sampled path never allocates per span: spans are plain
//     values written into a preallocated ring slot; the ring
//     overwrites its oldest spans rather than growing.
//   - Trace context crosses node boundaries inside the checkpoint
//     transfer frame (supervise.Checkpoint.TraceID), so a migrated
//     stream's trace is stitched — same TraceID, node-attributed spans
//     on both sides — not severed.
//
// Span writes synchronize with snapshot reads through a per-stream
// mutex: a Lock/Unlock pair on an uncontended mutex is a few
// nanoseconds and allocation-free, and it keeps torn span reads (and
// race-detector reports) structurally impossible, which matters more
// here than lock-freedom — the only contended case is a coordinator
// recording a migration span while the owning shard records ingest
// spans, a once-per-handoff event.
package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"rfipad/internal/obs"
)

// ID is one stream's trace identity for the lifetime of a word. It
// travels with the stream across node boundaries (inside the
// checkpoint transfer frame), so spans recorded by different nodes
// stitch into one causal story. The zero ID means "unsampled".
type ID uint64

// String renders the ID as 16 hex digits (zero-padded, lowercase).
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a quoted hex string.
func (id ID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON parses the quoted hex form (and accepts bare numbers
// for forward compatibility).
func (id *ID) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	if s == "" {
		*id = 0
		return nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	*id = ID(v)
	return nil
}

// ParseID parses the 16-hex-digit form produced by ID.String. The
// empty string parses to the zero (unsampled) ID.
func ParseID(s string) (ID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// Span names — the stage taxonomy of a word's lifecycle. Pipeline
// spans are recorded by the engine shard that owns the stream; cluster
// spans by the coordinator and the adopting engine.
const (
	// SpanIngest covers one batch's pass through the recognizer
	// (segmentation + recognition); Count is readings admitted.
	SpanIngest = "ingest"
	// SpanSanitize records readings the ingest sanitizer rejected from
	// a batch (Count); only emitted when at least one was rejected.
	SpanSanitize = "sanitize"
	// SpanMailbox is the time a batch waited in its shard's mailbox
	// between enqueue and the worker picking it up.
	SpanMailbox = "mailbox"
	// SpanCalibrate marks the static-prelude calibration completing;
	// Count is the dead-tag count.
	SpanCalibrate = "calibrate"
	// SpanRestore marks a calibration restored from a durable
	// checkpoint at stream creation (skipping the prelude).
	SpanRestore = "restore"
	// SpanResult covers recognition events leaving the stream; Count
	// is events delivered and Duration is enqueue-to-emission latency.
	SpanResult = "result"
	// SpanQuarantine marks a panic quarantine ending the stream.
	SpanQuarantine = "quarantine"

	// SpanEvict marks a stream's state leaving its owner for
	// migration: Trigger "graceful" means live state was evicted from
	// the donor engine, "failure" means the owner was dead and the
	// checkpoint came from the durable store.
	SpanEvict = "evict"
	// SpanTransfer covers the retrying TCP checkpoint transfer; Count
	// is dial attempts, Err the final failure if it never landed.
	SpanTransfer = "transfer"
	// SpanAdopt covers the receiving engine adopting the migrated
	// checkpoint.
	SpanAdopt = "adopt"
	// SpanSkipTo covers the restore + frame-cursor skip that resumes
	// recognition on the new owner without recalibration.
	SpanSkipTo = "skipto"
	// SpanFallback marks a handoff that missed its deadline (or had no
	// usable checkpoint) and fell back to live recalibration.
	SpanFallback = "fallback_live"
	// SpanDemote marks an owner self-demoting a stream after its
	// ownership lease expired unrenewed: state is evicted locally and a
	// final fenced-safe checkpoint attempted, all before the
	// coordinator's failure detector can reassign. Err carries the
	// final save's error when it was fenced or failed.
	SpanDemote = "demote"
)

// Span is one timed (or point) event in a stream's lifecycle. Spans
// are plain values — recording one copies it into a preallocated ring
// slot, so the only heap traffic is whatever strings the caller
// formats (constant names and pre-existing IDs are free).
type Span struct {
	// Trace is the stream's trace identity (stamped by Add).
	Trace ID `json:"trace"`
	// Stream names the stream (stamped by Add).
	Stream string `json:"stream"`
	// Seq is the per-ring causal sequence number (stamped by Add).
	// Spans recorded by different nodes order by Start time; within
	// one ring, Seq breaks clock ties.
	Seq uint64 `json:"seq"`
	// Name is the stage (one of the Span* constants).
	Name string `json:"name"`
	// Node attributes the span to a cluster member ("" standalone).
	Node string `json:"node,omitempty"`
	// Trigger attributes migration spans: "graceful" (evict from live
	// state) vs "failure" (checkpoint from the durable store) — the
	// same labels the cluster_handoff_seconds histogram carries.
	Trigger string `json:"trigger,omitempty"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Duration is the span's length (0 for point events).
	Duration time.Duration `json:"duration"`
	// Count is a stage-dependent magnitude: readings ingested,
	// readings rejected, events delivered, transfer attempts.
	Count int `json:"count,omitempty"`
	// Err carries the failure that ended the span, if any.
	Err string `json:"err,omitempty"`
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery samples one in N streams (by creation order): 1 (or
	// less) traces every stream, 4 traces every fourth. A negative
	// value disables sampling entirely — every stream resolves nil.
	SampleEvery int
	// BufSpans is each sampled stream's ring capacity in spans
	// (default 256). The ring overwrites oldest-first; overwrites are
	// counted on obs_trace_spans_dropped_total.
	BufSpans int
	// Seed makes TraceID generation deterministic (tests); 0 seeds
	// from the clock.
	Seed int64
	// Obs selects the registry the obs_trace_* series land in (nil =
	// obs.Default()).
	Obs *obs.Registry
}

// Tracer owns the per-stream trace rings and the sampling decision.
// All methods are safe for concurrent use. A nil *Tracer is valid and
// traces nothing — callers wire it through unconditionally.
type Tracer struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*StreamTrace // nil value = stream seen, unsampled
	created uint64                  // streams seen, drives SampleEvery
	idState uint64                  // splitmix64 state for ID generation

	sampled   *obs.Counter
	unsampled *obs.Counter
	spans     *obs.Counter
	dropped   *obs.Counter
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.BufSpans <= 0 {
		cfg.BufSpans = 256
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg := obs.Or(cfg.Obs)
	return &Tracer{
		cfg:     cfg,
		streams: map[string]*StreamTrace{},
		idState: uint64(seed),
		sampled: reg.Counter("obs_trace_streams_total",
			"Streams seen by the tracer, by sampling decision.", obs.L("sampled", "true")),
		unsampled: reg.Counter("obs_trace_streams_total",
			"Streams seen by the tracer, by sampling decision.", obs.L("sampled", "false")),
		spans: reg.Counter("obs_trace_spans_total",
			"Spans recorded into trace rings."),
		dropped: reg.Counter("obs_trace_spans_dropped_total",
			"Spans overwritten by ring wrap before being read."),
	}
}

// splitmix64 is the ID generator step: well-mixed, zero-dependency,
// never returns 0 from a non-pathological walk (0 output is skipped by
// the caller since 0 means unsampled).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream resolves the trace handle for a stream, deciding sampling on
// first sight. Returns nil — the free no-op handle — for unsampled
// streams or a nil Tracer. The decision is sticky: every later call
// for the same stream returns the same handle.
func (t *Tracer) Stream(stream string) *StreamTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, seen := t.streams[stream]
	if seen {
		return st
	}
	t.created++
	every := t.cfg.SampleEvery
	switch {
	case every < 0:
		st = nil
	case every <= 1 || (t.created-1)%uint64(every) == 0:
		st = t.newStreamLocked(stream, 0)
	}
	t.streams[stream] = st
	if st != nil {
		t.sampled.Inc()
	} else {
		t.unsampled.Inc()
	}
	return st
}

// Adopt resolves the trace handle for a stream arriving with trace
// context from another node (the checkpoint frame's TraceID). A zero
// id means the donor never sampled the stream — the local decision is
// also "unsampled", so a trace is never half-recorded. When the stream
// is already known under the same ID (the in-process cluster shares
// one tracer), the existing ring is reused and the trace simply
// continues; a different ID starts a fresh ring under the adopted
// identity.
func (t *Tracer) Adopt(stream string, id ID) *StreamTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	prev, seen := t.streams[stream]
	if seen && prev != nil && prev.id == id {
		return prev
	}
	if seen && prev == nil && id == 0 {
		return nil
	}
	var st *StreamTrace
	if id != 0 {
		st = t.newStreamLocked(stream, id)
		// Count each stream's sampling decision once: the engine's
		// restore path resolves Stream() first and then rebrands via
		// Adopt with the checkpoint's ID, which replaces the ring but
		// is still the same sampled stream.
		if !seen || prev == nil {
			t.sampled.Inc()
		}
	} else if !seen {
		t.unsampled.Inc()
	}
	t.streams[stream] = st
	return st
}

// newStreamLocked builds a sampled stream's ring. Callers hold t.mu.
func (t *Tracer) newStreamLocked(stream string, id ID) *StreamTrace {
	for id == 0 {
		t.idState = splitmix64(t.idState)
		id = ID(t.idState)
	}
	return &StreamTrace{
		tracer: t,
		id:     id,
		stream: stream,
		slots:  make([]Span, t.cfg.BufSpans),
	}
}

// StreamTrace is one sampled stream's span ring. The nil *StreamTrace
// is the unsampled handle: every method no-ops, so hot paths hold one
// pointer and need no further branching.
type StreamTrace struct {
	tracer *Tracer
	id     ID
	stream string

	mu    sync.Mutex
	next  uint64 // total spans ever recorded; next%len(slots) is the write slot
	slots []Span
}

// ID returns the stream's trace identity (0 on the nil handle).
func (st *StreamTrace) ID() ID {
	if st == nil {
		return 0
	}
	return st.id
}

// Add records one span, stamping its Trace, Stream, and Seq. The span
// value is copied into a preallocated ring slot — no allocation, no
// retention of caller memory beyond the strings already in sp. No-op
// on the nil handle.
func (st *StreamTrace) Add(sp Span) {
	if st == nil {
		return
	}
	sp.Trace = st.id
	sp.Stream = st.stream
	st.mu.Lock()
	sp.Seq = st.next
	if st.next >= uint64(len(st.slots)) {
		st.tracer.dropped.Inc()
	}
	st.slots[st.next%uint64(len(st.slots))] = sp
	st.next++
	st.mu.Unlock()
	st.tracer.spans.Inc()
}

// Spans returns the ring's retained spans in causal (Seq) order,
// oldest first. Nil on the nil handle.
func (st *StreamTrace) Spans() []Span {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.next
	cap64 := uint64(len(st.slots))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]Span, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, st.slots[i%cap64])
	}
	return out
}

// StreamDump is one stream's trace as exposed on /debug/traces and in
// flight-recorder dumps.
type StreamDump struct {
	Stream string `json:"stream"`
	Trace  ID     `json:"trace"`
	// Recorded is the total spans ever recorded; when it exceeds
	// len(Spans) the ring wrapped and the oldest spans are gone.
	Recorded uint64 `json:"recorded"`
	Spans    []Span `json:"spans"`
}

// Traces snapshots every sampled stream's ring, sorted by stream ID.
// Nil Tracer returns nil.
func (t *Tracer) Traces() []StreamDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	handles := make([]*StreamTrace, 0, len(t.streams))
	for _, st := range t.streams {
		if st != nil {
			handles = append(handles, st)
		}
	}
	t.mu.Unlock()
	out := make([]StreamDump, 0, len(handles))
	for _, st := range handles {
		st.mu.Lock()
		recorded := st.next
		st.mu.Unlock()
		out = append(out, StreamDump{
			Stream:   st.stream,
			Trace:    st.id,
			Recorded: recorded,
			Spans:    st.Spans(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// Handler serves the /debug/traces endpoint: a JSON document of every
// sampled stream's spans. Query parameters filter the view:
//
//	?stream=plate-0        only that stream
//	?trace=4a1f...         only the stream carrying that TraceID
//	?min_duration=250us    drop spans shorter than the bound
//
// Filtered-out spans stay counted in "recorded", so a trimmed view
// still says how much it hides.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		wantStream := q.Get("stream")
		wantTrace, err := ParseID(q.Get("trace"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var minDur time.Duration
		if s := q.Get("min_duration"); s != "" {
			minDur, err = time.ParseDuration(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("trace: bad min_duration %q: %v", s, err), http.StatusBadRequest)
				return
			}
		}
		dumps := t.Traces()
		out := make([]StreamDump, 0, len(dumps))
		for _, d := range dumps {
			if wantStream != "" && d.Stream != wantStream {
				continue
			}
			if wantTrace != 0 && d.Trace != wantTrace {
				continue
			}
			if minDur > 0 {
				kept := make([]Span, 0, len(d.Spans))
				for _, sp := range d.Spans {
					if sp.Duration >= minDur {
						kept = append(kept, sp)
					}
				}
				d.Spans = kept
			}
			out = append(out, d)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"traces": out})
	})
}
