package obs_test

import (
	"sync"
	"testing"

	"rfipad/internal/obs"
)

func TestRuntimeMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)
	obs.EnableRuntimeMetrics(reg) // idempotent: one collector, not two

	snap := reg.Snapshot()
	if v := snap.Value("go_goroutines"); v < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", v)
	}
	if v := snap.Value("go_gomaxprocs"); v < 1 {
		t.Errorf("go_gomaxprocs = %v, want >= 1", v)
	}
	if v := snap.Value("go_memory_total_bytes"); v <= 0 {
		t.Errorf("go_memory_total_bytes = %v, want > 0", v)
	}
}

// The registry runs collectors outside any lock, so overlapping
// Snapshot calls (concurrent /metrics scrapes, a scrape racing a
// health probe) execute the runtime collector concurrently. Under
// -race this pins the collector to per-invocation sample buffers.
func TestRuntimeCollectorConcurrentSnapshots(t *testing.T) {
	reg := obs.NewRegistry()
	obs.EnableRuntimeMetrics(reg)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				reg.Snapshot()
			}
		}()
	}
	wg.Wait()

	if v := reg.Snapshot().Value("go_goroutines"); v < 1 {
		t.Errorf("go_goroutines after concurrent snapshots = %v, want >= 1", v)
	}
}
