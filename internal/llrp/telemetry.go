package llrp

import "rfipad/internal/obs"

// sessionTel caches the session's metric handles so the hot read loop
// never touches the registry's maps.
type sessionTel struct {
	connects    *obs.Counter
	reconnects  *obs.Counter
	disconnects *obs.Counter
	retries     *obs.Counter
	decodeErrs  *obs.Counter
	batches     *obs.Counter
	reports     *obs.Counter
	connected   *obs.Gauge
	breaker     *obs.Gauge
	brkBlocked  *obs.Counter
	resumeGap   *obs.Histogram
	kaRTT       *obs.Histogram
}

func newSessionTel(r *obs.Registry) *sessionTel {
	r = obs.Or(r)
	return &sessionTel{
		connects: r.Counter("llrp_session_connects_total",
			"Successful connects, including reconnects."),
		reconnects: r.Counter("llrp_session_reconnects_total",
			"Successful stream re-establishments after the first connect."),
		disconnects: r.Counter("llrp_session_disconnects_total",
			"Live links lost to errors, timeouts, or injected faults."),
		retries: r.Counter("llrp_session_retries_total",
			"Failed connect attempts that scheduled a backoff sleep."),
		decodeErrs: r.Counter("llrp_session_decode_errors_total",
			"Report frames that failed to decode (corrupt stream; treated as link failure)."),
		batches: r.Counter("llrp_session_batches_total",
			"Report batches delivered to the consumer."),
		reports: r.Counter("llrp_session_reports_total",
			"Tag reports delivered to the consumer."),
		connected: r.Gauge("llrp_session_connected",
			"Whether a reader link is currently established (0 or 1)."),
		breaker: r.Gauge("llrp_session_breaker_state",
			"Reconnect circuit breaker position (0 closed, 1 open, 2 half-open)."),
		brkBlocked: r.Counter("llrp_session_breaker_blocked_total",
			"Connect attempts held back by an open circuit breaker."),
		resumeGap: r.Histogram("llrp_session_resume_gap_seconds",
			"Wall-clock outage between losing a link and resuming the stream.", nil),
		kaRTT: r.Histogram("llrp_session_keepalive_rtt_seconds",
			"Round-trip time of keepalive pings echoed by the reader.", nil),
	}
}
