package llrp

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rfipad/internal/tagmodel"
)

// sliceSource replays fixed batches.
type sliceSource struct {
	mu      sync.Mutex
	batches [][]TagReport
}

func (s *sliceSource) Next() ([]TagReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return nil, false
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, true
}

// blockSource streams forever until closed.
type blockSource struct {
	stop chan struct{}
}

func (s *blockSource) Next() ([]TagReport, bool) {
	select {
	case <-s.stop:
		return nil, false
	case <-time.After(time.Millisecond):
		return []TagReport{{EPC: tagmodel.MakeEPC(1)}}, true
	}
}

func startServer(t *testing.T, factory SourceFactory) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(factory)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func TestClientStreamsAllBatches(t *testing.T) {
	batches := [][]TagReport{
		{{EPC: tagmodel.MakeEPC(1), PhaseRad: 1, RSSdBm: -40, Timestamp: time.Millisecond}},
		{{EPC: tagmodel.MakeEPC(2), PhaseRad: 2, RSSdBm: -45, Timestamp: 2 * time.Millisecond},
			{EPC: tagmodel.MakeEPC(3), PhaseRad: 3, RSSdBm: -50, Timestamp: 3 * time.Millisecond}},
	}
	_, addr := startServer(t, func() ReportSource {
		return &sliceSource{batches: append([][]TagReport(nil), batches...)}
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var got []TagReport
	for {
		batch, err := c.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3", len(got))
	}
	if got[0].EPC != tagmodel.MakeEPC(1) || got[2].EPC != tagmodel.MakeEPC(3) {
		t.Error("report order/content wrong")
	}
}

func TestClientStopEndsStream(t *testing.T) {
	src := &blockSource{stop: make(chan struct{})}
	t.Cleanup(func() { close(src.stop) })
	_, addr := startServer(t, func() ReportSource { return src })

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Take a few batches, then stop.
	for i := 0; i < 3; i++ {
		if _, err := c.NextReports(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	// Eventually the stream ends (pending batches may still arrive).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("stream did not end after Stop")
		default:
		}
		_, err := c.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestServerKeepalive(t *testing.T) {
	_, addr := startServer(t, func() ReportSource { return &sliceSource{} })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := WriteMessage(c.w, Message{Type: MsgKeepalive}); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(c.r)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgKeepalive {
		t.Errorf("reply = %v, want keepalive", msg.Type)
	}
}

func TestServerRejectsUnknownMessage(t *testing.T) {
	_, addr := startServer(t, func() ReportSource { return &sliceSource{} })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := WriteMessage(c.w, Message{Type: MsgType(42)}); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(c.r)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgError {
		t.Errorf("reply = %v, want error", msg.Type)
	}
}

// TestServerConcurrentClientChurn hammers the server with clients that
// connect, stream, and tear down — half of them abruptly, without a
// Stop — while others are mid-stream. Run under -race this exercises
// the conns-map and waitgroup bookkeeping.
func TestServerConcurrentClientChurn(t *testing.T) {
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	srv, addr := startServer(t, func() ReportSource { return &blockSource{stop: stop} })

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				c, err := Dial(addr)
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				if err := c.Start(); err != nil {
					t.Errorf("start: %v", err)
					c.Close()
					return
				}
				for k := 0; k <= i%3; k++ {
					if _, err := c.NextReports(); err != nil {
						t.Errorf("next: %v", err)
						break
					}
				}
				if i%2 == 0 {
					c.Stop() // polite teardown; odd iterations just vanish
				}
				c.Close()
			}
		}()
	}
	wg.Wait()
	if err := srv.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("close after churn: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	src := &blockSource{stop: make(chan struct{})}
	t.Cleanup(func() { close(src.stop) })
	srv, addr := startServer(t, func() ReportSource { return src })

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextReports(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := c.NextReports(); err != nil {
				done <- err
				return
			}
		}
	}()
	if err := srv.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-done:
		// Any error is fine: the connection was torn down.
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after server close")
	}
}
