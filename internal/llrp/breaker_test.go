package llrp

import (
	"context"
	"errors"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/tagmodel"
)

// flightDir picks where this test's flight recorder writes: a unique
// subdirectory of RFIPAD_FLIGHT_DIR when CI sets it (the workflow
// uploads that tree as an artifact on failure), a test temp dir
// otherwise.
func flightDir(t *testing.T) string {
	base := os.Getenv("RFIPAD_FLIGHT_DIR")
	if base == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(base, t.Name()+"-*")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestSessionBreakerGatesReconnects arms the reconnect circuit breaker
// against a source whose first dials all fail: the breaker must trip
// at the threshold, hold callers back through the cool-down (counted
// on llrp_session_breaker_blocked_total), admit half-open probes, and
// close again once a probe lands — with the state trajectory visible
// on the llrp_session_breaker_state gauge.
func TestSessionBreakerGatesReconnects(t *testing.T) {
	h := &seekHarness{}
	for i := 0; i < 5; i++ {
		h.reports = append(h.reports, TagReport{
			EPC:       tagmodel.MakeEPC(i + 1),
			Timestamp: time.Duration(i+1) * 10 * time.Millisecond,
		})
	}
	_, addr := startServer(t, h.newSource)

	reg := obs.NewRegistry()
	fl, err := trace.OpenFlight(flightDir(t), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var states []float64
	var dials atomic.Int32
	const failingDials = 4
	sess, err := DialSession(context.Background(), SessionConfig{
		Dialer: func(ctx context.Context) (net.Conn, error) {
			if dials.Add(1) <= failingDials {
				// Record the breaker position at each attempt: attempts
				// past the threshold must be half-open probes, not
				// closed-state hammering.
				states = append(states, reg.Snapshot().Value("llrp_session_breaker_state"))
				return nil, errors.New("connection refused")
			}
			states = append(states, reg.Snapshot().Value("llrp_session_breaker_state"))
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
		BackoffInitial:    time.Millisecond,
		BackoffMax:        2 * time.Millisecond,
		JitterSeed:        9,
		KeepaliveInterval: -1,
		BreakerThreshold:  2,
		BreakerWindow:     10 * time.Second,
		BreakerCooldown:   20 * time.Millisecond,
		Obs:               reg,
		Flight:            fl,
		FlightStream:      "reader-0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Dials 1-2 ran with the breaker closed (0); dials 3+ are admitted
	// as half-open probes (2).
	if len(states) != failingDials+1 {
		t.Fatalf("dial count %d, want %d", len(states), failingDials+1)
	}
	for i, st := range states {
		want := float64(0)
		if i >= 2 {
			want = 2
		}
		if st != want {
			t.Errorf("dial %d saw breaker state %v, want %v (trajectory %v)", i+1, st, want, states)
		}
	}

	snap := reg.Snapshot()
	if v := snap.Value("llrp_session_breaker_state"); v != 0 {
		t.Errorf("breaker state after successful connect = %v, want 0 (closed)", v)
	}
	if v := snap.Value("llrp_session_breaker_blocked_total"); v < 3 {
		t.Errorf("llrp_session_breaker_blocked_total = %v, want >= 3 (one cool-down per open period)", v)
	}

	// The session works normally once through: the full capture streams.
	seen := 0
	for {
		batch, err := sess.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen += len(batch)
	}
	if seen != len(h.reports) {
		t.Errorf("streamed %d reports, want %d", seen, len(h.reports))
	}

	// Each breaker-open is an anomaly the flight recorder must capture:
	// the JSONL holds one breaker_open dump per trip, attributed to the
	// configured stream, and the counter agrees with the file.
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	dumps, err := trace.ReadDumps(fl.Path())
	if err != nil {
		t.Fatal(err)
	}
	opens := 0
	for _, d := range dumps {
		if d.Trigger != trace.TriggerBreakerOpen {
			t.Errorf("unexpected dump trigger %q", d.Trigger)
			continue
		}
		opens++
		if d.Stream != "reader-0" {
			t.Errorf("breaker dump stream = %q, want reader-0", d.Stream)
		}
		if d.Detail == "" {
			t.Error("breaker dump has no detail")
		}
	}
	if opens == 0 {
		t.Fatal("no breaker_open flight dumps recorded")
	}
	if v := snap.Value("obs_flight_dumps_total", obs.L("trigger", trace.TriggerBreakerOpen)); v != float64(opens) {
		t.Errorf("obs_flight_dumps_total{breaker_open} = %v, file has %d", v, opens)
	}
}

// TestSessionBreakerDisabledByDefault pins that a zero threshold keeps
// the old behavior: no breaker gauge movement, plain backoff only.
func TestSessionBreakerDisabledByDefault(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := DialSession(context.Background(), SessionConfig{
		Dialer: func(context.Context) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		BackoffInitial:    time.Millisecond,
		BackoffMax:        2 * time.Millisecond,
		MaxAttempts:       4,
		KeepaliveInterval: -1,
		Obs:               reg,
	})
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("dial err = %v, want ErrGiveUp", err)
	}
	if v := reg.Snapshot().Value("llrp_session_breaker_blocked_total"); v != 0 {
		t.Errorf("disabled breaker blocked %v attempts", v)
	}
}
