package llrp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// SessionConfig tunes a fault-tolerant reader session.
type SessionConfig struct {
	// Addr is the reader daemon's TCP address. Ignored when Dialer is
	// set.
	Addr string
	// Dialer overrides how the underlying connection is made (tests
	// and chaos harnesses inject fault wrappers here).
	Dialer func(ctx context.Context) (net.Conn, error)

	// BackoffInitial is the first reconnect delay (default 100 ms).
	BackoffInitial time.Duration
	// BackoffMax caps the exponential growth (default 5 s).
	BackoffMax time.Duration
	// BackoffFactor is the per-attempt growth factor (default 2).
	BackoffFactor float64
	// JitterSeed seeds the deterministic backoff jitter; equal seeds
	// reproduce the exact reconnect schedule.
	JitterSeed int64
	// MaxAttempts bounds *consecutive* failed connect attempts before
	// the session gives up (0 = retry forever). The counter resets on
	// every successfully delivered batch.
	MaxAttempts int

	// BreakerThreshold, when positive, arms a reconnect circuit
	// breaker: after this many consecutive failed connects within
	// BreakerWindow the breaker opens and the session sleeps out a
	// jittered BreakerCooldown in one wait — then admits a single
	// half-open probe — instead of hammering a flapping reader with
	// per-attempt backoff. Breaker state is exported as the
	// llrp_session_breaker_state gauge (0 closed, 1 open, 2
	// half-open). Zero disables the breaker.
	BreakerThreshold int
	// BreakerWindow bounds the failure streak (default 30 s).
	BreakerWindow time.Duration
	// BreakerCooldown is the base open duration before a probe
	// (default 5 s; jittered up to 1.5× with JitterSeed).
	BreakerCooldown time.Duration

	// KeepaliveInterval is how often the session pings the reader so
	// both ends can enforce deadlines (default 2 s, 0 keeps the
	// default; negative disables pings).
	KeepaliveInterval time.Duration
	// IdleTimeout is the read deadline: if nothing arrives for this
	// long — not even a keepalive echo — the link is declared dead and
	// the session reconnects (default 4×KeepaliveInterval).
	IdleTimeout time.Duration
	// WriteTimeout bounds every frame write (default 5 s).
	WriteTimeout time.Duration

	// OnEvent, when set, receives connection lifecycle and reader
	// status events. It is called from the session's goroutines; keep
	// it fast and do not call back into the session.
	OnEvent func(SessionEvent)

	// Obs selects the metrics registry session telemetry (connects,
	// reconnects, resume gaps, keepalive RTT, decode errors) lands in.
	// Nil selects obs.Default().
	Obs *obs.Registry

	// Flight, when set, receives a flight-recorder dump every time the
	// reconnect circuit breaker opens — the black-box record of a
	// flapping reader link. Nil disables.
	Flight *trace.Flight
	// FlightStream names the stream in breaker dumps (default Addr).
	FlightStream string
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.BackoffInitial <= 0 {
		c.BackoffInitial = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.KeepaliveInterval == 0 {
		c.KeepaliveInterval = 2 * time.Second
	}
	if c.IdleTimeout <= 0 {
		if c.KeepaliveInterval > 0 {
			c.IdleTimeout = 4 * c.KeepaliveInterval
		} else {
			c.IdleTimeout = 30 * time.Second
		}
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	return c
}

// SessionEventKind classifies session lifecycle events.
type SessionEventKind int

// Session event kinds.
const (
	// SessionConnected fires after a successful handshake + start.
	SessionConnected SessionEventKind = iota + 1
	// SessionDisconnected fires when a live link fails.
	SessionDisconnected
	// SessionRetrying fires before each backoff sleep.
	SessionRetrying
	// SessionReaderInfo relays an informational reader event payload.
	SessionReaderInfo
)

// SessionEvent is one lifecycle notification.
type SessionEvent struct {
	Kind SessionEventKind
	// Attempt is the consecutive failed-connect count (SessionRetrying).
	Attempt int
	// Wait is the backoff delay about to be slept (SessionRetrying).
	Wait time.Duration
	// Err is the failure that triggered the event, when any.
	Err error
	// Info is the reader's payload for SessionReaderInfo.
	Info string
	// ResumeFrom is the timestamp the session will resume from
	// (SessionConnected; NoResume on a fresh stream).
	ResumeFrom time.Duration
}

// ErrSessionClosed is returned after Close.
var ErrSessionClosed = errors.New("llrp: session closed")

// ErrGiveUp wraps the last connect error once MaxAttempts consecutive
// attempts have failed.
var ErrGiveUp = errors.New("llrp: reconnect attempts exhausted")

// errReaderFault tags reader-reported protocol errors, which no
// reconnect can fix.
var errReaderFault = errors.New("llrp: reader fault")

// Session is a self-healing reader client: it dials, starts the
// ROSpec, and streams report batches like Client, but transparently
// reconnects with capped exponential backoff when the link fails,
// resumes the stream from the last-seen report timestamp, pings the
// reader so dead links are detected by deadline instead of hanging
// forever, and only reports ErrStreamEnded on a *clean* end (the
// reader's "rospec complete"/"rospec stopped" events) — an EOF or
// reset mid-stream triggers a reconnect, never a silent truncation.
//
// A resumed stream may replay a short overlap (the server seeks
// slightly before the resume point so timestamp ties are never lost);
// consumers must tolerate duplicate reports, which the recognition
// pipeline does.
//
// NextReports must be called from a single goroutine; Close, Stop and
// Stats are safe from any.
type Session struct {
	cfg SessionConfig
	ctx context.Context
	tel *sessionTel

	// Consumer-goroutine-only state.
	rng      *rand.Rand
	attempts int
	// scratch is the reused decode buffer behind NextReports; each call
	// overwrites the previous batch in place.
	scratch []TagReport
	// breaker gates reconnect attempts when armed (nil otherwise).
	breaker *supervise.Breaker

	// mu guards everything below: the link (conn/client share a
	// bufio.Writer with the keepalive pinger) and the counters. It is
	// never held across blocking reads; writes are bounded by
	// WriteTimeout.
	mu         sync.Mutex
	conn       net.Conn
	client     *Client
	kaStop     chan struct{}
	lastSeen   time.Duration
	seenAny    bool
	reconnects int
	closed     bool
	// downAt is when the current outage began (zero when the link is
	// up or never established); connectOnce turns it into the
	// resume-gap observation.
	downAt time.Time
	// pingAt/pingPending track the in-flight keepalive so its echo
	// yields an RTT sample.
	pingAt      time.Time
	pingPending bool
}

// SessionStats is a point-in-time snapshot of session health.
type SessionStats struct {
	// Reconnects counts successful re-establishments after the first
	// connect.
	Reconnects int
	// LastSeen is the newest report timestamp delivered (NoResume if
	// none yet).
	LastSeen time.Duration
	// Connected reports whether a link is currently up.
	Connected bool
}

// DialSession establishes a fault-tolerant session and starts the
// ROSpec. The initial connect honors the same backoff/MaxAttempts
// policy as reconnects, so the backend may start before the reader.
func DialSession(ctx context.Context, cfg SessionConfig) (*Session, error) {
	s := &Session{
		cfg: cfg.withDefaults(),
		ctx: ctx,
		tel: newSessionTel(cfg.Obs),
		rng: rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	obs.EnableRuntimeMetrics(obs.Or(cfg.Obs))
	if cfg.BreakerThreshold > 0 {
		flightStream := cfg.FlightStream
		if flightStream == "" {
			flightStream = cfg.Addr
		}
		s.breaker = supervise.NewBreaker(supervise.BreakerConfig{
			Threshold:  cfg.BreakerThreshold,
			Window:     cfg.BreakerWindow,
			Cooldown:   cfg.BreakerCooldown,
			JitterSeed: cfg.JitterSeed,
			OnState: func(st supervise.BreakerState) {
				s.tel.breaker.Set(float64(st))
				if st == supervise.BreakerOpen {
					// The breaker opening IS the anomaly — the link
					// flapped past its failure budget. Record it even
					// with no trace attached; the dump carries the streak.
					cfg.Flight.Record(trace.Dump{
						Trigger: trace.TriggerBreakerOpen,
						Stream:  flightStream,
						Detail: fmt.Sprintf("reconnect breaker opened after %d failures in %v",
							cfg.BreakerThreshold, cfg.BreakerWindow),
					})
				}
			},
		})
	}
	if err := s.connectWithRetry(); err != nil {
		return nil, err
	}
	return s, nil
}

// NextReports blocks for the next report batch, reconnecting and
// resuming as needed. It returns ErrStreamEnded on a clean end,
// ctx.Err() on cancellation, and ErrGiveUp (wrapping the last network
// error) when MaxAttempts consecutive reconnects fail.
//
// The returned slice is a reused decode buffer: it is valid only until
// the next NextReports call, which overwrites it in place. Both engine
// and live consumers convert reports to readings before pulling the
// next batch; a consumer that needs to retain a batch must copy it.
func (s *Session) NextReports() ([]TagReport, error) {
	for {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		closed, conn, client := s.closed, s.conn, s.client
		s.mu.Unlock()
		if closed {
			return nil, ErrSessionClosed
		}
		if client == nil {
			if err := s.connectWithRetry(); err != nil {
				return nil, err
			}
			continue
		}
		batch, err := s.readBatch(conn, client)
		if err == nil {
			s.attempts = 0
			if len(batch) == 0 {
				continue
			}
			s.noteSeen(batch)
			s.tel.batches.Inc()
			s.tel.reports.Add(uint64(len(batch)))
			return batch, nil
		}
		if errors.Is(err, ErrStreamEnded) || errors.Is(err, errReaderFault) {
			return nil, err
		}
		// Anything else — EOF, reset, deadline, corruption — is a link
		// failure: drop the connection and loop into a reconnect.
		s.dropConn(conn, err)
	}
}

// readBatch reads frames until a report batch or terminal condition.
func (s *Session) readBatch(conn net.Conn, client *Client) ([]TagReport, error) {
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		msg, err := ReadMessage(client.r)
		if err != nil {
			return nil, err
		}
		switch msg.Type {
		case MsgROAccessReport:
			reports, err := DecodeReportsInto(s.scratch, msg.Payload)
			if err != nil {
				// Corrupt frame: resync is impossible on a byte
				// stream, so treat it as a link failure.
				s.tel.decodeErrs.Inc()
				return nil, err
			}
			s.scratch = reports
			return reports, nil
		case MsgKeepalive:
			s.noteKeepaliveEcho()
			continue
		case MsgReaderEvent:
			switch ClassifyEvent(msg.Payload) {
			case EventStreamEnd:
				return nil, ErrStreamEnded
			default:
				s.emit(SessionEvent{Kind: SessionReaderInfo, Info: string(msg.Payload)})
				continue
			}
		case MsgError:
			return nil, fmt.Errorf("%w: %s", errReaderFault, msg.Payload)
		default:
			return nil, fmt.Errorf("llrp: unexpected %v", msg.Type)
		}
	}
}

// connectWithRetry dials with capped exponential backoff and seeded
// jitter until a link is up, the context dies, or MaxAttempts
// consecutive attempts fail. With a breaker armed, an open circuit
// replaces the per-attempt backoff: the session sleeps out the
// remaining cool-down in one wait, then the next admitted attempt is
// the half-open probe.
func (s *Session) connectWithRetry() error {
	for {
		if err := s.breakerWait(); err != nil {
			return err
		}
		err := s.connectOnce()
		if err == nil {
			if s.breaker != nil {
				s.breaker.Success()
			}
			return nil
		}
		if errors.Is(err, ErrSessionClosed) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if s.breaker != nil {
			s.breaker.Failure()
		}
		s.attempts++
		s.tel.retries.Inc()
		if s.cfg.MaxAttempts > 0 && s.attempts >= s.cfg.MaxAttempts {
			return fmt.Errorf("%w after %d attempts: %v", ErrGiveUp, s.attempts, err)
		}
		wait := s.backoff(s.attempts)
		s.emit(SessionEvent{Kind: SessionRetrying, Attempt: s.attempts, Wait: wait, Err: err})
		t := time.NewTimer(wait)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return s.ctx.Err()
		case <-t.C:
		}
	}
}

// breakerWait blocks (context-aware) until the breaker admits an
// attempt. A no-op when the breaker is disarmed or closed.
func (s *Session) breakerWait() error {
	if s.breaker == nil {
		return nil
	}
	for {
		wait, ok := s.breaker.Allow()
		if ok {
			return nil
		}
		s.tel.brkBlocked.Inc()
		t := time.NewTimer(wait)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return s.ctx.Err()
		case <-t.C:
		}
	}
}

// backoff computes the nth delay: BackoffInitial·Factor^(n-1) capped
// at BackoffMax, then jittered into [½·d, d] so a fleet of backends
// does not reconnect in lockstep.
func (s *Session) backoff(attempt int) time.Duration {
	d := float64(s.cfg.BackoffInitial)
	for i := 1; i < attempt; i++ {
		d *= s.cfg.BackoffFactor
		if d >= float64(s.cfg.BackoffMax) {
			d = float64(s.cfg.BackoffMax)
			break
		}
	}
	d = d/2 + d/2*s.rng.Float64()
	return time.Duration(d)
}

// connectOnce dials, handshakes, starts (or resumes) the ROSpec, and
// installs the new link.
func (s *Session) connectOnce() error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	var conn net.Conn
	var err error
	if s.cfg.Dialer != nil {
		conn, err = s.cfg.Dialer(s.ctx)
	} else {
		var d net.Dialer
		conn, err = d.DialContext(s.ctx, "tcp", s.cfg.Addr)
	}
	if err != nil {
		return fmt.Errorf("llrp: dial: %w", err)
	}
	client := NewClient(conn)
	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	msg, err := ReadMessage(client.r)
	if err != nil {
		conn.Close()
		return fmt.Errorf("llrp: handshake: %w", err)
	}
	if msg.Type != MsgReaderEvent || ClassifyEvent(msg.Payload) != EventHandshake {
		conn.Close()
		return fmt.Errorf("llrp: handshake: unexpected %v %q", msg.Type, msg.Payload)
	}
	resume := s.resumePoint()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := client.StartFrom(resume); err != nil {
		conn.Close()
		return fmt.Errorf("llrp: start: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrSessionClosed
	}
	s.conn = conn
	s.client = client
	s.kaStop = make(chan struct{})
	if s.seenAny {
		s.reconnects++
		s.tel.reconnects.Inc()
	}
	if !s.downAt.IsZero() {
		s.tel.resumeGap.ObserveDuration(time.Since(s.downAt))
		s.downAt = time.Time{}
	}
	s.pingPending = false
	stop := s.kaStop
	s.mu.Unlock()
	s.tel.connects.Inc()
	s.tel.connected.Set(1)
	if s.cfg.KeepaliveInterval > 0 {
		go s.pinger(conn, stop)
	}
	s.emit(SessionEvent{Kind: SessionConnected, ResumeFrom: resume})
	return nil
}

// pinger sends keepalives so the server's idle deadline stays met and
// a dead link surfaces as a read/write timeout instead of a hang.
func (s *Session) pinger(conn net.Conn, stop chan struct{}) {
	t := time.NewTicker(s.cfg.KeepaliveInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.mu.Lock()
			if s.conn != conn { // superseded by a reconnect or Close
				s.mu.Unlock()
				return
			}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			err := s.client.Keepalive()
			if err == nil && !s.pingPending {
				s.pingAt = time.Now()
				s.pingPending = true
			}
			s.mu.Unlock()
			if err != nil {
				// The read side will fail shortly; hasten it.
				conn.Close()
				return
			}
		}
	}
}

// dropConn tears down the given link after a failure (a no-op when a
// concurrent Close already did).
func (s *Session) dropConn(conn net.Conn, cause error) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	close(s.kaStop)
	s.kaStop = nil
	s.conn = nil
	s.client = nil
	s.downAt = time.Now()
	s.mu.Unlock()
	conn.Close()
	s.tel.disconnects.Inc()
	s.tel.connected.Set(0)
	s.emit(SessionEvent{Kind: SessionDisconnected, Err: cause})
}

// noteKeepaliveEcho turns the in-flight ping's echo into an RTT
// sample. Echoes arriving after a reconnect (pingPending cleared) are
// ignored rather than measured across two different links.
func (s *Session) noteKeepaliveEcho() {
	s.mu.Lock()
	pending, at := s.pingPending, s.pingAt
	s.pingPending = false
	s.mu.Unlock()
	if pending {
		s.tel.kaRTT.ObserveDuration(time.Since(at))
	}
}

// resumePoint returns the timestamp to resume from.
func (s *Session) resumePoint() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seenAny {
		return NoResume
	}
	return s.lastSeen
}

// noteSeen advances the resume point past a delivered batch.
func (s *Session) noteSeen(batch []TagReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range batch {
		if !s.seenAny || r.Timestamp > s.lastSeen {
			s.lastSeen = r.Timestamp
			s.seenAny = true
		}
	}
}

// Stop asks the reader to end the ROSpec (best effort; the terminal
// event then arrives via NextReports).
func (s *Session) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client == nil {
		return ErrSessionClosed
	}
	s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return s.client.Stop()
}

// Close tears the session down; subsequent calls are no-ops.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.tel.connected.Set(0)
	if s.kaStop != nil {
		close(s.kaStop)
		s.kaStop = nil
	}
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		s.client = nil
		return err
	}
	return nil
}

// Stats snapshots session health.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := NoResume
	if s.seenAny {
		last = s.lastSeen
	}
	return SessionStats{
		Reconnects: s.reconnects,
		LastSeen:   last,
		Connected:  s.client != nil,
	}
}

// emit delivers an event to the configured observer.
func (s *Session) emit(ev SessionEvent) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}
