package llrp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// ReportSource supplies tag-report batches to stream to a client. Next
// blocks until a batch is available and returns ok=false when the
// source is exhausted (which ends the ROSpec).
type ReportSource interface {
	Next() (batch []TagReport, ok bool)
}

// SourceFactory builds a fresh ReportSource per started ROSpec.
type SourceFactory func() ReportSource

// Server is the reader daemon: it accepts backend connections and
// streams tag reports while an ROSpec is active. One ROSpec per
// connection.
type Server struct {
	factory SourceFactory

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer builds a server that draws reports from factory.
func NewServer(factory SourceFactory) *Server {
	return &Server{
		factory: factory,
		conns:   map[net.Conn]struct{}{},
	}
}

// Serve accepts connections on l until Close is called. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one connection. A single goroutine owns the reader
// (feeding msgs) and this goroutine owns the writer, so there is no
// shared I/O state.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	if err := writeFlush(w, Message{Type: MsgReaderEvent, Payload: []byte("reader ready")}); err != nil {
		return
	}

	msgs := make(chan Message)
	readErr := make(chan error, 1)
	go func() {
		defer close(msgs)
		for {
			msg, err := ReadMessage(r)
			if err != nil {
				readErr <- err
				return
			}
			msgs <- msg
		}
	}()

	var src ReportSource
	dispatch := func(msg Message) error {
		switch msg.Type {
		case MsgKeepalive:
			return writeFlush(w, Message{Type: MsgKeepalive})
		case MsgStartROSpec:
			if src == nil {
				src = s.factory()
			}
			return nil
		case MsgStopROSpec:
			if src == nil {
				return writeFlush(w, Message{Type: MsgReaderEvent, Payload: []byte("no rospec")})
			}
			src = nil
			return writeFlush(w, Message{Type: MsgReaderEvent, Payload: []byte("rospec stopped")})
		default:
			return writeFlush(w, Message{Type: MsgError,
				Payload: []byte(fmt.Sprintf("unexpected %v", msg.Type))})
		}
	}

	for {
		if src == nil {
			// Idle: block on commands.
			select {
			case msg, ok := <-msgs:
				if !ok {
					return
				}
				if err := dispatch(msg); err != nil {
					return
				}
			case <-readErr:
				return
			}
			continue
		}
		// Streaming: drain any pending command, then push a batch.
		select {
		case msg, ok := <-msgs:
			if !ok {
				return
			}
			if err := dispatch(msg); err != nil {
				return
			}
			continue
		case <-readErr:
			return
		default:
		}
		batch, ok := src.Next()
		if !ok {
			src = nil
			if err := writeFlush(w, Message{Type: MsgReaderEvent, Payload: []byte("rospec complete")}); err != nil {
				return
			}
			continue
		}
		payload, err := EncodeReports(batch)
		if err != nil {
			return
		}
		if err := writeFlush(w, Message{Type: MsgROAccessReport, Payload: payload}); err != nil {
			return
		}
	}
}

func writeFlush(w *bufio.Writer, m Message) error {
	if err := WriteMessage(w, m); err != nil {
		return err
	}
	return w.Flush()
}

// Client is the backend side of the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a reader daemon and waits for its ready event.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: dial: %w", err)
	}
	c := NewClient(conn)
	msg, err := ReadMessage(c.r)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("llrp: handshake: %w", err)
	}
	if msg.Type != MsgReaderEvent {
		conn.Close()
		return nil, fmt.Errorf("llrp: handshake: unexpected %v", msg.Type)
	}
	return c, nil
}

// NewClient wraps an established connection (it does not consume the
// ready event; Dial does).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Start begins the reader operation.
func (c *Client) Start() error {
	if err := WriteMessage(c.w, Message{Type: MsgStartROSpec}); err != nil {
		return err
	}
	return c.w.Flush()
}

// Stop asks the reader to end the operation.
func (c *Client) Stop() error {
	if err := WriteMessage(c.w, Message{Type: MsgStopROSpec}); err != nil {
		return err
	}
	return c.w.Flush()
}

// ErrStreamEnded reports a clean end of the report stream.
var ErrStreamEnded = errors.New("llrp: stream ended")

// NextReports blocks for the next report batch. It returns
// ErrStreamEnded when the reader signals the ROSpec is complete or
// stopped, and the underlying error on connection problems.
func (c *Client) NextReports() ([]TagReport, error) {
	for {
		msg, err := ReadMessage(c.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, ErrStreamEnded
			}
			return nil, err
		}
		switch msg.Type {
		case MsgROAccessReport:
			return DecodeReports(msg.Payload)
		case MsgReaderEvent:
			return nil, ErrStreamEnded
		case MsgKeepalive:
			continue
		case MsgError:
			return nil, fmt.Errorf("llrp: reader error: %s", msg.Payload)
		default:
			return nil, fmt.Errorf("llrp: unexpected %v", msg.Type)
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
