package llrp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ReportSource supplies tag-report batches to stream to a client. Next
// blocks until a batch is available and returns ok=false when the
// source is exhausted (which ends the ROSpec).
type ReportSource interface {
	Next() (batch []TagReport, ok bool)
}

// SeekableSource is a ReportSource that can replay from an offset: a
// reconnecting client sends its last-seen report timestamp in the
// StartROSpec payload and the server seeks the fresh source there
// instead of replaying the whole capture. Implementations should
// resume slightly *before* resumeFrom (an overlap window) so ties on
// the timestamp never drop reports; the pipeline deduplicates the
// overlap.
type SeekableSource interface {
	ReportSource
	Seek(resumeFrom time.Duration)
}

// SourceFactory builds a fresh ReportSource per started ROSpec.
type SourceFactory func() ReportSource

// Server is the reader daemon: it accepts backend connections and
// streams tag reports while an ROSpec is active. One ROSpec per
// connection.
type Server struct {
	factory SourceFactory

	// IdleTimeout bounds how long a connection may stay silent
	// (nothing readable from the peer) before the server drops it. A
	// live client keeps the link warm with keepalive pings. Zero
	// disables the read deadline (legacy clients never ping).
	IdleTimeout time.Duration
	// WriteTimeout bounds each frame write so a half-dead peer that
	// stopped draining its receive window cannot block the handler
	// forever. Zero disables the write deadline.
	WriteTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer builds a server that draws reports from factory.
func NewServer(factory SourceFactory) *Server {
	return &Server{
		factory: factory,
		conns:   map[net.Conn]struct{}{},
	}
}

// Serve accepts connections on l until Close is called. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ActiveConns reports the number of live client connections.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting, closes every live connection, and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one connection. A single goroutine owns the reader
// (feeding msgs) and this goroutine owns the writer, so there is no
// shared I/O state.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// send frames with the write deadline applied: a peer that stopped
	// draining cannot wedge the handler.
	send := func(m Message) error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		return writeFlush(w, m)
	}
	if err := send(Message{Type: MsgReaderEvent, Payload: []byte(EventReady)}); err != nil {
		return
	}

	msgs := make(chan Message)
	readErr := make(chan error, 1)
	go func() {
		defer close(msgs)
		for {
			if s.IdleTimeout > 0 {
				conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
			}
			msg, err := ReadMessage(r)
			if err != nil {
				readErr <- err
				return
			}
			msgs <- msg
		}
	}()

	var src ReportSource
	dispatch := func(msg Message) error {
		switch msg.Type {
		case MsgKeepalive:
			return send(Message{Type: MsgKeepalive})
		case MsgStartROSpec:
			resume, ok := DecodeResume(msg.Payload)
			if !ok {
				return send(Message{Type: MsgError, Payload: []byte("malformed StartROSpec resume payload")})
			}
			if src == nil {
				src = s.factory()
			}
			if resume >= 0 {
				if seek, canSeek := src.(SeekableSource); canSeek {
					seek.Seek(resume)
					return send(Message{Type: MsgReaderEvent,
						Payload: []byte(fmt.Sprintf("resuming from %v", resume))})
				}
				// A non-seekable source replays from zero; tell the
				// client so it can expect the full stream again.
				return send(Message{Type: MsgReaderEvent, Payload: []byte("resume unsupported; replaying from start")})
			}
			return nil
		case MsgStopROSpec:
			if src == nil {
				return send(Message{Type: MsgReaderEvent, Payload: []byte(EventNoROSpec)})
			}
			src = nil
			return send(Message{Type: MsgReaderEvent, Payload: []byte(EventStopped)})
		default:
			return send(Message{Type: MsgError,
				Payload: []byte(fmt.Sprintf("unexpected %v", msg.Type))})
		}
	}

	for {
		if src == nil {
			// Idle: block on commands.
			select {
			case msg, ok := <-msgs:
				if !ok {
					return
				}
				if err := dispatch(msg); err != nil {
					return
				}
			case <-readErr:
				return
			}
			continue
		}
		// Streaming: drain any pending command, then push a batch.
		select {
		case msg, ok := <-msgs:
			if !ok {
				return
			}
			if err := dispatch(msg); err != nil {
				return
			}
			continue
		case <-readErr:
			return
		default:
		}
		batch, ok := src.Next()
		if !ok {
			src = nil
			if err := send(Message{Type: MsgReaderEvent, Payload: []byte(EventComplete)}); err != nil {
				return
			}
			continue
		}
		payload, err := EncodeReports(batch)
		if err != nil {
			return
		}
		if err := send(Message{Type: MsgROAccessReport, Payload: payload}); err != nil {
			return
		}
	}
}

func writeFlush(w *bufio.Writer, m Message) error {
	if err := WriteMessage(w, m); err != nil {
		return err
	}
	return w.Flush()
}

// Client is the backend side of the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a reader daemon and waits for its ready event.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("llrp: dial: %w", err)
	}
	c := NewClient(conn)
	msg, err := ReadMessage(c.r)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("llrp: handshake: %w", err)
	}
	if msg.Type != MsgReaderEvent {
		conn.Close()
		return nil, fmt.Errorf("llrp: handshake: unexpected %v", msg.Type)
	}
	return c, nil
}

// NewClient wraps an established connection (it does not consume the
// ready event; Dial does).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Start begins the reader operation from the top of the stream.
func (c *Client) Start() error { return c.StartFrom(NoResume) }

// StartFrom begins the reader operation, asking the reader to replay
// from (shortly before) lastSeen when it is >= 0 and the reader's
// source is seekable. Pass NoResume for a fresh stream.
func (c *Client) StartFrom(lastSeen time.Duration) error {
	if err := WriteMessage(c.w, Message{Type: MsgStartROSpec, Payload: EncodeResume(lastSeen)}); err != nil {
		return err
	}
	return c.w.Flush()
}

// Keepalive sends a liveness probe; the reader echoes it.
func (c *Client) Keepalive() error {
	if err := WriteMessage(c.w, Message{Type: MsgKeepalive}); err != nil {
		return err
	}
	return c.w.Flush()
}

// Stop asks the reader to end the operation.
func (c *Client) Stop() error {
	if err := WriteMessage(c.w, Message{Type: MsgStopROSpec}); err != nil {
		return err
	}
	return c.w.Flush()
}

// ErrStreamEnded reports a clean end of the report stream.
var ErrStreamEnded = errors.New("llrp: stream ended")

// NextReports blocks for the next report batch. It returns
// ErrStreamEnded when the reader signals the ROSpec is complete or
// stopped, and the underlying error on connection problems.
// Informational reader events (status chatter) do not end the stream —
// only terminal events do (see ClassifyEvent).
func (c *Client) NextReports() ([]TagReport, error) {
	for {
		msg, err := ReadMessage(c.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, ErrStreamEnded
			}
			return nil, err
		}
		switch msg.Type {
		case MsgROAccessReport:
			return DecodeReports(msg.Payload)
		case MsgReaderEvent:
			if ClassifyEvent(msg.Payload) == EventStreamEnd {
				return nil, ErrStreamEnded
			}
			continue
		case MsgKeepalive:
			continue
		case MsgError:
			return nil, fmt.Errorf("llrp: reader error: %s", msg.Payload)
		default:
			return nil, fmt.Errorf("llrp: unexpected %v", msg.Type)
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
