package llrp

import (
	"bytes"
	"testing"
	"time"

	"rfipad/internal/tagmodel"
)

// FuzzReadMessage asserts the frame parser never panics on arbitrary
// bytes and that every frame it accepts survives a write/read round
// trip unchanged.
func FuzzReadMessage(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(Message{Type: MsgKeepalive})
	seed(Message{Type: MsgReaderEvent, Payload: []byte(EventReady)})
	seed(Message{Type: MsgReaderEvent, Payload: []byte(EventComplete)})
	seed(Message{Type: MsgStartROSpec})
	seed(Message{Type: MsgStartROSpec, Payload: EncodeResume(1500 * time.Millisecond)})
	payload, err := EncodeReports([]TagReport{
		{EPC: tagmodel.MakeEPC(3), AntennaID: 1, PhaseRad: 1.25, RSSdBm: -51.5, DopplerHz: 12.25, Timestamp: 42 * time.Millisecond},
		{EPC: tagmodel.MakeEPC(9), AntennaID: 2, PhaseRad: 6.1, RSSdBm: -60, DopplerHz: -7.5, Timestamp: 43 * time.Millisecond},
	})
	if err != nil {
		f.Fatal(err)
	}
	seed(Message{Type: MsgROAccessReport, Payload: payload})
	f.Add([]byte{0xA5, 0x5A})                               // truncated header
	f.Add([]byte{0xA5, 0x5A, 1, 3, 0xFF, 0xFF, 0xFF, 0xFF}) // oversized length

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		back, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.Type != msg.Type || !bytes.Equal(back.Payload, msg.Payload) {
			t.Errorf("round trip changed the frame: %v %q -> %v %q", msg.Type, msg.Payload, back.Type, back.Payload)
		}
	})
}

// FuzzDecodeReports asserts the report decoder never panics and that
// accepted payloads are internally consistent: the length matches the
// declared count and the decoded batch re-encodes and re-decodes to the
// same shape.
func FuzzDecodeReports(f *testing.F) {
	for _, reports := range [][]TagReport{
		{},
		{{EPC: tagmodel.MakeEPC(1), Timestamp: time.Millisecond}},
		{
			{EPC: tagmodel.MakeEPC(5), AntennaID: 1, PhaseRad: 3.14, RSSdBm: -44.25, DopplerHz: 2.5, Timestamp: 7 * time.Millisecond},
			{EPC: tagmodel.MakeEPC(6), AntennaID: 1, PhaseRad: 0.01, RSSdBm: -70, DopplerHz: -12, Timestamp: 8 * time.Millisecond},
		},
	} {
		payload, err := EncodeReports(reports)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{0, 1}) // count 1, no entries

	f.Fuzz(func(t *testing.T, data []byte) {
		reports, err := DecodeReports(data)
		if err != nil {
			return
		}
		if len(data) != 2+entryLen*len(reports) {
			t.Fatalf("accepted %d bytes as %d reports (want %d bytes)", len(data), len(reports), 2+entryLen*len(reports))
		}
		enc, err := EncodeReports(reports)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v", err)
		}
		back, err := DecodeReports(enc)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if len(back) != len(reports) {
			t.Errorf("round trip changed the batch size: %d -> %d", len(reports), len(back))
		}
		for i := range back {
			if back[i].EPC != reports[i].EPC {
				t.Errorf("report %d EPC changed in round trip", i)
			}
		}
	})
}
