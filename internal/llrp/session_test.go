package llrp

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfipad/internal/tagmodel"
)

// seekHarness shares a capture and a seek log across the per-connection
// sources a reconnecting session triggers.
type seekHarness struct {
	mu      sync.Mutex
	reports []TagReport
	seeks   []time.Duration
}

func (h *seekHarness) newSource() ReportSource { return &seekSource{h: h} }

func (h *seekHarness) recordedSeeks() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]time.Duration(nil), h.seeks...)
}

// seekSource serves one report per batch and supports resume.
type seekSource struct {
	h   *seekHarness
	pos int
}

func (s *seekSource) Next() ([]TagReport, bool) {
	if s.pos >= len(s.h.reports) {
		return nil, false
	}
	b := []TagReport{s.h.reports[s.pos]}
	s.pos++
	return b, true
}

func (s *seekSource) Seek(from time.Duration) {
	s.h.mu.Lock()
	s.h.seeks = append(s.h.seeks, from)
	s.h.mu.Unlock()
	s.pos = 0
	for s.pos < len(s.h.reports) && s.h.reports[s.pos].Timestamp <= from {
		s.pos++
	}
}

// limitConn delivers exactly n bytes to the reader, then fails the
// connection — a deterministic mid-stream link cut.
type limitConn struct {
	net.Conn
	remaining int
}

func (c *limitConn) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, errors.New("limitConn: byte budget exhausted")
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Read(p)
	c.remaining -= n
	return n, err
}

func TestSessionReconnectsAndResumes(t *testing.T) {
	const n = 20
	h := &seekHarness{}
	for i := 0; i < n; i++ {
		h.reports = append(h.reports, TagReport{
			EPC:       tagmodel.MakeEPC(i + 1),
			Timestamp: time.Duration(i+1) * 10 * time.Millisecond,
		})
	}
	_, addr := startServer(t, h.newSource)

	// The first connection dies after the handshake (20 bytes) plus
	// exactly five single-report frames (38 bytes each); later
	// connections are clean.
	var dials atomic.Int32
	var evMu sync.Mutex
	var events []SessionEvent
	sess, err := DialSession(context.Background(), SessionConfig{
		Dialer: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			if dials.Add(1) == 1 {
				return &limitConn{Conn: conn, remaining: 20 + 5*38}, nil
			}
			return conn, nil
		},
		BackoffInitial:    time.Millisecond,
		BackoffMax:        10 * time.Millisecond,
		JitterSeed:        7,
		KeepaliveInterval: -1, // keep the byte budget exact
		IdleTimeout:       2 * time.Second,
		OnEvent: func(ev SessionEvent) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	seen := map[time.Duration]int{}
	for {
		batch, err := sess.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range batch {
			seen[r.Timestamp]++
		}
	}
	if len(seen) != n {
		t.Errorf("unique reports = %d, want %d (mid-stream cut lost data)", len(seen), n)
	}
	if got := sess.Stats().Reconnects; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	seeks := h.recordedSeeks()
	if len(seeks) != 1 || seeks[0] != 50*time.Millisecond {
		t.Errorf("seeks = %v, want exactly [50ms] (last-seen before the cut)", seeks)
	}

	evMu.Lock()
	defer evMu.Unlock()
	var connects, disconnects int
	var lastResume time.Duration = NoResume
	for _, ev := range events {
		switch ev.Kind {
		case SessionConnected:
			connects++
			lastResume = ev.ResumeFrom
		case SessionDisconnected:
			disconnects++
		}
	}
	if connects != 2 || disconnects != 1 {
		t.Errorf("events: %d connects, %d disconnects, want 2 and 1", connects, disconnects)
	}
	if lastResume != 50*time.Millisecond {
		t.Errorf("reconnect ResumeFrom = %v, want 50ms", lastResume)
	}
}

func collectBackoff(t *testing.T, seed int64) []time.Duration {
	t.Helper()
	var waits []time.Duration
	_, err := DialSession(context.Background(), SessionConfig{
		Dialer: func(context.Context) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		BackoffInitial:    time.Millisecond,
		BackoffMax:        8 * time.Millisecond,
		JitterSeed:        seed,
		MaxAttempts:       5,
		KeepaliveInterval: -1,
		OnEvent: func(ev SessionEvent) {
			if ev.Kind == SessionRetrying {
				waits = append(waits, ev.Wait)
			}
		},
	})
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("dial err = %v, want ErrGiveUp", err)
	}
	return waits
}

func TestSessionBackoffDeterministicAndCapped(t *testing.T) {
	w1 := collectBackoff(t, 99)
	w2 := collectBackoff(t, 99)
	if len(w1) != 4 {
		t.Fatalf("retry events = %d, want 4 (MaxAttempts-1)", len(w1))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Errorf("attempt %d: %v vs %v — same seed must reproduce the schedule", i+1, w1[i], w2[i])
		}
		// Nominal delay doubles from 1 ms and caps at 8 ms; jitter keeps
		// the actual wait in [½·d, d].
		d := time.Millisecond << i
		if d > 8*time.Millisecond {
			d = 8 * time.Millisecond
		}
		if w1[i] < d/2 || w1[i] > d {
			t.Errorf("attempt %d wait %v outside [%v, %v]", i+1, w1[i], d/2, d)
		}
	}
}

func TestSessionKeepaliveDetectsDeadLink(t *testing.T) {
	// A reader that handshakes, swallows every frame, and never sends
	// another byte: only deadlines can unmask it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var keepalives atomic.Int32
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				w := bufio.NewWriter(conn)
				if err := writeFlush(w, Message{Type: MsgReaderEvent, Payload: []byte(EventReady)}); err != nil {
					return
				}
				r := bufio.NewReader(conn)
				for {
					msg, err := ReadMessage(r)
					if err != nil {
						return
					}
					if msg.Type == MsgKeepalive {
						keepalives.Add(1)
					}
				}
			}(conn)
		}
	}()

	disconnected := make(chan SessionEvent, 16)
	sess, err := DialSession(context.Background(), SessionConfig{
		Addr:              l.Addr().String(),
		KeepaliveInterval: 20 * time.Millisecond,
		IdleTimeout:       100 * time.Millisecond,
		WriteTimeout:      time.Second,
		BackoffInitial:    time.Millisecond,
		BackoffMax:        5 * time.Millisecond,
		JitterSeed:        3,
		OnEvent: func(ev SessionEvent) {
			if ev.Kind == SessionDisconnected {
				select {
				case disconnected <- ev:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	go sess.NextReports() // blocks until the idle deadline trips

	select {
	case ev := <-disconnected:
		var nerr net.Error
		if !errors.As(ev.Err, &nerr) || !nerr.Timeout() {
			t.Errorf("disconnect cause = %v, want a timeout", ev.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead link never detected")
	}
	if keepalives.Load() == 0 {
		t.Error("no keepalive pings reached the reader")
	}
}

func TestSessionCleanEndAndStop(t *testing.T) {
	batches := [][]TagReport{
		{{EPC: tagmodel.MakeEPC(1), Timestamp: time.Millisecond}},
	}
	_, addr := startServer(t, func() ReportSource {
		return &sliceSource{batches: append([][]TagReport(nil), batches...)}
	})
	sess, err := DialSession(context.Background(), SessionConfig{
		Addr:              addr,
		KeepaliveInterval: -1,
		IdleTimeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var got int
	for {
		batch, err := sess.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got += len(batch)
	}
	if got != 1 {
		t.Errorf("reports = %d, want 1", got)
	}
	if st := sess.Stats(); st.Reconnects != 0 {
		t.Errorf("clean end recorded %d reconnects, want 0", st.Reconnects)
	}

	// Stop mid-stream must surface as a clean end too, not a reconnect.
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	_, addr2 := startServer(t, func() ReportSource { return &blockSource{stop: stop} })
	sess2, err := DialSession(context.Background(), SessionConfig{
		Addr:              addr2,
		KeepaliveInterval: -1,
		IdleTimeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if _, err := sess2.NextReports(); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Stop(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("stream did not end after Stop")
		default:
		}
		_, err := sess2.NextReports()
		if errors.Is(err, ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error after Stop: %v", err)
		}
	}
	if st := sess2.Stats(); st.Reconnects != 0 {
		t.Errorf("Stop recorded %d reconnects, want 0", st.Reconnects)
	}
}
