package llrp

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rfipad/internal/tagmodel"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []Message{
		{Type: MsgStartROSpec},
		{Type: MsgKeepalive, Payload: []byte{}},
		{Type: MsgReaderEvent, Payload: []byte("hello")},
		{Type: MsgROAccessReport, Payload: bytes.Repeat([]byte{0xAB}, 500)},
	}
	for _, m := range tests {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Type, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %v: %v", m.Type, err)
		}
		if got.Type != m.Type || !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("round trip %v mismatch", m.Type)
		}
	}
}

func TestMessageValidation(t *testing.T) {
	// Bad magic.
	raw := []byte{0x00, 0x00, Version, byte(MsgKeepalive), 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version.
	raw = []byte{0xA5, 0x5A, 99, byte(MsgKeepalive), 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Oversized length field.
	raw = []byte{0xA5, 0x5A, Version, byte(MsgKeepalive), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized: %v", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgReaderEvent, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload should error")
	}
	// Oversized write refused.
	if err := WriteMessage(&bytes.Buffer{}, Message{Type: MsgReaderEvent, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized write: %v", err)
	}
}

func TestReportsRoundTrip(t *testing.T) {
	reports := []TagReport{
		{
			EPC:       tagmodel.MakeEPC(7),
			AntennaID: 1,
			PhaseRad:  1.2345,
			RSSdBm:    -41.5,
			DopplerHz: -0.73,
			Timestamp: 1234567 * time.Microsecond,
		},
		{
			EPC:       tagmodel.MakeEPC(8),
			AntennaID: 2,
			PhaseRad:  6.28,
			RSSdBm:    -63.25,
			DopplerHz: 2.4,
			Timestamp: time.Hour,
		},
	}
	payload, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReports(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reports) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range got {
		want := reports[i]
		if got[i].EPC != want.EPC || got[i].AntennaID != want.AntennaID {
			t.Errorf("report %d identity mismatch", i)
		}
		if math.Abs(got[i].PhaseRad-math.Mod(want.PhaseRad, 2*math.Pi)) > 2*math.Pi/65536+1e-9 {
			t.Errorf("report %d phase %v vs %v", i, got[i].PhaseRad, want.PhaseRad)
		}
		if math.Abs(got[i].RSSdBm-want.RSSdBm) > 0.005+1e-9 {
			t.Errorf("report %d rss %v vs %v", i, got[i].RSSdBm, want.RSSdBm)
		}
		if math.Abs(got[i].DopplerHz-want.DopplerHz) > 0.005+1e-9 {
			t.Errorf("report %d doppler %v vs %v", i, got[i].DopplerHz, want.DopplerHz)
		}
		if got[i].Timestamp != want.Timestamp {
			t.Errorf("report %d ts %v vs %v", i, got[i].Timestamp, want.Timestamp)
		}
	}
	// Empty batch round-trips too.
	empty, err := EncodeReports(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeReports(empty); err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v %v", got, err)
	}
}

func TestReportsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(n uint8) bool {
		reports := make([]TagReport, int(n)%20)
		for i := range reports {
			reports[i] = TagReport{
				EPC:       tagmodel.MakeEPC(rng.Intn(1000)),
				AntennaID: uint16(rng.Intn(4)),
				PhaseRad:  rng.Float64() * 2 * math.Pi,
				RSSdBm:    -80 + rng.Float64()*70,
				DopplerHz: -10 + rng.Float64()*20,
				Timestamp: time.Duration(rng.Int63n(1e12)) * time.Microsecond,
			}
		}
		payload, err := EncodeReports(reports)
		if err != nil {
			return false
		}
		got, err := DecodeReports(payload)
		if err != nil || len(got) != len(reports) {
			return false
		}
		for i := range got {
			if got[i].EPC != reports[i].EPC ||
				math.Abs(got[i].PhaseRad-reports[i].PhaseRad) > 1e-4 ||
				math.Abs(got[i].RSSdBm-reports[i].RSSdBm) > 0.006 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeReportsMalformed(t *testing.T) {
	if _, err := DecodeReports(nil); !errors.Is(err, ErrShortReport) {
		t.Errorf("nil payload: %v", err)
	}
	if _, err := DecodeReports([]byte{0, 2, 1, 2, 3}); !errors.Is(err, ErrShortReport) {
		t.Errorf("short payload: %v", err)
	}
	// Count mismatching length.
	payload, _ := EncodeReports([]TagReport{{EPC: tagmodel.MakeEPC(1)}})
	payload[1] = 9
	if _, err := DecodeReports(payload); !errors.Is(err, ErrShortReport) {
		t.Errorf("count mismatch: %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgStartROSpec; mt <= MsgError; mt++ {
		if mt.String() == "" {
			t.Errorf("empty string for %d", mt)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("fallback string empty")
	}
}
