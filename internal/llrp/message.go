// Package llrp implements a compact binary reader protocol in the
// spirit of EPCglobal's Low Level Reader Protocol (LLRP) [12], which
// the paper's software stack uses to talk to the Impinj reader
// (§IV-A). A backend connects to the reader daemon over TCP, starts a
// reader operation (ROSpec), and receives a stream of tag-report
// batches carrying EPC, phase, RSS, Doppler, and a microsecond
// timestamp — the exact record the recognition pipeline consumes.
//
// Wire format (all big-endian):
//
//	frame  := magic(u16) version(u8) type(u8) length(u32) payload
//	report := count(u16) entry*
//	entry  := epc(12B) antenna(u16) phase(u16) rssi(i16) doppler(i16) ts(u64)
//
// Phase is encoded as rad/2π × 65536 (the native resolution of Impinj
// readers is far coarser); RSSI and Doppler are centi-units; the
// timestamp is microseconds since reader start.
package llrp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rfipad/internal/tagmodel"
)

// Protocol constants.
const (
	Magic   uint16 = 0xA55A
	Version uint8  = 1

	// headerLen is the fixed frame header size in bytes.
	headerLen = 8
	// entryLen is the wire size of one tag report entry.
	entryLen = 12 + 2 + 2 + 2 + 2 + 8
	// MaxPayload caps a frame's payload to keep a malicious or corrupt
	// peer from forcing huge allocations.
	MaxPayload = 1 << 20
)

// MsgType identifies a frame's meaning.
type MsgType uint8

// Message types.
const (
	// MsgStartROSpec asks the reader to begin inventorying and
	// streaming reports.
	MsgStartROSpec MsgType = iota + 1
	// MsgStopROSpec asks the reader to stop.
	MsgStopROSpec
	// MsgROAccessReport carries a batch of tag reports.
	MsgROAccessReport
	// MsgKeepalive is a liveness probe (either direction).
	MsgKeepalive
	// MsgReaderEvent carries a UTF-8 status string from the reader.
	MsgReaderEvent
	// MsgError carries a UTF-8 error string.
	MsgError
)

// Reader event payloads. MsgReaderEvent frames carry one of these
// UTF-8 strings (possibly followed by ": detail" text); only the
// terminal ones end the report stream — everything else is status
// chatter a client must tolerate mid-stream.
const (
	// EventReady is sent once per connection before any other frame.
	EventReady = "reader ready"
	// EventComplete reports that the ROSpec's source is exhausted — a
	// clean end of stream.
	EventComplete = "rospec complete"
	// EventStopped acknowledges a StopROSpec.
	EventStopped = "rospec stopped"
	// EventNoROSpec answers a StopROSpec with no ROSpec running.
	EventNoROSpec = "no rospec"
)

// EventKind classifies a MsgReaderEvent payload.
type EventKind int

// Event kinds.
const (
	// EventInfo is informational chatter; the stream continues.
	EventInfo EventKind = iota
	// EventStreamEnd is a terminal event: the ROSpec completed or was
	// stopped and no further reports will follow.
	EventStreamEnd
	// EventHandshake is the per-connection ready banner.
	EventHandshake
)

// ClassifyEvent maps a MsgReaderEvent payload onto its kind. Unknown
// payloads classify as EventInfo so future reader chatter never kills
// a stream.
func ClassifyEvent(payload []byte) EventKind {
	switch string(payload) {
	case EventComplete, EventStopped:
		return EventStreamEnd
	case EventReady:
		return EventHandshake
	default:
		return EventInfo
	}
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgStartROSpec:
		return "StartROSpec"
	case MsgStopROSpec:
		return "StopROSpec"
	case MsgROAccessReport:
		return "ROAccessReport"
	case MsgKeepalive:
		return "Keepalive"
	case MsgReaderEvent:
		return "ReaderEvent"
	case MsgError:
		return "Error"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is one decoded frame.
type Message struct {
	Type    MsgType
	Payload []byte
}

// Protocol errors.
var (
	ErrBadMagic    = errors.New("llrp: bad magic")
	ErrBadVersion  = errors.New("llrp: unsupported version")
	ErrOversized   = errors.New("llrp: oversized payload")
	ErrShortReport = errors.New("llrp: truncated tag report")
)

// WriteMessage frames and writes a message.
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Payload) > MaxPayload {
		return ErrOversized
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = uint8(m.Type)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(m.Payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("llrp: write header: %w", err)
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return fmt.Errorf("llrp: write payload: %w", err)
		}
	}
	return nil
}

// ReadMessage reads and validates one frame.
func ReadMessage(r io.Reader) (Message, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Message{}, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return Message{}, ErrBadMagic
	}
	if hdr[2] != Version {
		return Message{}, ErrBadVersion
	}
	length := binary.BigEndian.Uint32(hdr[4:8])
	if length > MaxPayload {
		return Message{}, ErrOversized
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("llrp: read payload: %w", err)
	}
	return Message{Type: MsgType(hdr[3]), Payload: payload}, nil
}

// HeaderLen is the fixed frame header size in bytes, exported for
// frame-aware tooling (fault injectors, sniffers).
const HeaderLen = headerLen

// FrameSize maps a full frame header onto the total frame length
// (header + payload); it returns -1 when the header is not a valid
// frame start. Suitable as a faultnet framer.
func FrameSize(hdr []byte) int {
	if len(hdr) < headerLen || binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return -1
	}
	length := binary.BigEndian.Uint32(hdr[4:8])
	if length > MaxPayload {
		return -1
	}
	return headerLen + int(length)
}

// NoResume marks a StartROSpec with no resume point (stream from the
// beginning).
const NoResume = time.Duration(-1)

// EncodeResume builds a StartROSpec payload carrying the last-seen
// report timestamp, asking the reader to replay from (shortly before)
// that offset instead of from zero. NoResume encodes as an empty
// payload — the original stream-from-zero request.
func EncodeResume(lastSeen time.Duration) []byte {
	if lastSeen < 0 {
		return nil
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(lastSeen/time.Microsecond))
	return buf
}

// DecodeResume parses a StartROSpec payload. An empty payload means no
// resume point (NoResume, ok=true); a malformed payload returns
// ok=false.
func DecodeResume(payload []byte) (lastSeen time.Duration, ok bool) {
	switch len(payload) {
	case 0:
		return NoResume, true
	case 8:
		return time.Duration(binary.BigEndian.Uint64(payload)) * time.Microsecond, true
	default:
		return 0, false
	}
}

// TagReport is one tag observation on the wire.
type TagReport struct {
	EPC       tagmodel.EPC
	AntennaID uint16
	// PhaseRad is the reported phase in [0, 2π).
	PhaseRad float64
	// RSSdBm is the reported signal strength.
	RSSdBm float64
	// DopplerHz is the reported Doppler shift.
	DopplerHz float64
	// Timestamp is the reader-relative time of the read.
	Timestamp time.Duration
}

// EncodeReports builds a MsgROAccessReport payload.
func EncodeReports(reports []TagReport) ([]byte, error) {
	if len(reports) > math.MaxUint16 {
		return nil, fmt.Errorf("llrp: too many reports in one frame: %d", len(reports))
	}
	buf := make([]byte, 2+entryLen*len(reports))
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(reports)))
	off := 2
	for _, rep := range reports {
		copy(buf[off:off+12], rep.EPC[:])
		off += 12
		binary.BigEndian.PutUint16(buf[off:], rep.AntennaID)
		off += 2
		phase := rep.PhaseRad / (2 * math.Pi)
		phase -= math.Floor(phase)
		binary.BigEndian.PutUint16(buf[off:], uint16(phase*65536))
		off += 2
		binary.BigEndian.PutUint16(buf[off:], uint16(int16(clampI16(rep.RSSdBm*100))))
		off += 2
		binary.BigEndian.PutUint16(buf[off:], uint16(int16(clampI16(rep.DopplerHz*100))))
		off += 2
		binary.BigEndian.PutUint64(buf[off:], uint64(rep.Timestamp/time.Microsecond))
		off += 8
	}
	return buf, nil
}

// DecodeReports parses a MsgROAccessReport payload.
func DecodeReports(payload []byte) ([]TagReport, error) {
	return DecodeReportsInto(nil, payload)
}

// DecodeReportsInto is DecodeReports appending into dst's backing array
// when its capacity allows, so a caller that recycles one scratch slice
// across frames decodes without allocating. dst's existing elements are
// overwritten; pass dst[:0] semantics via any slice whose length is
// ignored. The returned slice aliases dst's array when it fit.
func DecodeReportsInto(dst []TagReport, payload []byte) ([]TagReport, error) {
	if len(payload) < 2 {
		return nil, ErrShortReport
	}
	count := int(binary.BigEndian.Uint16(payload[0:2]))
	if len(payload) != 2+count*entryLen {
		return nil, ErrShortReport
	}
	var out []TagReport
	if cap(dst) >= count {
		out = dst[:count]
	} else {
		out = make([]TagReport, count)
	}
	off := 2
	for i := range out {
		var rep TagReport
		copy(rep.EPC[:], payload[off:off+12])
		off += 12
		rep.AntennaID = binary.BigEndian.Uint16(payload[off:])
		off += 2
		rep.PhaseRad = float64(binary.BigEndian.Uint16(payload[off:])) / 65536 * 2 * math.Pi
		off += 2
		rep.RSSdBm = float64(int16(binary.BigEndian.Uint16(payload[off:]))) / 100
		off += 2
		rep.DopplerHz = float64(int16(binary.BigEndian.Uint16(payload[off:]))) / 100
		off += 2
		rep.Timestamp = time.Duration(binary.BigEndian.Uint64(payload[off:])) * time.Microsecond
		off += 8
		out[i] = rep
	}
	return out, nil
}

func clampI16(v float64) float64 {
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return math.Round(v)
}
