// Package scene assembles deployments: a tag array, a reader antenna in
// the LOS (ceiling) or NLOS (behind the board) position of §V-A, the
// writing canvas, the writer's body pose, and one of the four lab
// environments of Fig. 15 with its multipath character.
package scene

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/hand"
	"rfipad/internal/rf"
	"rfipad/internal/tagmodel"
)

// Placement is the reader antenna position of §V-A / Fig. 14.
type Placement int

// Antenna placements.
const (
	// NLOS mounts the antenna behind the board the tags sit on: the
	// hand never crosses the reader–tag line of sight. The paper's
	// default (32 cm behind the plane) and its best performer.
	NLOS Placement = iota + 1
	// LOS mounts the antenna on the ceiling above the plane, so the
	// hand and forearm cross reader–tag paths.
	LOS
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case NLOS:
		return "NLOS"
	case LOS:
		return "LOS"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Location is one of the four lab spots of Fig. 15. They differ in how
// much jittery multipath the nearby furniture and walls contribute;
// location #4 is the worst (Fig. 16).
type Location int

// The four experiment locations.
const (
	Location1 Location = iota + 1
	Location2
	Location3
	Location4
)

// String implements fmt.Stringer.
func (l Location) String() string { return fmt.Sprintf("location#%d", int(l)) }

// Locations lists all four experiment spots.
func Locations() []Location {
	return []Location{Location1, Location2, Location3, Location4}
}

// ReflectorSpec positions a multipath reflector relative to the array
// centre.
type ReflectorSpec struct {
	Offset       geo.Vec3
	Reflectivity float64
	Jitter       float64
	FastJitter   float64
	// ProximityRadius localizes the reflector to nearby tags (metres);
	// zero means global influence.
	ProximityRadius float64
}

type reflectorSpec = ReflectorSpec

// locationReflectors returns the multipath environment of each
// location. Location #4 sits near walls and tables (Fig. 15), giving
// the strongest, most jittery reflections.
func locationReflectors(loc Location) []reflectorSpec {
	switch loc {
	case Location1:
		return []reflectorSpec{
			{Offset: geo.V(0.29, -0.26, 0.05), Reflectivity: 0.12, Jitter: 0.03, FastJitter: 0.06, ProximityRadius: 0.15},
			{Offset: geo.V(1.5, 0.5, 0.4), Reflectivity: 0.18, Jitter: 0.03},
			{Offset: geo.V(-1.2, -0.8, 0.2), Reflectivity: 0.15, Jitter: 0.03},
		}
	case Location2:
		return []reflectorSpec{
			{Offset: geo.V(0.30, -0.25, 0.05), Reflectivity: 0.30, Jitter: 0.05, FastJitter: 0.18, ProximityRadius: 0.14},
			{Offset: geo.V(-0.9, 0.9, 0.5), Reflectivity: 0.20, Jitter: 0.04},
		}
	case Location3:
		return []reflectorSpec{
			{Offset: geo.V(0.28, -0.26, 0.05), Reflectivity: 0.50, Jitter: 0.06, FastJitter: 0.30, ProximityRadius: 0.15},
			{Offset: geo.V(-0.7, 0.6, 0.2), Reflectivity: 0.24, Jitter: 0.05},
			{Offset: geo.V(1.4, 1.0, 0.6), Reflectivity: 0.18, Jitter: 0.04},
		}
	case Location4:
		// Near walls and tables (Fig. 15): strongly fluctuating
		// clutter right at two corners of the plate, injecting very
		// uneven noise across tags — the situation the deviation-bias
		// compensation is designed for. Calibrated so recognition
		// lands near the paper's 93% (with suppression) / 75%
		// (without), Fig. 16.
		return []reflectorSpec{
			{Offset: geo.V(0.27, -0.27, 0.04), Reflectivity: 0.70, Jitter: 0.08, FastJitter: 0.45, ProximityRadius: 0.16},
			{Offset: geo.V(-0.26, 0.27, 0.04), Reflectivity: 0.63, Jitter: 0.06, FastJitter: 0.41, ProximityRadius: 0.14},
			{Offset: geo.V(-0.8, -0.5, 0.3), Reflectivity: 0.20, Jitter: 0.04},
		}
	default:
		return nil
	}
}

// Config selects the deployment geometry. Zero values take the paper's
// defaults (§V-B1): NLOS placement, 32 cm reader distance, 30 dBm TX,
// 0° antenna tilt, location #1.
type Config struct {
	// Placement of the reader antenna (default NLOS).
	Placement Placement
	// Location selects the multipath environment (default Location1).
	Location Location
	// ReaderDistance is the antenna-to-plane distance in metres
	// (default 0.32, §V-B1's "about 32cm").
	ReaderDistance float64
	// LOSDistance is the ceiling height above the plane for the LOS
	// placement (default 1.0 m).
	LOSDistance float64
	// TxPowerDBm is the reader transmit power (default 30; §V-B1).
	TxPowerDBm float64
	// AngleDeg tilts the antenna panel relative to the tag panel
	// (Fig. 18 sweeps −30°, 0°, 30°, 45°; default 0).
	AngleDeg float64
	// Array overrides the tag array configuration (default
	// tagmodel.DefaultArrayConfig).
	Array *tagmodel.ArrayConfig
	// Reflectors, when non-nil, replaces the Location's multipath
	// environment with an explicit reflector set.
	Reflectors []ReflectorSpec
	// HopCarriersHz, when non-empty, frequency-hops the reader across
	// these carriers with HopDwell per channel (FCC-style operation).
	// The paper's prototype runs fixed at 922.38 MHz (§IV-A).
	HopCarriersHz []float64
	// HopDwell is the per-channel dwell for hopping (default 200 ms
	// when HopCarriersHz is set).
	HopDwell time.Duration
}

// Deployment is a fully assembled scene ready for simulation.
type Deployment struct {
	// Array is the sensing plate.
	Array *tagmodel.Array
	// Channel models the radio links for the reader antenna.
	Channel *rf.Channel
	// Canvas is the writing area spanning the array.
	Canvas hand.Canvas
	// Body is the writer's pose for arm-scatterer placement.
	Body hand.Body
	// Placement records the antenna mode.
	Placement Placement
	// Location records the environment.
	Location Location
}

// New assembles a deployment. rng seeds the tag manufacturing
// diversity and must not be nil.
func New(cfg Config, rng *rand.Rand) *Deployment {
	if cfg.Placement == 0 {
		cfg.Placement = NLOS
	}
	if cfg.Location == 0 {
		cfg.Location = Location1
	}
	if cfg.ReaderDistance <= 0 {
		cfg.ReaderDistance = 0.32
	}
	if cfg.LOSDistance <= 0 {
		cfg.LOSDistance = 1.0
	}
	if cfg.TxPowerDBm == 0 {
		cfg.TxPowerDBm = 30
	}
	arrayCfg := tagmodel.DefaultArrayConfig()
	if cfg.Array != nil {
		arrayCfg = *cfg.Array
	}
	array := tagmodel.NewArray(arrayCfg, rng)
	center := array.Center()

	var antPos, boresight geo.Vec3
	switch cfg.Placement {
	case LOS:
		antPos = center.Add(geo.V(0, 0, cfg.LOSDistance))
		boresight = geo.V(0, 0, -1)
	default: // NLOS: behind the board
		antPos = center.Add(geo.V(0, 0, -cfg.ReaderDistance))
		boresight = geo.V(0, 0, 1)
	}
	if cfg.AngleDeg != 0 {
		// Tilt the antenna panel around the y axis while keeping its
		// distance from the plane (Fig. 18's top view geometry).
		rad := cfg.AngleDeg * math.Pi / 180
		boresight = boresight.RotateY(rad)
	}
	antenna := rf.Antenna{Pos: antPos, Boresight: boresight, GainDBi: rf.DefaultAntennaGainDBi}

	specs := locationReflectors(cfg.Location)
	if cfg.Reflectors != nil {
		specs = cfg.Reflectors
	}
	var reflectors []rf.Reflector
	for _, spec := range specs {
		reflectors = append(reflectors, rf.Reflector{
			Pos:             center.Add(spec.Offset),
			Reflectivity:    spec.Reflectivity,
			Jitter:          spec.Jitter,
			FastJitter:      spec.FastJitter,
			ProximityRadius: spec.ProximityRadius,
		})
	}

	chanOpts := []rf.ChannelOption{
		rf.WithTxPower(cfg.TxPowerDBm),
		rf.WithReflectors(reflectors),
	}
	if len(cfg.HopCarriersHz) > 0 {
		dwell := cfg.HopDwell
		if dwell <= 0 {
			dwell = 200 * time.Millisecond
		}
		chanOpts = append(chanOpts, rf.WithHopping(cfg.HopCarriersHz, dwell))
	}
	channel := rf.NewChannel(antenna, chanOpts...)

	// The writing canvas spans the tag grid.
	span := float64(array.Cols-1) * array.Spacing
	canvas := hand.Canvas{
		Origin: array.Origin,
		Width:  span,
		Height: float64(array.Rows-1) * array.Spacing,
	}

	// The writer stands at the +y edge of the plate.
	body := hand.Body{ShoulderPos: center.Add(geo.V(0, span/2+0.35, 0.30))}

	return &Deployment{
		Array:     array,
		Channel:   channel,
		Canvas:    canvas,
		Body:      body,
		Placement: cfg.Placement,
		Location:  cfg.Location,
	}
}
