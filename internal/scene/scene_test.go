package scene

import (
	"math"
	"math/rand"
	"testing"

	"rfipad/internal/tagmodel"
)

func TestNewAppliesPaperDefaults(t *testing.T) {
	d := New(Config{}, rand.New(rand.NewSource(1)))
	if d.Placement != NLOS {
		t.Errorf("default placement = %v, want NLOS", d.Placement)
	}
	if d.Location != Location1 {
		t.Errorf("default location = %v", d.Location)
	}
	if d.Channel.TxPowerDBm() != 30 {
		t.Errorf("default TX = %v", d.Channel.TxPowerDBm())
	}
	// NLOS antenna sits 32 cm behind the plane, boresight +z.
	ant := d.Channel.Antenna()
	center := d.Array.Center()
	if got := center.Z - ant.Pos.Z; math.Abs(got-0.32) > 1e-9 {
		t.Errorf("NLOS distance = %v, want 0.32", got)
	}
	if ant.Boresight.Z <= 0 {
		t.Error("NLOS boresight should face the plane (+z)")
	}
	// Canvas spans the grid.
	if math.Abs(d.Canvas.Width-4*d.Array.Spacing) > 1e-9 {
		t.Errorf("canvas width = %v", d.Canvas.Width)
	}
	if d.Canvas.Origin != d.Array.Origin {
		t.Error("canvas origin should be the array origin")
	}
	// Body stands beyond the +y edge, above the plane.
	if d.Body.ShoulderPos.Y <= center.Y || d.Body.ShoulderPos.Z <= 0 {
		t.Errorf("body at %v", d.Body.ShoulderPos)
	}
}

func TestLOSPlacement(t *testing.T) {
	d := New(Config{Placement: LOS, LOSDistance: 1.2}, rand.New(rand.NewSource(2)))
	ant := d.Channel.Antenna()
	if got := ant.Pos.Z - d.Array.Center().Z; math.Abs(got-1.2) > 1e-9 {
		t.Errorf("LOS height = %v, want 1.2", got)
	}
	if ant.Boresight.Z >= 0 {
		t.Error("LOS boresight should face down")
	}
}

func TestAngleTiltsBoresight(t *testing.T) {
	d0 := New(Config{}, rand.New(rand.NewSource(3)))
	d45 := New(Config{AngleDeg: 45}, rand.New(rand.NewSource(3)))
	b0, b45 := d0.Channel.Antenna().Boresight, d45.Channel.Antenna().Boresight
	angle := b0.AngleTo(b45) * 180 / math.Pi
	if math.Abs(angle-45) > 1e-6 {
		t.Errorf("tilt = %v°, want 45", angle)
	}
	// Tilting reduces the gain toward the plane centre.
	center := d0.Array.Center()
	g0 := d0.Channel.Antenna().GainTowards(center)
	g45 := d45.Channel.Antenna().GainTowards(center)
	if g45 >= g0 {
		t.Errorf("tilted gain %v >= straight gain %v", g45, g0)
	}
}

func TestLocationsHaveEscalatingMultipath(t *testing.T) {
	if got := len(Locations()); got != 4 {
		t.Fatalf("Locations = %d", got)
	}
	// Location #4's reflectors are stronger and jitterier than #1's
	// (Fig. 15/16: strongest multipath from nearby walls and tables).
	sum := func(loc Location) (refl, jit float64) {
		for _, s := range locationReflectors(loc) {
			refl += s.Reflectivity
			jit += s.Jitter
		}
		return
	}
	r1, j1 := sum(Location1)
	r4, j4 := sum(Location4)
	if r4 <= r1 || j4 <= j1 {
		t.Errorf("location 4 (refl %v, jitter %v) should exceed location 1 (%v, %v)", r4, j4, r1, j1)
	}
	if locationReflectors(Location(99)) != nil {
		t.Error("unknown location should have no reflectors")
	}
}

func TestCustomArrayConfig(t *testing.T) {
	cfg := tagmodel.DefaultArrayConfig()
	cfg.Rows, cfg.Cols = 3, 7
	d := New(Config{Array: &cfg}, rand.New(rand.NewSource(4)))
	if d.Array.Rows != 3 || d.Array.Cols != 7 {
		t.Errorf("array = %d×%d", d.Array.Rows, d.Array.Cols)
	}
	if math.Abs(d.Canvas.Width-6*d.Array.Spacing) > 1e-9 {
		t.Errorf("canvas width = %v", d.Canvas.Width)
	}
}

func TestStringers(t *testing.T) {
	if NLOS.String() != "NLOS" || LOS.String() != "LOS" {
		t.Error("placement strings")
	}
	if Placement(9).String() == "" || Location1.String() == "" {
		t.Error("fallback strings")
	}
}

func TestTagsReadableInDefaultDeployment(t *testing.T) {
	// Every tag powers up and reports sane RSS in the default scene.
	d := New(Config{}, rand.New(rand.NewSource(5)))
	for _, tag := range d.Array.Tags {
		obs := d.Channel.Observe(tag.RFPoint(), nil, nil)
		if !obs.PoweredUp {
			t.Errorf("tag (%d,%d) not powered: fwd %v dBm", tag.Row, tag.Col, obs.ForwardPowerDBm)
		}
		if obs.RSSdBm > 0 || obs.RSSdBm < -80 {
			t.Errorf("tag (%d,%d) RSS = %v dBm", tag.Row, tag.Col, obs.RSSdBm)
		}
	}
}
