package experiments

import (
	"time"

	"rfipad/internal/metrics"
	"rfipad/internal/stroke"
)

// Trial is one motion repetition's typed outcome — the unit every
// runner in this package produces before anything is averaged. Keeping
// the per-trial record explicit (instead of bumping tallies inline)
// gives the scenario harness (internal/experiments/scenario) and the
// paper-table runners one shared vocabulary: a trial either detected
// the motion or missed it, possibly with spurious extra detections.
type Trial struct {
	// Motion is the ground-truth motion performed.
	Motion stroke.Motion
	// Predicted is the recognized motion (meaningful when Detected).
	Predicted stroke.Motion
	// Detected reports whether the pipeline produced any detection.
	Detected bool
	// Spurious counts detections beyond the first.
	Spurious int
	// Duration is the ground-truth stroke duration (recorded for
	// Fig. 21's duration histogram when the trial is correct).
	Duration time.Duration
}

// Correct reports whether the detection matched the ground truth.
func (t Trial) Correct() bool { return t.Detected && t.Predicted == t.Motion }

// Aggregate accumulates Trials into the tallies the paper-style
// tables render: the motion tally, the confusion matrix, and the
// ground-truth durations of correctly recognized strokes.
type Aggregate struct {
	Tally     metrics.MotionTally
	Confusion *metrics.Confusion
	// Durations maps each motion to the ground-truth durations of its
	// correctly recognized trials (Fig. 21).
	Durations map[stroke.Motion][]time.Duration
}

// NewAggregate returns an empty accumulator.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Confusion: metrics.NewConfusion(),
		Durations: map[stroke.Motion][]time.Duration{},
	}
}

// Observe folds one trial in.
func (a *Aggregate) Observe(t Trial) {
	a.Tally.Trials++
	if !t.Detected {
		a.Tally.Missed++
		a.Confusion.Observe(t.Motion.String(), "(none)")
		return
	}
	a.Confusion.Observe(t.Motion.String(), t.Predicted.String())
	if t.Predicted == t.Motion {
		a.Tally.Correct++
		a.Durations[t.Motion] = append(a.Durations[t.Motion], t.Duration)
	} else {
		a.Tally.Wrong++
	}
	a.Tally.Spurious += t.Spurious
}

// MissedAll counts n trials as missed without confusion entries — the
// outcome of a deployment that never calibrated.
func (a *Aggregate) MissedAll(n int) {
	a.Tally.Trials += n
	a.Tally.Missed += n
}

// Merge folds another aggregate in (used when several deployment
// groups report into one table cell).
func (a *Aggregate) Merge(o *Aggregate) {
	a.Tally.Add(o.Tally)
	for _, truth := range o.Confusion.Labels() {
		for _, pred := range o.Confusion.Labels() {
			for k := 0; k < o.Confusion.Count(truth, pred); k++ {
				a.Confusion.Observe(truth, pred)
			}
		}
	}
	for m, ds := range o.Durations {
		a.Durations[m] = append(a.Durations[m], ds...)
	}
}

// LetterTrial is one written-letter capture's outcome (Fig. 22/23):
// segmentation quality, per-stroke recognition, and letter deduction.
type LetterTrial struct {
	Seg           metrics.SegmentationTally
	StrokesRight  int
	StrokesTotal  int
	LetterCorrect bool
	LetterOK      bool
}
