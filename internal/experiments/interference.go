package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"rfipad/internal/geo"
	"rfipad/internal/rf"
	"rfipad/internal/tagmodel"
)

func init() {
	register("fig11", "Fig. 11: interference within a pair of tags", func(cfg Config) Result {
		return RunFig11(cfg)
	})
	register("fig12", "Fig. 12: array shadowing for four tag designs", func(cfg Config) Result {
		return RunFig12(cfg)
	})
	register("geometry", "§IV-B3: beam angle, minimum plane distance, read range", func(cfg Config) Result {
		return RunGeometry(cfg)
	})
}

// Fig11Result reproduces Fig. 11: the RSS of a target tag as a testing
// tag approaches at different spacings and orientations.
type Fig11Result struct {
	BaselineDBm float64
	SpacingsCM  []float64
	// SameFacing / OppositeFacing hold the target's RSS per spacing.
	SameFacing, OppositeFacing []float64
}

// Name implements Result.
func (Fig11Result) Name() string { return "fig11" }

// String renders the pair-interference table.
func (r Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — interference within a pair of tags (target RSS, dBm)\n")
	fmt.Fprintf(&b, "baseline (alone): %.1f\n", r.BaselineDBm)
	b.WriteString("spacing(cm)  same-facing  opposite\n")
	for i, s := range r.SpacingsCM {
		fmt.Fprintf(&b, "%11.0f  %11.1f  %8.1f\n", s, r.SameFacing[i], r.OppositeFacing[i])
	}
	return b.String()
}

// RunFig11 places a target tag 2 m from the antenna (§IV-B1: RSS
// ≈ −41 dBm) and moves a testing tag alongside it.
func RunFig11(cfg Config) Fig11Result {
	cfg.fill()
	antenna := rf.Antenna{Pos: geo.V(0, 0, 2), Boresight: geo.V(0, 0, -1), GainDBi: rf.DefaultAntennaGainDBi}
	ch := rf.NewChannel(antenna)

	rng := rand.New(rand.NewSource(cfg.Seed))
	target := &tagmodel.Tag{
		EPC: tagmodel.MakeEPC(1), Type: tagmodel.TagD,
		Pos: geo.V(0, 0, 0), Facing: tagmodel.FacingPositive,
		ThetaTag:       rng.Float64(),
		SensitivityDBm: tagmodel.TagD.Props().SensitivityDBm,
	}
	baseline := ch.Observe(target.RFPoint(), nil, nil).RSSdBm

	res := Fig11Result{
		BaselineDBm: baseline,
		SpacingsCM:  []float64{3, 6, 9, 12, 15},
	}
	for _, s := range res.SpacingsCM {
		d := s / 100
		for _, same := range []bool{true, false} {
			loss := tagmodel.PairCouplingDB(tagmodel.TagD, d, same)
			pt := target.RFPoint()
			pt.ExtraLossDB = loss
			rss := ch.Observe(pt, nil, nil).RSSdBm
			if same {
				res.SameFacing = append(res.SameFacing, rss)
			} else {
				res.OppositeFacing = append(res.OppositeFacing, rss)
			}
		}
	}
	return res
}

// Fig12Result reproduces Fig. 12: the RSS of a victim tag behind the
// plane as rows and columns of each tag design are added in front.
type Fig12Result struct {
	Types       []tagmodel.TagType
	BaselineDBm float64
	// Rows (1..5, single column) then Columns (5 rows × 1..3 cols).
	RowCounts, ColCounts []int
	// RSS[t][k]: victim RSS for type t with RowCounts[k] rows (first
	// len(RowCounts) entries) then ColCounts columns.
	RSS [][]float64
}

// Name implements Result.
func (Fig12Result) Name() string { return "fig12" }

// String renders the array-shadowing table.
func (r Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — victim tag RSS behind the plane (dBm)\n")
	fmt.Fprintf(&b, "baseline (empty plane): %.1f\n", r.BaselineDBm)
	fmt.Fprintf(&b, "%-22s", "config")
	for _, t := range r.Types {
		fmt.Fprintf(&b, "%22v", t)
	}
	b.WriteByte('\n')
	row := 0
	for _, n := range r.RowCounts {
		fmt.Fprintf(&b, "%d row(s) × 1 col      ", n)
		for ti := range r.Types {
			fmt.Fprintf(&b, "%22.1f", r.RSS[ti][row])
		}
		b.WriteByte('\n')
		row++
	}
	for _, n := range r.ColCounts {
		fmt.Fprintf(&b, "5 rows × %d col(s)     ", n)
		for ti := range r.Types {
			fmt.Fprintf(&b, "%22.1f", r.RSS[ti][row])
		}
		b.WriteByte('\n')
		row++
	}
	return b.String()
}

// RunFig12 reproduces the §IV-B2 experiment: reader 50 cm in front of
// the plane, victim tag directly behind it, 6 cm tag spacing.
func RunFig12(cfg Config) Fig12Result {
	cfg.fill()
	antenna := rf.Antenna{Pos: geo.V(0, 0, 0.5), Boresight: geo.V(0, 0, -1), GainDBi: rf.DefaultAntennaGainDBi}
	ch := rf.NewChannel(antenna)
	victimPos := geo.V(0, 0, -0.03)

	res := Fig12Result{
		Types:     []tagmodel.TagType{tagmodel.TagA, tagmodel.TagB, tagmodel.TagC, tagmodel.TagD},
		RowCounts: []int{1, 2, 3, 4, 5},
		ColCounts: []int{2, 3},
	}
	victim := rf.TagPoint{
		Pos: victimPos, GainDBi: 2, BackscatterLossDB: 15, SensitivityDBm: -18,
	}
	res.BaselineDBm = ch.Observe(victim, nil, nil).RSSdBm

	build := func(ty tagmodel.TagType, rows, cols int) []*tagmodel.Tag {
		rng := rand.New(rand.NewSource(cfg.Seed))
		arr := tagmodel.NewArray(tagmodel.ArrayConfig{
			Rows: rows, Cols: cols,
			Spacing: 0.06,
			Origin:  geo.V(-float64(cols-1)*0.03, -float64(rows-1)*0.03, 0),
			Type:    ty,
		}, rng)
		return arr.Tags
	}
	for _, ty := range res.Types {
		var rssRow []float64
		measure := func(rows, cols int) {
			loss := tagmodel.ShadowThroughArrayDB(antenna.Pos, victimPos, build(ty, rows, cols))
			pt := victim
			pt.ExtraLossDB = loss
			rssRow = append(rssRow, ch.Observe(pt, nil, nil).RSSdBm)
		}
		for _, n := range res.RowCounts {
			measure(n, 1)
		}
		for _, n := range res.ColCounts {
			measure(5, n)
		}
		res.RSS = append(res.RSS, rssRow)
	}
	return res
}

// GeometryResult reproduces the §IV-B3 deployment arithmetic.
type GeometryResult struct {
	BeamAngleDeg     float64
	PlaneLengthM     float64
	MinDistanceM     float64
	ReadRangeM       float64
	PaperBeamAngle   float64 // the paper's rounded 72°
	PaperMinDistance float64 // the paper's 31.7 cm
}

// Name implements Result.
func (GeometryResult) Name() string { return "geometry" }

// String renders the deployment numbers.
func (r GeometryResult) String() string {
	return fmt.Sprintf("§IV-B3 — deployment geometry\n"+
		"beam angle: %.1f° (paper rounds to %.0f°)\n"+
		"plane length: %.2f m\n"+
		"min antenna–plane distance: %.3f m (paper: %.3f m)\n"+
		"forward-link read range at 30 dBm: %.1f m\n",
		r.BeamAngleDeg, r.PaperBeamAngle, r.PlaneLengthM, r.MinDistanceM, r.PaperMinDistance, r.ReadRangeM)
}

// RunGeometry evaluates Eq. 13/14 and the minimum-distance formula for
// the default deployment.
func RunGeometry(cfg Config) GeometryResult {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	arr := tagmodel.NewArray(tagmodel.DefaultArrayConfig(), rng)
	ant := rf.Antenna{Pos: geo.V(0, 0, 0.32), Boresight: geo.V(0, 0, -1), GainDBi: rf.DefaultAntennaGainDBi}
	return GeometryResult{
		BeamAngleDeg:     ant.BeamAngleRad() * 180 / 3.141592653589793,
		PlaneLengthM:     arr.PlaneLength(),
		MinDistanceM:     ant.MinPlaneDistance(arr.PlaneLength()),
		ReadRangeM:       ant.ReadRange(30, 2, -18, rf.Wavelength(rf.DefaultFrequencyHz)),
		PaperBeamAngle:   72,
		PaperMinDistance: 0.317,
	}
}
