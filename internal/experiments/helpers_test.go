package experiments

import "rfipad/internal/stroke"

func mArcFwd() stroke.Motion { return stroke.M(stroke.ArcLeft, stroke.Forward) }
func mClick() stroke.Motion  { return stroke.M(stroke.Click, 0) }
