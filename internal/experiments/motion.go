package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/dsp"
	"rfipad/internal/hand"
	"rfipad/internal/metrics"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
	"rfipad/internal/stroke"
)

func init() {
	register("table1", "Table I: motion identification accuracy, LOS vs NLOS", func(cfg Config) Result {
		return RunTable1(cfg)
	})
	register("fig16", "Fig. 16: detection accuracy across environments ± diversity suppression", func(cfg Config) Result {
		return RunFig16(cfg)
	})
	register("fig17", "Fig. 17: FPR/FNR vs reader transmit power", func(cfg Config) Result {
		return RunFig17(cfg)
	})
	register("fig18", "Fig. 18: accuracy vs reader-to-tag angle", func(cfg Config) Result {
		return RunFig18(cfg)
	})
	register("fig19", "Fig. 19: error rate vs reader-to-tag distance", func(cfg Config) Result {
		return RunFig19(cfg)
	})
	register("fig20", "Fig. 20: detection accuracy per user", func(cfg Config) Result {
		return RunFig20(cfg)
	})
	register("fig21", "Fig. 21: CDF of stroke completion time", func(cfg Config) Result {
		return RunFig21(cfg)
	})
	register("fig24", "Fig. 24: recognition response time per motion", func(cfg Config) Result {
		return RunFig24(cfg)
	})
	register("confusion", "Motion confusion matrix (per-motion detail behind Table I)", func(cfg Config) Result {
		return RunConfusion(cfg)
	})
}

// Table1Result reproduces Table I.
type Table1Result struct {
	// Group accuracies per placement, one entry per group.
	LOS, NLOS []float64
}

// Name implements Result.
func (Table1Result) Name() string { return "table1" }

// Average returns the mean of a group accuracy list.
func mean(xs []float64) float64 { return dsp.Mean(xs) }

// String renders Table I.
func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I — accuracy of motion identification\n")
	fmt.Fprintf(&b, "%-6s", "Case")
	for i := range r.LOS {
		fmt.Fprintf(&b, "  Group %d", i+1)
	}
	b.WriteString("  Average\n")
	row := func(name string, xs []float64) {
		fmt.Fprintf(&b, "%-6s", name)
		for _, x := range xs {
			fmt.Fprintf(&b, "  %7.2f", x)
		}
		fmt.Fprintf(&b, "  %7.2f\n", mean(xs))
	}
	row("LOS", r.LOS)
	row("NLOS", r.NLOS)
	return b.String()
}

// RunTable1 reproduces Table I: 13 strokes, Trials repetitions, Groups
// independent runs, for both antenna placements.
func RunTable1(cfg Config) Table1Result {
	cfg.fill()
	var res Table1Result
	for _, pl := range []scene.Placement{scene.LOS, scene.NLOS} {
		_, outcomes := runCondition(cfg, condition{scene: scene.Config{Placement: pl}})
		var accs []float64
		for _, o := range outcomes {
			accs = append(accs, o.Tally.Accuracy())
		}
		if pl == scene.LOS {
			res.LOS = accs
		} else {
			res.NLOS = accs
		}
	}
	return res
}

// Fig16Result reproduces Fig. 16.
type Fig16Result struct {
	Locations []scene.Location
	With      []float64 // accuracy with diversity suppression
	Without   []float64 // accuracy without
}

// Name implements Result.
func (Fig16Result) Name() string { return "fig16" }

// String renders the per-location comparison.
func (r Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 16 — detection accuracy vs environment\n")
	b.WriteString("location   without-suppression  with-suppression\n")
	for i, loc := range r.Locations {
		fmt.Fprintf(&b, "%-10v %19.3f %17.3f\n", loc, r.Without[i], r.With[i])
	}
	return b.String()
}

// RunFig16 measures accuracy at the four lab locations with and
// without diversity suppression.
func RunFig16(cfg Config) Fig16Result {
	cfg.fill()
	res := Fig16Result{Locations: scene.Locations()}
	for _, loc := range res.Locations {
		with, _ := runCondition(cfg, condition{scene: scene.Config{Location: loc}})
		without, _ := runCondition(cfg, condition{
			scene:       scene.Config{Location: loc},
			suppression: core.SuppressNone,
		})
		res.With = append(res.With, with.Accuracy())
		res.Without = append(res.Without, without.Accuracy())
	}
	return res
}

// Fig17Result reproduces Fig. 17.
type Fig17Result struct {
	PowersDBm []float64
	FPR, FNR  []float64
}

// Name implements Result.
func (Fig17Result) Name() string { return "fig17" }

// String renders the power sweep.
func (r Fig17Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 17 — error rate vs reader transmit power\n")
	b.WriteString("power(dBm)    FPR    FNR\n")
	for i, p := range r.PowersDBm {
		fmt.Fprintf(&b, "%10.1f  %5.3f  %5.3f\n", p, r.FPR[i], r.FNR[i])
	}
	return b.String()
}

// RunFig17 sweeps the reader transmit power over the paper's range
// (15–32.5 dBm; the regulatory cap is 32.5).
func RunFig17(cfg Config) Fig17Result {
	cfg.fill()
	res := Fig17Result{PowersDBm: []float64{15, 18, 20, 25, 32.5}}
	for _, p := range res.PowersDBm {
		tally, _ := runCondition(cfg, condition{scene: scene.Config{TxPowerDBm: p}})
		res.FPR = append(res.FPR, tally.FPR())
		res.FNR = append(res.FNR, tally.FNR())
	}
	return res
}

// Fig18Result reproduces Fig. 18.
type Fig18Result struct {
	AnglesDeg  []float64
	Accuracies []float64
}

// Name implements Result.
func (Fig18Result) Name() string { return "fig18" }

// String renders the angle sweep.
func (r Fig18Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 18 — accuracy vs reader-to-tag angle\n")
	b.WriteString("angle(deg)  accuracy\n")
	for i, a := range r.AnglesDeg {
		fmt.Fprintf(&b, "%10.0f  %8.3f\n", a, r.Accuracies[i])
	}
	return b.String()
}

// RunFig18 sweeps the antenna tilt over the paper's angles. The paper
// runs only "−" and "|" here (§V-B4); we run the full motion set,
// whose arc and click motions are the angle-sensitive ones — straight
// strokes alone barely degrade on either substrate.
func RunFig18(cfg Config) Fig18Result {
	cfg.fill()
	res := Fig18Result{AnglesDeg: []float64{-30, 0, 30, 45}}
	for _, a := range res.AnglesDeg {
		tally, _ := runCondition(cfg, condition{scene: scene.Config{AngleDeg: a}})
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// Fig19Result reproduces Fig. 19.
type Fig19Result struct {
	DistancesM []float64
	FPR, FNR   []float64
}

// Name implements Result.
func (Fig19Result) Name() string { return "fig19" }

// String renders the distance sweep.
func (r Fig19Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 19 — error rate vs reader-to-tag distance\n")
	b.WriteString("distance(cm)    FPR    FNR\n")
	for i, d := range r.DistancesM {
		fmt.Fprintf(&b, "%12.0f  %5.3f  %5.3f\n", d*100, r.FPR[i], r.FNR[i])
	}
	return b.String()
}

// RunFig19 sweeps the reader-to-plane distance (20–80 cm, §V-B5).
func RunFig19(cfg Config) Fig19Result {
	cfg.fill()
	res := Fig19Result{DistancesM: []float64{0.20, 0.50, 0.80}}
	for _, d := range res.DistancesM {
		tally, _ := runCondition(cfg, condition{scene: scene.Config{ReaderDistance: d}})
		res.FPR = append(res.FPR, tally.FPR())
		res.FNR = append(res.FNR, tally.FNR())
	}
	return res
}

// Fig20Result reproduces Fig. 20.
type Fig20Result struct {
	Users      []string
	Accuracies []float64
}

// Name implements Result.
func (Fig20Result) Name() string { return "fig20" }

// String renders the per-user accuracies.
func (r Fig20Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 20 — detection accuracy vs user\n")
	b.WriteString("user      accuracy\n")
	for i, u := range r.Users {
		fmt.Fprintf(&b, "%-9s %8.3f\n", u, r.Accuracies[i])
	}
	accs := append([]float64(nil), r.Accuracies...)
	sort.Float64s(accs)
	fmt.Fprintf(&b, "median    %8.3f\n", dsp.Median(accs))
	return b.String()
}

// RunFig20 measures each of the ten volunteers separately (§V-B6).
func RunFig20(cfg Config) Fig20Result {
	cfg.fill()
	var res Fig20Result
	for _, u := range hand.Volunteers() {
		tally, _ := runCondition(cfg, condition{users: []hand.User{u}})
		res.Users = append(res.Users, u.Name)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// Fig21Result reproduces Fig. 21: the distribution of the time needed
// to complete (and correctly recognize) each stroke.
type Fig21Result struct {
	// Quantiles of the pooled stroke-duration distribution.
	P50, P90, P99 time.Duration
	// PerMotionP90 maps each motion to its 90th-percentile duration.
	PerMotionP90 map[stroke.Motion]time.Duration
	// Within2s is the fraction of strokes completed within 2 s.
	Within2s float64
}

// Name implements Result.
func (Fig21Result) Name() string { return "fig21" }

// String renders the CDF summary.
func (r Fig21Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 21 — CDF of stroke completion time\n")
	fmt.Fprintf(&b, "p50=%v p90=%v p99=%v within2s=%.3f\n", r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond), r.P99.Round(time.Millisecond), r.Within2s)
	motions := make([]stroke.Motion, 0, len(r.PerMotionP90))
	for m := range r.PerMotionP90 {
		motions = append(motions, m)
	}
	sort.Slice(motions, func(i, j int) bool {
		if motions[i].Shape != motions[j].Shape {
			return motions[i].Shape < motions[j].Shape
		}
		return motions[i].Dir < motions[j].Dir
	})
	for _, m := range motions {
		fmt.Fprintf(&b, "%-8v p90=%v\n", m, r.PerMotionP90[m].Round(time.Millisecond))
	}
	return b.String()
}

// RunFig21 collects the durations of correctly recognized strokes
// across the volunteer panel.
func RunFig21(cfg Config) Fig21Result {
	cfg.fill()
	_, outcomes := runCondition(cfg, condition{users: hand.Volunteers()})
	perMotion := map[stroke.Motion][]float64{}
	var all []float64
	for _, o := range outcomes {
		for m, ds := range o.Durations {
			for _, d := range ds {
				perMotion[m] = append(perMotion[m], d.Seconds())
				all = append(all, d.Seconds())
			}
		}
	}
	cdf := dsp.NewCDF(all)
	res := Fig21Result{
		P50:          time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
		P90:          time.Duration(cdf.Quantile(0.9) * float64(time.Second)),
		P99:          time.Duration(cdf.Quantile(0.99) * float64(time.Second)),
		Within2s:     cdf.P(2.0),
		PerMotionP90: map[stroke.Motion]time.Duration{},
	}
	for m, ds := range perMotion {
		res.PerMotionP90[m] = time.Duration(dsp.NewCDF(ds).Quantile(0.9) * float64(time.Second))
	}
	return res
}

// Fig24Result reproduces Fig. 24: the latency between a finished
// motion and its recognition report. On our substrate this is pure
// compute time of the recognition pipeline (the paper's prototype
// reports <0.1 s including its C# stack).
type Fig24Result struct {
	Shapes []stroke.Shape
	// MeanResponse and MaxResponse are wall-clock pipeline latencies.
	MeanResponse, MaxResponse []time.Duration
}

// Name implements Result.
func (Fig24Result) Name() string { return "fig24" }

// String renders the per-motion latency table.
func (r Fig24Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 24 — response time per motion category\n")
	b.WriteString("motion   mean        max\n")
	for i, s := range r.Shapes {
		fmt.Fprintf(&b, "#%d %-5v %-11v %v\n", i+1, s, r.MeanResponse[i], r.MaxResponse[i])
	}
	return b.String()
}

// RunFig24 measures the wall-clock recognition latency per motion
// category over repeated captures.
func RunFig24(cfg Config) Fig24Result {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return Fig24Result{}
	}
	pipeline := core.NewPipeline(system.Grid, cal)
	seg := core.NewSegmenter()

	var res Fig24Result
	for s := stroke.Click; s <= stroke.ArcRight; s++ {
		m := stroke.M(s, stroke.Forward)
		var total, max time.Duration
		n := 0
		for k := 0; k < cfg.Trials*cfg.Groups; k++ {
			synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+int64(s)*101+int64(k))))
			script := synth.DrawOne(m)
			readings := system.RunScript(script)
			start := time.Now()
			pipeline.RecognizeStream(readings, seg, 0, script.Duration()+time.Second)
			lat := time.Since(start)
			total += lat
			if lat > max {
				max = lat
			}
			n++
		}
		res.Shapes = append(res.Shapes, s)
		res.MeanResponse = append(res.MeanResponse, total/time.Duration(n))
		res.MaxResponse = append(res.MaxResponse, max)
	}
	return res
}

// ConfusionResult reports the full 13-motion confusion matrix for the
// default deployment — the per-motion detail behind Table I's averages.
type ConfusionResult struct {
	Matrix  *metrics.Confusion
	Overall float64
}

// Name implements Result.
func (ConfusionResult) Name() string { return "confusion" }

// String renders the matrix.
func (r ConfusionResult) String() string {
	return fmt.Sprintf("Motion confusion matrix (NLOS default, overall %.3f)\n%s", r.Overall, r.Matrix)
}

// RunConfusion runs every motion under the default deployment and
// tabulates truth vs prediction.
func RunConfusion(cfg Config) ConfusionResult {
	cfg.fill()
	_, outcomes := runCondition(cfg, condition{})
	merged := NewAggregate()
	for _, o := range outcomes {
		merged.Merge(o)
	}
	return ConfusionResult{Matrix: merged.Confusion, Overall: merged.Confusion.Accuracy()}
}
