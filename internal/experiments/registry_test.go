package experiments

import (
	"sort"
	"strings"
	"testing"
	"time"
)

func TestDuplicateRegistrationPanics(t *testing.T) {
	saved := registry
	defer func() {
		registry = saved
		if r := recover(); r == nil {
			t.Fatal("registering a duplicate name should panic")
		} else if s, ok := r.(string); !ok || !strings.Contains(s, "table1") {
			t.Fatalf("panic message should name the duplicate, got %v", r)
		}
	}()
	register("table1", "shadowing duplicate", nil)
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fill()
	d := DefaultConfig()
	if c.Trials != d.Trials || c.Groups != d.Groups {
		t.Errorf("zero Config filled to Trials=%d Groups=%d, want defaults %d/%d",
			c.Trials, c.Groups, d.Trials, d.Groups)
	}
	if c.Parallelism != 1 {
		t.Errorf("zero Parallelism fills to serial (1), got %d", c.Parallelism)
	}
	if c.CalibrationTime != d.CalibrationTime {
		t.Errorf("CalibrationTime = %v, want %v", c.CalibrationTime, d.CalibrationTime)
	}

	// Negative values are treated like zero, not passed through.
	neg := Config{Trials: -3, Groups: -1, Parallelism: -2, CalibrationTime: -time.Second}
	neg.fill()
	if neg.Trials != d.Trials || neg.Groups != d.Groups || neg.Parallelism != 1 || neg.CalibrationTime != d.CalibrationTime {
		t.Errorf("negative Config filled to %+v", neg)
	}

	// Explicit settings survive fill untouched.
	set := Config{Seed: 9, Trials: 7, Groups: 5, Parallelism: 3, CalibrationTime: time.Minute}
	set.fill()
	if set != (Config{Seed: 9, Trials: 7, Groups: 5, Parallelism: 3, CalibrationTime: time.Minute}) {
		t.Errorf("non-zero Config mutated by fill: %+v", set)
	}
}

func TestListOrderingStable(t *testing.T) {
	first := List()
	if len(first) == 0 {
		t.Fatal("empty registry")
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Name < first[j].Name }) {
		t.Error("List() is not sorted by name")
	}
	second := List()
	if len(second) != len(first) {
		t.Fatalf("List() size changed between calls: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("List()[%d] unstable: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestRunDeterministicAcrossParallelism pins the property the whole
// bench suite relies on: trial seeds derive from (group, motion, trial)
// indices alone, so the rendered tables are byte-identical no matter
// how groups are scheduled across workers.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"table1", "confusion", "fig21"} {
		serial := tiny()
		serial.Parallelism = 1
		wide := tiny()
		wide.Parallelism = 4

		a, ok := Run(name, serial)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		b, _ := Run(name, wide)
		if a.String() != b.String() {
			t.Errorf("%s: Parallelism=1 and Parallelism=4 disagree:\n--- serial\n%s\n--- parallel\n%s",
				name, a, b)
		}
	}
}
