package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/geo"
	"rfipad/internal/grammar"
	"rfipad/internal/hand"
	"rfipad/internal/metrics"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
)

func init() {
	register("fig22", "Fig. 22: stroke segmentation quality and letter deduction (L,T,Z,H,E)", func(cfg Config) Result {
		return RunFig22(cfg)
	})
	register("fig23", "Fig. 23: letter recognition accuracy by stroke-count group", func(cfg Config) Result {
		return RunFig23(cfg)
	})
	register("fig25", "Fig. 25: Kinect vs RFIPad trajectory for letter Z", func(cfg Config) Result {
		return RunFig25(cfg)
	})
}

// runLetterTrial writes the letter once and scores segmentation,
// stroke recognition, and letter deduction against the ground truth,
// producing the shared LetterTrial record.
func runLetterTrial(system *sim.System, pipeline *core.Pipeline, ch rune, user hand.User, seed int64) (LetterTrial, error) {
	var out LetterTrial
	specs, err := sim.LetterSpecs(ch)
	if err != nil {
		return out, err
	}
	synth := system.Synthesizer(user, rand.New(rand.NewSource(seed)))
	script := synth.Write(specs)
	readings := system.RunScript(script)
	results := pipeline.RecognizeStream(readings, nil, 0, script.Duration()+time.Second)

	out.StrokesTotal = len(script.Segments)
	out.Seg.Strokes = len(script.Segments)

	overlap := func(a, b core.Span) time.Duration {
		lo := a.Start
		if b.Start > lo {
			lo = b.Start
		}
		hi := a.End
		if b.End < hi {
			hi = b.End
		}
		if hi <= lo {
			return 0
		}
		return hi - lo
	}

	matched := make([]bool, len(script.Segments))
	for _, r := range results {
		// Find the ground-truth stroke this detection overlaps most.
		best, bestOv := -1, time.Duration(0)
		for i, truth := range script.Segments {
			ov := overlap(r.Span, core.Span{Start: truth.Start, End: truth.End})
			if ov > bestOv {
				best, bestOv = i, ov
			}
		}
		if best < 0 {
			// No overlap with any stroke: detected inside a
			// repositioning period (insertion).
			out.Seg.Insertions++
			continue
		}
		truth := script.Segments[best]
		if !matched[best] {
			matched[best] = true
			out.Seg.Detected++
			// Underfill: the detection covers too little of the stroke.
			if float64(bestOv) < 0.7*float64(truth.End-truth.Start) {
				out.Seg.Underfills++
			}
			if r.Result.Ok && r.Result.Motion == truth.Motion {
				out.StrokesRight++
			}
		} else {
			// A second detection on the same stroke is spurious.
			out.Seg.Insertions++
		}
	}

	var obs []core.StrokeObservation
	for _, r := range results {
		if r.Result.Ok {
			obs = append(obs, core.StrokeObservation{Motion: r.Result.Motion, Box: r.Result.Box, CenterX: r.Result.CenterX, CenterY: r.Result.CenterY})
		}
	}
	got, ok := core.ComposeLetter(obs)
	out.LetterOK = ok
	out.LetterCorrect = ok && got == ch
	return out, nil
}

// Fig22Result reproduces Fig. 22.
type Fig22Result struct {
	Letters        []rune
	InsertionRate  []float64
	UnderfillRate  []float64
	StrokeAccuracy []float64
	LetterAccuracy []float64
}

// Name implements Result.
func (Fig22Result) Name() string { return "fig22" }

// String renders the per-letter segmentation table.
func (r Fig22Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 22 — stroke segmentation and letter deduction\n")
	b.WriteString("letter  insertion  underfill  stroke-acc  letter-acc\n")
	for i, ch := range r.Letters {
		fmt.Fprintf(&b, "%-7q %9.3f %10.3f %11.3f %11.3f\n",
			ch, r.InsertionRate[i], r.UnderfillRate[i], r.StrokeAccuracy[i], r.LetterAccuracy[i])
	}
	return b.String()
}

// RunFig22 evaluates the five representative letters of §V-C (2, 3,
// and 4 strokes).
func RunFig22(cfg Config) Fig22Result {
	cfg.fill()
	res := Fig22Result{Letters: []rune{'L', 'T', 'Z', 'H', 'E'}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return res
	}
	pipeline := core.NewPipeline(system.Grid, cal)

	trials := cfg.Trials * cfg.Groups
	for _, ch := range res.Letters {
		var seg metrics.SegmentationTally
		var strokesRight, strokesTotal, lettersRight int
		users := hand.Volunteers()
		for k := 0; k < trials; k++ {
			out, err := runLetterTrial(system, pipeline, ch, users[k%len(users)], cfg.Seed+int64(ch)*131+int64(k)*17)
			if err != nil {
				continue
			}
			seg.Add(out.Seg)
			strokesRight += out.StrokesRight
			strokesTotal += out.StrokesTotal
			if out.LetterCorrect {
				lettersRight++
			}
		}
		res.InsertionRate = append(res.InsertionRate, seg.InsertionRate())
		res.UnderfillRate = append(res.UnderfillRate, seg.UnderfillRate())
		res.StrokeAccuracy = append(res.StrokeAccuracy, float64(strokesRight)/float64(strokesTotal))
		res.LetterAccuracy = append(res.LetterAccuracy, float64(lettersRight)/float64(trials))
	}
	return res
}

// Fig23Result reproduces Fig. 23.
type Fig23Result struct {
	// GroupAccuracy maps stroke-count group (1–4) to its mean letter
	// accuracy; Overall is across all 26 letters.
	GroupAccuracy map[int]float64
	Overall       float64
	// PerLetter records each letter's accuracy.
	PerLetter map[rune]float64
}

// Name implements Result.
func (Fig23Result) Name() string { return "fig23" }

// String renders the group table.
func (r Fig23Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 23 — letter recognition accuracy\n")
	for g := 1; g <= 4; g++ {
		fmt.Fprintf(&b, "group #%d (%d strokes): %.3f\n", g, g, r.GroupAccuracy[g])
	}
	fmt.Fprintf(&b, "overall: %.3f\n", r.Overall)
	for _, l := range grammar.Alphabet() {
		fmt.Fprintf(&b, "%c:%.2f ", l.Char, r.PerLetter[l.Char])
		if l.Char == 'I' || l.Char == 'R' {
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// RunFig23 writes all 26 letters repeatedly and reports accuracy by
// stroke-count group.
func RunFig23(cfg Config) Fig23Result {
	cfg.fill()
	res := Fig23Result{GroupAccuracy: map[int]float64{}, PerLetter: map[rune]float64{}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return res
	}
	pipeline := core.NewPipeline(system.Grid, cal)

	trials := cfg.Trials * cfg.Groups
	groupRight := map[int]int{}
	groupTotal := map[int]int{}
	var allRight, allTotal int
	users := hand.Volunteers()
	for _, l := range grammar.Alphabet() {
		right := 0
		for k := 0; k < trials; k++ {
			out, err := runLetterTrial(system, pipeline, l.Char, users[k%len(users)], cfg.Seed+int64(l.Char)*977+int64(k)*29)
			if err != nil {
				continue
			}
			if out.LetterCorrect {
				right++
			}
		}
		res.PerLetter[l.Char] = float64(right) / float64(trials)
		groupRight[l.Group()] += right
		groupTotal[l.Group()] += trials
		allRight += right
		allTotal += trials
	}
	for g := 1; g <= 4; g++ {
		if groupTotal[g] > 0 {
			res.GroupAccuracy[g] = float64(groupRight[g]) / float64(groupTotal[g])
		}
	}
	if allTotal > 0 {
		res.Overall = float64(allRight) / float64(allTotal)
	}
	return res
}

// Fig25Result reproduces Fig. 25: the Kinect ground-truth trajectory
// versus the trajectory RFIPad recovers from RSS troughs while a user
// writes "Z".
type Fig25Result struct {
	// KinectSamples is the number of skeletal samples captured.
	KinectSamples int
	// TroughPoints is the number of (time, tag position) points
	// RFIPad recovered.
	TroughPoints int
	// MeanError is the mean 2-D distance between each recovered point
	// and the Kinect track at the same instant.
	MeanError float64
	// Deduced is the letter the pipeline composed.
	Deduced rune
	// Maps are the per-stroke gray maps (Fig. 25c).
	Maps []string
}

// Name implements Result.
func (Fig25Result) Name() string { return "fig25" }

// String renders the comparison summary.
func (r Fig25Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 25 — Kinect vs RFIPad while writing Z\n")
	fmt.Fprintf(&b, "kinect samples=%d trough points=%d mean 2-D error=%.3f m deduced=%q\n",
		r.KinectSamples, r.TroughPoints, r.MeanError, r.Deduced)
	for i, m := range r.Maps {
		fmt.Fprintf(&b, "stroke %d gray map:\n%s\n", i+1, m)
	}
	return b.String()
}

// RunFig25 writes a Z, tracks it with the simulated Kinect, and
// compares the trough-derived trajectory against the skeletal track.
func RunFig25(cfg Config) Fig25Result {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return Fig25Result{}
	}
	pipeline := core.NewPipeline(system.Grid, cal)

	specs, err := sim.LetterSpecs('Z')
	if err != nil {
		return Fig25Result{}
	}
	synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+25)))
	script := synth.Write(specs)
	readings := system.RunScript(script)

	kinect := hand.DefaultKinect()
	track := kinect.Track(script.Path, rand.New(rand.NewSource(cfg.Seed+26)))

	results := pipeline.RecognizeStream(readings, nil, 0, script.Duration()+time.Second)
	var errSum float64
	var res Fig25Result
	res.KinectSamples = track.Len()
	var obs []core.StrokeObservation
	for _, r := range results {
		if !r.Result.Ok {
			continue
		}
		obs = append(obs, core.StrokeObservation{Motion: r.Result.Motion, Box: r.Result.Box, CenterX: r.Result.CenterX, CenterY: r.Result.CenterY})
		res.Maps = append(res.Maps, r.Result.Image.String())
		for _, tr := range r.Result.Troughs {
			tag := system.Dep.Array.Tags[tr.TagIndex]
			kp, ok := track.At(tr.At)
			if !ok {
				continue
			}
			res.TroughPoints++
			errSum += geo.V2(kp.X-tag.Pos.X, kp.Y-tag.Pos.Y).Norm()
		}
	}
	if res.TroughPoints > 0 {
		res.MeanError = errSum / float64(res.TroughPoints)
	}
	if ch, ok := core.ComposeLetter(obs); ok {
		res.Deduced = ch
	}
	return res
}
