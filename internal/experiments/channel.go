package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/dsp"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
	"rfipad/internal/stroke"
)

func init() {
	register("fig02", "Fig. 2: Doppler/phase/RSS over time, static vs hand movement", func(cfg Config) Result {
		return RunFig02(cfg)
	})
	register("fig04", "Fig. 4: average static phase per tag (tag diversity)", func(cfg Config) Result {
		return RunFig04(cfg)
	})
	register("fig05", "Fig. 5: static phase standard deviation per tag (deviation bias)", func(cfg Config) Result {
		return RunFig05(cfg)
	})
	register("fig06", "Fig. 6: phase de-periodicity (before/after unwrapping)", func(cfg Config) Result {
		return RunFig06(cfg)
	})
	register("fig07", "Fig. 7: disturbance gray maps ± suppression and after Otsu", func(cfg Config) Result {
		return RunFig07(cfg)
	})
	register("fig08", "Fig. 8: symmetry classes of per-tag phase trends", func(cfg Config) Result {
		return RunFig08(cfg)
	})
}

// standardSystem builds the default deployment + pipeline used by the
// channel-level figures.
func standardSystem(cfg Config) (*sim.System, *core.Calibration, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	return system, cal, err
}

// Fig02Result reproduces Fig. 2: the static traces are nearly
// constant; the hand-movement traces vary strongly in phase and RSS
// while Doppler stays noise-dominated in both.
type Fig02Result struct {
	StaticPhaseStd, MovingPhaseStd     float64
	StaticRSSStd, MovingRSSStd         float64
	StaticDopplerStd, MovingDopplerStd float64
	Samples                            int
}

// Name implements Result.
func (Fig02Result) Name() string { return "fig02" }

// String renders the comparison.
func (r Fig02Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 2 — channel parameters, static vs hand movement (std over 20 s)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "parameter", "static", "moving")
	fmt.Fprintf(&b, "%-10s %10.4f %10.4f  (rad)\n", "phase", r.StaticPhaseStd, r.MovingPhaseStd)
	fmt.Fprintf(&b, "%-10s %10.4f %10.4f  (dB)\n", "RSS", r.StaticRSSStd, r.MovingRSSStd)
	fmt.Fprintf(&b, "%-10s %10.4f %10.4f  (Hz)\n", "Doppler", r.StaticDopplerStd, r.MovingDopplerStd)
	return b.String()
}

// RunFig02 collects 20 s static and 20 s of repeated hand passes over
// one tag and compares the channel-parameter variability.
func RunFig02(cfg Config) Fig02Result {
	cfg.fill()
	system, _, err := standardSystem(cfg)
	if err != nil {
		return Fig02Result{}
	}
	tagIdx := 12 // centre tag

	static := system.CollectStatic(20 * time.Second)

	// Repeated passes over the centre column for ~20 s.
	synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+5)))
	spec := hand.Spec{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.Unit}
	script := synth.Write([]hand.Spec{spec, spec, spec, spec})
	moving := system.RunScript(script)

	collect := func(rs []core.Reading) (phase, rss, dop []float64) {
		for _, r := range rs {
			if r.TagIndex != tagIdx {
				continue
			}
			phase = append(phase, r.Phase)
			rss = append(rss, r.RSS)
			dop = append(dop, r.Doppler)
		}
		return
	}
	sp, sr, sd := collect(static)
	mp, mr, md := collect(moving)
	return Fig02Result{
		StaticPhaseStd:   dsp.CircularStd(sp),
		MovingPhaseStd:   dsp.CircularStd(mp),
		StaticRSSStd:     dsp.Std(sr),
		MovingRSSStd:     dsp.Std(mr),
		StaticDopplerStd: dsp.Std(sd),
		MovingDopplerStd: dsp.Std(md),
		Samples:          len(sp) + len(mp),
	}
}

// Fig04Result reproduces Fig. 4: per-tag mean static phase.
type Fig04Result struct {
	MeanPhase []float64
	// Span is the spread of the means over the circle.
	Span float64
}

// Name implements Result.
func (Fig04Result) Name() string { return "fig04" }

// String renders the per-tag means.
func (r Fig04Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — average static phase per tag (rad)\n")
	for i, m := range r.MeanPhase {
		fmt.Fprintf(&b, "%6.3f", m)
		if (i+1)%5 == 0 {
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "spread over circle: %.3f rad\n", r.Span)
	return b.String()
}

// RunFig04 measures tag diversity: the static phase centre of each of
// the 25 tags, irregularly distributed over [0, 2π).
func RunFig04(cfg Config) Fig04Result {
	cfg.fill()
	system, cal, err := standardSystem(cfg)
	if err != nil {
		return Fig04Result{}
	}
	_ = system
	lo, hi := dsp.MinMax(cal.MeanPhase)
	return Fig04Result{MeanPhase: cal.MeanPhase, Span: hi - lo}
}

// Fig05Result reproduces Fig. 5: per-tag static phase standard
// deviation (the deviation bias).
type Fig05Result struct {
	Bias []float64
	// MaxOverMin quantifies how unevenly the bias is distributed.
	MaxOverMin float64
}

// Name implements Result.
func (Fig05Result) Name() string { return "fig05" }

// String renders the per-tag biases.
func (r Fig05Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — static phase standard deviation per tag (rad)\n")
	for i, m := range r.Bias {
		fmt.Fprintf(&b, "%7.4f", m)
		if (i+1)%5 == 0 {
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "max/min ratio: %.2f\n", r.MaxOverMin)
	return b.String()
}

// RunFig05 measures the deviation bias at location #4, where the
// multipath unevenness is strongest.
func RunFig05(cfg Config) Fig05Result {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{Location: scene.Location4}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return Fig05Result{}
	}
	lo, hi := dsp.MinMax(cal.Bias)
	ratio := 0.0
	if lo > 0 {
		ratio = hi / lo
	}
	return Fig05Result{Bias: cal.Bias, MaxOverMin: ratio}
}

// Fig06Result reproduces Fig. 6: phase unwrapping.
type Fig06Result struct {
	// JumpsBefore counts >π discontinuities in the raw stream;
	// JumpsAfter counts them after unwrapping (should be 0).
	JumpsBefore, JumpsAfter int
	Samples                 int
}

// Name implements Result.
func (Fig06Result) Name() string { return "fig06" }

// String renders the before/after jump counts.
func (r Fig06Result) String() string {
	return fmt.Sprintf("Fig. 6 — phase de-periodicity\nsamples=%d jumps before unwrap=%d after=%d\n",
		r.Samples, r.JumpsBefore, r.JumpsAfter)
}

// RunFig06 captures a stroke whose phase wraps and counts the
// discontinuities before and after de-periodicity.
func RunFig06(cfg Config) Fig06Result {
	cfg.fill()
	system, _, err := standardSystem(cfg)
	if err != nil {
		return Fig06Result{}
	}
	synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+6)))
	script := synth.DrawOne(stroke.M(stroke.Vertical, stroke.Forward))
	readings := system.RunScript(script)

	var phases []float64
	for _, r := range readings {
		if r.TagIndex == 12 {
			phases = append(phases, r.Phase)
		}
	}
	count := func(x []float64) int {
		jumps := 0
		for i := 1; i < len(x); i++ {
			d := x[i] - x[i-1]
			if d > 3.1416 || d < -3.1416 {
				jumps++
			}
		}
		return jumps
	}
	un := dsp.Unwrap(phases)
	return Fig06Result{
		JumpsBefore: count(phases),
		JumpsAfter:  count(un),
		Samples:     len(phases),
	}
}

// Fig07Result reproduces Fig. 7: the disturbance gray maps for a hand
// crossing the third column, without and with diversity suppression,
// and the Otsu binarization of the suppressed map.
type Fig07Result struct {
	Without, With, Binary string
	// ColumnIsolated reports whether the binarized foreground is
	// exactly the swept column.
	ColumnIsolated bool
}

// Name implements Result.
func (Fig07Result) Name() string { return "fig07" }

// String renders the three panels.
func (r Fig07Result) String() string {
	return fmt.Sprintf("Fig. 7 — motion identification gray maps (hand over column 3)\n"+
		"(a) without suppression:\n%s\n(b) with suppression:\n%s\n(c) after OTSU:\n%s\ncolumn isolated: %v\n",
		r.Without, r.With, r.Binary, r.ColumnIsolated)
}

// RunFig07 reproduces the paper's running example in a noisy
// environment (location #4, where suppression matters).
func RunFig07(cfg Config) Fig07Result {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{Location: scene.Location4}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return Fig07Result{}
	}
	// Hand down the third column (x = 0.5).
	synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+7)))
	script := synth.Write([]hand.Spec{{
		Motion: stroke.M(stroke.Vertical, stroke.Forward),
		Box:    stroke.R(0.4, 0, 0.6, 1),
	}})
	readings := system.RunScript(script)
	seg := script.Segments[0]
	var windowReadings []core.Reading
	for _, r := range readings {
		if r.Time >= seg.Start && r.Time < seg.End {
			windowReadings = append(windowReadings, r)
		}
	}

	without := core.DisturbanceMap(windowReadings, cal, core.DisturbanceOptions{Suppression: core.SuppressMeanOnly})
	with := core.DisturbanceMap(windowReadings, cal, core.DisturbanceOptions{Suppression: core.SuppressFull})
	grid := system.Grid
	imgWith := core.NewGridImage(grid, with)
	// Panel (c) is the pipeline's actual foreground: Otsu on the
	// compressed map, reduced to the dominant component.
	mask := core.LargestComponent(grid, imgWith.Binarize(), with)

	isolated := true
	for i, m := range mask {
		if m != (i%grid.Cols == 2) {
			isolated = false
			break
		}
	}
	return Fig07Result{
		Without:        core.NewGridImage(grid, without).String(),
		With:           imgWith.String(),
		Binary:         core.MaskString(grid, mask),
		ColumnIsolated: isolated,
	}
}

// Fig08Result reproduces Fig. 8: the per-tag phase trends during one
// pass fall into monotone/axial/circular symmetric classes depending
// on the tag's position relative to the trajectory.
type Fig08Result struct {
	// NetOverTV per representative tag: a monotone trend has net
	// change ≈ total variation (ratio → 1); a symmetric trend returns
	// to its start (ratio → 0).
	Tags   []int
	Ratios []float64
}

// Name implements Result.
func (Fig08Result) Name() string { return "fig08" }

// String renders the symmetry ratios.
func (r Fig08Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — phase trend symmetry (|net change| / total variation)\n")
	for i, tag := range r.Tags {
		class := "symmetric"
		if r.Ratios[i] > 0.5 {
			class = "monotone-ish"
		}
		fmt.Fprintf(&b, "tag %2d: %.3f (%s)\n", tag, r.Ratios[i], class)
	}
	return b.String()
}

// RunFig08 sweeps the hand across the plate once and reports the
// net-change/total-variation ratio for tags at distinct positions
// relative to the trajectory.
func RunFig08(cfg Config) Fig08Result {
	cfg.fill()
	system, cal, err := standardSystem(cfg)
	if err != nil {
		return Fig08Result{}
	}
	synth := system.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(cfg.Seed+8)))
	script := synth.DrawOne(stroke.M(stroke.Horizontal, stroke.Forward)) // across row 2
	readings := system.RunScript(script)
	seg := script.Segments[0]
	var win []core.Reading
	for _, r := range readings {
		if r.Time >= seg.Start && r.Time < seg.End {
			win = append(win, r)
		}
	}
	net := core.DisturbanceMap(win, cal, core.DisturbanceOptions{
		Suppression: core.SuppressMeanOnly, Accumulator: core.AccumNetChange})
	tv := core.DisturbanceMap(win, cal, core.DisturbanceOptions{
		Suppression: core.SuppressMeanOnly, Accumulator: core.AccumTotalVariation})

	// Representative tags: on the swept row (start, middle, end) and
	// off-row.
	tags := []int{10, 12, 14, 2, 22}
	res := Fig08Result{Tags: tags}
	for _, i := range tags {
		ratio := 0.0
		if tv[i] > 0 {
			ratio = net[i] / tv[i]
		}
		res.Ratios = append(res.Ratios, ratio)
	}
	return res
}
