package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny returns the smallest statistically-meaningful configuration so
// the suite stays fast; shape assertions use generous margins.
func tiny() Config {
	return Config{
		Seed:            1,
		Trials:          2,
		Groups:          2,
		Parallelism:     8,
		CalibrationTime: 3 * time.Second,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig11", "fig12", "geometry",
		"table1", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"fig22", "fig23", "fig24", "fig25",
		"ablation-accumulator", "ablation-suppression", "ablation-segmentation",
		"ablation-wholeletter", "ablation-fastmac", "ablation-hopping",
		"confusion",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e.Name] = true
		if e.Description == "" {
			t.Errorf("%s has no description", e.Name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(have), len(want))
	}
	if _, ok := Run("nope", tiny()); ok {
		t.Error("unknown experiment should not run")
	}
}

func TestTable1NLOSBeatsLOS(t *testing.T) {
	res := RunTable1(tiny())
	if len(res.LOS) != 2 || len(res.NLOS) != 2 {
		t.Fatalf("groups: LOS %d NLOS %d", len(res.LOS), len(res.NLOS))
	}
	if mean(res.NLOS) <= mean(res.LOS) {
		t.Errorf("NLOS %.3f should beat LOS %.3f (Table I)", mean(res.NLOS), mean(res.LOS))
	}
	if mean(res.NLOS) < 0.85 {
		t.Errorf("NLOS accuracy %.3f below the paper's band", mean(res.NLOS))
	}
	if s := res.String(); !strings.Contains(s, "NLOS") {
		t.Error("table text missing NLOS row")
	}
}

func TestFig16SuppressionHelpsAtLocation4(t *testing.T) {
	res := RunFig16(tiny())
	if len(res.With) != 4 || len(res.Without) != 4 {
		t.Fatalf("locations = %d/%d", len(res.With), len(res.Without))
	}
	// Location #4 (index 3) shows the decisive gap.
	if res.With[3] <= res.Without[3] {
		t.Errorf("suppression should help at location 4: with %.3f vs without %.3f",
			res.With[3], res.Without[3])
	}
	if res.With[3]-res.Without[3] < 0.05 {
		t.Errorf("location-4 gap %.3f too small to be the Fig. 16 effect",
			res.With[3]-res.Without[3])
	}
}

func TestFig17ErrorsFallWithPower(t *testing.T) {
	res := RunFig17(tiny())
	if len(res.PowersDBm) != 5 {
		t.Fatalf("powers = %d", len(res.PowersDBm))
	}
	lowErr := res.FPR[0] + res.FNR[0]
	highErr := res.FPR[len(res.FPR)-1] + res.FNR[len(res.FNR)-1]
	if lowErr < highErr {
		t.Errorf("error at 15 dBm (%.3f) should exceed error at 32.5 dBm (%.3f)", lowErr, highErr)
	}
}

func TestFig20FastUsersDegrade(t *testing.T) {
	res := RunFig20(tiny())
	if len(res.Users) != 10 {
		t.Fatalf("users = %d", len(res.Users))
	}
	var slow, fast float64
	var nSlow, nFast int
	for i, acc := range res.Accuracies {
		if i == 5 || i == 8 { // users #6 and #9
			fast += acc
			nFast++
		} else {
			slow += acc
			nSlow++
		}
	}
	if fast/float64(nFast) > slow/float64(nSlow) {
		t.Errorf("fast writers (%.3f) should not beat the panel (%.3f)",
			fast/float64(nFast), slow/float64(nSlow))
	}
}

func TestFig21StrokeTimes(t *testing.T) {
	res := RunFig21(tiny())
	if res.P50 <= 0 || res.P90 < res.P50 {
		t.Fatalf("quantiles: p50 %v p90 %v", res.P50, res.P90)
	}
	// The arcs are the slowest motions (§V-B7: "⊂ takes a longer time
	// than others").
	arcP90 := res.PerMotionP90[mArcFwd()]
	clickP90 := res.PerMotionP90[mClick()]
	if arcP90 <= clickP90 {
		t.Errorf("⊂ p90 %v should exceed click p90 %v", arcP90, clickP90)
	}
}

func TestFig22And23Letters(t *testing.T) {
	res22 := RunFig22(tiny())
	if len(res22.Letters) != 5 {
		t.Fatalf("letters = %d", len(res22.Letters))
	}
	for i, ch := range res22.Letters {
		if res22.LetterAccuracy[i] < 0.5 {
			t.Errorf("letter %q accuracy %.2f implausibly low", ch, res22.LetterAccuracy[i])
		}
		if res22.UnderfillRate[i] > 0.3 {
			t.Errorf("letter %q underfill %.2f too high", ch, res22.UnderfillRate[i])
		}
	}

	res23 := RunFig23(tiny())
	if res23.Overall < 0.8 {
		t.Errorf("overall letter accuracy %.3f below the paper's band (~0.91)", res23.Overall)
	}
	if len(res23.PerLetter) != 26 {
		t.Errorf("per-letter entries = %d", len(res23.PerLetter))
	}
}

func TestChannelFigures(t *testing.T) {
	cfg := tiny()
	f2 := RunFig02(cfg)
	if f2.MovingPhaseStd <= 3*f2.StaticPhaseStd {
		t.Errorf("hand movement should dominate phase std: %v vs %v",
			f2.MovingPhaseStd, f2.StaticPhaseStd)
	}
	if f2.MovingRSSStd <= 3*f2.StaticRSSStd {
		t.Errorf("hand movement should dominate RSS std: %v vs %v",
			f2.MovingRSSStd, f2.StaticRSSStd)
	}
	// Doppler stays noise-dominated (same order in both cases).
	if f2.MovingDopplerStd > 10*f2.StaticDopplerStd {
		t.Errorf("Doppler should stay noise-like: %v vs %v",
			f2.MovingDopplerStd, f2.StaticDopplerStd)
	}

	f4 := RunFig04(cfg)
	if len(f4.MeanPhase) != 25 || f4.Span < 3 {
		t.Errorf("tag diversity span = %.2f over %d tags", f4.Span, len(f4.MeanPhase))
	}

	f5 := RunFig05(cfg)
	if f5.MaxOverMin < 3 {
		t.Errorf("deviation bias unevenness %.2f too small for location 4", f5.MaxOverMin)
	}

	f6 := RunFig06(cfg)
	if f6.JumpsAfter != 0 {
		t.Errorf("unwrap left %d jumps", f6.JumpsAfter)
	}

	f7 := RunFig07(cfg)
	if !strings.Contains(f7.Binary, "#") {
		t.Error("Fig. 7 binary image empty")
	}

	f8 := RunFig08(cfg)
	if len(f8.Ratios) != 5 {
		t.Fatalf("fig8 tags = %d", len(f8.Ratios))
	}
}

func TestInterferenceFigures(t *testing.T) {
	cfg := tiny()
	f11 := RunFig11(cfg)
	// Same-facing at 3 cm is the worst case; 15 cm is near baseline.
	if f11.SameFacing[0] >= f11.BaselineDBm-5 {
		t.Errorf("3 cm same-facing RSS %.1f should sit well below baseline %.1f",
			f11.SameFacing[0], f11.BaselineDBm)
	}
	if f11.OppositeFacing[0] <= f11.SameFacing[0] {
		t.Error("opposite facing should outperform same facing")
	}
	last := len(f11.SpacingsCM) - 1
	if f11.SameFacing[last] < f11.BaselineDBm-1.5 {
		t.Errorf("15 cm RSS %.1f should be near baseline %.1f", f11.SameFacing[last], f11.BaselineDBm)
	}

	f12 := RunFig12(cfg)
	// TagD shadows most, TagB least (§IV-B2).
	lastCfg := len(f12.RSS[0]) - 1
	tagB, tagD := f12.RSS[1][lastCfg], f12.RSS[3][lastCfg]
	if f12.BaselineDBm-tagB > 5 {
		t.Errorf("TagB 5×3 loss %.1f dB should be small", f12.BaselineDBm-tagB)
	}
	if f12.BaselineDBm-tagD < 15 {
		t.Errorf("TagD 5×3 loss %.1f dB should be ≈20", f12.BaselineDBm-tagD)
	}

	g := RunGeometry(cfg)
	if g.PlaneLengthM < 0.45 || g.PlaneLengthM > 0.47 {
		t.Errorf("plane length = %v, want ≈0.46", g.PlaneLengthM)
	}
	if g.MinDistanceM < 0.2 || g.MinDistanceM > 0.35 {
		t.Errorf("min distance = %v", g.MinDistanceM)
	}
}

func TestAblations(t *testing.T) {
	cfg := tiny()
	acc := RunAblationAccumulator(cfg)
	if acc.Accuracies[0] <= acc.Accuracies[1]+0.3 {
		t.Errorf("total variation (%.3f) should crush the telescoped sum (%.3f)",
			acc.Accuracies[0], acc.Accuracies[1])
	}
	sup := RunAblationSuppression(cfg)
	if len(sup.Labels) != 4 {
		t.Fatalf("suppression variants = %d", len(sup.Labels))
	}
	// The shipped subtractive form beats no suppression at location 4.
	if sup.Accuracies[3] <= sup.Accuracies[0] {
		t.Errorf("noise-rate subtraction (%.3f) should beat none (%.3f)",
			sup.Accuracies[3], sup.Accuracies[0])
	}
	fastmac := RunAblationFastMAC(cfg)
	if fastmac.Accuracies[1] <= fastmac.Accuracies[0] {
		t.Errorf("short-packet MAC (%.3f) should beat the default (%.3f) for a fast writer",
			fastmac.Accuracies[1], fastmac.Accuracies[0])
	}
	segr := RunAblationSegmentation(cfg)
	// The paper's 100ms×5 setting performs at or near the best.
	best := 0.0
	for _, a := range segr.Accuracies {
		if a > best {
			best = a
		}
	}
	if segr.Accuracies[2] < best-0.25 {
		t.Errorf("paper setting %.3f far from best %.3f", segr.Accuracies[2], best)
	}
}

func TestResultStringsNonEmpty(t *testing.T) {
	cfg := tiny()
	cfg.Trials, cfg.Groups = 1, 1
	for _, e := range []string{"fig24", "fig25", "fig18", "fig19"} {
		res, ok := Run(e, cfg)
		if !ok {
			t.Fatalf("missing %s", e)
		}
		if res.Name() != e {
			t.Errorf("%s Name() = %q", e, res.Name())
		}
		if len(res.String()) < 20 {
			t.Errorf("%s String too short: %q", e, res.String())
		}
	}
}
