// Package experiments regenerates every table and figure of the
// paper's evaluation (§V) plus the ablations listed in DESIGN.md §5.
// Each experiment is a function from a Config to a result value whose
// String method prints the same rows/series the paper reports;
// bench_test.go and cmd/rfipad-bench both drive this package.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/epc"
	"rfipad/internal/hand"
	"rfipad/internal/metrics"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
	"rfipad/internal/stroke"
)

// Config scales the experiment suite.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Trials is the number of repetitions of each motion per condition
	// and group. The paper uses 20–30; the default bench setting is
	// smaller so the whole suite stays minutes, not hours.
	Trials int
	// Groups is the number of independent deployments (fresh tag
	// manufacturing diversity) per condition — Table I runs 3.
	Groups int
	// Parallelism bounds concurrent groups (each group owns its
	// System, so groups are safely parallel). 0 means serial.
	Parallelism int
	// CalibrationTime is the static capture length for diversity
	// suppression (the paper interrogates each tag ~100 times).
	CalibrationTime time.Duration
}

// DefaultConfig returns the quick configuration used by `go test
// -bench`; cmd/rfipad-bench -full selects PaperConfig.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Trials:          4,
		Groups:          2,
		Parallelism:     4,
		CalibrationTime: 3 * time.Second,
	}
}

// PaperConfig mirrors the paper's sample sizes (§V-B1: 20 repetitions,
// 3 groups).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Trials = 20
	c.Groups = 3
	return c
}

// fill applies defaults to zero fields.
func (c *Config) fill() {
	d := DefaultConfig()
	if c.Trials <= 0 {
		c.Trials = d.Trials
	}
	if c.Groups <= 0 {
		c.Groups = d.Groups
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.CalibrationTime <= 0 {
		c.CalibrationTime = d.CalibrationTime
	}
}

// condition describes one experimental cell.
type condition struct {
	scene scene.Config
	// users performing the trials; defaults to the default user.
	users []hand.User
	// suppression selects the pipeline arm (default SuppressFull).
	suppression core.Suppression
	// motions to perform; defaults to stroke.All().
	motions []stroke.Motion
	// accumulator overrides the Eq. 10 reading (ablation).
	accumulator core.Accumulator
	// segmenter overrides the stroke segmenter (ablation); nil uses
	// the default.
	segmenter *core.Segmenter
	// mac overrides the EPC MAC timing (ablation); nil uses the
	// default.
	mac *epc.Config
}

// runGroup executes Trials repetitions of every motion on one fresh
// deployment and folds them into one Aggregate.
func runGroup(cfg Config, cond condition, group int) *Aggregate {
	out := NewAggregate()
	seed := cfg.Seed + int64(group)*1_000_003
	rng := rand.New(rand.NewSource(seed))
	dep := scene.New(cond.scene, rng)
	var opts []sim.Option
	if cond.mac != nil {
		opts = append(opts, sim.WithMACConfig(*cond.mac))
	}
	system := sim.New(dep, rng, opts...)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		// A deployment that cannot calibrate counts every trial as
		// missed; this cannot happen with sane configurations.
		out.MissedAll(len(cond.motions) * cfg.Trials)
		return out
	}
	if cond.suppression == core.SuppressNone {
		uc := core.UniformCalibration(cal.NumTags())
		uc.MeanPhase = cal.MeanPhase
		cal = uc
	}
	pipeline := core.NewPipeline(system.Grid, cal)
	if cond.suppression != 0 {
		pipeline.Opts.Suppression = cond.suppression
	}
	if cond.accumulator != 0 {
		pipeline.Opts.Accumulator = cond.accumulator
	}

	motions := cond.motions
	if len(motions) == 0 {
		motions = stroke.All()
	}
	users := cond.users
	if len(users) == 0 {
		users = []hand.User{hand.DefaultUser()}
	}

	for mi, m := range motions {
		for k := 0; k < cfg.Trials; k++ {
			user := users[k%len(users)]
			trialSeed := seed + int64(mi)*7919 + int64(k)*104_729 + 13
			synth := system.Synthesizer(user, rand.New(rand.NewSource(trialSeed)))
			script := synth.DrawOne(m)
			readings := system.RunScript(script)
			results := pipeline.RecognizeStream(readings, cond.segmenter, 0, script.Duration()+time.Second)

			trial := Trial{Motion: m}
			if len(results) > 0 && results[0].Result.Ok {
				trial.Detected = true
				trial.Predicted = results[0].Result.Motion
				trial.Spurious = len(results) - 1
				trial.Duration = script.Segments[0].End - script.Segments[0].Start
			}
			out.Observe(trial)
		}
	}
	return out
}

// runCondition fans groups out over the configured parallelism and
// merges their outcomes.
func runCondition(cfg Config, cond condition) (metrics.MotionTally, []*Aggregate) {
	outcomes := make([]*Aggregate, cfg.Groups)
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Groups; g++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(g int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[g] = runGroup(cfg, cond, g)
		}(g)
	}
	wg.Wait()
	var total metrics.MotionTally
	for _, o := range outcomes {
		total.Add(o.Tally)
	}
	return total, outcomes
}

// Result is the common face of every experiment output.
type Result interface {
	// Name returns the experiment identifier (e.g. "table1").
	Name() string
	// String renders the paper-style table or series.
	fmt.Stringer
}

// runner is a registered experiment.
type runner struct {
	name string
	desc string
	run  func(Config) Result
}

var registry []runner

// register adds an experiment at init time. Duplicate names panic:
// a silently shadowed experiment would make `-run` ambiguous and the
// registry test meaningless, and the collision is always a programming
// error caught on the first test run.
func register(name, desc string, run func(Config) Result) {
	for _, r := range registry {
		if r.name == name {
			panic(fmt.Sprintf("experiments: duplicate registration of %q", name))
		}
	}
	registry = append(registry, runner{name: name, desc: desc, run: run})
}

// Experiment describes one registered experiment.
type Experiment struct {
	Name        string
	Description string
}

// List returns every registered experiment sorted by name.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, r := range registry {
		out = append(out, Experiment{Name: r.name, Description: r.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes the named experiment; ok is false for unknown names.
func Run(name string, cfg Config) (Result, bool) {
	for _, r := range registry {
		if r.name == name {
			return r.run(cfg), true
		}
	}
	return nil, false
}

// RunAll executes every experiment in name order.
func RunAll(cfg Config) []Result {
	names := List()
	out := make([]Result, 0, len(names))
	for _, e := range names {
		if r, ok := Run(e.Name, cfg); ok {
			out = append(out, r)
		}
	}
	return out
}
