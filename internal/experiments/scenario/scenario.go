// Package scenario is the declarative experiment-matrix harness: a
// Config names up to five axes (users × hand speeds × fault profiles ×
// grid degradation × engine load), expands into a trial matrix, and
// runs every trial through the real streaming stack — synthesized
// capture → llrp server → fault-injected link → reconnecting session →
// sharded engine — rather than calling the simulator directly. Each
// cell aggregates into a typed ScenarioResult (accuracy, latency,
// recovery rate, drop rate) with a per-trial telemetry snapshot, so
// every accuracy number ships with the counters that explain it and a
// regression shows up cell-by-cell in `rfipad-bench -diff`.
package scenario

import (
	"fmt"
	"time"

	"rfipad/internal/faultnet"
	"rfipad/internal/hand"
)

// FaultProfile names one link-fault regime applied between the reader
// daemon and the session. Seed and Observer of Net are overridden per
// trial so every cell gets a reproducible, per-trial fault schedule.
type FaultProfile struct {
	Name string
	Net  faultnet.Config
}

// NoFault is a transparent link.
func NoFault() FaultProfile { return FaultProfile{Name: "none"} }

// FlakyLink force-drops every connection after 32 KiB and fragments
// and duplicates frames — the end-to-end chaos regime of the live
// tests, where recognition only succeeds if resume and duplicate
// tolerance work.
func FlakyLink() FaultProfile {
	return FaultProfile{Name: "flaky", Net: faultnet.Config{
		DropAfterBytes: 32 * 1024,
		DupFrameProb:   0.03,
		PartialWrites:  true,
	}}
}

// NoisyLink keeps connections up but jitters, duplicates, and reorders
// frames — the degraded-but-connected regime.
func NoisyLink() FaultProfile {
	return FaultProfile{Name: "noisy", Net: faultnet.Config{
		Latency:          200 * time.Microsecond,
		LatencyJitter:    200 * time.Microsecond,
		DupFrameProb:     0.05,
		ReorderFrameProb: 0.02,
		PartialWrites:    true,
	}}
}

// GridDegradation silences tags and thins reads before the capture is
// served — the sparse-read regime of a damaged or occluded tag array.
// DeadTags removes every reading of that many (per-trial random) tags;
// DropRate discards each remaining reading with that probability.
type GridDegradation struct {
	Name     string
	DeadTags int
	DropRate float64
}

// FullGrid is the undamaged array.
func FullGrid() GridDegradation { return GridDegradation{Name: "full"} }

// Degraded silences dead tags and drops the given fraction of the
// remaining reads. Calibration interpolates dead cells only while the
// dead fraction stays under its tolerance (¼ of the array), so keep
// dead ≤ 6 on the default 5×5 grid.
func Degraded(dead int, drop float64) GridDegradation {
	return GridDegradation{
		Name:     fmt.Sprintf("dead%d-drop%d", dead, int(drop*100+0.5)),
		DeadTags: dead,
		DropRate: drop,
	}
}

// Config declares one scenario matrix. Every axis is optional: a nil
// axis collapses to its single neutral element, so the zero Config is
// one pristine cell.
type Config struct {
	// Name labels the matrix in reports ("smoke", "full", ...).
	Name string
	// Word is the air-written text every trial recognizes (default "HI").
	Word string
	// Trials is the number of repetitions per cell (default 2).
	Trials int
	// Seed drives every random process; equal seeds reproduce the
	// whole matrix exactly (default 1).
	Seed int64
	// Parallelism bounds concurrently running trials; each trial owns
	// its server, session, engine, and metrics registry, so trials are
	// safely parallel (default 2).
	Parallelism int
	// CalibDuration is the static-prelude length synthesized and
	// expected by calibration (default 3 s of stream time).
	CalibDuration time.Duration
	// ReplaySpeed is the capture replay factor relative to real time
	// (default 40).
	ReplaySpeed float64
	// EngineWorkers is the per-trial engine shard count (default 2).
	EngineWorkers int
	// AccuracyFloor marks a trial anomalous (and flight-dumps it) when
	// its letter accuracy falls below the floor (default 0.5).
	AccuracyFloor float64
	// FlightDir, when non-empty, opens a flight recorder there:
	// anomalous trials (accuracy below floor, panic, breaker open)
	// leave dumps in flight.jsonl for post-mortem.
	FlightDir string

	// Users is the volunteer axis (default: the median volunteer).
	Users []hand.User
	// HandSpeeds is the speed-multiplier axis applied to each user's
	// stroke speed (default: 1.0).
	HandSpeeds []float64
	// Faults is the link-fault axis (default: NoFault).
	Faults []FaultProfile
	// Grids is the tag-array degradation axis (default: FullGrid).
	Grids []GridDegradation
	// EngineLoads is the background-stream axis: each trial's engine
	// additionally drains this many paced background streams (default: 0).
	EngineLoads []int
}

func (c Config) withDefaults() Config {
	if c.Word == "" {
		c.Word = "HI"
	}
	if c.Trials <= 0 {
		c.Trials = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.CalibDuration <= 0 {
		c.CalibDuration = 3 * time.Second
	}
	if c.ReplaySpeed <= 0 {
		c.ReplaySpeed = 40
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 2
	}
	if c.AccuracyFloor <= 0 {
		c.AccuracyFloor = 0.5
	}
	if len(c.Users) == 0 {
		c.Users = []hand.User{hand.DefaultUser()}
	}
	if len(c.HandSpeeds) == 0 {
		c.HandSpeeds = []float64{1}
	}
	if len(c.Faults) == 0 {
		c.Faults = []FaultProfile{NoFault()}
	}
	if len(c.Grids) == 0 {
		c.Grids = []GridDegradation{FullGrid()}
	}
	if len(c.EngineLoads) == 0 {
		c.EngineLoads = []int{0}
	}
	return c
}

// Cell is one matrix cell's axis labels.
type Cell struct {
	User       string  `json:"user"`
	HandSpeed  float64 `json:"hand_speed"`
	Fault      string  `json:"fault"`
	Grid       string  `json:"grid"`
	EngineLoad int     `json:"engine_load"`
}

// Key is the cell's stable identifier — the join key `-diff` compares
// reports on.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/x%.2f/%s/%s/load%d",
		c.User, c.HandSpeed, c.Fault, c.Grid, c.EngineLoad)
}

// Matrix expands the config into its cells in deterministic nested
// axis order (users, speeds, faults, grids, loads).
func (c Config) Matrix() []Cell {
	c = c.withDefaults()
	var out []Cell
	for _, u := range c.Users {
		for _, sp := range c.HandSpeeds {
			for _, f := range c.Faults {
				for _, g := range c.Grids {
					for _, l := range c.EngineLoads {
						out = append(out, Cell{
							User: u.Name, HandSpeed: sp, Fault: f.Name,
							Grid: g.Name, EngineLoad: l,
						})
					}
				}
			}
		}
	}
	return out
}

// Smoke is the CI matrix: 3 axes (hand speed × fault × grid), 8 cells,
// 2 trials each — small enough for every push, wide enough that an
// accuracy regression under chaos or a degraded grid is caught.
func Smoke() Config {
	return Config{
		Name:        "smoke",
		Word:        "HI",
		Trials:      2,
		Parallelism: 4,
		HandSpeeds:  []float64{1, 1.6},
		Faults:      []FaultProfile{NoFault(), FlakyLink()},
		Grids:       []GridDegradation{FullGrid(), Degraded(3, 0.2)},
	}
}

// Full is the nightly matrix: every axis populated, including the
// paper's fast volunteer and background engine load.
func Full() Config {
	vols := hand.Volunteers()
	return Config{
		Name:        "full",
		Word:        "HELLO",
		Trials:      3,
		Parallelism: 4,
		Users:       []hand.User{hand.DefaultUser(), vols[5]},
		HandSpeeds:  []float64{0.7, 1, 1.6},
		Faults:      []FaultProfile{NoFault(), FlakyLink(), NoisyLink()},
		Grids:       []GridDegradation{FullGrid(), Degraded(3, 0), Degraded(5, 0.3)},
		EngineLoads: []int{0, 4},
	}
}

// Presets returns the named matrices rfipad-bench can run.
func Presets() []Config { return []Config{Smoke(), Full()} }

// Preset looks a matrix up by name.
func Preset(name string) (Config, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Config{}, false
}
