package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"rfipad/internal/engine"
	"rfipad/internal/faultnet"
	"rfipad/internal/hand"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/replay"
	"rfipad/internal/tagmodel"
)

// TrialResult is one trial's typed outcome plus the telemetry that
// explains it.
type TrialResult struct {
	Trial int    `json:"trial"`
	Seed  int64  `json:"seed"`
	Want  string `json:"want"`
	Got   string `json:"got"`
	// Accuracy is the letter accuracy: 1 − edit distance ÷ len(Want).
	Accuracy float64 `json:"accuracy"`
	Exact    bool    `json:"exact"`
	Strokes  int     `json:"strokes"`
	// Calibrated reports whether the stream's static prelude completed
	// despite the degraded grid and faulted link.
	Calibrated bool `json:"calibrated"`
	DeadTags   int  `json:"dead_tags"`
	Reconnects int  `json:"reconnects"`
	// ReadingsServed is the capture size actually put on the wire.
	ReadingsServed int `json:"readings_served"`
	// ReadingsDegraded is how many readings the grid degradation
	// removed before serving.
	ReadingsDegraded int `json:"readings_degraded"`
	// ReadingsIngested is how many readings the trial stream's
	// recognizer accepted.
	ReadingsIngested int     `json:"readings_ingested"`
	LatencyP50Ms     float64 `json:"latency_p50_ms"`
	LatencyP95Ms     float64 `json:"latency_p95_ms"`
	// Anomaly classifies an anomalous trial ("accuracy_floor",
	// "panic", "stream_error"; empty for a healthy one).
	Anomaly string `json:"anomaly,omitempty"`
	Err     string `json:"err,omitempty"`
	// Obs is the trial's curated telemetry snapshot: the llrp_session,
	// engine, recognizer, and faultnet counters behind the headline
	// numbers.
	Obs map[string]float64 `json:"obs,omitempty"`
}

// ScenarioResult aggregates one cell.
type ScenarioResult struct {
	Cell
	Key    string `json:"key"`
	Trials int    `json:"trials"`
	// Accuracy is the mean letter accuracy across trials.
	Accuracy float64 `json:"accuracy"`
	// ExactRate is the fraction of trials recognizing the word exactly.
	ExactRate float64 `json:"exact_rate"`
	// RecoveryRate is the fraction of trials that calibrated and
	// finished without a terminal error — the stack's survival rate
	// under this cell's fault regime.
	RecoveryRate float64 `json:"recovery_rate"`
	// DropRate is the mean fraction of synthesized readings that never
	// reached the recognizer (degradation, link loss, rejection).
	DropRate       float64       `json:"drop_rate"`
	MeanReconnects float64       `json:"mean_reconnects"`
	MeanDeadTags   float64       `json:"mean_dead_tags"`
	LatencyP50Ms   float64       `json:"latency_p50_ms"`
	LatencyP95Ms   float64       `json:"latency_p95_ms"`
	Anomalies      int           `json:"anomalies"`
	TrialResults   []TrialResult `json:"trial_results"`
}

// Run expands the matrix and runs every trial through the real
// pipeline, Parallelism trials at a time. The returned results are in
// matrix order regardless of scheduling, and equal seeds yield equal
// accuracy fields at any parallelism.
func Run(cfg Config) ([]ScenarioResult, error) {
	cfg = cfg.withDefaults()
	var fl *trace.Flight
	if cfg.FlightDir != "" {
		var err error
		fl, err = trace.OpenFlight(cfg.FlightDir, obs.NewRegistry(), 0)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	cells := cfg.Matrix()
	// Users/Faults/Grids are indexed by position within the expanded
	// matrix; recover each cell's axis values from its index.
	nSpeeds, nFaults := len(cfg.HandSpeeds), len(cfg.Faults)
	nGrids, nLoads := len(cfg.Grids), len(cfg.EngineLoads)
	axes := func(i int) (hand.User, FaultProfile, GridDegradation) {
		rest := i / nLoads
		g := cfg.Grids[rest%nGrids]
		rest /= nGrids
		f := cfg.Faults[rest%nFaults]
		rest /= nFaults
		rest /= nSpeeds // the speed multiplier itself lives in the Cell
		return cfg.Users[rest], f, g
	}

	out := make([]ScenarioResult, len(cells))
	for i, c := range cells {
		out[i] = ScenarioResult{Cell: c, Key: c.Key(), Trials: cfg.Trials,
			TrialResults: make([]TrialResult, cfg.Trials)}
	}

	type job struct{ cell, trial int }
	jobs := make([]job, 0, len(cells)*cfg.Trials)
	for i := range cells {
		for k := 0; k < cfg.Trials; k++ {
			jobs = append(jobs, job{i, k})
		}
	}
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			user, fault, grid := axes(j.cell)
			tr, err := runTrial(cfg, cells[j.cell], j.cell, j.trial, user, fault, grid, fl)
			if err != nil {
				errs <- err
				return
			}
			out[j.cell].TrialResults[j.trial] = tr
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	for i := range out {
		aggregate(&out[i])
	}
	return out, nil
}

// trialSeed derives a trial's seed from the matrix position alone, so
// results are independent of scheduling order.
func trialSeed(base int64, cell, trial int) int64 {
	return base + int64(cell)*1_000_003 + int64(trial)*104_729 + 17
}

// runTrial runs one trial: synthesize the capture with the cell's
// writer, degrade the grid, serve it through a fault-injected link,
// and drain it through a session into a fresh engine alongside the
// cell's background load.
func runTrial(cfg Config, cell Cell, cellIdx, trial int, user hand.User,
	fault FaultProfile, grid GridDegradation, fl *trace.Flight) (TrialResult, error) {
	seed := trialSeed(cfg.Seed, cellIdx, trial)
	res := TrialResult{Trial: trial, Seed: seed, Want: cfg.Word}
	trialID := fmt.Sprintf("%s#%d", cell.Key(), trial)

	writer := user
	writer.Speed *= cell.HandSpeed
	capture, err := replay.SynthesizeUser(seed, cfg.Word, cfg.CalibDuration, writer)
	if err != nil {
		return res, fmt.Errorf("scenario %s: synthesize: %w", trialID, err)
	}
	served := degrade(capture, grid, rand.New(rand.NewSource(seed*31+7)))
	res.ReadingsServed = len(served)
	res.ReadingsDegraded = len(capture) - len(served)

	reg := obs.NewRegistry()
	faultInjected := func(kind string) {
		reg.Counter("faultnet_injected_total",
			"Faults injected into the scenario link, by kind.",
			obs.L("kind", kind)).Inc()
	}

	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(served, replay.Options{Speed: cfg.ReplaySpeed, Obs: reg})
	})
	srv.IdleTimeout = 2 * time.Second
	srv.WriteTimeout = 2 * time.Second
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, fmt.Errorf("scenario %s: listen: %w", trialID, err)
	}
	link := fault.Net
	link.Seed = seed
	link.Observer = faultInjected
	link.FrameHeaderLen = llrp.HeaderLen
	link.FrameSize = llrp.FrameSize
	go srv.Serve(faultnet.Listen(inner, link))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sess, err := llrp.DialSession(ctx, llrp.SessionConfig{
		Addr:              inner.Addr().String(),
		BackoffInitial:    5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		JitterSeed:        seed,
		KeepaliveInterval: 50 * time.Millisecond,
		IdleTimeout:       time.Second,
		WriteTimeout:      time.Second,
		// The breaker stays closed under the scenario profiles (every
		// reconnect succeeds); arming it wires flapping-reader dumps
		// into the same flight log as the accuracy anomalies.
		BreakerThreshold: 10,
		BreakerCooldown:  250 * time.Millisecond,
		Obs:              reg,
		Flight:           fl,
		FlightStream:     trialID,
	})
	if err != nil {
		return res, fmt.Errorf("scenario %s: dial: %w", trialID, err)
	}
	defer sess.Close()

	eng := engine.New(engine.Config{
		Workers: cfg.EngineWorkers,
		Stream:  live.Config{CalibDuration: cfg.CalibDuration},
		Obs:     reg,
		Flight:  fl,
	})
	var bg sync.WaitGroup
	for j := 0; j < cell.EngineLoad; j++ {
		bg.Add(1)
		go func(j int) {
			defer bg.Done()
			src := replay.NewSource(capture, replay.Options{Speed: cfg.ReplaySpeed, Obs: reg})
			// Background streams share the trial's undegraded capture;
			// their errors do not fail the trial, they only load the
			// shards the trial stream competes with.
			_ = eng.RunStream(engine.StreamID(fmt.Sprintf("bg-%02d", j)), pacedSource{src})
		}(j)
	}
	streamErr := eng.RunStream("trial", sess)
	bg.Wait()
	results := eng.Close()

	var sr engine.StreamResult
	for _, r := range results {
		if r.ID == "trial" {
			sr = r
		}
	}
	res.Got = sr.Letters
	res.Strokes = sr.Strokes
	res.Calibrated = sr.Calibrated
	res.DeadTags = sr.DeadTags
	res.ReadingsIngested = sr.Readings
	res.Reconnects = sess.Stats().Reconnects
	res.Accuracy = letterAccuracy(cfg.Word, sr.Letters)
	res.Exact = sr.Letters == cfg.Word
	if streamErr != nil {
		res.Err = streamErr.Error()
	} else if sr.Err != nil {
		res.Err = sr.Err.Error()
	}

	snap := reg.Snapshot()
	if p, ok := snap.Get("engine_event_latency_seconds", obs.L("stream", "trial")); ok && p.Count > 0 {
		res.LatencyP50Ms = p.Quantile(0.50) * 1e3
		res.LatencyP95Ms = p.Quantile(0.95) * 1e3
	}
	res.Obs = telemetry(snap)

	switch {
	case snap.Value("engine_stream_panics_total") > 0:
		res.Anomaly = "panic"
	case res.Err != "":
		res.Anomaly = "stream_error"
	case res.Accuracy < cfg.AccuracyFloor:
		res.Anomaly = "accuracy_floor"
	}
	if res.Anomaly != "" {
		fl.Record(trace.Dump{
			Trigger: "scenario_" + res.Anomaly,
			Stream:  trialID,
			Detail: fmt.Sprintf("accuracy %.2f (floor %.2f), got %q want %q, err %q",
				res.Accuracy, cfg.AccuracyFloor, res.Got, res.Want, res.Err),
		})
	}
	return res, nil
}

// pacedSource adapts a paced replay.Source to the engine's
// live.ReportSource.
type pacedSource struct{ src *replay.Source }

func (p pacedSource) NextReports() ([]llrp.TagReport, error) {
	batch, ok := p.src.Next()
	if !ok {
		return nil, llrp.ErrStreamEnded
	}
	return batch, nil
}

func (p pacedSource) Stats() llrp.SessionStats { return llrp.SessionStats{} }

// degrade applies a grid degradation to a capture: all readings of
// DeadTags randomly chosen tags are removed, then each remaining
// reading is dropped with DropRate. Tag choice and drops draw only
// from rng, so a trial's degraded capture is a pure function of its
// seed.
func degrade(reports []llrp.TagReport, g GridDegradation, rng *rand.Rand) []llrp.TagReport {
	if g.DeadTags <= 0 && g.DropRate <= 0 {
		return reports
	}
	seen := map[tagmodel.EPC]bool{}
	var epcs []tagmodel.EPC
	for _, r := range reports {
		if !seen[r.EPC] {
			seen[r.EPC] = true
			epcs = append(epcs, r.EPC)
		}
	}
	sort.Slice(epcs, func(i, j int) bool {
		return string(epcs[i][:]) < string(epcs[j][:])
	})
	dead := map[tagmodel.EPC]bool{}
	if n := g.DeadTags; n > 0 {
		if n > len(epcs) {
			n = len(epcs)
		}
		for _, i := range rng.Perm(len(epcs))[:n] {
			dead[epcs[i]] = true
		}
	}
	out := make([]llrp.TagReport, 0, len(reports))
	for _, r := range reports {
		if dead[r.EPC] {
			continue
		}
		if g.DropRate > 0 && rng.Float64() < g.DropRate {
			continue
		}
		out = append(out, r)
	}
	return out
}

// telemetry curates a snapshot into the flat map each trial ships:
// session, engine, recognizer, replay, and faultnet series (runtime
// gauges and unrelated families stay out).
func telemetry(snap obs.Snapshot) map[string]float64 {
	prefixes := []string{
		"llrp_session_", "engine_", "rfipad_", "readings_",
		"faultnet_", "replay_batches", "obs_flight_",
	}
	out := map[string]float64{}
	for _, p := range snap.Points {
		keep := false
		for _, pre := range prefixes {
			if strings.HasPrefix(p.Name, pre) {
				keep = true
				break
			}
		}
		if !keep {
			continue
		}
		key := p.Name
		if len(p.Labels) > 0 {
			ks := make([]string, 0, len(p.Labels))
			for k := range p.Labels {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			parts := make([]string, 0, len(ks))
			for _, k := range ks {
				parts = append(parts, k+"="+p.Labels[k])
			}
			key += "{" + strings.Join(parts, ",") + "}"
		}
		if p.Kind == obs.KindHistogram {
			out[key+":count"] = float64(p.Count)
		} else {
			out[key] = p.Value
		}
	}
	return out
}

// letterAccuracy scores recognized text against the ground truth:
// 1 − Levenshtein distance ÷ max(len(want), len(got)), clamped to 0.
func letterAccuracy(want, got string) float64 {
	if want == got {
		return 1
	}
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	d := levenshtein(want, got)
	acc := 1 - float64(d)/float64(n)
	return math.Max(acc, 0)
}

func levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// aggregate folds a cell's trials into its typed summary fields.
func aggregate(s *ScenarioResult) {
	n := float64(len(s.TrialResults))
	if n == 0 {
		return
	}
	var acc, exact, recov, drop, recon, deadT, p50, p95 float64
	var withLatency float64
	for _, t := range s.TrialResults {
		acc += t.Accuracy
		if t.Exact {
			exact++
		}
		if t.Calibrated && t.Err == "" {
			recov++
		}
		if synth := t.ReadingsServed + t.ReadingsDegraded; synth > 0 {
			// Duplicated frames can push ingested past served; that is
			// surplus, not loss, so the per-trial drop clamps at zero.
			drop += math.Max(0, 1-float64(t.ReadingsIngested)/float64(synth))
		}
		recon += float64(t.Reconnects)
		deadT += float64(t.DeadTags)
		if t.LatencyP50Ms > 0 {
			p50 += t.LatencyP50Ms
			p95 += t.LatencyP95Ms
			withLatency++
		}
		if t.Anomaly != "" {
			s.Anomalies++
		}
	}
	s.Accuracy = acc / n
	s.ExactRate = exact / n
	s.RecoveryRate = recov / n
	s.DropRate = drop / n
	s.MeanReconnects = recon / n
	s.MeanDeadTags = deadT / n
	if withLatency > 0 {
		s.LatencyP50Ms = p50 / withLatency
		s.LatencyP95Ms = p95 / withLatency
	}
}
