package scenario

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rfipad/internal/replay"
)

func TestMatrixExpansionOrder(t *testing.T) {
	cfg := Config{
		HandSpeeds: []float64{1, 2},
		Faults:     []FaultProfile{NoFault(), FlakyLink()},
		Grids:      []GridDegradation{FullGrid(), Degraded(3, 0.2)},
	}
	cells := cfg.Matrix()
	if len(cells) != 8 {
		t.Fatalf("3-axis 2×2×2 matrix expanded to %d cells", len(cells))
	}
	// Nested order: speed slowest of the populated axes, load fastest.
	want0 := Cell{User: "default", HandSpeed: 1, Fault: "none", Grid: "full"}
	if cells[0] != want0 {
		t.Errorf("cells[0] = %+v, want %+v", cells[0], want0)
	}
	if cells[1].Grid != "dead3-drop20" || cells[1].Fault != "none" {
		t.Errorf("grid must vary before fault: cells[1] = %+v", cells[1])
	}
	if cells[4].HandSpeed != 2 {
		t.Errorf("speed must vary slowest: cells[4] = %+v", cells[4])
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Errorf("duplicate cell key %q", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Word != "HI" || c.Trials != 2 || c.Seed != 1 || c.Parallelism != 2 {
		t.Errorf("zero-config defaults wrong: %+v", c)
	}
	if c.CalibDuration != 3*time.Second || c.ReplaySpeed != 40 || c.AccuracyFloor != 0.5 {
		t.Errorf("zero-config defaults wrong: %+v", c)
	}
	if len(c.Users) != 1 || len(c.HandSpeeds) != 1 || len(c.Faults) != 1 ||
		len(c.Grids) != 1 || len(c.EngineLoads) != 1 {
		t.Errorf("axes must collapse to neutral singletons: %+v", c)
	}
	if got := (Config{}).Matrix(); len(got) != 1 {
		t.Errorf("zero config expands to %d cells, want 1", len(got))
	}
}

func TestPresets(t *testing.T) {
	smoke, ok := Preset("smoke")
	if !ok {
		t.Fatal("smoke preset missing")
	}
	// The acceptance criterion: the CI matrix covers at least 3 axes
	// (hand speed × fault profile × grid degradation).
	if len(smoke.HandSpeeds) < 2 || len(smoke.Faults) < 2 || len(smoke.Grids) < 2 {
		t.Errorf("smoke preset must sweep speed, fault, and grid: %+v", smoke)
	}
	if _, ok := Preset("full"); !ok {
		t.Error("full preset missing")
	}
	if _, ok := Preset("nope"); ok {
		t.Error("unknown preset must not resolve")
	}
}

func TestDegradeDeterministicAndBounded(t *testing.T) {
	capture, err := replay.Synthesize(3, "I", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := Degraded(3, 0.25)
	a := degrade(capture, g, rand.New(rand.NewSource(9)))
	b := degrade(capture, g, rand.New(rand.NewSource(9)))
	if !reflect.DeepEqual(a, b) {
		t.Error("degrade is not deterministic for equal seeds")
	}
	if len(a) >= len(capture) {
		t.Errorf("degradation removed nothing: %d of %d", len(a), len(capture))
	}
	epcs := map[string]bool{}
	for _, r := range capture {
		epcs[string(r.EPC[:])] = true
	}
	kept := map[string]bool{}
	for _, r := range a {
		kept[string(r.EPC[:])] = true
	}
	if len(epcs)-len(kept) != 3 {
		t.Errorf("dead tags silenced: %d, want 3", len(epcs)-len(kept))
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	cell := func(key string, acc, drop float64) ScenarioResult {
		return ScenarioResult{Key: key, Accuracy: acc, ExactRate: acc,
			RecoveryRate: 1, DropRate: drop}
	}
	old := Report{Cells: []ScenarioResult{cell("a", 0.9, 0.1), cell("b", 0.8, 0.1)}}
	same := Report{Cells: []ScenarioResult{cell("a", 0.89, 0.1), cell("b", 0.8, 0.12)}}
	if regs, _ := Compare(old, same, 0.05); len(regs) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", regs)
	}
	worse := Report{Cells: []ScenarioResult{cell("a", 0.7, 0.1), cell("b", 0.8, 0.4)}}
	regs, _ := Compare(old, worse, 0.05)
	fields := map[string]bool{}
	for _, r := range regs {
		fields[r.Cell+"/"+r.Field] = true
	}
	if !fields["a/accuracy"] || !fields["a/exact_rate"] || !fields["b/drop_rate"] {
		t.Errorf("regressions missed: %v", regs)
	}
	missing := Report{Cells: []ScenarioResult{cell("a", 0.9, 0.1)}}
	regs, _ = Compare(old, missing, 0.05)
	if len(regs) != 1 || regs[0].Field != "missing" {
		t.Errorf("missing cell not flagged: %v", regs)
	}
	extra := Report{Cells: append(old.Cells, cell("c", 1, 0))}
	regs, notes := Compare(old, extra, 0.05)
	if len(regs) != 0 || len(notes) != 1 {
		t.Errorf("new cell must be a note, not a regression: %v %v", regs, notes)
	}
}

func TestLetterAccuracy(t *testing.T) {
	cases := []struct {
		want, got string
		acc       float64
	}{
		{"HI", "HI", 1},
		{"HI", "H", 0.5},
		{"HI", "", 0},
		{"HI", "HII", 1 - 1.0/3},
		{"", "", 1},
		{"HELLO", "HELLO", 1},
	}
	for _, c := range cases {
		if got := letterAccuracy(c.want, c.got); got < c.acc-1e-9 || got > c.acc+1e-9 {
			t.Errorf("letterAccuracy(%q, %q) = %v, want %v", c.want, c.got, got, c.acc)
		}
	}
}

// tinyMatrix is the smallest end-to-end matrix that still exercises a
// fault profile and a degraded grid through the real stack.
func tinyMatrix(parallelism int) Config {
	return Config{
		Name:        "test",
		Word:        "I",
		Trials:      1,
		Seed:        5,
		Parallelism: parallelism,
		ReplaySpeed: 80,
		Faults:      []FaultProfile{NoFault(), FlakyLink()},
		Grids:       []GridDegradation{FullGrid(), Degraded(3, 0.15)},
	}
}

func TestRunRealPipelineTinyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario matrix is seconds of wall time")
	}
	dir := t.TempDir()
	cfg := tinyMatrix(4)
	cfg.FlightDir = dir
	// Force at least one anomaly dump: an unreachable accuracy floor
	// marks every trial anomalous.
	cfg.AccuracyFloor = 0.4

	cells, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if len(c.TrialResults) != 1 {
			t.Fatalf("cell %s: %d trials", c.Key, len(c.TrialResults))
		}
		tr := c.TrialResults[0]
		if !tr.Calibrated {
			t.Errorf("cell %s never calibrated (err %q)", c.Key, tr.Err)
		}
		if tr.Accuracy < 1 {
			t.Errorf("cell %s: accuracy %.2f recognizing %q (got %q)",
				c.Key, tr.Accuracy, cfg.Word, tr.Got)
		}
		if len(tr.Obs) == 0 {
			t.Errorf("cell %s: no telemetry snapshot", c.Key)
		}
		if c.RecoveryRate != 1 {
			t.Errorf("cell %s: recovery rate %.2f", c.Key, c.RecoveryRate)
		}
	}
	// The flaky cells must actually have reconnected (the byte budget
	// kills every connection) and recorded injected faults.
	flaky := cells[2]
	if flaky.Fault != "flaky" {
		t.Fatalf("matrix order changed: cells[2] is %s", flaky.Key)
	}
	if flaky.MeanReconnects == 0 {
		t.Error("flaky cell saw no reconnects — faults not applied?")
	}
	if flaky.TrialResults[0].Obs["faultnet_injected_total{kind=drop}"] == 0 {
		t.Error("flaky cell recorded no injected drops")
	}
	// Degraded cells must report the removed readings as drop rate.
	degradedCell := cells[1]
	if degradedCell.Grid == "full" || degradedCell.DropRate == 0 {
		t.Errorf("degraded cell %s has drop rate %.3f", degradedCell.Key, degradedCell.DropRate)
	}
	if degradedCell.MeanDeadTags == 0 {
		t.Errorf("degraded cell %s reports no dead tags", degradedCell.Key)
	}
	// Every trial was forced under the floor's complement — none here,
	// accuracy 1 ≥ 0.4, so no anomalies expected; flight log still
	// exists from OpenFlight.
	if _, err := Load(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("Load must fail on a missing report")
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario matrix is seconds of wall time")
	}
	serial, err := Run(tinyMatrix(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(tinyMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Key != p.Key {
			t.Fatalf("cell order differs at %d: %s vs %s", i, s.Key, p.Key)
		}
		// The deterministic fields `-diff` gates: accuracy-class
		// metrics and the capture accounting. Latency and telemetry
		// counters are timing-dependent and deliberately excluded.
		if s.Accuracy != p.Accuracy || s.ExactRate != p.ExactRate {
			t.Errorf("%s: accuracy differs across parallelism: %.3f/%.3f vs %.3f/%.3f",
				s.Key, s.Accuracy, s.ExactRate, p.Accuracy, p.ExactRate)
		}
		for k := range s.TrialResults {
			st, pt := s.TrialResults[k], p.TrialResults[k]
			if st.Seed != pt.Seed {
				t.Errorf("%s trial %d: seed %d vs %d", s.Key, k, st.Seed, pt.Seed)
			}
			if st.ReadingsServed != pt.ReadingsServed || st.ReadingsDegraded != pt.ReadingsDegraded {
				t.Errorf("%s trial %d: served %d/%d vs %d/%d — degradation leaked shared RNG",
					s.Key, k, st.ReadingsServed, st.ReadingsDegraded,
					pt.ReadingsServed, pt.ReadingsDegraded)
			}
			if st.Want != pt.Want || st.Got != pt.Got {
				t.Errorf("%s trial %d: recognized %q vs %q", s.Key, k, st.Got, pt.Got)
			}
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_scenarios.json")
	rep := NewReport(Config{Name: "test"}, Provenance{Commit: "abc", Seed: 5}, []ScenarioResult{
		{Key: "k", Accuracy: 0.75, Trials: 2},
	})
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if !IsReport(path) {
		t.Error("IsReport must recognize a scenario report")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.SchemaVersion != SchemaVersion {
		t.Errorf("schema header lost: %+v", got)
	}
	if got.Preset != "test" || got.Provenance.Commit != "abc" || len(got.Cells) != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	bad := filepath.Join(dir, "other.json")
	if err := writeOther(bad); err != nil {
		t.Fatal(err)
	}
	if IsReport(bad) {
		t.Error("IsReport must reject a non-scenario report")
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load must reject a non-scenario report")
	}
}

func writeOther(path string) error {
	rep := Report{Schema: "other/schema", SchemaVersion: 1}
	return rep.WriteFile(path)
}
