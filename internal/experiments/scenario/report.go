package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema identifies a scenario report; `rfipad-bench -diff` switches
// to cell-by-cell comparison when both inputs carry it.
const Schema = "rfipad-bench/scenarios"

// SchemaVersion is bumped whenever the report layout changes
// incompatibly; Load rejects reports from a different major layout.
const SchemaVersion = 1

// Provenance makes a report self-describing: which commit and seed
// produced it, when, on which toolchain.
type Provenance struct {
	Commit    string `json:"commit"`
	Seed      int64  `json:"seed"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
}

// Report is the machine-readable BENCH_scenarios.json payload.
type Report struct {
	Schema        string           `json:"schema"`
	SchemaVersion int              `json:"schema_version"`
	Provenance    Provenance       `json:"provenance"`
	Preset        string           `json:"preset"`
	Word          string           `json:"word"`
	Trials        int              `json:"trials"`
	Cells         []ScenarioResult `json:"cells"`
}

// NewReport wraps results with the schema header.
func NewReport(cfg Config, prov Provenance, cells []ScenarioResult) Report {
	cfg = cfg.withDefaults()
	return Report{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Provenance:    prov,
		Preset:        cfg.Name,
		Word:          cfg.Word,
		Trials:        cfg.Trials,
		Cells:         cells,
	}
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Load reads a report, verifying schema and version.
func Load(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return r, fmt.Errorf("%s: schema %q is not %q", path, r.Schema, Schema)
	}
	if r.SchemaVersion != SchemaVersion {
		return r, fmt.Errorf("%s: schema version %d, this build reads %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return r, nil
}

// IsReport cheaply probes whether a JSON file is a scenario report.
func IsReport(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Schema == Schema
}

// Regression is one gated metric that moved the wrong way between two
// reports (or a cell that disappeared).
type Regression struct {
	Cell  string
	Field string
	Old   float64
	New   float64
}

func (r Regression) String() string {
	if r.Field == "missing" {
		return fmt.Sprintf("%s: cell missing from new report", r.Cell)
	}
	return fmt.Sprintf("%s: %s %.3f -> %.3f", r.Cell, r.Field, r.Old, r.New)
}

// Compare diffs two reports cell-by-cell on the deterministic
// accuracy-class fields. Accuracy, exact rate, and recovery rate may
// drop by at most tol; drop rate may rise by at most tol. Latency and
// telemetry are machine-dependent and never gated — the generic
// numeric diff shows them informationally. A cell present in old but
// absent in new is a regression (coverage loss); new cells are
// reported in notes only.
func Compare(old, new Report, tol float64) (regressions []Regression, notes []string) {
	newCells := map[string]ScenarioResult{}
	for _, c := range new.Cells {
		newCells[c.Key] = c
	}
	oldKeys := map[string]bool{}
	for _, oc := range old.Cells {
		oldKeys[oc.Key] = true
		nc, ok := newCells[oc.Key]
		if !ok {
			regressions = append(regressions, Regression{Cell: oc.Key, Field: "missing"})
			continue
		}
		down := []struct {
			field    string
			old, new float64
		}{
			{"accuracy", oc.Accuracy, nc.Accuracy},
			{"exact_rate", oc.ExactRate, nc.ExactRate},
			{"recovery_rate", oc.RecoveryRate, nc.RecoveryRate},
		}
		for _, f := range down {
			if f.new < f.old-tol {
				regressions = append(regressions, Regression{
					Cell: oc.Key, Field: f.field, Old: f.old, New: f.new})
			}
		}
		if nc.DropRate > oc.DropRate+tol {
			regressions = append(regressions, Regression{
				Cell: oc.Key, Field: "drop_rate", Old: oc.DropRate, New: nc.DropRate})
		}
	}
	var added []string
	for key := range newCells {
		if !oldKeys[key] {
			added = append(added, key)
		}
	}
	sort.Strings(added)
	for _, key := range added {
		notes = append(notes, fmt.Sprintf("%s: new cell (no baseline)", key))
	}
	sort.Slice(regressions, func(i, j int) bool {
		if regressions[i].Cell != regressions[j].Cell {
			return regressions[i].Cell < regressions[j].Cell
		}
		return regressions[i].Field < regressions[j].Field
	})
	return regressions, notes
}
