package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/epc"
	"rfipad/internal/grammar"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/sim"
)

func init() {
	register("ablation-accumulator", "Ablation: total-variation vs telescoped reading of Eq. 10", func(cfg Config) Result {
		return RunAblationAccumulator(cfg)
	})
	register("ablation-suppression", "Ablation: diversity-suppression variants at location #4", func(cfg Config) Result {
		return RunAblationSuppression(cfg)
	})
	register("ablation-segmentation", "Ablation: segmentation frame/window sizing", func(cfg Config) Result {
		return RunAblationSegmentation(cfg)
	})
	register("ablation-wholeletter", "Ablation: stroke-grammar vs whole-letter image matching (§VI)", func(cfg Config) Result {
		return RunAblationWholeLetter(cfg)
	})
	register("ablation-fastmac", "Ablation: short-packet MAC for fast writers (§VI)", func(cfg Config) Result {
		return RunAblationFastMAC(cfg)
	})
	register("ablation-hopping", "Ablation: fixed carrier vs FCC frequency hopping (§IV-A)", func(cfg Config) Result {
		return RunAblationHopping(cfg)
	})
}

// AblationResult is a generic labelled-accuracy table.
type AblationResult struct {
	Title      string
	ID         string
	Labels     []string
	Accuracies []float64
}

// Name implements Result.
func (r AblationResult) Name() string { return r.ID }

// String renders the ablation table.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	for i, l := range r.Labels {
		fmt.Fprintf(&b, "%-28s %6.3f\n", l, r.Accuracies[i])
	}
	return b.String()
}

// RunAblationAccumulator compares the two readings of Eq. 10's sum
// (DESIGN.md §5): the literal telescoped sum collapses oscillating
// disturbances and should lose badly.
func RunAblationAccumulator(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-accumulator",
		Title: "Ablation — Eq. 10 accumulator reading (13 motions, default scene)",
	}
	for _, v := range []struct {
		label string
		acc   core.Accumulator
	}{
		{"total variation (ours)", core.AccumTotalVariation},
		{"telescoped net change", core.AccumNetChange},
	} {
		tally, _ := runCondition(cfg, condition{accumulator: v.acc})
		res.Labels = append(res.Labels, v.label)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// RunAblationSuppression compares the suppression variants at the
// noisiest location: none, mean-only, the literal Eq. 10 inverse
// weighting, and the subtractive noise-rate form we ship.
func RunAblationSuppression(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-suppression",
		Title: "Ablation — diversity suppression variants (location #4)",
	}
	for _, v := range []struct {
		label string
		mode  core.Suppression
	}{
		{"none", core.SuppressNone},
		{"mean subtraction only", core.SuppressMeanOnly},
		{"inverse weighting (Eq.10)", core.SuppressInverseWeight},
		{"noise-rate subtraction", core.SuppressFull},
	} {
		tally, _ := runCondition(cfg, condition{
			scene:       scene.Config{Location: scene.Location4},
			suppression: v.mode,
		})
		res.Labels = append(res.Labels, v.label)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// RunAblationSegmentation sweeps the segmenter's window size around
// the paper's 100 ms × 5 frames.
func RunAblationSegmentation(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-segmentation",
		Title: "Ablation — segmentation frame/window sizing (default scene)",
	}
	for _, v := range []struct {
		label  string
		frame  time.Duration
		frames int
	}{
		{"50ms × 5 frames", 50 * time.Millisecond, 5},
		{"100ms × 3 frames", 100 * time.Millisecond, 3},
		{"100ms × 5 frames (paper)", 100 * time.Millisecond, 5},
		{"100ms × 8 frames", 100 * time.Millisecond, 8},
		{"200ms × 5 frames", 200 * time.Millisecond, 5},
	} {
		seg := core.NewSegmenter()
		seg.FrameLen = v.frame
		seg.WindowFrames = v.frames
		tally, _ := runCondition(cfg, condition{segmenter: seg})
		res.Labels = append(res.Labels, v.label)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// RunAblationWholeLetter compares the shipped stroke-grammar letter
// recognition against the §VI whole-letter image matching alternative
// over the full alphabet.
func RunAblationWholeLetter(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-wholeletter",
		Title: "Ablation — stroke-grammar vs whole-letter image matching (§VI)",
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dep := scene.New(scene.Config{}, rng)
	system := sim.New(dep, rng)
	cal, err := system.Calibrate(cfg.CalibrationTime)
	if err != nil {
		return res
	}
	pipeline := core.NewPipeline(system.Grid, cal)
	whole := core.NewWholeLetterClassifier(system.Grid)

	trials := cfg.Trials * cfg.Groups
	var grammarRight, wholeRight, total int
	users := hand.Volunteers()
	for _, l := range grammar.Alphabet() {
		for k := 0; k < trials; k++ {
			specs, err := sim.LetterSpecs(l.Char)
			if err != nil {
				continue
			}
			synth := system.Synthesizer(users[k%len(users)], rand.New(rand.NewSource(cfg.Seed+int64(l.Char)*577+int64(k)*41)))
			script := synth.Write(specs)
			readings := system.RunScript(script)
			end := script.Duration() + time.Second
			total++

			results := pipeline.RecognizeStream(readings, nil, 0, end)
			var obs []core.StrokeObservation
			for _, r := range results {
				if r.Result.Ok {
					obs = append(obs, core.StrokeObservation{
						Motion: r.Result.Motion, Box: r.Result.Box,
						CenterX: r.Result.CenterX, CenterY: r.Result.CenterY,
					})
				}
			}
			if ch, ok := core.ComposeLetter(obs); ok && ch == l.Char {
				grammarRight++
			}
			if ch, ok := pipeline.RecognizeWholeLetter(whole, readings, nil, 0, end); ok && ch == l.Char {
				wholeRight++
			}
		}
	}
	res.Labels = []string{"stroke grammar (ours)", "whole-letter matching (§VI)"}
	res.Accuracies = []float64{
		float64(grammarRight) / float64(total),
		float64(wholeRight) / float64(total),
	}
	return res
}

// RunAblationFastMAC measures the §VI low-throughput mitigation: a
// fast writer's accuracy with the default MAC versus the short-packet
// profile.
func RunAblationFastMAC(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-fastmac",
		Title: "Ablation — fast writer vs MAC profile (§VI undersampling)",
	}
	fast := hand.Volunteers()[5] // user #6, the fast writer
	fast.Speed *= 1.5            // push into the undersampling regime
	for _, v := range []struct {
		label string
		mac   epc.Config
	}{
		{"default MAC, fast writer", epc.DefaultConfig()},
		{"short-packet MAC, fast writer", epc.FastConfig()},
	} {
		tally, _ := runCondition(cfg, condition{
			users: []hand.User{fast},
			mac:   &v.mac,
		})
		res.Labels = append(res.Labels, v.label)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}

// FCCCarriers is a representative FCC-band hop set.
var FCCCarriers = []float64{902.75e6, 909.25e6, 915.25e6, 921.25e6, 927.25e6}

// RunAblationHopping quantifies why the paper operates on a fixed
// carrier (§IV-A): under FCC-style frequency hopping each tag's phase
// centre jumps with the wavelength, so a pipeline calibrated at one
// carrier loses its diversity suppression and much of its phase
// signal-to-noise.
func RunAblationHopping(cfg Config) AblationResult {
	cfg.fill()
	res := AblationResult{
		ID:    "ablation-hopping",
		Title: "Ablation — fixed 922.38 MHz carrier vs FCC frequency hopping (§IV-A)",
	}
	for _, v := range []struct {
		label string
		sc    scene.Config
	}{
		{"fixed carrier (paper)", scene.Config{}},
		{"FCC hopping, 200ms dwell", scene.Config{HopCarriersHz: FCCCarriers}},
	} {
		tally, _ := runCondition(cfg, condition{scene: v.sc})
		res.Labels = append(res.Labels, v.label)
		res.Accuracies = append(res.Accuracies, tally.Accuracy())
	}
	return res
}
