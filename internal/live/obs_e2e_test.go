package live_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/faultnet"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
)

// TestEndToEndChaosTelemetry drives a chaos run (forced mid-word
// disconnects through faultnet) with every component wired to one
// isolated metrics registry, then asserts runtime health three ways:
// the /metrics Prometheus scrape, the Result.Telemetry snapshot, and
// /healthz reporting calibrated=true after the prelude. This is the
// observability acceptance scenario: degradation must be measured, not
// just tolerated.
func TestEndToEndChaosTelemetry(t *testing.T) {
	const word = "IT"
	reg := obs.NewRegistry()
	reports, err := replay.Synthesize(12, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(reports, replay.Options{Speed: 25, Obs: reg})
	})
	srv.IdleTimeout = 2 * time.Second
	srv.WriteTimeout = 2 * time.Second
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := faultnet.Listen(inner, faultnet.Config{
		Seed:           7,
		DropAfterBytes: 32 * 1024, // every connection dies mid-word
		DupFrameProb:   0.03,
		PartialWrites:  true,
		FrameHeaderLen: llrp.HeaderLen,
		FrameSize:      llrp.FrameSize,
		Observer: func(kind string) {
			reg.Counter("faultnet_injected_faults_total",
				"Faults injected, by kind.", obs.L("kind", kind)).Inc()
		},
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	// Admin endpoint over the same registry, with the daemons' health
	// semantics.
	admin, err := obs.StartAdmin("127.0.0.1:0", reg, func() obs.Health {
		snap := reg.Snapshot()
		return obs.Health{
			OK: snap.Value("llrp_session_connected") == 1,
			Detail: map[string]any{
				"calibrated": snap.Value("rfipad_calibrated") == 1,
				"dead_tags":  snap.Value("rfipad_dead_tags"),
				"reconnects": snap.Value("llrp_session_reconnects_total"),
			},
		}
	}, func() obs.Health {
		snap := reg.Snapshot()
		return obs.Health{OK: snap.Value("rfipad_ready") == 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sess, err := llrp.DialSession(ctx, llrp.SessionConfig{
		Addr:              inner.Addr().String(),
		BackoffInitial:    5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		JitterSeed:        11,
		KeepaliveInterval: 50 * time.Millisecond,
		IdleTimeout:       time.Second,
		WriteTimeout:      time.Second,
		Obs:               reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	res, err := live.Run(sess, live.Config{
		CalibDuration: 3 * time.Second,
		Obs:           reg,
		OnStatus:      func(s string) { t.Log(s) },
	})
	if err != nil {
		t.Fatalf("live run: %v (partial %q)", err, res.Letters)
	}
	if res.Letters != word {
		t.Errorf("recognized %q, want %q", res.Letters, word)
	}

	// 1. The Result snapshot carries the run's telemetry out.
	snap := res.Telemetry
	if v := snap.Value("llrp_session_reconnects_total"); v == 0 {
		t.Error("snapshot: llrp_session_reconnects_total = 0, want > 0 (chaos never engaged?)")
	}
	if v := snap.Value("llrp_session_disconnects_total"); v == 0 {
		t.Error("snapshot: llrp_session_disconnects_total = 0, want > 0")
	}
	if v := snap.Value("faultnet_injected_faults_total", obs.L("kind", faultnet.FaultDrop)); v == 0 {
		t.Error("snapshot: no injected drops counted")
	}
	if v := snap.Value("rfipad_calibrated"); v != 1 {
		t.Errorf("snapshot: rfipad_calibrated = %v, want 1", v)
	}
	if v := snap.Value("rfipad_readings_total"); v == 0 {
		t.Error("snapshot: no readings counted")
	}
	if v := snap.Value("rfipad_readings_dropped_total", obs.L("reason", "duplicate")); v == 0 {
		t.Error("snapshot: no duplicate drops despite resume overlap + frame duplication")
	}
	for _, stage := range []string{
		core.StageSegment, core.StageDisturbance, core.StageClassify,
		core.StageDirection, core.StageGrammar,
	} {
		p, ok := snap.Get("rfipad_stage_seconds", obs.L("stage", stage))
		if !ok || p.Count == 0 {
			t.Errorf("snapshot: stage %q histogram empty", stage)
			continue
		}
		if q := p.Quantile(0.95); !(q > 0) {
			t.Errorf("snapshot: stage %q p95 = %v, want > 0", stage, q)
		}
	}

	// 2. The same facts are scrapeable in Prometheus text format.
	metrics := scrape(t, "http://"+admin.Addr()+"/metrics")
	if v := metrics["llrp_session_reconnects_total"]; v <= 0 {
		t.Errorf("/metrics: llrp_session_reconnects_total = %v, want > 0", v)
	}
	if v := metrics[`rfipad_stage_seconds_count{stage="segment"}`]; v <= 0 {
		t.Errorf("/metrics: segment stage histogram empty (%v)", v)
	}
	if v := metrics[`rfipad_stage_seconds_count{stage="disturbance"}`]; v <= 0 {
		t.Errorf("/metrics: disturbance stage histogram empty (%v)", v)
	}
	if v := metrics["replay_batches_total"]; v <= 0 {
		t.Errorf("/metrics: replay_batches_total = %v, want > 0", v)
	}

	// 3. /healthz reports the prelude completed.
	resp, err := http.Get("http://" + admin.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["calibrated"] != true {
		t.Errorf("/healthz calibrated = %v, want true (body %v)", health["calibrated"], health)
	}
	if r, _ := health["reconnects"].(float64); r <= 0 {
		t.Errorf("/healthz reconnects = %v, want > 0", health["reconnects"])
	}

	t.Logf("telemetry: %d reconnects, resume-gap samples %d, keepalive RTT samples %d",
		int(snap.Value("llrp_session_reconnects_total")),
		snap.HistCount("llrp_session_resume_gap_seconds"),
		snap.HistCount("llrp_session_keepalive_rtt_seconds"))
}

// scrape fetches a Prometheus exposition and parses the sample lines
// into a name{labels} → value map.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty scrape")
	}
	return out
}
