package live_test

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
	"rfipad/internal/supervise"
)

// TestCheckpointRestoreSkipsPrelude is the drain/restore acceptance
// scenario: a run killed right after calibrating (the signal context
// cancelling its session, exactly what SIGTERM does through
// signal.NotifyContext) must leave a checkpoint behind; a restarted
// run against the same store restores it, skips the static prelude,
// recognizes the word anyway, and reports readiness on /readyz while
// it serves — with the restore visible on the
// rfipad_calibration_restored_total counter.
func TestCheckpointRestoreSkipsPrelude(t *testing.T) {
	const word = "IT"
	reports, err := replay.Synthesize(12, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(reports, replay.Options{Speed: 10})
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run until calibration completes, then cancel — the
	// in-process equivalent of kill -TERM mid-stream.
	reg1 := obs.NewRegistry()
	ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel1()
	sess1, err := llrp.DialSession(ctx1, llrp.SessionConfig{
		Addr:           l.Addr().String(),
		BackoffInitial: 5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		JitterSeed:     3,
		Obs:            reg1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess1.Close()
	go func() {
		for ctx1.Err() == nil {
			if reg1.Snapshot().Value("rfipad_calibrated") == 1 {
				cancel1()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res1, err := live.Run(sess1, live.Config{
		CalibDuration: 3 * time.Second,
		Obs:           reg1,
		Checkpoints:   store,
	})
	if err == nil {
		t.Fatal("phase 1 ran to completion; the kill never landed")
	}
	if !res1.Calibrated {
		t.Fatal("phase 1 never calibrated")
	}
	if res1.CalibrationRestored {
		t.Fatal("phase 1 claims a restore with an empty store")
	}
	if v := res1.Telemetry.Value("rfipad_checkpoints_saved_total"); v == 0 {
		t.Fatal("kill left no checkpoint behind")
	}
	cp, err := store.Load("live")
	if err != nil {
		t.Fatalf("checkpoint not on disk after drain: %v", err)
	}
	if cp.StreamTime < 3*time.Second {
		t.Fatalf("checkpoint stream time %v predates calibration", cp.StreamTime)
	}

	// Phase 2: a fresh process (fresh registry, fresh session) restores
	// the checkpoint. /readyz must flip to 200 while it serves, without
	// any calibration prelude being consumed.
	reg2 := obs.NewRegistry()
	admin, err := obs.StartAdmin("127.0.0.1:0", reg2, nil, func() obs.Health {
		return obs.Health{OK: reg2.Snapshot().Value("rfipad_ready") == 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	if status := probeReadyz(t, admin.Addr()); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before restore = %d, want 503", status)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	sess2, err := llrp.DialSession(ctx2, llrp.SessionConfig{
		Addr:           l.Addr().String(),
		BackoffInitial: 5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		JitterSeed:     4,
		Obs:            reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()

	type outcome struct {
		res live.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := live.Run(sess2, live.Config{
			CalibDuration: 3 * time.Second,
			Obs:           reg2,
			Checkpoints:   store,
		})
		done <- outcome{res, err}
	}()

	// Readiness must be observable while the restored run serves (it
	// drops again on drain, so poll during, not after).
	sawReady := false
	deadline := time.Now().Add(20 * time.Second)
	for !sawReady && time.Now().Before(deadline) {
		if probeReadyz(t, admin.Addr()) == http.StatusOK {
			sawReady = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawReady {
		t.Error("/readyz never reported ready during the restored run")
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("restored run failed: %v (partial %q)", out.err, out.res.Letters)
	}
	if !out.res.CalibrationRestored {
		t.Error("restored run did not use the checkpoint")
	}
	if v := out.res.Telemetry.Value("rfipad_calibration_restored_total"); v != 1 {
		t.Errorf("rfipad_calibration_restored_total = %v, want 1", v)
	}
	if out.res.Letters != word {
		t.Errorf("restored run recognized %q, want %q", out.res.Letters, word)
	}
}

// TestCheckpointStaleFallsBackToLiveCalibration pins the staleness
// bound end to end: a checkpoint past CheckpointMaxAge is ignored and
// the run calibrates from the prelude as if the store were empty.
func TestCheckpointStaleFallsBackToLiveCalibration(t *testing.T) {
	const word = "IT"
	reports, err := replay.Synthesize(12, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(reports, replay.Options{Speed: 25})
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Plant a checkpoint that is valid but ancient.
	old := supervise.Checkpoint{
		Stream:      "live",
		SavedAt:     time.Now().Add(-time.Hour),
		StreamTime:  5 * time.Second,
		FrameCursor: 5 * time.Second,
	}
	if err := store.Save(old); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sess, err := llrp.DialSession(ctx, llrp.SessionConfig{
		Addr:           l.Addr().String(),
		BackoffInitial: 5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		JitterSeed:     5,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := live.Run(sess, live.Config{
		CalibDuration:    3 * time.Second,
		Obs:              reg,
		Checkpoints:      store,
		CheckpointMaxAge: 15 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CalibrationRestored {
		t.Error("stale checkpoint was restored")
	}
	if !res.Calibrated {
		t.Error("fallback never calibrated live")
	}
	if res.Letters != word {
		t.Errorf("recognized %q, want %q", res.Letters, word)
	}
	// The drain overwrote the stale checkpoint with a fresh one.
	cp, err := store.Load("live")
	if err != nil {
		t.Fatal(err)
	}
	if !cp.SavedAt.After(old.SavedAt) {
		t.Error("drain did not refresh the stale checkpoint")
	}
}

func probeReadyz(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
