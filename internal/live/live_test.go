package live_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rfipad/internal/faultnet"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/replay"
)

// TestEndToEndChaosRecognizesWord drives the full stack — synthesized
// capture → llrp server → fault-injected link (forced mid-word
// disconnects, duplicated and fragmented frames) → reconnecting session
// → online recognizer — and demands the word still comes out. This is
// the PR's acceptance scenario: the byte budget cuts every connection
// long before the capture ends, so recognition only succeeds if resume
// and duplicate tolerance actually work.
func TestEndToEndChaosRecognizesWord(t *testing.T) {
	const word = "IT"
	reports, err := replay.Synthesize(12, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(reports, replay.Options{Speed: 25})
	})
	srv.IdleTimeout = 2 * time.Second
	srv.WriteTimeout = 2 * time.Second
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := faultnet.Listen(inner, faultnet.Config{
		Seed:           7,
		DropAfterBytes: 32 * 1024, // every connection dies mid-word
		DupFrameProb:   0.03,
		PartialWrites:  true,
		FrameHeaderLen: llrp.HeaderLen,
		FrameSize:      llrp.FrameSize,
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var disconnects atomic.Int32
	sess, err := llrp.DialSession(ctx, llrp.SessionConfig{
		Addr:              inner.Addr().String(),
		BackoffInitial:    5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		JitterSeed:        11,
		KeepaliveInterval: 50 * time.Millisecond,
		IdleTimeout:       time.Second,
		WriteTimeout:      time.Second,
		OnEvent: func(ev llrp.SessionEvent) {
			if ev.Kind == llrp.SessionDisconnected {
				disconnects.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	res, err := live.Run(sess, live.Config{
		CalibDuration: 3 * time.Second,
		OnStatus:      func(s string) { t.Log(s) },
	})
	if err != nil {
		t.Fatalf("live run: %v (partial result %q after %d reconnects)", err, res.Letters, res.Reconnects)
	}
	if !res.Calibrated {
		t.Error("never calibrated")
	}
	if res.Letters != word {
		t.Errorf("recognized %q, want %q", res.Letters, word)
	}
	if disconnects.Load() == 0 {
		t.Error("fault injection produced no disconnects — chaos never engaged")
	}
	if res.Reconnects == 0 {
		t.Error("session reports no reconnects despite injected link cuts")
	}
	t.Logf("survived %d disconnects / %d reconnects, %d strokes",
		disconnects.Load(), res.Reconnects, res.Strokes)
}

// TestLiveRunSurfacesPartialResult asserts a run that gives up
// mid-stream still returns what it recognized so far.
func TestLiveRunSurfacesPartialResult(t *testing.T) {
	sess := &failingSource{}
	res, err := live.Run(sess, live.Config{})
	if err == nil {
		t.Fatal("want the source's terminal error")
	}
	if res.Calibrated {
		t.Error("calibrated flag set with no data")
	}
}

type failingSource struct{}

func (f *failingSource) NextReports() ([]llrp.TagReport, error) {
	return nil, context.DeadlineExceeded
}

func (f *failingSource) Stats() llrp.SessionStats { return llrp.SessionStats{} }
