package live

import (
	"errors"

	"rfipad/internal/obs"
	"rfipad/internal/supervise"
)

// RestoreCounters is the labeled checkpoint_restore_total family: one
// counter per restore outcome, so recovery behavior is observable on
// /metrics instead of only in logs. Both the single-stream loop (Run)
// and the sharded engine count their restore attempts through it.
type RestoreCounters struct {
	// Restored counts checkpoints that loaded, validated, and rebuilt a
	// stream.
	Restored *obs.Counter
	// Stale counts checkpoints rejected by the staleness bound.
	Stale *obs.Counter
	// Corrupt counts undecodable or unusable checkpoints (bad bytes,
	// version skew, or a payload the restore rejected).
	Corrupt *obs.Counter
	// Missing counts restore attempts with no checkpoint on disk.
	Missing *obs.Counter
}

// NewRestoreCounters registers the checkpoint_restore_total outcomes
// in reg.
func NewRestoreCounters(reg *obs.Registry) RestoreCounters {
	const name = "checkpoint_restore_total"
	const help = "Checkpoint restore attempts by outcome."
	return RestoreCounters{
		Restored: reg.Counter(name, help, obs.L("outcome", "restored")),
		Stale:    reg.Counter(name, help, obs.L("outcome", "stale")),
		Corrupt:  reg.Counter(name, help, obs.L("outcome", "corrupt")),
		Missing:  reg.Counter(name, help, obs.L("outcome", "missing")),
	}
}

// ObserveLoad classifies a Store.LoadFresh error. A nil error is NOT
// counted here — the caller counts Restored only after the restore
// itself succeeds (a loaded-but-unusable payload counts as corrupt).
func (rc RestoreCounters) ObserveLoad(err error) {
	switch {
	case err == nil:
	case errors.Is(err, supervise.ErrNoCheckpoint):
		rc.Missing.Inc()
	case errors.Is(err, supervise.ErrStale):
		rc.Stale.Inc()
	default:
		rc.Corrupt.Inc()
	}
}
