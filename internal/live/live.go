// Package live is the backend consumer loop behind rfipad-live: it
// drains tag reports from a fault-tolerant llrp.Session, calibrates
// the diversity suppression once from the static prelude (tolerating
// dead tags), and recognizes strokes and letters online. Extracting it
// from the command makes the full readerd → session → recognizer path
// drivable from end-to-end tests, including chaos runs through
// faultnet.
package live

import (
	"errors"
	"fmt"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/llrp"
	"rfipad/internal/tagmodel"
)

// Config tunes a run.
type Config struct {
	// Grid is the tag-array geometry (default 5×5).
	Grid core.Grid
	// CalibDuration is the static prelude length used for calibration
	// (default 3 s of stream time).
	CalibDuration time.Duration
	// FlushAfter pads the final flush horizon past the last reading
	// (default 2 s).
	FlushAfter time.Duration
	// OnEvent receives every recognition event as it fires (optional).
	OnEvent func(core.Event)
	// OnStatus receives human-readable progress lines (optional).
	OnStatus func(string)
}

func (c Config) withDefaults() Config {
	if c.Grid.Rows == 0 && c.Grid.Cols == 0 {
		c.Grid = core.Grid{Rows: 5, Cols: 5}
	}
	if c.CalibDuration <= 0 {
		c.CalibDuration = 3 * time.Second
	}
	if c.FlushAfter <= 0 {
		c.FlushAfter = 2 * time.Second
	}
	return c
}

// Result summarizes a completed run.
type Result struct {
	// Letters is the recognized text.
	Letters string
	// Strokes counts recognized strokes.
	Strokes int
	// DeadTags is how many tags calibration flagged dead.
	DeadTags int
	// Reconnects is the session's reconnect count at stream end.
	Reconnects int
	// Calibrated reports whether the static prelude completed.
	Calibrated bool
}

// ReportSource is the slice of llrp.Session the loop needs (Session
// satisfies it; tests may substitute).
type ReportSource interface {
	NextReports() ([]llrp.TagReport, error)
	Stats() llrp.SessionStats
}

// Run drains the session until the stream ends cleanly, recognizing
// online. It returns the partial result alongside any terminal error,
// so a run that survived mid-word disconnects but finally gave up
// still reports what it recognized.
func Run(sess ReportSource, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	status := func(format string, args ...any) {
		if cfg.OnStatus != nil {
			cfg.OnStatus(fmt.Sprintf(format, args...))
		}
	}

	var (
		res      Result
		static   []core.Reading
		cal      *core.Calibration
		rec      *core.Recognizer
		lastTime time.Duration
	)
	handle := func(evs []core.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case core.StrokeDetected:
				res.Strokes++
			case core.LetterDeduced:
				res.Letters += string(ev.Letter)
			}
			if cfg.OnEvent != nil {
				cfg.OnEvent(ev)
			}
		}
	}

	for {
		batch, err := sess.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			break
		}
		if err != nil {
			res.Reconnects = sess.Stats().Reconnects
			return res, err
		}
		for _, rep := range batch {
			reading := core.Reading{
				TagIndex: tagmodel.SerialOf(rep.EPC) - 1,
				EPC:      rep.EPC,
				Time:     rep.Timestamp,
				Phase:    rep.PhaseRad,
				RSS:      rep.RSSdBm,
				Doppler:  rep.DopplerHz,
			}
			if reading.Time > lastTime {
				lastTime = reading.Time
			}
			if cal == nil {
				static = append(static, reading)
				if reading.Time >= cfg.CalibDuration {
					c, err := core.Calibrate(static, cfg.Grid.NumTags())
					if err != nil {
						res.Reconnects = sess.Stats().Reconnects
						return res, fmt.Errorf("live: calibration failed: %w", err)
					}
					cal = c
					static = nil
					res.Calibrated = true
					res.DeadTags = cal.DeadCount()
					rec = core.NewRecognizer(core.NewPipeline(cfg.Grid, cal), nil)
					if res.DeadTags > 0 {
						status("calibrated with %d dead tag(s); interpolating their cells", res.DeadTags)
					} else {
						status("calibrated; recognizing online")
					}
				}
				continue
			}
			handle(rec.Ingest(reading))
		}
	}
	if rec != nil {
		handle(rec.Flush(lastTime + cfg.FlushAfter))
	}
	res.Reconnects = sess.Stats().Reconnects
	return res, nil
}
