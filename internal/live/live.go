// Package live is the backend consumer loop behind rfipad-live: it
// drains tag reports from a fault-tolerant llrp.Session, calibrates
// the diversity suppression once from the static prelude (tolerating
// dead tags), and recognizes strokes and letters online. Extracting it
// from the command makes the full readerd → session → recognizer path
// drivable from end-to-end tests, including chaos runs through
// faultnet.
package live

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
)

// Config tunes a run.
type Config struct {
	// Grid is the tag-array geometry (default 5×5).
	Grid core.Grid
	// CalibDuration is the static prelude length used for calibration
	// (default 3 s of stream time).
	CalibDuration time.Duration
	// FlushAfter pads the final flush horizon past the last reading
	// (default 2 s).
	FlushAfter time.Duration
	// OnEvent receives every recognition event as it fires (optional).
	OnEvent func(core.Event)
	// OnStatus receives human-readable progress lines (optional,
	// retained for callers that render raw lines; structured consumers
	// use Logger).
	OnStatus func(string)
	// Logger receives structured progress records with the shared
	// component/field convention (optional; nil disables).
	Logger *slog.Logger
	// Obs selects the metrics registry run telemetry lands in (nil =
	// obs.Default()). The same registry should be handed to the
	// llrp.Session so Result.Telemetry snapshots both.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Grid.Rows == 0 && c.Grid.Cols == 0 {
		c.Grid = core.Grid{Rows: 5, Cols: 5}
	}
	if c.CalibDuration <= 0 {
		c.CalibDuration = 3 * time.Second
	}
	if c.FlushAfter <= 0 {
		c.FlushAfter = 2 * time.Second
	}
	return c
}

// Result summarizes a completed run.
type Result struct {
	// Letters is the recognized text.
	Letters string
	// Strokes counts recognized strokes.
	Strokes int
	// DeadTags is how many tags calibration flagged dead.
	DeadTags int
	// Reconnects is the session's reconnect count at stream end.
	Reconnects int
	// Calibrated reports whether the static prelude completed.
	Calibrated bool
	// Telemetry is the final snapshot of the run's metrics registry:
	// everything the session, recognizer, and stage spans recorded, so
	// e2e and chaos tests can assert on runtime health without
	// scraping /metrics.
	Telemetry obs.Snapshot
}

// ReportSource is the slice of llrp.Session the loop needs (Session
// satisfies it; tests may substitute).
type ReportSource interface {
	NextReports() ([]llrp.TagReport, error)
	Stats() llrp.SessionStats
}

// Run drains the session until the stream ends cleanly, recognizing
// online. It returns the partial result alongside any terminal error,
// so a run that survived mid-word disconnects but finally gave up
// still reports what it recognized.
func Run(sess ReportSource, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	status := func(format string, args ...any) {
		if cfg.OnStatus != nil {
			cfg.OnStatus(fmt.Sprintf(format, args...))
		}
	}
	logInfo := func(msg string, args ...any) {
		if cfg.Logger != nil {
			cfg.Logger.Info(msg, args...)
		}
	}

	reg := obs.Or(cfg.Obs)
	calibratedGauge := reg.Gauge("rfipad_calibrated",
		"Whether the static-prelude calibration completed (0 or 1).")
	deadTagsGauge := reg.Gauge("rfipad_dead_tags",
		"Tags the calibration flagged dead (their cells are interpolated).")
	calibratedGauge.Set(0)

	var res Result
	st := NewStream(cfg)
	// finish stamps the session/telemetry state onto the result at
	// every exit path, so even a failed run carries its evidence out.
	finish := func() {
		res.Reconnects = sess.Stats().Reconnects
		res.Telemetry = reg.Snapshot()
	}
	handle := func(evs []core.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case core.StrokeDetected:
				res.Strokes++
				if cfg.Logger != nil {
					cfg.Logger.Debug("stroke recognized", "motion", ev.Stroke.Motion,
						"start", ev.Span.Start, "end", ev.Span.End)
				}
			case core.LetterDeduced:
				res.Letters += string(ev.Letter)
				if cfg.Logger != nil {
					cfg.Logger.Info("letter deduced", "letter", string(ev.Letter), "ok", ev.LetterOK)
				}
			}
			if cfg.OnEvent != nil {
				cfg.OnEvent(ev)
			}
		}
	}

	for {
		batch, err := sess.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			break
		}
		if err != nil {
			finish()
			return res, err
		}
		for _, rep := range batch {
			evs, err := st.Ingest(ReadingFromReport(rep))
			if err != nil {
				finish()
				return res, err
			}
			if !res.Calibrated && st.Calibrated() {
				res.Calibrated = true
				res.DeadTags = st.DeadTags()
				calibratedGauge.Set(1)
				deadTagsGauge.Set(float64(res.DeadTags))
				logInfo("calibrated", "dead_tags", res.DeadTags,
					"prelude", cfg.CalibDuration)
				if res.DeadTags > 0 {
					status("calibrated with %d dead tag(s); interpolating their cells", res.DeadTags)
				} else {
					status("calibrated; recognizing online")
				}
			}
			handle(evs)
		}
	}
	handle(st.Flush())
	finish()
	logInfo("stream ended", "letters", res.Letters, "strokes", res.Strokes,
		"reconnects", res.Reconnects, "dead_tags", res.DeadTags)
	return res, nil
}
