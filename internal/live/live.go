// Package live is the backend consumer loop behind rfipad-live: it
// drains tag reports from a fault-tolerant llrp.Session, calibrates
// the diversity suppression once from the static prelude (tolerating
// dead tags), and recognizes strokes and letters online. Extracting it
// from the command makes the full readerd → session → recognizer path
// drivable from end-to-end tests, including chaos runs through
// faultnet.
package live

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// Config tunes a run.
type Config struct {
	// Grid is the tag-array geometry (default 5×5).
	Grid core.Grid
	// CalibDuration is the static prelude length used for calibration
	// (default 3 s of stream time).
	CalibDuration time.Duration
	// FlushAfter pads the final flush horizon past the last reading
	// (default 2 s).
	FlushAfter time.Duration
	// OnEvent receives every recognition event as it fires (optional).
	OnEvent func(core.Event)
	// OnStatus receives human-readable progress lines (optional,
	// retained for callers that render raw lines; structured consumers
	// use Logger).
	OnStatus func(string)
	// Logger receives structured progress records with the shared
	// component/field convention (optional; nil disables).
	Logger *slog.Logger
	// Obs selects the metrics registry run telemetry lands in (nil =
	// obs.Default()). The same registry should be handed to the
	// llrp.Session so Result.Telemetry snapshots both.
	Obs *obs.Registry
	// Trace, when set, records the run's lifecycle spans (restore or
	// calibrate, per-batch ingest, results) under StreamName. A restored
	// run continues the trace identity its checkpoint carries. Nil
	// disables tracing.
	Trace *trace.Tracer
	// Flight, when set, receives anomaly dumps — here, checkpoints that
	// failed restore.
	Flight *trace.Flight

	// Checkpoints, when set, makes the run durable: a fresh-enough
	// checkpoint restores calibration at startup (skipping the static
	// prelude), and the calibration is re-saved periodically and on
	// every exit path — including a drain triggered by SIGTERM — so a
	// restarted process resumes recognizing immediately.
	Checkpoints *supervise.Store
	// StreamName keys the checkpoint file (default "live").
	StreamName string
	// CheckpointEvery is the periodic save interval (default 30 s).
	CheckpointEvery time.Duration
	// CheckpointMaxAge bounds restore staleness: an older checkpoint
	// is ignored and the run falls back to live calibration (default
	// 15 min; the static environment a calibration describes drifts on
	// that scale when furniture or antennas move).
	CheckpointMaxAge time.Duration
}

func (c Config) withDefaults() Config {
	if c.Grid.Rows == 0 && c.Grid.Cols == 0 {
		c.Grid = core.Grid{Rows: 5, Cols: 5}
	}
	if c.CalibDuration <= 0 {
		c.CalibDuration = 3 * time.Second
	}
	if c.FlushAfter <= 0 {
		c.FlushAfter = 2 * time.Second
	}
	if c.StreamName == "" {
		c.StreamName = "live"
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.CheckpointMaxAge <= 0 {
		c.CheckpointMaxAge = 15 * time.Minute
	}
	return c
}

// Result summarizes a completed run.
type Result struct {
	// Letters is the recognized text.
	Letters string
	// Strokes counts recognized strokes.
	Strokes int
	// DeadTags is how many tags calibration flagged dead.
	DeadTags int
	// Reconnects is the session's reconnect count at stream end.
	Reconnects int
	// Calibrated reports whether the static prelude completed (or was
	// restored from a checkpoint).
	Calibrated bool
	// CalibrationRestored reports whether calibration came from a
	// checkpoint instead of a live prelude.
	CalibrationRestored bool
	// Telemetry is the final snapshot of the run's metrics registry:
	// everything the session, recognizer, and stage spans recorded, so
	// e2e and chaos tests can assert on runtime health without
	// scraping /metrics.
	Telemetry obs.Snapshot
}

// ReportSource is the slice of llrp.Session the loop needs (Session
// satisfies it; tests may substitute).
type ReportSource interface {
	NextReports() ([]llrp.TagReport, error)
	Stats() llrp.SessionStats
}

// Run drains the session until the stream ends cleanly, recognizing
// online. It returns the partial result alongside any terminal error,
// so a run that survived mid-word disconnects but finally gave up
// still reports what it recognized.
func Run(sess ReportSource, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	status := func(format string, args ...any) {
		if cfg.OnStatus != nil {
			cfg.OnStatus(fmt.Sprintf(format, args...))
		}
	}
	logInfo := func(msg string, args ...any) {
		if cfg.Logger != nil {
			cfg.Logger.Info(msg, args...)
		}
	}

	reg := obs.Or(cfg.Obs)
	obs.EnableRuntimeMetrics(reg)
	calibratedGauge := reg.Gauge("rfipad_calibrated",
		"Whether the static-prelude calibration completed (0 or 1).")
	deadTagsGauge := reg.Gauge("rfipad_dead_tags",
		"Tags the calibration flagged dead (their cells are interpolated).")
	readyGauge := reg.Gauge("rfipad_ready",
		"Whether the run is ready to serve: calibration restored-or-complete (0 or 1).")
	restoredCounter := reg.Counter("rfipad_calibration_restored_total",
		"Calibrations restored from a checkpoint, skipping the static prelude.")
	savedCounter := reg.Counter("rfipad_checkpoints_saved_total",
		"Calibration checkpoints written.")
	restoreOutcomes := NewRestoreCounters(reg)
	calibratedGauge.Set(0)
	readyGauge.Set(0)
	san := core.NewSanitizer(reg)

	var res Result
	st := NewStream(cfg)
	tr := cfg.Trace.Stream(cfg.StreamName)
	flightDump := func(detail string) {
		if cfg.Flight == nil {
			return
		}
		cfg.Flight.Record(trace.Dump{
			Trigger: trace.TriggerCorruptCheckpoint,
			Stream:  cfg.StreamName,
			Trace:   tr.ID(),
			Detail:  detail,
			Spans:   tr.Spans(),
		})
	}
	markCalibrated := func() {
		res.Calibrated = true
		res.DeadTags = st.DeadTags()
		calibratedGauge.Set(1)
		deadTagsGauge.Set(float64(res.DeadTags))
		readyGauge.Set(1)
	}
	if cfg.Checkpoints != nil {
		restoreStart := time.Now()
		switch cp, err := cfg.Checkpoints.LoadFresh(cfg.StreamName, cfg.CheckpointMaxAge); {
		case err == nil:
			if rst, rerr := RestoreStream(cfg, cp); rerr == nil {
				st = rst
				res.CalibrationRestored = true
				restoredCounter.Inc()
				restoreOutcomes.Restored.Inc()
				markCalibrated()
				// Continue the previous incarnation's trace: the restart
				// shows up as a restore span inside one stitched trace.
				if tid, terr := trace.ParseID(cp.TraceID); terr == nil && tid != 0 {
					tr = cfg.Trace.Adopt(cfg.StreamName, tid)
				}
				tr.Add(trace.Span{Name: trace.SpanRestore, Start: restoreStart,
					Duration: time.Since(restoreStart), Count: res.DeadTags})
				logInfo("calibration restored from checkpoint",
					"saved_at", cp.SavedAt, "stream_time", cp.StreamTime,
					"dead_tags", res.DeadTags)
				status("calibration restored from checkpoint; recognizing immediately")
			} else {
				restoreOutcomes.Corrupt.Inc()
				flightDump(rerr.Error())
				if cfg.Logger != nil {
					cfg.Logger.Warn("checkpoint unusable; calibrating live", "err", rerr)
				}
			}
		case errors.Is(err, supervise.ErrNoCheckpoint):
			// First run: nothing to restore.
			restoreOutcomes.Missing.Inc()
		default:
			restoreOutcomes.ObserveLoad(err)
			if errors.Is(err, supervise.ErrCorrupt) || errors.Is(err, supervise.ErrVersion) {
				flightDump(err.Error())
			}
			if cfg.Logger != nil {
				cfg.Logger.Warn("checkpoint load failed; calibrating live", "err", err)
			}
		}
	}
	var lastSave time.Time
	saveCheckpoint := func() {
		if cfg.Checkpoints == nil {
			return
		}
		cp, ok := st.Checkpoint(cfg.StreamName)
		if !ok {
			return
		}
		if tr != nil {
			cp.TraceID = tr.ID().String()
		}
		if err := cfg.Checkpoints.Save(cp); err != nil {
			if cfg.Logger != nil {
				cfg.Logger.Warn("checkpoint save failed", "err", err)
			}
			return
		}
		savedCounter.Inc()
		lastSave = time.Now()
	}
	// finish stamps the session/telemetry state onto the result at
	// every exit path — and persists the calibration, so even a run
	// killed mid-word (SIGTERM cancelling the session context) leaves
	// a checkpoint its successor restores. The ready gauge drops first
	// so a load balancer stops routing before the process exits.
	finish := func() {
		readyGauge.Set(0)
		saveCheckpoint()
		res.Reconnects = sess.Stats().Reconnects
		res.Telemetry = reg.Snapshot()
	}
	handle := func(evs []core.Event) {
		if len(evs) == 0 {
			return
		}
		if tr != nil {
			tr.Add(trace.Span{Name: trace.SpanResult, Start: time.Now(), Count: len(evs)})
		}
		for _, ev := range evs {
			switch ev.Kind {
			case core.StrokeDetected:
				res.Strokes++
				if cfg.Logger != nil {
					cfg.Logger.Debug("stroke recognized", "motion", ev.Stroke.Motion,
						"start", ev.Span.Start, "end", ev.Span.End)
				}
			case core.LetterDeduced:
				res.Letters += string(ev.Letter)
				if cfg.Logger != nil {
					cfg.Logger.Info("letter deduced", "letter", string(ev.Letter), "ok", ev.LetterOK)
				}
			}
			if cfg.OnEvent != nil {
				cfg.OnEvent(ev)
			}
		}
	}

	// ingestSpans closes out one traced batch (callers check tr != nil).
	ingestSpans := func(start time.Time, admitted, rejected int, err error) {
		if rejected > 0 {
			tr.Add(trace.Span{Name: trace.SpanSanitize, Start: start, Count: rejected})
		}
		sp := trace.Span{Name: trace.SpanIngest, Start: start,
			Duration: time.Since(start), Count: admitted}
		if err != nil {
			sp.Err = err.Error()
		}
		tr.Add(sp)
	}
	// The drain loop is columnar end to end: each report batch decodes
	// straight into one reused ReadingBatch, is sanitized in place, and
	// flows to the stream in a single IngestBatch call — the per-reading
	// loop this replaces made every reading pay the full call-chain
	// overhead.
	cols := core.GetBatch()
	defer core.PutBatch(cols)
	for {
		batch, err := sess.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			break
		}
		if err != nil {
			finish()
			return res, err
		}
		var batchStart time.Time
		if tr != nil {
			batchStart = time.Now()
		}
		cols.Reset()
		AppendReports(cols, batch)
		san.AdmitColumns(cols, st.LastTime())
		admitted := cols.Len()
		rejected := len(batch) - admitted
		evs, err := st.IngestBatch(cols)
		if err != nil {
			if tr != nil {
				ingestSpans(batchStart, admitted, rejected, err)
			}
			finish()
			return res, err
		}
		if !res.Calibrated && st.Calibrated() {
			markCalibrated()
			tr.Add(trace.Span{Name: trace.SpanCalibrate, Start: time.Now(),
				Count: res.DeadTags})
			saveCheckpoint()
			logInfo("calibrated", "dead_tags", res.DeadTags,
				"prelude", cfg.CalibDuration)
			if res.DeadTags > 0 {
				status("calibrated with %d dead tag(s); interpolating their cells", res.DeadTags)
			} else {
				status("calibrated; recognizing online")
			}
		}
		handle(evs)
		if tr != nil && len(batch) > 0 {
			ingestSpans(batchStart, admitted, rejected, nil)
		}
		if res.Calibrated && cfg.Checkpoints != nil && time.Since(lastSave) >= cfg.CheckpointEvery {
			saveCheckpoint()
		}
	}
	handle(st.Flush())
	finish()
	logInfo("stream ended", "letters", res.Letters, "strokes", res.Strokes,
		"reconnects", res.Reconnects, "dead_tags", res.DeadTags)
	return res, nil
}
