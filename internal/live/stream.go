package live

import (
	"fmt"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/llrp"
	"rfipad/internal/supervise"
	"rfipad/internal/tagmodel"
)

// Stream is the calibrate-then-recognize state machine for one tag
// stream: it buffers the static prelude, calibrates once enough of it
// has arrived (tolerating dead tags), then feeds every further reading
// to an online Recognizer. Run wraps one Stream around a session;
// engine.Engine shards many of them across workers.
type Stream struct {
	cfg      Config
	static   []core.Reading
	cal      *core.Calibration
	rec      *core.Recognizer
	lastTime time.Duration
}

// NewStream builds a stream state machine from the run config (only
// Grid, CalibDuration, FlushAfter, and Obs are consulted here; event
// fan-out stays with the caller).
func NewStream(cfg Config) *Stream {
	return &Stream{cfg: cfg.withDefaults()}
}

// ReadingFromReport converts one wire-format tag report into the
// pipeline's reading record, resolving the EPC to its row-major tag
// index.
func ReadingFromReport(rep llrp.TagReport) core.Reading {
	return core.Reading{
		TagIndex: tagmodel.SerialOf(rep.EPC) - 1,
		EPC:      rep.EPC,
		Time:     rep.Timestamp,
		Phase:    rep.PhaseRad,
		RSS:      rep.RSSdBm,
		Doppler:  rep.DopplerHz,
	}
}

// AppendReports decodes wire-format tag reports straight into a
// columnar batch — the batch counterpart of calling ReadingFromReport
// per report, without materializing intermediate Reading records. EPC
// and Doppler are resolved and dropped here (the batch columns do not
// carry them; the tag index is all downstream stages key on).
func AppendReports(dst *core.ReadingBatch, reports []llrp.TagReport) {
	for i := range reports {
		rep := &reports[i]
		dst.Append(rep.Timestamp, rep.PhaseRad, rep.RSSdBm,
			core.NarrowTag(tagmodel.SerialOf(rep.EPC)-1))
	}
}

// IngestBatch feeds a columnar batch of readings, with element-for-
// element the same behavior as calling Ingest per reading: readings up
// to the calibration boundary accumulate into the static prelude (the
// reading that completes CalibDuration triggers calibration and is part
// of the prelude, not the recognized stream), and everything after the
// boundary flows to the recognizer in one columnar call. The batch is
// only read, never retained. On a calibration error the remaining
// readings are dropped, exactly as a per-reading caller would stop
// feeding a terminally failed stream.
func (s *Stream) IngestBatch(b *core.ReadingBatch) ([]core.Event, error) {
	n := b.Len()
	i := 0
	for i < n && s.rec == nil {
		rd := b.Reading(i)
		i++
		if rd.Time > s.lastTime {
			s.lastTime = rd.Time
		}
		s.static = append(s.static, rd)
		if rd.Time < s.cfg.CalibDuration {
			continue
		}
		cal, err := core.Calibrate(s.static, s.cfg.Grid.NumTags())
		if err != nil {
			return nil, fmt.Errorf("live: calibration failed: %w", err)
		}
		s.cal = cal
		s.static = nil
		pipe := core.NewPipeline(s.cfg.Grid, cal)
		pipe.Obs = s.cfg.Obs
		s.rec = core.NewRecognizer(pipe, nil)
	}
	if i >= n {
		return nil, nil
	}
	rest := b.Slice(i, n)
	for _, t := range rest.Times {
		if t > s.lastTime {
			s.lastTime = t
		}
	}
	return s.rec.IngestBatch(&rest), nil
}

// Ingest feeds one reading. While the prelude is still accumulating it
// returns no events; once the prelude covers CalibDuration it
// calibrates (an error here is terminal for the stream) and every
// later reading streams through the recognizer.
func (s *Stream) Ingest(rd core.Reading) ([]core.Event, error) {
	if rd.Time > s.lastTime {
		s.lastTime = rd.Time
	}
	if s.rec == nil {
		s.static = append(s.static, rd)
		if rd.Time < s.cfg.CalibDuration {
			return nil, nil
		}
		cal, err := core.Calibrate(s.static, s.cfg.Grid.NumTags())
		if err != nil {
			return nil, fmt.Errorf("live: calibration failed: %w", err)
		}
		s.cal = cal
		s.static = nil
		pipe := core.NewPipeline(s.cfg.Grid, cal)
		pipe.Obs = s.cfg.Obs
		s.rec = core.NewRecognizer(pipe, nil)
		return nil, nil
	}
	return s.rec.Ingest(rd), nil
}

// Flush declares the stream over, forcing any pending stroke and
// letter out (no-op before calibration).
func (s *Stream) Flush() []core.Event {
	if s.rec == nil {
		return nil
	}
	return s.rec.Flush(s.lastTime + s.cfg.FlushAfter)
}

// Calibrated reports whether the static prelude completed.
func (s *Stream) Calibrated() bool { return s.rec != nil }

// Checkpoint exports the stream's durable recovery state: its
// calibration plus the frame cursor recognition would resume from.
// ok is false before calibration — an uncalibrated stream has nothing
// worth persisting.
func (s *Stream) Checkpoint(name string) (supervise.Checkpoint, bool) {
	if s.cal == nil || s.rec == nil {
		return supervise.Checkpoint{}, false
	}
	return supervise.Checkpoint{
		Stream:      name,
		StreamTime:  s.lastTime,
		FrameCursor: s.rec.FrameCursor(),
		Calibration: s.cal.Snapshot(),
	}, true
}

// RestoreStream rebuilds a stream from a checkpoint, skipping the
// calibration prelude: the restored recognizer resumes at the
// checkpoint's frame cursor, dropping older (already recognized)
// readings as late. The checkpoint's calibration is revalidated and
// must match the configured grid; any mismatch returns an error so the
// caller falls back to live calibration.
func RestoreStream(cfg Config, cp supervise.Checkpoint) (*Stream, error) {
	cfg = cfg.withDefaults()
	cal, err := core.RestoreCalibration(cp.Calibration)
	if err != nil {
		return nil, fmt.Errorf("live: restore: %w", err)
	}
	if cal.NumTags() != cfg.Grid.NumTags() {
		return nil, fmt.Errorf("live: restore: checkpoint has %d tags, grid wants %d",
			cal.NumTags(), cfg.Grid.NumTags())
	}
	pipe := core.NewPipeline(cfg.Grid, cal)
	pipe.Obs = cfg.Obs
	rec := core.NewRecognizer(pipe, nil)
	rec.SkipTo(cp.FrameCursor)
	return &Stream{cfg: cfg, cal: cal, rec: rec, lastTime: cp.StreamTime}, nil
}

// DeadTags returns how many tags calibration flagged dead (0 before
// calibration).
func (s *Stream) DeadTags() int {
	if s.cal == nil {
		return 0
	}
	return s.cal.DeadCount()
}

// LastTime returns the largest reading timestamp seen.
func (s *Stream) LastTime() time.Duration { return s.lastTime }
