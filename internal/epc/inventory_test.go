package epc

import (
	"math/rand"
	"testing"
	"time"
)

func alwaysOn(int, time.Duration) bool { return true }

func TestAllPoweredTagsGetRead(t *testing.T) {
	s := NewSimulator(Config{}, rand.New(rand.NewSource(1)))
	counts := make([]int, 25)
	s.Run(0, 2*time.Second, 25, alwaysOn, func(i int, _ time.Duration) { counts[i]++ })
	for i, c := range counts {
		if c == 0 {
			t.Errorf("tag %d never read in 2 s", i)
		}
	}
}

func TestAggregateReadRateRealistic(t *testing.T) {
	// An R420-class reader with ~25 tags singulates a few hundred
	// times per second.
	s := NewSimulator(Config{}, rand.New(rand.NewSource(2)))
	var reads int
	s.Run(0, 5*time.Second, 25, alwaysOn, func(int, time.Duration) { reads++ })
	rate := float64(reads) / 5
	if rate < 200 || rate > 500 {
		t.Errorf("aggregate rate = %v reads/s, want 200–500", rate)
	}
	if got := s.ObservedRate(5 * time.Second); got != rate {
		t.Errorf("ObservedRate = %v, want %v", got, rate)
	}
	if s.ObservedRate(0) != 0 {
		t.Error("ObservedRate with zero elapsed should be 0")
	}
}

func TestPerTagSamplingNonUniform(t *testing.T) {
	// The MAC produces jittered per-tag timestamps, not a fixed clock:
	// consecutive gaps for one tag should vary.
	s := NewSimulator(Config{}, rand.New(rand.NewSource(3)))
	var times []time.Duration
	s.Run(0, 3*time.Second, 25, alwaysOn, func(i int, now time.Duration) {
		if i == 7 {
			times = append(times, now)
		}
	})
	if len(times) < 10 {
		t.Fatalf("tag 7 read only %d times", len(times))
	}
	minGap, maxGap := time.Hour, time.Duration(0)
	for i := 1; i < len(times); i++ {
		g := times[i] - times[i-1]
		if g < minGap {
			minGap = g
		}
		if g > maxGap {
			maxGap = g
		}
	}
	if maxGap < minGap*2 {
		t.Errorf("gaps suspiciously uniform: min %v max %v", minGap, maxGap)
	}
}

func TestUnpoweredTagNeverRead(t *testing.T) {
	s := NewSimulator(Config{}, rand.New(rand.NewSource(4)))
	dead := 3
	s.Run(0, time.Second, 10, func(i int, _ time.Duration) bool { return i != dead },
		func(i int, _ time.Duration) {
			if i == dead {
				t.Fatal("unpowered tag was read")
			}
		})
}

func TestMidRoundPowerLossSuppressesRead(t *testing.T) {
	// A tag powered at round start but unpowered at its slot (hand
	// loading it) must not produce a read.
	s := NewSimulator(Config{}, rand.New(rand.NewSource(5)))
	cutoff := 500 * time.Millisecond
	var after int
	s.Run(0, time.Second, 5, func(i int, now time.Duration) bool {
		return i != 0 || now < cutoff
	}, func(i int, now time.Duration) {
		if i == 0 && now > cutoff+10*time.Millisecond {
			after++
		}
	})
	if after > 0 {
		t.Errorf("tag 0 read %d times after losing power", after)
	}
}

func TestNoTagsNoProgressBeyondIdleRounds(t *testing.T) {
	s := NewSimulator(Config{}, rand.New(rand.NewSource(6)))
	end := s.Run(0, 100*time.Millisecond, 0, alwaysOn, func(int, time.Duration) {
		t.Fatal("read emitted with zero tags")
	})
	if end != 0 {
		t.Errorf("clock advanced with zero tags: %v", end)
	}
	// All tags present but none respond: clock still advances (idle
	// rounds), no reads.
	end = s.Run(0, 50*time.Millisecond, 4,
		func(int, time.Duration) bool { return false },
		func(int, time.Duration) { t.Fatal("read emitted with no responders") })
	if end < 50*time.Millisecond {
		t.Errorf("clock stuck at %v with silent tags", end)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := NewSimulator(Config{}, rand.New(rand.NewSource(seed)))
		var times []time.Duration
		s.Run(0, time.Second, 10, alwaysOn, func(_ int, now time.Duration) {
			times = append(times, now)
		})
		return times
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestQAdaptationKeepsCollisionsBounded(t *testing.T) {
	// With 100 tags and QInit=0 the Q-algorithm must grow Q; the
	// steady-state collision fraction should stay well below dominance.
	s := NewSimulator(Config{QInit: 1}, rand.New(rand.NewSource(7)))
	s.Run(0, 5*time.Second, 100, alwaysOn, func(int, time.Duration) {})
	if s.Successes == 0 {
		t.Fatal("no successes")
	}
	collFrac := float64(s.Collisions) / float64(s.Collisions+s.Successes)
	if collFrac > 0.75 {
		t.Errorf("collision fraction = %v, Q-adaptation ineffective", collFrac)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.fillDefaults()
	if c != DefaultConfig() {
		t.Errorf("fillDefaults = %+v, want %+v", c, DefaultConfig())
	}
	// Partial config keeps the explicit value.
	c2 := Config{QInit: 6}
	c2.fillDefaults()
	if c2.QInit != 6 || c2.TSuccess != DefaultConfig().TSuccess {
		t.Errorf("partial fill wrong: %+v", c2)
	}
}

func TestFastConfigRaisesRate(t *testing.T) {
	// §VI: shorter tag packets raise the aggregate read rate — the
	// low-throughput mitigation for fast hand motion.
	run := func(cfg Config, seed int64) float64 {
		s := NewSimulator(cfg, rand.New(rand.NewSource(seed)))
		var reads int
		s.Run(0, 3*time.Second, 25, alwaysOn, func(int, time.Duration) { reads++ })
		return float64(reads) / 3
	}
	def := run(DefaultConfig(), 1)
	fast := run(FastConfig(), 1)
	if fast < 1.6*def {
		t.Errorf("fast MAC rate %v should be well above default %v", fast, def)
	}
}
