// Package epc simulates the EPCglobal Class-1 Generation-2 inventory
// process (the air protocol RFIPad rides on, §I/§II-A). It decides
// *when* each tag is read: the reader runs slotted-ALOHA rounds whose
// slot count adapts via the Q-algorithm, tags pick random slots,
// collisions waste time, and the resulting per-tag read timestamps are
// non-uniform — exactly the sampling process the paper's segmenter has
// to cope with (§III-C1) and the source of the undersampling that makes
// fast hand motions hard (§VI "Low throughput", citing Blink).
package epc

import (
	"math/rand"
	"time"
)

// Config sets the MAC timing. The defaults approximate an Impinj
// Speedway R420 in a dense-reader profile: with 25 tags it yields an
// aggregate read rate of roughly 400 reads/s, i.e. ~16 reads/s per tag.
type Config struct {
	// QInit is the initial Q exponent (slots per round = 2^Q).
	QInit int
	// QStep is the Q-algorithm's floating-point adjustment constant C
	// (typical 0.1–0.5).
	QStep float64
	// TSuccess is the airtime of a successful singulation (Query/
	// QueryRep + RN16 + ACK + PC/EPC/CRC16).
	TSuccess time.Duration
	// TCollision is the airtime wasted on a collided RN16.
	TCollision time.Duration
	// TEmpty is the airtime of an idle slot.
	TEmpty time.Duration
}

// DefaultConfig returns the R420-like timing used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		QInit:      4,
		QStep:      0.35,
		TSuccess:   2 * time.Millisecond,
		TCollision: 500 * time.Microsecond,
		TEmpty:     150 * time.Microsecond,
	}
}

// FastConfig returns the §VI "low throughput" mitigation: shorter tag
// packets (FM0 instead of Miller-4 backscatter, truncated replies)
// roughly double the aggregate read rate, trading link margin for
// sampling density. The paper suggests exactly this — "reducing the
// tag packet length" — to keep up with fast hand motion.
func FastConfig() Config {
	return Config{
		QInit:      4,
		QStep:      0.35,
		TSuccess:   900 * time.Microsecond,
		TCollision: 300 * time.Microsecond,
		TEmpty:     100 * time.Microsecond,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.QInit <= 0 {
		c.QInit = d.QInit
	}
	if c.QStep <= 0 {
		c.QStep = d.QStep
	}
	if c.TSuccess <= 0 {
		c.TSuccess = d.TSuccess
	}
	if c.TCollision <= 0 {
		c.TCollision = d.TCollision
	}
	if c.TEmpty <= 0 {
		c.TEmpty = d.TEmpty
	}
}

// RespondsFunc reports whether tag i can respond at the given instant
// (i.e. whether it harvests enough power — the forward-link limit).
type RespondsFunc func(i int, now time.Duration) bool

// EmitFunc receives each successful read: the tag index and the instant
// the read completed.
type EmitFunc func(i int, now time.Duration)

// Simulator runs C1G2 inventory rounds over a fixed tag population.
type Simulator struct {
	cfg Config
	rng *rand.Rand
	qfp float64

	// Stats accumulated across Run calls.
	Slots      int // total slots elapsed
	Successes  int // singulations
	Collisions int // collided slots
	Empties    int // idle slots
}

// NewSimulator builds a MAC simulator. rng drives slot selection and
// must not be nil.
func NewSimulator(cfg Config, rng *rand.Rand) *Simulator {
	cfg.fillDefaults()
	return &Simulator{cfg: cfg, rng: rng, qfp: float64(cfg.QInit)}
}

// Run simulates inventory rounds from start until the clock passes end,
// over numTags tags. responds gates each tag's participation per round;
// emit receives every successful read. The final clock value is
// returned (≥ end unless numTags == 0).
func (s *Simulator) Run(start, end time.Duration, numTags int, responds RespondsFunc, emit EmitFunc) time.Duration {
	now := start
	if numTags <= 0 {
		return now
	}
	slots := make([]int, 0, numTags) // slot choice per participating tag
	idx := make([]int, 0, numTags)   // tag index per participant
	for now < end {
		q := int(s.qfp + 0.5)
		if q < 0 {
			q = 0
		} else if q > 15 {
			q = 15
		}
		nSlots := 1 << uint(q)

		// Tags that are powered at the start of the round pick slots.
		slots = slots[:0]
		idx = idx[:0]
		for i := 0; i < numTags; i++ {
			if responds(i, now) {
				slots = append(slots, s.rng.Intn(nSlots))
				idx = append(idx, i)
			}
		}

		if len(idx) == 0 {
			// Nothing can answer: the reader still cycles an empty
			// round before re-querying.
			now += time.Duration(nSlots) * s.cfg.TEmpty
			s.Slots += nSlots
			s.Empties += nSlots
			s.qfp -= s.cfg.QStep * float64(nSlots)
			if s.qfp < 0 {
				s.qfp = 0
			}
			continue
		}

		for slot := 0; slot < nSlots && now < end; slot++ {
			var count, who int
			for j, sl := range slots {
				if sl == slot {
					count++
					who = idx[j]
				}
			}
			s.Slots++
			switch {
			case count == 0:
				now += s.cfg.TEmpty
				s.Empties++
				s.qfp -= s.cfg.QStep
				if s.qfp < 0 {
					s.qfp = 0
				}
			case count == 1:
				// The tag must still be powered when acknowledged;
				// a hand loading it mid-round suppresses the read.
				if responds(who, now) {
					now += s.cfg.TSuccess
					s.Successes++
					emit(who, now)
				} else {
					now += s.cfg.TCollision
					s.Collisions++
				}
			default:
				now += s.cfg.TCollision
				s.Collisions++
				s.qfp += s.cfg.QStep
				if s.qfp > 15 {
					s.qfp = 15
				}
			}
		}
	}
	return now
}

// ObservedRate returns the aggregate successful read rate (reads per
// second) accumulated so far over the given elapsed simulated time.
func (s *Simulator) ObservedRate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.Successes) / elapsed.Seconds()
}
