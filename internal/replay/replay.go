// Package replay turns a fixed, time-sorted capture of tag reports
// into a paced, seekable llrp.ReportSource: the backbone of
// rfipad-readerd (which replays a synthesized RFIPad session in place
// of real Impinj hardware) and of end-to-end resilience tests. A
// Source supports llrp's stream-resume protocol — a reconnecting
// client's StartROSpec carries its last-seen timestamp and the server
// seeks the fresh Source there, replaying a small overlap window
// instead of the whole capture.
package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rfipad"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
)

// DefaultResumeOverlap is how far before a resume point replay
// restarts: ties on the resume timestamp are guaranteed delivery and
// the pipeline deduplicates the overlap.
const DefaultResumeOverlap = 250 * time.Millisecond

// Options tunes a Source.
type Options struct {
	// Batch is the report batching window (default 50 ms).
	Batch time.Duration
	// Speed is the replay speed factor relative to real time (default
	// 1; higher is faster).
	Speed float64
	// ResumeOverlap is how far before a Seek target replay restarts
	// (default DefaultResumeOverlap).
	ResumeOverlap time.Duration
	// OnComplete, when set, runs once when the capture is exhausted.
	OnComplete func()
	// Obs selects the metrics registry pacing telemetry lands in (nil
	// = obs.Default()).
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Batch <= 0 {
		o.Batch = 50 * time.Millisecond
	}
	if o.Speed <= 0 {
		o.Speed = 1
	}
	if o.ResumeOverlap <= 0 {
		o.ResumeOverlap = DefaultResumeOverlap
	}
	return o
}

// Source replays a capture in paced batches. It implements
// llrp.SeekableSource.
type Source struct {
	reports []llrp.TagReport
	opts    Options

	// pacingLag records how far behind the scaled-real-time schedule
	// each batch was served; a saturated writer or a slow consumer
	// shows up here long before reports are visibly late downstream.
	pacingLag *obs.Histogram
	batches   *obs.Counter

	mu       sync.Mutex
	pos      int
	started  time.Time
	base     time.Duration
	finished bool
}

// NewSource builds a paced source over reports, which must be sorted
// by timestamp (as Synthesize returns).
func NewSource(reports []llrp.TagReport, opts Options) *Source {
	opts = opts.withDefaults()
	r := obs.Or(opts.Obs)
	return &Source{
		reports: reports,
		opts:    opts,
		pacingLag: r.Histogram("replay_pacing_lag_seconds",
			"How far behind its scaled-real-time schedule each replayed batch was served.", nil),
		batches: r.Counter("replay_batches_total",
			"Report batches served by replay sources."),
	}
}

// Next implements llrp.ReportSource: it waits until the next batch's
// stream time has elapsed in scaled wall time, then returns it.
func (s *Source) Next() ([]llrp.TagReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.reports) {
		if !s.finished {
			s.finished = true
			if s.opts.OnComplete != nil {
				s.opts.OnComplete()
			}
		}
		return nil, false
	}
	if s.started.IsZero() {
		s.started = time.Now()
	}
	// Pace relative to the seek base so a resumed replay does not
	// re-serve the pre-resume wait.
	cut := s.reports[s.pos].Timestamp + s.opts.Batch
	wait := time.Duration(float64(cut-s.base)/s.opts.Speed) - time.Since(s.started)
	if wait > 0 {
		s.mu.Unlock()
		time.Sleep(wait)
		s.mu.Lock()
	} else {
		s.pacingLag.ObserveDuration(-wait)
	}
	start := s.pos
	for s.pos < len(s.reports) && s.reports[s.pos].Timestamp < cut {
		s.pos++
	}
	s.batches.Inc()
	return s.reports[start:s.pos], true
}

// Seek implements llrp.SeekableSource: replay restarts at the first
// report after resumeFrom − ResumeOverlap, so a reconnecting client
// sees a short duplicate window instead of a gap.
func (s *Source) Seek(resumeFrom time.Duration) {
	target := resumeFrom - s.opts.ResumeOverlap
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pos = sort.Search(len(s.reports), func(i int) bool {
		return s.reports[i].Timestamp > target
	})
	if s.pos < len(s.reports) {
		s.base = s.reports[s.pos].Timestamp
	}
	s.started = time.Time{}
}

// Synthesize builds a full RFIPad capture: a static prelude for
// calibration followed by a writer air-writing the word, with a quiet
// adjustment gap between letters so the online recognizer can close
// each one. The result is sorted by timestamp.
func Synthesize(seed int64, word string, prelude time.Duration) ([]llrp.TagReport, error) {
	return SynthesizeUser(seed, word, prelude, rfipad.User{})
}

// SynthesizeUser is Synthesize with an explicit writer profile — the
// scenario harness sweeps hand speed and per-user diversity through
// it. The zero User selects the median volunteer.
func SynthesizeUser(seed int64, word string, prelude time.Duration, writer rfipad.User) ([]llrp.TagReport, error) {
	sim, err := rfipad.NewSimulator(rfipad.SimulatorConfig{Seed: seed, Writer: writer})
	if err != nil {
		return nil, err
	}
	if prelude <= 0 {
		prelude = 3 * time.Second
	}
	var reports []llrp.TagReport
	add := func(rs []rfipad.Reading, offset time.Duration) time.Duration {
		end := offset
		for _, r := range rs {
			ts := offset + r.Time
			reports = append(reports, llrp.TagReport{
				EPC:       r.EPC,
				AntennaID: 1,
				PhaseRad:  r.Phase,
				RSSdBm:    r.RSS,
				DopplerHz: r.Doppler,
				Timestamp: ts,
			})
			if ts > end {
				end = ts
			}
		}
		return end
	}
	offset := add(sim.CollectStatic(prelude), 0)
	for i, ch := range word {
		rs, _, err := sim.WriteLetter(ch, seed*100+int64(i))
		if err != nil {
			return nil, fmt.Errorf("replay: synthesize %q: %w", ch, err)
		}
		offset = add(rs, offset+2*time.Second)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Timestamp < reports[j].Timestamp })
	return reports, nil
}
