package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMotionTally(t *testing.T) {
	tally := MotionTally{Trials: 20, Correct: 17, Wrong: 2, Missed: 1, Spurious: 1}
	if got := tally.Accuracy(); got != 0.85 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := tally.FNR(); got != 0.05 {
		t.Errorf("FNR = %v", got)
	}
	if got := tally.FPR(); got != 3.0/20 {
		t.Errorf("FPR = %v", got)
	}
	if s := tally.String(); !strings.Contains(s, "acc=0.850") {
		t.Errorf("String = %q", s)
	}

	var other MotionTally
	other.Add(tally)
	other.Add(tally)
	if other.Trials != 40 || other.Correct != 34 {
		t.Errorf("Add = %+v", other)
	}

	var empty MotionTally
	if !math.IsNaN(empty.Accuracy()) || !math.IsNaN(empty.FPR()) || !math.IsNaN(empty.FNR()) {
		t.Error("empty tally metrics should be NaN")
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion()
	c.Observe("a", "a")
	c.Observe("a", "a")
	c.Observe("a", "b")
	c.Observe("b", "b")
	if got := c.Accuracy(); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.LabelAccuracy("a"); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("LabelAccuracy(a) = %v", got)
	}
	if got := c.LabelAccuracy("b"); got != 1 {
		t.Errorf("LabelAccuracy(b) = %v", got)
	}
	if !math.IsNaN(c.LabelAccuracy("zz")) {
		t.Error("unseen label should be NaN")
	}
	if got := c.Count("a", "b"); got != 1 {
		t.Errorf("Count = %v", got)
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("Labels = %v", labels)
	}
	s := c.String()
	if !strings.Contains(s, "truth") || len(strings.Split(s, "\n")) < 3 {
		t.Errorf("String = %q", s)
	}
	if !math.IsNaN(NewConfusion().Accuracy()) {
		t.Error("empty confusion accuracy should be NaN")
	}
}

func TestSegmentationTally(t *testing.T) {
	s := SegmentationTally{Strokes: 50, Insertions: 5, Underfills: 3, Detected: 48}
	if got := s.InsertionRate(); got != 0.1 {
		t.Errorf("InsertionRate = %v", got)
	}
	if got := s.UnderfillRate(); got != 3.0/48 {
		t.Errorf("UnderfillRate = %v", got)
	}
	var sum SegmentationTally
	sum.Add(s)
	sum.Add(s)
	if sum.Strokes != 100 || sum.Insertions != 10 {
		t.Errorf("Add = %+v", sum)
	}
	var empty SegmentationTally
	if !math.IsNaN(empty.InsertionRate()) || !math.IsNaN(empty.UnderfillRate()) {
		t.Error("empty rates should be NaN")
	}
}

func TestClip(t *testing.T) {
	if got := clip("abcdef", 3); got != "abc" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("ab", 3); got != "ab" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("⊂⊃⊂⊃", 2); got != "⊂⊃" {
		t.Errorf("clip unicode = %q", got)
	}
}
