// Package metrics implements the evaluation metrics of §V: motion
// detection accuracy, false positive/negative rates, per-label
// confusion, and the segmentation-quality rates (insertion, underfill)
// of §V-C.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MotionTally accumulates trial outcomes for motion detection. One
// trial is one performed motion; the recognizer may detect it
// correctly, detect something else, miss it, or report extra motions.
type MotionTally struct {
	// Trials is the number of motions performed.
	Trials int
	// Correct counts trials whose single detection matched.
	Correct int
	// Wrong counts trials detected as a different motion.
	Wrong int
	// Missed counts trials with no detection at all.
	Missed int
	// Spurious counts detections beyond one per trial (and any
	// detection during a no-motion trial).
	Spurious int
}

// Add merges another tally.
func (t *MotionTally) Add(o MotionTally) {
	t.Trials += o.Trials
	t.Correct += o.Correct
	t.Wrong += o.Wrong
	t.Missed += o.Missed
	t.Spurious += o.Spurious
}

// Accuracy is the fraction of trials recognized correctly (the metric
// of Table I, Fig. 16, 18, 20). NaN with zero trials.
func (t MotionTally) Accuracy() float64 {
	if t.Trials == 0 {
		return math.NaN()
	}
	return float64(t.Correct) / float64(t.Trials)
}

// FPR is the fraction of falsely detected motions among all detections
// (§V-A: "the percentage of falsely detected motions"): wrong and
// spurious detections over total detections.
func (t MotionTally) FPR() float64 {
	detections := t.Correct + t.Wrong + t.Spurious
	if detections == 0 {
		return math.NaN()
	}
	return float64(t.Wrong+t.Spurious) / float64(detections)
}

// FNR is the fraction of performed motions that went undetected
// (§V-A: "the percentage of undetected motions").
func (t MotionTally) FNR() float64 {
	if t.Trials == 0 {
		return math.NaN()
	}
	return float64(t.Missed) / float64(t.Trials)
}

// String implements fmt.Stringer.
func (t MotionTally) String() string {
	return fmt.Sprintf("acc=%.3f fpr=%.3f fnr=%.3f (n=%d)", t.Accuracy(), t.FPR(), t.FNR(), t.Trials)
}

// Confusion is a label-by-label confusion matrix.
type Confusion struct {
	counts map[string]map[string]int
	labels map[string]bool
}

// NewConfusion returns an empty confusion matrix.
func NewConfusion() *Confusion {
	return &Confusion{
		counts: map[string]map[string]int{},
		labels: map[string]bool{},
	}
}

// Observe records one (truth, predicted) pair.
func (c *Confusion) Observe(truth, predicted string) {
	m := c.counts[truth]
	if m == nil {
		m = map[string]int{}
		c.counts[truth] = m
	}
	m[predicted]++
	c.labels[truth] = true
	c.labels[predicted] = true
}

// Labels returns the sorted label set.
func (c *Confusion) Labels() []string {
	out := make([]string, 0, len(c.labels))
	for l := range c.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of (truth, predicted) observations.
func (c *Confusion) Count(truth, predicted string) int {
	return c.counts[truth][predicted]
}

// Accuracy returns overall accuracy; NaN when empty.
func (c *Confusion) Accuracy() float64 {
	var correct, total int
	for truth, row := range c.counts {
		for pred, n := range row {
			total += n
			if truth == pred {
				correct += n
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(correct) / float64(total)
}

// LabelAccuracy returns the recall of one truth label; NaN when unseen.
func (c *Confusion) LabelAccuracy(truth string) float64 {
	row := c.counts[truth]
	var total int
	for _, n := range row {
		total += n
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(row[truth]) / float64(total)
}

// String renders the matrix with truth labels as rows.
func (c *Confusion) String() string {
	labels := c.Labels()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "truth\\pred")
	for _, l := range labels {
		fmt.Fprintf(&b, "%8s", clip(l, 7))
	}
	b.WriteByte('\n')
	for _, truth := range labels {
		fmt.Fprintf(&b, "%-10s", clip(truth, 9))
		for _, pred := range labels {
			fmt.Fprintf(&b, "%8d", c.Count(truth, pred))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n])
}

// SegmentationTally accumulates the stroke-segmentation quality metrics
// of §V-C.
type SegmentationTally struct {
	// Strokes is the number of ground-truth strokes performed.
	Strokes int
	// Insertions counts detections inside repositioning periods (the
	// numerator of the insertion rate).
	Insertions int
	// Underfills counts segmented strokes that failed to cover the
	// full ground-truth stroke extent.
	Underfills int
	// Detected counts ground-truth strokes matched by some detection.
	Detected int
}

// Add merges another tally.
func (s *SegmentationTally) Add(o SegmentationTally) {
	s.Strokes += o.Strokes
	s.Insertions += o.Insertions
	s.Underfills += o.Underfills
	s.Detected += o.Detected
}

// InsertionRate is the proportion of cases in which a stroke was
// detected within a repositioning period.
func (s SegmentationTally) InsertionRate() float64 {
	if s.Strokes == 0 {
		return math.NaN()
	}
	return float64(s.Insertions) / float64(s.Strokes)
}

// UnderfillRate is the proportion of segmented strokes that are
// incomplete.
func (s SegmentationTally) UnderfillRate() float64 {
	if s.Detected == 0 {
		return math.NaN()
	}
	return float64(s.Underfills) / float64(s.Detected)
}
