package hand

import (
	"math"
	"math/rand"
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/stroke"
)

// Canvas maps normalized writing coordinates onto the world: the
// letter-box [0,1]² lands on a rectangle of the tag plane. x grows
// along +x, y along +y, and the plane sits at z = Origin.Z.
type Canvas struct {
	// Origin is the world position of the letter-box corner (0,0).
	Origin geo.Vec3
	// Width and Height are the box dimensions in metres.
	Width, Height float64
}

// Point maps normalized coordinates (u,v) plus a height above the plane
// into world space.
func (c Canvas) Point(u, v, height float64) geo.Vec3 {
	return geo.V(c.Origin.X+u*c.Width, c.Origin.Y+v*c.Height, c.Origin.Z+height)
}

// Spec is one stroke to draw: a motion placed in a sub-box of the
// canvas.
type Spec struct {
	Motion stroke.Motion
	Box    stroke.Rect
}

// Segment is the ground truth for one drawn stroke within a Script.
type Segment struct {
	Motion     stroke.Motion
	Box        stroke.Rect
	Start, End time.Duration
}

// Script is a complete synthesized performance: the hand trajectory
// plus the ground-truth stroke segments (the strokes are separated by
// raised-hand adjustment intervals).
type Script struct {
	Path     *geo.Path
	Segments []Segment
}

// Duration returns the total script duration.
func (s *Script) Duration() time.Duration { return s.Path.Duration() }

// sampleStep is the synthesis sampling period (100 Hz — far denser
// than the MAC's read rate, so the channel sees a smooth trajectory).
const sampleStep = 10 * time.Millisecond

// clickDepth is how close to the plane a click push gets (m). Pushing
// much closer detunes the pressed tag into unreadability at any power.
const clickDepth = 0.02

// unitWaypoints returns the normalized waypoints of a motion in [0,1]²
// (y up), ordered in drawing order.
func unitWaypoints(m stroke.Motion) []geo.Vec3 {
	pts := stroke.Waypoints(m)
	out := make([]geo.Vec3, len(pts))
	for i, p := range pts {
		out[i] = geo.V(p.X, p.Y, 0)
	}
	return out
}

// Synthesizer draws motions for one user on one canvas.
type Synthesizer struct {
	User   User
	Canvas Canvas
	rng    *rand.Rand
}

// NewSynthesizer builds a Synthesizer; rng drives the human variability
// and must not be nil.
func NewSynthesizer(u User, c Canvas, rng *rand.Rand) *Synthesizer {
	return &Synthesizer{User: u, Canvas: c, rng: rng}
}

// boxCanvas returns the canvas restricted to a normalized sub-box.
func (s *Synthesizer) boxCanvas(b stroke.Rect) Canvas {
	return Canvas{
		Origin: geo.V(s.Canvas.Origin.X+b.X0*s.Canvas.Width,
			s.Canvas.Origin.Y+b.Y0*s.Canvas.Height,
			s.Canvas.Origin.Z),
		Width:  b.W() * s.Canvas.Width,
		Height: b.H() * s.Canvas.Height,
	}
}

// DrawMotion synthesizes one motion inside the normalized box. The
// returned path starts at t=0.
func (s *Synthesizer) DrawMotion(m stroke.Motion, box stroke.Rect) *geo.Path {
	cv := s.boxCanvas(box)
	if m.Shape == stroke.Click {
		return s.drawClick(cv)
	}

	unit := unitWaypoints(m)
	// Human imprecision: shift and lightly scale the stroke.
	dx := s.rng.NormFloat64() * s.User.Wobble
	dy := s.rng.NormFloat64() * s.User.Wobble
	scale := 1 + s.rng.NormFloat64()*0.05

	world := make([]geo.Vec3, len(unit))
	for i, p := range unit {
		u := 0.5 + (p.X-0.5)*scale
		v := 0.5 + (p.Y-0.5)*scale
		w := cv.Point(u, v, s.User.HoverHeight)
		world[i] = w.Add(geo.V(dx, dy, 0))
	}

	// Arc length → duration with this execution's speed.
	var length float64
	for i := 1; i < len(world); i++ {
		length += world[i].Dist(world[i-1])
	}
	speed := s.User.strokeSpeed(s.rng)
	dur := time.Duration(length / speed * float64(time.Second))
	if dur < 200*time.Millisecond {
		dur = 200 * time.Millisecond
	}

	var samples []geo.Sample
	for t := time.Duration(0); t <= dur; t += sampleStep {
		u := float64(t) / float64(dur)
		pos := geo.PolylinePoint(world, geo.MinimumJerk(u))
		// Small per-sample tremor, mostly vertical.
		pos = pos.Add(geo.V(
			s.rng.NormFloat64()*s.User.Wobble*0.3,
			s.rng.NormFloat64()*s.User.Wobble*0.3,
			s.rng.NormFloat64()*s.User.Wobble*0.6,
		))
		samples = append(samples, geo.Sample{T: t, P: pos})
	}
	return geo.NewPath(samples)
}

// drawClick synthesizes the push motion: the hand descends from the
// raised height toward the plane over the box centre and retracts.
func (s *Synthesizer) drawClick(cv Canvas) *geo.Path {
	top := s.User.RaiseHeight
	dur := time.Duration((0.9 + s.rng.Float64()*0.4) * float64(time.Second))
	cx := 0.5 + s.rng.NormFloat64()*s.User.Wobble/math.Max(cv.Width, 1e-6)
	cy := 0.5 + s.rng.NormFloat64()*s.User.Wobble/math.Max(cv.Height, 1e-6)
	var samples []geo.Sample
	for t := time.Duration(0); t <= dur; t += sampleStep {
		u := float64(t) / float64(dur)
		// Bell-shaped descent: down and back up.
		h := top - (top-clickDepth)*math.Sin(math.Pi*geo.MinimumJerk(u))
		pos := cv.Point(cx, cy, h)
		pos = pos.Add(geo.V(0, 0, s.rng.NormFloat64()*s.User.Wobble*0.5))
		samples = append(samples, geo.Sample{T: t, P: pos})
	}
	return geo.NewPath(samples)
}

// transit synthesizes the adjustment interval between strokes
// (§III-C1): the hand ascends from `from`, travels at the raised
// height, holds above the next start while the writer re-orients, and
// descends quickly onto `to`. Keeping the hold at the raised height is
// what makes the interval radio-quiet — the behaviour the paper's
// segmentation depends on (and the §V-C advice to "raise the arm when
// adjusting").
func (s *Synthesizer) transit(from, to geo.Vec3) *geo.Path {
	raise := s.Canvas.Origin.Z + s.User.RaiseHeight
	fromUp := from
	fromUp.Z = raise
	toUp := to
	toUp.Z = raise
	speed := s.User.strokeSpeed(s.rng) * 1.4 // repositioning is quicker

	phase := func(a, b geo.Vec3, minDur time.Duration) []geo.Sample {
		dur := time.Duration(a.Dist(b) / speed * float64(time.Second))
		if dur < minDur {
			dur = minDur
		}
		var out []geo.Sample
		for t := time.Duration(0); t <= dur; t += sampleStep {
			u := geo.MinimumJerk(float64(t) / float64(dur))
			pos := a.Lerp(b, u)
			pos = pos.Add(geo.V(
				s.rng.NormFloat64()*s.User.Wobble*0.4,
				s.rng.NormFloat64()*s.User.Wobble*0.4,
				s.rng.NormFloat64()*s.User.Wobble*0.6,
			))
			out = append(out, geo.Sample{T: t, P: pos})
		}
		return out
	}

	path := geo.NewPath(phase(from, fromUp, 200*time.Millisecond))
	path = path.Concat(geo.NewPath(phase(fromUp, toUp, 200*time.Millisecond)), sampleStep)
	holdDur := time.Duration(s.User.pause(s.rng) * float64(time.Second))
	path = path.Concat(geo.NewPath(phase(toUp, toUp, holdDur)), sampleStep)
	path = path.Concat(geo.NewPath(phase(toUp, to, 250*time.Millisecond)), sampleStep)
	return path
}

// Write synthesizes a sequence of strokes with adjustment intervals in
// between, starting with a lead-in hold above the first stroke and
// ending with a lead-out. The ground-truth segments cover exactly the
// stroke portions.
func (s *Synthesizer) Write(specs []Spec) *Script {
	script := &Script{Path: &geo.Path{}}
	if len(specs) == 0 {
		return script
	}

	// Lead-in: hold raised above the first stroke's start.
	first := s.DrawMotion(specs[0].Motion, specs[0].Box)
	leadStart := first.Start()
	leadStart.Z = s.Canvas.Origin.Z + s.User.RaiseHeight
	lead := geo.NewPath([]geo.Sample{
		{T: 0, P: leadStart},
		{T: 400 * time.Millisecond, P: leadStart},
	})
	script.Path = lead

	prevEnd := leadStart
	for i, spec := range specs {
		strokePath := s.DrawMotion(spec.Motion, spec.Box)
		// Transit from wherever we are to the stroke start.
		tr := s.transit(prevEnd, strokePath.Start())
		script.Path = script.Path.Concat(tr, sampleStep)
		start := script.Path.Samples()[script.Path.Len()-1].T + sampleStep
		script.Path = script.Path.Concat(strokePath, sampleStep)
		end := script.Path.Samples()[script.Path.Len()-1].T
		script.Segments = append(script.Segments, Segment{
			Motion: spec.Motion,
			Box:    spec.Box,
			Start:  start,
			End:    end,
		})
		prevEnd = strokePath.End()
		_ = i
	}

	// Lead-out: raise and hold.
	out := prevEnd
	out.Z = s.Canvas.Origin.Z + s.User.RaiseHeight
	leadOut := geo.NewPath([]geo.Sample{
		{T: 0, P: prevEnd.Lerp(out, 0.5)},
		{T: 300 * time.Millisecond, P: out},
		{T: 700 * time.Millisecond, P: out},
	})
	script.Path = script.Path.Concat(leadOut, sampleStep)
	return script
}

// DrawOne is a convenience wrapper producing a Script with a single
// stroke spanning the whole canvas.
func (s *Synthesizer) DrawOne(m stroke.Motion) *Script {
	return s.Write([]Spec{{Motion: m, Box: stroke.Unit}})
}
