package hand

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/stroke"
)

func testCanvas() Canvas {
	return Canvas{Origin: geo.V(-0.2, -0.2, 0), Width: 0.4, Height: 0.4}
}

func newSynth(seed int64) *Synthesizer {
	return NewSynthesizer(DefaultUser(), testCanvas(), rand.New(rand.NewSource(seed)))
}

func TestVolunteersPanel(t *testing.T) {
	users := Volunteers()
	if len(users) != 10 {
		t.Fatalf("panel size = %d, want 10", len(users))
	}
	// #6 and #9 are the fast writers of Fig. 20.
	median := DefaultUser().Speed
	if users[5].Speed < 1.5*median || users[8].Speed < 1.5*median {
		t.Error("users #6/#9 should be markedly faster")
	}
	names := map[string]bool{}
	for _, u := range users {
		if names[u.Name] {
			t.Fatalf("duplicate name %q", u.Name)
		}
		names[u.Name] = true
		if u.HeightM < 1.5 || u.HeightM > 1.9 || u.ArmLengthM < 0.5 || u.ArmLengthM > 0.75 {
			t.Errorf("%s physique out of the paper's ranges: %+v", u.Name, u)
		}
	}
}

func TestDrawMotionEndpoints(t *testing.T) {
	s := newSynth(1)
	tests := []struct {
		name       string
		m          stroke.Motion
		start, end geo.Vec3 // expected normalized endpoints (x,y)
	}{
		{"horiz-fwd", stroke.M(stroke.Horizontal, stroke.Forward), geo.V(0, 0.5, 0), geo.V(1, 0.5, 0)},
		{"horiz-rev", stroke.M(stroke.Horizontal, stroke.Reverse), geo.V(1, 0.5, 0), geo.V(0, 0.5, 0)},
		{"vert-fwd", stroke.M(stroke.Vertical, stroke.Forward), geo.V(0.5, 1, 0), geo.V(0.5, 0, 0)},
		{"slashup-fwd", stroke.M(stroke.SlashUp, stroke.Forward), geo.V(1, 1, 0), geo.V(0, 0, 0)},
		{"slashdown-rev", stroke.M(stroke.SlashDown, stroke.Reverse), geo.V(1, 0, 0), geo.V(0, 1, 0)},
	}
	cv := testCanvas()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := s.DrawMotion(tt.m, stroke.Unit)
			if p.Len() < 10 {
				t.Fatalf("too few samples: %d", p.Len())
			}
			wantStart := cv.Point(tt.start.X, tt.start.Y, s.User.HoverHeight)
			wantEnd := cv.Point(tt.end.X, tt.end.Y, s.User.HoverHeight)
			if d := p.Start().Dist(wantStart); d > 0.05 {
				t.Errorf("start %v, want ≈%v (off %v m)", p.Start(), wantStart, d)
			}
			if d := p.End().Dist(wantEnd); d > 0.05 {
				t.Errorf("end %v, want ≈%v (off %v m)", p.End(), wantEnd, d)
			}
		})
	}
}

func TestDrawMotionArcsOpenCorrectly(t *testing.T) {
	s := newSynth(2)
	cv := testCanvas()
	// ⊂ bulges left: min x well left of centre, and never crosses far
	// right at mid-height. ⊃ mirrors it.
	arcL := s.DrawMotion(stroke.M(stroke.ArcLeft, stroke.Forward), stroke.Unit)
	arcR := s.DrawMotion(stroke.M(stroke.ArcRight, stroke.Forward), stroke.Unit)
	minXL, maxXR := math.Inf(1), math.Inf(-1)
	for _, sm := range arcL.Samples() {
		minXL = math.Min(minXL, sm.P.X)
	}
	for _, sm := range arcR.Samples() {
		maxXR = math.Max(maxXR, sm.P.X)
	}
	cx := cv.Origin.X + cv.Width/2
	if minXL >= cx-0.1 {
		t.Errorf("⊂ leftmost x = %v, want well left of centre %v", minXL, cx)
	}
	if maxXR <= cx+0.1 {
		t.Errorf("⊃ rightmost x = %v, want well right of centre %v", maxXR, cx)
	}
	// Forward arcs start near the top and end near the bottom.
	if arcL.Start().Y <= arcL.End().Y {
		t.Error("⊂ forward should start above its end")
	}
	if arcR.Start().Y <= arcR.End().Y {
		t.Error("⊃ forward should start above its end")
	}
}

func TestDrawClickDipsTowardPlane(t *testing.T) {
	s := newSynth(3)
	p := s.DrawMotion(stroke.M(stroke.Click, 0), stroke.Unit)
	minZ := math.Inf(1)
	for _, sm := range p.Samples() {
		minZ = math.Min(minZ, sm.P.Z)
	}
	if minZ > 0.03 {
		t.Errorf("click lowest z = %v, want a push within ~2 cm of plane", minZ)
	}
	// Starts and ends raised.
	if p.Start().Z < 0.08 || p.End().Z < 0.08 {
		t.Errorf("click should start/end raised: start %v end %v", p.Start().Z, p.End().Z)
	}
	// Horizontal drift is tiny.
	if dx := math.Abs(p.Start().X - p.End().X); dx > 0.02 {
		t.Errorf("click drifted %v m in x", dx)
	}
}

func TestStrokeDurationsHumanlike(t *testing.T) {
	// Fig. 21: most strokes complete within ~2 s; arcs take longer
	// than straight strokes (longer trail).
	s := newSynth(4)
	straight := s.DrawMotion(stroke.M(stroke.Vertical, stroke.Forward), stroke.Unit)
	var arcTotal, strTotal time.Duration
	for i := 0; i < 10; i++ {
		arcTotal += s.DrawMotion(stroke.M(stroke.ArcLeft, stroke.Forward), stroke.Unit).Duration()
		strTotal += s.DrawMotion(stroke.M(stroke.Vertical, stroke.Forward), stroke.Unit).Duration()
	}
	if straight.Duration() < 500*time.Millisecond || straight.Duration() > 4*time.Second {
		t.Errorf("stroke duration = %v, want human-scale", straight.Duration())
	}
	if arcTotal <= strTotal {
		t.Errorf("arcs (%v) should take longer than straight strokes (%v)", arcTotal, strTotal)
	}
}

func TestFastUserIsFaster(t *testing.T) {
	slow := NewSynthesizer(Volunteers()[0], testCanvas(), rand.New(rand.NewSource(5)))
	fast := NewSynthesizer(Volunteers()[5], testCanvas(), rand.New(rand.NewSource(5)))
	var slowTotal, fastTotal time.Duration
	for i := 0; i < 10; i++ {
		slowTotal += slow.DrawMotion(stroke.M(stroke.Horizontal, stroke.Forward), stroke.Unit).Duration()
		fastTotal += fast.DrawMotion(stroke.M(stroke.Horizontal, stroke.Forward), stroke.Unit).Duration()
	}
	if fastTotal >= slowTotal {
		t.Errorf("fast user total %v >= slow user %v", fastTotal, slowTotal)
	}
}

func TestWriteScriptStructure(t *testing.T) {
	s := newSynth(6)
	// An "H": |, −, | (the paper's running example, Fig. 9).
	specs := []Spec{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0, 0, 0.3, 1)},
		{Motion: stroke.M(stroke.Horizontal, stroke.Forward), Box: stroke.R(0, 0.35, 1, 0.65)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.7, 0, 1, 1)},
	}
	script := s.Write(specs)
	if len(script.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(script.Segments))
	}
	// Segments are ordered, non-overlapping, with gaps (the adjustment
	// intervals) in between.
	for i, seg := range script.Segments {
		if seg.End <= seg.Start {
			t.Errorf("segment %d empty: %v–%v", i, seg.Start, seg.End)
		}
		if i > 0 {
			gap := seg.Start - script.Segments[i-1].End
			if gap < 200*time.Millisecond {
				t.Errorf("adjustment interval %d only %v", i, gap)
			}
		}
		if seg.Motion != specs[i].Motion {
			t.Errorf("segment %d motion %v, want %v", i, seg.Motion, specs[i].Motion)
		}
	}
	// During adjustment intervals the hand is raised well above hover.
	seg0, seg1 := script.Segments[0], script.Segments[1]
	mid := seg0.End + (seg1.Start-seg0.End)/2
	pos, _ := script.Path.At(mid)
	if pos.Z < s.User.HoverHeight+0.02 {
		t.Errorf("hand not raised during adjustment: z = %v", pos.Z)
	}
	// During strokes the hand is at hover height.
	strokeMid := seg1.Start + (seg1.End-seg1.Start)/2
	pos, _ = script.Path.At(strokeMid)
	if math.Abs(pos.Z-s.User.HoverHeight) > 0.03 {
		t.Errorf("hand not at hover height mid-stroke: z = %v", pos.Z)
	}
	if script.Duration() <= 0 {
		t.Error("script has no duration")
	}
}

func TestWriteEmpty(t *testing.T) {
	s := newSynth(7)
	script := s.Write(nil)
	if len(script.Segments) != 0 || script.Path.Len() != 0 {
		t.Error("empty spec list should produce empty script")
	}
}

func TestDrawOne(t *testing.T) {
	s := newSynth(8)
	script := s.DrawOne(stroke.M(stroke.SlashUp, stroke.Forward))
	if len(script.Segments) != 1 {
		t.Fatalf("segments = %d", len(script.Segments))
	}
	if script.Segments[0].Box != stroke.Unit {
		t.Error("DrawOne should span the unit box")
	}
}

func TestScatterers(t *testing.T) {
	s := newSynth(9)
	script := s.DrawOne(stroke.M(stroke.Horizontal, stroke.Forward))
	body := Body{ShoulderPos: geo.V(0, 0.6, 0.3)}
	mid := script.Segments[0].Start + (script.Segments[0].End-script.Segments[0].Start)/2
	scs := Scatterers(script, body, mid)
	if len(scs) != 2 {
		t.Fatalf("scatterers = %d, want hand+arm", len(scs))
	}
	handSc, armSc := scs[0], scs[1]
	if handSc.CouplingRadius <= 0 || handSc.Reflectivity <= 0 {
		t.Error("hand scatterer missing coupling")
	}
	// Mid-stroke the hand is moving horizontally.
	if math.Abs(handSc.Vel.X) < 0.05 {
		t.Errorf("hand velocity = %v, want horizontal motion", handSc.Vel)
	}
	// The arm trails from the hand toward the body, higher up.
	if armSc.Pos.Y <= handSc.Pos.Y {
		t.Error("arm should sit between hand and body (+y)")
	}
	if armSc.Pos.Z <= handSc.Pos.Z {
		t.Error("arm should ride above the hand")
	}
	if Scatterers(&Script{Path: &geo.Path{}}, body, 0) != nil {
		t.Error("empty script should give no scatterers")
	}
}

func TestKinectTrack(t *testing.T) {
	s := newSynth(10)
	script := s.DrawOne(stroke.M(stroke.SlashDown, stroke.Forward))
	k := DefaultKinect()
	track := k.Track(script.Path, rand.New(rand.NewSource(11)))
	// ~30 fps sampling.
	wantN := int(script.Path.Duration()/(33*time.Millisecond)) + 1
	if diff := track.Len() - wantN; diff < -3 || diff > 3 {
		t.Errorf("track samples = %d, want ≈%d", track.Len(), wantN)
	}
	// The noisy track stays close to the truth.
	rmse := TrajectoryRMSE(script.Path, track, 50*time.Millisecond)
	if rmse > 0.02 {
		t.Errorf("Kinect RMSE = %v m, want < 2 cm", rmse)
	}
	// Noiseless track is exact at sample instants.
	clean := k.Track(script.Path, nil)
	if r := TrajectoryRMSE(script.Path, clean, 33*time.Millisecond); r > 0.003 {
		t.Errorf("noiseless RMSE = %v", r)
	}
}

func TestTrajectoryRMSEEdgeCases(t *testing.T) {
	empty := &geo.Path{}
	p := geo.NewPath([]geo.Sample{{T: 0, P: geo.V(0, 0, 0)}, {T: time.Second, P: geo.V(1, 0, 0)}})
	if !math.IsInf(TrajectoryRMSE(empty, p, time.Millisecond), 1) {
		t.Error("empty path should give +Inf")
	}
	if !math.IsInf(TrajectoryRMSE(p, p, 0), 1) {
		t.Error("zero period should give +Inf")
	}
	if got := TrajectoryRMSE(p, p, 100*time.Millisecond); got != 0 {
		t.Errorf("self RMSE = %v", got)
	}
	q := p.Shift(geo.V(0, 0.3, 0))
	if got := TrajectoryRMSE(p, q, 100*time.Millisecond); !(got > 0.29 && got < 0.31) {
		t.Errorf("shifted RMSE = %v, want 0.3", got)
	}
}

func TestSynthDeterministicBySeed(t *testing.T) {
	a := newSynth(42).DrawOne(stroke.M(stroke.ArcRight, stroke.Reverse))
	b := newSynth(42).DrawOne(stroke.M(stroke.ArcRight, stroke.Reverse))
	if a.Path.Len() != b.Path.Len() {
		t.Fatal("lengths differ for same seed")
	}
	as, bs := a.Path.Samples(), b.Path.Samples()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}
