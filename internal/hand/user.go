// Package hand synthesizes the in-air hand trajectories RFIPad senses:
// the 13 basic motions drawn with a human-like minimum-jerk speed
// profile, multi-stroke letters with the inter-stroke "adjustment
// intervals" the segmenter keys on (§III-C1), per-user diversity
// (§V-B6), and the Kinect ground-truth tracker (§V-A). It is the
// simulation substitute for the paper's ten volunteers.
package hand

import (
	"fmt"
	"math/rand"
)

// User is a volunteer profile. The fields mirror the diversity the
// paper balances across its ten volunteers (§V-B6): speed, physique,
// and writing habits.
type User struct {
	// Name labels the volunteer (User #1 … #10 in Fig. 20).
	Name string
	// Speed is the typical stroke drawing speed in m/s. The paper
	// finds its fast writers (#6, #9) lose a few accuracy points to
	// undersampling.
	Speed float64
	// SpeedJitter is the per-stroke fractional speed variation.
	SpeedJitter float64
	// Wobble is the positional noise of the hand in metres (σ).
	Wobble float64
	// HoverHeight is how far above the tag plane the hand writes (m).
	// The prototype works best within 5 cm (§VI).
	HoverHeight float64
	// RaiseHeight is the hand height during the adjustment interval
	// between strokes, when the arm is raised (§III-C1, §V-C).
	RaiseHeight float64
	// PauseMean is the mean duration of the inter-stroke pause in
	// seconds.
	PauseMean float64
	// ArmLengthM is the forearm length (m), used to place the arm
	// scatterer.
	ArmLengthM float64
	// HeightM and WeightKg are recorded for completeness (they scale
	// the body scatterer slightly).
	HeightM  float64
	WeightKg float64
}

// DefaultUser returns a median volunteer.
func DefaultUser() User {
	return User{
		Name:        "default",
		Speed:       0.35,
		SpeedJitter: 0.15,
		Wobble:      0.004,
		HoverHeight: 0.035,
		RaiseHeight: 0.13,
		PauseMean:   0.6,
		ArmLengthM:  0.62,
		HeightM:     1.70,
		WeightKg:    62,
	}
}

// Volunteers returns the ten-user panel of §V-B6: 6 males and 4
// females, heights 158–183 cm, weights 45–80 kg, arm lengths 56–70 cm.
// Users #6 and #9 move noticeably faster than the rest, which is the
// behaviour behind their accuracy dip in Fig. 20.
func Volunteers() []User {
	base := DefaultUser()
	specs := []struct {
		speed, wobble, hover float64
		height, weight, arm  float64
	}{
		{0.31, 0.004, 0.030, 1.72, 65, 0.63}, // #1
		{0.37, 0.004, 0.035, 1.80, 75, 0.68}, // #2
		{0.34, 0.005, 0.032, 1.58, 45, 0.56}, // #3
		{0.29, 0.003, 0.038, 1.66, 55, 0.60}, // #4
		{0.38, 0.005, 0.035, 1.83, 80, 0.70}, // #5
		{0.65, 0.006, 0.040, 1.76, 70, 0.66}, // #6 — fast writer
		{0.32, 0.004, 0.030, 1.62, 50, 0.58}, // #7
		{0.35, 0.004, 0.034, 1.74, 68, 0.64}, // #8
		{0.62, 0.007, 0.042, 1.69, 60, 0.62}, // #9 — fast writer
		{0.33, 0.005, 0.033, 1.64, 52, 0.59}, // #10
	}
	users := make([]User, len(specs))
	for i, s := range specs {
		u := base
		u.Name = fmt.Sprintf("user#%d", i+1)
		u.Speed = s.speed
		u.Wobble = s.wobble
		u.HoverHeight = s.hover
		u.HeightM = s.height
		u.WeightKg = s.weight
		u.ArmLengthM = s.arm
		users[i] = u
	}
	return users
}

// strokeSpeed draws this stroke's speed for one execution.
func (u User) strokeSpeed(rng *rand.Rand) float64 {
	s := u.Speed
	if rng != nil && u.SpeedJitter > 0 {
		s *= 1 + rng.NormFloat64()*u.SpeedJitter
	}
	if s < 0.05 {
		s = 0.05
	}
	return s
}

// pause draws one adjustment-interval duration in seconds.
func (u User) pause(rng *rand.Rand) float64 {
	p := u.PauseMean
	if rng != nil {
		p *= 1 + rng.NormFloat64()*0.2
	}
	if p < 0.35 {
		p = 0.35
	}
	return p
}
