package hand

import (
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/rf"
)

// Scatterer parameters for the hand and forearm. The hand couples into
// the tag near field (it is the sensing signal); the forearm mostly
// matters as a line-of-sight blocker, which is what degrades the LOS
// deployment in Table I.
const (
	handReflectivity    = 0.55
	handProximityRadius = 0.07  // the hand is a near-field "virtual transmitter"
	handCouplingRadius  = 0.052 // λ/2π: the near-field boundary §IV-B1
	handCouplingLossDB  = 8
	handHarvestRadius   = 0.04 // almost-touching detunes the IC's harvesting
	handHarvestLossDB   = 25
	handBlockRadius     = 0.05
	handBlockLossDB     = 6

	armReflectivity    = 0.25
	armProximityRadius = 0.09 // higher and cloth-covered: weak near-field reach
	armBlockRadius     = 0.07
	armBlockLossDB     = 3.5
	armHeightOffset    = 0.12 // forearm rides well above the hand
	armBackFraction    = 0.35 // how far along hand→body the forearm centre sits
)

// Body is the writer's position relative to the canvas, used to place
// the forearm scatterer trailing from the hand toward the body.
type Body struct {
	// ShoulderPos is the approximate shoulder position in world
	// coordinates.
	ShoulderPos geo.Vec3
}

// velEpsilon is the finite-difference step for velocity estimation.
const velEpsilon = 10 * time.Millisecond

// Scatterers returns the rf scatterers (hand + forearm) for the script
// at time t. The slice is freshly allocated per call.
func Scatterers(script *Script, body Body, t time.Duration) []rf.Scatterer {
	pos, ok := script.Path.At(t)
	if !ok {
		return nil
	}
	before, _ := script.Path.At(t - velEpsilon)
	after, _ := script.Path.At(t + velEpsilon)
	vel := after.Sub(before).Scale(1 / (2 * velEpsilon.Seconds()))

	handSc := rf.Scatterer{
		Pos:             pos,
		Vel:             vel,
		Reflectivity:    handReflectivity,
		ProximityRadius: handProximityRadius,
		CouplingRadius:  handCouplingRadius,
		CouplingLossDB:  handCouplingLossDB,
		HarvestRadius:   handHarvestRadius,
		HarvestLossDB:   handHarvestLossDB,
		BlockRadius:     handBlockRadius,
		BlockLossDB:     handBlockLossDB,
	}

	toBody := body.ShoulderPos.Sub(pos)
	armPos := pos.Add(toBody.Scale(armBackFraction))
	armPos.Z += armHeightOffset
	armSc := rf.Scatterer{
		Pos:             armPos,
		Vel:             vel.Scale(0.6),
		Reflectivity:    armReflectivity,
		ProximityRadius: armProximityRadius,
		BlockRadius:     armBlockRadius,
		BlockLossDB:     armBlockLossDB,
	}
	return []rf.Scatterer{handSc, armSc}
}
