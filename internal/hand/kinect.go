package hand

import (
	"math"
	"math/rand"
	"time"

	"rfipad/internal/geo"
)

// Kinect simulates the ground-truth collection of §V-A: a depth camera
// behind the user samples the hand joint of its skeletal output at
// 30 fps with a few millimetres of sensor noise.
type Kinect struct {
	// FrameRate is the skeletal stream rate in Hz (default 30).
	FrameRate float64
	// NoiseM is the per-axis positional noise σ in metres (default
	// 4 mm, typical for Kinect skeletal joints at ~2 m).
	NoiseM float64
}

// DefaultKinect returns the §V-A ground-truth configuration.
func DefaultKinect() Kinect { return Kinect{FrameRate: 30, NoiseM: 0.004} }

// Track samples the true trajectory as the Kinect would observe it.
// rng may be nil for a noiseless track.
func (k Kinect) Track(truth *geo.Path, rng *rand.Rand) *geo.Path {
	fr := k.FrameRate
	if fr <= 0 {
		fr = 30
	}
	period := time.Duration(float64(time.Second) / fr)
	sampled := truth.Resample(period)
	if rng == nil || k.NoiseM <= 0 {
		return sampled
	}
	noisy := make([]geo.Sample, 0, sampled.Len())
	for _, s := range sampled.Samples() {
		noisy = append(noisy, geo.Sample{
			T: s.T,
			P: s.P.Add(geo.V(
				rng.NormFloat64()*k.NoiseM,
				rng.NormFloat64()*k.NoiseM,
				rng.NormFloat64()*k.NoiseM,
			)),
		})
	}
	return geo.NewPath(noisy)
}

// TrajectoryRMSE compares two trajectories over their overlapping time
// span, sampling at the given period, and returns the root-mean-square
// 3-D error in metres. It is the metric behind Fig. 25's visual
// agreement. Empty paths give +Inf.
func TrajectoryRMSE(a, b *geo.Path, period time.Duration) float64 {
	if a.Len() == 0 || b.Len() == 0 || period <= 0 {
		return math.Inf(1)
	}
	end := a.Duration()
	if d := b.Duration(); d < end {
		end = d
	}
	var ss float64
	var n int
	for t := time.Duration(0); t <= end; t += period {
		pa, _ := a.At(t)
		pb, _ := b.At(t)
		d := pa.Dist(pb)
		ss += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(ss / float64(n))
}
