// Package grammar implements the tree-structure stroke grammar RFIPad
// uses to compose English letters from recognized strokes (§III-C2,
// Fig. 10, after Agrawal et al.'s PhonePoint Pen). Each letter is a
// sequence of placed motions; letters sharing a motion sequence (the
// paper's D/P, O/S examples) are disambiguated by the positions of
// their strokes, which RFIPad recovers from the tag IDs the hand
// disturbed.
//
// The paper reproduces Fig. 10 only as a low-resolution diagram, so the
// stroke decompositions below are our transcription: they honour every
// structural property the text states — C and I are single-stroke
// (group #1); {D,J,L,O,P,S,T,V,X} use two strokes (group #2);
// {A,B,F,G,H,K,N,Q,R,U,Y,Z} use three (group #3); {E,M,W} use four
// (group #4); and D/P and O/S share stroke sequences that only the
// layout separates.
package grammar

import (
	"fmt"
	"sort"

	"rfipad/internal/stroke"
)

// Placed is one stroke of a letter: the motion and the sub-box of the
// letter's unit square it occupies.
type Placed struct {
	Motion stroke.Motion
	Box    stroke.Rect
}

// Letter is one entry of the grammar.
type Letter struct {
	Char    rune
	Strokes []Placed
}

// Group returns the paper's grouping by stroke count (1–4), used in
// Fig. 23's per-group accuracy breakdown.
func (l Letter) Group() int { return len(l.Strokes) }

func m(s stroke.Shape, d stroke.Direction) stroke.Motion { return stroke.M(s, d) }

// Shorthand for the table below.
var (
	fwd = stroke.Forward
	rev = stroke.Reverse
)

// alphabet is the grammar table. Boxes are in letter coordinates
// (x right, y up, unit square).
var alphabet = []Letter{
	// Group #1 — single stroke.
	{'C', []Placed{{m(stroke.ArcLeft, fwd), stroke.Unit}}},
	{'I', []Placed{{m(stroke.Vertical, fwd), stroke.R(0.35, 0, 0.65, 1)}}},

	// Group #2 — two strokes.
	{'D', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.1, 0, 1, 1)}, // full-height bowl
	}},
	{'J', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0.45, 0.25, 0.9, 1)},
		{m(stroke.ArcLeft, fwd), stroke.R(0, 0, 0.75, 0.5)}, // bottom hook
	}},
	{'L', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0, 1, 0.3)},
	}},
	{'O', []Placed{
		{m(stroke.ArcLeft, fwd), stroke.R(0, 0, 0.75, 1)},  // left half
		{m(stroke.ArcRight, fwd), stroke.R(0.25, 0, 1, 1)}, // right half
	}},
	{'P', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.1, 0.45, 1, 1)}, // upper bowl
	}},
	{'S', []Placed{
		{m(stroke.ArcLeft, fwd), stroke.R(0, 0.45, 1, 1)},  // top curl
		{m(stroke.ArcRight, fwd), stroke.R(0, 0, 1, 0.55)}, // bottom curl
	}},
	{'T', []Placed{
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.7, 1, 1)},
		{m(stroke.Vertical, fwd), stroke.R(0.35, 0, 0.65, 1)},
	}},
	{'V', []Placed{
		{m(stroke.SlashDown, fwd), stroke.R(0, 0, 0.6, 1)},
		{m(stroke.SlashUp, rev), stroke.R(0.4, 0, 1, 1)}, // back up
	}},
	{'X', []Placed{
		{m(stroke.SlashDown, fwd), stroke.Unit},
		{m(stroke.SlashUp, fwd), stroke.Unit}, // both drawn downward
	}},

	// Group #3 — three strokes.
	{'A', []Placed{
		{m(stroke.SlashUp, fwd), stroke.R(0, 0, 0.6, 1)},   // apex → bottom-left
		{m(stroke.SlashDown, fwd), stroke.R(0.4, 0, 1, 1)}, // apex → bottom-right
		{m(stroke.Horizontal, fwd), stroke.R(0.15, 0.3, 0.85, 0.55)},
	}},
	{'B', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.1, 0.45, 1, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.1, 0, 1, 0.55)},
	}},
	{'F', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.7, 1, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.4, 0.85, 0.65)},
	}},
	{'G', []Placed{
		{m(stroke.ArcLeft, fwd), stroke.Unit},
		{m(stroke.Vertical, fwd), stroke.R(0.7, 0, 1, 0.55)},
		{m(stroke.Horizontal, rev), stroke.R(0.4, 0.35, 1, 0.6)}, // bar drawn inward
	}},
	{'H', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.35, 1, 0.65)},
		{m(stroke.Vertical, fwd), stroke.R(0.7, 0, 1, 1)},
	}},
	{'K', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.SlashUp, fwd), stroke.R(0.15, 0.45, 1, 1)},   // upper leg, inward
		{m(stroke.SlashDown, fwd), stroke.R(0.15, 0, 1, 0.55)}, // lower leg, outward
	}},
	{'N', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.SlashDown, fwd), stroke.Unit},
		{m(stroke.Vertical, rev), stroke.R(0.7, 0, 1, 1)}, // right side drawn up
	}},
	{'Q', []Placed{
		{m(stroke.ArcLeft, fwd), stroke.R(0, 0.15, 0.75, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.25, 0.15, 1, 1)},
		{m(stroke.SlashDown, fwd), stroke.R(0.5, 0, 1, 0.45)}, // tail
	}},
	{'R', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.ArcRight, fwd), stroke.R(0.1, 0.45, 1, 1)},
		{m(stroke.SlashDown, fwd), stroke.R(0.2, 0, 1, 0.5)}, // leg
	}},
	{'U', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0.3, 0.3, 1)},
		{m(stroke.ArcLeft, rev), stroke.R(0, 0, 1, 0.55)}, // bottom cup
		{m(stroke.Vertical, rev), stroke.R(0.7, 0.3, 1, 1)},
	}},
	{'Y', []Placed{
		{m(stroke.SlashDown, fwd), stroke.R(0, 0.45, 0.6, 1)}, // top-left → centre
		{m(stroke.SlashUp, fwd), stroke.R(0.4, 0.45, 1, 1)},   // top-right → centre
		{m(stroke.Vertical, fwd), stroke.R(0.35, 0, 0.65, 0.55)},
	}},
	{'Z', []Placed{
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.7, 1, 1)},
		{m(stroke.SlashUp, fwd), stroke.Unit}, // top-right → bottom-left
		{m(stroke.Horizontal, fwd), stroke.R(0, 0, 1, 0.3)},
	}},

	// Group #4 — four strokes.
	{'E', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.3, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.7, 1, 1)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0.4, 0.85, 0.65)},
		{m(stroke.Horizontal, fwd), stroke.R(0, 0, 1, 0.3)},
	}},
	{'M', []Placed{
		{m(stroke.Vertical, fwd), stroke.R(0, 0, 0.25, 1)},
		{m(stroke.SlashDown, fwd), stroke.R(0.1, 0.3, 0.55, 1)}, // peak → middle
		{m(stroke.SlashUp, rev), stroke.R(0.45, 0.3, 0.9, 1)},   // middle → peak
		{m(stroke.Vertical, fwd), stroke.R(0.75, 0, 1, 1)},
	}},
	{'W', []Placed{
		{m(stroke.SlashDown, fwd), stroke.R(0, 0, 0.4, 1)},
		{m(stroke.SlashUp, rev), stroke.R(0.2, 0, 0.6, 1)},
		{m(stroke.SlashDown, fwd), stroke.R(0.4, 0, 0.8, 1)},
		{m(stroke.SlashUp, rev), stroke.R(0.6, 0, 1, 1)},
	}},
}

// Alphabet returns the full grammar in alphabetical order (copied).
func Alphabet() []Letter {
	out := make([]Letter, len(alphabet))
	copy(out, alphabet)
	sort.Slice(out, func(i, j int) bool { return out[i].Char < out[j].Char })
	return out
}

// Lookup returns the grammar entry for a letter ('A'–'Z'), or false.
func Lookup(ch rune) (Letter, bool) {
	for _, l := range alphabet {
		if l.Char == ch {
			return l, true
		}
	}
	return Letter{}, false
}

// seqKey encodes a motion sequence for grouping.
func seqKey(motions []stroke.Motion) string {
	s := ""
	for _, mo := range motions {
		s += fmt.Sprintf("%d.%d;", mo.Shape, mo.Dir)
	}
	return s
}

// Candidates returns every letter whose stroke sequence matches the
// observed motions exactly, in alphabetical order. Several letters may
// share a sequence (D/P, O/S); Deduce resolves them by layout.
func Candidates(motions []stroke.Motion) []Letter {
	key := seqKey(motions)
	var out []Letter
	for _, l := range Alphabet() {
		ms := make([]stroke.Motion, len(l.Strokes))
		for i, p := range l.Strokes {
			ms[i] = p.Motion
		}
		if seqKey(ms) == key {
			out = append(out, l)
		}
	}
	return out
}

// Observed is a recognized stroke with its measured layout in letter
// coordinates (normalized to the writing area).
type Observed struct {
	Motion stroke.Motion
	Box    stroke.Rect
	// Center, when set (HasCenter), is the stroke's intensity-weighted
	// centroid — preferred over the box centre for position matching
	// because it is robust to the sensing footprint bleeding past the
	// stroke.
	CenterX, CenterY float64
	HasCenter        bool
}

// positionScore measures how far the observation sits from a canonical
// placement.
func positionScore(o Observed, canon stroke.Rect) float64 {
	cx, cy := o.Box.CenterX(), o.Box.CenterY()
	if o.HasCenter {
		cx, cy = o.CenterX, o.CenterY
	}
	dx := cx - canon.CenterX()
	dy := cy - canon.CenterY()
	return dx*dx + dy*dy
}

// Deduce maps an observed stroke sequence to the best-matching letter.
// Exact-sequence candidates are ranked by layout distance (the paper's
// position-based disambiguation); if no letter matches the sequence
// exactly, ok is false.
func Deduce(obs []Observed) (best rune, ok bool) {
	motions := make([]stroke.Motion, len(obs))
	for i, o := range obs {
		motions[i] = o.Motion
	}
	cands := Candidates(motions)
	if len(cands) == 0 {
		return 0, false
	}
	bestScore := -1.0
	for _, cand := range cands {
		var score float64
		for i, p := range cand.Strokes {
			score += positionScore(obs[i], p.Box)
		}
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = cand.Char
		}
	}
	return best, true
}

// DeduceFuzzy extends Deduce for noisy pipelines: when no exact
// sequence matches, it scores every letter with the same stroke count
// by (a) the number of matching motions and (b) layout distance,
// returning the closest. ok is false only when no letter has the given
// stroke count.
func DeduceFuzzy(obs []Observed) (best rune, ok bool) {
	if ch, exact := Deduce(obs); exact {
		return ch, true
	}
	bestScore := -1.0
	for _, cand := range Alphabet() {
		if len(cand.Strokes) != len(obs) {
			continue
		}
		var score float64
		for i, p := range cand.Strokes {
			if p.Motion.Shape != obs[i].Motion.Shape {
				score += 4 // wrong shape is heavily penalized
			} else if p.Motion.Dir != obs[i].Motion.Dir {
				score += 1
			}
			score += positionScore(obs[i], p.Box)
		}
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = cand.Char
			ok = true
		}
	}
	return best, ok
}

// AmbiguousPairs returns the sets of letters sharing an identical
// motion sequence — the ambiguities the paper resolves by position
// (D/P, O/S).
func AmbiguousPairs() [][]rune {
	groups := map[string][]rune{}
	for _, l := range Alphabet() {
		ms := make([]stroke.Motion, len(l.Strokes))
		for i, p := range l.Strokes {
			ms[i] = p.Motion
		}
		k := seqKey(ms)
		groups[k] = append(groups[k], l.Char)
	}
	var out [][]rune
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
