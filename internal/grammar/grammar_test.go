package grammar

import (
	"testing"

	"rfipad/internal/stroke"
)

func TestAlphabetComplete(t *testing.T) {
	letters := Alphabet()
	if len(letters) != 26 {
		t.Fatalf("alphabet size = %d, want 26", len(letters))
	}
	seen := map[rune]bool{}
	for _, l := range letters {
		if l.Char < 'A' || l.Char > 'Z' {
			t.Errorf("unexpected letter %q", l.Char)
		}
		if seen[l.Char] {
			t.Errorf("duplicate letter %q", l.Char)
		}
		seen[l.Char] = true
		if len(l.Strokes) < 1 || len(l.Strokes) > 4 {
			t.Errorf("%q has %d strokes", l.Char, len(l.Strokes))
		}
		for i, p := range l.Strokes {
			if p.Motion.Shape < stroke.Click || p.Motion.Shape > stroke.ArcRight {
				t.Errorf("%q stroke %d has shape %v", l.Char, i, p.Motion.Shape)
			}
			if p.Motion.Shape == stroke.Click {
				t.Errorf("%q uses click as a letter stroke", l.Char)
			}
			if p.Box.W() <= 0 || p.Box.H() <= 0 {
				t.Errorf("%q stroke %d has empty box", l.Char, i)
			}
		}
	}
}

func TestGroupsMatchPaper(t *testing.T) {
	// §V-C / Fig. 23: group #1 {C,I}, #2 {D,J,L,O,P,S,T,V,X},
	// #3 {A,B,F,G,H,K,N,Q,R,U,Y,Z}, #4 {E,M,W}.
	wantGroups := map[int]string{
		1: "CI",
		2: "DJLOPSTVX",
		3: "ABFGHKNQRUYZ",
		4: "EMW",
	}
	got := map[int]string{}
	for _, l := range Alphabet() {
		got[l.Group()] += string(l.Char)
	}
	for g, want := range wantGroups {
		if got[g] != want {
			t.Errorf("group #%d = %q, want %q", g, got[g], want)
		}
	}
}

func TestLookup(t *testing.T) {
	h, ok := Lookup('H')
	if !ok {
		t.Fatal("H not found")
	}
	// The paper's example (§II-C): H is |, −, |.
	wantShapes := []stroke.Shape{stroke.Vertical, stroke.Horizontal, stroke.Vertical}
	for i, p := range h.Strokes {
		if p.Motion.Shape != wantShapes[i] {
			t.Errorf("H stroke %d = %v, want %v", i, p.Motion.Shape, wantShapes[i])
		}
	}
	if _, ok := Lookup('h'); ok {
		t.Error("lowercase lookup should fail")
	}
	if _, ok := Lookup('0'); ok {
		t.Error("digit lookup should fail")
	}
}

func TestPaperExampleT(t *testing.T) {
	// §III-C2: "RFIPad observes two strokes '−' and '|' in sequence …
	// identified as letter 'T'."
	obs := []Observed{
		{Motion: stroke.M(stroke.Horizontal, stroke.Forward), Box: stroke.R(0, 0.7, 1, 1)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.35, 0, 0.65, 1)},
	}
	ch, ok := Deduce(obs)
	if !ok || ch != 'T' {
		t.Errorf("Deduce = %q,%v, want T", ch, ok)
	}
}

func TestAmbiguousPairsContainDPAndOS(t *testing.T) {
	pairs := AmbiguousPairs()
	has := func(a, b rune) bool {
		for _, g := range pairs {
			foundA, foundB := false, false
			for _, ch := range g {
				foundA = foundA || ch == a
				foundB = foundB || ch == b
			}
			if foundA && foundB {
				return true
			}
		}
		return false
	}
	if !has('D', 'P') {
		t.Error("D and P should share a stroke sequence (§III-C2)")
	}
	if !has('O', 'S') {
		t.Error("O and S should share a stroke sequence (§III-C2)")
	}
}

func TestPositionDisambiguation(t *testing.T) {
	// Same sequence | then ⊃ — a full-height bowl is a D, an upper
	// bowl is a P (§III-C2's physical-position rule).
	dObs := []Observed{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0, 0, 0.3, 1)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0.1, 0.05, 0.95, 0.95)},
	}
	pObs := []Observed{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0, 0, 0.3, 1)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0.1, 0.5, 0.95, 1)},
	}
	if ch, ok := Deduce(dObs); !ok || ch != 'D' {
		t.Errorf("full-height bowl = %q,%v, want D", ch, ok)
	}
	if ch, ok := Deduce(pObs); !ok || ch != 'P' {
		t.Errorf("upper bowl = %q,%v, want P", ch, ok)
	}
	// O vs S: side-by-side arcs are O, stacked arcs are S.
	oObs := []Observed{
		{Motion: stroke.M(stroke.ArcLeft, stroke.Forward), Box: stroke.R(0, 0, 0.55, 1)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0.45, 0, 1, 1)},
	}
	sObs := []Observed{
		{Motion: stroke.M(stroke.ArcLeft, stroke.Forward), Box: stroke.R(0, 0.5, 1, 1)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0, 0, 1, 0.5)},
	}
	if ch, ok := Deduce(oObs); !ok || ch != 'O' {
		t.Errorf("side-by-side arcs = %q,%v, want O", ch, ok)
	}
	if ch, ok := Deduce(sObs); !ok || ch != 'S' {
		t.Errorf("stacked arcs = %q,%v, want S", ch, ok)
	}
}

func TestEveryLetterSelfDeducible(t *testing.T) {
	// Feeding a letter's own canonical strokes back must deduce it —
	// position info resolves every ambiguity ("with no doubts",
	// §III-C2).
	for _, l := range Alphabet() {
		obs := make([]Observed, len(l.Strokes))
		for i, p := range l.Strokes {
			obs[i] = Observed{Motion: p.Motion, Box: p.Box}
		}
		ch, ok := Deduce(obs)
		if !ok {
			t.Errorf("%q: no candidates for its own strokes", l.Char)
			continue
		}
		if ch != l.Char {
			t.Errorf("%q deduced as %q", l.Char, ch)
		}
	}
}

func TestCandidatesEmptyForUnknownSequence(t *testing.T) {
	got := Candidates([]stroke.Motion{stroke.M(stroke.Click, 0)})
	if len(got) != 0 {
		t.Errorf("click sequence candidates = %v", got)
	}
	if _, ok := Deduce(nil); ok {
		t.Error("empty observation should not deduce")
	}
}

func TestDeduceFuzzy(t *testing.T) {
	// A slightly corrupted H (wrong direction on the crossbar) still
	// resolves to H via fuzzy matching.
	obs := []Observed{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0, 0, 0.3, 1)},
		{Motion: stroke.M(stroke.Horizontal, stroke.Reverse), Box: stroke.R(0, 0.35, 1, 0.65)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.7, 0, 1, 1)},
	}
	ch, ok := DeduceFuzzy(obs)
	if !ok || ch != 'H' {
		t.Errorf("fuzzy = %q,%v, want H", ch, ok)
	}
	// Exact matches pass through unchanged.
	exact := []Observed{
		{Motion: stroke.M(stroke.Horizontal, stroke.Forward), Box: stroke.R(0, 0.7, 1, 1)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.35, 0, 0.65, 1)},
	}
	if ch, ok := DeduceFuzzy(exact); !ok || ch != 'T' {
		t.Errorf("fuzzy exact = %q,%v, want T", ch, ok)
	}
	// A stroke count with no letters (>4) fails.
	var five []Observed
	for i := 0; i < 5; i++ {
		five = append(five, Observed{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.Unit})
	}
	if _, ok := DeduceFuzzy(five); ok {
		t.Error("five strokes should not deduce")
	}
}

func TestLettersDistinguishableWithinGroups(t *testing.T) {
	// Within each sequence-sharing group, canonical layouts must be
	// separable: each member deduces to itself, not to its twin.
	for _, group := range AmbiguousPairs() {
		for _, ch := range group {
			l, _ := Lookup(ch)
			obs := make([]Observed, len(l.Strokes))
			for i, p := range l.Strokes {
				obs[i] = Observed{Motion: p.Motion, Box: p.Box}
			}
			if got, _ := Deduce(obs); got != ch {
				t.Errorf("group %q: %q deduced as %q", string(group), ch, got)
			}
		}
	}
}
