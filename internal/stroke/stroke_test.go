package stroke

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestAllReturns13Motions(t *testing.T) {
	// §V-B1: "13 strokes (stroke 2∼7 with two directions)" plus click.
	all := All()
	if len(all) != 13 {
		t.Fatalf("All() = %d motions, want 13", len(all))
	}
	seen := map[Motion]bool{}
	for _, m := range all {
		if seen[m] {
			t.Fatalf("duplicate motion %v", m)
		}
		seen[m] = true
	}
	if !seen[Motion{Shape: Click}] {
		t.Error("click missing")
	}
	for s := Horizontal; s <= ArcRight; s++ {
		if !seen[Motion{Shape: s, Dir: Forward}] || !seen[Motion{Shape: s, Dir: Reverse}] {
			t.Errorf("missing directions for %v", s)
		}
	}
}

func TestMNormalizesClickDirection(t *testing.T) {
	if got := M(Click, Reverse); got != (Motion{Shape: Click}) {
		t.Errorf("M(Click, Reverse) = %v", got)
	}
	if got := M(Vertical, Reverse); got.Dir != Reverse {
		t.Errorf("M dropped direction: %v", got)
	}
}

func TestOpposite(t *testing.T) {
	m := M(Horizontal, Forward)
	if got := m.Opposite(); got.Dir != Reverse || got.Shape != Horizontal {
		t.Errorf("Opposite = %v", got)
	}
	if got := m.Opposite().Opposite(); got != m {
		t.Errorf("double Opposite = %v", got)
	}
	c := M(Click, Forward)
	if got := c.Opposite(); got != c {
		t.Errorf("click Opposite = %v", got)
	}
}

func TestStrings(t *testing.T) {
	for _, m := range All() {
		if m.String() == "" || m.Shape.String() == "" {
			t.Errorf("empty string for %#v", m)
		}
	}
	if Shape(99).String() == "" || Direction(99).String() == "" {
		t.Error("fallback strings empty")
	}
	if (Motion{Shape: Click}).String() != "click" {
		t.Error("click string")
	}
}

func TestRect(t *testing.T) {
	r := R(0.2, 0.4, 0.6, 1.0)
	if !approx(r.W(), 0.4) || !approx(r.H(), 0.6) {
		t.Errorf("W/H = %v/%v", r.W(), r.H())
	}
	if !approx(r.CenterX(), 0.4) || !approx(r.CenterY(), 0.7) {
		t.Errorf("center = %v,%v", r.CenterX(), r.CenterY())
	}
	x, y := r.Map(0.5, 0.5)
	if !approx(x, 0.4) || !approx(y, 0.7) {
		t.Errorf("Map = %v,%v", x, y)
	}
	x, y = r.Map(0, 1)
	if !approx(x, 0.2) || !approx(y, 1.0) {
		t.Errorf("Map(0,1) = %v,%v", x, y)
	}
	if Unit.Dist2(Unit) != 0 {
		t.Error("Dist2 self nonzero")
	}
	if got := R(0, 0, 0, 0).Dist2(R(1, 0, 1, 0)); got != 1 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestWaypoints(t *testing.T) {
	// Endpoints and orientation of every shape's drawing path.
	endpoints := func(m Motion) (Point, Point) {
		pts := Waypoints(m)
		return pts[0], pts[len(pts)-1]
	}
	a, b := endpoints(M(Horizontal, Forward))
	if a.X != 0 || b.X != 1 || a.Y != 0.5 {
		t.Errorf("horizontal fwd: %v → %v", a, b)
	}
	a, b = endpoints(M(Vertical, Forward))
	if a.Y != 1 || b.Y != 0 {
		t.Errorf("vertical fwd: %v → %v", a, b)
	}
	// Reverse flips the path.
	fa, fb := endpoints(M(SlashUp, Forward))
	ra, rb := endpoints(M(SlashUp, Reverse))
	if fa != rb || fb != ra {
		t.Errorf("reverse should flip: fwd %v→%v rev %v→%v", fa, fb, ra, rb)
	}
	// Arcs bulge to their side and run top to bottom when forward.
	for _, tc := range []struct {
		m        Motion
		wantLeft bool
	}{
		{M(ArcLeft, Forward), true},
		{M(ArcRight, Forward), false},
	} {
		pts := Waypoints(tc.m)
		if len(pts) < 10 {
			t.Fatalf("%v: too few waypoints", tc.m)
		}
		if pts[0].Y <= pts[len(pts)-1].Y {
			t.Errorf("%v: forward arc should start above its end", tc.m)
		}
		minX, maxX := 2.0, -1.0
		for _, p := range pts {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
		if tc.wantLeft && minX > 0.1 {
			t.Errorf("%v: should reach the left edge, minX=%v", tc.m, minX)
		}
		if !tc.wantLeft && maxX < 0.9 {
			t.Errorf("%v: should reach the right edge, maxX=%v", tc.m, maxX)
		}
		// All waypoints inside the unit box.
		for _, p := range pts {
			if p.X < -1e-9 || p.X > 1+1e-9 || p.Y < -1e-9 || p.Y > 1+1e-9 {
				t.Fatalf("%v: waypoint %v outside unit box", tc.m, p)
			}
		}
	}
	// Click is the single centre point; unknown shapes fall back to it.
	if pts := Waypoints(M(Click, 0)); len(pts) != 1 || pts[0] != (Point{0.5, 0.5}) {
		t.Errorf("click waypoints = %v", pts)
	}
	if pts := Waypoints(Motion{Shape: Shape(99)}); len(pts) != 1 {
		t.Errorf("unknown shape waypoints = %v", pts)
	}
}
