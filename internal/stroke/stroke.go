// Package stroke defines the motion vocabulary of RFIPad (§II-C): the
// seven basic hand motions — click "●", "−", "|", "/", "\", "⊂", "⊃" —
// and their direction variants, 13 motions in total (motions #2–#7 each
// carry two directions). The hand synthesizer draws them, the core
// recognizer emits them, and the letter grammar consumes them.
package stroke

import "fmt"

// Shape is one of the seven basic stroke shapes, numbered as in the
// paper (#1 click … #7 "⊃").
type Shape int

// The seven shapes of §II-C.
const (
	// Click is a push toward a tag ("●", motion #1) — the touch-screen
	// click.
	Click Shape = iota + 1
	// Horizontal is "−" (motion #2): supports page swiping (← →).
	Horizontal
	// Vertical is "|" (motion #3): supports scroll bars (↑ ↓).
	Vertical
	// SlashUp is "/" (motion #4), connecting bottom-left and top-right.
	SlashUp
	// SlashDown is "\" (motion #5), connecting top-left and
	// bottom-right.
	SlashDown
	// ArcLeft is "⊂" (motion #6), the left half-circle (opens right).
	ArcLeft
	// ArcRight is "⊃" (motion #7), the right half-circle (opens left).
	ArcRight
)

// NumShapes is the size of the shape vocabulary.
const NumShapes = 7

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Click:
		return "click"
	case Horizontal:
		return "-"
	case Vertical:
		return "|"
	case SlashUp:
		return "/"
	case SlashDown:
		return "\\"
	case ArcLeft:
		return "⊂"
	case ArcRight:
		return "⊃"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Direction distinguishes the two ways a non-click shape can be drawn.
type Direction int

// Directions. Forward is the canonical pen direction:
//
//	Horizontal → (left to right)   Vertical ↓ (top to bottom)
//	SlashUp: top-right → bottom-left; SlashDown: top-left → bottom-right
//	ArcLeft/ArcRight: drawn from their top end to their bottom end.
const (
	Forward Direction = iota + 1
	Reverse
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "fwd"
	case Reverse:
		return "rev"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Motion is one recognizable hand motion: a shape plus a direction.
// Click has no direction (Direction 0 by convention).
type Motion struct {
	Shape Shape
	Dir   Direction
}

// M builds a Motion; the direction of a Click is normalized away.
func M(s Shape, d Direction) Motion {
	if s == Click {
		return Motion{Shape: Click}
	}
	return Motion{Shape: s, Dir: d}
}

// String implements fmt.Stringer.
func (m Motion) String() string {
	if m.Shape == Click {
		return "click"
	}
	return fmt.Sprintf("%v(%v)", m.Shape, m.Dir)
}

// All returns the 13 motions of the paper's evaluation: the click plus
// shapes #2–#7 in both directions.
func All() []Motion {
	out := []Motion{{Shape: Click}}
	for s := Horizontal; s <= ArcRight; s++ {
		out = append(out, Motion{Shape: s, Dir: Forward}, Motion{Shape: s, Dir: Reverse})
	}
	return out
}

// Opposite returns the same shape drawn the other way.
func (m Motion) Opposite() Motion {
	if m.Shape == Click {
		return m
	}
	if m.Dir == Forward {
		return Motion{Shape: m.Shape, Dir: Reverse}
	}
	return Motion{Shape: m.Shape, Dir: Forward}
}
