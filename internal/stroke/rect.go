package stroke

// Rect is an axis-aligned box in normalized letter coordinates:
// x grows rightward, y grows upward, and the full letter occupies the
// unit square [0,1]×[0,1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Unit is the whole letter box.
var Unit = Rect{0, 0, 1, 1}

// R builds a Rect.
func R(x0, y0, x1, y1 float64) Rect { return Rect{x0, y0, x1, y1} }

// W returns the rectangle width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// CenterX returns the x midpoint.
func (r Rect) CenterX() float64 { return (r.X0 + r.X1) / 2 }

// CenterY returns the y midpoint.
func (r Rect) CenterY() float64 { return (r.Y0 + r.Y1) / 2 }

// Map converts a point (u,v) in [0,1]² to the rectangle's coordinates.
func (r Rect) Map(u, v float64) (x, y float64) {
	return r.X0 + u*r.W(), r.Y0 + v*r.H()
}

// Dist2 returns the squared distance between the centres of r and s —
// the box-centre variant of the position metric (the letter composer
// prefers intensity-weighted centroids when the recognizer provides
// them).
func (r Rect) Dist2(s Rect) float64 {
	dx := r.CenterX() - s.CenterX()
	dy := r.CenterY() - s.CenterY()
	return dx*dx + dy*dy
}
