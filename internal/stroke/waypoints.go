package stroke

import "math"

// Point is a 2-D point in normalized stroke coordinates (x right,
// y up, unit square).
type Point struct{ X, Y float64 }

// arcPoints is the sampling resolution of the half-circle shapes.
const arcPoints = 24

// Waypoints returns the normalized drawing path of a motion in the
// unit square, ordered in drawing order. Click returns the single
// centre point. The hand synthesizer maps these onto the plate and the
// whole-letter template rasterizer splats them onto the tag grid.
func Waypoints(m Motion) []Point {
	line := func(x0, y0, x1, y1 float64) []Point {
		return []Point{{x0, y0}, {x1, y1}}
	}
	arc := func(a0, a1 float64) []Point {
		pts := make([]Point, arcPoints)
		for i := range pts {
			u := float64(i) / float64(arcPoints-1)
			a := a0 + (a1-a0)*u
			pts[i] = Point{0.5 + 0.5*math.Cos(a), 0.5 + 0.5*math.Sin(a)}
		}
		return pts
	}
	deg := math.Pi / 180
	var pts []Point
	switch m.Shape {
	case Click:
		pts = []Point{{0.5, 0.5}}
	case Horizontal:
		pts = line(0, 0.5, 1, 0.5) // forward: →
	case Vertical:
		pts = line(0.5, 1, 0.5, 0) // forward: ↓
	case SlashUp:
		pts = line(1, 1, 0, 0) // forward: from the top end down
	case SlashDown:
		pts = line(0, 1, 1, 0)
	case ArcLeft: // ⊂: top-right, around the left, bottom-right
		pts = arc(75*deg, 285*deg)
	case ArcRight: // ⊃: top-left, around the right, bottom-left
		pts = arc(105*deg, -105*deg)
	default:
		pts = []Point{{0.5, 0.5}}
	}
	if m.Shape != Click && m.Dir == Reverse {
		for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	return pts
}
