package sim

import (
	"fmt"
	"math/rand"
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/hand"
)

// InterLetterGap is the pause a writer leaves between letters — longer
// than any intra-letter adjustment interval, so the online recognizer
// can close each letter. Recognizing a succession of letters is the
// future work §III-C2 defers; this is our implementation of it.
const InterLetterGap = 3 * time.Second

// LetterSpan records which portion of a word script belongs to one
// letter.
type LetterSpan struct {
	Letter     rune
	Start, End time.Duration
}

// WordScript is a whole word synthesized as one continuous session.
type WordScript struct {
	Script      *hand.Script
	LetterSpans []LetterSpan
}

// WriteWord builds the script for a word written letter by letter on
// the same plate. rng is unused today but reserved for per-word
// variability hooks; the synthesizer's own rng drives the strokes.
func WriteWord(synth *hand.Synthesizer, word string, rng *rand.Rand) (*WordScript, error) {
	_ = rng
	out := &WordScript{Script: &hand.Script{Path: &geo.Path{}}}
	for _, ch := range word {
		specs, err := LetterSpecs(ch)
		if err != nil {
			return nil, fmt.Errorf("sim: word %q: %w", word, err)
		}
		letter := synth.Write(specs)

		gap := time.Duration(0)
		offset := time.Duration(0)
		if out.Script.Path.Len() > 0 {
			gap = InterLetterGap
			offset = out.Script.Path.Samples()[out.Script.Path.Len()-1].T + gap
		}
		out.Script.Path = out.Script.Path.Concat(letter.Path, gap)
		for _, seg := range letter.Segments {
			out.Script.Segments = append(out.Script.Segments, hand.Segment{
				Motion: seg.Motion,
				Box:    seg.Box,
				Start:  seg.Start + offset,
				End:    seg.End + offset,
			})
		}
		out.LetterSpans = append(out.LetterSpans, LetterSpan{
			Letter: ch,
			Start:  offset,
			End:    offset + letter.Duration(),
		})
	}
	return out, nil
}
