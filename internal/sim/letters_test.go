package sim

import (
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
)

func TestLetterSpecsErrors(t *testing.T) {
	if _, err := LetterSpecs('h'); err == nil {
		t.Error("lowercase should fail")
	}
	specs, err := LetterSpecs('H')
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Errorf("H specs = %d", len(specs))
	}
}

func TestEndToEndLetters(t *testing.T) {
	// The paper's headline letter pipeline (Fig. 22/23): write a
	// letter stroke by stroke, segment, recognize, compose.
	s := newSystem(t, 21, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(s.Grid, cal)

	for i, ch := range []rune{'T', 'L', 'H', 'C'} {
		t.Run(string(ch), func(t *testing.T) {
			specs, err := LetterSpecs(ch)
			if err != nil {
				t.Fatal(err)
			}
			synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(int64(300+i))))
			script := synth.Write(specs)
			readings := s.RunScript(script)
			got, results, ok := RecognizeLetter(p, readings, nil,
				core.Span{Start: 0, End: script.Duration() + time.Second})
			if len(results) != len(specs) {
				for _, r := range results {
					t.Logf("span %v-%v: %v ok=%v", r.Span.Start, r.Span.End, r.Result.Motion, r.Result.Ok)
				}
				t.Fatalf("segmented %d strokes, want %d", len(results), len(specs))
			}
			if !ok || got != ch {
				for _, r := range results {
					t.Logf("stroke %v box %+v", r.Result.Motion, r.Result.Box)
				}
				t.Errorf("deduced %q ok=%v, want %q", got, ok, ch)
			}
		})
	}
}

func TestStreamingRecognizerOnLetter(t *testing.T) {
	// The online engine must emit one stroke event per stroke and a
	// final letter event after the quiet gap.
	s := newSystem(t, 22, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(s.Grid, cal)

	specs, err := LetterSpecs('T')
	if err != nil {
		t.Fatal(err)
	}
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(55)))
	script := synth.Write(specs)
	readings := s.RunScript(script)

	rec := core.NewRecognizer(p, nil)
	var strokes, letters int
	var letter rune
	for _, r := range readings {
		for _, ev := range rec.Ingest(r) {
			switch ev.Kind {
			case core.StrokeDetected:
				strokes++
			case core.LetterDeduced:
				letters++
				letter = ev.Letter
			}
		}
	}
	for _, ev := range rec.Flush(script.Duration() + 2*time.Second) {
		switch ev.Kind {
		case core.StrokeDetected:
			strokes++
		case core.LetterDeduced:
			letters++
			letter = ev.Letter
		}
	}
	if strokes != 2 {
		t.Errorf("stroke events = %d, want 2", strokes)
	}
	if letters != 1 {
		t.Fatalf("letter events = %d, want 1", letters)
	}
	if letter != 'T' {
		t.Errorf("letter = %q, want T", letter)
	}
}
