package sim

import (
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
)

func TestWriteWordStructure(t *testing.T) {
	s := newSystem(t, 31, scene.Config{})
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(1)))
	ws, err := WriteWord(synth, "HI", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.LetterSpans) != 2 {
		t.Fatalf("letter spans = %d", len(ws.LetterSpans))
	}
	// H has 3 strokes, I has 1.
	if len(ws.Script.Segments) != 4 {
		t.Fatalf("segments = %d", len(ws.Script.Segments))
	}
	// Letters are separated by the inter-letter gap.
	gap := ws.LetterSpans[1].Start - ws.LetterSpans[0].End
	if gap < InterLetterGap-time.Millisecond {
		t.Errorf("inter-letter gap = %v", gap)
	}
	// Segments are inside their letters' spans and increasing.
	for i := 1; i < len(ws.Script.Segments); i++ {
		if ws.Script.Segments[i].Start <= ws.Script.Segments[i-1].End {
			t.Errorf("segments overlap at %d", i)
		}
	}
	if _, err := WriteWord(synth, "H!", nil); err == nil {
		t.Error("invalid letter accepted")
	}
}

func TestWordRecognizedOnline(t *testing.T) {
	// The §III-C2 future-work scenario: a succession of letters
	// recognized from one continuous capture.
	s := newSystem(t, 32, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(s.Grid, cal)
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(2)))
	ws, err := WriteWord(synth, "HI", nil)
	if err != nil {
		t.Fatal(err)
	}
	readings := s.RunScript(ws.Script)

	rec := core.NewRecognizer(p, nil)
	got := ""
	collect := func(evs []core.Event) {
		for _, ev := range evs {
			if ev.Kind == core.LetterDeduced && ev.LetterOK {
				got += string(ev.Letter)
			}
		}
	}
	for _, r := range readings {
		collect(rec.Ingest(r))
	}
	collect(rec.Flush(ws.Script.Duration() + 3*time.Second))
	if got != "HI" {
		t.Errorf("recognized %q, want HI", got)
	}
}
