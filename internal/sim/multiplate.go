package sim

import (
	"time"

	"rfipad/internal/core"
	"rfipad/internal/epc"
	"rfipad/internal/hand"
	"rfipad/internal/rf"
	"rfipad/internal/scene"
)

// MultiPlate models the paper's headline cost-efficiency claim (§I,
// §IV-B3): one reader carries several antennas, each facing its own
// RFIPad plate, and time-multiplexes inventory across them the way an
// Impinj reader cycles its antenna ports. Each plate keeps its own
// calibration and pipeline; the price of sharing the reader is that
// every plate sees only a slice of the aggregate read rate.
type MultiPlate struct {
	// Plates are the deployments sharing the reader.
	Plates []*System
	// SwitchDwell is how long the reader stays on one antenna before
	// cycling (Impinj readers default to ~0.2–0.5 s per port).
	SwitchDwell time.Duration
}

// NewMultiPlate wires systems onto one shared reader. All systems must
// already be built (their RNGs stay independent so plate A's noise does
// not perturb plate B's reproducibility).
func NewMultiPlate(plates []*System, dwell time.Duration) *MultiPlate {
	if dwell <= 0 {
		dwell = 250 * time.Millisecond
	}
	return &MultiPlate{Plates: plates, SwitchDwell: dwell}
}

// plateScript pairs a plate with the hand script performed above it
// (nil for an idle plate).
type plateScript struct {
	script *hand.Script
	end    time.Duration
}

// Run simulates the shared reader from t=0 until every script has
// finished plus a trailing quiet second, returning one reading stream
// per plate. Plates without a script stay idle but keep consuming
// their antenna dwells — exactly the cost a deployment pays for
// parking an RFIPad on a busy reader.
func (m *MultiPlate) Run(scripts []*hand.Script) [][]core.Reading {
	out := make([][]core.Reading, len(m.Plates))
	ps := make([]plateScript, len(m.Plates))
	var end time.Duration
	for i := range m.Plates {
		var s *hand.Script
		if i < len(scripts) {
			s = scripts[i]
		}
		ps[i] = plateScript{script: s}
		if s != nil {
			ps[i].end = s.Duration()
			if ps[i].end > end {
				end = ps[i].end
			}
		}
	}
	end += time.Second

	// One MAC simulator per plate (the reader re-arbitrates when it
	// switches ports), advanced dwell by dwell in round-robin.
	macs := make([]*epc.Simulator, len(m.Plates))
	for i, p := range m.Plates {
		macs[i] = epc.NewSimulator(p.macCfg, p.rng)
	}

	now := time.Duration(0)
	for now < end {
		for i, p := range m.Plates {
			if now >= end {
				break
			}
			plate := p
			sp := ps[i]
			scatter := func(t time.Duration) []rf.Scatterer {
				if sp.script == nil || t > sp.end {
					return nil
				}
				return hand.Scatterers(sp.script, plate.Dep.Body, t)
			}
			dwellEnd := now + m.SwitchDwell
			if dwellEnd > end {
				dwellEnd = end
			}
			tags := plate.Dep.Array.Tags
			macs[i].Run(now, dwellEnd, len(tags),
				func(ti int, t time.Duration) bool {
					return plate.Dep.Channel.ObserveAt(tags[ti].RFPoint(), scatter(t), nil, t).PoweredUp
				},
				func(ti int, t time.Duration) {
					obs := plate.Dep.Channel.ObserveAt(tags[ti].RFPoint(), scatter(t), plate.rng, t)
					out[i] = append(out[i], core.Reading{
						TagIndex: ti,
						EPC:      tags[ti].EPC,
						Time:     t,
						Phase:    obs.PhaseRad,
						RSS:      obs.RSSdBm,
						Doppler:  obs.DopplerHz,
					})
				})
			now = dwellEnd
		}
	}
	return out
}

// CalibrateAll runs the static capture on every plate (the reader
// cycles antennas during calibration too, so each plate's capture is
// proportionally thinner).
func (m *MultiPlate) CalibrateAll(dur time.Duration) ([]*core.Calibration, error) {
	streams := m.runStatic(dur)
	cals := make([]*core.Calibration, len(m.Plates))
	for i, readings := range streams {
		cal, err := core.Calibrate(readings, m.Plates[i].Grid.NumTags())
		if err != nil {
			return nil, err
		}
		cals[i] = cal
	}
	return cals, nil
}

// runStatic is Run with no scripts and a fixed duration.
func (m *MultiPlate) runStatic(dur time.Duration) [][]core.Reading {
	out := make([][]core.Reading, len(m.Plates))
	macs := make([]*epc.Simulator, len(m.Plates))
	for i, p := range m.Plates {
		macs[i] = epc.NewSimulator(p.macCfg, p.rng)
	}
	now := time.Duration(0)
	for now < dur {
		for i, p := range m.Plates {
			if now >= dur {
				break
			}
			plate := p
			dwellEnd := now + m.SwitchDwell
			if dwellEnd > dur {
				dwellEnd = dur
			}
			tags := plate.Dep.Array.Tags
			macs[i].Run(now, dwellEnd, len(tags),
				func(ti int, t time.Duration) bool {
					return plate.Dep.Channel.ObserveAt(tags[ti].RFPoint(), nil, nil, t).PoweredUp
				},
				func(ti int, t time.Duration) {
					obs := plate.Dep.Channel.ObserveAt(tags[ti].RFPoint(), nil, plate.rng, t)
					out[i] = append(out[i], core.Reading{
						TagIndex: ti, EPC: tags[ti].EPC, Time: t,
						Phase: obs.PhaseRad, RSS: obs.RSSdBm, Doppler: obs.DopplerHz,
					})
				})
			now = dwellEnd
		}
	}
	return out
}

// NewPlateSystem is a convenience constructor for plates that share a
// reader: each plate gets its own scene and RNG seed.
func NewPlateSystem(cfg scene.Config, seed int64) *System {
	rng := newSeededRand(seed)
	dep := scene.New(cfg, rng)
	return New(dep, rng)
}
