package sim

import (
	"fmt"

	"rfipad/internal/core"
	"rfipad/internal/grammar"
	"rfipad/internal/hand"
)

// LetterSpecs returns the hand-synthesizer stroke specs for writing the
// given letter across the whole canvas, following the grammar's
// canonical decomposition (Fig. 10).
func LetterSpecs(ch rune) ([]hand.Spec, error) {
	l, ok := grammar.Lookup(ch)
	if !ok {
		return nil, fmt.Errorf("sim: no grammar entry for %q", ch)
	}
	specs := make([]hand.Spec, len(l.Strokes))
	for i, p := range l.Strokes {
		specs[i] = hand.Spec{Motion: p.Motion, Box: p.Box}
	}
	return specs, nil
}

// RecognizeLetter runs the full offline pipeline over a capture of one
// written letter: segmentation, per-stroke recognition, and grammar
// composition. It returns the deduced letter, the per-stroke results,
// and ok=false when composition failed.
func RecognizeLetter(p *core.Pipeline, readings []core.Reading, seg *core.Segmenter, span core.Span) (rune, []core.BatchResult, bool) {
	results := p.RecognizeStream(readings, seg, span.Start, span.End)
	var obs []core.StrokeObservation
	for _, r := range results {
		if !r.Result.Ok {
			continue
		}
		obs = append(obs, core.StrokeObservation{Motion: r.Result.Motion, Box: r.Result.Box, CenterX: r.Result.CenterX, CenterY: r.Result.CenterY})
	}
	ch, ok := core.ComposeLetter(obs)
	return ch, results, ok
}
