// Package sim orchestrates full-system simulations: it drives the EPC
// Gen2 MAC over a deployed tag array while a synthesized hand moves
// above it, producing the timestamped reading stream a real reader
// would deliver. It is the glue between the substrates (scene, hand,
// epc, rf) and the recognition pipeline (core).
package sim

import (
	"math/rand"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/epc"
	"rfipad/internal/hand"
	"rfipad/internal/rf"
	"rfipad/internal/scene"
)

// System is one deployed RFIPad with its reader MAC.
type System struct {
	Dep  *scene.Deployment
	Grid core.Grid

	macCfg epc.Config
	rng    *rand.Rand
}

// Option configures a System.
type Option func(*System)

// WithMACConfig overrides the EPC MAC timing.
func WithMACConfig(cfg epc.Config) Option {
	return func(s *System) { s.macCfg = cfg }
}

// New builds a System over a deployment. rng drives the MAC slot
// choices and the channel measurement noise; it must not be nil.
func New(dep *scene.Deployment, rng *rand.Rand, opts ...Option) *System {
	s := &System{
		Dep:    dep,
		Grid:   core.Grid{Rows: dep.Array.Rows, Cols: dep.Array.Cols},
		macCfg: epc.DefaultConfig(),
		rng:    rng,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// scattererFn yields the moving scatterers at a given instant; nil for
// a static scene.
type scattererFn func(t time.Duration) []rf.Scatterer

// collect runs the MAC from start to end and converts each successful
// singulation into a Reading.
func (s *System) collect(start, end time.Duration, scs scattererFn) []core.Reading {
	mac := epc.NewSimulator(s.macCfg, s.rng)
	tags := s.Dep.Array.Tags
	var out []core.Reading

	responds := func(i int, now time.Duration) bool {
		var moving []rf.Scatterer
		if scs != nil {
			moving = scs(now)
		}
		// The power-up check is noiseless: it is a threshold on
		// harvested energy, not a measurement.
		obs := s.Dep.Channel.ObserveAt(tags[i].RFPoint(), moving, nil, now)
		return obs.PoweredUp
	}
	emit := func(i int, now time.Duration) {
		var moving []rf.Scatterer
		if scs != nil {
			moving = scs(now)
		}
		obs := s.Dep.Channel.ObserveAt(tags[i].RFPoint(), moving, s.rng, now)
		out = append(out, core.Reading{
			TagIndex: i,
			EPC:      tags[i].EPC,
			Time:     now,
			Phase:    obs.PhaseRad,
			RSS:      obs.RSSdBm,
			Doppler:  obs.DopplerHz,
		})
	}
	mac.Run(start, end, len(tags), responds, emit)
	return out
}

// CollectStatic gathers readings with no hand present — the static
// capture used for calibration and the Fig. 2/4/5 baselines.
func (s *System) CollectStatic(dur time.Duration) []core.Reading {
	return s.collect(0, dur, nil)
}

// Calibrate performs the deployment-time static capture and computes
// the diversity-suppression statistics.
func (s *System) Calibrate(dur time.Duration) (*core.Calibration, error) {
	return core.Calibrate(s.CollectStatic(dur), s.Grid.NumTags())
}

// RunScript simulates the MAC while the hand performs the script,
// returning the reading stream from t=0 to the script end plus a
// trailing quiet second (so segmentation can close the final stroke).
func (s *System) RunScript(script *hand.Script) []core.Reading {
	end := script.Duration() + time.Second
	return s.collect(0, end, func(t time.Duration) []rf.Scatterer {
		if t > script.Duration() {
			return nil
		}
		return hand.Scatterers(script, s.Dep.Body, t)
	})
}

// Synthesizer builds a hand synthesizer for this deployment's canvas.
func (s *System) Synthesizer(u hand.User, rng *rand.Rand) *hand.Synthesizer {
	return hand.NewSynthesizer(u, s.Dep.Canvas, rng)
}

// newSeededRand builds a deterministic RNG (small helper shared by the
// multi-plate constructor).
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
