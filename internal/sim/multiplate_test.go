package sim

import (
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/stroke"
)

func TestMultiPlateSharedReader(t *testing.T) {
	// The §I cost-efficiency story: one reader, two RFIPads, two
	// simultaneous writers — both strokes recognized.
	plateA := NewPlateSystem(scene.Config{}, 41)
	plateB := NewPlateSystem(scene.Config{}, 42)
	mp := NewMultiPlate([]*System{plateA, plateB}, 0)

	cals, err := mp.CalibrateAll(6 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	synthA := plateA.Synthesizer(hand.DefaultUser(), newSeededRand(1))
	synthB := plateB.Synthesizer(hand.DefaultUser(), newSeededRand(2))
	wantA := stroke.M(stroke.Vertical, stroke.Forward)
	wantB := stroke.M(stroke.Horizontal, stroke.Reverse)
	scriptA := synthA.DrawOne(wantA)
	scriptB := synthB.DrawOne(wantB)

	streams := mp.Run([]*hand.Script{scriptA, scriptB})
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}

	for i, tc := range []struct {
		plate  *System
		script *hand.Script
		want   stroke.Motion
	}{
		{plateA, scriptA, wantA},
		{plateB, scriptB, wantB},
	} {
		p := core.NewPipeline(tc.plate.Grid, cals[i])
		results := p.RecognizeStream(streams[i], nil, 0, tc.script.Duration()+time.Second)
		if len(results) != 1 || !results[0].Result.Ok {
			t.Errorf("plate %d: %d spans", i, len(results))
			continue
		}
		if got := results[0].Result.Motion; got != tc.want {
			t.Errorf("plate %d: got %v, want %v", i, got, tc.want)
		}
	}
}

func TestMultiPlateSharesReadBudget(t *testing.T) {
	// Each plate's read rate is roughly half of a dedicated reader's.
	solo := NewPlateSystem(scene.Config{}, 43)
	soloReads := len(solo.CollectStatic(4 * time.Second))

	a := NewPlateSystem(scene.Config{}, 43)
	b := NewPlateSystem(scene.Config{}, 44)
	mp := NewMultiPlate([]*System{a, b}, 0)
	streams := mp.runStatic(4 * time.Second)

	shared := len(streams[0])
	ratio := float64(shared) / float64(soloReads)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("shared-plate read fraction = %.2f, want ≈0.5", ratio)
	}
	// Both plates still see every tag.
	for pi, s := range streams {
		seen := map[int]bool{}
		for _, r := range s {
			seen[r.TagIndex] = true
		}
		if len(seen) != 25 {
			t.Errorf("plate %d saw %d tags", pi, len(seen))
		}
	}
}

func TestMultiPlateIdlePlate(t *testing.T) {
	a := NewPlateSystem(scene.Config{}, 45)
	b := NewPlateSystem(scene.Config{}, 46)
	mp := NewMultiPlate([]*System{a, b}, 300*time.Millisecond)
	synth := a.Synthesizer(hand.DefaultUser(), newSeededRand(5))
	script := synth.DrawOne(stroke.M(stroke.SlashDown, stroke.Forward))
	streams := mp.Run([]*hand.Script{script, nil})
	if len(streams[0]) == 0 || len(streams[1]) == 0 {
		t.Fatal("both plates should produce readings")
	}
	// The idle plate's stream is quiet: no spans detected.
	cal, err := core.Calibrate(streams[1], 25)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(core.Grid{Rows: 5, Cols: 5}, cal)
	if results := p.RecognizeStream(streams[1], nil, 0, script.Duration()+time.Second); len(results) != 0 {
		t.Errorf("idle plate produced %d spans", len(results))
	}
}
