package sim

import (
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/dsp"
	"rfipad/internal/hand"
	"rfipad/internal/scene"
	"rfipad/internal/stroke"
)

func newSystem(t *testing.T, seed int64, cfg scene.Config) *System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dep := scene.New(cfg, rng)
	return New(dep, rng)
}

func TestStaticCaptureStatistics(t *testing.T) {
	s := newSystem(t, 1, scene.Config{})
	readings := s.CollectStatic(3 * time.Second)
	if len(readings) < 500 {
		t.Fatalf("static capture = %d readings", len(readings))
	}
	// Every tag represented; phases near-constant per tag but centres
	// scattered over [0,2π) (Fig. 4/5).
	perTag := map[int][]float64{}
	for _, r := range readings {
		perTag[r.TagIndex] = append(perTag[r.TagIndex], r.Phase)
		if r.RSS > -5 || r.RSS < -75 {
			t.Fatalf("RSS out of range: %v", r.RSS)
		}
	}
	if len(perTag) != 25 {
		t.Fatalf("tags seen = %d", len(perTag))
	}
	var centres []float64
	for i, phases := range perTag {
		sd := dsp.CircularStd(phases)
		if sd > 0.3 {
			t.Errorf("tag %d static phase std = %v, want small", i, sd)
		}
		centres = append(centres, dsp.CircularMean(phases))
	}
	lo, hi := dsp.MinMax(centres)
	if hi-lo < 3 {
		t.Errorf("centres span only %v rad; want tag diversity over the circle", hi-lo)
	}
}

func TestCalibrateFromSystem(t *testing.T) {
	s := newSystem(t, 2, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cal.NumTags() != 25 {
		t.Fatalf("NumTags = %d", cal.NumTags())
	}
}

func TestEndToEndSingleStrokes(t *testing.T) {
	// The headline pipeline: synthesize a motion over the plate, run
	// the MAC + channel, calibrate, segment, recognize — the shape
	// must come back right for the basic motions.
	s := newSystem(t, 3, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(s.Grid, cal)
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(4)))

	tests := []stroke.Motion{
		stroke.M(stroke.Vertical, stroke.Forward),
		stroke.M(stroke.Horizontal, stroke.Forward),
		stroke.M(stroke.SlashDown, stroke.Forward),
	}
	for _, want := range tests {
		t.Run(want.String(), func(t *testing.T) {
			script := synth.DrawOne(want)
			readings := s.RunScript(script)
			results := p.RecognizeStream(readings, nil, 0, script.Duration()+time.Second)
			if len(results) != 1 {
				t.Fatalf("spans = %d, want 1", len(results))
			}
			got := results[0].Result
			if !got.Ok {
				t.Fatalf("recognition failed\n%s", got.Image)
			}
			if got.Motion.Shape != want.Shape {
				t.Errorf("shape = %v, want %v\nimage:\n%s\nmask:\n%s",
					got.Motion.Shape, want.Shape, got.Image, core.MaskString(s.Grid, got.Mask))
			}
			if got.Motion.Dir != want.Dir {
				t.Errorf("direction = %v, want %v (dirOK=%v, travel %v)",
					got.Motion.Dir, want.Dir, got.DirectionOK, got.TravelDir)
			}
		})
	}
}

func TestEndToEndClick(t *testing.T) {
	s := newSystem(t, 5, scene.Config{})
	cal, err := s.Calibrate(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(s.Grid, cal)
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(6)))
	// Click over the centre tag.
	script := synth.Write([]hand.Spec{{
		Motion: stroke.M(stroke.Click, 0),
		Box:    stroke.R(0.4, 0.4, 0.6, 0.6),
	}})
	readings := s.RunScript(script)
	results := p.RecognizeStream(readings, nil, 0, script.Duration()+time.Second)
	if len(results) != 1 {
		t.Fatalf("spans = %d, want 1", len(results))
	}
	got := results[0].Result
	if !got.Ok || got.Motion.Shape != stroke.Click {
		t.Errorf("got %v ok=%v\n%s", got.Motion, got.Ok, got.Image)
	}
	// The click lands near the plate centre.
	if got.Box.CenterX() < 0.25 || got.Box.CenterX() > 0.75 {
		t.Errorf("click box off-centre: %+v", got.Box)
	}
}

func TestRunScriptDeterministicBySeed(t *testing.T) {
	run := func() []core.Reading {
		s := newSystem(t, 7, scene.Config{})
		synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(8)))
		return s.RunScript(synth.DrawOne(stroke.M(stroke.Vertical, stroke.Forward)))
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seeds produced different streams")
		}
	}
}

func TestClickSuppressesPressedTagReads(t *testing.T) {
	// At reduced TX power the pressed tag's harvesting margin is gone:
	// the resonance detuning stops the IC powering up, so its read
	// rate collapses while distant tags keep reporting (the §VI
	// working-range and Fig. 17 low-power behaviour).
	s := newSystem(t, 9, scene.Config{TxPowerDBm: 13})
	synth := s.Synthesizer(hand.DefaultUser(), rand.New(rand.NewSource(10)))
	spec := hand.Spec{
		Motion: stroke.M(stroke.Click, 0),
		Box:    stroke.R(0.4, 0.4, 0.6, 0.6), // over tag (2,2)=12
	}
	script := synth.Write([]hand.Spec{spec, spec, spec})
	readings := s.RunScript(script)

	// Count reads while the hand is within 3 cm of the pressed tag —
	// there the detuning removes its power margin entirely.
	pressedPos := s.Dep.Array.TagAt(2, 2).Pos
	deep := func(tm time.Duration) bool {
		pos, ok := script.Path.At(tm)
		return ok && pos.Dist(pressedPos) < 0.03
	}
	var pressed, corner int
	for _, r := range readings {
		if !deep(r.Time) {
			continue
		}
		switch r.TagIndex {
		case 12:
			pressed++
		case 0:
			corner++
		}
	}
	if corner == 0 {
		t.Fatal("corner tag unread during deep pushes")
	}
	if float64(pressed) > 0.34*float64(corner) {
		t.Errorf("pressed tag reads %d vs corner %d during deep pushes; want a collapse", pressed, corner)
	}
}
