package dsp

import "math"

// OtsuBins is the histogram resolution used when applying Otsu's method
// to continuous-valued images. 256 matches the 8-bit grayscale setting
// the original algorithm (Otsu 1979) was formulated for.
const OtsuBins = 256

// OtsuThreshold computes Otsu's optimal clustering threshold for the
// values in x (NaNs ignored). The values are first normalized to [0,1]
// and bucketed into OtsuBins histogram bins; the returned threshold is
// in the original value scale. Inputs with fewer than two distinct
// values return the minimum value (everything classified as background).
func OtsuThreshold(x []float64) float64 {
	lo, hi := MinMax(x)
	if math.IsNaN(lo) || hi == lo {
		return lo
	}
	span := hi - lo

	var hist [OtsuBins]int
	total := 0
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		b := int((v - lo) / span * float64(OtsuBins-1))
		if b < 0 {
			b = 0
		} else if b >= OtsuBins {
			b = OtsuBins - 1
		}
		hist[b]++
		total++
	}
	if total < 2 {
		return lo
	}

	// Otsu's method: choose the bin boundary maximizing the
	// between-class variance ω0·ω1·(μ0−μ1)².
	var sumAll float64
	for b, c := range hist {
		sumAll += float64(b) * float64(c)
	}
	// When several bin boundaries tie for the maximum (the empty gap
	// between two clusters), the customary choice is the middle of the
	// plateau, so we track the first and last maximizing bins.
	var (
		wB, sumB            float64
		bestVar             float64 = -1
		firstBest, lastBest int
	)
	for b := 0; b < OtsuBins; b++ {
		wB += float64(hist[b])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(b) * float64(hist[b])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			firstBest, lastBest = b, b
		} else if between == bestVar {
			lastBest = b
		}
	}
	bestBin := float64(firstBest+lastBest) / 2
	// Threshold at the upper edge of the best background bin.
	return lo + (bestBin+0.5)/float64(OtsuBins-1)*span
}

// OtsuBinarize classifies each value of x as foreground (true, value
// above the Otsu threshold) or background (false). NaNs are background.
func OtsuBinarize(x []float64) []bool {
	th := OtsuThreshold(x)
	out := make([]bool, len(x))
	if math.IsNaN(th) {
		return out
	}
	for i, v := range x {
		out[i] = !math.IsNaN(v) && v > th
	}
	return out
}
