package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestWrapSignedNearMatchesWrapSigned sweeps the fast wrap against the
// reference over a dense grid plus the adversarial edge values; the
// results must be bit-identical (the columnar ingest path's event
// equivalence rests on it).
func TestWrapSignedNearMatchesWrapSigned(t *testing.T) {
	check := func(theta float64) {
		t.Helper()
		got := WrapSignedNear(theta)
		want := WrapSigned(theta)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("WrapSignedNear(%v) = %v, want NaN", theta, got)
			}
			return
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("WrapSignedNear(%v) = %v (%x), WrapSigned = %v (%x)",
				theta, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	for theta := -12.0; theta <= 16.0; theta += 1e-3 {
		check(theta)
	}
	edges := []float64{
		0, math.Copysign(0, -1),
		math.Pi, -math.Pi, 2 * math.Pi, -2 * math.Pi, 4 * math.Pi,
		math.Nextafter(math.Pi, 4), math.Nextafter(math.Pi, 0),
		math.Nextafter(2*math.Pi, 7), math.Nextafter(2*math.Pi, 0),
		math.Nextafter(4*math.Pi, 13), math.Nextafter(4*math.Pi, 0),
		math.Nextafter(-2*math.Pi, 0), math.Nextafter(-2*math.Pi, -7),
		1e-300, -1e-300, 100, -100,
		math.NaN(), math.Inf(1), math.Inf(-1),
	}
	for _, theta := range edges {
		check(theta)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		check((rng.Float64() - 0.5) * 8 * math.Pi)
	}
}

// TestUnwrapColumnMatchesComposition pins UnwrapColumn against the
// two-pass composition (Wrap(p−mean) per sample, then UnwrapInto) it
// fuses, including NaN samples and the NaN-mean passthrough arm.
func TestUnwrapColumnMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		phases := make([]float64, n)
		for i := range phases {
			phases[i] = rng.Float64() * 2 * math.Pi
			if rng.Intn(12) == 0 {
				phases[i] = math.NaN()
			}
		}
		mean := rng.Float64() * 2 * math.Pi
		if trial%5 == 0 {
			mean = math.NaN() // suppression disabled
		}

		wrapped := make([]float64, n)
		for i, p := range phases {
			if math.IsNaN(mean) {
				wrapped[i] = p
			} else {
				wrapped[i] = Wrap(p - mean)
			}
		}
		want := UnwrapInto(nil, wrapped)
		got := UnwrapColumn(nil, phases, mean)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d sample %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSmoothedKernelsMatchComposition pins the fused moving-average
// accumulators against MovingAverage + TotalVariation/NetChange.
func TestSmoothedKernelsMatchComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
			if rng.Intn(10) == 0 {
				x[i] = math.NaN()
			}
		}
		for _, width := range []int{0, 1, 2, 3, 5, 8} {
			sm := MovingAverage(x, width)
			wantTV := TotalVariation(sm)
			gotTV := SmoothedTotalVariation(x, width)
			if math.Float64bits(gotTV) != math.Float64bits(wantTV) {
				t.Fatalf("trial %d width %d: SmoothedTotalVariation = %v, want %v", trial, width, gotTV, wantTV)
			}
			wantNC := NetChange(sm)
			gotNC := SmoothedNetChange(x, width)
			if math.Float64bits(gotNC) != math.Float64bits(wantNC) {
				t.Fatalf("trial %d width %d: SmoothedNetChange = %v, want %v", trial, width, gotNC, wantNC)
			}
		}
	}
}
