package dsp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func mkSeries(n int, f func(i int) float64) []TimedSample {
	out := make([]TimedSample, n)
	for i := range out {
		out[i] = TimedSample{T: time.Duration(i*10) * time.Millisecond, V: f(i)}
	}
	return out
}

func TestFindTroughLocatesDip(t *testing.T) {
	// Flat at -41 dBm with a dip to -49 centred at sample 50.
	s := mkSeries(100, func(i int) float64 {
		d := float64(i-50) / 6
		return -41 - 8*math.Exp(-d*d)
	})
	tr, ok := FindTrough(s, 5, 2)
	if !ok {
		t.Fatal("no trough found")
	}
	want := 500 * time.Millisecond
	if diff := (tr.T - want); diff < -60*time.Millisecond || diff > 60*time.Millisecond {
		t.Errorf("trough at %v, want ≈%v", tr.T, want)
	}
	if tr.Depth < 6 {
		t.Errorf("depth %v, want ≈8", tr.Depth)
	}
}

func TestFindTroughRejectsFlat(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := mkSeries(100, func(i int) float64 { return -41 + r.NormFloat64()*0.3 })
	if _, ok := FindTrough(s, 5, 2); ok {
		t.Error("found trough in flat noise")
	}
}

func TestFindTroughNoisyDip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := mkSeries(200, func(i int) float64 {
		d := float64(i-120) / 10
		return -41 - 10*math.Exp(-d*d) + r.NormFloat64()*0.8
	})
	tr, ok := FindTrough(s, 7, 3)
	if !ok {
		t.Fatal("no trough found in noisy dip")
	}
	want := 1200 * time.Millisecond
	if diff := tr.T - want; diff < -100*time.Millisecond || diff > 100*time.Millisecond {
		t.Errorf("trough at %v, want ≈%v", tr.T, want)
	}
}

func TestFindTroughOrderingTwoTags(t *testing.T) {
	// Two tags passed in sequence: troughs must come out in pass order.
	tagA := mkSeries(200, func(i int) float64 {
		d := float64(i-60) / 8
		return -41 - 9*math.Exp(-d*d)
	})
	tagB := mkSeries(200, func(i int) float64 {
		d := float64(i-140) / 8
		return -43 - 9*math.Exp(-d*d)
	})
	ta, okA := FindTrough(tagA, 5, 2)
	tb, okB := FindTrough(tagB, 5, 2)
	if !okA || !okB {
		t.Fatal("troughs not found")
	}
	if ta.T >= tb.T {
		t.Errorf("ordering wrong: A at %v, B at %v", ta.T, tb.T)
	}
}

func TestFindTroughTooFewSamples(t *testing.T) {
	if _, ok := FindTrough(mkSeries(2, func(int) float64 { return 0 }), 3, 1); ok {
		t.Error("found trough with 2 samples")
	}
	if _, ok := FindTrough(nil, 3, 1); ok {
		t.Error("found trough with no samples")
	}
}

func TestFrame(t *testing.T) {
	samples := []TimedSample{
		{T: 5 * time.Millisecond, V: 1},
		{T: 95 * time.Millisecond, V: 2},
		{T: 105 * time.Millisecond, V: 3},
		{T: 310 * time.Millisecond, V: 4},
	}
	frames := Frame(samples, 0, 100*time.Millisecond)
	if len(frames) != 4 {
		t.Fatalf("frames = %d, want 4", len(frames))
	}
	if len(frames[0]) != 2 || len(frames[1]) != 1 || len(frames[2]) != 0 || len(frames[3]) != 1 {
		t.Errorf("frame sizes = %d,%d,%d,%d", len(frames[0]), len(frames[1]), len(frames[2]), len(frames[3]))
	}
	// Samples before start dropped.
	f2 := Frame(samples, 100*time.Millisecond, 100*time.Millisecond)
	if len(f2) != 3 || len(f2[0]) != 1 {
		t.Errorf("start offset handling wrong: %v", f2)
	}
	if Frame(samples, 0, 0) != nil {
		t.Error("zero frame length should return nil")
	}
}

func TestValues(t *testing.T) {
	v := Values([]TimedSample{{V: 1}, {V: 2}})
	if len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Errorf("Values = %v", v)
	}
}
