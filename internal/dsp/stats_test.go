package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanStdRMS(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Std(x); !almostEq(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if got := RMS([]float64{3, 4}); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std(nil)) || !math.IsNaN(RMS(nil)) {
		t.Error("empty inputs should give NaN")
	}
	if got := Std([]float64{9}); got != 0 {
		t.Errorf("Std single = %v", got)
	}
	// NaNs ignored.
	if got := Mean([]float64{1, math.NaN(), 3}); !almostEq(got, 2, 1e-12) {
		t.Errorf("Mean with NaN = %v", got)
	}
}

func TestCircularMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"simple", []float64{0.1, 0.2, 0.3}, 0.2},
		{"straddles-zero", []float64{6.2, 0.1}, Wrap((6.2 + 0.1 + 2*math.Pi) / 2)},
		{"at-pi", []float64{math.Pi - 0.1, math.Pi + 0.1}, math.Pi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CircularMean(tt.in)
			// Compare on the circle.
			if !almostEq(math.Abs(WrapSigned(got-tt.want)), 0, 1e-9) {
				t.Errorf("CircularMean = %v, want %v", got, tt.want)
			}
		})
	}
	if !math.IsNaN(CircularMean(nil)) {
		t.Error("CircularMean(nil) should be NaN")
	}
}

func TestCircularStd(t *testing.T) {
	if got := CircularStd([]float64{1.3, 1.3, 1.3}); !almostEq(got, 0, 1e-9) {
		t.Errorf("concentrated CircularStd = %v", got)
	}
	// Spread samples have larger circular std than tight ones.
	tight := CircularStd([]float64{1.0, 1.05, 0.95})
	wide := CircularStd([]float64{0.0, 1.5, 3.0})
	if tight >= wide {
		t.Errorf("tight %v >= wide %v", tight, wide)
	}
	if !math.IsNaN(CircularStd(nil)) {
		t.Error("CircularStd(nil) should be NaN")
	}
	// Uniformly spread over circle -> resultant ~0 -> very large (the
	// resultant never reaches exactly zero in floating point).
	if got := CircularStd([]float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}); got < 5 {
		t.Errorf("uniform CircularStd = %v, want large", got)
	}
}

func TestCircularStdMatchesLinearForSmallSpread(t *testing.T) {
	// For tightly clustered angles, circular std ≈ linear std.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		centre := r.Float64() * 2 * math.Pi
		x := make([]float64, 100)
		lin := make([]float64, 100)
		for i := range x {
			d := r.NormFloat64() * 0.05
			lin[i] = d
			x[i] = Wrap(centre + d)
		}
		cs := CircularStd(x)
		ls := Std(lin)
		if math.Abs(cs-ls) > 0.01 {
			t.Fatalf("trial %d: circular %v vs linear %v", trial, cs, ls)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got1 := MovingAverage(x, 1)
	for i := range x {
		if got1[i] != x[i] {
			t.Error("width 1 should copy")
		}
	}
}

func TestMedianMinMaxNormalize(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	lo, hi := MinMax([]float64{5, math.NaN(), -2, 3})
	if lo != -2 || hi != 5 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	n := Normalize([]float64{10, 20, 30})
	if n[0] != 0 || n[2] != 1 || !almostEq(n[1], 0.5, 1e-12) {
		t.Errorf("Normalize = %v", n)
	}
	nc := Normalize([]float64{7, 7})
	if nc[0] != 0 || nc[1] != 0 {
		t.Errorf("Normalize constant = %v", nc)
	}
	nn := Normalize([]float64{1, math.NaN(), 2})
	if !math.IsNaN(nn[1]) {
		t.Error("Normalize should preserve NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, math.NaN()})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	tests := []struct {
		v, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{9, 1},
	}
	for _, tt := range tests {
		if got := c.P(tt.v); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	empty := NewCDF(nil)
	if got := empty.P(3); got != 0 {
		t.Errorf("empty P = %v", got)
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty Quantile should be NaN")
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.NormFloat64()
	}
	c := NewCDF(samples)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := c.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("Quantile not monotone at q=%v", q)
		}
		prev = v
		// P and Quantile are approximate inverses.
		if p := c.P(v); p < q-0.02 {
			t.Fatalf("P(Quantile(%v)) = %v too small", q, p)
		}
	}
}
