package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWrap(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-4 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := Wrap(tt.in); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Wrap(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapSigned(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{math.Pi + 0.1, -math.Pi + 0.1},
		{-0.5, -0.5},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := WrapSigned(tt.in); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("WrapSigned(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 1e6)
		w := Wrap(x)
		ws := WrapSigned(x)
		return w >= 0 && w < 2*math.Pi && ws > -math.Pi-1e-12 && ws <= math.Pi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUnwrapRemovesJumps(t *testing.T) {
	// A linearly increasing true phase, observed wrapped.
	truth := make([]float64, 200)
	obs := make([]float64, 200)
	for i := range truth {
		truth[i] = 0.1 * float64(i) // total 19.9 rad, several wraps
		obs[i] = Wrap(truth[i])
	}
	un := Unwrap(obs)
	for i := range un {
		// Unwrapped series should match the truth up to a constant 2πk.
		diff := un[i] - truth[i]
		k := math.Round(diff / (2 * math.Pi))
		if !almostEq(diff, k*2*math.Pi, 1e-9) {
			t.Fatalf("sample %d: unwrap drifted, diff=%v", i, diff)
		}
		if i > 0 {
			if math.Abs(un[i]-un[i-1]) > math.Pi {
				t.Fatalf("sample %d: residual jump %v", i, un[i]-un[i-1])
			}
		}
	}
}

func TestUnwrapRoundTripProperty(t *testing.T) {
	// For any smooth sequence (steps < π), Unwrap(Wrap(x)) == x + 2πk.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 50 + r.Intn(100)
		x := make([]float64, n)
		x[0] = r.Float64() * 2 * math.Pi
		for i := 1; i < n; i++ {
			x[i] = x[i-1] + (r.Float64()-0.5)*2*3.0 // steps within ±3 < π? no: π≈3.14, ok
		}
		wrapped := make([]float64, n)
		for i, v := range x {
			wrapped[i] = Wrap(v)
		}
		un := Unwrap(wrapped)
		k := math.Round((un[0] - x[0]) / (2 * math.Pi))
		for i := range un {
			if !almostEq(un[i], x[i]+k*2*math.Pi, 1e-6) {
				t.Fatalf("trial %d sample %d: %v vs %v", trial, i, un[i], x[i]+k*2*math.Pi)
			}
		}
	}
}

func TestUnwrapEdgeCases(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Error("Unwrap(nil) non-empty")
	}
	if got := Unwrap([]float64{1.5}); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("Unwrap single = %v", got)
	}
	// NaNs pass through without breaking continuity.
	in := []float64{0.1, math.NaN(), 0.2, 6.2, 0.05}
	got := Unwrap(in)
	if !math.IsNaN(got[1]) {
		t.Error("NaN not preserved")
	}
	// 6.2 -> 0.05 is a wrap-up (+2π on later samples).
	if got[4] <= got[3] {
		t.Errorf("wrap across NaN mishandled: %v", got)
	}
}

func TestTotalVariation(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"monotone", []float64{0, 1, 2, 3}, 3},
		{"zigzag", []float64{0, 1, 0, 1}, 3},
		{"with-nan", []float64{0, math.NaN(), 2}, 2},
		{"constant", []float64{7, 7, 7}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TotalVariation(tt.in); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("TotalVariation = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTotalVariationLowerBoundProperty(t *testing.T) {
	// TV >= |net change| always.
	f := func(raw []float64) bool {
		for i := range raw {
			raw[i] = math.Mod(raw[i], 1e6)
		}
		return TotalVariation(raw)+1e-9 >= math.Abs(NetChange(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNetChange(t *testing.T) {
	if got := NetChange([]float64{1, 5, 2}); got != 1 {
		t.Errorf("NetChange = %v", got)
	}
	if got := NetChange(nil); got != 0 {
		t.Errorf("NetChange(nil) = %v", got)
	}
	if got := NetChange([]float64{math.NaN(), 3, math.NaN(), 8, math.NaN()}); got != 5 {
		t.Errorf("NetChange with NaNs = %v", got)
	}
}
