package dsp

import "math"

// Columnar kernels: single-pass variants of the per-sample primitives,
// written for the batch ingest path where the data already sits in
// struct-of-arrays columns. Each kernel sweeps a []float64 column once
// instead of being called per reading, and each is bit-identical to the
// composition of per-sample calls it replaces — the streaming
// recognizer's event equivalence depends on that, so any change here
// must preserve the exact floating-point operation sequence.

// WrapSignedNear is WrapSigned for angles already near the principal
// range: for |theta| < 4π (and theta > -2π) it reduces with one or two
// additions instead of math.Mod, falling back to WrapSigned outside
// that range (and for NaN/Inf). The branch structure replays the exact
// operation sequence Wrap/WrapSigned perform — math.Mod is exact, and
// every subtraction below is exact by Sterbenz's lemma on the covered
// intervals — so the result is bit-identical to WrapSigned(theta).
//
// The diversity-suppression hot path calls this on phase − meanPhase,
// which lies in (-π, 3π) by construction (phase ∈ [0, 2π), circular
// mean ∈ [0, 2π)), so the fallback is never taken in practice.
// The |theta| < 2π body is kept small enough to inline into the
// column hot loops; wrapSignedNearWide carries the remaining arms.
func WrapSignedNear(theta float64) float64 {
	if theta >= 0 {
		if theta < 2*math.Pi {
			// math.Mod(theta, 2π) == theta exactly; Wrap adds nothing.
			if theta > math.Pi {
				return theta - 2*math.Pi
			}
			return theta
		}
	} else if theta > -2*math.Pi {
		// math.Mod(theta, 2π) == theta exactly (|theta| < 2π); Wrap then
		// adds one period — the same single rounded addition as here.
		t := theta + 2*math.Pi
		if t > math.Pi {
			return t - 2*math.Pi
		}
		return t
	}
	return wrapSignedNearWide(theta)
}

// wrapSignedNearWide reduces theta >= 2π (and the NaN/Inf/far cases):
// the outlined continuation of WrapSignedNear.
func wrapSignedNearWide(theta float64) float64 {
	if theta >= 2*math.Pi && theta < 4*math.Pi {
		// math.Mod subtracts one period, exactly — and the direct
		// subtraction is exact too (Sterbenz: theta ∈ [π, 4π]).
		t := theta - 2*math.Pi
		if t > math.Pi {
			return t - 2*math.Pi
		}
		return t
	}
	return WrapSigned(theta) // also catches NaN and ±Inf
}

// UnwrapColumn fuses diversity suppression and phase de-periodicity
// over one tag's phase column: dst[i] = unwrap(Wrap(phase[i] − mean)),
// in a single pass with no intermediate buffer. It is bit-identical to
// wrapping each sample with Wrap(p − mean) and then calling UnwrapInto
// on the result. A NaN mean disables the suppression (samples pass to
// the unwrapper raw), which is how callers handle the
// no-suppression ablation arm without a second code path.
func UnwrapColumn(dst, phase []float64, mean float64) []float64 {
	out := growFloats(dst, len(phase))
	if len(phase) == 0 {
		return out
	}
	suppress := !math.IsNaN(mean)
	wrap := func(p float64) float64 {
		if suppress {
			return Wrap(p - mean)
		}
		return p
	}
	p0 := wrap(phase[0])
	out[0] = p0
	offset := 0.0
	prev := p0
	for i := 1; i < len(phase); i++ {
		p := wrap(phase[i])
		if math.IsNaN(p) {
			out[i] = p
			continue
		}
		if !math.IsNaN(prev) {
			d := p - prev
			if d > math.Pi {
				offset -= 2 * math.Pi
			} else if d < -math.Pi {
				offset += 2 * math.Pi
			}
		}
		out[i] = p + offset
		prev = p
	}
	return out
}

// SmoothedTotalVariation returns TotalVariation(MovingAverage(x, width))
// without materializing the smoothed series: each centred-window mean is
// computed exactly as MovingAverageInto computes it (a fresh Mean over
// the shrunken edge window), and the |Δ| accumulation replays
// TotalVariation's NaN-skipping loop — so the result is bit-identical
// to the two-pass composition while touching one buffer fewer.
func SmoothedTotalVariation(x []float64, width int) float64 {
	var tv float64
	prev := math.NaN()
	n := len(x)
	half := width / 2
	for i := 0; i < n; i++ {
		v := smoothedAt(x, i, half, width)
		if math.IsNaN(v) {
			continue
		}
		if !math.IsNaN(prev) {
			tv += math.Abs(v - prev)
		}
		prev = v
	}
	return tv
}

// SmoothedNetChange is NetChange(MovingAverage(x, width)) in one pass —
// the telescoped ablation arm's counterpart to SmoothedTotalVariation.
func SmoothedNetChange(x []float64, width int) float64 {
	first, last := math.NaN(), math.NaN()
	n := len(x)
	half := width / 2
	for i := 0; i < n; i++ {
		v := smoothedAt(x, i, half, width)
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(first) {
			first = v
		}
		last = v
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		return 0
	}
	return last - first
}

// smoothedAt is one output sample of MovingAverageInto: the Mean of the
// centred (edge-shrunken) window around i, or a copy when width <= 1.
func smoothedAt(x []float64, i, half, width int) float64 {
	if width <= 1 {
		return x[i]
	}
	lo := i - half
	if lo < 0 {
		lo = 0
	}
	hi := i + half + 1
	if hi > len(x) {
		hi = len(x)
	}
	return Mean(x[lo:hi])
}
