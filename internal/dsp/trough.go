package dsp

import (
	"math"
	"time"
)

// TimedSample is a timestamped scalar measurement (e.g. one RSS read of
// one tag).
type TimedSample struct {
	T time.Duration
	V float64
}

// Trough describes one detected local minimum in a timed series.
type Trough struct {
	T     time.Duration // time of the minimum
	V     float64       // value at the minimum
	Depth float64       // how far the minimum sits below the series median
}

// FindTrough implements the two-staged RSS trough estimation from
// Section III-B of the paper.
//
// Stage 1 (coarse): the series is smoothed with a centred moving average
// and the global minimum located.
// Stage 2 (refine): within a refinement radius around the coarse
// minimum, the trough time is re-estimated on the raw samples as the
// depth-weighted centroid of the below-median excursion, which is robust
// to flat-bottomed troughs and single-sample noise spikes.
//
// ok is false when the series has no significant trough — i.e. the
// excursion below the median is smaller than minDepth (same units as the
// samples; for RSS, dB).
func FindTrough(samples []TimedSample, smoothWidth int, minDepth float64) (Trough, bool) {
	if len(samples) < 3 {
		return Trough{}, false
	}
	raw := make([]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.V
	}
	smooth := MovingAverage(raw, smoothWidth)
	med := Median(raw)

	// Stage 1: coarse global minimum of the smoothed series.
	minIdx, minVal := -1, math.Inf(1)
	for i, v := range smooth {
		if !math.IsNaN(v) && v < minVal {
			minVal, minIdx = v, i
		}
	}
	if minIdx < 0 {
		return Trough{}, false
	}
	depth := med - minVal
	if math.IsNaN(depth) || depth < minDepth {
		return Trough{}, false
	}

	// Stage 2: expand from the coarse minimum while samples remain below
	// the median, then take the depth-weighted time centroid.
	lo := minIdx
	for lo > 0 && smooth[lo-1] < med {
		lo--
	}
	hi := minIdx
	for hi < len(smooth)-1 && smooth[hi+1] < med {
		hi++
	}
	var wSum, tSum float64
	for i := lo; i <= hi; i++ {
		w := med - raw[i]
		if w <= 0 || math.IsNaN(w) {
			continue
		}
		wSum += w
		tSum += w * float64(samples[i].T)
	}
	t := samples[minIdx].T
	if wSum > 0 {
		t = time.Duration(tSum / wSum)
	}
	return Trough{T: t, V: raw[minIdx], Depth: depth}, true
}

// Frame groups timed samples into consecutive non-overlapping frames of
// the given length starting at start. Sample i lands in frame
// (T−start)/frameLen; samples before start are dropped. The returned
// slice covers every frame up to the last sample (possibly empty
// frames in between).
func Frame(samples []TimedSample, start, frameLen time.Duration) [][]TimedSample {
	if frameLen <= 0 {
		return nil
	}
	var frames [][]TimedSample
	for _, s := range samples {
		if s.T < start {
			continue
		}
		idx := int((s.T - start) / frameLen)
		for len(frames) <= idx {
			frames = append(frames, nil)
		}
		frames[idx] = append(frames[idx], s)
	}
	return frames
}

// Values extracts the scalar values from timed samples.
func Values(samples []TimedSample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.V
	}
	return out
}
