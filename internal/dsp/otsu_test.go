package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestOtsuSeparatesBimodal(t *testing.T) {
	// Two well-separated clusters: Otsu must cut between them.
	r := rand.New(rand.NewSource(11))
	var x []float64
	for i := 0; i < 100; i++ {
		x = append(x, 1+r.NormFloat64()*0.1)
	}
	for i := 0; i < 30; i++ {
		x = append(x, 9+r.NormFloat64()*0.1)
	}
	th := OtsuThreshold(x)
	if th < 2 || th > 8 {
		t.Fatalf("threshold %v not between clusters", th)
	}
	mask := OtsuBinarize(x)
	for i, m := range mask {
		want := x[i] > 5
		if m != want {
			t.Fatalf("sample %d (%v) classified %v", i, x[i], m)
		}
	}
}

func TestOtsuTagArrayScenario(t *testing.T) {
	// The real use: 25 tag scores, 5 of which (one column) are hot.
	scores := make([]float64, 25)
	r := rand.New(rand.NewSource(5))
	for i := range scores {
		scores[i] = 0.5 + r.Float64()*0.5 // background activity
	}
	hot := []int{2, 7, 12, 17, 22} // column 3 of a 5×5 row-major grid
	for _, i := range hot {
		scores[i] = 6 + r.Float64()
	}
	mask := OtsuBinarize(scores)
	for i, m := range mask {
		isHot := i%5 == 2
		if m != isHot {
			t.Fatalf("tag %d: foreground=%v, want %v (score %v)", i, m, isHot, scores[i])
		}
	}
}

func TestOtsuDegenerateInputs(t *testing.T) {
	if got := OtsuThreshold(nil); !math.IsNaN(got) {
		t.Errorf("empty threshold = %v, want NaN", got)
	}
	if got := OtsuThreshold([]float64{3, 3, 3}); got != 3 {
		t.Errorf("constant threshold = %v, want 3", got)
	}
	mask := OtsuBinarize([]float64{3, 3, 3})
	for _, m := range mask {
		if m {
			t.Error("constant input produced foreground")
		}
	}
	maskNaN := OtsuBinarize([]float64{math.NaN(), 1, 10})
	if maskNaN[0] {
		t.Error("NaN classified as foreground")
	}
	if !maskNaN[2] || maskNaN[1] {
		t.Errorf("two-value split wrong: %v", maskNaN)
	}
}

func TestOtsuThresholdWithinRangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		lo, hi := MinMax(x)
		if lo == hi {
			continue
		}
		th := OtsuThreshold(x)
		if th < lo || th > hi {
			t.Fatalf("threshold %v outside [%v,%v]", th, lo, hi)
		}
		// At least one sample on the foreground side unless degenerate.
		mask := OtsuBinarize(x)
		fg := 0
		for _, m := range mask {
			if m {
				fg++
			}
		}
		if fg == 0 || fg == n {
			t.Fatalf("trial %d: degenerate split fg=%d/%d", trial, fg, n)
		}
	}
}
