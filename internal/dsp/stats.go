package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, ignoring NaNs. It returns NaN
// for an empty (or all-NaN) input.
func Mean(x []float64) float64 {
	var sum float64
	var n int
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Std returns the population standard deviation of x, ignoring NaNs.
// It returns NaN for an empty input and 0 for a single sample.
func Std(x []float64) float64 {
	m := Mean(x)
	if math.IsNaN(m) {
		return math.NaN()
	}
	var ss float64
	var n int
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		d := v - m
		ss += d * d
		n++
	}
	return math.Sqrt(ss / float64(n))
}

// RMS returns the root mean square of x, ignoring NaNs; NaN for empty
// input. This is the per-frame magnitude used by the stroke segmenter
// (Eq. 11).
func RMS(x []float64) float64 {
	var ss float64
	var n int
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		ss += v * v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(ss / float64(n))
}

// CircularMean returns the mean angle of x (radians) computed on the
// unit circle, wrapped onto [0, 2π). Tag phases cluster around a central
// value that may straddle the 0/2π boundary, so a plain arithmetic mean
// would be biased; the calibrator uses this instead. NaN for empty input.
func CircularMean(x []float64) float64 {
	var s, c float64
	var n int
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		s += math.Sin(v)
		c += math.Cos(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return Wrap(math.Atan2(s, c))
}

// CircularStd returns the circular standard deviation of the angles x
// (radians): sqrt(-2 ln R) where R is the mean resultant length. It is 0
// for perfectly concentrated samples and grows without bound as the
// samples spread over the circle. NaN for empty input.
func CircularStd(x []float64) float64 {
	var s, c float64
	var n int
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		s += math.Sin(v)
		c += math.Cos(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	r := math.Hypot(s, c) / float64(n)
	if r <= 0 {
		return math.Inf(1)
	}
	if r >= 1 {
		return 0
	}
	return math.Sqrt(-2 * math.Log(r))
}

// growFloats returns a slice of exactly length n, reusing buf's backing
// array when its capacity allows — the shared idiom behind the *Into
// scratch-buffer variants.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// MovingAverage smooths x with a centred window of the given odd width.
// Edges use the available shrunken window. width <= 1 returns a copy.
func MovingAverage(x []float64, width int) []float64 {
	return MovingAverageInto(make([]float64, len(x)), x, width)
}

// MovingAverageInto is MovingAverage writing into dst, which is grown as
// needed and returned with length len(x). dst must not alias x.
func MovingAverageInto(dst, x []float64, width int) []float64 {
	out := growFloats(dst, len(x))
	if width <= 1 {
		copy(out, x)
		return out
	}
	half := width / 2
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(x) {
			hi = len(x)
		}
		out[i] = Mean(x[lo:hi])
	}
	return out
}

// Median returns the median of x, ignoring NaNs; NaN for empty input.
func Median(x []float64) float64 {
	vals := make([]float64, 0, len(x))
	for _, v := range x {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// MinMax returns the minimum and maximum of x, ignoring NaNs. For an
// empty input both are NaN.
func MinMax(x []float64) (lo, hi float64) {
	lo, hi = math.NaN(), math.NaN()
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(lo) || v < lo {
			lo = v
		}
		if math.IsNaN(hi) || v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Normalize rescales x linearly so its non-NaN values span [0,1]. A
// constant input maps to all zeros. NaNs are preserved.
func Normalize(x []float64) []float64 {
	lo, hi := MinMax(x)
	out := make([]float64, len(x))
	span := hi - lo
	for i, v := range x {
		switch {
		case math.IsNaN(v):
			out[i] = v
		case span == 0 || math.IsNaN(span):
			out[i] = 0
		default:
			out[i] = (v - lo) / span
		}
	}
	return out
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied; NaNs dropped).
func NewCDF(samples []float64) *CDF {
	vals := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	return &CDF{sorted: vals}
}

// P returns the fraction of samples <= v, in [0,1]. Zero samples yields 0.
func (c *CDF) P(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1], clamped) of the
// samples; NaN if there are none.
func (c *CDF) Quantile(q float64) float64 { return QuantileSorted(c.sorted, q) }

// QuantileSorted returns the q-th quantile (q in [0,1], clamped) of an
// ascending, NaN-free sample slice — the allocation-free core of
// CDF.Quantile for callers that maintain their own sorted scratch.
// NaN if the slice is empty.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Len returns the number of retained samples.
func (c *CDF) Len() int { return len(c.sorted) }
