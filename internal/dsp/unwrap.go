// Package dsp implements the signal-processing primitives RFIPad's
// recognition pipeline is built from: phase de-periodicity (unwrapping),
// Otsu image thresholding, frame/window statistics (RMS, standard
// deviation), RSS trough detection, smoothing filters, and empirical
// CDFs. Everything operates on plain float64 slices so the package has
// no dependency on the rest of the system.
package dsp

import "math"

// Wrap maps an angle in radians onto [0, 2π), the range RFID readers
// report phase in.
func Wrap(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return t
}

// WrapSigned maps an angle in radians onto (-π, π].
func WrapSigned(theta float64) float64 {
	t := Wrap(theta)
	if t > math.Pi {
		t -= 2 * math.Pi
	}
	return t
}

// Unwrap performs phase de-periodicity (Section III-A3 of the paper):
// whenever two consecutive samples differ by more than π the later
// samples are shifted by the appropriate multiple of 2π so the sequence
// becomes continuous. The input is not modified; the result has the same
// length. NaN samples are passed through and ignored for the jump
// detection.
func Unwrap(phase []float64) []float64 {
	return UnwrapInto(make([]float64, len(phase)), phase)
}

// UnwrapInto is Unwrap writing into dst, which is grown as needed and
// returned with length len(phase). Hot paths that unwrap per stroke
// window reuse one buffer across calls instead of allocating.
func UnwrapInto(dst, phase []float64) []float64 {
	out := growFloats(dst, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	offset := 0.0
	prev := phase[0]
	for i := 1; i < len(phase); i++ {
		p := phase[i]
		if math.IsNaN(p) {
			out[i] = p
			continue
		}
		if !math.IsNaN(prev) {
			d := p - prev
			if d > math.Pi {
				offset -= 2 * math.Pi
			} else if d < -math.Pi {
				offset += 2 * math.Pi
			}
		}
		out[i] = p + offset
		prev = p
	}
	return out
}

// TotalVariation returns Σ|x[i+1]−x[i]|, the accumulative difference
// used for the per-tag phase disturbance metric I'_i (Eq. 10). Sequences
// shorter than two samples have zero variation. NaN samples are skipped.
func TotalVariation(x []float64) float64 {
	var tv float64
	prev := math.NaN()
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		if !math.IsNaN(prev) {
			tv += math.Abs(v - prev)
		}
		prev = v
	}
	return tv
}

// NetChange returns x[last]−x[first] over the non-NaN samples: the
// telescoped reading of Eq. 10, kept for the ablation benchmark.
func NetChange(x []float64) float64 {
	first, last := math.NaN(), math.NaN()
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(first) {
			first = v
		}
		last = v
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		return 0
	}
	return last - first
}
