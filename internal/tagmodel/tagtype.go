// Package tagmodel describes passive UHF tags: the four commercial tag
// designs the paper tests (§IV-B2, Fig. 12c), their radar scattering
// cross-section (RCS), per-tag hardware diversity, and the mutual
// coupling/shadowing model that reproduces the pair-interference and
// array-shadowing measurements (Fig. 11, Fig. 12).
package tagmodel

import (
	"fmt"
	"math"
)

// TagType identifies one of the commercial tag designs evaluated in the
// paper. The paper anonymizes them as Tag A–D and identifies Tag B as
// the Impinj AZ-E53 (the best choice thanks to its small RCS).
type TagType int

// Tag designs, ordered as in Fig. 12. RCSFactor scales the shadowing a
// tag inflicts on its neighbours: §IV-B2 explains that a smaller antenna
// has a smaller RCS, radiates less, and interferes less.
const (
	// TagA is a mid-size Impinj inlay (e.g. Impinj E51-type design).
	TagA TagType = iota + 1
	// TagB is the Impinj AZ-E53 — smallest RCS, the paper's
	// recommendation: three full columns shave only ≈2 dB off a tag
	// behind the array.
	TagB
	// TagC is a mid/large Alien inlay (Squiggle-type design).
	TagC
	// TagD is a large-antenna Alien design — largest RCS; three columns
	// cost ≈20 dB.
	TagD
)

// String implements fmt.Stringer.
func (t TagType) String() string {
	switch t {
	case TagA:
		return "TagA"
	case TagB:
		return "TagB(Impinj AZ-E53)"
	case TagC:
		return "TagC"
	case TagD:
		return "TagD"
	default:
		return fmt.Sprintf("TagType(%d)", int(t))
	}
}

// Properties returns the physical parameters of the tag design.
type Properties struct {
	// GainDBi is the tag antenna gain.
	GainDBi float64
	// SensitivityDBm is the forward power needed to run the IC.
	SensitivityDBm float64
	// BackscatterLossDB is the modulation + conversion loss between
	// incident and re-radiated power.
	BackscatterLossDB float64
	// RCSFactor ∈ (0,1] scales the shadowing this design inflicts on
	// neighbours, normalized to TagD = 1.
	RCSFactor float64
	// SizeM is the larger antenna dimension in metres (the prototype's
	// tags are 4.4 cm, §IV-B3).
	SizeM float64
}

// Props returns the design parameters for the tag type. Unknown types
// fall back to TagB, the paper's recommended deployment choice.
func (t TagType) Props() Properties {
	switch t {
	case TagA:
		return Properties{GainDBi: 2.0, SensitivityDBm: -18.5, BackscatterLossDB: 15, RCSFactor: 0.45, SizeM: 0.050}
	case TagC:
		return Properties{GainDBi: 2.0, SensitivityDBm: -18, BackscatterLossDB: 15, RCSFactor: 0.65, SizeM: 0.095}
	case TagD:
		return Properties{GainDBi: 2.2, SensitivityDBm: -18.5, BackscatterLossDB: 14, RCSFactor: 1.0, SizeM: 0.100}
	default: // TagB and anything unknown
		return Properties{GainDBi: 1.8, SensitivityDBm: -18.5, BackscatterLossDB: 16, RCSFactor: 0.10, SizeM: 0.044}
	}
}

// Orientation is the facing of the tag antenna in the plane.
// §IV-B1 shows that flipping adjacent tags to opposite directions
// mitigates near-field shadowing.
type Orientation int

// Orientations.
const (
	// FacingPositive means the antenna feed points along +x.
	FacingPositive Orientation = iota + 1
	// FacingNegative means the antenna feed points along −x.
	FacingNegative
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case FacingPositive:
		return "+x"
	case FacingNegative:
		return "-x"
	default:
		return fmt.Sprintf("Orientation(%d)", int(o))
	}
}

// Coupling constants calibrated against Fig. 11: two TagD-class tags
// 3 cm apart and parallel (same facing) cost the target ≈10 dB; at 6 cm
// ≈3 dB; beyond 12 cm (the far-field boundary 2λ/2π) the interference
// is negligible. Opposite facing reduces the effect to ≈¼.
const (
	couplingRefLossDB  = 10.0  // loss at the 3 cm reference spacing, RCSFactor 1, same facing
	couplingRefDist    = 0.03  // reference spacing (m)
	couplingDecayDist  = 0.026 // e-folding distance (m)
	couplingOppositeMu = 0.25  // multiplier for opposite facing
)

// PairCouplingDB returns the one-way power loss (dB, ≥0) a "testing"
// tag of the given type inflicts on a target tag at centre distance
// d metres, for same or opposite antenna facing. This is the Fig. 11
// experiment in closed form.
func PairCouplingDB(testing TagType, d float64, sameFacing bool) float64 {
	if d < couplingRefDist {
		d = couplingRefDist
	}
	loss := couplingRefLossDB * testing.Props().RCSFactor *
		math.Exp(-(d-couplingRefDist)/couplingDecayDist)
	if !sameFacing {
		loss *= couplingOppositeMu
	}
	return loss
}
