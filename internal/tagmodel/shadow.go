package tagmodel

import (
	"math"

	"rfipad/internal/geo"
)

// Through-array blockage constants, calibrated against Fig. 12: a
// victim tag directly behind a 5-row × 3-column array of TagD (largest
// RCS) loses ≈20 dB; the same array of TagB (Impinj AZ-E53) costs only
// ≈2 dB.
const (
	blockRefLossDB = 4.0  // per-tag loss on the exact LOS line, RCSFactor 1
	blockRadius    = 0.08 // lateral decay radius (m)
)

// ShadowThroughArrayDB returns the one-way power loss (dB, ≥0) that an
// array of tags inflicts on the reader→victim path when the tags sit
// between the reader antenna and the victim (the Fig. 12 experiment:
// a target tag placed behind the plane). Each tag contributes a loss
// proportional to its design's RCS factor, decaying with its lateral
// distance from the line of sight.
func ShadowThroughArrayDB(readerPos, victimPos geo.Vec3, tags []*Tag) float64 {
	seg := victimPos.Sub(readerPos)
	l2 := seg.NormSq()
	var loss float64
	for _, t := range tags {
		var lateral float64
		if l2 == 0 {
			lateral = t.Pos.Dist(readerPos)
		} else {
			u := t.Pos.Sub(readerPos).Dot(seg) / l2
			if u < 0 || u > 1 {
				// The tag is not between reader and victim; it cannot
				// shadow the path.
				continue
			}
			lateral = t.Pos.Dist(readerPos.Add(seg.Scale(u)))
		}
		x := lateral / blockRadius
		loss += blockRefLossDB * t.Type.Props().RCSFactor * math.Exp(-x*x)
	}
	return loss
}
