package tagmodel

import (
	"math"
	"math/rand"
	"testing"

	"rfipad/internal/geo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func newTestArray(t *testing.T) *Array {
	t.Helper()
	return NewArray(DefaultArrayConfig(), rand.New(rand.NewSource(1)))
}

func TestTagTypeProps(t *testing.T) {
	types := []TagType{TagA, TagB, TagC, TagD}
	for _, ty := range types {
		p := ty.Props()
		if p.RCSFactor <= 0 || p.RCSFactor > 1 {
			t.Errorf("%v RCSFactor = %v", ty, p.RCSFactor)
		}
		if p.SizeM <= 0 {
			t.Errorf("%v SizeM = %v", ty, p.SizeM)
		}
		if ty.String() == "" {
			t.Errorf("%v has empty String", ty)
		}
	}
	// TagD has the largest RCS, TagB the smallest (§IV-B2).
	if !(TagD.Props().RCSFactor > TagC.Props().RCSFactor &&
		TagC.Props().RCSFactor > TagA.Props().RCSFactor &&
		TagA.Props().RCSFactor > TagB.Props().RCSFactor) {
		t.Error("RCS ordering should be D > C > A > B")
	}
	// Unknown type falls back to TagB.
	if TagType(99).Props() != TagB.Props() {
		t.Error("unknown type should fall back to TagB")
	}
	if TagType(99).String() == "" || Orientation(9).String() == "" {
		t.Error("fallback Strings empty")
	}
}

func TestMakeEPC(t *testing.T) {
	a, b := MakeEPC(1), MakeEPC(2)
	if a == b {
		t.Error("distinct indices produced equal EPCs")
	}
	if a.String() == "" || len(a.String()) != 24 {
		t.Errorf("EPC string = %q, want 24 hex chars", a.String())
	}
	if MakeEPC(1) != a {
		t.Error("MakeEPC not deterministic")
	}
}

func TestPairCouplingMatchesFig11(t *testing.T) {
	// Same facing at 3 cm: significant suppression (the shadow effect
	// that can make the target unreadable).
	close := PairCouplingDB(TagD, 0.03, true)
	if close < 8 {
		t.Errorf("3 cm same-facing loss = %v dB, want ≈10", close)
	}
	// Opposite facing mitigates it (§IV-B1 deployment advice).
	opp := PairCouplingDB(TagD, 0.03, false)
	if opp >= close/2 {
		t.Errorf("opposite facing loss = %v dB, want well below %v", opp, close)
	}
	// Beyond the far-field boundary (12 cm) interference is negligible.
	far := PairCouplingDB(TagD, 0.12, true)
	if far > 0.5 {
		t.Errorf("12 cm loss = %v dB, want negligible", far)
	}
	// Monotone decrease with distance.
	prev := math.Inf(1)
	for d := 0.03; d <= 0.15; d += 0.01 {
		l := PairCouplingDB(TagD, d, true)
		if l > prev+1e-12 {
			t.Fatalf("coupling not monotone at %v", d)
		}
		prev = l
	}
	// Distances inside the reference clamp.
	if got := PairCouplingDB(TagD, 0.01, true); got != close {
		t.Errorf("sub-3cm loss should clamp: %v vs %v", got, close)
	}
	// Small-RCS tags interfere less.
	if PairCouplingDB(TagB, 0.03, true) >= PairCouplingDB(TagD, 0.03, true) {
		t.Error("TagB should couple less than TagD")
	}
}

func TestShadowThroughArrayMatchesFig12(t *testing.T) {
	// Fig. 12 setup: reader 50 cm in front of the plane, victim tag
	// directly behind the plane centre, 6 cm centre spacing (the
	// experiment packs tags at 6 cm "lengthways and laterally").
	build := func(ty TagType, rows, cols int) []*Tag {
		rng := rand.New(rand.NewSource(2))
		cfg := ArrayConfig{
			Rows: rows, Cols: cols,
			Spacing:         0.06,
			Origin:          geo.V(-float64(cols-1)*0.03, -float64(rows-1)*0.03, 0),
			Type:            ty,
			AlternateFacing: false,
		}
		return NewArray(cfg, rng).Tags
	}
	reader := geo.V(0, 0, 0.5)
	victim := geo.V(0, 0, -0.03)

	lossD3 := ShadowThroughArrayDB(reader, victim, build(TagD, 5, 3))
	if !almostEq(lossD3, 20, 6) {
		t.Errorf("TagD 5×3 shadow = %v dB, want ≈20 (Fig. 12)", lossD3)
	}
	lossB3 := ShadowThroughArrayDB(reader, victim, build(TagB, 5, 3))
	if !almostEq(lossB3, 2, 1.5) {
		t.Errorf("TagB 5×3 shadow = %v dB, want ≈2 (Fig. 12)", lossB3)
	}
	// More rows in a single column → more shadow (first observation).
	prev := 0.0
	for rows := 1; rows <= 5; rows++ {
		l := ShadowThroughArrayDB(reader, victim, build(TagD, rows, 1))
		if l <= prev {
			t.Fatalf("shadow not increasing with rows: %v at %d rows", l, rows)
		}
		prev = l
	}
	// More columns → more shadow (second observation).
	if ShadowThroughArrayDB(reader, victim, build(TagD, 5, 3)) <=
		ShadowThroughArrayDB(reader, victim, build(TagD, 5, 1)) {
		t.Error("additional columns should add shadow")
	}
	// Tags beside (not between) reader and victim do not shadow.
	aside := build(TagD, 5, 3)
	for _, tag := range aside {
		tag.Pos = tag.Pos.Add(geo.V(0, 0, 2)) // behind the reader
	}
	if got := ShadowThroughArrayDB(reader, victim, aside); got != 0 {
		t.Errorf("tags behind reader shadow = %v, want 0", got)
	}
}

func TestNewArrayLayout(t *testing.T) {
	a := newTestArray(t)
	if len(a.Tags) != 25 {
		t.Fatalf("tags = %d, want 25", len(a.Tags))
	}
	// Row-major indexing and grid coherence.
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			tag := a.TagAt(r, c)
			if tag == nil {
				t.Fatalf("TagAt(%d,%d) nil", r, c)
			}
			if tag.Row != r || tag.Col != c || tag.Index != r*5+c {
				t.Errorf("tag at (%d,%d) has Row=%d Col=%d Index=%d", r, c, tag.Row, tag.Col, tag.Index)
			}
			want := a.GridPos(float64(r), float64(c))
			if tag.Pos.Dist(want) > 1e-12 {
				t.Errorf("tag (%d,%d) at %v, want %v", r, c, tag.Pos, want)
			}
		}
	}
	if a.TagAt(-1, 0) != nil || a.TagAt(0, 5) != nil {
		t.Error("out-of-range TagAt should be nil")
	}
	// Unique EPCs, findable via ByEPC.
	seen := map[EPC]bool{}
	for _, tag := range a.Tags {
		if seen[tag.EPC] {
			t.Fatalf("duplicate EPC %v", tag.EPC)
		}
		seen[tag.EPC] = true
		if a.ByEPC(tag.EPC) != tag {
			t.Fatalf("ByEPC(%v) did not return the tag", tag.EPC)
		}
	}
	if a.ByEPC(MakeEPC(999)) != nil {
		t.Error("ByEPC of unknown EPC should be nil")
	}
	// Centre is the grid midpoint: origin + 2×pitch in x and y.
	want := a.Origin.Add(geo.V(2*a.Spacing, 2*a.Spacing, 0))
	if a.Center().Dist(want) > 1e-12 {
		t.Errorf("Center = %v, want %v", a.Center(), want)
	}
	// Plane length ≈ 46 cm (§IV-B3).
	if got := a.PlaneLength(); !almostEq(got, 0.46, 0.001) {
		t.Errorf("PlaneLength = %v, want 0.46", got)
	}
}

func TestNewArrayDiversity(t *testing.T) {
	a := newTestArray(t)
	// θ_tag spread across [0, 2π): at least ten distinct values and a
	// wide range (tag diversity, Fig. 4).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tag := range a.Tags {
		if tag.ThetaTag < 0 || tag.ThetaTag >= 2*math.Pi {
			t.Fatalf("ThetaTag out of range: %v", tag.ThetaTag)
		}
		lo = math.Min(lo, tag.ThetaTag)
		hi = math.Max(hi, tag.ThetaTag)
	}
	if hi-lo < math.Pi {
		t.Errorf("ThetaTag spread = %v, want > π", hi-lo)
	}
	// Alternating facing is a checkerboard.
	for _, tag := range a.Tags {
		want := FacingPositive
		if (tag.Row+tag.Col)%2 == 1 {
			want = FacingNegative
		}
		if tag.Facing != want {
			t.Errorf("tag (%d,%d) facing %v, want %v", tag.Row, tag.Col, tag.Facing, want)
		}
	}
	// Same seed → identical array.
	b := NewArray(DefaultArrayConfig(), rand.New(rand.NewSource(1)))
	for i := range a.Tags {
		if a.Tags[i].ThetaTag != b.Tags[i].ThetaTag {
			t.Fatal("arrays from equal seeds differ")
		}
	}
}

func TestNewArrayDefaultsApplied(t *testing.T) {
	a := NewArray(ArrayConfig{}, rand.New(rand.NewSource(3)))
	if a.Rows != 5 || a.Cols != 5 || a.Spacing != DefaultSpacing {
		t.Errorf("defaults not applied: %d×%d at %v", a.Rows, a.Cols, a.Spacing)
	}
	if a.Tags[0].Type != TagB {
		t.Errorf("default type = %v, want TagB", a.Tags[0].Type)
	}
}

func TestAlternatingFacingReducesCoupling(t *testing.T) {
	// The §IV-B1 deployment advice: alternating orientation lowers the
	// total in-array coupling loss versus uniform facing, at a tight
	// 6 cm centre pitch where the near field matters.
	cfg := DefaultArrayConfig()
	cfg.Spacing = 0.06
	cfg.AlternateFacing = true
	alt := NewArray(cfg, rand.New(rand.NewSource(4)))
	cfg.AlternateFacing = false
	same := NewArray(cfg, rand.New(rand.NewSource(4)))
	var altSum, sameSum float64
	for i := range alt.Tags {
		altSum += alt.Tags[i].CouplingLossDB
		sameSum += same.Tags[i].CouplingLossDB
	}
	if altSum >= sameSum {
		t.Errorf("alternating coupling %v >= uniform %v", altSum, sameSum)
	}
}

func TestRFPointReflectsTagState(t *testing.T) {
	a := newTestArray(t)
	tag := a.TagAt(2, 2)
	p := tag.RFPoint()
	if p.Pos != tag.Pos || p.ThetaTag != tag.ThetaTag {
		t.Error("RFPoint does not mirror tag state")
	}
	props := tag.Type.Props()
	if p.GainDBi != props.GainDBi || p.BackscatterLossDB != props.BackscatterLossDB {
		t.Error("RFPoint does not carry type properties")
	}
	if p.ExtraLossDB != tag.CouplingLossDB {
		t.Error("RFPoint missing coupling loss")
	}
}
