package tagmodel

import (
	"fmt"
	"math/rand"

	"rfipad/internal/geo"
	"rfipad/internal/rf"
)

// EPC is a 96-bit Electronic Product Code, the identifier a C1G2 tag
// reports during inventory.
type EPC [12]byte

// String renders the EPC as uppercase hex, the conventional notation.
func (e EPC) String() string { return fmt.Sprintf("%X", e[:]) }

// MakeEPC builds a deterministic EPC from an array index, mirroring how
// a lab numbers its tags.
func MakeEPC(index int) EPC {
	var e EPC
	// EPC header for SGTIN-96 followed by the index in the serial part.
	e[0] = 0x30
	e[1] = 0x08
	for i := 0; i < 4; i++ {
		e[11-i] = byte(index >> (8 * i))
	}
	return e
}

// SerialOf extracts the serial an EPC was built with by MakeEPC. A
// backend that knows the lab's numbering recovers tag array indices
// this way.
func SerialOf(e EPC) int {
	v := 0
	for i := 0; i < 4; i++ {
		v = v<<8 | int(e[8+i])
	}
	return v
}

// Tag is one deployed passive tag.
type Tag struct {
	// EPC identifies the tag on the air interface.
	EPC EPC
	// Index is the tag's ordinal in its array (row-major), or −1 for a
	// free-standing tag.
	Index int
	// Row, Col are the grid coordinates in the array (0-based), or −1.
	Row, Col int
	// Type is the commercial design.
	Type TagType
	// Pos is the antenna centre in world coordinates.
	Pos geo.Vec3
	// Facing is the antenna orientation in the plane.
	Facing Orientation
	// ThetaTag is this tag's hardware phase offset (tag diversity,
	// Eq. 6/7): fixed at manufacture, uniform over [0, 2π).
	ThetaTag float64
	// SensitivityDBm is the per-instance power-up threshold (the type's
	// nominal value plus manufacturing spread).
	SensitivityDBm float64
	// CouplingLossDB is the one-way shadowing loss from every other tag
	// in the deployment, precomputed by the array builder.
	CouplingLossDB float64
}

// RFPoint converts the tag into the channel model's input form.
func (t *Tag) RFPoint() rf.TagPoint {
	p := t.Type.Props()
	return rf.TagPoint{
		Pos:               t.Pos,
		GainDBi:           p.GainDBi,
		ThetaTag:          t.ThetaTag,
		ExtraLossDB:       t.CouplingLossDB,
		BackscatterLossDB: p.BackscatterLossDB,
		SensitivityDBm:    t.SensitivityDBm,
	}
}

// Array is a grid of tags forming an RFIPad sensing plate.
type Array struct {
	// Rows, Cols are the grid dimensions (the prototype is 5×5).
	Rows, Cols int
	// Spacing is the centre-to-centre tag pitch in metres. The paper
	// recommends a 6 cm *gap* between adjacent tags (§IV-B1); with the
	// 4.4 cm tag size that is a 10.4 cm pitch, consistent with the
	// 46 cm plane length of §IV-B3 (5·4.4 + 4·6 cm).
	Spacing float64
	// Origin is the world position of tag (0,0); the grid extends along
	// +x (columns) and +y (rows) in the z=Origin.Z plane.
	Origin geo.Vec3
	// Tags holds the tags in row-major order.
	Tags []*Tag
}

// ArrayConfig configures NewArray.
type ArrayConfig struct {
	// Rows, Cols default to 5×5.
	Rows, Cols int
	// Spacing defaults to 6 cm.
	Spacing float64
	// Origin places tag (0,0); the plane is z = Origin.Z.
	Origin geo.Vec3
	// Type defaults to TagB, the paper's recommendation.
	Type TagType
	// AlternateFacing flips adjacent tags to opposite orientations, the
	// §IV-B1 mitigation. Defaults to true via NewArray.
	AlternateFacing bool
	// SensitivitySpreadDB is the std-dev of per-tag power-up threshold
	// variation (manufacturing spread).
	SensitivitySpreadDB float64
}

// DefaultSpacing is the centre-to-centre pitch of the recommended
// deployment: 4.4 cm tags with 6 cm gaps.
const DefaultSpacing = 0.104

// DefaultArrayConfig returns the prototype deployment: a 5×5 grid of
// TagB at the default pitch with alternating facing, centred on the
// origin of the x/y plane.
func DefaultArrayConfig() ArrayConfig {
	half := 2 * DefaultSpacing
	return ArrayConfig{
		Rows:                5,
		Cols:                5,
		Spacing:             DefaultSpacing,
		Origin:              geo.V(-half, -half, 0),
		Type:                TagB,
		AlternateFacing:     true,
		SensitivitySpreadDB: 0.5,
	}
}

// NewArray builds a tag array. rng seeds the per-tag manufacturing
// diversity (θ_tag, sensitivity spread) and must not be nil.
func NewArray(cfg ArrayConfig, rng *rand.Rand) *Array {
	if cfg.Rows <= 0 {
		cfg.Rows = 5
	}
	if cfg.Cols <= 0 {
		cfg.Cols = 5
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = DefaultSpacing
	}
	if cfg.Type == 0 {
		cfg.Type = TagB
	}
	a := &Array{
		Rows:    cfg.Rows,
		Cols:    cfg.Cols,
		Spacing: cfg.Spacing,
		Origin:  cfg.Origin,
	}
	props := cfg.Type.Props()
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			idx := r*cfg.Cols + c
			facing := FacingPositive
			if cfg.AlternateFacing && (r+c)%2 == 1 {
				facing = FacingNegative
			}
			t := &Tag{
				EPC:            MakeEPC(idx + 1),
				Index:          idx,
				Row:            r,
				Col:            c,
				Type:           cfg.Type,
				Pos:            cfg.Origin.Add(geo.V(float64(c)*cfg.Spacing, float64(r)*cfg.Spacing, 0)),
				Facing:         facing,
				ThetaTag:       rng.Float64() * 2 * 3.141592653589793,
				SensitivityDBm: props.SensitivityDBm + rng.NormFloat64()*cfg.SensitivitySpreadDB,
			}
			a.Tags = append(a.Tags, t)
		}
	}
	applyMutualCoupling(a.Tags)
	return a
}

// applyMutualCoupling fills each tag's CouplingLossDB with the summed
// shadowing from every other tag (the in-array interference of
// §IV-B2).
func applyMutualCoupling(tags []*Tag) {
	for _, t := range tags {
		t.CouplingLossDB = ArrayShadowLossDB(t.Pos, t.Facing, tags, t)
	}
}

// ArrayShadowLossDB returns the total one-way shadowing loss (dB) that
// the given tags inflict on a victim antenna at pos with the given
// facing. exclude (may be nil) is skipped — pass the victim itself when
// it is part of the array.
func ArrayShadowLossDB(pos geo.Vec3, facing Orientation, tags []*Tag, exclude *Tag) float64 {
	var loss float64
	for _, other := range tags {
		if other == exclude {
			continue
		}
		d := pos.Dist(other.Pos)
		loss += PairCouplingDB(other.Type, d, other.Facing == facing)
	}
	return loss
}

// TagAt returns the tag at grid position (row, col), or nil when out of
// range.
func (a *Array) TagAt(row, col int) *Tag {
	if row < 0 || row >= a.Rows || col < 0 || col >= a.Cols {
		return nil
	}
	return a.Tags[row*a.Cols+col]
}

// ByEPC returns the tag with the given EPC, or nil.
func (a *Array) ByEPC(e EPC) *Tag {
	for _, t := range a.Tags {
		if t.EPC == e {
			return t
		}
	}
	return nil
}

// Center returns the world position of the array's geometric centre.
func (a *Array) Center() geo.Vec3 {
	dx := float64(a.Cols-1) * a.Spacing / 2
	dy := float64(a.Rows-1) * a.Spacing / 2
	return a.Origin.Add(geo.V(dx, dy, 0))
}

// PlaneLength returns the physical side length of the deployed plane:
// the grid pitch span plus half a tag on each edge (the §IV-B3
// calculation that yields 46 cm for the 5×5 prototype with 4.4 cm tags
// at 6 cm gaps).
func (a *Array) PlaneLength() float64 {
	span := float64(max(a.Rows, a.Cols)-1) * a.Spacing
	size := TagB.Props().SizeM
	if len(a.Tags) > 0 {
		size = a.Tags[0].Type.Props().SizeM
	}
	return span + size
}

// GridPos returns the world position of grid coordinates (row, col)
// even for fractional coordinates — used to aim hand trajectories.
func (a *Array) GridPos(row, col float64) geo.Vec3 {
	return a.Origin.Add(geo.V(col*a.Spacing, row*a.Spacing, 0))
}
