package cluster

// Unit tests for the lease protocol's load-bearing arithmetic: the
// failure detector's strict deadline, the monitor-period floor, the
// LeaseDuration < FailAfter clamp, and the node-side lease table the
// watchdog and the emission gate share.

import (
	"testing"
	"time"

	"rfipad/internal/engine"
)

// TestHeartbeatExpiredBoundary pins the detector's deadline semantics:
// silence must STRICTLY exceed FailAfter. A heartbeat landing exactly
// at the deadline keeps its node alive — the lease math (lease <
// FailAfter) assumes the detector never fires early.
func TestHeartbeatExpiredBoundary(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const failAfter = 150 * time.Millisecond
	cases := []struct {
		name    string
		silence time.Duration
		want    bool
	}{
		{"fresh beat", 0, false},
		{"well inside", failAfter / 2, false},
		{"exactly at deadline", failAfter, false},
		{"one nanosecond past", failAfter + time.Nanosecond, true},
		{"well past", 2 * failAfter, true},
	}
	for _, tc := range cases {
		if got := heartbeatExpired(base, base.Add(tc.silence), failAfter); got != tc.want {
			t.Errorf("%s: heartbeatExpired(silence=%v, failAfter=%v) = %v, want %v",
				tc.name, tc.silence, failAfter, got, tc.want)
		}
	}
}

// TestMonitorPeriodFloor pins the detector's polling period: a quarter
// of FailAfter, floored at 1ms so a tiny FailAfter cannot produce a
// zero or negative ticker period (time.NewTicker panics on those).
func TestMonitorPeriodFloor(t *testing.T) {
	cases := []struct {
		failAfter time.Duration
		want      time.Duration
	}{
		{time.Nanosecond, time.Millisecond},
		{time.Millisecond, time.Millisecond},
		{3 * time.Millisecond, time.Millisecond},
		{4 * time.Millisecond, time.Millisecond},
		{100 * time.Millisecond, 25 * time.Millisecond},
		{2 * time.Second, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := monitorPeriod(tc.failAfter); got != tc.want {
			t.Errorf("monitorPeriod(%v) = %v, want %v", tc.failAfter, got, tc.want)
		}
		if monitorPeriod(tc.failAfter) <= 0 {
			t.Fatalf("monitorPeriod(%v) not positive", tc.failAfter)
		}
	}
}

// TestLeaseConfigDefaults pins the clamp that makes the whole protocol
// sound: LeaseDuration must land strictly inside (0, FailAfter), so an
// unheard owner's self-demotion always precedes reassignment.
func TestLeaseConfigDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want time.Duration
	}{
		{"unset defaults to 3/4 FailAfter",
			Config{FailAfter: 100 * time.Millisecond}, 75 * time.Millisecond},
		{"negative defaults",
			Config{FailAfter: 100 * time.Millisecond, LeaseDuration: -time.Second}, 75 * time.Millisecond},
		{"longer than FailAfter is clamped",
			Config{FailAfter: 100 * time.Millisecond, LeaseDuration: 150 * time.Millisecond}, 75 * time.Millisecond},
		{"equal to FailAfter is clamped",
			Config{FailAfter: 100 * time.Millisecond, LeaseDuration: 100 * time.Millisecond}, 75 * time.Millisecond},
		{"valid value kept",
			Config{FailAfter: 100 * time.Millisecond, LeaseDuration: 60 * time.Millisecond}, 60 * time.Millisecond},
		// Renewal rides the heartbeat: a lease at or below the heartbeat
		// interval can never be renewed, so it defaults too. (Default
		// HeartbeatInterval 500ms, FailAfter 2s.)
		{"shorter than the heartbeat is clamped",
			Config{LeaseDuration: 300 * time.Millisecond}, 1500 * time.Millisecond},
		{"equal to the heartbeat is clamped",
			Config{LeaseDuration: 500 * time.Millisecond}, 1500 * time.Millisecond},
		// Degenerate FailAfter barely above the heartbeat: 3/4 FailAfter
		// would still sit inside one heartbeat, so split the difference.
		{"degenerate FailAfter splits the sound interval",
			Config{HeartbeatInterval: 500 * time.Millisecond, FailAfter: 600 * time.Millisecond},
			550 * time.Millisecond},
	}
	for _, tc := range cases {
		got := tc.in.withDefaults()
		if got.LeaseDuration != tc.want {
			t.Errorf("%s: LeaseDuration = %v, want %v", tc.name, got.LeaseDuration, tc.want)
		}
		if got.LeaseDuration >= got.FailAfter {
			t.Errorf("%s: LeaseDuration %v >= FailAfter %v — zombie demotion would race reassignment",
				tc.name, got.LeaseDuration, got.FailAfter)
		}
		if got.HeartbeatInterval < got.FailAfter && got.LeaseDuration <= got.HeartbeatInterval {
			t.Errorf("%s: LeaseDuration %v <= HeartbeatInterval %v — renewal could never outrun expiry",
				tc.name, got.LeaseDuration, got.HeartbeatInterval)
		}
		if got.LeaseCheckEvery <= 0 {
			t.Errorf("%s: LeaseCheckEvery = %v, want > 0", tc.name, got.LeaseCheckEvery)
		}
	}

	// The watchdog period floors at 1ms even for microscopic leases.
	tiny := Config{FailAfter: 2 * time.Millisecond}.withDefaults()
	if tiny.LeaseCheckEvery != time.Millisecond {
		t.Errorf("tiny FailAfter: LeaseCheckEvery = %v, want 1ms floor", tiny.LeaseCheckEvery)
	}
}

// TestNodeLeaseTable exercises the lease table directly: grant, the
// liveness gate, the expiry reap's atomicity, revocation, and the
// deliberate asymmetry that leaseEpoch ignores expiry (a stale owner
// must stamp its true old epoch so the store's fence can judge it).
func TestNodeLeaseTable(t *testing.T) {
	n := &Node{leases: map[engine.StreamID]lease{}}
	const id = engine.StreamID("plate-0")
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	if n.leaseLive(id, base) {
		t.Fatal("lease live before any grant")
	}
	if _, ok := n.leaseEpoch(id); ok {
		t.Fatal("leaseEpoch reported a lease before any grant")
	}

	n.grantLease(id, 7, base.Add(100*time.Millisecond))
	if !n.leaseLive(id, base) {
		t.Error("fresh lease not live")
	}
	if !n.leaseLive(id, base.Add(100*time.Millisecond-time.Nanosecond)) {
		t.Error("lease dead just before expiry")
	}
	if n.leaseLive(id, base.Add(100*time.Millisecond)) {
		t.Error("lease live exactly at expiry — liveness must be strict")
	}

	// Expired but not yet reaped: the epoch is still reportable, so a
	// zombie's late checkpoint writes carry the old epoch into the fence.
	if e, ok := n.leaseEpoch(id); !ok || e != 7 {
		t.Errorf("leaseEpoch after expiry = %d, %v; want 7, true", e, ok)
	}

	// Reaping is an atomic mark-and-return: a second sweep finds
	// nothing, so a demotion runs at most once — but the tombstone keeps
	// the old epoch reportable, so a checkpoint racing the demotion's
	// eviction still stamps the true old token for the fence to judge.
	other := engine.StreamID("plate-1")
	n.grantLease(other, 3, base.Add(time.Hour))
	ex := n.takeExpiredLeases(base.Add(200 * time.Millisecond))
	if len(ex) != 1 || ex[0].id != id || ex[0].epoch != 7 {
		t.Fatalf("takeExpiredLeases = %+v, want [{%s 7}]", ex, id)
	}
	if again := n.takeExpiredLeases(base.Add(200 * time.Millisecond)); len(again) != 0 {
		t.Fatalf("second reap returned %+v, want none", again)
	}
	if e, ok := n.leaseEpoch(id); !ok || e != 7 {
		t.Errorf("leaseEpoch after reap = %d, %v; want 7, true (tombstone keeps the epoch visible)", e, ok)
	}
	if n.leaseLive(id, base.Add(200*time.Millisecond)) {
		t.Error("reaped lease reports live")
	}
	if !n.leaseLive(other, base.Add(200*time.Millisecond)) {
		t.Error("unexpired lease swept up by the reap")
	}

	// A fresh grant replaces the tombstone outright: the node can own
	// the stream again under a new epoch.
	n.grantLease(id, 9, base.Add(time.Hour))
	if !n.leaseLive(id, base.Add(200*time.Millisecond)) {
		t.Error("regranted lease not live")
	}
	if e, _ := n.leaseEpoch(id); e != 9 {
		t.Errorf("regranted lease epoch = %d, want 9", e)
	}
	if ex := n.takeExpiredLeases(base.Add(200 * time.Millisecond)); len(ex) != 0 {
		t.Errorf("reap swept a live regranted lease: %+v", ex)
	}

	// Renewal replaces in place; revocation removes.
	n.grantLease(other, 4, base.Add(2*time.Hour))
	if e, _ := n.leaseEpoch(other); e != 4 {
		t.Errorf("renewed lease epoch = %d, want 4", e)
	}
	n.revokeLease(other)
	if n.leaseLive(other, base) {
		t.Error("revoked lease still live")
	}
}
