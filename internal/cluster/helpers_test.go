package cluster_test

import (
	"sync"
	"testing"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/replay"
)

// synthBatches synthesizes a full RFIPad capture (static prelude +
// word), optionally time-shifted, and chunks it into push-sized
// batches of readings. maxTS is the largest timestamp in the capture
// (post-shift), for chaining phases on one stream clock.
func synthBatches(t testing.TB, seed int64, word string, shift time.Duration) (batches [][]core.Reading, maxTS time.Duration) {
	return synth(t, seed, word, shift, false)
}

// synthLetters is synthBatches minus the static prelude: only the
// written letters remain, so a stream fed this capture can never
// calibrate live — recognizing it proves the calibration arrived via
// checkpoint handoff.
func synthLetters(t testing.TB, seed int64, word string, shift time.Duration) (batches [][]core.Reading, maxTS time.Duration) {
	return synth(t, seed, word, shift, true)
}

func synth(t testing.TB, seed int64, word string, shift time.Duration, stripPrelude bool) (batches [][]core.Reading, maxTS time.Duration) {
	t.Helper()
	const prelude = 3 * time.Second
	reports, err := replay.Synthesize(seed, word, prelude)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 400
	var batch []core.Reading
	for _, rep := range reports {
		if stripPrelude && rep.Timestamp <= prelude {
			continue
		}
		rep.Timestamp += shift
		if rep.Timestamp > maxTS {
			maxTS = rep.Timestamp
		}
		batch = append(batch, live.ReadingFromReport(rep))
		if len(batch) == chunk {
			batches = append(batches, batch)
			batch = nil
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}
	return batches, maxTS
}

// letterTape aggregates recognized letters per stream across every
// node — the cluster-wide view a migration must keep contiguous.
type letterTape struct {
	mu      sync.Mutex
	letters map[engine.StreamID]string
}

func newLetterTape() *letterTape {
	return &letterTape{letters: map[engine.StreamID]string{}}
}

func (lt *letterTape) onEvent(_ cluster.NodeID, id engine.StreamID, ev core.Event) {
	if ev.Kind == core.LetterDeduced {
		lt.mu.Lock()
		lt.letters[id] += string(ev.Letter)
		lt.mu.Unlock()
	}
}

func (lt *letterTape) get(id engine.StreamID) string {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.letters[id]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// pushAll feeds every batch of one capture phase into the cluster.
func pushAll(c *cluster.Cluster, id engine.StreamID, batches [][]core.Reading) {
	for _, b := range batches {
		c.Push(id, b)
	}
}
