package cluster

import "rfipad/internal/obs"

// telemetry bundles the cluster_* instruments: membership, handoffs,
// handoff latency, orphaned streams, and the ownership/fencing surface
// — the observable side of the coordination layer.
type telemetry struct {
	reg        *obs.Registry // for the per-stream epoch gauge
	nodes      *obs.Gauge    // live membership size
	failures   *obs.Counter  // nodes declared dead by the failure detector
	heartbeats *obs.Counter  // heartbeats received
	placed     *obs.Gauge    // streams with a placement

	leaseExpired *obs.Counter // leases that expired unrenewed (self-demotions)
	fencedWrites *obs.Counter // checkpoint writes the epoch fence rejected
	suppressed   *obs.Counter // events dropped because the emitter held no live lease

	handoffRestored *obs.Counter // handoffs whose checkpoint was adopted
	handoffFallback *obs.Counter // handoffs that fell back to live calibration
	retries         *obs.Counter // transfer attempts retried
	// Handoff latency is split by trigger — graceful (join/leave
	// rebalance evicting live state) vs failure (the detector declared
	// the owner dead) — matching the Trigger label on migration spans,
	// so histogram and trace attribute a slow handoff identically.
	latencyGraceful *obs.Histogram
	latencyFailure  *obs.Histogram
	rebalanced      *obs.Counter // migrations triggered by join/leave rebalance
	orphaned        *obs.Counter // streams whose owner died with no usable checkpoint

	droppedBatches  *obs.Counter // batches dropped by the router
	droppedReadings *obs.Counter // readings dropped by the router
}

func newTelemetry(reg *obs.Registry) *telemetry {
	return &telemetry{
		reg: reg,
		leaseExpired: reg.Counter("cluster_lease_expirations_total",
			"Ownership leases that expired unrenewed, each self-demoting its stream on the (former) owner."),
		fencedWrites: reg.Counter("cluster_fenced_writes_total",
			"Checkpoint writes rejected by the epoch fence (a stale former owner tried to save)."),
		suppressed: reg.Counter("cluster_results_suppressed_total",
			"Recognition events dropped because the emitting node held no live lease for the stream."),
		nodes: reg.Gauge("cluster_nodes",
			"Live cluster members (joined, not failed or left)."),
		failures: reg.Counter("cluster_node_failures_total",
			"Nodes declared dead after missing their heartbeat deadline."),
		heartbeats: reg.Counter("cluster_heartbeats_total",
			"Heartbeats the coordinator received."),
		placed: reg.Gauge("cluster_streams_placed",
			"Streams with a current node placement."),
		handoffRestored: reg.Counter("cluster_handoffs_total",
			"Stream migrations by outcome.", obs.L("outcome", "restored")),
		handoffFallback: reg.Counter("cluster_handoffs_total",
			"Stream migrations by outcome.", obs.L("outcome", "fallback_live")),
		retries: reg.Counter("cluster_handoff_retries_total",
			"Checkpoint transfer attempts retried after a failure."),
		latencyGraceful: reg.Histogram("cluster_handoff_seconds",
			"End-to-end stream handoff latency (evict/load through adoption).",
			nil, obs.L("trigger", "graceful")),
		latencyFailure: reg.Histogram("cluster_handoff_seconds",
			"End-to-end stream handoff latency (evict/load through adoption).",
			nil, obs.L("trigger", "failure")),
		rebalanced: reg.Counter("cluster_rebalance_migrations_total",
			"Migrations triggered by membership rebalance (join or leave)."),
		orphaned: reg.Counter("cluster_streams_orphaned_total",
			"Streams whose owner died with no usable checkpoint to hand off."),
		droppedBatches: reg.Counter("cluster_dropped_batches_total",
			"Batches the router dropped (no owner, dead owner, or pending overflow)."),
		droppedReadings: reg.Counter("cluster_dropped_readings_total",
			"Readings the router dropped."),
	}
}

// handoffLatency selects the trigger-labeled handoff histogram.
func (t *telemetry) handoffLatency(trigger string) *obs.Histogram {
	if trigger == "failure" {
		return t.latencyFailure
	}
	return t.latencyGraceful
}

// epoch is the per-stream ownership epoch gauge; the registry dedups
// by name+labels, so repeated calls for one stream share a series.
func (t *telemetry) epoch(stream string) *obs.Gauge {
	return t.reg.Gauge("cluster_ownership_epoch",
		"Current ownership epoch per stream (minted on every (re)assignment).",
		obs.L("stream", stream))
}
