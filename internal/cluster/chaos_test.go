package cluster_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/engine"
	"rfipad/internal/faultnet"
	"rfipad/internal/obs"
	"rfipad/internal/supervise"
)

// TestClusterNodeKillMigratesViaCheckpoint is the headline chaos run:
// several nodes, several streams mid-word, one node killed without
// warning. The failure detector must notice the silence, every stream
// the corpse owned must migrate via its durable checkpoint, and the
// second half of each word must be recognized on the new owners with
// zero recalibrations — enforced two ways: the phase-2 captures carry
// no static prelude (a fallback stream physically cannot calibrate),
// and the handoff outcome counters must show restored-only.
func TestClusterNodeKillMigratesViaCheckpoint(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tape := newLetterTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         150 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		Checkpoints:       store,
		CheckpointEvery:   100 * time.Millisecond,
		OnEvent:           tape.onEvent,
		Obs:               reg,
	})
	defer c.Close()
	nodes := []cluster.NodeID{"node-0", "node-1", "node-2"}
	for _, id := range nodes {
		if _, err := c.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: four streams each write "IT" and calibrate; every
	// calibration lands in the shared store.
	streams := []engine.StreamID{"plate-0", "plate-1", "plate-2", "plate-3"}
	phase2Shift := map[engine.StreamID]time.Duration{}
	for i, id := range streams {
		batches, maxTS := synthBatches(t, 80+int64(i), "IT", 0)
		pushAll(c, id, batches)
		c.FlushStream(id)
		phase2Shift[id] = maxTS + 3*time.Second
	}
	waitFor(t, 30*time.Second, `every stream at "IT"`, func() bool {
		for _, id := range streams {
			if tape.get(id) != "IT" {
				return false
			}
		}
		return true
	})

	// Kill the owner of plate-0 — no drain, no goodbye. Count the
	// streams that die with it.
	victim, ok := c.Owner(streams[0])
	if !ok {
		t.Fatal("no owner for plate-0")
	}
	lost := 0
	for _, id := range streams {
		if owner, _ := c.Owner(id); owner == victim {
			lost++
		}
	}
	if !c.Kill(victim) {
		t.Fatalf("Kill(%s) found no node", victim)
	}
	t.Logf("killed %s owning %d of %d streams", victim, lost, len(streams))

	// The failure detector must declare it dead and hand off every one
	// of its streams from the checkpoint store.
	waitFor(t, 15*time.Second, "failure detection and checkpoint handoffs", func() bool {
		snap := reg.Snapshot()
		return snap.Value("cluster_node_failures_total") >= 1 &&
			snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")) >= float64(lost)
	})
	for _, id := range streams {
		owner, ok := c.Owner(id)
		if !ok || owner == victim {
			t.Fatalf("stream %s still placed on dead node %s", id, victim)
		}
	}

	// Phase 2: the same writers continue with "LC" — prelude stripped,
	// so only a stream whose calibration survived the migration can
	// recognize anything at all.
	for i, id := range streams {
		batches, _ := synthLetters(t, 80+int64(i), "LC", phase2Shift[id])
		pushAll(c, id, batches)
		c.FlushStream(id)
	}
	waitFor(t, 30*time.Second, `every stream at "ITLC"`, func() bool {
		for _, id := range streams {
			if tape.get(id) != "ITLC" {
				return false
			}
		}
		return true
	})

	snap := reg.Snapshot()
	if v := snap.Value("cluster_node_failures_total"); v != 1 {
		t.Errorf("cluster_node_failures_total = %v, want 1", v)
	}
	if v := snap.Value("cluster_nodes"); v != float64(len(nodes)-1) {
		t.Errorf("cluster_nodes = %v, want %d", v, len(nodes)-1)
	}
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")); v != float64(lost) {
		t.Errorf("restored handoffs = %v, want %d", v, lost)
	}
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Errorf("fallback_live handoffs = %v, want 0 (zero recalibrations)", v)
	}
	if v := snap.Value("cluster_streams_orphaned_total"); v != 0 {
		t.Errorf("cluster_streams_orphaned_total = %v, want 0", v)
	}
	if v := snap.Value("engine_streams_adopted_total"); v != float64(lost) {
		t.Errorf("engine_streams_adopted_total = %v, want %d", v, lost)
	}
	if n := snap.HistCount("cluster_handoff_seconds", obs.L("trigger", "failure")); n != uint64(lost) {
		t.Errorf("cluster_handoff_seconds{trigger=failure} count = %d, want %d", n, lost)
	}
	if n := snap.HistCount("cluster_handoff_seconds", obs.L("trigger", "graceful")); n != 0 {
		t.Errorf("cluster_handoff_seconds{trigger=graceful} count = %d, want 0 (kill is failure-driven)", n)
	}
}

// TestClusterHandoffRetriesThroughFaults drives a handoff through a
// hostile link: the first dial is refused outright (partition), the
// second connection is cut mid-frame by faultnet, the third crawls
// through injected latency — and the transfer must still land as
// restored, with the retries visible on the counter.
func TestClusterHandoffRetriesThroughFaults(t *testing.T) {
	reg := obs.NewRegistry()
	tape := newLetterTape()
	var mu sync.Mutex
	dials := 0
	dial := func(network, addr string) (net.Conn, error) {
		mu.Lock()
		n := dials
		dials++
		mu.Unlock()
		switch n {
		case 0:
			// Partitioned: the SYN goes nowhere.
			return nil, errors.New("injected partition")
		case 1:
			// Link drops mid-frame: the 4-byte length prefix gets out,
			// the checkpoint payload is cut.
			conn, err := net.DialTimeout(network, addr, time.Second)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(conn, faultnet.Config{Seed: 1, DropAfterBytes: 64}, nil), nil
		default:
			// Degraded but functional: every write delayed.
			conn, err := net.DialTimeout(network, addr, time.Second)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(conn, faultnet.Config{Seed: 2, Latency: 2 * time.Millisecond}, nil), nil
		}
	}
	c := cluster.New(cluster.Config{
		HeartbeatInterval:   25 * time.Millisecond,
		FailAfter:           150 * time.Millisecond,
		HandoffTimeout:      10 * time.Second,
		HandoffRetryInitial: 5 * time.Millisecond,
		EngineWorkers:       1,
		Dial:                dial,
		OnEvent:             tape.onEvent,
		Obs:                 reg,
	})
	defer c.Close()
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	const id = engine.StreamID("plate-0")
	phase1, max1 := synthBatches(t, 90, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })

	if _, err := c.AddNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Leave("node-0"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")); v != 1 {
		t.Fatalf("restored handoffs = %v, want 1", v)
	}
	if v := snap.Value("cluster_handoff_retries_total"); v < 2 {
		t.Errorf("cluster_handoff_retries_total = %v, want >= 2", v)
	}
	mu.Lock()
	if dials < 3 {
		t.Errorf("dial count = %d, want >= 3", dials)
	}
	mu.Unlock()

	// The migrated stream keeps recognizing — prelude-free phase 2.
	phase2, _ := synthLetters(t, 90, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-2 letters`, func() bool { return tape.get(id) == "ITLC" })
}

// TestClusterHandoffDeadlineFallsBackToLive pins the non-wedge
// guarantee: when the transfer target is unreachable for the whole
// handoff budget and no durable store exists, the migration must give
// up at the deadline, count fallback_live, and leave the stream routed
// to its new owner — where it recalibrates from scratch and keeps
// working, instead of hanging forever half-migrated.
func TestClusterHandoffDeadlineFallsBackToLive(t *testing.T) {
	reg := obs.NewRegistry()
	tape := newLetterTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval:     25 * time.Millisecond,
		FailAfter:             150 * time.Millisecond,
		HandoffTimeout:        300 * time.Millisecond,
		HandoffAttemptTimeout: 50 * time.Millisecond,
		HandoffRetryInitial:   10 * time.Millisecond,
		EngineWorkers:         1,
		Dial: func(network, addr string) (net.Conn, error) {
			return nil, errors.New("injected total partition")
		},
		OnEvent: tape.onEvent,
		Obs:     reg,
	})
	defer c.Close()
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	const id = engine.StreamID("plate-0")
	phase1, _ := synthBatches(t, 92, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })

	if _, err := c.AddNode("node-1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Leave("node-0"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("Leave blocked %v; the handoff deadline should bound it", took)
	}

	snap := reg.Snapshot()
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 1 {
		t.Fatalf("fallback_live handoffs = %v, want 1", v)
	}
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")); v != 0 {
		t.Errorf("restored handoffs = %v, want 0", v)
	}
	if owner, ok := c.Owner(id); !ok || owner != "node-1" {
		t.Fatalf("after fallback, owner = %q, %v; want node-1", owner, ok)
	}

	// The stream recalibrates live on node-1. Falling back means
	// starting over, clock included: calibration windows anchor at
	// stream time zero, so the source restarts its session (fresh
	// timestamps) exactly as a reconnecting reader would.
	phase2, _ := synthBatches(t, 92, "LC", 0)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-2 letters after live recalibration`, func() bool {
		return tape.get(id) == "ITLC"
	})
	if v := reg.Snapshot().Value("engine_streams_adopted_total"); v != 0 {
		t.Errorf("engine_streams_adopted_total = %v, want 0 (nothing transferred)", v)
	}
}
