// Package cluster scales the sharded recognition engine across nodes:
// a coordinator places stream IDs on nodes via consistent hashing
// (virtual nodes for balance), tracks membership through heartbeats
// with deadline-based failure detection, and makes stream migration a
// first-class, fault-tolerant operation. On node kill, drain, or
// join/leave rebalance, a stream's calibration checkpoint + frame
// cursor is handed to the new owner over a retrying, deadline-bounded
// transfer, and the new owner resumes via the recognizer's SkipTo with
// no recalibration. A handoff that exceeds its deadline falls back to
// live calibration instead of wedging the stream.
//
// Every "node" here is an in-process engine plus a real TCP handoff
// listener, so the whole coordination layer — including the transfer
// wire path — is drivable from sim tests, with faultnet injecting
// partitions, delays, and drops on the handoff links.
package cluster

import (
	"fmt"
	"sort"
)

// NodeID names one cluster member.
type NodeID string

// hash64 is FNV-1a over a string with a murmur-style avalanche
// finalizer, allocation-free. Raw FNV clusters badly on the short,
// similar strings vnode labels are ("node-0#17"), which skews ring
// balance; the finalizer spreads those low-entropy differences across
// all 64 bits.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node NodeID
}

// Ring is a consistent-hash ring with virtual nodes: each member
// contributes vnodes points, so stream placement stays balanced even
// with a handful of physical nodes, and adding or removing one member
// moves only ~1/N of the streams. Not safe for concurrent use — the
// coordinator serializes access under its own lock.
type Ring struct {
	vnodes int
	nodes  map[NodeID]struct{}
	points []ringPoint // sorted by hash
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<=0 selects 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: map[NodeID]struct{}{}}
}

// Add inserts a member (idempotent).
func (r *Ring) Add(id NodeID) {
	if _, ok := r.nodes[id]; ok {
		return
	}
	r.nodes[id] = struct{}{}
	r.rebuild()
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(id NodeID) {
	if _, ok := r.nodes[id]; !ok {
		return
	}
	delete(r.nodes, id)
	r.rebuild()
}

// rebuild regenerates the sorted point set. Membership changes are
// rare and node counts small, so a full rebuild beats incremental
// bookkeeping.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for id := range r.nodes {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", id, v)),
				node: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on node ID so placement is deterministic
		// regardless of membership-change order.
		return r.points[i].node < r.points[j].node
	})
}

// Owner maps a stream key to its owning member: the first virtual node
// clockwise from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (NodeID, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].node, true
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members sorted by ID.
func (r *Ring) Nodes() []NodeID {
	out := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
