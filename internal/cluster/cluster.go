package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// Config tunes a cluster coordinator.
type Config struct {
	// VirtualNodes is the consistent-hash points per member
	// (default 64).
	VirtualNodes int
	// HeartbeatInterval is how often each node beats (default 500 ms).
	HeartbeatInterval time.Duration
	// FailAfter is the heartbeat silence that declares a node dead
	// (default 4× HeartbeatInterval). It trades detection latency
	// against false positives under scheduler jitter; the sim tests
	// shrink both to keep chaos runs fast.
	FailAfter time.Duration
	// LeaseDuration is the ownership lease each stream's owner holds,
	// renewed by every delivered heartbeat. It must be strictly shorter
	// than FailAfter so an owner the coordinator cannot hear
	// self-demotes before the failure detector reassigns its streams —
	// the no-two-writers guarantee — and strictly longer than
	// HeartbeatInterval, or renewal can never outrun expiry and every
	// healthy owner thrashes through demotion. Values outside
	// (HeartbeatInterval, FailAfter) default to 3/4 of FailAfter.
	LeaseDuration time.Duration
	// LeaseCheckEvery is the owner-side watchdog period for reaping
	// expired leases (default LeaseDuration/4, floored at 1ms).
	LeaseCheckEvery time.Duration

	// HandoffTimeout bounds one stream migration end to end — evict or
	// checkpoint load through adoption ack (default 5 s). Past it the
	// stream falls back to live calibration on its new owner instead
	// of wedging.
	HandoffTimeout time.Duration
	// HandoffAttemptTimeout bounds a single transfer attempt's dial
	// and I/O (default 1 s), so a half-open connection cannot absorb
	// the whole handoff budget.
	HandoffAttemptTimeout time.Duration
	// HandoffRetryInitial is the first retry backoff, doubling per
	// attempt (default 25 ms).
	HandoffRetryInitial time.Duration
	// PendingBatches bounds the batches buffered per stream while its
	// migration is in flight (default 64); overflow is shed and
	// counted.
	PendingBatches int
	// Dial overrides the handoff dialer (tests wrap it with faultnet
	// to inject partitions, delays, and drops; nil = net.DialTimeout).
	Dial Dialer

	// Stream is the per-stream recognition config every node's engine
	// shares.
	Stream live.Config
	// EngineWorkers is each node engine's shard count (default 1 in
	// engine).
	EngineWorkers int
	// Checkpoints, when set, is the durable store shared by all nodes.
	// It powers failure-driven handoff: a dead node cannot be asked
	// for its streams, so their calibration comes from the store. Nil
	// disables that path — streams on a dead node fall back to live
	// calibration.
	Checkpoints *supervise.Store
	// CheckpointEvery is each engine's periodic save interval.
	CheckpointEvery time.Duration
	// CheckpointMaxAge bounds handoff checkpoint staleness.
	CheckpointMaxAge time.Duration

	// OnEvent receives every recognition event tagged with the node
	// that produced it and the stream it belongs to. Called from shard
	// goroutines — must be safe for concurrent use.
	OnEvent func(NodeID, engine.StreamID, core.Event)
	// Obs selects the registry cluster_* (and every node's engine_*)
	// series land in (nil = obs.Default()). Nodes share it, so
	// counters aggregate cluster-wide.
	Obs *obs.Registry
	// Logger receives structured membership and handoff records
	// (optional).
	Logger *slog.Logger

	// Trace, when set, is the tracer every node's engine and the
	// coordinator share: migration spans (evict → transfer → adopt →
	// skipto) land in the same per-stream ring as the owning shard's
	// pipeline spans, stitched by the TraceID riding the checkpoint
	// frame. Nil disables tracing.
	Trace *trace.Tracer
	// Flight, when set, receives anomaly dumps from every node and the
	// coordinator: panic quarantines, corrupt handoff frames, and
	// handoffs that fell back to live recalibration.
	Flight *trace.Flight
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 4 * c.HeartbeatInterval
	}
	// Lease renewal rides the heartbeat, so a lease that cannot outlive
	// one heartbeat interval can never be renewed: every healthy owner
	// would thrash demote/restore and shed its results. Clamp to the
	// sound interval (HeartbeatInterval, FailAfter) when the config
	// admits one; a degenerate FailAfter barely above the heartbeat
	// splits the difference.
	minLease := c.HeartbeatInterval
	if minLease >= c.FailAfter {
		// FailAfter itself is inside one heartbeat interval — the
		// detector is unsound regardless, so only enforce (0, FailAfter).
		minLease = 0
	}
	if c.LeaseDuration <= minLease || c.LeaseDuration >= c.FailAfter {
		c.LeaseDuration = c.FailAfter * 3 / 4
		if c.LeaseDuration <= minLease {
			c.LeaseDuration = (minLease + c.FailAfter) / 2
		}
	}
	if c.LeaseCheckEvery <= 0 {
		c.LeaseCheckEvery = c.LeaseDuration / 4
	}
	if c.LeaseCheckEvery < time.Millisecond {
		c.LeaseCheckEvery = time.Millisecond
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 5 * time.Second
	}
	if c.HandoffAttemptTimeout <= 0 {
		c.HandoffAttemptTimeout = time.Second
	}
	if c.HandoffRetryInitial <= 0 {
		c.HandoffRetryInitial = 25 * time.Millisecond
	}
	if c.PendingBatches <= 0 {
		c.PendingBatches = 64
	}
	return c
}

// member is one live node plus its failure-detector state.
type member struct {
	node     *Node
	lastBeat time.Time
}

// placement is one stream's routing entry. While a migration is in
// flight the stream buffers (bounded) instead of routing, so readings
// arriving mid-handoff reach the new owner in order.
type placement struct {
	node      NodeID
	migrating bool
	pending   [][]core.Reading
}

// migration is one stream move in flight.
type migration struct {
	id       engine.StreamID
	from     NodeID
	fromNode *Node // nil when the source is dead (checkpoint from store)
	graceful bool  // evict live state vs. load from the durable store
	mustMove bool  // leave/fail: the stream cannot stay; join: sticky
	done     chan struct{}
}

// Cluster coordinates a set of in-process nodes: consistent-hash
// placement, heartbeat membership with deadline failure detection, and
// checkpoint handoff on every ownership change. All public methods are
// safe for concurrent use.
type Cluster struct {
	cfg Config
	tel *telemetry
	reg *obs.Registry
	log *slog.Logger

	mu         sync.Mutex
	ring       *Ring
	members    map[NodeID]*member
	allNodes   map[NodeID]*Node // includes killed/left nodes, for reaping
	placements map[engine.StreamID]*placement
	// epochs is the per-stream ownership epoch high-water mark. It only
	// grows (entries survive orphaning), so a stream that bounces
	// between owners always gets a strictly larger fencing token.
	epochs map[engine.StreamID]uint64
	closed bool

	stop      chan struct{}
	monitorWG sync.WaitGroup
	migWG     sync.WaitGroup

	closeOnce sync.Once
	final     map[NodeID][]engine.StreamResult
}

// New starts a coordinator with no members; AddNode populates it.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	reg := obs.Or(cfg.Obs)
	c := &Cluster{
		cfg:        cfg,
		tel:        newTelemetry(reg),
		reg:        reg,
		log:        cfg.Logger,
		ring:       NewRing(cfg.VirtualNodes),
		members:    map[NodeID]*member{},
		allNodes:   map[NodeID]*Node{},
		placements: map[engine.StreamID]*placement{},
		epochs:     map[engine.StreamID]uint64{},
		stop:       make(chan struct{}),
	}
	if cfg.Checkpoints != nil {
		// Observe every write the store's epoch fence rejects: each one
		// is a stale former owner caught trying to overwrite its
		// successor's state.
		cfg.Checkpoints.OnFenced = func(stream string, writeEpoch, storedEpoch uint64) {
			c.tel.fencedWrites.Inc()
			if c.log != nil {
				c.log.Warn("stale checkpoint write fenced",
					"stream", stream, "write_epoch", writeEpoch, "stored_epoch", storedEpoch)
			}
		}
	}
	c.monitorWG.Add(1)
	go c.monitor()
	return c
}

// AddNode joins a new member: it starts the node's engine and handoff
// listener, admits it to the ring, and rebalances — calibrated streams
// whose ownership moved are handed off to it; uncalibrated ones stay
// put (nothing worth migrating yet).
func (c *Cluster) AddNode(id NodeID) (*Node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: handoff listener: %w", err)
	}
	ecfg := engine.Config{
		Workers:          c.cfg.EngineWorkers,
		Stream:           c.cfg.Stream,
		Obs:              c.reg,
		Logger:           c.log,
		Trace:            c.cfg.Trace,
		TraceNode:        string(id),
		Flight:           c.cfg.Flight,
		Checkpoints:      c.cfg.Checkpoints,
		CheckpointEvery:  c.cfg.CheckpointEvery,
		CheckpointMaxAge: c.cfg.CheckpointMaxAge,
	}
	n := &Node{
		id:     id,
		ln:     ln,
		log:    c.log,
		flight: c.cfg.Flight,
		hbStop: make(chan struct{}),
		wdStop: make(chan struct{}),
		leases: map[engine.StreamID]lease{},
	}
	// Checkpoints this engine writes are stamped with the lease epoch
	// the node holds — expired or not, so a stale owner's writes carry
	// the old epoch and hit the store's fence.
	ecfg.Epoch = func(sid engine.StreamID) (uint64, bool) { return n.leaseEpoch(sid) }
	if c.cfg.OnEvent != nil {
		onEvent := c.cfg.OnEvent
		ecfg.OnEvent = func(sid engine.StreamID, ev core.Event) {
			// Results are gated on a live lease: a partitioned owner can
			// still be chewing through queued batches after its lease
			// lapsed, but nothing it produces may surface — the stream's
			// new owner is its only emitter.
			if !n.leaseLive(sid, time.Now()) {
				c.tel.suppressed.Inc()
				return
			}
			onEvent(id, sid, ev)
		}
	}
	n.eng = engine.New(ecfg)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		n.eng.Close()
		return nil, errors.New("cluster: closed")
	}
	if _, dup := c.allNodes[id]; dup {
		c.mu.Unlock()
		ln.Close()
		n.eng.Close()
		return nil, fmt.Errorf("cluster: node %q already exists", id)
	}
	c.allNodes[id] = n
	c.members[id] = &member{node: n, lastBeat: time.Now()}
	c.ring.Add(id)
	c.tel.nodes.Set(float64(len(c.members)))
	// Rebalance: streams whose owner changed migrate to the joiner.
	// Sticky placement — a migration whose evict finds nothing
	// calibrated aborts and the stream stays where it is.
	for sid, p := range c.placements {
		if p.migrating {
			continue
		}
		if owner, ok := c.ring.Owner(string(sid)); ok && owner != p.node {
			if m, live := c.members[p.node]; live {
				c.startMigrationLocked(migration{
					id: sid, from: p.node, fromNode: m.node,
					graceful: true, mustMove: false,
				})
				c.tel.rebalanced.Inc()
			}
		}
	}
	c.mu.Unlock()

	n.wg.Add(1)
	go n.serve(c.cfg.HandoffAttemptTimeout)
	n.wg.Add(1)
	go c.heartbeat(n)
	n.wg.Add(1)
	go c.leaseWatchdog(n)
	if c.log != nil {
		c.log.Info("node joined", "node", string(id), "addr", n.Addr())
	}
	return n, nil
}

// heartbeat is the per-node beat loop; it stops when the node is
// killed, leaves, or shuts down. A delivered heartbeat does double
// duty: it feeds the failure detector and renews the node's stream
// leases, so liveness-as-seen-by-the-coordinator and
// permission-to-emit always travel together. A node whose heartbeat
// path is partitioned (PartitionHeartbeats) ticks but delivers
// nothing — like a real one-way partition, it neither resets the
// failure deadline nor renews a lease.
func (c *Cluster) heartbeat(n *Node) {
	defer n.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			if m, ok := c.members[n.id]; ok && !n.killed.Load() && !n.hbPartitioned.Load() {
				m.lastBeat = time.Now()
				c.tel.heartbeats.Inc()
				c.renewLeasesLocked(n, m.lastBeat.Add(c.cfg.LeaseDuration))
			}
			c.mu.Unlock()
		}
	}
}

// monitor is the failure detector: any member silent past FailAfter is
// declared dead and its streams are migrated off it.
func (c *Cluster) monitor() {
	defer c.monitorWG.Done()
	t := time.NewTicker(monitorPeriod(c.cfg.FailAfter))
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			now := time.Now()
			c.mu.Lock()
			for id, m := range c.members {
				if heartbeatExpired(m.lastBeat, now, c.cfg.FailAfter) {
					c.failLocked(id)
				}
			}
			c.mu.Unlock()
		}
	}
}

// failLocked declares a member dead: out of the ring, out of
// membership, and every stream it owned is migrated — failure-driven,
// so the calibration comes from the durable checkpoint store, not the
// corpse. Callers hold c.mu.
func (c *Cluster) failLocked(id NodeID) {
	if _, ok := c.members[id]; !ok {
		return
	}
	delete(c.members, id)
	c.ring.Remove(id)
	c.tel.nodes.Set(float64(len(c.members)))
	c.tel.failures.Inc()
	if c.log != nil {
		c.log.Warn("node failed heartbeat deadline", "node", string(id),
			"fail_after", c.cfg.FailAfter)
	}
	for sid, p := range c.placements {
		if p.node == id && !p.migrating {
			c.startMigrationLocked(migration{
				id: sid, from: id, graceful: false, mustMove: true,
			})
		}
	}
}

// Kill simulates a node crash: it becomes unreachable but is NOT
// removed from membership — the failure detector must notice the
// silence, which is exactly what the chaos tests exercise.
func (c *Cluster) Kill(id NodeID) bool {
	c.mu.Lock()
	n, ok := c.allNodes[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	n.kill()
	if c.log != nil {
		c.log.Warn("node killed", "node", string(id))
	}
	return true
}

// Leave drains a member gracefully: it is removed from the ring first
// (no new placements), every stream it owns is handed off from live
// engine state, and only then is its engine shut down. Returns the
// node's final per-stream results.
func (c *Cluster) Leave(id NodeID) ([]engine.StreamResult, error) {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %q is not a live member", id)
	}
	delete(c.members, id)
	c.ring.Remove(id)
	c.tel.nodes.Set(float64(len(c.members)))
	var waits []chan struct{}
	for sid, p := range c.placements {
		if p.node == id && !p.migrating {
			done := make(chan struct{})
			c.startMigrationLocked(migration{
				id: sid, from: id, fromNode: m.node,
				graceful: true, mustMove: true, done: done,
			})
			c.tel.rebalanced.Inc()
			waits = append(waits, done)
		}
	}
	c.mu.Unlock()
	for _, done := range waits {
		<-done
	}
	m.node.stopHeartbeat()
	if c.log != nil {
		c.log.Info("node left", "node", string(id), "migrated", len(waits))
	}
	return m.node.shutdown(), nil
}

// startMigrationLocked marks the placement migrating and launches the
// handoff goroutine. Callers hold c.mu.
func (c *Cluster) startMigrationLocked(m migration) {
	p, ok := c.placements[m.id]
	if !ok || p.migrating {
		if m.done != nil {
			close(m.done)
		}
		return
	}
	p.migrating = true
	c.migWG.Add(1)
	go c.runMigration(m)
}

// runMigration executes one stream handoff:
//
//	checkpoint (evict live / load store) → transfer (retrying, bounded)
//	→ finalize (re-point placement, flush buffered batches)
//
// Every path finalizes — a migration cannot wedge a stream. A handoff
// that cannot produce or deliver a checkpoint before its deadline
// finalizes as fallback_live: the stream re-routes and recalibrates
// from scratch on its new owner.
func (c *Cluster) runMigration(m migration) {
	defer c.migWG.Done()
	start := time.Now()
	deadline := start.Add(c.cfg.HandoffTimeout)
	trig := m.trigger()

	// 1. Obtain the checkpoint.
	var cp supervise.Checkpoint
	haveCP := false
	evictErr := ""
	if m.graceful {
		cp, haveCP = m.fromNode.evict(m.id)
		if !haveCP && !m.mustMove {
			// Join rebalance, nothing calibrated to move: sticky — the
			// stream stays on its current owner.
			c.finalizeSticky(m)
			return
		}
		if !haveCP {
			evictErr = "nothing calibrated to evict"
		}
	} else if c.cfg.Checkpoints != nil {
		loaded, err := c.cfg.Checkpoints.LoadFresh(string(m.id), c.cfg.CheckpointMaxAge)
		if err == nil {
			cp, haveCP = loaded, true
		} else {
			evictErr = err.Error()
			if c.log != nil {
				c.log.Warn("no usable checkpoint for failed node's stream",
					"stream", string(m.id), "err", err)
			}
		}
	} else {
		evictErr = "no durable checkpoint store"
	}

	// Ownership change-over: the donor's lease dies with its state, and
	// the assignment the new owner will receive is minted under a
	// strictly larger epoch (floored by whatever epoch the checkpoint
	// itself carries), so any write the old owner still manages to issue
	// is fenced by the store.
	if m.graceful && haveCP {
		m.fromNode.revokeLease(m.id)
	}
	c.mu.Lock()
	cp.Epoch = c.nextEpochLocked(m.id, cp.Epoch)
	c.mu.Unlock()

	// The migration's spans land in the stream's existing ring: the
	// coordinator shares the tracer with the node engines, and for a
	// dead donor the checkpoint's TraceID recovers the identity the
	// corpse was tracing under.
	tr := c.traceFor(m.id, cp.TraceID)
	tr.Add(trace.Span{Name: trace.SpanEvict, Node: string(m.from), Trigger: trig,
		Start: start, Duration: time.Since(start), Err: evictErr})

	// 2. Resolve the new owner and transfer.
	restored := false
	target, targetAddr, ok := c.resolveOwner(m.id)
	if ok && haveCP {
		transferStart := time.Now()
		attempts := 1
		err := transferCheckpoint(c.cfg.Dial, targetAddr, cp, deadline,
			c.cfg.HandoffAttemptTimeout, c.cfg.HandoffRetryInitial,
			func() { attempts++; c.tel.retries.Inc() })
		sp := trace.Span{Name: trace.SpanTransfer, Node: string(target), Trigger: trig,
			Start: transferStart, Duration: time.Since(transferStart), Count: attempts}
		if err == nil {
			restored = true
		} else {
			sp.Err = err.Error()
			if c.log != nil {
				c.log.Warn("checkpoint handoff failed; stream falls back to live calibration",
					"stream", string(m.id), "target", string(target), "err", err)
			}
		}
		tr.Add(sp)
	}

	// 3. Finalize.
	c.finalize(m, tr, target, ok, restored, haveCP, start)
}

// trigger is the migration's attribution label — the same value the
// cluster_handoff_seconds histogram and the evict/transfer spans carry,
// so latency aggregates and traces never disagree about why a stream
// moved.
func (m migration) trigger() string {
	if m.graceful {
		return "graceful"
	}
	return "failure"
}

// traceFor resolves a stream's trace handle for migration spans,
// preferring the identity carried by its checkpoint (stitching across a
// dead donor) over a fresh local sampling decision.
func (c *Cluster) traceFor(id engine.StreamID, traceID string) *trace.StreamTrace {
	if tid, err := trace.ParseID(traceID); err == nil && tid != 0 {
		return c.cfg.Trace.Adopt(string(id), tid)
	}
	return c.cfg.Trace.Stream(string(id))
}

// resolveOwner maps a stream to its current ring owner and handoff
// address.
func (c *Cluster) resolveOwner(id engine.StreamID) (NodeID, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner, ok := c.ring.Owner(string(id))
	if !ok {
		return "", "", false
	}
	m, ok := c.members[owner]
	if !ok {
		return "", "", false
	}
	return owner, m.node.Addr(), true
}

// finalizeSticky aborts a rebalance migration whose stream had nothing
// calibrated to move: it stays on its current owner, which also drains
// any batches buffered while we looked.
func (c *Cluster) finalizeSticky(m migration) {
	c.mu.Lock()
	p := c.placements[m.id]
	p.migrating = false
	pending := p.pending
	p.pending = nil
	node := c.memberNodeLocked(p.node)
	c.pushPendingLocked(node, m.id, pending)
	c.mu.Unlock()
	if m.done != nil {
		close(m.done)
	}
}

// finalize re-points the placement and flushes buffered batches to the
// new owner. If the target died mid-transfer the migration restarts
// failure-driven; if the ring is empty the stream is orphaned.
func (c *Cluster) finalize(m migration, tr *trace.StreamTrace, target NodeID, haveTarget, restored, haveCP bool, start time.Time) {
	c.mu.Lock()
	p := c.placements[m.id]
	if haveTarget {
		if _, stillLive := c.members[target]; !stillLive {
			// Target died while we were transferring. Re-resolve and go
			// again, failure-driven; the deadline clock restarts — this
			// is a new handoff to a new owner.
			p.migrating = false
			c.startMigrationLocked(migration{
				id: m.id, from: target, graceful: false, mustMove: true, done: m.done,
			})
			c.mu.Unlock()
			return
		}
		p.node = target
		p.migrating = false
		// The adopter's lease must exist before any batch reaches it:
		// pushes are gated on a live lease.
		c.grantLeaseLocked(target, m.id, c.epochs[m.id])
		pending := p.pending
		p.pending = nil
		node := c.memberNodeLocked(target)
		c.pushPendingLocked(node, m.id, pending)
	} else {
		// No live owner anywhere: the stream is orphaned until a node
		// joins (a fresh placement forms on its next batch).
		delete(c.placements, m.id)
		c.tel.placed.Set(float64(len(c.placements)))
		c.tel.orphaned.Inc()
	}
	c.mu.Unlock()

	if haveTarget {
		trig := m.trigger()
		if restored {
			c.tel.handoffRestored.Inc()
		} else {
			c.tel.handoffFallback.Inc()
			// A failure-driven handoff with no usable checkpoint lost
			// its calibration with its owner.
			if !m.graceful && !haveCP {
				c.tel.orphaned.Inc()
			}
			tr.Add(trace.Span{Name: trace.SpanFallback, Node: string(target), Trigger: trig,
				Start: start, Duration: time.Since(start)})
			if c.cfg.Flight != nil {
				c.cfg.Flight.Record(trace.Dump{
					Trigger: trace.TriggerHandoffFallback,
					Node:    string(target),
					Stream:  string(m.id),
					Trace:   tr.ID(),
					Detail: fmt.Sprintf("handoff from %s (%s) fell back to live calibration (checkpoint: %v)",
						m.from, trig, haveCP),
					Spans: tr.Spans(),
				})
			}
		}
		c.tel.handoffLatency(trig).Observe(time.Since(start).Seconds())
		if c.log != nil {
			c.log.Info("stream migrated", "stream", string(m.id),
				"from", string(m.from), "to", string(target),
				"trigger", trig, "restored", restored, "took", time.Since(start))
		}
	}
	if m.done != nil {
		close(m.done)
	}
}

// memberNodeLocked returns a live member's node (nil when absent).
// Callers hold c.mu.
func (c *Cluster) memberNodeLocked(id NodeID) *Node {
	if m, ok := c.members[id]; ok {
		return m.node
	}
	return nil
}

// pushPendingLocked drains batches buffered during a migration into
// the (new) owner. Callers hold c.mu; engine pushes are non-blocking.
func (c *Cluster) pushPendingLocked(node *Node, id engine.StreamID, pending [][]core.Reading) {
	for _, batch := range pending {
		if node == nil || !node.push(id, batch) {
			c.tel.droppedBatches.Inc()
			c.tel.droppedReadings.Add(uint64(len(batch)))
		}
	}
}

// Push routes one batch of readings to the stream's owner. A stream
// mid-migration buffers (bounded); a stream with no live owner sheds.
// Returns false when the batch was shed or buffered past the bound.
func (c *Cluster) Push(id engine.StreamID, batch []core.Reading) bool {
	if len(batch) == 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.shedLocked(batch)
		return false
	}
	p, ok := c.placements[id]
	if !ok {
		owner, haveOwner := c.ring.Owner(string(id))
		if !haveOwner {
			c.shedLocked(batch)
			return false
		}
		p = &placement{node: owner}
		c.placements[id] = p
		c.tel.placed.Set(float64(len(c.placements)))
		// First placement: mint the stream's first epoch and lease the
		// owner before the first batch can reach its engine.
		c.grantLeaseLocked(owner, id, c.nextEpochLocked(id, 0))
	}
	if p.migrating {
		if len(p.pending) >= c.cfg.PendingBatches {
			c.shedLocked(batch)
			return false
		}
		p.pending = append(p.pending, batch)
		return true
	}
	node := c.memberNodeLocked(p.node)
	if node == nil || !node.push(id, batch) {
		// Owner unreachable (dead but not yet detected, or its mailbox
		// is gone): shed. The failure detector will re-place the stream.
		c.shedLocked(batch)
		return false
	}
	return true
}

// shedLocked counts one dropped batch. Callers hold c.mu.
func (c *Cluster) shedLocked(batch []core.Reading) {
	c.tel.droppedBatches.Inc()
	c.tel.droppedReadings.Add(uint64(len(batch)))
}

// FlushStream forces a stream's pending stroke and letter out on its
// current owner.
func (c *Cluster) FlushStream(id engine.StreamID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.placements[id]; ok && !p.migrating {
		if node := c.memberNodeLocked(p.node); node != nil {
			node.flush(id)
		}
	}
}

// Owner reports the node currently hosting a stream (its placement if
// one exists, else the ring owner).
func (c *Cluster) Owner(id engine.StreamID) (NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.placements[id]; ok {
		return p.node, true
	}
	return c.ring.Owner(string(id))
}

// Members returns the live membership, sorted.
func (c *Cluster) Members() []NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// RunStream drains a report source into the cluster until the stream
// ends, then flushes it. Blocks; run one goroutine per source.
func (c *Cluster) RunStream(id engine.StreamID, src live.ReportSource) error {
	for {
		reports, err := src.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			break
		}
		if err != nil {
			return err
		}
		batch := make([]core.Reading, 0, len(reports))
		for _, rep := range reports {
			batch = append(batch, live.ReadingFromReport(rep))
		}
		c.Push(id, batch)
	}
	c.FlushStream(id)
	return nil
}

// Close stops the failure detector, waits out in-flight migrations,
// and drains every node (including killed ones — an in-process
// "crash" still owns goroutines that need reaping). Idempotent: the
// second call returns the first call's results.
func (c *Cluster) Close() map[NodeID][]engine.StreamResult {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.stop)
		c.monitorWG.Wait()
		c.migWG.Wait()
		c.mu.Lock()
		nodes := make([]*Node, 0, len(c.allNodes))
		for _, n := range c.allNodes {
			nodes = append(nodes, n)
		}
		c.mu.Unlock()
		c.final = make(map[NodeID][]engine.StreamResult, len(nodes))
		for _, n := range nodes {
			c.final[n.id] = n.shutdown()
		}
	})
	return c.final
}
