package cluster_test

// Partition chaos for the split-brain defenses. A symmetric crash
// (Kill) is the easy case — the old owner is gone. These tests cover
// the hard one: an ASYMMETRIC partition where the owner keeps running,
// keeps its engine state, and can still reach the shared checkpoint
// store, while the coordinator hears nothing from it. The lease
// protocol must guarantee that no two nodes are ever active writers:
// either the owner self-demotes before reassignment (lease <
// FailAfter), or — if it cannot even run its own watchdog — its
// results are suppressed by the expired lease and its checkpoint
// writes are fenced by the epoch the store remembers.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/faultnet"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// ownerTape records which node emitted each letter, in arrival order —
// the evidence for "no two lease-holding emitters at the same instant":
// once the adopter emits, the old owner must never emit again.
type ownerTape struct {
	mu     sync.Mutex
	events map[engine.StreamID][]ownerEmit
}

type ownerEmit struct {
	node   cluster.NodeID
	letter string
}

func newOwnerTape() *ownerTape {
	return &ownerTape{events: map[engine.StreamID][]ownerEmit{}}
}

func (ot *ownerTape) onEvent(n cluster.NodeID, id engine.StreamID, ev core.Event) {
	if ev.Kind == core.LetterDeduced {
		ot.mu.Lock()
		ot.events[id] = append(ot.events[id], ownerEmit{node: n, letter: string(ev.Letter)})
		ot.mu.Unlock()
	}
}

func (ot *ownerTape) get(id engine.StreamID) []ownerEmit {
	ot.mu.Lock()
	defer ot.mu.Unlock()
	return append([]ownerEmit(nil), ot.events[id]...)
}

// assertSingleWriter fails if the donor emitted anything after the
// adopter's first letter, or if either side's letters differ from the
// expected split.
func assertSingleWriter(t *testing.T, seq []ownerEmit, donor, adopter cluster.NodeID, wantDonor, wantAdopter string) {
	t.Helper()
	var fromDonor, fromAdopter string
	lastDonor, firstAdopter := -1, len(seq)
	for i, e := range seq {
		switch e.node {
		case donor:
			fromDonor += e.letter
			lastDonor = i
		case adopter:
			fromAdopter += e.letter
			if i < firstAdopter {
				firstAdopter = i
			}
		default:
			t.Errorf("letter %q emitted by unexpected node %q", e.letter, e.node)
		}
	}
	if fromDonor != wantDonor {
		t.Errorf("donor %s emitted %q, want %q", donor, fromDonor, wantDonor)
	}
	if fromAdopter != wantAdopter {
		t.Errorf("adopter %s emitted %q, want %q", adopter, fromAdopter, wantAdopter)
	}
	if lastDonor > firstAdopter {
		t.Errorf("two active emitters: donor %s emitted at seq %d after adopter %s started at %d",
			donor, lastDonor, adopter, firstAdopter)
	}
}

// hasDump reports whether the flight log holds a dump with the given
// trigger for the given stream.
func hasDump(t *testing.T, fl *trace.Flight, trigger string, stream engine.StreamID) bool {
	t.Helper()
	dumps, err := trace.ReadDumps(fl.Path())
	if err != nil {
		t.Fatalf("reading flight log: %v", err)
	}
	for _, d := range dumps {
		if d.Trigger == trigger && d.Stream == string(stream) {
			return true
		}
	}
	return false
}

// TestClusterZombieOwnerFencedOut is the pathological case: the owner's
// heartbeat path is severed AND its lease watchdog is suspended
// (SuspendDemotion — a GC-stalled zombie that cannot run its own
// containment). The node keeps its engine state, keeps writing periodic
// checkpoints, and keeps chewing batches fed to it directly. The
// passive defenses must hold on their own:
//
//   - its checkpoint writes carry the old epoch and are fenced once the
//     adopter saves under the new one (cluster_fenced_writes_total),
//   - its recognition results are suppressed by the expired lease
//     (cluster_results_suppressed_total) — nothing it produces surfaces,
//   - the adopter resumes from the newest non-fenced checkpoint with
//     zero recalibration (prelude-stripped phase 2 recognized).
func TestClusterZombieOwnerFencedOut(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fl, err := trace.OpenFlight(flightDir(t), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	tape := newLetterTape()
	owners := newOwnerTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         300 * time.Millisecond,
		LeaseDuration:     150 * time.Millisecond,
		LeaseCheckEvery:   20 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		Checkpoints:       store,
		CheckpointEvery:   40 * time.Millisecond,
		OnEvent: func(n cluster.NodeID, id engine.StreamID, ev core.Event) {
			tape.onEvent(n, id, ev)
			owners.onEvent(n, id, ev)
		},
		Obs:    reg,
		Flight: fl,
	})
	defer c.Close()
	nodes := map[cluster.NodeID]*cluster.Node{}
	for _, nid := range []cluster.NodeID{"node-0", "node-1"} {
		n, err := c.AddNode(nid)
		if err != nil {
			t.Fatal(err)
		}
		nodes[nid] = n
	}

	const id = engine.StreamID("plate-z")
	phase1, max1 := synthBatches(t, 80, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })
	waitFor(t, 15*time.Second, "calibrated checkpoint on disk", func() bool {
		cp, err := store.Load(string(id))
		return err == nil && cp.Epoch >= 1 && len(cp.Calibration.MeanPhase) > 0
	})

	victim, ok := c.Owner(id)
	if !ok {
		t.Fatal("no owner for plate-z")
	}
	zombie := nodes[victim]
	zombie.SuspendDemotion(true)
	if !c.PartitionHeartbeats(victim, true) {
		t.Fatalf("PartitionHeartbeats(%s) found no node", victim)
	}

	waitFor(t, 15*time.Second, "failure detection and restored handoff", func() bool {
		s := reg.Snapshot()
		return s.Value("cluster_node_failures_total") >= 1 &&
			s.Value("cluster_handoffs_total", obs.L("outcome", "restored")) >= 1
	})
	adopter, ok := c.Owner(id)
	if !ok || adopter == victim {
		t.Fatalf("owner after partition = %q, %v; want a node other than %q", adopter, ok, victim)
	}

	// The zombie never demoted: its engine still holds the stream and
	// keeps saving under the old epoch. The adopter's first save under
	// the new epoch turns every subsequent zombie write into a fenced
	// rejection — on the store counter AND the zombie engine's own.
	waitFor(t, 15*time.Second, "zombie checkpoint write fenced", func() bool {
		s := reg.Snapshot()
		return s.Value("cluster_fenced_writes_total") >= 1 &&
			s.Value("engine_checkpoints_fenced_total") >= 1
	})

	// Feed the zombie's engine directly — the in-process stand-in for
	// clients still connected to the partitioned side. It recognizes the
	// letters (live state, live calibration) but the expired lease gates
	// every result: nothing surfaces, the tape stays clean.
	ghost, _ := synthLetters(t, 80, "LC", max1+3*time.Second)
	for _, b := range ghost {
		zombie.Engine().Push(id, b)
	}
	zombie.Engine().FlushStream(id)
	waitFor(t, 15*time.Second, "zombie results suppressed", func() bool {
		return reg.Snapshot().Value("cluster_results_suppressed_total") >= 1
	})
	if got := tape.get(id); got != "IT" {
		t.Fatalf("zombie letters leaked past the lease gate: tape = %q, want %q", got, "IT")
	}

	// The adopter resumed from the newest non-fenced checkpoint: the
	// prelude-stripped phase 2 can only be recognized with handed-off
	// calibration.
	phase2, _ := synthLetters(t, 80, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-2 letters on the adopter`, func() bool { return tape.get(id) == "ITLC" })

	s := reg.Snapshot()
	if v := s.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Errorf("cluster_handoffs_total{outcome=fallback_live} = %v, want 0 (handoff must restore, not recalibrate)", v)
	}
	if v := s.Value("engine_streams_adopted_total"); v < 1 {
		t.Errorf("engine_streams_adopted_total = %v, want >= 1", v)
	}
	if v := s.Value("cluster_ownership_epoch", obs.L("stream", string(id))); v < 2 {
		t.Errorf("cluster_ownership_epoch{stream=%s} = %v, want >= 2 after reassignment", id, v)
	}
	assertSingleWriter(t, owners.get(id), victim, adopter, "IT", "LC")
	if !hasDump(t, fl, trace.TriggerFencedWrite, id) {
		t.Error("no fenced_write flight dump recorded for the zombie's rejected save")
	}
}

// TestClusterAsymmetricPartitionSelfDemotes is the well-behaved owner
// under the same partition: no suspension, so the lease watchdog runs.
// Because LeaseDuration (200ms) is strictly shorter than FailAfter
// (600ms), the owner must have already self-demoted — eviction plus one
// final fenced-safe save — by the time the failure detector declares it
// dead, and the adopter resumes from that demotion checkpoint with zero
// recalibration.
func TestClusterAsymmetricPartitionSelfDemotes(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fl, err := trace.OpenFlight(flightDir(t), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	tape := newLetterTape()
	owners := newOwnerTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         600 * time.Millisecond,
		LeaseDuration:     200 * time.Millisecond,
		LeaseCheckEvery:   25 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		Checkpoints:       store,
		CheckpointEvery:   50 * time.Millisecond,
		OnEvent: func(n cluster.NodeID, id engine.StreamID, ev core.Event) {
			tape.onEvent(n, id, ev)
			owners.onEvent(n, id, ev)
		},
		Obs:    reg,
		Flight: fl,
	})
	defer c.Close()
	for _, nid := range []cluster.NodeID{"node-0", "node-1"} {
		if _, err := c.AddNode(nid); err != nil {
			t.Fatal(err)
		}
	}

	const id = engine.StreamID("plate-a")
	phase1, max1 := synthBatches(t, 81, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })

	victim, ok := c.Owner(id)
	if !ok {
		t.Fatal("no owner for plate-a")
	}
	if !c.PartitionHeartbeats(victim, true) {
		t.Fatalf("PartitionHeartbeats(%s) found no node", victim)
	}

	// The ordering proof: at the instant the failure detector first
	// fires (>= 600ms of silence), the owner's self-demotion (lease
	// expiry <= ~250ms) must already be on the books.
	waitFor(t, 15*time.Second, "failure detection", func() bool {
		return reg.Snapshot().Value("cluster_node_failures_total") >= 1
	})
	if v := reg.Snapshot().Value("cluster_lease_expirations_total"); v < 1 {
		t.Fatalf("node declared dead before its lease expired: cluster_lease_expirations_total = %v — demotion must strictly precede reassignment", v)
	}

	waitFor(t, 15*time.Second, "restored handoff", func() bool {
		return reg.Snapshot().Value("cluster_handoffs_total", obs.L("outcome", "restored")) >= 1
	})
	adopter, ok := c.Owner(id)
	if !ok || adopter == victim {
		t.Fatalf("owner after partition = %q, %v; want a node other than %q", adopter, ok, victim)
	}

	phase2, _ := synthLetters(t, 81, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-2 letters on the adopter`, func() bool { return tape.get(id) == "ITLC" })

	s := reg.Snapshot()
	if v := s.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Errorf("cluster_handoffs_total{outcome=fallback_live} = %v, want 0 (demotion checkpoint must carry the calibration)", v)
	}
	// A clean self-demotion stops the writer before it can collide: the
	// old owner's state is gone by the time the adopter saves, so the
	// fence never has to fire.
	if v := s.Value("cluster_fenced_writes_total"); v != 0 {
		t.Errorf("cluster_fenced_writes_total = %v, want 0 — demotion should have stopped the writer cleanly", v)
	}
	if v := s.Value("cluster_results_suppressed_total"); v != 0 {
		t.Errorf("cluster_results_suppressed_total = %v, want 0 — nothing should have needed suppression", v)
	}
	assertSingleWriter(t, owners.get(id), victim, adopter, "IT", "LC")
	if !hasDump(t, fl, trace.TriggerLeaseExpired, id) {
		t.Error("no lease_expired flight dump recorded for the self-demotion")
	}
}

// TestClusterCoordinatorRestartEpochContinuity restarts the whole
// coordination layer against the same durable store. The new
// coordinator has no in-memory epoch state; its first mint for the
// stream must still come out strictly above everything the previous
// incarnation stamped into the store — otherwise a survivor of the old
// cluster could fence out the new owner.
func TestClusterCoordinatorRestartEpochContinuity(t *testing.T) {
	dir := t.TempDir()
	store1, err := supervise.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	tape1 := newLetterTape()
	cfg := cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         150 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		CheckpointEvery:   40 * time.Millisecond,
	}
	cfg1 := cfg
	cfg1.Checkpoints = store1
	cfg1.Obs = reg1
	cfg1.OnEvent = tape1.onEvent
	c1 := cluster.New(cfg1)
	if _, err := c1.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	const id = engine.StreamID("plate-r")
	phase1, max1 := synthBatches(t, 82, "IT", 0)
	pushAll(c1, id, phase1)
	c1.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-1 letters`, func() bool { return tape1.get(id) == "IT" })
	c1.Close()

	cp, err := store1.Load(string(id))
	if err != nil {
		t.Fatalf("no checkpoint after first incarnation: %v", err)
	}
	firstEpoch := cp.Epoch
	if firstEpoch < 1 {
		t.Fatalf("first incarnation saved epoch %d, want >= 1", firstEpoch)
	}

	// Second incarnation: fresh coordinator, fresh registry, same disk.
	store2, err := supervise.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	tape2 := newLetterTape()
	cfg2 := cfg
	cfg2.Checkpoints = store2
	cfg2.Obs = reg2
	cfg2.OnEvent = tape2.onEvent
	c2 := cluster.New(cfg2)
	defer c2.Close()
	if _, err := c2.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	// Prelude-stripped: only a checkpoint restore can recognize this.
	phase2, _ := synthLetters(t, 82, "LC", max1+3*time.Second)
	pushAll(c2, id, phase2)
	c2.FlushStream(id)
	waitFor(t, 15*time.Second, `letters after coordinator restart`, func() bool { return tape2.get(id) == "LC" })

	s := reg2.Snapshot()
	if v := s.Value("engine_checkpoints_restored_total"); v != 1 {
		t.Errorf("engine_checkpoints_restored_total = %v, want 1 (zero recalibration across the restart)", v)
	}
	newEpoch := s.Value("cluster_ownership_epoch", obs.L("stream", string(id)))
	if newEpoch <= float64(firstEpoch) {
		t.Errorf("restarted coordinator minted epoch %v, want > %d (continuity from the stored checkpoint)", newEpoch, firstEpoch)
	}

	// Once the new owner has saved, a write stamped with the previous
	// incarnation's epoch — a survivor of the old cluster — is fenced.
	waitFor(t, 15*time.Second, "save under the new epoch", func() bool {
		cp, err := store2.Load(string(id))
		return err == nil && cp.Epoch > firstEpoch
	})
	stale := supervise.Checkpoint{Stream: string(id), Epoch: firstEpoch}
	if err := store2.Save(stale); !errors.Is(err, supervise.ErrFenced) {
		t.Fatalf("stale-epoch save error = %v, want ErrFenced", err)
	}
	if v := reg2.Snapshot().Value("cluster_fenced_writes_total"); v < 1 {
		t.Errorf("cluster_fenced_writes_total = %v, want >= 1 after the fenced save", v)
	}
}

// TestClusterHandoffOneWayAckPartition runs a graceful handoff through
// a one-way partition on the transfer link: the checkpoint frame
// reaches the adopter (writes pass) but the "OK" ack is discarded on
// the way back (faultnet.DropReads). The sender must time the attempt
// out and retry on a clean connection; the receiver, which already
// adopted, answers the duplicate with OK via ErrStreamExists — exactly
// one adoption, handoff restored, no fallback.
func TestClusterHandoffOneWayAckPartition(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tape := newLetterTape()

	var mu sync.Mutex
	var conns, ackDrops int
	dial := func(network, addr string) (net.Conn, error) {
		conn, err := net.DialTimeout(network, addr, time.Second)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		first := conns == 0
		conns++
		mu.Unlock()
		if first {
			// Only the inbound (ack) direction is severed; the frame
			// still goes through and the server still adopts.
			return faultnet.Wrap(conn, faultnet.Config{
				DropReads: true,
				Observer: func(kind string) {
					if kind == faultnet.FaultDropRead {
						mu.Lock()
						ackDrops++
						mu.Unlock()
					}
				},
			}, nil), nil
		}
		return conn, nil
	}

	c := cluster.New(cluster.Config{
		HeartbeatInterval:     25 * time.Millisecond,
		FailAfter:             150 * time.Millisecond,
		HandoffTimeout:        10 * time.Second,
		HandoffAttemptTimeout: 150 * time.Millisecond,
		HandoffRetryInitial:   5 * time.Millisecond,
		EngineWorkers:         1,
		Checkpoints:           store,
		CheckpointEvery:       100 * time.Millisecond,
		OnEvent:               tape.onEvent,
		Obs:                   reg,
		Dial:                  dial,
	})
	defer c.Close()
	for _, nid := range []cluster.NodeID{"node-0", "node-1"} {
		if _, err := c.AddNode(nid); err != nil {
			t.Fatal(err)
		}
	}

	const id = engine.StreamID("plate-ow")
	phase1, max1 := synthBatches(t, 83, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })

	victim, ok := c.Owner(id)
	if !ok {
		t.Fatal("no owner for plate-ow")
	}
	if _, err := c.Leave(victim); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if v := s.Value("cluster_handoffs_total", obs.L("outcome", "restored")); v != 1 {
		t.Fatalf("cluster_handoffs_total{outcome=restored} = %v, want 1", v)
	}
	if v := s.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Fatalf("cluster_handoffs_total{outcome=fallback_live} = %v, want 0", v)
	}
	if v := s.Value("cluster_handoff_retries_total"); v < 1 {
		t.Fatalf("cluster_handoff_retries_total = %v, want >= 1 (the lost ack must force a retry)", v)
	}
	if v := s.Value("engine_streams_adopted_total"); v != 1 {
		t.Errorf("engine_streams_adopted_total = %v, want exactly 1 (duplicate transfer deduped via ErrStreamExists)", v)
	}
	mu.Lock()
	gotConns, gotDrops := conns, ackDrops
	mu.Unlock()
	if gotConns < 2 {
		t.Errorf("transfer used %d connections, want >= 2 (retry after the one-way partition)", gotConns)
	}
	if gotDrops < 1 {
		t.Errorf("faultnet observed %d dropped reads, want >= 1 (the ack had to be eaten)", gotDrops)
	}

	phase2, _ := synthLetters(t, 83, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-2 letters on the adopter`, func() bool { return tape.get(id) == "ITLC" })
}
