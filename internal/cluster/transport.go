package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"rfipad/internal/supervise"
)

// Dialer opens a handoff connection to a peer's transfer listener.
// Tests substitute a faultnet-wrapping dialer to inject partitions,
// delays, and drops onto the handoff path.
type Dialer func(network, addr string) (net.Conn, error)

// errHandoffDeadline marks a transfer abandoned because its overall
// deadline passed; the coordinator turns it into a fallback_live
// outcome instead of wedging the stream.
var errHandoffDeadline = errors.New("cluster: handoff deadline exceeded")

// transferCheckpoint ships one checkpoint to a peer's handoff listener
// and waits for its "OK" ack, retrying with capped backoff until the
// overall deadline. The frame carries the stream's trace context
// (Checkpoint.TraceID) alongside its calibration, so the adopting node
// continues the donor's trace instead of starting a severed one. Each attempt is bounded by attemptTimeout so a
// half-open connection (partition after SYN) cannot absorb the whole
// budget. Retries are safe: the receiver acks an already-adopted
// stream as success, so a lost ack does not double-adopt.
func transferCheckpoint(dial Dialer, addr string, cp supervise.Checkpoint,
	deadline time.Time, attemptTimeout, retryInitial time.Duration,
	onRetry func()) error {

	if dial == nil {
		dial = func(network, a string) (net.Conn, error) {
			return net.DialTimeout(network, a, attemptTimeout)
		}
	}
	backoff := retryInitial
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !time.Now().Before(deadline) {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", errHandoffDeadline, lastErr)
			}
			return errHandoffDeadline
		}
		if attempt > 0 {
			if onRetry != nil {
				onRetry()
			}
			sleep := backoff
			if until := time.Until(deadline); sleep > until {
				sleep = until
			}
			time.Sleep(sleep)
			if backoff < time.Second {
				backoff *= 2
			}
		}
		lastErr = attemptTransfer(dial, addr, cp, deadline, attemptTimeout)
		if lastErr == nil {
			return nil
		}
	}
}

// attemptTransfer is one dial → frame → ack round trip.
func attemptTransfer(dial Dialer, addr string, cp supervise.Checkpoint,
	deadline time.Time, attemptTimeout time.Duration) error {

	conn, err := dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: handoff dial: %w", err)
	}
	defer conn.Close()
	ioDeadline := time.Now().Add(attemptTimeout)
	if ioDeadline.After(deadline) {
		ioDeadline = deadline
	}
	conn.SetDeadline(ioDeadline)
	if err := supervise.WriteCheckpoint(conn, cp); err != nil {
		return err
	}
	var ack [2]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("cluster: handoff ack: %w", err)
	}
	if string(ack[:]) != handoffOK {
		return fmt.Errorf("cluster: handoff rejected by peer (%q)", ack[:])
	}
	return nil
}
