package cluster_test

import (
	"testing"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/engine"
	"rfipad/internal/obs"
)

// fastConfig is the base sim-test tuning: quick heartbeats and tight
// failure detection so membership churn resolves in tens of
// milliseconds, single-shard node engines for determinism.
func fastConfig(reg *obs.Registry) cluster.Config {
	return cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         150 * time.Millisecond,
		HandoffTimeout:    3 * time.Second,
		EngineWorkers:     1,
		Obs:               reg,
	}
}

// TestClusterRoutesAndRecognizes is the single-node sanity baseline: a
// one-member cluster routes a full capture to its engine and the word
// comes out, with membership and placement visible on cluster_*.
func TestClusterRoutesAndRecognizes(t *testing.T) {
	reg := obs.NewRegistry()
	tape := newLetterTape()
	cfg := fastConfig(reg)
	cfg.OnEvent = tape.onEvent
	c := cluster.New(cfg)
	defer c.Close()
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	batches, _ := synthBatches(t, 70, "IT", 0)
	pushAll(c, "plate-0", batches)
	c.FlushStream("plate-0")
	waitFor(t, 10*time.Second, `letters "IT"`, func() bool {
		return tape.get("plate-0") == "IT"
	})

	owner, ok := c.Owner("plate-0")
	if !ok || owner != "node-0" {
		t.Errorf("Owner = %q, %v; want node-0", owner, ok)
	}
	snap := reg.Snapshot()
	if v := snap.Value("cluster_nodes"); v != 1 {
		t.Errorf("cluster_nodes = %v, want 1", v)
	}
	if v := snap.Value("cluster_streams_placed"); v != 1 {
		t.Errorf("cluster_streams_placed = %v, want 1", v)
	}
	if v := snap.Value("cluster_heartbeats_total"); v == 0 {
		t.Error("cluster_heartbeats_total stayed zero")
	}

	results := c.Close()
	if res := results["node-0"]; len(res) != 1 || res[0].Letters != "IT" {
		t.Errorf("node-0 results = %+v, want one stream with IT", res)
	}
}

// TestClusterSpreadsStreams places many streams across members and
// demands every member own at least one — the coordinator must
// actually distribute, not pile everything on one engine.
func TestClusterSpreadsStreams(t *testing.T) {
	reg := obs.NewRegistry()
	c := cluster.New(fastConfig(reg))
	defer c.Close()
	nodes := []cluster.NodeID{"node-0", "node-1", "node-2"}
	for _, id := range nodes {
		if _, err := c.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[cluster.NodeID]int{}
	for i := 0; i < 32; i++ {
		id := engine.StreamID("plate-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		owner, ok := c.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		counts[owner]++
	}
	for _, id := range nodes {
		if counts[id] == 0 {
			t.Errorf("node %s owns no streams: %v", id, counts)
		}
	}
}

// TestClusterLeaveHandsOffGracefully drains a member mid-word: its
// calibrated stream must move to the survivor via a live-state
// checkpoint handoff (not the durable store — none is configured) and
// finish the word there with no recalibration.
func TestClusterLeaveHandsOffGracefully(t *testing.T) {
	reg := obs.NewRegistry()
	tape := newLetterTape()
	cfg := fastConfig(reg)
	cfg.OnEvent = tape.onEvent
	c := cluster.New(cfg)
	defer c.Close()
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	const id = engine.StreamID("plate-0")
	phase1, max1 := synthBatches(t, 56, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-1 letters "IT"`, func() bool {
		return tape.get(id) == "IT"
	})

	// Bring in the successor, then drain the original owner. The
	// stream must land on node-1 regardless of ring preference —
	// node-1 is the only member left.
	if _, err := c.AddNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Leave("node-0"); err != nil {
		t.Fatal(err)
	}
	owner, ok := c.Owner(id)
	if !ok || owner != "node-1" {
		t.Fatalf("after leave, owner = %q, %v; want node-1", owner, ok)
	}

	// Prelude-free continuation: only the migrated calibration can
	// recognize it.
	phase2, _ := synthLetters(t, 56, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 10*time.Second, `phase-2 letters "ITLC"`, func() bool {
		return tape.get(id) == "ITLC"
	})

	snap := reg.Snapshot()
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")); v != 1 {
		t.Errorf("restored handoffs = %v, want 1", v)
	}
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Errorf("fallback handoffs = %v, want 0", v)
	}
	if v := snap.Value("engine_streams_adopted_total"); v != 1 {
		t.Errorf("engine_streams_adopted_total = %v, want 1", v)
	}
	if v := snap.Value("engine_streams_evicted_total"); v != 1 {
		t.Errorf("engine_streams_evicted_total = %v, want 1", v)
	}
	if n := reg.Snapshot().HistCount("cluster_handoff_seconds", obs.L("trigger", "graceful")); n != 1 {
		t.Errorf("cluster_handoff_seconds{trigger=graceful} count = %d, want 1", n)
	}
}

// TestClusterJoinRebalanceIsSticky pins the sticky-placement rule: an
// uncalibrated stream (prelude still in progress) whose ring owner
// changes on a join stays where it is — migrating nothing would only
// destroy the partial prelude.
func TestClusterJoinRebalanceIsSticky(t *testing.T) {
	reg := obs.NewRegistry()
	c := cluster.New(fastConfig(reg))
	defer c.Close()
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}

	// One tiny batch: enough to create placements, nowhere near enough
	// to calibrate.
	batches, _ := synthBatches(t, 72, "I", 0)
	ids := []engine.StreamID{"plate-0", "plate-1", "plate-2", "plate-3"}
	for _, id := range ids {
		c.Push(id, batches[0])
	}
	for _, id := range ids {
		if owner, _ := c.Owner(id); owner != "node-0" {
			t.Fatalf("stream %s not on the only node", id)
		}
	}

	if _, err := c.AddNode("node-1"); err != nil {
		t.Fatal(err)
	}
	// Any rebalance migrations must resolve as sticky no-ops: every
	// stream still on node-0, nothing handed off.
	waitFor(t, 5*time.Second, "rebalance to settle", func() bool {
		for _, id := range ids {
			if owner, ok := c.Owner(id); !ok || owner != "node-0" {
				return false
			}
		}
		return true
	})
	time.Sleep(50 * time.Millisecond) // let any in-flight migration finalize
	snap := reg.Snapshot()
	if v := snap.Value("cluster_handoffs_total", obs.L("outcome", "restored")) +
		snap.Value("cluster_handoffs_total", obs.L("outcome", "fallback_live")); v != 0 {
		t.Errorf("handoffs = %v, want 0 (sticky)", v)
	}
	for _, id := range ids {
		if owner, _ := c.Owner(id); owner != "node-0" {
			t.Errorf("stream %s moved to %s; sticky placement should hold", id, owner)
		}
	}
}

// TestClusterCloseIdempotent demands the second Close return the first
// call's results — callers on different shutdown paths (signal
// handler, defer) must not race each other into a double drain.
func TestClusterCloseIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	tape := newLetterTape()
	cfg := fastConfig(reg)
	cfg.OnEvent = tape.onEvent
	c := cluster.New(cfg)
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}
	batches, _ := synthBatches(t, 73, "IT", 0)
	pushAll(c, "plate-0", batches)
	c.FlushStream("plate-0")
	waitFor(t, 10*time.Second, "letters", func() bool { return tape.get("plate-0") == "IT" })

	first := c.Close()
	second := c.Close()
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("result maps: first %d, second %d nodes", len(first), len(second))
	}
	f, s := first["node-0"], second["node-0"]
	if len(f) != 1 || len(s) != 1 || f[0].Letters != s[0].Letters || f[0].Letters != "IT" {
		t.Errorf("second Close diverged: first %+v, second %+v", f, s)
	}
	// Push after close sheds, never panics.
	if c.Push("plate-0", batches[0]) {
		t.Error("Push accepted a batch after Close")
	}
}
