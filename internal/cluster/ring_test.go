package cluster

import (
	"fmt"
	"testing"
)

// TestRingBalance demands virtual nodes spread keys roughly evenly: no
// member of a 4-node ring should own a wildly disproportionate share
// of 10k keys.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(NodeID(fmt.Sprintf("node-%d", i)))
	}
	counts := map[NodeID]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		owner, ok := r.Owner(fmt.Sprintf("stream-%d", i))
		if !ok {
			t.Fatal("owner lookup failed on populated ring")
		}
		counts[owner]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own keys: %v", len(counts), counts)
	}
	for id, n := range counts {
		// Fair share is 2500; accept a generous 2x spread either way —
		// the point is "no node starves or hogs", not perfect balance.
		if n < keys/8 || n > keys/2 {
			t.Errorf("node %s owns %d of %d keys — outside [%d, %d]",
				id, n, keys, keys/8, keys/2)
		}
	}
}

// TestRingMinimalMovement pins the consistent part of consistent
// hashing: removing one member of four must move only that member's
// keys — every key owned by a survivor keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(NodeID(fmt.Sprintf("node-%d", i)))
	}
	before := map[string]NodeID{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("stream-%d", i)
		owner, _ := r.Owner(key)
		before[key] = owner
	}
	r.Remove("node-2")
	moved := 0
	for key, prev := range before {
		now, ok := r.Owner(key)
		if !ok {
			t.Fatal("owner lookup failed")
		}
		if prev == "node-2" {
			if now == "node-2" {
				t.Fatalf("key %s still owned by removed node", key)
			}
			continue
		}
		if now != prev {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving nodes on removal; want 0", moved)
	}
}

// TestRingDeterministicOrder demands placement be independent of
// membership-change order: the same member set reached by different
// add/remove sequences maps every key identically.
func TestRingDeterministicOrder(t *testing.T) {
	a := NewRing(32)
	a.Add("alpha")
	a.Add("beta")
	a.Add("gamma")

	b := NewRing(32)
	b.Add("gamma")
	b.Add("delta")
	b.Add("alpha")
	b.Remove("delta")
	b.Add("beta")

	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("stream-%d", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %s: order-dependent placement (%s vs %s)", key, oa, ob)
		}
	}
}

// TestRingEmptyAndIdempotent covers the degenerate edges: an empty
// ring owns nothing, double add/remove are no-ops.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("anything"); ok {
		t.Error("empty ring claimed an owner")
	}
	r.Add("solo")
	r.Add("solo")
	if r.Len() != 1 {
		t.Errorf("Len = %d after duplicate add, want 1", r.Len())
	}
	if owner, ok := r.Owner("anything"); !ok || owner != "solo" {
		t.Errorf("single-node ring: owner = %q, %v", owner, ok)
	}
	r.Remove("ghost")
	if r.Len() != 1 {
		t.Errorf("Len = %d after removing non-member, want 1", r.Len())
	}
	r.Remove("solo")
	r.Remove("solo")
	if r.Len() != 0 {
		t.Errorf("Len = %d after removals, want 0", r.Len())
	}
}
