package cluster_test

// Chaos tests for the observability tentpole: a node kill must leave
// behind ONE stitched trace — pipeline spans from the dead owner,
// migration spans from the coordinator, adopt/skipto/pipeline spans
// from the new owner, all under the TraceID that rode the checkpoint —
// and every injected anomaly must land a flight-recorder dump in the
// JSONL file, queryable after the fact.

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"rfipad/internal/cluster"
	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// TestClusterNodeKillStitchedTrace kills a stream's owner mid-word and
// then reads the stream's trace back through the tracer: the evict,
// transfer, adopt, and skipto spans of the migration plus pipeline
// spans from BOTH nodes must share one TraceID — the checkpoint
// carried the trace context across the handoff, so the investigation
// view is one causal story, not two disconnected fragments.
func TestClusterNodeKillStitchedTrace(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := trace.New(trace.Config{SampleEvery: 1, Seed: 1, Obs: reg})
	tape := newLetterTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         150 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		Checkpoints:       store,
		CheckpointEvery:   100 * time.Millisecond,
		OnEvent:           tape.onEvent,
		Obs:               reg,
		Trace:             tracer,
	})
	defer c.Close()
	for _, id := range []cluster.NodeID{"node-0", "node-1"} {
		if _, err := c.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}

	const id = engine.StreamID("plate-0")
	phase1, max1 := synthBatches(t, 80, "IT", 0)
	pushAll(c, id, phase1)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-1 letters`, func() bool { return tape.get(id) == "IT" })

	victim, ok := c.Owner(id)
	if !ok {
		t.Fatal("no owner for plate-0")
	}
	if !c.Kill(victim) {
		t.Fatalf("Kill(%s) found no node", victim)
	}
	waitFor(t, 15*time.Second, "failure handoff", func() bool {
		return reg.Snapshot().Value("cluster_handoffs_total", obs.L("outcome", "restored")) >= 1
	})
	survivor, ok := c.Owner(id)
	if !ok || survivor == victim {
		t.Fatalf("owner after kill = %q, %v", survivor, ok)
	}

	phase2, _ := synthLetters(t, 80, "LC", max1+3*time.Second)
	pushAll(c, id, phase2)
	c.FlushStream(id)
	waitFor(t, 15*time.Second, `phase-2 letters`, func() bool { return tape.get(id) == "ITLC" })

	// One stream, one trace: every dump row for plate-0 carries the
	// same ID, and that ID matches what the live handle reports.
	var dump *trace.StreamDump
	for _, d := range tracer.Traces() {
		if d.Stream == string(id) {
			if dump != nil {
				t.Fatalf("stream %s has multiple traces: %v and %v — migration split the trace", id, dump.Trace, d.Trace)
			}
			cp := d
			dump = &cp
		}
	}
	if dump == nil {
		t.Fatal("no trace recorded for plate-0")
	}
	if got := tracer.Stream(string(id)).ID(); got != dump.Trace {
		t.Errorf("live handle trace ID %v != dumped %v", got, dump.Trace)
	}

	// The migration's causal chain is present, with the trigger
	// attribution on the coordinator's spans matching the histograms
	// (satellite: traces and cluster_handoff_seconds{trigger} must
	// agree). Seq is a per-ring arrival order: the coordinator records
	// its transfer span only after the blocking transfer returns, by
	// which time the target has already adopted — so ordering is
	// asserted where it is causal (evict starts the chain; adopt
	// precedes skipto on the adopting node), not across concurrent
	// recorders.
	wantSpans := []string{trace.SpanEvict, trace.SpanTransfer, trace.SpanAdopt, trace.SpanSkipTo}
	seq := map[string]uint64{}
	nodes := map[string]bool{}
	for _, sp := range dump.Spans {
		if sp.Trace != dump.Trace {
			t.Fatalf("span %s carries trace %v, want %v", sp.Name, sp.Trace, dump.Trace)
		}
		if sp.Node != "" {
			nodes[sp.Node] = true
		}
		if _, seen := seq[sp.Name]; !seen {
			seq[sp.Name] = sp.Seq
		}
		switch sp.Name {
		case trace.SpanEvict, trace.SpanTransfer, trace.SpanFallback:
			if sp.Trigger != "failure" {
				t.Errorf("%s span trigger = %q, want failure (node was killed)", sp.Name, sp.Trigger)
			}
		}
	}
	for _, name := range wantSpans {
		if _, ok := seq[name]; !ok {
			t.Errorf("trace missing %s span; have %v", name, spanNames(dump.Spans))
		}
	}
	if seq[trace.SpanEvict] >= seq[trace.SpanAdopt] {
		t.Errorf("evict (seq %d) not before adopt (seq %d)", seq[trace.SpanEvict], seq[trace.SpanAdopt])
	}
	if seq[trace.SpanAdopt] >= seq[trace.SpanSkipTo] {
		t.Errorf("adopt (seq %d) not before skipto (seq %d)", seq[trace.SpanAdopt], seq[trace.SpanSkipTo])
	}
	if !nodes[string(victim)] || !nodes[string(survivor)] {
		t.Errorf("trace spans attribute nodes %v, want both %s and %s — not stitched across the kill",
			keys(nodes), victim, survivor)
	}
	// Both halves of the pipeline ran under this trace: ingest spans
	// exist from before AND after the migration.
	var ingestVictim, ingestSurvivor bool
	for _, sp := range dump.Spans {
		if sp.Name == trace.SpanIngest {
			ingestVictim = ingestVictim || sp.Node == string(victim)
			ingestSurvivor = ingestSurvivor || sp.Node == string(survivor)
		}
	}
	if !ingestSurvivor {
		t.Error("no ingest spans from the adopting node — post-migration pipeline not traced")
	}
	// The victim's ingest spans may have been displaced by ring wrap on
	// a long run; with BufSpans defaulted to 256 they survive here.
	if !ingestVictim {
		t.Error("no ingest spans from the killed node — pre-migration pipeline not traced")
	}
}

func spanNames(spans []trace.Span) []string {
	var names []string
	for _, sp := range spans {
		names = append(names, sp.Name)
	}
	return names
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestClusterFlightRecorderCapturesAnomalies injects three distinct
// anomalies — an event-handler panic, a corrupt on-disk checkpoint,
// and a handoff that exhausts its deadline against a total partition —
// and asserts each trigger leaves at least one dump in the shared
// flight JSONL, carrying enough context (stream, node, spans, summary)
// to investigate without a debugger attached.
func TestClusterFlightRecorderCapturesAnomalies(t *testing.T) {
	reg := obs.NewRegistry()
	fl, err := trace.OpenFlight(flightDir(t), reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{SampleEvery: 1, Seed: 1, Obs: reg})

	// Scenario 1: panic quarantine + corrupt checkpoint, one cluster.
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const boomStream = engine.StreamID("plate-boom")
	const corruptStream = engine.StreamID("plate-corrupt")
	// A checkpoint file full of garbage: the restore-at-creation path
	// must reject it, fall back to live calibration, and dump.
	if err := os.WriteFile(store.Path(string(corruptStream)), []byte("not an RFCP frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	tape := newLetterTape()
	c := cluster.New(cluster.Config{
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         150 * time.Millisecond,
		HandoffTimeout:    5 * time.Second,
		EngineWorkers:     1,
		Checkpoints:       store,
		OnEvent: func(node cluster.NodeID, id engine.StreamID, ev core.Event) {
			if id == boomStream && ev.Kind == core.LetterDeduced {
				panic("injected event-handler fault")
			}
			tape.onEvent(node, id, ev)
		},
		Obs:    reg,
		Trace:  tracer,
		Flight: fl,
	})
	if _, err := c.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []engine.StreamID{boomStream, corruptStream} {
		batches, _ := synthBatches(t, 97, "IT", 0)
		pushAll(c, id, batches)
		c.FlushStream(id)
	}
	// The corrupt-checkpoint stream calibrates live and recognizes; the
	// panicking stream is quarantined instead.
	waitFor(t, 15*time.Second, "live recognition past the corrupt checkpoint", func() bool {
		return tape.get(corruptStream) == "IT"
	})
	waitFor(t, 15*time.Second, "panic quarantine dump", func() bool {
		return reg.Snapshot().Value("obs_flight_dumps_total", obs.L("trigger", trace.TriggerPanic)) >= 1
	})
	c.Close()

	// Scenario 2: graceful leave against a total partition, no durable
	// store — the handoff deadline forces fallback-to-live. The node
	// and stream names mirror TestClusterHandoffDeadlineFallsBackToLive:
	// this placement keeps the stream on the leaver until Leave itself
	// migrates it (a join-rebalance racing the leave would go sticky
	// instead and never reach the handoff path).
	tape2 := newLetterTape()
	c2 := cluster.New(cluster.Config{
		HeartbeatInterval:     25 * time.Millisecond,
		FailAfter:             150 * time.Millisecond,
		HandoffTimeout:        300 * time.Millisecond,
		HandoffAttemptTimeout: 50 * time.Millisecond,
		HandoffRetryInitial:   10 * time.Millisecond,
		EngineWorkers:         1,
		Dial: func(network, addr string) (net.Conn, error) {
			return nil, errors.New("injected total partition")
		},
		OnEvent: tape2.onEvent,
		Obs:     reg,
		Trace:   tracer,
		Flight:  fl,
	})
	if _, err := c2.AddNode("node-0"); err != nil {
		t.Fatal(err)
	}
	const fbStream = engine.StreamID("plate-0")
	batches, _ := synthBatches(t, 92, "IT", 0)
	pushAll(c2, fbStream, batches)
	c2.FlushStream(fbStream)
	waitFor(t, 15*time.Second, "phase-1 letters", func() bool { return tape2.get(fbStream) == "IT" })
	if _, err := c2.AddNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Leave("node-0"); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// Read the JSONL back the way an operator (or CI's artifact
	// collector) would and assert one dump per injected trigger.
	dumps, err := trace.ReadDumps(fl.Path())
	if err != nil {
		t.Fatal(err)
	}
	byTrigger := map[string][]trace.Dump{}
	for _, d := range dumps {
		byTrigger[d.Trigger] = append(byTrigger[d.Trigger], d)
	}

	panics := byTrigger[trace.TriggerPanic]
	if len(panics) == 0 {
		t.Fatalf("no %s dumps; triggers on file: %v", trace.TriggerPanic, triggersOf(dumps))
	}
	pd := panics[0]
	if pd.Stream != string(boomStream) {
		t.Errorf("panic dump stream = %q, want %s", pd.Stream, boomStream)
	}
	if pd.Node != "node-0" {
		t.Errorf("panic dump node = %q, want node-0", pd.Node)
	}
	if pd.Summary == nil || pd.Summary.Readings == 0 {
		t.Errorf("panic dump summary = %+v, want ingest progress captured before teardown", pd.Summary)
	}
	if len(pd.Spans) == 0 {
		t.Error("panic dump carries no spans — the last-moments window is empty")
	}
	if pd.Trace == 0 {
		t.Error("panic dump not linked to the stream's trace")
	}

	corrupts := byTrigger[trace.TriggerCorruptCheckpoint]
	if len(corrupts) == 0 {
		t.Fatalf("no %s dumps; triggers on file: %v", trace.TriggerCorruptCheckpoint, triggersOf(dumps))
	}
	if corrupts[0].Stream != string(corruptStream) {
		t.Errorf("corrupt dump stream = %q, want %s", corrupts[0].Stream, corruptStream)
	}
	if corrupts[0].Detail == "" {
		t.Error("corrupt dump has no detail — the decode error must be preserved")
	}

	fallbacks := byTrigger[trace.TriggerHandoffFallback]
	if len(fallbacks) == 0 {
		t.Fatalf("no %s dumps; triggers on file: %v", trace.TriggerHandoffFallback, triggersOf(dumps))
	}
	if fallbacks[0].Stream != string(fbStream) {
		t.Errorf("fallback dump stream = %q, want %s", fallbacks[0].Stream, fbStream)
	}

	// The counter agrees with the file.
	snap := reg.Snapshot()
	for _, trig := range []string{trace.TriggerPanic, trace.TriggerCorruptCheckpoint, trace.TriggerHandoffFallback} {
		if v := snap.Value("obs_flight_dumps_total", obs.L("trigger", trig)); v != float64(len(byTrigger[trig])) {
			t.Errorf("obs_flight_dumps_total{trigger=%s} = %v, file has %d", trig, v, len(byTrigger[trig]))
		}
	}
}

func triggersOf(dumps []trace.Dump) []string {
	var out []string
	for _, d := range dumps {
		out = append(out, d.Trigger)
	}
	return out
}

// flightDir picks where this test's flight recorder writes. Under CI,
// RFIPAD_FLIGHT_DIR points somewhere the workflow uploads as an
// artifact when the job fails, so a red chaos run ships its black box
// with it; each test still gets a unique subdirectory so repeated runs
// (-count=2) never append to a prior iteration's JSONL.
func flightDir(t *testing.T) string {
	base := os.Getenv("RFIPAD_FLIGHT_DIR")
	if base == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(base, t.Name()+"-*")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}
