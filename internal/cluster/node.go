package cluster

import (
	"errors"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// Node is one cluster member: a sharded recognition engine plus a TCP
// handoff listener that adopts migrated streams, plus the heartbeat
// loop that keeps the coordinator's failure detector fed. Nodes are
// created through Cluster.AddNode, which wires the shared checkpoint
// store, event fan-out, and membership.
type Node struct {
	id     NodeID
	eng    *engine.Engine
	ln     net.Listener
	log    *slog.Logger
	flight *trace.Flight

	// killed simulates a crash: the node stops heartbeating, stops
	// accepting handoffs, and rejects pushes — unreachable to the rest
	// of the cluster even though it shares the process.
	killed atomic.Bool
	hbStop chan struct{}
	hbOnce sync.Once
	wg     sync.WaitGroup

	// leases is the node's view of the ownership leases it holds, keyed
	// by stream: granted at placement, renewed by delivered heartbeats,
	// reaped by the lease watchdog (see lease.go).
	leaseMu sync.Mutex
	leases  map[engine.StreamID]lease
	// hbPartitioned simulates an asymmetric partition: the node's
	// heartbeats stop reaching the coordinator while every data path
	// stays up (Cluster.PartitionHeartbeats).
	hbPartitioned atomic.Bool
	// demoteSuspended pauses the watchdog's self-demotion — the chaos
	// hook for a zombie that cannot run its own containment
	// (SuspendDemotion).
	demoteSuspended atomic.Bool
	wdStop          chan struct{}
	wdOnce          sync.Once

	closeOnce sync.Once
	results   []engine.StreamResult
}

// ID returns the node's name.
func (n *Node) ID() NodeID { return n.id }

// Addr returns the handoff listener address peers transfer checkpoints
// to.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Engine exposes the node's engine (benchmarks and tests).
func (n *Node) Engine() *engine.Engine { return n.eng }

// push enqueues a batch on the node's engine. A killed node is
// unreachable, and a node without a live lease for the stream refuses
// intake — accepting batches after lease expiry would let a demoted
// owner quietly recreate the evicted state from its own backlog.
func (n *Node) push(id engine.StreamID, batch []core.Reading) bool {
	if n.killed.Load() || !n.leaseLive(id, time.Now()) {
		return false
	}
	return n.eng.Push(id, batch)
}

// pushWait is the blocking push used by source-driven streams.
func (n *Node) pushWait(id engine.StreamID, batch []core.Reading) bool {
	if n.killed.Load() || !n.leaseLive(id, time.Now()) {
		return false
	}
	return n.eng.PushWait(id, batch)
}

// evict pulls a stream's checkpoint out of the node's engine for
// migration. Fails on a killed node — a crashed process cannot be
// asked for its live state; the coordinator falls back to the durable
// store.
func (n *Node) evict(id engine.StreamID) (supervise.Checkpoint, bool) {
	if n.killed.Load() {
		return supervise.Checkpoint{}, false
	}
	return n.eng.EvictStream(id)
}

// flush forces a stream's pending stroke and letter out.
func (n *Node) flush(id engine.StreamID) {
	if !n.killed.Load() {
		n.eng.FlushStream(id)
	}
}

// stopHeartbeat halts the heartbeat loop (idempotent). Graceful leave
// uses it alone; kill and shutdown fold it in.
func (n *Node) stopHeartbeat() {
	n.hbOnce.Do(func() { close(n.hbStop) })
}

// kill makes the node unreachable without draining it: heartbeats
// stop, the handoff listener closes, pushes bounce. The engine's
// goroutines keep running (an in-process "crash" cannot reclaim them)
// until shutdown reaps them — but nothing routes to them anymore.
func (n *Node) kill() {
	if n.killed.CompareAndSwap(false, true) {
		n.stopHeartbeat()
		n.ln.Close()
	}
}

// shutdown closes the listener and drains the engine, once. The
// engine's Close is idempotent, so a node that was killed and later
// reaped drains cleanly. The lease watchdog stops here — not at kill:
// a killed node's engine keeps running, and so would a real
// partitioned process's watchdog.
func (n *Node) shutdown() []engine.StreamResult {
	n.closeOnce.Do(func() {
		n.stopHeartbeat()
		n.stopWatchdog()
		n.ln.Close()
		n.results = n.eng.Close()
		n.wg.Wait()
	})
	return n.results
}

// serve accepts handoff connections until the listener closes.
func (n *Node) serve(ioTimeout time.Duration) {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleHandoff(conn, ioTimeout)
		}()
	}
}

// Handoff wire protocol: the sender writes one length-prefixed
// checkpoint frame (supervise.WriteCheckpoint) and reads a 2-byte
// status — "OK" once the stream is adopted, "ER" otherwise. The
// ack-after-adopt ordering makes the transfer idempotent to retry: a
// sender that never saw "OK" retries, and a duplicate adopt fails with
// ErrStreamExists, which the receiver reports as success ("OK") since
// the stream is already owned here.
const (
	handoffOK  = "OK"
	handoffErr = "ER"
)

func (n *Node) handleHandoff(conn net.Conn, ioTimeout time.Duration) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(ioTimeout))
	status := handoffErr
	defer func() { conn.Write([]byte(status)) }()
	cp, err := supervise.ReadCheckpoint(conn)
	if err != nil {
		// A frame that failed its integrity envelope is a flight-recorder
		// anomaly: the link (or a fault injector) corrupted a handoff.
		n.flight.Record(trace.Dump{
			Trigger: trace.TriggerCorruptCheckpoint,
			Node:    string(n.id),
			Detail:  err.Error(),
		})
		if n.log != nil {
			n.log.Warn("handoff frame rejected", "node", string(n.id), "err", err)
		}
		return
	}
	if n.killed.Load() {
		return
	}
	switch err := n.eng.AdoptStream(engine.StreamID(cp.Stream), cp); {
	case err == nil:
		status = handoffOK
		if n.log != nil {
			n.log.Info("stream adopted via handoff",
				"node", string(n.id), "stream", cp.Stream,
				"frame_cursor", cp.FrameCursor)
		}
	case errors.Is(err, engine.ErrStreamExists):
		// A retried transfer whose earlier attempt adopted but lost the
		// ack: the stream is here, so the handoff succeeded.
		status = handoffOK
	default:
		if n.log != nil {
			n.log.Warn("handoff adoption failed",
				"node", string(n.id), "stream", cp.Stream, "err", err)
		}
	}
}
