package cluster

import (
	"fmt"
	"time"

	"rfipad/internal/engine"
	"rfipad/internal/obs/trace"
)

// Ownership leases are the cluster's split-brain defense. The
// coordinator mints a monotonically increasing per-stream epoch on
// every (re)assignment and grants the owning node a lease strictly
// shorter than FailAfter, renewed with each delivered heartbeat. The
// two halves of the protocol:
//
//   - Coordinator side: the failure detector only reassigns a stream
//     after FailAfter of heartbeat silence, and the new assignment
//     carries a higher epoch.
//   - Owner side: a node whose lease expires unrenewed self-demotes
//     the stream first — emission stops at the expiry instant, the
//     state is evicted locally, and one final fenced-safe checkpoint
//     is attempted.
//
// Because lease < FailAfter, the old owner's demotion strictly
// precedes the reassignment: no two nodes are ever active writers for
// the same stream. Even a pathological owner that cannot run its own
// watchdog (a GC-stalled zombie) is contained, because its results are
// gated on the expired lease and its late checkpoint writes carry the
// old epoch, which the store's fence rejects (supervise.ErrFenced).

// lease is one stream's ownership grant on a node: the fencing epoch
// the coordinator minted for this assignment plus the renewal
// deadline. A reaped lease is tombstoned (demoted), not deleted: the
// demotion must run exactly once, but the epoch stays reportable so a
// checkpoint racing the eviction through the shard mailbox still
// stamps the owner's true old token instead of falling back to an
// arrival epoch the fence would reject.
type lease struct {
	epoch   uint64
	expires time.Time
	demoted bool
}

// expiredLease is a lease the watchdog reaped, queued for demotion.
type expiredLease struct {
	id    engine.StreamID
	epoch uint64
}

// grantLease installs or renews a stream's lease on the node.
func (n *Node) grantLease(id engine.StreamID, epoch uint64, expires time.Time) {
	n.leaseMu.Lock()
	n.leases[id] = lease{epoch: epoch, expires: expires}
	n.leaseMu.Unlock()
}

// revokeLease removes a stream's lease (its state was evicted for
// migration; the node is no longer the owner).
func (n *Node) revokeLease(id engine.StreamID) {
	n.leaseMu.Lock()
	delete(n.leases, id)
	n.leaseMu.Unlock()
}

// leaseEpoch reports the epoch the node holds for a stream — expired
// or not. Checkpoint stamping deliberately ignores expiry: a stale
// owner must stamp its true (old) epoch so the store's fence can judge
// the write, rather than borrowing a fresher one.
func (n *Node) leaseEpoch(id engine.StreamID) (uint64, bool) {
	n.leaseMu.Lock()
	l, ok := n.leases[id]
	n.leaseMu.Unlock()
	return l.epoch, ok
}

// leaseLive reports whether the node holds an unexpired lease for the
// stream — the gate on result emission and batch intake.
func (n *Node) leaseLive(id engine.StreamID, now time.Time) bool {
	n.leaseMu.Lock()
	l, ok := n.leases[id]
	n.leaseMu.Unlock()
	return ok && now.Before(l.expires)
}

// takeExpiredLeases tombstones and returns every expired lease that
// has not already been reaped. Marking and return are atomic per lease
// so a demotion runs at most once; the tombstone (rather than a
// delete) keeps the old epoch visible to leaseEpoch until a fresh
// grant or an explicit revocation replaces it.
func (n *Node) takeExpiredLeases(now time.Time) []expiredLease {
	n.leaseMu.Lock()
	defer n.leaseMu.Unlock()
	var out []expiredLease
	for id, l := range n.leases {
		if !l.demoted && !now.Before(l.expires) {
			out = append(out, expiredLease{id: id, epoch: l.epoch})
			l.demoted = true
			n.leases[id] = l
		}
	}
	return out
}

// stopWatchdog halts the lease watchdog loop (idempotent).
func (n *Node) stopWatchdog() {
	n.wdOnce.Do(func() { close(n.wdStop) })
}

// SuspendDemotion pauses (true) or resumes (false) the node's lease
// watchdog — a chaos hook simulating a zombie whose runtime stalled
// past its lease expiry without running its own demotion (GC pause,
// frozen VM). The other defenses still apply: the node's results stay
// gated on the expired lease and its late checkpoint writes are fenced
// by the store, which is exactly what the partition chaos tests
// assert.
func (n *Node) SuspendDemotion(v bool) { n.demoteSuspended.Store(v) }

// renewLeasesLocked extends the leases of every stream placed on a
// node, as part of one successfully delivered heartbeat: renewal and
// failure detection ride the same signal, so a node the coordinator
// can hear keeps its leases and a node it cannot hear loses them
// before it loses membership. Streams mid-migration are skipped — the
// donor's lease was revoked when its state left and must not revive.
// Callers hold c.mu.
func (c *Cluster) renewLeasesLocked(n *Node, expires time.Time) {
	for sid, p := range c.placements {
		if p.node == n.id && !p.migrating {
			n.grantLease(sid, c.epochs[sid], expires)
		}
	}
}

// nextEpochLocked mints a stream's next ownership epoch: strictly
// greater than every epoch this coordinator has minted for it, every
// epoch the durable store has seen (epoch continuity across a
// coordinator restart), and the floor the caller observed on an
// evicted checkpoint. Callers hold c.mu.
func (c *Cluster) nextEpochLocked(id engine.StreamID, floor uint64) uint64 {
	e := c.epochs[id]
	if floor > e {
		e = floor
	}
	if c.epochs[id] == 0 && c.cfg.Checkpoints != nil {
		// First mint this incarnation: a previous coordinator may have
		// minted epochs that only survive in the stored checkpoint.
		if cp, err := c.cfg.Checkpoints.Load(string(id)); err == nil && cp.Epoch > e {
			e = cp.Epoch
		}
	}
	e++
	c.epochs[id] = e
	c.tel.epoch(string(id)).Set(float64(e))
	return e
}

// grantLeaseLocked mints nothing: it hands an already-minted epoch to
// the owner with a fresh expiry. Callers hold c.mu.
func (c *Cluster) grantLeaseLocked(owner NodeID, id engine.StreamID, epoch uint64) {
	if n := c.memberNodeLocked(owner); n != nil {
		n.grantLease(id, epoch, time.Now().Add(c.cfg.LeaseDuration))
	}
}

// leaseWatchdog is the owner-side half of the lease protocol: a
// per-node loop that reaps expired leases and self-demotes their
// streams. It runs even on a killed node — an in-process "crash"
// leaves the engine goroutines alive, and a real partitioned process
// would still be running its own watchdog; that is the whole point.
func (c *Cluster) leaseWatchdog(n *Node) {
	defer n.wg.Done()
	t := time.NewTicker(c.cfg.LeaseCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-n.wdStop:
			return
		case <-c.stop:
			return
		case <-t.C:
			if n.demoteSuspended.Load() {
				continue
			}
			for _, ex := range n.takeExpiredLeases(time.Now()) {
				c.selfDemote(n, ex)
			}
		}
	}
}

// selfDemote is zombie-owner containment: a lease that expired
// unrenewed means the coordinator may be reassigning the stream right
// now, so the node evicts the state locally — emission already stopped
// at the expiry instant, checkpointing stops because the state is gone
// — and writes one final checkpoint under the old epoch so a successor
// resumes from the newest state this owner had. If a new owner already
// saved under a higher epoch the store fences this write out; either
// way no two nodes are ever active writers.
func (c *Cluster) selfDemote(n *Node, ex expiredLease) {
	c.tel.leaseExpired.Inc()
	// Direct engine access, not n.evict: a killed node refuses peer
	// requests, but self-demotion is the node's own local action.
	cp, ok := n.eng.EvictStream(ex.id)
	detail := fmt.Sprintf("lease (epoch %d) expired unrenewed; stream evicted locally", ex.epoch)
	saveErr := ""
	if ok && c.cfg.Checkpoints != nil {
		cp.Epoch = ex.epoch
		if err := c.cfg.Checkpoints.Save(cp); err != nil {
			saveErr = err.Error()
			detail += "; final save: " + saveErr
		} else {
			detail += "; final checkpoint saved"
		}
	} else if !ok {
		detail += " (nothing calibrated to evict)"
	}
	tr := c.traceFor(ex.id, cp.TraceID)
	tr.Add(trace.Span{Name: trace.SpanDemote, Node: string(n.id),
		Start: time.Now(), Err: saveErr})
	if c.cfg.Flight != nil {
		c.cfg.Flight.Record(trace.Dump{
			Trigger: trace.TriggerLeaseExpired,
			Node:    string(n.id),
			Stream:  string(ex.id),
			Trace:   tr.ID(),
			Detail:  detail,
			Spans:   tr.Spans(),
		})
	}
	if c.log != nil {
		c.log.Warn("ownership lease expired; stream self-demoted",
			"node", string(n.id), "stream", string(ex.id),
			"epoch", ex.epoch, "had_state", ok, "save_err", saveErr)
	}
}

// PartitionHeartbeats severs (true) or heals (false) the control path
// from a node to the coordinator while every data path — pushes, the
// handoff listener, the shared checkpoint store — stays reachable: an
// asymmetric partition. The node keeps running as a zombie owner; the
// failure detector will declare it dead and reassign its streams,
// while the node's own lease expiry forces it to self-demote first.
// Returns false for an unknown node.
func (c *Cluster) PartitionHeartbeats(id NodeID, partitioned bool) bool {
	c.mu.Lock()
	n, ok := c.allNodes[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	n.hbPartitioned.Store(partitioned)
	if c.log != nil {
		c.log.Warn("heartbeat path partition toggled",
			"node", string(id), "partitioned", partitioned)
	}
	return true
}

// heartbeatExpired is the failure detector's deadline test: silence
// must exceed failAfter strictly, so a heartbeat landing exactly at
// the deadline keeps its node alive.
func heartbeatExpired(lastBeat, now time.Time, failAfter time.Duration) bool {
	return now.Sub(lastBeat) > failAfter
}

// monitorPeriod derives the failure detector's polling period from
// FailAfter: a quarter of the deadline (bounding detection overshoot
// to 25%), floored at 1ms so tiny FailAfter values cannot produce a
// zero or negative ticker period.
func monitorPeriod(failAfter time.Duration) time.Duration {
	period := failAfter / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	return period
}
