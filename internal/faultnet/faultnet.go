// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seeded fault injection: added latency, partial writes, mid-stream
// connection drops, byte corruption, and frame duplication/reordering.
// It exists so the streaming stack's resilience can be exercised both
// in unit tests and end-to-end (rfipad-readerd exposes it behind
// -fault-* flags for chaos runs against rfipad-live).
//
// Most faults are applied on the *write* path of the wrapped
// connection: wrapping the server side perturbs what the client
// receives, which is the direction that matters for a report stream.
// The one-way partition modes (DropWrites, DropReads) additionally
// let a test sever exactly one direction of a link — the asymmetric
// partition behind split-brain scenarios — while the other direction
// keeps flowing. Every random decision draws from a rand.Rand seeded
// from Config.Seed (plus the connection's accept index for
// listeners), so a given seed reproduces the exact fault schedule.
//
// Frame-aware faults (duplication, reordering, whole-frame
// corruption) need to know where frames start and end; the caller
// supplies that via Config.FrameHeaderLen and Config.FrameSize so the
// package stays protocol-agnostic.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config selects which faults to inject. The zero value injects
// nothing (a transparent wrapper).
type Config struct {
	// Seed drives every random fault decision. Connections accepted
	// through Listen derive per-connection seeds from it, so each
	// connection sees a different but reproducible schedule.
	Seed int64

	// Latency delays each write by Latency ± LatencyJitter (uniform).
	Latency       time.Duration
	LatencyJitter time.Duration

	// PartialWrites splits each write into several smaller writes at
	// random cut points, exercising short-write handling downstream.
	PartialWrites bool

	// DropAfterBytes force-closes the connection once roughly this
	// many bytes have been written (0 = never). The drop lands
	// mid-frame when the byte budget expires there — the harshest
	// cut.
	DropAfterBytes int64
	// DropProb drops the connection with this per-write probability.
	DropProb float64

	// CorruptProb flips one random byte of a write with this per-write
	// probability.
	CorruptProb float64

	// DropWrites blackholes every write: the caller sees full success,
	// the peer receives nothing — one half of an asymmetric partition
	// (e.g. heartbeats silently lost while the reverse path works).
	DropWrites bool
	// DropReads discards every byte the peer sends: Read consumes and
	// drops incoming data, returning only when the connection's read
	// deadline expires or the peer closes — the other half of an
	// asymmetric partition (e.g. an acknowledgment that never arrives).
	DropReads bool

	// DupFrameProb duplicates a complete frame with this per-frame
	// probability. Requires framing (below).
	DupFrameProb float64
	// ReorderFrameProb holds a frame back and emits it after its
	// successor with this per-frame probability. Requires framing.
	ReorderFrameProb float64

	// FrameHeaderLen is the fixed frame header size; FrameSize maps a
	// full header to the total frame length (header + payload). Both
	// must be set for frame-aware faults; byte-level faults work
	// without them.
	FrameHeaderLen int
	FrameSize      func(header []byte) int

	// Observer, when set, is called once per injected fault with its
	// kind (one of the Fault* constants). The package stays free of
	// metric dependencies; callers typically wire this to a labeled
	// counter. It runs on the write path with the connection's lock
	// held — keep it fast.
	Observer func(kind string)
}

// Fault kinds reported to Config.Observer.
const (
	// FaultDrop is a forced connection close (DropProb or
	// DropAfterBytes).
	FaultDrop = "drop"
	// FaultCorrupt is a flipped byte.
	FaultCorrupt = "corrupt"
	// FaultDup is a duplicated frame.
	FaultDup = "dup"
	// FaultReorder is a frame held back behind its successor.
	FaultReorder = "reorder"
	// FaultPartial is a write split into fragments.
	FaultPartial = "partial"
	// FaultDropWrite is a blackholed write (DropWrites).
	FaultDropWrite = "drop_write"
	// FaultDropRead is a discarded inbound read (DropReads), reported
	// once per underlying read that returned data.
	FaultDropRead = "drop_read"
)

// framed reports whether frame-aware faults can run.
func (c Config) framed() bool { return c.FrameHeaderLen > 0 && c.FrameSize != nil }

// active reports whether any fault is configured.
func (c Config) active() bool {
	return c.Latency > 0 || c.PartialWrites || c.DropAfterBytes > 0 || c.DropProb > 0 ||
		c.CorruptProb > 0 || c.DupFrameProb > 0 || c.ReorderFrameProb > 0 ||
		c.DropWrites || c.DropReads
}

// errInjectedDrop is what a faulted connection returns once its drop
// triggered.
type errInjectedDrop struct{}

func (errInjectedDrop) Error() string   { return "faultnet: injected connection drop" }
func (errInjectedDrop) Timeout() bool   { return false }
func (errInjectedDrop) Temporary() bool { return false }

// Wrap decorates a connection with the configured faults, drawing
// randomness from rng (which must not be shared with other
// goroutines). A nil rng derives one from cfg.Seed.
func Wrap(inner net.Conn, cfg Config, rng *rand.Rand) net.Conn {
	if !cfg.active() {
		return inner
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &conn{Conn: inner, cfg: cfg, rng: rng}
}

// Listen wraps a listener so every accepted connection carries the
// configured faults. Connection i uses seed cfg.Seed + i, making
// multi-connection chaos runs reproducible end to end.
func Listen(inner net.Listener, cfg Config) net.Listener {
	if !cfg.active() {
		return inner
	}
	return &listener{Listener: inner, cfg: cfg}
}

type listener struct {
	net.Listener
	cfg Config

	mu    sync.Mutex
	index int64
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.index
	l.index++
	l.mu.Unlock()
	return Wrap(c, l.cfg, rand.New(rand.NewSource(l.cfg.Seed+i))), nil
}

// conn injects faults on the write path; reads pass through unless
// DropReads severs the inbound direction.
type conn struct {
	net.Conn
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	dropped bool
	// pending buffers bytes until a complete frame is available when
	// framing is configured.
	pending []byte
	// held is a frame delayed by a reordering fault.
	held []byte
}

// Write applies the fault schedule. It reports len(p) consumed on
// success even when duplication wrote more bytes underneath, so
// callers' accounting stays intact.
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		return 0, errInjectedDrop{}
	}
	if c.cfg.DropWrites {
		// One-way partition: claim success, deliver nothing.
		c.observe(FaultDropWrite)
		return len(p), nil
	}
	if !c.cfg.framed() {
		if err := c.emit(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	// Frame-aware path: accumulate until whole frames are available,
	// then run per-frame faults.
	c.pending = append(c.pending, p...)
	for {
		frame := c.cutFrame()
		if frame == nil {
			break
		}
		if c.held != nil {
			// Emit the delayed frame *after* this one: swapped order.
			if err := c.emit(frame); err != nil {
				return 0, err
			}
			held := c.held
			c.held = nil
			if err := c.emit(held); err != nil {
				return 0, err
			}
			continue
		}
		if c.cfg.ReorderFrameProb > 0 && c.rng.Float64() < c.cfg.ReorderFrameProb {
			c.held = append([]byte(nil), frame...)
			c.observe(FaultReorder)
			continue
		}
		if err := c.emit(frame); err != nil {
			return 0, err
		}
		if c.cfg.DupFrameProb > 0 && c.rng.Float64() < c.cfg.DupFrameProb {
			c.observe(FaultDup)
			if err := c.emit(frame); err != nil {
				return 0, err
			}
		}
	}
	return len(p), nil
}

// Read passes through unless DropReads is set, in which case every
// inbound byte is consumed and discarded: the caller blocks exactly as
// it would on a silent peer, until its read deadline expires or the
// peer closes the connection.
func (c *conn) Read(p []byte) (int, error) {
	if !c.cfg.DropReads {
		return c.Conn.Read(p)
	}
	scratch := make([]byte, 1024)
	for {
		n, err := c.Conn.Read(scratch)
		if n > 0 {
			c.mu.Lock()
			c.observe(FaultDropRead)
			c.mu.Unlock()
		}
		if err != nil {
			return 0, err
		}
	}
}

// cutFrame splits one complete frame off the pending buffer, or nil.
func (c *conn) cutFrame() []byte {
	if len(c.pending) < c.cfg.FrameHeaderLen {
		return nil
	}
	size := c.cfg.FrameSize(c.pending[:c.cfg.FrameHeaderLen])
	if size <= 0 {
		// Unparseable header (already-corrupted stream): flush as-is.
		frame := c.pending
		c.pending = nil
		return frame
	}
	if len(c.pending) < size {
		return nil
	}
	frame := c.pending[:size]
	c.pending = c.pending[size:]
	if len(c.pending) == 0 {
		c.pending = nil
	}
	return frame
}

// emit pushes bytes through the byte-level faults (latency, drop,
// corruption, partial writes) to the wrapped connection. Called with
// c.mu held.
func (c *conn) emit(p []byte) error {
	if c.cfg.Latency > 0 {
		d := c.cfg.Latency
		if j := c.cfg.LatencyJitter; j > 0 {
			d += time.Duration(c.rng.Int63n(int64(2*j))) - j
		}
		if d > 0 {
			time.Sleep(d)
		}
	}
	if c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb {
		return c.drop()
	}
	if c.cfg.CorruptProb > 0 && len(p) > 0 && c.rng.Float64() < c.cfg.CorruptProb {
		p = append([]byte(nil), p...)
		i := c.rng.Intn(len(p))
		p[i] ^= byte(1 + c.rng.Intn(255))
		c.observe(FaultCorrupt)
	}
	// Honor a byte budget by cutting the write mid-stream.
	if c.cfg.DropAfterBytes > 0 && c.written+int64(len(p)) > c.cfg.DropAfterBytes {
		keep := c.cfg.DropAfterBytes - c.written
		if keep > 0 {
			c.writeChunks(p[:keep])
		}
		return c.drop()
	}
	if err := c.writeChunks(p); err != nil {
		return err
	}
	c.written += int64(len(p))
	return nil
}

// writeChunks writes p, optionally split at random cut points.
func (c *conn) writeChunks(p []byte) error {
	if !c.cfg.PartialWrites || len(p) < 2 {
		_, err := c.Conn.Write(p)
		return err
	}
	c.observe(FaultPartial)
	for len(p) > 0 {
		n := 1 + c.rng.Intn(len(p))
		if _, err := c.Conn.Write(p[:n]); err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// drop closes the underlying connection and poisons the wrapper.
func (c *conn) drop() error {
	c.dropped = true
	c.Conn.Close()
	c.observe(FaultDrop)
	return errInjectedDrop{}
}

// observe reports an injected fault to the configured observer.
// Called with c.mu held so observer calls stay serialized even when
// read- and write-path faults fire concurrently.
func (c *conn) observe(kind string) {
	if c.cfg.Observer != nil {
		c.cfg.Observer(kind)
	}
}
