package faultnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// testFraming is a toy frame format: 4-byte header whose last two
// bytes are the big-endian payload length.
const testHeaderLen = 4

func testFrameSize(hdr []byte) int {
	return testHeaderLen + int(binary.BigEndian.Uint16(hdr[2:4]))
}

func frame(payload []byte) []byte {
	buf := make([]byte, testHeaderLen+len(payload))
	buf[0], buf[1] = 0xAB, 0xCD
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(payload)))
	copy(buf[testHeaderLen:], payload)
	return buf
}

// pipePair returns a faulted writer side and a reader that collects
// everything until the writer closes.
func pipePair(t *testing.T, cfg Config, seed int64) (net.Conn, <-chan []byte) {
	t.Helper()
	a, b := net.Pipe()
	w := Wrap(a, cfg, rand.New(rand.NewSource(seed)))
	out := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		out <- data
	}()
	return w, out
}

func TestZeroConfigIsTransparent(t *testing.T) {
	a, _ := net.Pipe()
	if w := Wrap(a, Config{}, nil); w != a {
		t.Error("zero config should return the inner conn unchanged")
	}
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	defer l.Close()
	if fl := Listen(l, Config{}); fl != l {
		t.Error("zero config listener should pass through")
	}
}

func TestPartialWritesPreserveBytes(t *testing.T) {
	w, out := pipePair(t, Config{PartialWrites: true}, 1)
	msg := bytes.Repeat([]byte("abcdefgh"), 100)
	n, err := w.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	w.Close()
	if got := <-out; !bytes.Equal(got, msg) {
		t.Errorf("partial writes mangled the stream: %d bytes vs %d", len(got), len(msg))
	}
}

func TestCorruptionFlipsAByte(t *testing.T) {
	w, out := pipePair(t, Config{CorruptProb: 1}, 2)
	msg := bytes.Repeat([]byte{0x42}, 64)
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got := <-out
	if len(got) != len(msg) {
		t.Fatalf("length changed: %d", len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupted %d bytes, want exactly 1", diff)
	}
	// The caller's buffer must stay untouched.
	for _, b := range msg {
		if b != 0x42 {
			t.Fatal("corruption wrote through to the caller's buffer")
		}
	}
}

func TestDropAfterBytes(t *testing.T) {
	w, out := pipePair(t, Config{DropAfterBytes: 10}, 3)
	if _, err := w.Write([]byte("0123456789abcdef")); err == nil {
		t.Fatal("write past the byte budget should fail")
	}
	got := <-out
	if len(got) != 10 {
		t.Errorf("delivered %d bytes, want 10 (mid-stream cut)", len(got))
	}
	// The wrapper stays poisoned.
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("writes after a drop should fail")
	}
}

func TestDropProbImmediate(t *testing.T) {
	w, out := pipePair(t, Config{DropProb: 1}, 4)
	if _, err := w.Write([]byte("doomed")); err == nil {
		t.Fatal("DropProb=1 write should fail")
	}
	if got := <-out; len(got) != 0 {
		t.Errorf("dropped write delivered %d bytes", len(got))
	}
}

func TestFrameDuplication(t *testing.T) {
	cfg := Config{
		DupFrameProb:   1,
		FrameHeaderLen: testHeaderLen,
		FrameSize:      testFrameSize,
	}
	w, out := pipePair(t, cfg, 5)
	f := frame([]byte("hello"))
	if _, err := w.Write(f); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got := <-out
	want := append(append([]byte(nil), f...), f...)
	if !bytes.Equal(got, want) {
		t.Errorf("duplication: got %d bytes, want frame twice (%d)", len(got), len(want))
	}
}

func TestFrameReordering(t *testing.T) {
	// Reorder the first frame only: hold frame A, emit B then A.
	cfg := Config{
		ReorderFrameProb: 1,
		FrameHeaderLen:   testHeaderLen,
		FrameSize:        testFrameSize,
	}
	w, out := pipePair(t, cfg, 6)
	fa, fb := frame([]byte("AAAA")), frame([]byte("BB"))
	if _, err := w.Write(fa); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(fb); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got := <-out
	want := append(append([]byte(nil), fb...), fa...)
	if !bytes.Equal(got, want) {
		t.Errorf("reordering: got %x, want %x", got, want)
	}
}

func TestFramesSplitAcrossWrites(t *testing.T) {
	// A frame delivered byte by byte must still come out whole.
	cfg := Config{
		DupFrameProb:   1,
		FrameHeaderLen: testHeaderLen,
		FrameSize:      testFrameSize,
	}
	w, out := pipePair(t, cfg, 7)
	f := frame([]byte("split"))
	for _, b := range f {
		if _, err := w.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	got := <-out
	want := append(append([]byte(nil), f...), f...)
	if !bytes.Equal(got, want) {
		t.Errorf("split frame: got %d bytes, want %d", len(got), len(want))
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []byte {
		w, out := pipePair(t, Config{CorruptProb: 0.5, PartialWrites: true}, 42)
		for i := 0; i < 20; i++ {
			if _, err := w.Write(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		return <-out
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("same seed produced different fault schedules")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := Listen(inner, Config{Seed: 9, DropAfterBytes: 5})
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		if _, err := c.Write([]byte("0123456789")); err == nil {
			t.Error("listener conn should enforce the byte budget")
		}
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, _ := io.ReadAll(c)
	if len(data) != 5 {
		t.Errorf("client saw %d bytes, want 5", len(data))
	}
	<-done
}

// TestDropWritesBlackholes: a one-way partition on the outbound
// direction must report full success to the writer while the peer
// receives nothing at all.
func TestDropWritesBlackholes(t *testing.T) {
	var kinds []string
	w, out := pipePair(t, Config{
		DropWrites: true,
		Observer:   func(kind string) { kinds = append(kinds, kind) },
	}, 7)
	msg := []byte("heartbeat that never arrives")
	for i := 0; i < 3; i++ {
		n, err := w.Write(msg)
		if err != nil || n != len(msg) {
			t.Fatalf("blackholed write = %d, %v; want full success", n, err)
		}
	}
	w.Close()
	if got := <-out; len(got) != 0 {
		t.Errorf("peer received %d bytes through a write blackhole", len(got))
	}
	if len(kinds) != 3 {
		t.Fatalf("observer saw %d faults, want 3", len(kinds))
	}
	for _, k := range kinds {
		if k != FaultDropWrite {
			t.Errorf("observer kind = %q, want %q", k, FaultDropWrite)
		}
	}
}

// TestDropReadsDiscards: a one-way partition on the inbound direction
// must consume and discard what the peer sends (so the peer's writes
// still complete — the link is up from its point of view) while the
// local reader sees nothing but its deadline expiring.
func TestDropReadsDiscards(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	var faults int
	r := Wrap(a, Config{
		DropReads: true,
		Observer:  func(kind string) { faults++ },
	}, nil)
	defer r.Close()

	wrote := make(chan error, 1)
	go func() {
		// net.Pipe is synchronous: this only completes if the faulted
		// side really consumes the bytes it is discarding.
		_, err := b.Write([]byte("ack the caller will never see"))
		wrote <- err
	}()

	r.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if n != 0 || err == nil {
		t.Fatalf("read through a read blackhole = %d, %v; want 0 and a deadline error", n, err)
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read error = %v, want a timeout", err)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("peer write failed: %v (discard loop must keep consuming)", err)
	}
	if faults == 0 {
		t.Error("observer saw no drop_read faults")
	}
}

// TestDropReadsEOF: when the peer closes, the discarding reader must
// surface the close instead of spinning.
func TestDropReadsEOF(t *testing.T) {
	a, b := net.Pipe()
	r := Wrap(a, Config{DropReads: true}, nil)
	defer r.Close()
	go func() {
		b.Write([]byte("last words"))
		b.Close()
	}()
	r.SetReadDeadline(time.Now().Add(time.Second))
	if n, err := r.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Fatalf("read after peer close = %d, %v; want 0, EOF", n, err)
	}
}
