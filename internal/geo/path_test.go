package geo

import (
	"math"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestPathAtInterpolates(t *testing.T) {
	p := NewPath([]Sample{
		{T: ms(0), P: V(0, 0, 0)},
		{T: ms(100), P: V(1, 0, 0)},
		{T: ms(300), P: V(1, 2, 0)},
	})
	tests := []struct {
		name string
		t    time.Duration
		want Vec3
	}{
		{"before-start-clamps", ms(-50), V(0, 0, 0)},
		{"at-start", ms(0), V(0, 0, 0)},
		{"mid-first-seg", ms(50), V(0.5, 0, 0)},
		{"at-knot", ms(100), V(1, 0, 0)},
		{"mid-second-seg", ms(200), V(1, 1, 0)},
		{"at-end", ms(300), V(1, 2, 0)},
		{"after-end-clamps", ms(999), V(1, 2, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := p.At(tt.t)
			if !ok {
				t.Fatal("At returned !ok on non-empty path")
			}
			if !vecAlmostEq(got, tt.want, 1e-12) {
				t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
			}
		})
	}
}

func TestPathEmpty(t *testing.T) {
	p := &Path{}
	if _, ok := p.At(0); ok {
		t.Error("At on empty path reported ok")
	}
	if p.Duration() != 0 {
		t.Error("Duration of empty path nonzero")
	}
	if p.ArcLength() != 0 {
		t.Error("ArcLength of empty path nonzero")
	}
	if p.Start() != (Vec3{}) || p.End() != (Vec3{}) {
		t.Error("Start/End of empty path nonzero")
	}
}

func TestPathSortsUnorderedInput(t *testing.T) {
	p := NewPath([]Sample{
		{T: ms(200), P: V(2, 0, 0)},
		{T: ms(0), P: V(0, 0, 0)},
		{T: ms(100), P: V(1, 0, 0)},
	})
	got, _ := p.At(ms(150))
	if !vecAlmostEq(got, V(1.5, 0, 0), 1e-12) {
		t.Errorf("At(150ms) = %v after sorting, want (1.5,0,0)", got)
	}
}

func TestPathArcLengthAndDuration(t *testing.T) {
	p := NewPath([]Sample{
		{T: ms(0), P: V(0, 0, 0)},
		{T: ms(100), P: V(3, 4, 0)},
		{T: ms(200), P: V(3, 4, 12)},
	})
	if got := p.ArcLength(); !almostEq(got, 17, 1e-12) {
		t.Errorf("ArcLength = %v, want 17", got)
	}
	if got := p.Duration(); got != ms(200) {
		t.Errorf("Duration = %v, want 200ms", got)
	}
}

func TestPathConcatAndShift(t *testing.T) {
	a := NewPath([]Sample{{T: 0, P: V(0, 0, 0)}, {T: ms(100), P: V(1, 0, 0)}})
	b := NewPath([]Sample{{T: 0, P: V(1, 0, 0)}, {T: ms(100), P: V(1, 1, 0)}})
	c := a.Concat(b, ms(50))
	if c.Len() != 4 {
		t.Fatalf("Concat len = %d, want 4", c.Len())
	}
	s := c.Samples()
	if s[2].T != ms(150) {
		t.Errorf("first sample of b starts at %v, want 150ms", s[2].T)
	}
	if s[3].T != ms(250) {
		t.Errorf("last sample at %v, want 250ms", s[3].T)
	}

	sh := a.Shift(V(0, 0, 5))
	if got := sh.Start(); !vecAlmostEq(got, V(0, 0, 5), 1e-12) {
		t.Errorf("Shift start = %v", got)
	}
	ts := a.TimeShift(ms(30))
	if got := ts.Samples()[0].T; got != ms(30) {
		t.Errorf("TimeShift start = %v", got)
	}
}

func TestPathResample(t *testing.T) {
	p := NewPath([]Sample{
		{T: ms(0), P: V(0, 0, 0)},
		{T: ms(100), P: V(10, 0, 0)},
	})
	r := p.Resample(ms(25))
	if r.Len() != 5 {
		t.Fatalf("Resample len = %d, want 5", r.Len())
	}
	got, _ := r.At(ms(25))
	if !vecAlmostEq(got, V(2.5, 0, 0), 1e-12) {
		t.Errorf("resampled At(25ms) = %v", got)
	}
	// Final instant is always included even when not on the grid.
	r2 := p.Resample(ms(33))
	last := r2.Samples()[r2.Len()-1]
	if last.T != ms(100) {
		t.Errorf("last resample at %v, want 100ms", last.T)
	}
	if (&Path{}).Resample(ms(10)).Len() != 0 {
		t.Error("Resample of empty path non-empty")
	}
	if p.Resample(0).Len() != 0 {
		t.Error("Resample with period 0 non-empty")
	}
}

func TestMinimumJerk(t *testing.T) {
	if got := MinimumJerk(0); got != 0 {
		t.Errorf("MinimumJerk(0) = %v", got)
	}
	if got := MinimumJerk(1); got != 1 {
		t.Errorf("MinimumJerk(1) = %v", got)
	}
	if got := MinimumJerk(0.5); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("MinimumJerk(0.5) = %v, want 0.5 (profile is symmetric)", got)
	}
	if got := MinimumJerk(-1); got != 0 {
		t.Errorf("MinimumJerk(-1) = %v", got)
	}
	if got := MinimumJerk(2); got != 1 {
		t.Errorf("MinimumJerk(2) = %v", got)
	}
	// Monotone non-decreasing on [0,1].
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.01 {
		v := MinimumJerk(u)
		if v < prev-1e-12 {
			t.Fatalf("MinimumJerk not monotone at u=%v", u)
		}
		prev = v
	}
}

func TestPolylinePoint(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(1, 0, 0), V(1, 1, 0)}
	tests := []struct {
		f    float64
		want Vec3
	}{
		{0, V(0, 0, 0)},
		{0.25, V(0.5, 0, 0)},
		{0.5, V(1, 0, 0)},
		{0.75, V(1, 0.5, 0)},
		{1, V(1, 1, 0)},
		{-0.5, V(0, 0, 0)},
		{1.5, V(1, 1, 0)},
	}
	for _, tt := range tests {
		if got := PolylinePoint(pts, tt.f); !vecAlmostEq(got, tt.want, 1e-12) {
			t.Errorf("PolylinePoint(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
	if got := PolylinePoint(nil, 0.5); got != (Vec3{}) {
		t.Errorf("empty polyline = %v", got)
	}
	if got := PolylinePoint([]Vec3{V(7, 7, 7)}, 0.3); got != V(7, 7, 7) {
		t.Errorf("single-point polyline = %v", got)
	}
	// Degenerate zero-length polyline.
	if got := PolylinePoint([]Vec3{V(1, 1, 1), V(1, 1, 1)}, 0.5); got != V(1, 1, 1) {
		t.Errorf("zero-length polyline = %v", got)
	}
}

func TestArcPoints(t *testing.T) {
	pts := ArcPoints(V2(0, 0), 1, 0, math.Pi, 9, 0.05)
	if len(pts) != 9 {
		t.Fatalf("len = %d", len(pts))
	}
	if !vecAlmostEq(pts[0], V(1, 0, 0.05), 1e-12) {
		t.Errorf("start = %v", pts[0])
	}
	if !vecAlmostEq(pts[8], V(-1, 0, 0.05), 1e-9) {
		t.Errorf("end = %v", pts[8])
	}
	// Every point is on the circle.
	for i, p := range pts {
		r := math.Hypot(p.X, p.Y)
		if !almostEq(r, 1, 1e-9) {
			t.Errorf("point %d radius %v", i, r)
		}
	}
	if got := ArcPoints(V2(0, 0), 1, 0, 1, 1, 0); len(got) != 2 {
		t.Errorf("n<2 should clamp to 2, got %d", len(got))
	}
}
