// Package geo provides the small 3-D vector geometry kernel used by the
// RF channel simulator, the hand-motion synthesizer, and the deployment
// planner. All lengths are in metres unless stated otherwise.
package geo

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-D space. The RFIPad convention is:
// x runs along the tag-array rows (lateral), y along the columns
// (lengthways), and z points away from the tag plane toward the user.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// AngleTo returns the angle in radians between v and w, in [0, π].
// It is 0 if either vector is zero.
func (v Vec3) AngleTo(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// RotateZ rotates v around the z axis by theta radians (right-handed).
func (v Vec3) RotateZ(theta float64) Vec3 {
	s, c := math.Sincos(theta)
	return Vec3{
		X: c*v.X - s*v.Y,
		Y: s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// RotateY rotates v around the y axis by theta radians (right-handed).
func (v Vec3) RotateY(theta float64) Vec3 {
	s, c := math.Sincos(theta)
	return Vec3{
		X: c*v.X + s*v.Z,
		Y: v.Y,
		Z: -s*v.X + c*v.Z,
	}
}

// RotateX rotates v around the x axis by theta radians (right-handed).
func (v Vec3) RotateX(theta float64) Vec3 {
	s, c := math.Sincos(theta)
	return Vec3{
		X: v.X,
		Y: c*v.Y - s*v.Z,
		Z: s*v.Y + c*v.Z,
	}
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4f, %.4f, %.4f)", v.X, v.Y, v.Z)
}

// Vec2 is a point in the tag-plane coordinate system (metres).
type Vec2 struct {
	X, Y float64
}

// V2 is shorthand for constructing a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product, i.e. the
// signed area spanned by v and w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return v.Add(w.Sub(v).Scale(t))
}

// Angle returns the polar angle of v in radians, in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// In3D lifts v to a Vec3 at height z.
func (v Vec2) In3D(z float64) Vec3 { return Vec3{X: v.X, Y: v.Y, Z: z} }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.4f, %.4f)", v.X, v.Y) }
