package geo

import (
	"math"
	"sort"
	"time"
)

// Sample is one timestamped point along a trajectory.
type Sample struct {
	T time.Duration // offset from the start of the trajectory
	P Vec3
}

// Path is a time-parameterized 3-D trajectory, stored as timestamped
// samples sorted by ascending T. The zero value is an empty path.
type Path struct {
	samples []Sample
}

// NewPath builds a Path from samples. The samples are copied and sorted
// by time, so callers may reuse the input slice.
func NewPath(samples []Sample) *Path {
	cp := make([]Sample, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	return &Path{samples: cp}
}

// Len returns the number of samples.
func (p *Path) Len() int { return len(p.samples) }

// Samples returns a copy of the underlying samples.
func (p *Path) Samples() []Sample {
	cp := make([]Sample, len(p.samples))
	copy(cp, p.samples)
	return cp
}

// Append adds a sample; t must be >= the last sample's time.
func (p *Path) Append(t time.Duration, pos Vec3) {
	p.samples = append(p.samples, Sample{T: t, P: pos})
}

// Duration returns the time span covered by the path.
func (p *Path) Duration() time.Duration {
	if len(p.samples) == 0 {
		return 0
	}
	return p.samples[len(p.samples)-1].T - p.samples[0].T
}

// At returns the position at time t, linearly interpolating between
// samples and clamping outside the covered span. ok is false only for an
// empty path.
func (p *Path) At(t time.Duration) (pos Vec3, ok bool) {
	n := len(p.samples)
	if n == 0 {
		return Vec3{}, false
	}
	if t <= p.samples[0].T {
		return p.samples[0].P, true
	}
	if t >= p.samples[n-1].T {
		return p.samples[n-1].P, true
	}
	// Binary search for the first sample with T >= t.
	i := sort.Search(n, func(i int) bool { return p.samples[i].T >= t })
	a, b := p.samples[i-1], p.samples[i]
	span := b.T - a.T
	if span == 0 {
		return b.P, true
	}
	u := float64(t-a.T) / float64(span)
	return a.P.Lerp(b.P, u), true
}

// Start returns the first sample position (zero value for empty paths).
func (p *Path) Start() Vec3 {
	if len(p.samples) == 0 {
		return Vec3{}
	}
	return p.samples[0].P
}

// End returns the last sample position (zero value for empty paths).
func (p *Path) End() Vec3 {
	if len(p.samples) == 0 {
		return Vec3{}
	}
	return p.samples[len(p.samples)-1].P
}

// ArcLength returns the summed segment lengths of the sampled polyline.
func (p *Path) ArcLength() float64 {
	var total float64
	for i := 1; i < len(p.samples); i++ {
		total += p.samples[i].P.Dist(p.samples[i-1].P)
	}
	return total
}

// Shift returns a copy of the path translated by offset.
func (p *Path) Shift(offset Vec3) *Path {
	out := make([]Sample, len(p.samples))
	for i, s := range p.samples {
		out[i] = Sample{T: s.T, P: s.P.Add(offset)}
	}
	return &Path{samples: out}
}

// TimeShift returns a copy of the path with all timestamps moved by dt.
func (p *Path) TimeShift(dt time.Duration) *Path {
	out := make([]Sample, len(p.samples))
	for i, s := range p.samples {
		out[i] = Sample{T: s.T + dt, P: s.P}
	}
	return &Path{samples: out}
}

// Concat appends q's samples after p, offsetting q's timestamps so q
// starts where p ends plus gap. Positions are left untouched.
func (p *Path) Concat(q *Path, gap time.Duration) *Path {
	out := make([]Sample, 0, len(p.samples)+q.Len())
	out = append(out, p.samples...)
	offset := p.Duration() + gap
	if len(p.samples) > 0 {
		offset = p.samples[len(p.samples)-1].T + gap
	}
	for _, s := range q.samples {
		out = append(out, Sample{T: s.T + offset, P: s.P})
	}
	return &Path{samples: out}
}

// Resample returns a copy of the path sampled at a fixed period. The
// result covers [first, last] inclusive of the final instant.
func (p *Path) Resample(period time.Duration) *Path {
	if len(p.samples) == 0 || period <= 0 {
		return &Path{}
	}
	first := p.samples[0].T
	last := p.samples[len(p.samples)-1].T
	var out []Sample
	for t := first; t <= last; t += period {
		pos, _ := p.At(t)
		out = append(out, Sample{T: t, P: pos})
	}
	if out[len(out)-1].T != last {
		out = append(out, Sample{T: last, P: p.samples[len(p.samples)-1].P})
	}
	return &Path{samples: out}
}

// MinimumJerk returns the classic minimum-jerk position fraction for
// normalized time u in [0,1]: 10u³ − 15u⁴ + 6u⁵. Human point-to-point
// hand movements closely follow this profile, which is why the motion
// synthesizer uses it. Values outside [0,1] are clamped.
func MinimumJerk(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	u3 := u * u * u
	return 10*u3 - 15*u3*u + 6*u3*u*u
}

// PolylinePoint evaluates the point a fraction f (by arc length) along
// the polyline defined by pts. f is clamped to [0,1]. An empty polyline
// yields the zero vector; a single point is returned as-is.
func PolylinePoint(pts []Vec3, f float64) Vec3 {
	switch len(pts) {
	case 0:
		return Vec3{}
	case 1:
		return pts[0]
	}
	if f <= 0 {
		return pts[0]
	}
	if f >= 1 {
		return pts[len(pts)-1]
	}
	var total float64
	segs := make([]float64, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		segs[i-1] = pts[i].Dist(pts[i-1])
		total += segs[i-1]
	}
	if total == 0 {
		return pts[0]
	}
	target := f * total
	for i, s := range segs {
		if target <= s || i == len(segs)-1 {
			if s == 0 {
				return pts[i]
			}
			return pts[i].Lerp(pts[i+1], target/s)
		}
		target -= s
	}
	return pts[len(pts)-1]
}

// ArcPoints samples n points along a circular arc in the z=plane height
// plane, centred at c with radius r, sweeping from angle a0 to a1
// (radians, may wrap either direction).
func ArcPoints(c Vec2, r float64, a0, a1 float64, n int, z float64) []Vec3 {
	if n < 2 {
		n = 2
	}
	pts := make([]Vec3, n)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n-1)
		a := a0 + (a1-a0)*u
		pts[i] = Vec3{
			X: c.X + r*math.Cos(a),
			Y: c.Y + r*math.Sin(a),
			Z: z,
		}
	}
	return pts
}
