package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec3
		want Vec3
	}{
		{"add", V(1, 2, 3).Add(V(4, 5, 6)), V(5, 7, 9)},
		{"sub", V(4, 5, 6).Sub(V(1, 2, 3)), V(3, 3, 3)},
		{"scale", V(1, -2, 3).Scale(2), V(2, -4, 6)},
		{"neg", V(1, -2, 3).Neg(), V(-1, 2, -3)},
		{"cross-xy", V(1, 0, 0).Cross(V(0, 1, 0)), V(0, 0, 1)},
		{"cross-yz", V(0, 1, 0).Cross(V(0, 0, 1)), V(1, 0, 0)},
		{"lerp-mid", V(0, 0, 0).Lerp(V(2, 4, 6), 0.5), V(1, 2, 3)},
		{"unit-zero", V(0, 0, 0).Unit(), V(0, 0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !vecAlmostEq(tt.got, tt.want, eps) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec3NormAndDist(t *testing.T) {
	if got := V(3, 4, 0).Norm(); !almostEq(got, 5, eps) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V(1, 1, 1).NormSq(); !almostEq(got, 3, eps) {
		t.Errorf("NormSq = %v, want 3", got)
	}
	if got := V(1, 2, 3).Dist(V(1, 2, 7)); !almostEq(got, 4, eps) {
		t.Errorf("Dist = %v, want 4", got)
	}
}

func TestVec3AngleTo(t *testing.T) {
	tests := []struct {
		name string
		a, b Vec3
		want float64
	}{
		{"orthogonal", V(1, 0, 0), V(0, 1, 0), math.Pi / 2},
		{"parallel", V(1, 0, 0), V(5, 0, 0), 0},
		{"opposite", V(1, 0, 0), V(-2, 0, 0), math.Pi},
		{"zero-vec", V(0, 0, 0), V(1, 0, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.AngleTo(tt.b); !almostEq(got, tt.want, 1e-9) {
				t.Errorf("AngleTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVec3Rotations(t *testing.T) {
	// Quarter turns map axes onto each other.
	if got := V(1, 0, 0).RotateZ(math.Pi / 2); !vecAlmostEq(got, V(0, 1, 0), 1e-12) {
		t.Errorf("RotateZ(π/2) of x̂ = %v, want ŷ", got)
	}
	if got := V(0, 0, 1).RotateY(math.Pi / 2); !vecAlmostEq(got, V(1, 0, 0), 1e-12) {
		t.Errorf("RotateY(π/2) of ẑ = %v, want x̂", got)
	}
	if got := V(0, 1, 0).RotateX(math.Pi / 2); !vecAlmostEq(got, V(0, 0, 1), 1e-12) {
		t.Errorf("RotateX(π/2) of ŷ = %v, want ẑ", got)
	}
}

func TestRotationPreservesNormProperty(t *testing.T) {
	f := func(x, y, z, theta float64) bool {
		// Constrain inputs to a sane range to avoid overflow noise.
		v := V(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		th := math.Mod(theta, 2*math.Pi)
		n := v.Norm()
		return almostEq(v.RotateZ(th).Norm(), n, 1e-6*(1+n)) &&
			almostEq(v.RotateY(th).Norm(), n, 1e-6*(1+n)) &&
			almostEq(v.RotateX(th).Norm(), n, 1e-6*(1+n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(math.Mod(ax, 1e3), math.Mod(ay, 1e3), math.Mod(az, 1e3))
		b := V(math.Mod(bx, 1e3), math.Mod(by, 1e3), math.Mod(bz, 1e3))
		c := a.Cross(b)
		scale := 1 + a.Norm()*b.Norm()
		return math.Abs(c.Dot(a)) <= 1e-6*scale && math.Abs(c.Dot(b)) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnitNormProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if v.Norm() == 0 {
			continue
		}
		if got := v.Unit().Norm(); !almostEq(got, 1, 1e-9) {
			t.Fatalf("Unit().Norm() = %v for %v", got, v)
		}
	}
}

func TestVec2Basics(t *testing.T) {
	a, b := V2(3, 4), V2(1, 1)
	if got := a.Norm(); !almostEq(got, 5, eps) {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Sub(b); got != V2(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b); got != V2(4, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := V2(1, 0).Cross(V2(0, 1)); !almostEq(got, 1, eps) {
		t.Errorf("Cross = %v", got)
	}
	if got := V2(0, 2).Angle(); !almostEq(got, math.Pi/2, eps) {
		t.Errorf("Angle = %v", got)
	}
	if got := V2(1, 2).In3D(3); got != V(1, 2, 3) {
		t.Errorf("In3D = %v", got)
	}
	if got := V2(0, 0).Unit(); got != V2(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
	if got := V2(0, 0).Lerp(V2(2, 2), 0.25); got != V2(0.5, 0.5) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if got := V(1, 2, 3).String(); got == "" {
		t.Error("Vec3.String is empty")
	}
	if got := V2(1, 2).String(); got == "" {
		t.Error("Vec2.String is empty")
	}
}
