package supervise

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rfipad/internal/core"
)

// Checkpoint is one stream's durable recovery state: everything a
// restarted daemon needs to skip the static calibration prelude and
// resume recognition at a frame boundary. The recognizer's in-flight
// stroke state is deliberately not captured — a stroke cut in half by
// a crash is unrecoverable anyway — so a restore may lose the letter
// being written at the instant of death, never the calibration.
type Checkpoint struct {
	// Stream names the stream this state belongs to.
	Stream string `json:"stream"`
	// SavedAt is the wall-clock save time, bounding staleness.
	SavedAt time.Time `json:"saved_at"`
	// StreamTime is the newest reading timestamp the stream had
	// ingested.
	StreamTime time.Duration `json:"stream_time"`
	// FrameCursor is the frame-aligned stream time recognition resumes
	// from after a restore (readings before it are dropped as late).
	FrameCursor time.Duration `json:"frame_cursor"`
	// TraceID carries the stream's trace identity (hex, from
	// internal/obs/trace) across the checkpoint boundary — both the
	// durable store and the cluster transfer frame — so a migrated or
	// restarted stream's trace is stitched rather than severed. Empty
	// when the stream was unsampled; older checkpoints simply lack the
	// field, which decodes to the same thing.
	TraceID string `json:"trace_id,omitempty"`
	// Epoch is the stream's ownership epoch at save time: the fencing
	// token the cluster coordinator mints on every (re)assignment.
	// Store.Save rejects writes whose epoch is older than the stored
	// one (ErrFenced), so a partitioned former owner can never
	// overwrite its successor's state. Zero for standalone daemons and
	// legacy (version 1) checkpoints, where every save carries the same
	// epoch and the fence never rejects.
	Epoch uint64 `json:"epoch,omitempty"`
	// Calibration is the per-tag static statistics (mean phase,
	// deviation bias, noise rate, dead set).
	Calibration core.CalibrationSnapshot `json:"calibration"`
}

// Checkpoint file format: a fixed header followed by a JSON payload.
//
//	offset  size  field
//	0       4     magic "RFCP"
//	4       2     version (big endian)
//	6       4     payload length (big endian)
//	10      4     CRC-32 (IEEE) of the payload
//	14      n     JSON-encoded Checkpoint
//
// The header is validated before the payload is touched, so truncated,
// corrupted, or version-skewed files fail with a typed error instead
// of feeding garbage calibration into the pipeline.
//
// Version 2 added the ownership epoch to the JSON payload. The decoder
// still accepts version 1 files — they carry no epoch and decode with
// Epoch 0, the "never fenced" value — so checkpoints written before an
// upgrade restore cleanly.
const (
	checkpointMagic         = "RFCP"
	checkpointVersion       = 2
	checkpointVersionLegacy = 1
	headerLen               = 14
	// maxPayload bounds decode allocations against corrupted length
	// fields (a calibration for a few thousand tags is well under it).
	maxPayload = 16 << 20
)

// Checkpoint decode/load errors.
var (
	// ErrCorrupt tags undecodable checkpoint bytes (bad magic, length,
	// checksum, or payload).
	ErrCorrupt = errors.New("supervise: corrupt checkpoint")
	// ErrVersion tags a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("supervise: checkpoint version mismatch")
	// ErrStale tags a checkpoint older than the caller's staleness
	// bound.
	ErrStale = errors.New("supervise: checkpoint stale")
	// ErrNoCheckpoint is returned when the store has no file for the
	// stream.
	ErrNoCheckpoint = errors.New("supervise: no checkpoint")
	// ErrFenced tags a checkpoint write rejected by the ownership
	// fence: its epoch is older than the stored one, meaning the writer
	// lost ownership of the stream between reading its state and saving
	// it. The stored checkpoint is left untouched.
	ErrFenced = errors.New("supervise: checkpoint write fenced by newer epoch")
)

// EncodeCheckpoint serializes cp into the versioned, checksummed file
// format.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("supervise: encode checkpoint: %w", err)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, checkpointMagic)
	binary.BigEndian.PutUint16(buf[4:], checkpointVersion)
	binary.BigEndian.PutUint32(buf[6:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[10:], crc32.ChecksumIEEE(payload))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// DecodeCheckpoint parses and validates checkpoint bytes. It returns
// ErrCorrupt or ErrVersion (wrapped) on any malformed input and never
// panics — the contract the fuzz target enforces.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var cp Checkpoint
	if len(data) < headerLen {
		return cp, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(data), headerLen)
	}
	if string(data[:4]) != checkpointMagic {
		return cp, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != checkpointVersion && v != checkpointVersionLegacy {
		return cp, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, checkpointVersion)
	}
	n := binary.BigEndian.Uint32(data[6:])
	if n > maxPayload || int(n) != len(data)-headerLen {
		return cp, fmt.Errorf("%w: payload length %d does not match %d trailing bytes",
			ErrCorrupt, n, len(data)-headerLen)
	}
	payload := data[headerLen:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[10:]) {
		return cp, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := json.Unmarshal(payload, &cp); err != nil {
		return cp, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return cp, nil
}

// WriteCheckpoint frames cp onto a stream transport: a 4-byte
// big-endian length prefix followed by the versioned, checksummed
// EncodeCheckpoint bytes. This is the wire format of a cluster
// checkpoint handoff — the same integrity envelope the on-disk store
// uses, so a transfer corrupted in flight fails the receiver's CRC
// instead of feeding garbage calibration into a recognizer. The frame
// goes out in one Write so byte-level fault injectors see a single
// unit.
func WriteCheckpoint(w io.Writer, cp Checkpoint) error {
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf, uint32(len(data)))
	copy(buf[4:], data)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("supervise: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint reads one length-prefixed checkpoint frame written by
// WriteCheckpoint and validates it. The length field is bounded before
// any allocation, and every malformed input returns a typed error
// (ErrCorrupt/ErrVersion, wrapped) — the receiving node must survive
// whatever a faulty link delivers.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Checkpoint{}, fmt.Errorf("supervise: read checkpoint: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < headerLen || n > maxPayload+headerLen {
		return Checkpoint{}, fmt.Errorf("%w: transfer frame length %d", ErrCorrupt, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Checkpoint{}, fmt.Errorf("supervise: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// Store persists checkpoints as one file per stream in a directory.
// Saves are atomic (write to a temp file, fsync, rename, fsync the
// directory), so a crash mid-save leaves the previous checkpoint
// intact, never a torn one, and a crash just after a save keeps the
// committed one. Save is also a fenced compare-and-swap on the
// ownership epoch: a write carrying an epoch older than the stored
// checkpoint's returns ErrFenced, which is what stops a partitioned
// former owner from clobbering its successor's state.
type Store struct {
	dir string
	// mu serializes the read-compare-rename of Save so concurrent
	// writers (e.g. a demoting owner and its adopter sharing a store)
	// cannot interleave between the fence check and the rename.
	mu sync.Mutex
	// Now overrides the staleness clock (tests; nil = time.Now).
	Now func() time.Time
	// OnFenced, when set, observes every write the epoch fence rejects
	// (the cluster wires it to a counter). Set it before the store sees
	// concurrent saves; it is called with Save's lock held.
	OnFenced func(stream string, writeEpoch, storedEpoch uint64)
}

// NewStore opens (creating if needed) a checkpoint directory and
// probes it for writability, so an unusable -checkpoint-dir fails at
// startup instead of at the first drain.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("supervise: empty checkpoint dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervise: checkpoint dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("supervise: checkpoint dir not writable: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the checkpoint file path for a stream (its name
// sanitized to a safe filename). When sanitization had to alter the
// name, a short hash of the original is appended so distinct streams
// that sanitize identically ("a/b" and "a_b") cannot share a file.
func (s *Store) Path(stream string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, stream)
	if safe != stream {
		if safe == "" {
			safe = "_"
		}
		safe = fmt.Sprintf("%s-%08x", safe, crc32.ChecksumIEEE([]byte(stream)))
	}
	return filepath.Join(s.dir, safe+".ckpt")
}

// Save writes cp atomically. The stream name comes from cp.Stream; a
// zero SavedAt is stamped with the store clock. The write is fenced:
// if the stored checkpoint carries a newer ownership epoch than cp,
// Save returns ErrFenced and leaves the stored one in place (equal
// epochs overwrite freely — that is the same owner re-saving). A
// stored file too corrupt to decode never blocks a save; recovery
// state beats a fence that cannot be evaluated.
func (s *Store) Save(cp Checkpoint) error {
	if cp.SavedAt.IsZero() {
		cp.SavedAt = s.now()
	}
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if stored, err := s.Load(cp.Stream); err == nil && cp.Epoch < stored.Epoch {
		if s.OnFenced != nil {
			s.OnFenced(cp.Stream, cp.Epoch, stored.Epoch)
		}
		return fmt.Errorf("%w: write epoch %d, stored epoch %d (stream %q)",
			ErrFenced, cp.Epoch, stored.Epoch, cp.Stream)
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	if err := os.Rename(name, s.Path(cp.Stream)); err != nil {
		os.Remove(name)
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	// A rename is durable only once its directory is synced; without
	// this a crash after Save returns could roll the stream back to the
	// previous checkpoint (or none at all for a first save).
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("supervise: save checkpoint: %w", err)
	}
	return nil
}

// syncDir fsyncs the store directory, committing the most recent
// rename against power loss.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load reads and validates a stream's checkpoint. Missing files return
// ErrNoCheckpoint; anything undecodable returns ErrCorrupt/ErrVersion.
func (s *Store) Load(stream string) (Checkpoint, error) {
	data, err := os.ReadFile(s.Path(stream))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, ErrNoCheckpoint
	}
	if err != nil {
		return Checkpoint{}, fmt.Errorf("supervise: load checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// LoadFresh loads a stream's checkpoint and enforces the staleness
// bound: a checkpoint saved more than maxAge ago returns ErrStale
// (maxAge <= 0 disables the bound). Callers fall back to live
// calibration on any error.
func (s *Store) LoadFresh(stream string, maxAge time.Duration) (Checkpoint, error) {
	cp, err := s.Load(stream)
	if err != nil {
		return cp, err
	}
	if maxAge > 0 {
		if age := s.now().Sub(cp.SavedAt); age > maxAge {
			return cp, fmt.Errorf("%w: saved %v ago, bound %v", ErrStale, age.Round(time.Second), maxAge)
		}
	}
	return cp, nil
}

func (s *Store) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}
