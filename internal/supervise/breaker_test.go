package supervise

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives breaker time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(t *testing.T, cfg BreakerConfig) (*Breaker, *fakeClock, *[]BreakerState) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []BreakerState
	cfg.Now = clk.now
	cfg.OnState = func(s BreakerState) { transitions = append(transitions, s) }
	return NewBreaker(cfg), clk, &transitions
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _, _ := newTestBreaker(t, BreakerConfig{Threshold: 3, Window: 30 * time.Second, Cooldown: 5 * time.Second})

	for i := 0; i < 2; i++ {
		if _, ok := b.Allow(); !ok {
			t.Fatalf("attempt %d: breaker rejected while closed", i)
		}
		b.Failure()
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, st)
		}
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", st)
	}
	wait, ok := b.Allow()
	if ok {
		t.Fatal("open breaker admitted an attempt")
	}
	// Jitter keeps the wait in [cooldown, 1.5 × cooldown].
	if wait < 5*time.Second || wait > 7500*time.Millisecond {
		t.Fatalf("cool-down wait %v outside jitter range [5s, 7.5s]", wait)
	}
}

func TestBreakerWindowRestartsStreak(t *testing.T) {
	b, clk, _ := newTestBreaker(t, BreakerConfig{Threshold: 3, Window: 10 * time.Second, Cooldown: time.Second})

	b.Failure()
	b.Failure()
	// The streak's first failure falls out of the window; the next
	// failure starts a fresh streak instead of tripping.
	clk.advance(11 * time.Second)
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("sporadic failures tripped the breaker: state %v", st)
	}
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("dense streak did not trip: state %v", st)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _, _ := newTestBreaker(t, BreakerConfig{Threshold: 2, Window: time.Minute, Cooldown: time.Second})
	b.Failure()
	b.Success()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("streak survived a success: state %v", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk, transitions := newTestBreaker(t, BreakerConfig{Threshold: 1, Window: time.Minute, Cooldown: time.Second})
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}

	// Before the cool-down elapses: rejected with the remaining wait.
	if wait, ok := b.Allow(); ok || wait <= 0 {
		t.Fatalf("Allow during cool-down = (%v, %v), want rejection with positive wait", wait, ok)
	}

	// After the (jittered, ≤ 1.5 × cooldown) cool-down: one probe admitted,
	// concurrent callers held back.
	clk.advance(1500 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("probe not admitted after cool-down")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted while first is in flight")
	}

	// Probe failure re-opens immediately; probe success closes.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("failed probe left state %v, want open", st)
	}
	clk.advance(1500 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("successful probe left state %v, want closed", st)
	}

	want := []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", *transitions, want)
	}
	for i, st := range want {
		if (*transitions)[i] != st {
			t.Fatalf("transition %d = %v, want %v (all: %v)", i, (*transitions)[i], st, *transitions)
		}
	}
}

func TestBreakerJitterDeterministic(t *testing.T) {
	waits := func(seed int64) []time.Duration {
		clk := &fakeClock{t: time.Unix(0, 0)}
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, JitterSeed: seed, Now: clk.now})
		var out []time.Duration
		for i := 0; i < 5; i++ {
			b.Failure()
			w, _ := b.Allow()
			out = append(out, w)
			clk.advance(2 * time.Second)
			b.Allow() // admit the probe
			b.Success()
		}
		return out
	}
	a, b2 := waits(42), waits(42)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b2[i])
		}
	}
}

func TestBreakerConcurrency(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: time.Minute, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, ok := b.Allow(); ok {
					if j%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	b.State() // must not race or deadlock
}

// TestBreakerHalfOpenSingleProbeRace hammers the half-open gate from
// many goroutines at once: after the cool-down, exactly one caller may
// carry the probe — every concurrent Allow must be held back until the
// probe resolves. Run under -race, this also pins the probing flag's
// synchronization.
func TestBreakerHalfOpenSingleProbeRace(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Threshold: 1, Window: time.Minute, Cooldown: time.Second, Now: clk.now,
	})
	for round := 0; round < 10; round++ {
		b.Failure()
		if st := b.State(); st != BreakerOpen {
			t.Fatalf("round %d: state %v, want open", round, st)
		}
		clk.advance(1500 * time.Millisecond) // past max jittered cool-down

		var wg sync.WaitGroup
		admitted := make(chan struct{}, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, ok := b.Allow(); ok {
					admitted <- struct{}{}
				}
			}()
		}
		wg.Wait()
		close(admitted)
		probes := 0
		for range admitted {
			probes++
		}
		if probes != 1 {
			t.Fatalf("round %d: %d probes admitted concurrently, want exactly 1", round, probes)
		}
		// Resolve the probe so the next round starts from a known
		// state; alternate outcomes to cover both transitions.
		if round%2 == 0 {
			b.Success()
			if st := b.State(); st != BreakerClosed {
				t.Fatalf("round %d: successful probe left %v", round, st)
			}
		} else {
			b.Failure()
			if st := b.State(); st != BreakerOpen {
				t.Fatalf("round %d: failed probe left %v", round, st)
			}
			clk.advance(1500 * time.Millisecond)
			if _, ok := b.Allow(); !ok {
				t.Fatalf("round %d: recovery probe not admitted", round)
			}
			b.Success()
		}
	}
}
