package supervise

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"rfipad/internal/core"
)

// FuzzDecodeCheckpoint enforces the decoder's contract: arbitrary
// bytes — truncations, corruptions, version skews, hostile length
// fields — produce a typed error or a valid checkpoint, never a panic
// and never an unbounded allocation. Checkpoints are read at daemon
// startup from a directory an operator controls; a crash here would
// turn a corrupt file into a boot loop.
func FuzzDecodeCheckpoint(f *testing.F) {
	// Seed with a valid checkpoint and systematic mutations of it, so
	// the fuzzer starts at the interesting boundaries instead of random
	// noise.
	good, err := EncodeCheckpoint(Checkpoint{
		Stream:      "live",
		SavedAt:     time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC),
		StreamTime:  9 * time.Second,
		FrameCursor: 8 * time.Second,
		Calibration: core.CalibrationSnapshot{
			MeanPhase: []float64{0.1, 0.2},
			Bias:      []float64{0.01, 0.02},
			TVRate:    []float64{0.3, 0.4},
			Dead:      []bool{false, false},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("RFCP"))
	f.Add(good[:headerLen])
	f.Add(good[:len(good)-1])
	f.Add(append(append([]byte{}, good...), 0x00))
	skew := append([]byte{}, good...)
	binary.BigEndian.PutUint16(skew[4:], checkpointVersion+1)
	f.Add(skew)
	// Legacy version-1 frame (pre-epoch): must decode, not error.
	legacy := append([]byte{}, good...)
	binary.BigEndian.PutUint16(legacy[4:], checkpointVersionLegacy)
	f.Add(legacy)
	// Current frame carrying an ownership epoch.
	epoched, err := EncodeCheckpoint(Checkpoint{Stream: "live", Epoch: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(epoched)
	hugeLen := append([]byte{}, good...)
	binary.BigEndian.PutUint32(hugeLen[6:], 0xFFFFFFFF)
	f.Add(hugeLen)
	flipped := append([]byte{}, good...)
	flipped[headerLen] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Success must mean the bytes really were a checkpoint:
		// re-encoding the decoded value must reproduce the payload
		// semantics (lengths agree, the file round-trips).
		if _, err := EncodeCheckpoint(cp); err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
	})
}
