// Package supervise is the self-healing layer of the live stack: a
// per-source circuit breaker that stops a flapping reader from burning
// reconnect bandwidth, and a durable checkpoint store that lets a
// restarted daemon skip the calibration prelude. Both are dependency-
// free (stdlib + obs types via callbacks) so every layer — llrp
// sessions, the engine, the cmds — can use them without import cycles.
package supervise

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states. The numeric values are stable — they are exported as
// a gauge (0 closed, 1 open, 2 half-open).
const (
	// BreakerClosed passes every attempt through.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects attempts until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures within Window trip
	// the breaker open (default 5).
	Threshold int
	// Window bounds the failure streak: a streak whose first failure
	// is older than this has its counter restarted, so sporadic
	// failures spread over hours never trip (default 30 s).
	Window time.Duration
	// Cooldown is the base open duration before a half-open probe is
	// admitted; the actual wait is jittered into [cooldown, 1.5 ×
	// cooldown] so a fleet of breakers does not probe in lockstep
	// (default 5 s).
	Cooldown time.Duration
	// JitterSeed seeds the deterministic cool-down jitter; equal seeds
	// reproduce the exact probe schedule.
	JitterSeed int64
	// Now overrides the clock (tests; nil = time.Now).
	Now func() time.Time
	// OnState observes every transition — the hook breaker-state
	// gauges hang off. Called with the breaker's lock held; keep it to
	// a gauge set.
	OnState func(BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-source circuit breaker: closed while the source
// behaves, open after Threshold consecutive failures within Window,
// half-open (one probe at a time) once the jittered cool-down elapses.
// It replaces a bare retry loop's "hammer forever" behavior: when the
// breaker is open the caller sleeps out the cool-down in one wait
// instead of spinning through doomed attempts. All methods are safe
// for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	rng *rand.Rand

	mu        sync.Mutex
	state     BreakerState
	fails     int
	firstFail time.Time
	probeAt   time.Time
	probing   bool
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(cfg.JitterSeed)),
	}
	if b.cfg.OnState != nil {
		b.cfg.OnState(BreakerClosed)
	}
	return b
}

// Allow asks whether an attempt may proceed. When it may not, wait is
// how long until the next Allow could admit a probe; the caller should
// sleep that long (context-aware) and ask again. Half-open admits one
// probe at a time: concurrent callers are held back until the probe's
// Success or Failure settles the state.
func (b *Breaker) Allow() (wait time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case BreakerClosed:
		return 0, true
	case BreakerOpen:
		if now.Before(b.probeAt) {
			return b.probeAt.Sub(now), false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return 0, true
	default: // half-open
		if b.probing {
			return b.cfg.Cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// Success reports a successful attempt: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure reports a failed attempt. A half-open probe failure re-opens
// immediately; in the closed state the windowed streak counter advances
// and trips the breaker at Threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.open(now)
	case BreakerClosed:
		if b.fails == 0 || now.Sub(b.firstFail) > b.cfg.Window {
			b.fails = 0
			b.firstFail = now
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(now)
		}
	}
	// Already open: the failure belongs to an attempt admitted before
	// the trip; the cool-down is already running.
}

// open trips the breaker with a jittered cool-down.
func (b *Breaker) open(now time.Time) {
	d := float64(b.cfg.Cooldown)
	d += d / 2 * b.rng.Float64()
	b.probeAt = now.Add(time.Duration(d))
	b.fails = 0
	b.setState(BreakerOpen)
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setState transitions and notifies; callers hold mu.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	if b.cfg.OnState != nil {
		b.cfg.OnState(s)
	}
}
