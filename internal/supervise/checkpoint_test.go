package supervise

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rfipad/internal/core"
)

func testCheckpoint() Checkpoint {
	return Checkpoint{
		Stream:      "stream-07",
		SavedAt:     time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC),
		StreamTime:  17 * time.Second,
		FrameCursor: 16 * time.Second,
		Calibration: core.CalibrationSnapshot{
			MeanPhase: []float64{0.1, 0.2, 0.3, 0.4},
			Bias:      []float64{0.01, 0.02, 0.03, 0.04},
			TVRate:    []float64{0.5, 0.6, 0.7, 0.8},
			Dead:      []bool{false, true, false, false},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := testCheckpoint()
	data, err := EncodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != want.Stream || !got.SavedAt.Equal(want.SavedAt) ||
		got.StreamTime != want.StreamTime || got.FrameCursor != want.FrameCursor {
		t.Fatalf("round trip mangled header fields: %+v", got)
	}
	for i := range want.Calibration.MeanPhase {
		if got.Calibration.MeanPhase[i] != want.Calibration.MeanPhase[i] ||
			got.Calibration.Bias[i] != want.Calibration.Bias[i] ||
			got.Calibration.TVRate[i] != want.Calibration.TVRate[i] ||
			got.Calibration.Dead[i] != want.Calibration.Dead[i] {
			t.Fatalf("round trip mangled calibration at tag %d", i)
		}
	}
}

func TestDecodeCheckpointRejectsMalformed(t *testing.T) {
	good, err := EncodeCheckpoint(testCheckpoint())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"truncated header", good[:7], ErrCorrupt},
		{"truncated payload", good[:len(good)-5], ErrCorrupt},
		{"bad magic", append([]byte("NOPE"), good[4:]...), ErrCorrupt},
		{"flipped payload byte", flipByte(good, headerLen+3), ErrCorrupt},
		{"flipped checksum byte", flipByte(good, 11), ErrCorrupt},
		{"trailing garbage", append(append([]byte{}, good...), 0xFF), ErrCorrupt},
		{"version skew", bumpVersion(good), ErrVersion},
	}
	for _, tc := range cases {
		if _, err := DecodeCheckpoint(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0xFF
	return out
}

func bumpVersion(data []byte) []byte {
	out := append([]byte{}, data...)
	out[5]++ // version low byte
	return out
}

func TestStoreSaveLoad(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint()
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(cp.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamTime != cp.StreamTime || !got.SavedAt.Equal(cp.SavedAt) {
		t.Fatalf("loaded %+v, want %+v", got, cp)
	}

	if _, err := st.Load("never-saved"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing stream err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreStampsSavedAt(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	st.Now = func() time.Time { return now }
	cp := testCheckpoint()
	cp.SavedAt = time.Time{}
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(cp.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SavedAt.Equal(now) {
		t.Fatalf("zero SavedAt stamped as %v, want %v", got.SavedAt, now)
	}
}

func TestStoreLoadFreshStaleness(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	saved := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	cp := testCheckpoint()
	cp.SavedAt = saved
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}

	st.Now = func() time.Time { return saved.Add(10 * time.Minute) }
	if _, err := st.LoadFresh(cp.Stream, 15*time.Minute); err != nil {
		t.Fatalf("fresh checkpoint rejected: %v", err)
	}
	st.Now = func() time.Time { return saved.Add(20 * time.Minute) }
	if _, err := st.LoadFresh(cp.Stream, 15*time.Minute); !errors.Is(err, ErrStale) {
		t.Fatalf("stale checkpoint err = %v, want ErrStale", err)
	}
	// maxAge <= 0 disables the bound.
	if _, err := st.LoadFresh(cp.Stream, 0); err != nil {
		t.Fatalf("unbounded load rejected: %v", err)
	}
}

func TestStoreSaveAtomicOverCorruption(t *testing.T) {
	// A torn write must never replace a good checkpoint: saves go to a
	// temp file first, so scribbling over the final path then saving
	// again yields a clean file, and a failed decode identifies the
	// scribble as corrupt rather than panicking.
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint()
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(cp.Stream), []byte("RFCP garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(cp.Stream); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scribbled file err = %v, want ErrCorrupt", err)
	}
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(cp.Stream); err != nil {
		t.Fatalf("re-save did not recover: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") || strings.HasPrefix(e.Name(), ".probe-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestStorePathSanitizesStreamNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, stream := range []string{"../escape", "a/b", "", "tcp://host:5084"} {
		p := st.Path(stream)
		if filepath.Dir(p) != st.Dir() {
			t.Errorf("Path(%q) = %q escapes the store dir", stream, p)
		}
	}
}

func TestNewStoreRejectsUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestNewStoreRejectsEmptyDir(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestWriteReadCheckpointTransferFrame round-trips the wire framing a
// cluster handoff uses, and demands the receiver reject what a faulty
// link can produce: truncated frames, implausible length prefixes, and
// payloads corrupted in flight.
func TestWriteReadCheckpointTransferFrame(t *testing.T) {
	want := testCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, want); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	got, err := ReadCheckpoint(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != want.Stream || got.FrameCursor != want.FrameCursor ||
		got.StreamTime != want.StreamTime {
		t.Fatalf("round trip mangled checkpoint: %+v", got)
	}

	// Truncated mid-payload: the cut a dropped connection leaves.
	if _, err := ReadCheckpoint(bytes.NewReader(wire[:len(wire)-5])); err == nil {
		t.Error("truncated frame accepted")
	}
	// Truncated mid-header.
	if _, err := ReadCheckpoint(bytes.NewReader(wire[:2])); err == nil {
		t.Error("truncated length prefix accepted")
	}
	// Implausible length prefix: must fail the bound before allocating.
	huge := append([]byte{0xff, 0xff, 0xff, 0xff}, wire[4:]...)
	if _, err := ReadCheckpoint(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length err = %v, want ErrCorrupt", err)
	}
	tiny := append([]byte{0, 0, 0, 1}, wire[4:]...)
	if _, err := ReadCheckpoint(bytes.NewReader(tiny)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("undersized length err = %v, want ErrCorrupt", err)
	}
	// One flipped payload byte: the CRC must catch it.
	flipped := append([]byte(nil), wire...)
	flipped[len(flipped)-3] ^= 0x40
	if _, err := ReadCheckpoint(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted payload err = %v, want ErrCorrupt", err)
	}
}

// TestStoreLoadFreshStalenessBoundary pins the exact boundary: a
// checkpoint aged precisely maxAge is still fresh — the bound is
// strictly greater-than, so "-checkpoint-max-age 15m" keeps a
// checkpoint saved exactly 15 minutes ago.
func TestStoreLoadFreshStalenessBoundary(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	saved := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	cp := testCheckpoint()
	cp.SavedAt = saved
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	const maxAge = 15 * time.Minute

	st.Now = func() time.Time { return saved.Add(maxAge) }
	if _, err := st.LoadFresh(cp.Stream, maxAge); err != nil {
		t.Errorf("age == maxAge rejected: %v (boundary must be inclusive)", err)
	}
	st.Now = func() time.Time { return saved.Add(maxAge + time.Nanosecond) }
	if _, err := st.LoadFresh(cp.Stream, maxAge); !errors.Is(err, ErrStale) {
		t.Errorf("age just past maxAge err = %v, want ErrStale", err)
	}
}
