package supervise

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"
	"time"
)

// TestStorePathCollisionDisambiguated pins the fix for the sanitization
// collision: "a/b" and "a_b" both sanitize to "a_b", so without a
// disambiguating hash two distinct streams would share one checkpoint
// file and silently overwrite each other's calibration.
func TestStorePathCollisionDisambiguated(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	collisions := [][2]string{
		{"a/b", "a_b"},
		{"tcp://host:5084", "tcp___host_5084"},
		{"", "_"},
	}
	for _, pair := range collisions {
		if st.Path(pair[0]) == st.Path(pair[1]) {
			t.Errorf("Path(%q) == Path(%q) == %q: distinct streams share a file",
				pair[0], pair[1], st.Path(pair[0]))
		}
	}
	// Paths stay deterministic: the same stream always maps to the same
	// file, or saves could never be found again.
	if st.Path("a/b") != st.Path("a/b") {
		t.Error("Path is not deterministic")
	}

	// End to end: both streams save and load back their own state.
	for i, stream := range []string{"a/b", "a_b"} {
		cp := testCheckpoint()
		cp.Stream = stream
		cp.StreamTime = testCheckpoint().StreamTime + time.Duration(i)
		if err := st.Save(cp); err != nil {
			t.Fatalf("Save(%q): %v", stream, err)
		}
	}
	for i, stream := range []string{"a/b", "a_b"} {
		got, err := st.Load(stream)
		if err != nil {
			t.Fatalf("Load(%q): %v", stream, err)
		}
		if got.Stream != stream || got.StreamTime != testCheckpoint().StreamTime+time.Duration(i) {
			t.Errorf("Load(%q) returned stream %q time %v: files collided",
				stream, got.Stream, got.StreamTime)
		}
	}
}

// TestStoreSaveFencedCAS exercises the epoch fence: older epochs are
// rejected with ErrFenced (and observed via OnFenced), equal epochs
// overwrite (same owner re-saving), newer epochs advance the stored
// state, and an undecodable stored file never blocks recovery.
func TestStoreSaveFencedCAS(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type fenced struct {
		stream      string
		write, have uint64
	}
	var seen []fenced
	st.OnFenced = func(stream string, writeEpoch, storedEpoch uint64) {
		seen = append(seen, fenced{stream, writeEpoch, storedEpoch})
	}

	cp := testCheckpoint()
	cp.Epoch = 5
	cp.StreamTime = 50 * time.Second
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}

	stale := testCheckpoint()
	stale.Epoch = 4
	stale.StreamTime = 40 * time.Second
	if err := st.Save(stale); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch save err = %v, want ErrFenced", err)
	}
	if len(seen) != 1 || seen[0] != (fenced{cp.Stream, 4, 5}) {
		t.Fatalf("OnFenced observed %+v, want one {%s 4 5}", seen, cp.Stream)
	}
	if got, err := st.Load(cp.Stream); err != nil || got.StreamTime != 50*time.Second {
		t.Fatalf("fenced write disturbed stored checkpoint: %+v, %v", got, err)
	}

	// Equal epoch: the same owner re-saving fresher state must succeed.
	resave := testCheckpoint()
	resave.Epoch = 5
	resave.StreamTime = 55 * time.Second
	if err := st.Save(resave); err != nil {
		t.Fatalf("equal-epoch save rejected: %v", err)
	}
	// Newer epoch: the successor takes over.
	adopt := testCheckpoint()
	adopt.Epoch = 6
	if err := st.Save(adopt); err != nil {
		t.Fatalf("newer-epoch save rejected: %v", err)
	}
	if got, _ := st.Load(cp.Stream); got.Epoch != 6 {
		t.Fatalf("stored epoch = %d, want 6", got.Epoch)
	}

	// A stored file too corrupt to decode must not fence anything out:
	// recovery state beats a fence that cannot be evaluated.
	if err := os.WriteFile(st.Path(cp.Stream), []byte("RFCP garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	zero := testCheckpoint()
	zero.Epoch = 0
	if err := st.Save(zero); err != nil {
		t.Fatalf("save over corrupt file rejected: %v", err)
	}
	if len(seen) != 1 {
		t.Fatalf("OnFenced fired %d times, want exactly 1", len(seen))
	}
}

// TestStoreEpochRoundTrip confirms the epoch rides the on-disk format.
func TestStoreEpochRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint()
	cp.Epoch = 42
	if err := st.Save(cp); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(cp.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 {
		t.Fatalf("loaded epoch %d, want 42", got.Epoch)
	}
}

// TestDecodeCheckpointLegacyVersion: version 1 files written before the
// epoch existed must keep decoding (with Epoch 0, the never-fenced
// value) so an upgraded daemon restores pre-upgrade state.
func TestDecodeCheckpointLegacyVersion(t *testing.T) {
	want := testCheckpoint() // Epoch 0 → omitted from the payload
	data, err := EncodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint16(data[4:], checkpointVersionLegacy)
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("legacy version rejected: %v", err)
	}
	if got.Stream != want.Stream || got.FrameCursor != want.FrameCursor || got.Epoch != 0 {
		t.Fatalf("legacy decode mangled checkpoint: %+v", got)
	}
}

// TestStoreSaveSyncsDirectory exercises the directory-fsync path that
// makes the rename durable: a normal save must traverse it without
// error, and syncDir itself must surface a failure when the directory
// is gone (the error a full disk or yanked volume would produce).
func TestStoreSaveSyncsDirectory(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testCheckpoint()); err != nil {
		t.Fatalf("save (with dir fsync) failed: %v", err)
	}
	if err := st.syncDir(); err != nil {
		t.Fatalf("syncDir on live dir: %v", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.syncDir(); err == nil {
		t.Fatal("syncDir on removed dir reported success")
	}
}
