// Package engine is the concurrent multi-stream recognition service:
// it shards independent tag streams by ID across a bounded worker
// pool, running one calibrate-then-recognize state machine
// (live.Stream) per stream. Each worker owns one mailbox and every
// stream hashed to it, so per-stream state needs no locking; streams
// on the same shard interleave batch by batch, so a stalled or faulted
// source never blocks its shard siblings — it simply stops producing
// items. Backpressure is explicit: Push never blocks and drops the
// batch (counting it) when the shard's mailbox is full, while
// RunStream — the source-driven path — blocks, propagating the
// backpressure to the session it drains.
package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/obs/trace"
	"rfipad/internal/supervise"
)

// StreamID names one independent tag stream (one plate / one reader
// session). The ID is hashed to pick the owning shard, so a stream's
// readings are always processed in order by a single worker.
type StreamID string

// ErrClosed is returned by source-driven feeds once Close has begun.
var ErrClosed = errors.New("engine: closed")

// ErrStreamExists is returned by AdoptStream when the engine already
// holds state for the stream — adopting over live state would silently
// discard recognition in progress.
var ErrStreamExists = errors.New("engine: stream already exists")

// Config tunes an Engine.
type Config struct {
	// Workers is the shard count — the bound on recognition
	// parallelism (default GOMAXPROCS).
	Workers int
	// QueueDepth is each shard's mailbox capacity in batches
	// (default 256).
	QueueDepth int
	// Stream is the per-stream recognition config (grid geometry,
	// calibration prelude, flush horizon). Its OnEvent/OnStatus fields
	// are ignored; event fan-out goes through Engine.Config.OnEvent.
	Stream live.Config
	// OnEvent receives every recognition event, tagged with its
	// stream. It is called from shard goroutines — implementations
	// must be safe for concurrent use across streams (events of one
	// stream are always delivered sequentially).
	OnEvent func(StreamID, core.Event)
	// Obs selects the metrics registry the engine_* series land in
	// (nil = obs.Default()).
	Obs *obs.Registry
	// Logger receives structured per-stream lifecycle records
	// (optional; nil disables).
	Logger *slog.Logger

	// Trace, when set, records each sampled stream's lifecycle spans
	// (mailbox wait, sanitize, ingest, calibrate/restore, result,
	// quarantine, adopt/skipto) into its per-stream ring. Nil disables
	// tracing; an unsampled stream costs one nil check per batch.
	Trace *trace.Tracer
	// TraceNode attributes this engine's spans to a cluster member
	// (set by cluster.AddNode; empty for a standalone engine).
	TraceNode string
	// Flight, when set, receives anomaly dumps: a panic quarantine or
	// a corrupt checkpoint dumps the stream's recent spans and
	// readings summary to the flight log.
	Flight *trace.Flight

	// Checkpoints, when set, makes streams durable: each stream's
	// calibration and frame cursor are saved on calibration
	// completion, every CheckpointEvery, and at drain; a stream whose
	// checkpoint is fresher than CheckpointMaxAge restores at creation
	// and skips the calibration prelude.
	Checkpoints *supervise.Store
	// CheckpointEvery is the periodic per-shard save interval
	// (default 30 s).
	CheckpointEvery time.Duration
	// CheckpointMaxAge bounds restore staleness (default 15 min).
	CheckpointMaxAge time.Duration
	// Epoch, when set, resolves a stream's current ownership epoch at
	// checkpoint-write time (the cluster wires it to the node's lease
	// table). The epoch rides every checkpoint the engine saves or
	// evicts, making Store.Save a fenced compare-and-swap against
	// concurrent owners. The second return reports whether the caller
	// holds an epoch for the stream; when false — or Epoch is nil, the
	// standalone case — the engine falls back to the epoch the stream's
	// state was restored or adopted with.
	Epoch func(StreamID) (uint64, bool)
	// DrainTimeout bounds how long Close spends handling mailbox
	// backlog before abandoning the remainder (default 5 s). Flushes
	// and checkpoint writes still run for every stream.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.CheckpointMaxAge <= 0 {
		c.CheckpointMaxAge = 15 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// StreamResult summarizes one stream after Close.
type StreamResult struct {
	// ID is the stream's name.
	ID StreamID
	// Letters is the recognized text.
	Letters string
	// Strokes counts recognized strokes.
	Strokes int
	// DeadTags is how many tags calibration flagged dead.
	DeadTags int
	// Calibrated reports whether the static prelude completed.
	Calibrated bool
	// Readings counts readings the stream's recognizer ingested.
	Readings int
	// Dropped counts readings discarded after the stream turned
	// terminal (e.g. calibration failure). Batches dropped at the
	// mailbox never reach the stream and are only visible in the
	// engine_overflow_total / engine_dropped_readings_total counters.
	Dropped int
	// Err is the stream's terminal error, if any.
	Err error
}

// telemetry bundles the engine_* instruments.
type telemetry struct {
	reg         *obs.Registry
	streams     *obs.Gauge
	calibrated  *obs.Gauge
	quarantined *obs.Gauge
	accepting   *obs.Gauge
	batches     *obs.Counter
	readings    *obs.Counter
	rejected    *core.Sanitizer
	overflow    *obs.Counter
	droppedR    *obs.Counter
	abandoned   *obs.Counter
	strokes     *obs.Counter
	letters     *obs.Counter
	errors      *obs.Counter
	panics      *obs.Counter
	ckptSaved   *obs.Counter
	ckptErrors  *obs.Counter
	ckptFenced  *obs.Counter
	ckptLoaded  *obs.Counter
	evicted     *obs.Counter
	adopted     *obs.Counter
	restore     live.RestoreCounters
}

func newTelemetry(reg *obs.Registry) *telemetry {
	return &telemetry{
		reg: reg,
		streams: reg.Gauge("engine_streams",
			"Streams the engine has seen (cumulative per run)."),
		calibrated: reg.Gauge("engine_streams_calibrated",
			"Streams whose calibration is complete or restored."),
		quarantined: reg.Gauge("engine_streams_quarantined",
			"Streams quarantined after a panic in their handler."),
		accepting: reg.Gauge("engine_accepting",
			"Whether the engine is accepting pushes (0 once Close begins)."),
		batches: reg.Counter("engine_batches_total",
			"Reading batches accepted into shard mailboxes."),
		readings: reg.Counter("engine_readings_total",
			"Readings ingested across all streams."),
		rejected: core.NewSanitizer(reg),
		overflow: reg.Counter("engine_overflow_total",
			"Batches dropped because the owning shard's mailbox was full."),
		droppedR: reg.Counter("engine_dropped_readings_total",
			"Readings dropped by mailbox overflow or terminal streams."),
		abandoned: reg.Counter("engine_drain_abandoned_total",
			"Batches abandoned because the drain deadline expired at Close."),
		strokes: reg.Counter("engine_events_total",
			"Recognition events emitted.", obs.L("kind", "stroke")),
		letters: reg.Counter("engine_events_total",
			"Recognition events emitted.", obs.L("kind", "letter")),
		errors: reg.Counter("engine_stream_errors_total",
			"Streams that ended with a terminal error."),
		panics: reg.Counter("engine_stream_panics_total",
			"Panics recovered in stream handlers (each quarantines its stream)."),
		ckptSaved: reg.Counter("engine_checkpoints_saved_total",
			"Stream calibration checkpoints written."),
		ckptErrors: reg.Counter("engine_checkpoint_errors_total",
			"Checkpoint writes that failed."),
		ckptFenced: reg.Counter("engine_checkpoints_fenced_total",
			"Checkpoint writes rejected by the ownership fence (a newer epoch is stored)."),
		ckptLoaded: reg.Counter("engine_checkpoints_restored_total",
			"Streams whose calibration was restored from a checkpoint."),
		evicted: reg.Counter("engine_streams_evicted_total",
			"Streams evicted for migration, with their checkpoint handed to the caller."),
		adopted: reg.Counter("engine_streams_adopted_total",
			"Streams adopted from a migrated checkpoint, skipping calibration."),
		restore: live.NewRestoreCounters(reg),
	}
}

// itemOp selects what a shard does with a mailbox item.
type itemOp uint8

const (
	// opBatch ingests a batch of readings.
	opBatch itemOp = iota
	// opFlush forces the stream's pending stroke and letter out.
	opFlush
	// opEvict removes a calibrated stream and replies with its
	// checkpoint (the cluster migration hook).
	opEvict
	// opAdopt seeds a stream from a migrated checkpoint.
	opAdopt
)

// ctrlReply answers an evict or adopt control item.
type ctrlReply struct {
	cp  supervise.Checkpoint
	ok  bool
	err error
}

// item is one unit of shard work: a batch of readings for a stream, a
// flush marker, or an evict/adopt control operation. A reading batch is
// carried either as a record slice (the legacy Push path) or as a
// columnar ReadingBatch (the hot path) — never both.
type item struct {
	op    itemOp
	id    StreamID
	batch []core.Reading     // ownership transfers to the engine on enqueue
	cols  *core.ReadingBatch // columnar payload; returned to the pool by the engine
	enq   time.Time
	cp    supervise.Checkpoint // adopt payload
	reply chan ctrlReply       // evict/adopt reply (buffered, capacity 1)
}

// size returns the item's reading count across both payload forms.
func (it *item) size() int {
	if it.cols != nil {
		return it.cols.Len()
	}
	return len(it.batch)
}

// streamState is a shard-owned stream: its recognizer state machine
// plus the accumulating result. Only the owning shard goroutine
// touches it.
type streamState struct {
	id      StreamID
	st      *live.Stream
	res     StreamResult
	latency *obs.Histogram
	// tr is the stream's trace handle; nil when the stream is
	// unsampled, making every span site a single-branch no-op.
	tr *trace.StreamTrace
	// epoch is the ownership epoch the stream's state arrived with
	// (restore or adoption); the fallback stamp when Config.Epoch has
	// no live grant for the stream.
	epoch   uint64
	flushed bool
	// quarantined marks a stream whose handler panicked: its state
	// was dropped and every later item is discarded (but accounted).
	quarantined bool
}

type shard struct {
	eng     *Engine
	mail    chan item
	stop    chan struct{}
	streams map[StreamID]*streamState
}

// Engine is the sharded multi-stream recognition service. Build with
// New, feed with Push or RunStream, and Close to flush every stream
// and collect results.
type Engine struct {
	cfg    Config
	tel    *telemetry
	shards []*shard
	wg     sync.WaitGroup
	closed atomic.Bool

	closeOnce sync.Once
	final     []StreamResult

	mu      sync.Mutex
	results []StreamResult
}

// New starts an engine: cfg.Workers shard goroutines, each owning a
// mailbox of cfg.QueueDepth batches.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	reg := obs.Or(cfg.Obs)
	obs.EnableRuntimeMetrics(reg)
	e := &Engine{cfg: cfg, tel: newTelemetry(reg)}
	e.tel.accepting.Set(1)
	for i := 0; i < cfg.Workers; i++ {
		s := &shard{
			eng:     e,
			mail:    make(chan item, cfg.QueueDepth),
			stop:    make(chan struct{}),
			streams: map[StreamID]*streamState{},
		}
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			s.run()
		}()
	}
	return e
}

// shardIndex hashes a stream ID (FNV-1a) onto [0, n) without
// allocating.
func shardIndex(id StreamID, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

func (e *Engine) shardFor(id StreamID) *shard {
	return e.shards[shardIndex(id, len(e.shards))]
}

// Push enqueues one batch for a stream without blocking. Ownership of
// the slice transfers to the engine — the caller must not reuse its
// backing array. When the owning shard's mailbox is full (or the
// engine is closed) the batch is dropped, the overflow counters
// advance, and Push reports false: the caller sheds load instead of
// stalling its read loop.
func (e *Engine) Push(id StreamID, batch []core.Reading) bool {
	if len(batch) == 0 {
		return true
	}
	if e.closed.Load() {
		e.drop(batch)
		return false
	}
	select {
	case e.shardFor(id).mail <- item{id: id, batch: batch, enq: time.Now()}:
		return true
	default:
		e.drop(batch)
		return false
	}
}

func (e *Engine) drop(batch []core.Reading) {
	e.tel.overflow.Inc()
	e.tel.droppedR.Add(uint64(len(batch)))
}

// dropCols sheds a columnar batch: counted like drop, and the batch
// goes back to the pool (ownership reached the engine either way).
func (e *Engine) dropCols(b *core.ReadingBatch) {
	e.tel.overflow.Inc()
	e.tel.droppedR.Add(uint64(b.Len()))
	core.PutBatch(b)
}

// PushBatch enqueues one columnar batch without blocking — the
// batch-native counterpart of Push. Ownership of the batch transfers to
// the engine unconditionally: whether the batch is accepted, shed on a
// full mailbox, or rejected because the engine closed, the engine
// returns it to the batch pool, so the caller takes a fresh GetBatch
// for its next push and never touches this one again.
func (e *Engine) PushBatch(id StreamID, b *core.ReadingBatch) bool {
	if b == nil || b.Len() == 0 {
		core.PutBatch(b)
		return true
	}
	if e.closed.Load() {
		e.dropCols(b)
		return false
	}
	select {
	case e.shardFor(id).mail <- item{id: id, cols: b, enq: time.Now()}:
		return true
	default:
		e.dropCols(b)
		return false
	}
}

// PushBatchWait is the blocking variant of PushBatch: a full mailbox
// waits instead of shedding. Ownership transfers to the engine in every
// case, exactly as in PushBatch. Reports false once the engine is
// closing (the batch is dropped, counted, and pooled).
func (e *Engine) PushBatchWait(id StreamID, b *core.ReadingBatch) bool {
	if b == nil || b.Len() == 0 {
		core.PutBatch(b)
		return true
	}
	if !e.pushWait(item{id: id, cols: b, enq: time.Now()}) {
		e.dropCols(b)
		return false
	}
	return true
}

// pushWait is the blocking variant used by source-driven streams:
// backpressure propagates to the source instead of dropping. Returns
// false once the engine is closing.
func (e *Engine) pushWait(it item) bool {
	if e.closed.Load() {
		return false
	}
	s := e.shardFor(it.id)
	select {
	case s.mail <- it:
		return true
	case <-s.stop:
		return false
	}
}

// PushWait is the blocking variant of Push: when the owning shard's
// mailbox is full it waits instead of shedding, propagating
// backpressure to the caller. Ownership of the slice transfers to the
// engine. Reports false once the engine is closing (the batch is
// dropped and counted).
func (e *Engine) PushWait(id StreamID, batch []core.Reading) bool {
	if len(batch) == 0 {
		return true
	}
	if !e.pushWait(item{id: id, batch: batch, enq: time.Now()}) {
		e.drop(batch)
		return false
	}
	return true
}

// FlushStream forces a stream's pending stroke and letter out, as if
// its source had gone quiet past the flush horizon. Blocks until the
// marker is enqueued (flushes are never load-shed). A stream that
// ingests more readings after a flush can be flushed again.
func (e *Engine) FlushStream(id StreamID) {
	e.pushWait(item{op: opFlush, id: id, enq: time.Now()})
}

// EvictStream removes a calibrated stream from its shard and returns
// the checkpoint the new owner resumes from — the donor side of a
// cluster migration. The stream's partial result is recorded for
// Close. ok is false when the stream is unknown, not yet calibrated,
// quarantined, or the engine is closing; in every ok=false case any
// existing stream state is left untouched, because an uncalibrated
// stream carries nothing worth migrating and dropping its prelude
// would silently lose calibration progress.
func (e *Engine) EvictStream(id StreamID) (supervise.Checkpoint, bool) {
	reply := make(chan ctrlReply, 1)
	if !e.pushWait(item{op: opEvict, id: id, enq: time.Now(), reply: reply}) {
		return supervise.Checkpoint{}, false
	}
	r := <-reply
	return r.cp, r.ok
}

// AdoptStream seeds a stream from a migrated checkpoint — the receiver
// side of a cluster migration. The adopted stream is calibrated from
// the checkpoint and resumes at its frame cursor via SkipTo, so the
// first pushed batch is recognized with no recalibration. Returns
// ErrStreamExists when the engine already holds state for the stream,
// ErrClosed once Close has begun, or the restore error when the
// checkpoint payload is unusable (the caller falls back to live
// calibration).
func (e *Engine) AdoptStream(id StreamID, cp supervise.Checkpoint) error {
	reply := make(chan ctrlReply, 1)
	if !e.pushWait(item{op: opAdopt, id: id, enq: time.Now(), cp: cp, reply: reply}) {
		return ErrClosed
	}
	return (<-reply).err
}

// RunStream drains a report source (an llrp.Session, a replay, or any
// live.ReportSource) into the engine until the stream ends, then
// flushes it. Blocks the calling goroutine; run one goroutine per
// source. Batches are enqueued with backpressure — a slow shard slows
// this source rather than dropping its readings.
//
// The drain runs under a recover boundary: a panicking source turns
// into a terminal error for this stream (flushed and counted), never
// a crashed worker pool.
func (e *Engine) RunStream(id StreamID, src live.ReportSource) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.tel.panics.Inc()
			if e.cfg.Logger != nil {
				e.cfg.Logger.Error("stream source panicked",
					"stream", string(id), "panic", fmt.Sprint(r), "stack", string(debug.Stack()))
			}
			e.FlushStream(id)
			err = fmt.Errorf("engine: stream %s: source panicked: %v", id, r)
		}
	}()
	for {
		batch, err := src.NextReports()
		if errors.Is(err, llrp.ErrStreamEnded) {
			e.FlushStream(id)
			return nil
		}
		if err != nil {
			e.FlushStream(id)
			return fmt.Errorf("engine: stream %s: %w", id, err)
		}
		if len(batch) == 0 {
			continue
		}
		// Decode straight into a pooled columnar batch: no intermediate
		// []core.Reading, no per-stream allocation once the pool warms.
		// The shard returns the batch to the pool after ingesting it.
		cols := core.GetBatch()
		live.AppendReports(cols, batch)
		if !e.pushWait(item{id: id, cols: cols, enq: time.Now()}) {
			core.PutBatch(cols)
			return ErrClosed
		}
	}
}

// Close stops intake, drains every mailbox (bounded by DrainTimeout),
// flushes every stream, writes final checkpoints, and returns the
// per-stream results sorted by ID. Idempotent: the drain runs once,
// and every later (or concurrent) call blocks until it completes and
// returns the same result slice.
func (e *Engine) Close() []StreamResult {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.tel.accepting.Set(0)
		for _, s := range e.shards {
			close(s.stop)
		}
		e.wg.Wait()
		if e.cfg.Logger != nil {
			// Final telemetry: the run's aggregate counters, so a drained
			// daemon leaves its evidence in the log even if nobody scraped
			// /metrics in time.
			e.cfg.Logger.Info("engine drained",
				"streams", e.tel.streams.Value(),
				"batches", e.tel.batches.Value(),
				"readings", e.tel.readings.Value(),
				"dropped_readings", e.tel.droppedR.Value(),
				"abandoned_batches", e.tel.abandoned.Value(),
				"stream_errors", e.tel.errors.Value(),
				"panics", e.tel.panics.Value(),
				"quarantined", e.tel.quarantined.Value(),
				"checkpoints_saved", e.tel.ckptSaved.Value())
		}
		e.mu.Lock()
		slices.SortFunc(e.results, func(a, b StreamResult) int {
			return strings.Compare(string(a.ID), string(b.ID))
		})
		e.final = e.results
		e.mu.Unlock()
	})
	return e.final
}

func (s *shard) run() {
	var tick <-chan time.Time
	if s.eng.cfg.Checkpoints != nil {
		t := time.NewTicker(s.eng.cfg.CheckpointEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case it := <-s.mail:
			s.handle(it)
		case <-tick:
			s.checkpointAll()
		case <-s.stop:
			// Drain whatever was enqueued before the close — bounded
			// by the drain deadline so a flooded mailbox cannot hold
			// shutdown hostage — then flush every stream, write final
			// checkpoints, and hand the results up.
			deadline := time.Now().Add(s.eng.cfg.DrainTimeout)
			for {
				select {
				case it := <-s.mail:
					if time.Now().After(deadline) {
						if it.reply != nil {
							// An abandoned control item must still answer,
							// or its caller hangs forever.
							it.reply <- ctrlReply{err: ErrClosed}
						}
						s.eng.tel.abandoned.Inc()
						s.eng.tel.droppedR.Add(uint64(it.size()))
						core.PutBatch(it.cols)
						continue
					}
					s.handle(it)
				default:
					s.finish()
					return
				}
			}
		}
	}
}

// stream fetches or creates the shard-local state for a stream. A new
// stream with a fresh-enough checkpoint restores from it, skipping the
// calibration prelude.
func (s *shard) stream(id StreamID) *streamState {
	st, ok := s.streams[id]
	if ok {
		return st
	}
	st = &streamState{
		id: id,
		latency: s.eng.tel.reg.Histogram("engine_event_latency_seconds",
			"Enqueue-to-emission latency of recognition events.",
			nil, obs.L("stream", string(id))),
	}
	st.res.ID = id
	st.tr = s.eng.cfg.Trace.Stream(string(id))
	if store := s.eng.cfg.Checkpoints; store != nil {
		if cp, err := store.LoadFresh(string(id), s.eng.cfg.CheckpointMaxAge); err == nil {
			restoreStart := time.Now()
			if restored, rerr := live.RestoreStream(s.eng.cfg.Stream, cp); rerr == nil {
				st.st = restored
				st.epoch = cp.Epoch
				st.res.Calibrated = true
				st.res.DeadTags = restored.DeadTags()
				s.eng.tel.ckptLoaded.Inc()
				s.eng.tel.restore.Restored.Inc()
				s.eng.tel.calibrated.Add(1)
				// A durable checkpoint carries the trace identity of the
				// previous incarnation: continue it rather than starting a
				// fresh ring, so a restart shows up as restore inside one
				// stitched trace.
				if tid, terr := trace.ParseID(cp.TraceID); terr == nil && tid != 0 {
					st.tr = s.eng.cfg.Trace.Adopt(string(id), tid)
				}
				st.tr.Add(trace.Span{Name: trace.SpanRestore, Node: s.eng.cfg.TraceNode,
					Start: restoreStart, Duration: time.Since(restoreStart), Count: st.res.DeadTags})
				if s.eng.cfg.Logger != nil {
					s.eng.cfg.Logger.Info("stream calibration restored",
						"stream", string(id), "saved_at", cp.SavedAt,
						"stream_time", cp.StreamTime, "dead_tags", st.res.DeadTags)
				}
			} else {
				s.eng.tel.restore.Corrupt.Inc()
				s.flight(trace.TriggerCorruptCheckpoint, string(id), rerr.Error(), st.tr, nil)
				if s.eng.cfg.Logger != nil {
					s.eng.cfg.Logger.Warn("stream checkpoint unusable; calibrating live",
						"stream", string(id), "err", rerr)
				}
			}
		} else {
			s.eng.tel.restore.ObserveLoad(err)
			if errors.Is(err, supervise.ErrCorrupt) || errors.Is(err, supervise.ErrVersion) {
				s.flight(trace.TriggerCorruptCheckpoint, string(id), err.Error(), st.tr, nil)
			}
			if !errors.Is(err, supervise.ErrNoCheckpoint) && s.eng.cfg.Logger != nil {
				s.eng.cfg.Logger.Warn("stream checkpoint load failed; calibrating live",
					"stream", string(id), "err", err)
			}
		}
	}
	if st.st == nil {
		st.st = live.NewStream(s.eng.cfg.Stream)
	}
	s.streams[id] = st
	s.eng.tel.streams.Add(1)
	return st
}

// handle processes one item under the shard's recover boundary: a
// panic anywhere in the stream's state machine (or the caller's
// OnEvent) quarantines that stream while its shard siblings keep
// flowing. Evict/adopt control items have their own reply paths and
// never touch the quarantine machinery.
func (s *shard) handle(it item) {
	switch it.op {
	case opEvict:
		s.evict(it)
		return
	case opAdopt:
		s.adopt(it)
		return
	}
	st := s.stream(it.id)
	// The columnar payload is consumed within this call (the recognizer
	// never retains it), so it returns to the pool on every exit path —
	// including a quarantining panic.
	defer core.PutBatch(it.cols)
	defer func() {
		if r := recover(); r != nil {
			s.quarantine(st, r)
		}
	}()
	if it.op == opFlush {
		if !st.flushed && st.res.Err == nil {
			st.flushed = true
			s.deliver(st, st.st.Flush(), it.enq)
		}
		return
	}
	size := it.size()
	if st.res.Err != nil {
		// Terminal stream (calibration failed or quarantined):
		// discard but account.
		st.res.Dropped += size
		s.eng.tel.droppedR.Add(uint64(size))
		return
	}
	// New data re-arms the flush marker: a stream that keeps writing
	// after an explicit flush can be flushed again.
	st.flushed = false
	s.eng.tel.batches.Inc()
	s.eng.tel.readings.Add(uint64(size))
	var ingestStart time.Time
	if st.tr != nil {
		ingestStart = time.Now()
		st.tr.Add(trace.Span{Name: trace.SpanMailbox, Node: s.eng.cfg.TraceNode,
			Start: it.enq, Duration: ingestStart.Sub(it.enq), Count: size})
	}
	if it.cols != nil {
		s.handleCols(st, it, ingestStart)
		return
	}
	admitted, rejected := 0, 0
	for _, rd := range it.batch {
		if !s.eng.tel.rejected.Admit(rd, st.st.LastTime()) {
			rejected++
			continue
		}
		admitted++
		evs, err := st.st.Ingest(rd)
		if err != nil {
			st.res.Err = err
			s.eng.tel.errors.Inc()
			if st.tr != nil {
				s.ingestSpans(st, ingestStart, admitted, rejected, err)
			}
			if s.eng.cfg.Logger != nil {
				s.eng.cfg.Logger.Error("stream failed", "stream", string(st.id), "err", err)
			}
			return
		}
		st.res.Readings++
		s.noteCalibrated(st)
		s.deliver(st, evs, it.enq)
	}
	if st.tr != nil {
		s.ingestSpans(st, ingestStart, admitted, rejected, nil)
	}
}

// handleCols ingests one columnar batch: sanitize in place, one
// IngestBatch call into the stream, one delivery of the resulting
// events — element-for-element the same decisions as the per-reading
// loop, without its per-reading call overhead.
func (s *shard) handleCols(st *streamState, it item, ingestStart time.Time) {
	before := it.cols.Len()
	s.eng.tel.rejected.AdmitColumns(it.cols, st.st.LastTime())
	admitted := it.cols.Len()
	rejected := before - admitted
	evs, err := st.st.IngestBatch(it.cols)
	if err != nil {
		st.res.Err = err
		s.eng.tel.errors.Inc()
		if st.tr != nil {
			s.ingestSpans(st, ingestStart, admitted, rejected, err)
		}
		if s.eng.cfg.Logger != nil {
			s.eng.cfg.Logger.Error("stream failed", "stream", string(st.id), "err", err)
		}
		return
	}
	st.res.Readings += admitted
	s.noteCalibrated(st)
	s.deliver(st, evs, it.enq)
	if st.tr != nil {
		s.ingestSpans(st, ingestStart, admitted, rejected, nil)
	}
}

// noteCalibrated records a stream's calibration completion exactly once
// — the gauge, trace span, checkpoint, and log line fire when
// Calibrated() first flips.
func (s *shard) noteCalibrated(st *streamState) {
	if st.res.Calibrated || !st.st.Calibrated() {
		return
	}
	st.res.Calibrated = true
	st.res.DeadTags = st.st.DeadTags()
	s.eng.tel.calibrated.Add(1)
	st.tr.Add(trace.Span{Name: trace.SpanCalibrate, Node: s.eng.cfg.TraceNode,
		Start: time.Now(), Count: st.res.DeadTags})
	s.checkpoint(st)
	if s.eng.cfg.Logger != nil {
		s.eng.cfg.Logger.Info("stream calibrated",
			"stream", string(st.id), "dead_tags", st.res.DeadTags)
	}
}

// ingestSpans closes out one traced batch: the sanitize span (emitted
// only when readings were rejected) and the ingest span covering the
// recognizer pass, carrying the terminal error when the batch killed
// the stream. Callers check st.tr != nil.
func (s *shard) ingestSpans(st *streamState, start time.Time, admitted, rejected int, err error) {
	if rejected > 0 {
		st.tr.Add(trace.Span{Name: trace.SpanSanitize, Node: s.eng.cfg.TraceNode,
			Start: start, Count: rejected})
	}
	sp := trace.Span{Name: trace.SpanIngest, Node: s.eng.cfg.TraceNode,
		Start: start, Duration: time.Since(start), Count: admitted}
	if err != nil {
		sp.Err = err.Error()
	}
	st.tr.Add(sp)
}

// quarantine isolates a stream whose handler panicked: its state is
// dropped (nothing more will be recognized), later items are
// discarded, and the panic is logged with its stack. Shard siblings
// are untouched — the next mailbox item processes normally.
func (s *shard) quarantine(st *streamState, cause any) {
	detail := fmt.Sprint(cause)
	// Digest the stream's progress before its state is dropped — the
	// flight dump wants to say what the word had accomplished.
	sum := flightSummary(st)
	st.quarantined = true
	st.st = nil // drop the stream's state; every guard checks Err first
	st.flushed = true
	if st.res.Err == nil {
		st.res.Err = fmt.Errorf("engine: stream %s quarantined: panic: %v", st.id, cause)
		s.eng.tel.errors.Inc()
	}
	s.eng.tel.panics.Inc()
	s.eng.tel.quarantined.Add(1)
	st.tr.Add(trace.Span{Name: trace.SpanQuarantine, Node: s.eng.cfg.TraceNode,
		Start: time.Now(), Err: detail})
	s.flight(trace.TriggerPanic, string(st.id), detail, st.tr, sum)
	if s.eng.cfg.Logger != nil {
		s.eng.cfg.Logger.Error("stream handler panicked; stream quarantined",
			"stream", string(st.id), "panic", detail,
			"stack", string(debug.Stack()))
	}
}

// flightSummary digests a stream's accumulated result for a flight
// dump: counts only, never raw readings.
func flightSummary(st *streamState) *trace.Summary {
	sum := &trace.Summary{
		Readings:   st.res.Readings,
		Dropped:    st.res.Dropped,
		Strokes:    st.res.Strokes,
		Letters:    st.res.Letters,
		Calibrated: st.res.Calibrated,
		DeadTags:   st.res.DeadTags,
	}
	if st.st != nil {
		sum.LastTime = st.st.LastTime()
	}
	return sum
}

// flight records one anomaly dump — the trigger, the stream's summary,
// and the tail of its trace ring. No-op without a recorder.
func (s *shard) flight(trigger, stream, detail string, tr *trace.StreamTrace, sum *trace.Summary) {
	fl := s.eng.cfg.Flight
	if fl == nil {
		return
	}
	fl.Record(trace.Dump{
		Trigger: trigger,
		Node:    s.eng.cfg.TraceNode,
		Stream:  stream,
		Trace:   tr.ID(),
		Detail:  detail,
		Summary: sum,
		Spans:   tr.Spans(),
	})
}

// evict removes a calibrated stream from the shard, replying with its
// checkpoint. Unknown, uncalibrated, and quarantined streams reply
// ok=false and are left in place.
func (s *shard) evict(it item) {
	st, ok := s.streams[it.id]
	if !ok || st.quarantined || st.st == nil || !st.st.Calibrated() {
		it.reply <- ctrlReply{}
		return
	}
	cp, cok := st.st.Checkpoint(string(it.id))
	if !cok {
		it.reply <- ctrlReply{}
		return
	}
	if st.tr != nil {
		cp.TraceID = st.tr.ID().String()
	}
	s.stampEpoch(st, &cp)
	delete(s.streams, it.id)
	s.eng.tel.calibrated.Add(-1)
	s.eng.tel.evicted.Inc()
	s.eng.mu.Lock()
	s.eng.results = append(s.eng.results, st.res)
	s.eng.mu.Unlock()
	if s.eng.cfg.Logger != nil {
		s.eng.cfg.Logger.Info("stream evicted for migration",
			"stream", string(it.id), "frame_cursor", cp.FrameCursor,
			"letters", st.res.Letters)
	}
	it.reply <- ctrlReply{cp: cp, ok: true}
}

// adopt seeds a stream from a migrated checkpoint. The checkpoint
// payload arrived over a network transfer, so the restore runs under a
// recover boundary that turns any panic into an error reply instead of
// a dead shard.
func (s *shard) adopt(it item) {
	replied := false
	reply := func(r ctrlReply) {
		if !replied {
			replied = true
			it.reply <- r
		}
	}
	defer func() {
		if r := recover(); r != nil {
			reply(ctrlReply{err: fmt.Errorf("engine: adopt %s: panic: %v", it.id, r)})
		}
	}()
	if _, ok := s.streams[it.id]; ok {
		reply(ctrlReply{err: fmt.Errorf("%w: %s", ErrStreamExists, it.id)})
		return
	}
	// Continue the donor's trace: the checkpoint frame carries its
	// TraceID, so the adopted stream's spans land in the same stitched
	// trace (a zero/absent ID keeps the stream unsampled here too).
	adoptStart := time.Now()
	tid, _ := trace.ParseID(it.cp.TraceID)
	tr := s.eng.cfg.Trace.Adopt(string(it.id), tid)
	restored, err := live.RestoreStream(s.eng.cfg.Stream, it.cp)
	if err != nil {
		tr.Add(trace.Span{Name: trace.SpanAdopt, Node: s.eng.cfg.TraceNode,
			Start: adoptStart, Duration: time.Since(adoptStart), Err: err.Error()})
		s.flight(trace.TriggerCorruptCheckpoint, string(it.id), err.Error(), tr, nil)
		reply(ctrlReply{err: err})
		return
	}
	st := &streamState{
		id:    it.id,
		st:    restored,
		tr:    tr,
		epoch: it.cp.Epoch,
		latency: s.eng.tel.reg.Histogram("engine_event_latency_seconds",
			"Enqueue-to-emission latency of recognition events.",
			nil, obs.L("stream", string(it.id))),
	}
	st.res.ID = it.id
	st.res.Calibrated = true
	st.res.DeadTags = restored.DeadTags()
	tr.Add(trace.Span{Name: trace.SpanAdopt, Node: s.eng.cfg.TraceNode,
		Start: adoptStart, Duration: time.Since(adoptStart)})
	tr.Add(trace.Span{Name: trace.SpanSkipTo, Node: s.eng.cfg.TraceNode,
		Start: adoptStart, Duration: time.Since(adoptStart), Count: st.res.DeadTags})
	s.streams[it.id] = st
	s.eng.tel.streams.Add(1)
	s.eng.tel.calibrated.Add(1)
	s.eng.tel.adopted.Inc()
	if s.eng.cfg.Logger != nil {
		s.eng.cfg.Logger.Info("stream adopted from migrated checkpoint",
			"stream", string(it.id), "stream_time", it.cp.StreamTime,
			"frame_cursor", it.cp.FrameCursor, "dead_tags", st.res.DeadTags)
	}
	reply(ctrlReply{ok: true})
}

// stampEpoch resolves the ownership epoch a checkpoint is written
// under: the epoch the caller currently holds for the stream (live
// lease) when Config.Epoch reports one, else the epoch the stream's
// state arrived with. A stale owner therefore stamps its old epoch —
// exactly what lets the store's fence reject it.
func (s *shard) stampEpoch(st *streamState, cp *supervise.Checkpoint) {
	cp.Epoch = st.epoch
	if fn := s.eng.cfg.Epoch; fn != nil {
		if e, ok := fn(st.id); ok {
			cp.Epoch = e
		}
	}
}

// checkpoint persists one stream's calibration state, when enabled.
func (s *shard) checkpoint(st *streamState) {
	store := s.eng.cfg.Checkpoints
	if store == nil || st.quarantined || st.st == nil {
		return
	}
	cp, ok := st.st.Checkpoint(string(st.id))
	if !ok {
		return
	}
	if st.tr != nil {
		cp.TraceID = st.tr.ID().String()
	}
	s.stampEpoch(st, &cp)
	if err := store.Save(cp); err != nil {
		if errors.Is(err, supervise.ErrFenced) {
			// Not an I/O failure: the stream has a newer owner somewhere
			// and this engine's state is now provably stale. Keep the
			// stream running (results may still be gated upstream) but
			// record the anomaly distinctly.
			s.eng.tel.ckptFenced.Inc()
			s.flight(trace.TriggerFencedWrite, string(st.id), err.Error(), st.tr, nil)
			if s.eng.cfg.Logger != nil {
				s.eng.cfg.Logger.Warn("checkpoint write fenced; a newer owner holds the stream",
					"stream", string(st.id), "epoch", cp.Epoch, "err", err)
			}
			return
		}
		s.eng.tel.ckptErrors.Inc()
		if s.eng.cfg.Logger != nil {
			s.eng.cfg.Logger.Warn("checkpoint save failed", "stream", string(st.id), "err", err)
		}
		return
	}
	s.eng.tel.ckptSaved.Inc()
}

// checkpointAll persists every calibrated stream on the shard.
func (s *shard) checkpointAll() {
	for _, st := range s.streams {
		s.checkpoint(st)
	}
}

func (s *shard) deliver(st *streamState, evs []core.Event, enq time.Time) {
	if len(evs) == 0 {
		return
	}
	if st.tr != nil {
		st.tr.Add(trace.Span{Name: trace.SpanResult, Node: s.eng.cfg.TraceNode,
			Start: enq, Duration: time.Since(enq), Count: len(evs)})
	}
	for _, ev := range evs {
		st.latency.ObserveDuration(time.Since(enq))
		switch ev.Kind {
		case core.StrokeDetected:
			st.res.Strokes++
			s.eng.tel.strokes.Inc()
		case core.LetterDeduced:
			st.res.Letters += string(ev.Letter)
			s.eng.tel.letters.Inc()
		}
		if s.eng.cfg.OnEvent != nil {
			s.eng.cfg.OnEvent(st.id, ev)
		}
	}
}

// finish flushes every stream that has not been flushed (each under
// its own recover boundary — a panicking final flush quarantines that
// stream, not the drain), writes final checkpoints, and reports the
// shard's results to the engine.
func (s *shard) finish() {
	now := time.Now()
	results := make([]StreamResult, 0, len(s.streams))
	for _, st := range s.streams {
		if !st.flushed && st.res.Err == nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						s.quarantine(st, r)
					}
				}()
				s.deliver(st, st.st.Flush(), now)
			}()
		}
		s.checkpoint(st)
		results = append(results, st.res)
	}
	s.eng.mu.Lock()
	s.eng.results = append(s.eng.results, results...)
	s.eng.mu.Unlock()
}
