package engine_test

// Engine-side fencing behavior: a stream whose checkpoint writes are
// rejected by the store's epoch fence (a newer owner saved under a
// higher epoch) must keep recognizing — the fence is an ownership
// verdict, not a stream fault — while the rejection is counted on its
// own series, distinct from real write errors, and the newer owner's
// stored state stays untouched.

import (
	"testing"
	"time"

	"rfipad/internal/engine"
	"rfipad/internal/obs"
	"rfipad/internal/supervise"
)

func TestEngineFencedCheckpointKeepsRecognizing(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "plate-f"

	// The store already holds epoch 5 — a newer owner's state. It is
	// deliberately stale (SavedAt an hour ago) so this engine will NOT
	// restore from it: the stream calibrates live and every save it
	// attempts collides with the higher stored epoch.
	if err := store.Save(supervise.Checkpoint{
		Stream:  id,
		Epoch:   5,
		SavedAt: time.Now().Add(-time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{
		Workers:         1,
		Obs:             reg,
		Checkpoints:     store,
		CheckpointEvery: 50 * time.Millisecond,
		// This engine believes it owns the stream under epoch 1 — the
		// stale-owner half of a split brain.
		Epoch: func(engine.StreamID) (uint64, bool) { return 1, true },
	})
	if err := eng.RunStream(id, newReplaySource(t, 57, "IT", reg)); err != nil {
		t.Fatal(err)
	}
	results := eng.Close()
	if len(results) != 1 {
		t.Fatalf("results: %+v", results)
	}
	res := results[0]
	if res.Err != nil {
		t.Fatalf("fenced stream got a terminal error: %v — fencing must not fault the stream", res.Err)
	}
	if res.Letters != "IT" {
		t.Errorf("fenced stream recognized %q, want %q", res.Letters, "IT")
	}

	snap := reg.Snapshot()
	if v := snap.Value("engine_checkpoints_fenced_total"); v < 1 {
		t.Errorf("engine_checkpoints_fenced_total = %v, want >= 1", v)
	}
	if v := snap.Value("engine_checkpoint_errors_total"); v != 0 {
		t.Errorf("engine_checkpoint_errors_total = %v, want 0 — a fenced write is not a write failure", v)
	}
	if v := snap.Value("engine_checkpoints_saved_total"); v != 0 {
		t.Errorf("engine_checkpoints_saved_total = %v, want 0 — every save should have been fenced", v)
	}

	// The newer owner's state survived every attempt.
	cp, err := store.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Epoch != 5 {
		t.Errorf("stored epoch = %d, want 5 (the stale owner must not overwrite its successor)", cp.Epoch)
	}
}
