package engine

import (
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/obs"
)

// TestShardIndexStableAndBounded pins the stream→shard mapping:
// deterministic, in range, and spread across more than one shard for a
// realistic ID population.
func TestShardIndexStableAndBounded(t *testing.T) {
	ids := []StreamID{"plate-0", "plate-1", "plate-2", "plate-3", "reader:192.168.0.7"}
	seen := map[int]bool{}
	for _, id := range ids {
		i := shardIndex(id, 4)
		if i < 0 || i >= 4 {
			t.Fatalf("shardIndex(%q, 4) = %d, out of range", id, i)
		}
		if j := shardIndex(id, 4); j != i {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", id, i, j)
		}
		seen[i] = true
	}
	if len(seen) < 2 {
		t.Errorf("all %d ids hashed to one shard — no spread", len(ids))
	}
}

// TestPushOverflowDropsAndCounts fills a 1-deep mailbox with no worker
// draining it and checks the overflow path: the batch is shed, not
// blocked on, and the counters record exactly what was lost.
func TestPushOverflowDropsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	// Hand-built engine with one shard and NO worker goroutine, so the
	// mailbox state is fully deterministic.
	e := &Engine{cfg: Config{Workers: 1, QueueDepth: 1}.withDefaults(), tel: newTelemetry(reg)}
	e.shards = []*shard{{eng: e, mail: make(chan item, 1), stop: make(chan struct{}), streams: map[StreamID]*streamState{}}}

	batch := []core.Reading{{TagIndex: 0, Time: time.Millisecond}}
	if !e.Push("s", batch) {
		t.Fatal("first push should fit the mailbox")
	}
	done := make(chan bool, 1)
	go func() { done <- e.Push("s", batch) }()
	select {
	case ok := <-done:
		if ok {
			t.Error("second push reported accepted with a full mailbox")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Push blocked on a full mailbox — backpressure must shed, not stall")
	}
	if got := e.tel.overflow.Value(); got != 1 {
		t.Errorf("engine_overflow_total = %d, want 1", got)
	}
	if got := e.tel.droppedR.Value(); got != 1 {
		t.Errorf("engine_dropped_readings_total = %d, want 1", got)
	}

	// After Close begins, Push load-sheds immediately too.
	e.closed.Store(true)
	if e.Push("s", batch) {
		t.Error("push into a closed engine reported accepted")
	}
	if got := e.tel.overflow.Value(); got != 2 {
		t.Errorf("engine_overflow_total after closed push = %d, want 2", got)
	}
}

// TestPushEmptyBatchIsNoop guards the fast path: zero-length batches
// are accepted without touching the mailbox or counters.
func TestPushEmptyBatchIsNoop(t *testing.T) {
	e := New(Config{Workers: 1, Obs: obs.NewRegistry()})
	defer e.Close()
	if !e.Push("s", nil) {
		t.Error("empty batch rejected")
	}
	if got := e.tel.batches.Value(); got != 0 {
		t.Errorf("engine_batches_total = %d, want 0", got)
	}
}
