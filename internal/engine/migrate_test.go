package engine_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
	"rfipad/internal/supervise"
)

// toReadings converts synthesized reports into push-ready readings.
func toReadings(reports []llrp.TagReport) []core.Reading {
	out := make([]core.Reading, 0, len(reports))
	for _, rep := range reports {
		out = append(out, live.ReadingFromReport(rep))
	}
	return out
}

// TestEngineCloseIdempotent pins the shutdown contract: the second
// Close returns the first call's results instead of re-draining (or
// panicking on closed channels), so signal handlers and defers can
// both call it.
func TestEngineCloseIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 1, Obs: reg})
	if err := eng.RunStream("plate-0", newReplaySource(t, 56, "IT", reg)); err != nil {
		t.Fatal(err)
	}
	first := eng.Close()
	second := eng.Close()
	if len(first) != 1 || first[0].Letters != "IT" {
		t.Fatalf("first Close: %+v", first)
	}
	if len(second) != len(first) || second[0].ID != first[0].ID ||
		second[0].Letters != first[0].Letters || second[0].Readings != first[0].Readings {
		t.Errorf("second Close diverged: %+v vs %+v", second, first)
	}
	// The engine stays safely inert after close.
	if eng.Push("plate-0", []core.Reading{{}}) {
		t.Error("Push accepted a batch after Close")
	}
	if _, ok := eng.EvictStream("plate-0"); ok {
		t.Error("EvictStream succeeded after Close")
	}
	if err := eng.AdoptStream("ghost", supervise.Checkpoint{}); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("AdoptStream after Close err = %v, want ErrClosed", err)
	}
}

// TestEngineEvictAdoptRoundTrip moves a calibrated stream between two
// engines by checkpoint — the donor and receiver halves of a cluster
// migration — and demands the receiver finish the word with the
// migrated calibration: no store, no prelude replay, no
// recalibration.
func TestEngineEvictAdoptRoundTrip(t *testing.T) {
	reg1 := obs.NewRegistry()
	eng1 := engine.New(engine.Config{Workers: 1, Obs: reg1})
	if err := eng1.RunStream("plate-0", newReplaySource(t, 56, "IT", reg1)); err != nil {
		t.Fatal(err)
	}

	// Unknown streams and uncalibrated streams are not evictable.
	if _, ok := eng1.EvictStream("ghost"); ok {
		t.Error("evicted a stream that does not exist")
	}

	cp, ok := eng1.EvictStream("plate-0")
	if !ok {
		t.Fatal("calibrated stream refused eviction")
	}
	if cp.Stream != "plate-0" || cp.FrameCursor == 0 {
		t.Fatalf("checkpoint malformed: %+v", cp)
	}
	// A second evict finds nothing: the state left with the first.
	if _, ok := eng1.EvictStream("plate-0"); ok {
		t.Error("evicted the same stream twice")
	}
	res1 := eng1.Close()
	if len(res1) != 1 || res1[0].Letters != "IT" {
		t.Fatalf("donor results: %+v", res1)
	}
	if v := reg1.Snapshot().Value("engine_streams_evicted_total"); v != 1 {
		t.Errorf("engine_streams_evicted_total = %v, want 1", v)
	}

	// Receiver: adopt, then continue the same stream clock with a new
	// word.
	reg2 := obs.NewRegistry()
	eng2 := engine.New(engine.Config{Workers: 1, Obs: reg2})
	if err := eng2.AdoptStream("plate-0", cp); err != nil {
		t.Fatal(err)
	}
	if err := eng2.AdoptStream("plate-0", cp); !errors.Is(err, engine.ErrStreamExists) {
		t.Errorf("double adopt err = %v, want ErrStreamExists", err)
	}

	reports, err := replay.Synthesize(56, "LC", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	offset := cp.StreamTime + time.Second
	for i := range reports {
		reports[i].Timestamp += offset
	}
	src := &replaySource{src: replay.NewSource(reports, replay.Options{Speed: 50})}
	if err := eng2.RunStream("plate-0", src); err != nil {
		t.Fatal(err)
	}
	res2 := eng2.Close()
	if len(res2) != 1 || res2[0].Letters != "LC" || !res2[0].Calibrated {
		t.Fatalf("receiver results: %+v", res2)
	}
	snap := reg2.Snapshot()
	if v := snap.Value("engine_streams_adopted_total"); v != 1 {
		t.Errorf("engine_streams_adopted_total = %v, want 1", v)
	}
	if v := snap.Value("engine_checkpoints_restored_total"); v != 0 {
		t.Errorf("engine_checkpoints_restored_total = %v, want 0 (adoption, not store restore)", v)
	}
}

// TestEngineAdoptRejectsUncalibratedStream pins the donor-side guard
// from the receiver's view: a stream mid-prelude has no checkpoint to
// give, so the migration layer sees ok=false instead of a torn
// half-calibration.
func TestEngineAdoptRejectsUncalibratedStream(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 1, Obs: reg})
	defer eng.Close()
	reports, err := replay.Synthesize(56, "I", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// One early slice of the prelude: the stream exists but cannot
	// have calibrated.
	cut := 0
	for cut < len(reports) && reports[cut].Timestamp < 500*time.Millisecond {
		cut++
	}
	if !eng.PushWait("plate-0", toReadings(reports[:cut])) {
		t.Fatal("push rejected")
	}
	eng.FlushStream("plate-0") // barrier: the batch is processed
	if _, ok := eng.EvictStream("plate-0"); ok {
		t.Error("evicted an uncalibrated stream")
	}
}

// TestEngineRestoreOutcomeCounters walks the checkpoint restore path
// through all four outcomes — restored, stale, corrupt, missing — and
// demands each land on its checkpoint_restore_total label.
func TestEngineRestoreOutcomeCounters(t *testing.T) {
	dir := t.TempDir()
	store, err := supervise.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Seed the store with a real checkpoint.
	reg0 := obs.NewRegistry()
	eng0 := engine.New(engine.Config{Workers: 1, Obs: reg0, Checkpoints: store})
	if err := eng0.RunStream("plate-0", newReplaySource(t, 56, "IT", reg0)); err != nil {
		t.Fatal(err)
	}
	eng0.Close()
	cp, err := store.Load("plate-0")
	if err != nil {
		t.Fatal(err)
	}

	outcome := func(reg *obs.Registry, want string) {
		t.Helper()
		snap := reg.Snapshot()
		for _, o := range []string{"restored", "stale", "corrupt", "missing"} {
			wantV := 0.0
			if o == want {
				wantV = 1
			}
			if v := snap.Value("checkpoint_restore_total", obs.L("outcome", o)); v != wantV {
				t.Errorf("checkpoint_restore_total{outcome=%s} = %v, want %v", o, v, wantV)
			}
		}
	}
	touch := func(reg *obs.Registry, st *supervise.Store) {
		t.Helper()
		eng := engine.New(engine.Config{Workers: 1, Obs: reg, Checkpoints: st,
			CheckpointMaxAge: time.Minute})
		batch, err := replay.Synthesize(56, "I", 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !eng.PushWait("plate-0", toReadings(batch[:50])) {
			t.Fatal("push rejected")
		}
		eng.FlushStream("plate-0") // barrier: stream creation happened
		eng.Close()
	}

	// Restored: fresh checkpoint in place.
	regR := obs.NewRegistry()
	touch(regR, store)
	outcome(regR, "restored")

	// Stale: same file, clock pushed past the bound.
	staleStore, err := supervise.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	staleStore.Now = func() time.Time { return cp.SavedAt.Add(2 * time.Minute) }
	regS := obs.NewRegistry()
	touch(regS, staleStore)
	outcome(regS, "stale")

	// Corrupt: scribble over the checkpoint file.
	if err := os.WriteFile(store.Path("plate-0"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	regC := obs.NewRegistry()
	touch(regC, store)
	outcome(regC, "corrupt")

	// Missing: no file at all.
	if err := os.Remove(store.Path("plate-0")); err != nil {
		t.Fatal(err)
	}
	regM := obs.NewRegistry()
	touch(regM, store)
	outcome(regM, "missing")
}
