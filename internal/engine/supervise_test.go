package engine_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/live"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
	"rfipad/internal/supervise"
)

// runTrio drives three streams over ONE shard — victim plus two
// siblings — and returns the results by ID. panicOn, when non-empty,
// makes the engine's event callback panic for that stream: the
// configured chaos for the quarantine test.
func runTrio(t *testing.T, panicOn engine.StreamID, reg *obs.Registry) map[engine.StreamID]engine.StreamResult {
	t.Helper()
	eng := engine.New(engine.Config{
		Workers: 1,
		Obs:     reg,
		OnEvent: func(id engine.StreamID, ev core.Event) {
			if id == panicOn {
				panic("injected event-handler fault")
			}
		},
	})
	words := map[engine.StreamID]string{"victim": "IT", "sib-a": "LC", "sib-b": "TI"}
	seeds := map[engine.StreamID]int64{"victim": 40, "sib-a": 41, "sib-b": 42}
	var wg sync.WaitGroup
	for id := range words {
		src := newReplaySource(t, seeds[id], words[id], reg)
		wg.Add(1)
		go func(id engine.StreamID) {
			defer wg.Done()
			// A panicking handler quarantines the stream server-side;
			// the source-side drain still completes without error.
			if err := eng.RunStream(id, src); err != nil {
				t.Errorf("stream %s: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	byID := map[engine.StreamID]engine.StreamResult{}
	for _, res := range eng.Close() {
		byID[res.ID] = res
	}
	return byID
}

// TestEnginePanicQuarantinesStream is the tentpole chaos scenario: a
// stream whose event handler panics mid-letter must be quarantined —
// state dropped, terminal error recorded, panic counted — while the
// other streams on the same shard finish recognition with results
// identical to a fault-free control run.
func TestEnginePanicQuarantinesStream(t *testing.T) {
	control := runTrio(t, "", obs.NewRegistry())
	for id, res := range control {
		if res.Err != nil {
			t.Fatalf("control stream %s failed: %v", id, res.Err)
		}
	}

	reg := obs.NewRegistry()
	chaos := runTrio(t, "victim", reg)

	victim := chaos["victim"]
	if victim.Err == nil {
		t.Fatal("victim has no terminal error after its handler panicked")
	}
	if !strings.Contains(victim.Err.Error(), "quarantined") {
		t.Errorf("victim error %q does not mention quarantine", victim.Err)
	}
	if victim.Letters != "" {
		t.Errorf("victim kept recognizing after quarantine: %q", victim.Letters)
	}

	// Shard siblings: same results as the fault-free control run.
	for _, id := range []engine.StreamID{"sib-a", "sib-b"} {
		if chaos[id].Err != nil {
			t.Errorf("sibling %s failed: %v", id, chaos[id].Err)
		}
		if chaos[id].Letters != control[id].Letters {
			t.Errorf("sibling %s recognized %q with chaos, %q without — quarantine leaked",
				id, chaos[id].Letters, control[id].Letters)
		}
		if chaos[id].Strokes != control[id].Strokes {
			t.Errorf("sibling %s strokes %d with chaos, %d without",
				id, chaos[id].Strokes, control[id].Strokes)
		}
	}

	snap := reg.Snapshot()
	if v := snap.Value("engine_stream_panics_total"); v == 0 {
		t.Error("engine_stream_panics_total stayed zero")
	}
	if v := snap.Value("engine_streams_quarantined"); v != 1 {
		t.Errorf("engine_streams_quarantined = %v, want 1", v)
	}
	if v := snap.Value("engine_stream_errors_total"); v != 1 {
		t.Errorf("engine_stream_errors_total = %v, want 1", v)
	}
}

// TestEngineSourcePanicIsolated pins the RunStream recover boundary: a
// source that panics mid-drain becomes a terminal error for that
// stream (flushed, counted), not a crashed worker pool, and siblings
// on the same shard are untouched.
func TestEngineSourcePanicIsolated(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 1, Obs: reg})

	err := eng.RunStream("bomb", panicSource{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("RunStream err = %v, want source-panic error", err)
	}

	if err := eng.RunStream("good", newReplaySource(t, 30, "IT", reg)); err != nil {
		t.Fatalf("healthy stream after source panic: %v", err)
	}
	byID := map[engine.StreamID]engine.StreamResult{}
	for _, res := range eng.Close() {
		byID[res.ID] = res
	}
	if res := byID["good"]; res.Letters != "IT" {
		t.Errorf("healthy stream recognized %q, want %q", res.Letters, "IT")
	}
	if v := reg.Snapshot().Value("engine_stream_panics_total"); v == 0 {
		t.Error("engine_stream_panics_total stayed zero")
	}
}

type panicSource struct{}

func (panicSource) NextReports() ([]llrp.TagReport, error) { panic("source detonated") }
func (panicSource) Stats() llrp.SessionStats               { return llrp.SessionStats{} }

// TestEngineCheckpointRestoreSkipsPrelude closes a checkpointing
// engine after a full run, then feeds a second engine (same store) a
// capture time-shifted past the saved frame cursor: the stream must
// restore its calibration — visible on
// engine_checkpoints_restored_total — and recognize the new word
// without a calibration prelude being consumed again.
func TestEngineCheckpointRestoreSkipsPrelude(t *testing.T) {
	store, err := supervise.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	reg1 := obs.NewRegistry()
	eng1 := engine.New(engine.Config{Workers: 1, Obs: reg1, Checkpoints: store})
	if err := eng1.RunStream("plate-0", newReplaySource(t, 56, "IT", reg1)); err != nil {
		t.Fatal(err)
	}
	res1 := eng1.Close()
	if len(res1) != 1 || res1[0].Letters != "IT" || res1[0].Err != nil {
		t.Fatalf("first run: %+v", res1)
	}
	if v := reg1.Snapshot().Value("engine_checkpoints_saved_total"); v == 0 {
		t.Fatal("close wrote no checkpoint")
	}
	cp, err := store.Load("plate-0")
	if err != nil {
		t.Fatal(err)
	}

	// Second life: same stream ID and same simulated deployment (the
	// seed fixes the plate/antenna physics a calibration describes),
	// new word, clock starting where the checkpoint left off (a reader
	// session resuming later in stream time).
	reports, err := replay.Synthesize(56, "LC", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	offset := cp.StreamTime + time.Second
	for i := range reports {
		reports[i].Timestamp += offset
	}
	src := &replaySource{src: replay.NewSource(reports, replay.Options{Speed: 50})}

	reg2 := obs.NewRegistry()
	eng2 := engine.New(engine.Config{Workers: 1, Obs: reg2, Checkpoints: store})
	if err := eng2.RunStream("plate-0", src); err != nil {
		t.Fatal(err)
	}
	res2 := eng2.Close()
	if len(res2) != 1 {
		t.Fatalf("second run results: %+v", res2)
	}
	if res2[0].Err != nil {
		t.Fatalf("restored stream failed: %v", res2[0].Err)
	}
	if !res2[0].Calibrated {
		t.Error("restored stream not marked calibrated")
	}
	if res2[0].Letters != "LC" {
		t.Errorf("restored stream recognized %q, want %q", res2[0].Letters, "LC")
	}
	snap := reg2.Snapshot()
	if v := snap.Value("engine_checkpoints_restored_total"); v != 1 {
		t.Errorf("engine_checkpoints_restored_total = %v, want 1", v)
	}
	if v := snap.Value("engine_streams_calibrated"); v != 1 {
		t.Errorf("engine_streams_calibrated = %v, want 1", v)
	}
}

// TestEngineDrainDeadlineAbandonsBacklog bounds shutdown: with a slow
// event handler and an effectively zero drain budget, Close must
// abandon the queued backlog (counting it) instead of processing every
// pending batch — shutdown latency is bounded by DrainTimeout, not by
// queue depth.
func TestEngineDrainDeadlineAbandonsBacklog(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	var once sync.Once
	eng := engine.New(engine.Config{
		Workers:      1,
		Obs:          reg,
		DrainTimeout: time.Millisecond,
		OnEvent: func(engine.StreamID, core.Event) {
			// Park the shard on the first event so the mailbox backs up
			// behind it until Close's drain deadline has long expired.
			once.Do(func() { <-release })
		},
	})

	reports, err := replay.Synthesize(52, "IT", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]core.Reading, len(reports))
	for i, rep := range reports {
		readings[i] = live.ReadingFromReport(rep)
	}
	const chunk = 200
	for i := 0; i < len(readings); i += chunk {
		end := min(i+chunk, len(readings))
		batch := make([]core.Reading, end-i)
		copy(batch, readings[i:end])
		eng.Push("plate-0", batch)
	}

	go func() {
		// Give Close time to enter the drain loop, then unpark the
		// shard with the deadline already blown.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	done := make(chan []engine.StreamResult, 1)
	go func() { done <- eng.Close() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return — drain deadline not enforced")
	}

	snap := reg.Snapshot()
	if v := snap.Value("engine_drain_abandoned_total"); v == 0 {
		t.Error("engine_drain_abandoned_total stayed zero despite a parked shard")
	}
	if v := snap.Value("engine_dropped_readings_total"); v == 0 {
		t.Error("abandoned batches not accounted in engine_dropped_readings_total")
	}
	if v := snap.Value("engine_accepting"); v != 0 {
		t.Errorf("engine_accepting = %v after Close, want 0", v)
	}
}
