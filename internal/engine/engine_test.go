package engine_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rfipad/internal/core"
	"rfipad/internal/engine"
	"rfipad/internal/faultnet"
	"rfipad/internal/llrp"
	"rfipad/internal/obs"
	"rfipad/internal/replay"
)

// replaySource adapts a paced replay to the live.ReportSource shape so
// the engine can drain it in-process, without a TCP server in between.
type replaySource struct{ src *replay.Source }

func (r *replaySource) NextReports() ([]llrp.TagReport, error) {
	batch, ok := r.src.Next()
	if !ok {
		return nil, llrp.ErrStreamEnded
	}
	return batch, nil
}

func (r *replaySource) Stats() llrp.SessionStats { return llrp.SessionStats{} }

func newReplaySource(t testing.TB, seed int64, word string, reg *obs.Registry) *replaySource {
	t.Helper()
	reports, err := replay.Synthesize(seed, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &replaySource{src: replay.NewSource(reports, replay.Options{Speed: 50, Obs: reg})}
}

// TestEngineMultiStreamRecognizes shards four independent streams over
// two workers and demands every stream calibrate and recognize its own
// word — per-stream state must not bleed across streams sharing a
// shard.
func TestEngineMultiStreamRecognizes(t *testing.T) {
	reg := obs.NewRegistry()
	words := map[engine.StreamID]string{
		"plate-0": "IT",
		"plate-1": "LC",
		"plate-2": "TI",
		"plate-3": "CL",
	}
	var mu sync.Mutex
	eventStreams := map[engine.StreamID]int{}
	eng := engine.New(engine.Config{
		Workers: 2,
		Obs:     reg,
		OnEvent: func(id engine.StreamID, ev core.Event) {
			mu.Lock()
			eventStreams[id]++
			mu.Unlock()
		},
	})

	var wg sync.WaitGroup
	seed := int64(20)
	for id, word := range words {
		src := newReplaySource(t, seed, word, reg)
		seed++
		wg.Add(1)
		go func(id engine.StreamID) {
			defer wg.Done()
			if err := eng.RunStream(id, src); err != nil {
				t.Errorf("stream %s: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	results := eng.Close()

	if len(results) != len(words) {
		t.Fatalf("got %d results, want %d", len(results), len(words))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].ID >= results[i].ID {
			t.Errorf("results unsorted: %q before %q", results[i-1].ID, results[i].ID)
		}
	}
	for _, res := range results {
		want := words[res.ID]
		if res.Err != nil {
			t.Errorf("stream %s: terminal error %v", res.ID, res.Err)
		}
		if !res.Calibrated {
			t.Errorf("stream %s never calibrated", res.ID)
		}
		if res.Letters != want {
			t.Errorf("stream %s recognized %q, want %q", res.ID, res.Letters, want)
		}
		if res.Readings == 0 {
			t.Errorf("stream %s ingested no readings", res.ID)
		}
		mu.Lock()
		evs := eventStreams[res.ID]
		mu.Unlock()
		if evs == 0 {
			t.Errorf("stream %s delivered no events through OnEvent", res.ID)
		}
	}

	// The engine_* series must reflect the run.
	snap := reg.Snapshot()
	assertMetric := func(name string, want float64) {
		t.Helper()
		if got := snap.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	assertMetric("engine_streams", float64(len(words)))
	assertMetric("engine_overflow_total", 0)
	assertMetric("engine_stream_errors_total", 0)
	if snap.Value("engine_readings_total") == 0 {
		t.Error("engine_readings_total stayed zero")
	}
}

// TestEngineCalibrationFailureIsolated feeds one stream garbage that
// fails calibration and checks the failure stays confined: the sibling
// stream on the same single shard still recognizes, and the failed
// stream reports its terminal error with later readings accounted as
// dropped.
func TestEngineCalibrationFailureIsolated(t *testing.T) {
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 1, Obs: reg})

	// All readings on one tag: every other tag is dead, which
	// Calibrate rejects.
	bad := make([]core.Reading, 0, 4000)
	for i := 0; i < 4000; i++ {
		bad = append(bad, core.Reading{TagIndex: 0, Time: time.Duration(i) * time.Millisecond, Phase: 1})
	}
	eng.Push("bad", bad)
	eng.Push("bad", []core.Reading{{TagIndex: 0, Time: 4001 * time.Millisecond}})

	src := newReplaySource(t, 30, "IT", reg)
	if err := eng.RunStream("good", src); err != nil {
		t.Fatalf("healthy stream: %v", err)
	}
	results := eng.Close()

	byID := map[engine.StreamID]engine.StreamResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	if res := byID["bad"]; res.Err == nil {
		t.Error("bad stream has no terminal error")
	} else if res.Dropped == 0 {
		t.Error("post-failure readings not accounted as dropped")
	}
	if res := byID["good"]; res.Letters != "IT" {
		t.Errorf("healthy shard sibling recognized %q, want %q (err %v)", res.Letters, "IT", res.Err)
	}
	if got := reg.Snapshot().Value("engine_stream_errors_total"); got != 1 {
		t.Errorf("engine_stream_errors_total = %v, want 1", got)
	}
}

// TestEngineChaosStreamDoesNotStallSiblings is the engine-path chaos
// case: one stream arrives through a fault-injected TCP link that cuts
// the connection every 32 KiB, while two healthy in-process streams
// share the SAME single shard. The healthy streams must complete and
// recognize even though the chaotic stream spends the whole run
// disconnecting and resuming — a faulted source may starve itself, but
// never its shard siblings.
func TestEngineChaosStreamDoesNotStallSiblings(t *testing.T) {
	const word = "IT"
	reports, err := replay.Synthesize(12, word, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := llrp.NewServer(func() llrp.ReportSource {
		return replay.NewSource(reports, replay.Options{Speed: 25})
	})
	srv.IdleTimeout = 2 * time.Second
	srv.WriteTimeout = 2 * time.Second
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := faultnet.Listen(inner, faultnet.Config{
		Seed:           7,
		DropAfterBytes: 32 * 1024,
		DupFrameProb:   0.03,
		PartialWrites:  true,
		FrameHeaderLen: llrp.HeaderLen,
		FrameSize:      llrp.FrameSize,
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sess, err := llrp.DialSession(ctx, llrp.SessionConfig{
		Addr:              inner.Addr().String(),
		BackoffInitial:    5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		JitterSeed:        11,
		KeepaliveInterval: 50 * time.Millisecond,
		IdleTimeout:       time.Second,
		WriteTimeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{Workers: 1, Obs: reg})

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	healthyDone := make(chan struct{}, 2)
	run := func(id engine.StreamID, src interface {
		NextReports() ([]llrp.TagReport, error)
		Stats() llrp.SessionStats
	}, healthy bool) {
		defer wg.Done()
		if err := eng.RunStream(id, src); err != nil {
			errs <- fmt.Errorf("stream %s: %w", id, err)
			return
		}
		if healthy {
			healthyDone <- struct{}{}
		}
	}
	wg.Add(3)
	go run("chaotic", sess, false)
	go run("healthy-a", newReplaySource(t, 31, "LC", reg), true)
	go run("healthy-b", newReplaySource(t, 32, "TI", reg), true)

	// Both healthy streams must finish on their own schedule; if the
	// chaotic stream could stall the shared shard, this would time out.
	for i := 0; i < 2; i++ {
		select {
		case <-healthyDone:
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(45 * time.Second):
			t.Fatal("healthy streams did not complete while chaotic sibling was active")
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := map[engine.StreamID]string{"chaotic": word, "healthy-a": "LC", "healthy-b": "TI"}
	for _, res := range eng.Close() {
		if res.Letters != want[res.ID] {
			t.Errorf("stream %s recognized %q, want %q", res.ID, res.Letters, want[res.ID])
		}
		if !res.Calibrated {
			t.Errorf("stream %s never calibrated", res.ID)
		}
	}
}
