package core

import (
	"math"
	"time"

	"rfipad/internal/dsp"
)

// segAcc is one frame×tag accumulator cell: the running Σp² and sample
// count interleaved so the hot loop's read-modify-write touches one
// cache line per reading instead of two parallel arrays.
type segAcc struct {
	sumSq float64
	count int32
	_     int32
}

// IEEE-754 bit patterns of π and 2π, used by the branchless wrap in
// addColumns.
const (
	piBits    = 0x400921FB54442D18
	twoPiBits = 0x401921FB54442D18
)

// segCache maintains the segmenter's per-frame Eq. 11 statistics
// incrementally so the streaming recognizer never rescans its buffer.
// Each accepted reading folds into its frame's per-tag (Σp², count)
// accumulators in O(1); producing the frame-RMS trace for a poll only
// recomputes frames a reading has touched since the last poll. The
// cache's frame grid is anchored at origin, which the recognizer keeps
// frame-aligned, so history trims never shift frame boundaries and the
// incremental trace stays bit-identical to Segmenter.frameRMS over the
// same readings.
type segCache struct {
	frameLen time.Duration
	n        int // tags
	cal      *Calibration
	factor   []float64 // Eq. 11 per-tag attenuation, fixed per calibration
	// adjMean folds the dead-tag exclusion into the mean-phase lookup:
	// a live tag's entry is its calibrated mean, a dead tag's is NaN, so
	// the column hot loop's suppressed phase comes out NaN for dead tags
	// and the single NaN check covers both exclusions.
	adjMean []float64

	origin time.Duration // stream time of frame 0; multiple of frameLen
	// off is the number of dead frames at the physical head of the
	// arrays: trims advance it instead of copying, and the arrays only
	// compact once the dead prefix outgrows the live span, so the
	// steady-state per-frame trim is O(1) amortized. Logical frame f
	// (0 = origin) lives at physical index off+f.
	off   int
	acc   []segAcc  // [(off+frame)*n + tag] accumulators
	vals  []float64 // cached Eq. 11 value per frame
	dirty []bool    // frame touched since its value was computed
}

// newSegCache builds an empty cache for one calibrated stream.
func newSegCache(frameLen time.Duration, cal *Calibration) *segCache {
	n := cal.NumTags()
	// The factor only attenuates (≤1): a tag noisier than typical is
	// damped toward the typical level; quiet tags pass unchanged — the
	// same normalization Segmenter.frameRMS applies batch-wise.
	typBias := dsp.Median(cal.Bias)
	factor := make([]float64, n)
	for i := range factor {
		f := 1.0
		if cal.Bias[i] > 0 && typBias > 0 && cal.Bias[i] > typBias {
			f = typBias / cal.Bias[i]
			if f < 1.0/32 {
				f = 1.0 / 32
			}
		}
		factor[i] = f
	}
	adjMean := make([]float64, n)
	for i := range adjMean {
		if cal.IsDead(i) {
			adjMean[i] = math.NaN()
		} else {
			adjMean[i] = cal.MeanPhase[i]
		}
	}
	return &segCache{frameLen: frameLen, n: n, cal: cal, factor: factor, adjMean: adjMean}
}

// frames returns the number of live frames currently held.
func (c *segCache) frames() int { return len(c.vals) - c.off }

// ensure grows the cache to cover at least nFrames live frames.
// Appends reuse capacity reclaimed by trims, so a bounded stream
// settles into zero growth.
func (c *segCache) ensure(nFrames int) {
	for len(c.vals)-c.off < nFrames {
		c.vals = append(c.vals, 0)
		c.dirty = append(c.dirty, true)
		for k := 0; k < c.n; k++ {
			c.acc = append(c.acc, segAcc{})
		}
	}
}

// add folds one accepted reading into its frame's accumulators. The
// reading's time must be >= origin (the recognizer drops older ones as
// late). Order within and across frames is irrelevant, so transport
// reordering needs no special handling here.
func (c *segCache) add(rd Reading) {
	if rd.TagIndex < 0 || rd.TagIndex >= c.n {
		return
	}
	if rd.Time < c.origin {
		return
	}
	// adjMean is NaN for dead tags, so the NaN check below also applies
	// the dead-tag exclusion (their sporadic reads would feed raw,
	// unsuppressed phases into the frame statistic — same as frameRMS).
	p := dsp.WrapSignedNear(rd.Phase - c.adjMean[rd.TagIndex])
	if math.IsNaN(p) {
		return
	}
	f := int((rd.Time - c.origin) / c.frameLen)
	c.ensure(f + 1)
	pf := c.off + f
	a := &c.acc[pf*c.n+rd.TagIndex]
	a.sumSq += p * p
	a.count++
	c.dirty[pf] = true
}

// addColumns folds a column run of accepted readings into the frame
// accumulators — the batch counterpart of calling add per element, with
// the frame division hoisted out of the loop. The run must be
// time-sorted (non-decreasing) with every Time >= origin; the
// recognizer's bulk-append fast path guarantees both. Tag filtering,
// suppression, and accumulation order produce bit-identical sums to
// add over the same elements.
func (c *segCache) addColumns(times []time.Duration, phases []float64, tags []int32) {
	if len(times) == 0 {
		return
	}
	// Frame-run tracking: consecutive readings almost always land in
	// the same frame, so the division only runs on frame changes. The
	// column views and the tag count live in locals so the inner loop
	// carries no pointer reloads; acc is re-hoisted after every ensure,
	// which may grow it.
	phases = phases[:len(times)]
	tags = tags[:len(times)]
	adjMean := c.adjMean
	acc := c.acc
	n := int32(c.n)
	base := -1
	var frameLo, frameHi time.Duration
	for k, t := range times {
		tag := tags[k]
		if uint32(tag) >= uint32(n) {
			continue
		}
		d := phases[k] - adjMean[tag]
		if d > -2*math.Pi && d < 2*math.Pi {
			// WrapSignedNear's |d| < 2π arms, spelled out branch-free:
			// the sign of d and the >π overshoot are data-random, so the
			// natural branches mispredict about half the time. Both
			// steps add/subtract an exact 0.0 or 2π selected by integer
			// masks — the same single-rounding operations the branchy
			// form performs, so the result is bit-identical through p²
			// (the only consumer; ±0.0 square the same).
			d += math.Float64frombits((math.Float64bits(d) >> 63) * twoPiBits)
			d -= math.Float64frombits(((piBits - math.Float64bits(d)) >> 63) * twoPiBits)
		} else {
			// Everything else — NaN (dead tags), ±Inf, |d| >= 2π — takes
			// the full dsp wrap.
			d = dsp.WrapSignedNear(d)
			if math.IsNaN(d) {
				continue
			}
		}
		if base < 0 || t >= frameHi || t < frameLo {
			f := int((t - c.origin) / c.frameLen)
			c.ensure(f + 1)
			acc = c.acc
			frameLo = c.origin + time.Duration(f)*c.frameLen
			frameHi = frameLo + c.frameLen
			pf := c.off + f
			c.dirty[pf] = true
			base = pf * c.n
		}
		a := &acc[base+int(tag)]
		a.sumSq += d * d
		a.count++
	}
}

// skipTo re-anchors an empty cache's frame grid at origin (a multiple
// of frameLen). Used when a restored stream resumes mid-capture; a
// cache that already holds frames keeps its anchor.
func (c *segCache) skipTo(origin time.Duration) {
	if c.frames() == 0 && origin > c.origin {
		c.origin = origin
	}
}

// trimTo drops every frame before newOrigin (which must be
// frame-aligned and >= origin). Dropped frames only advance the dead
// prefix; the arrays compact in place once the prefix outgrows the
// live span, so trimming is O(1) amortized per dropped frame.
func (c *segCache) trimTo(newOrigin time.Duration) {
	drop := int((newOrigin - c.origin) / c.frameLen)
	if drop <= 0 {
		return
	}
	live := len(c.vals) - c.off
	if drop >= live {
		c.vals = c.vals[:0]
		c.dirty = c.dirty[:0]
		c.acc = c.acc[:0]
		c.off = 0
	} else {
		c.off += drop
		if live-drop < c.off {
			nv := copy(c.vals, c.vals[c.off:])
			c.vals = c.vals[:nv]
			nd := copy(c.dirty, c.dirty[c.off:])
			c.dirty = c.dirty[:nd]
			na := copy(c.acc, c.acc[c.off*c.n:])
			c.acc = c.acc[:na]
			c.off = 0
		}
	}
	c.origin = newOrigin
}

// values returns the Eq. 11 trace for every complete frame before
// horizon, recomputing only frames marked dirty since the last call.
// The returned slice is owned by the cache and valid until the next
// add/trim/values call.
func (c *segCache) values(horizon time.Duration) []float64 {
	trace, _ := c.valuesSince(horizon)
	return trace
}

// valuesSince is values plus a change watermark: changedFrom is the
// lowest frame index whose value was recomputed by this call (or
// len(trace) when every returned frame was already clean). The
// segmenter's incremental window-std path uses it to recompute only the
// sliding windows whose inputs moved.
func (c *segCache) valuesSince(horizon time.Duration) (trace []float64, changedFrom int) {
	nFrames := int((horizon - c.origin) / c.frameLen)
	if nFrames <= 0 {
		return nil, 0
	}
	c.ensure(nFrames)
	changedFrom = nFrames
	off := c.off
	acc, factor := c.acc, c.factor
	for f := 0; f < nFrames; f++ {
		pf := off + f
		if !c.dirty[pf] {
			continue
		}
		if f < changedFrom {
			changedFrom = f
		}
		var sum float64
		base := pf * c.n
		for i := 0; i < c.n; i++ {
			if a := &acc[base+i]; a.count > 0 {
				sum += factor[i] * math.Sqrt(a.sumSq/float64(a.count))
			}
		}
		c.vals[pf] = sum
		c.dirty[pf] = false
	}
	return c.vals[off : off+nFrames], changedFrom
}
