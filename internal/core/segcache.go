package core

import (
	"math"
	"time"

	"rfipad/internal/dsp"
)

// segCache maintains the segmenter's per-frame Eq. 11 statistics
// incrementally so the streaming recognizer never rescans its buffer.
// Each accepted reading folds into its frame's per-tag (Σp², count)
// accumulators in O(1); producing the frame-RMS trace for a poll only
// recomputes frames a reading has touched since the last poll. The
// cache's frame grid is anchored at origin, which the recognizer keeps
// frame-aligned, so history trims never shift frame boundaries and the
// incremental trace stays bit-identical to Segmenter.frameRMS over the
// same readings.
type segCache struct {
	frameLen time.Duration
	n        int // tags
	cal      *Calibration
	factor   []float64 // Eq. 11 per-tag attenuation, fixed per calibration

	origin time.Duration // stream time of frame 0; multiple of frameLen
	sumSq  []float64     // [frame*n + tag] Σp² over the frame's samples
	counts []int32       // [frame*n + tag] sample count
	vals   []float64     // cached Eq. 11 value per frame
	dirty  []bool        // frame touched since its value was computed
}

// newSegCache builds an empty cache for one calibrated stream.
func newSegCache(frameLen time.Duration, cal *Calibration) *segCache {
	n := cal.NumTags()
	// The factor only attenuates (≤1): a tag noisier than typical is
	// damped toward the typical level; quiet tags pass unchanged — the
	// same normalization Segmenter.frameRMS applies batch-wise.
	typBias := dsp.Median(cal.Bias)
	factor := make([]float64, n)
	for i := range factor {
		f := 1.0
		if cal.Bias[i] > 0 && typBias > 0 && cal.Bias[i] > typBias {
			f = typBias / cal.Bias[i]
			if f < 1.0/32 {
				f = 1.0 / 32
			}
		}
		factor[i] = f
	}
	return &segCache{frameLen: frameLen, n: n, cal: cal, factor: factor}
}

// frames returns the number of frames currently held.
func (c *segCache) frames() int { return len(c.vals) }

// ensure grows the cache to cover at least nFrames frames. Appends
// reuse capacity reclaimed by trims, so a bounded stream settles into
// zero growth.
func (c *segCache) ensure(nFrames int) {
	for len(c.vals) < nFrames {
		c.vals = append(c.vals, 0)
		c.dirty = append(c.dirty, true)
		for k := 0; k < c.n; k++ {
			c.sumSq = append(c.sumSq, 0)
			c.counts = append(c.counts, 0)
		}
	}
}

// add folds one accepted reading into its frame's accumulators. The
// reading's time must be >= origin (the recognizer drops older ones as
// late). Order within and across frames is irrelevant, so transport
// reordering needs no special handling here.
func (c *segCache) add(rd Reading) {
	if rd.TagIndex < 0 || rd.TagIndex >= c.n || c.cal.IsDead(rd.TagIndex) {
		// Dead tags' sporadic reads would feed raw (unsuppressed)
		// phases into the frame statistic — same exclusion as frameRMS.
		return
	}
	if rd.Time < c.origin {
		return
	}
	p := dsp.WrapSigned(rd.Phase - c.cal.MeanPhase[rd.TagIndex])
	if math.IsNaN(p) {
		return
	}
	f := int((rd.Time - c.origin) / c.frameLen)
	c.ensure(f + 1)
	at := f*c.n + rd.TagIndex
	c.sumSq[at] += p * p
	c.counts[at]++
	c.dirty[f] = true
}

// skipTo re-anchors an empty cache's frame grid at origin (a multiple
// of frameLen). Used when a restored stream resumes mid-capture; a
// cache that already holds frames keeps its anchor.
func (c *segCache) skipTo(origin time.Duration) {
	if len(c.vals) == 0 && origin > c.origin {
		c.origin = origin
	}
}

// trimTo drops every frame before newOrigin (which must be
// frame-aligned and >= origin), compacting in place so the backing
// arrays are reused.
func (c *segCache) trimTo(newOrigin time.Duration) {
	drop := int((newOrigin - c.origin) / c.frameLen)
	if drop <= 0 {
		return
	}
	if drop >= len(c.vals) {
		c.vals = c.vals[:0]
		c.dirty = c.dirty[:0]
		c.sumSq = c.sumSq[:0]
		c.counts = c.counts[:0]
	} else {
		nv := copy(c.vals, c.vals[drop:])
		c.vals = c.vals[:nv]
		nd := copy(c.dirty, c.dirty[drop:])
		c.dirty = c.dirty[:nd]
		ns := copy(c.sumSq, c.sumSq[drop*c.n:])
		c.sumSq = c.sumSq[:ns]
		nc := copy(c.counts, c.counts[drop*c.n:])
		c.counts = c.counts[:nc]
	}
	c.origin = newOrigin
}

// values returns the Eq. 11 trace for every complete frame before
// horizon, recomputing only frames marked dirty since the last call.
// The returned slice is owned by the cache and valid until the next
// add/trim/values call.
func (c *segCache) values(horizon time.Duration) []float64 {
	nFrames := int((horizon - c.origin) / c.frameLen)
	if nFrames <= 0 {
		return nil
	}
	c.ensure(nFrames)
	for f := 0; f < nFrames; f++ {
		if !c.dirty[f] {
			continue
		}
		var sum float64
		base := f * c.n
		for i := 0; i < c.n; i++ {
			if cnt := c.counts[base+i]; cnt > 0 {
				sum += c.factor[i] * math.Sqrt(c.sumSq[base+i]/float64(cnt))
			}
		}
		c.vals[f] = sum
		c.dirty[f] = false
	}
	return c.vals[:nFrames]
}
