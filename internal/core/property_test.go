package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rfipad/internal/dsp"
	"rfipad/internal/stroke"
)

// randomStream builds an arbitrary (but well-formed) reading stream
// from a fuzz seed.
func randomStream(seed int64, numTags int, dur time.Duration) []Reading {
	rng := rand.New(rand.NewSource(seed))
	var out []Reading
	for tm := time.Duration(0); tm < dur; tm += time.Duration(20+rng.Intn(60)) * time.Millisecond {
		i := rng.Intn(numTags)
		out = append(out, Reading{
			TagIndex: i,
			Time:     tm,
			Phase:    rng.Float64() * 2 * math.Pi,
			RSS:      -60 + rng.Float64()*30,
		})
	}
	return out
}

func TestSegmenterInvariantsProperty(t *testing.T) {
	// For any stream: spans are sorted, non-overlapping, inside the
	// capture, at least MinSpan long, and separated by > MergeGap.
	f := func(seed int64) bool {
		cal := UniformCalibration(9)
		seg := NewSegmenter()
		dur := 6 * time.Second
		spans := seg.Segment(randomStream(seed, 9, dur), cal, 0, dur)
		prevEnd := time.Duration(-1)
		for _, sp := range spans {
			if sp.Start < 0 || sp.End > dur || sp.End <= sp.Start {
				return false
			}
			if sp.Duration() < seg.MinSpan {
				return false
			}
			if prevEnd >= 0 && sp.Start-prevEnd <= seg.MergeGap {
				return false
			}
			prevEnd = sp.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDisturbanceMapNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		cal := UniformCalibration(9)
		vals := DisturbanceMap(randomStream(seed, 9, 2*time.Second), cal, DisturbanceOptions{})
		for _, v := range vals {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return len(vals) == 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestClassifyShapeNeverPanicsProperty(t *testing.T) {
	// Any mask over any grid yields either !Ok or a shape within the
	// vocabulary and a box inside the unit square.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(6)
		cols := 2 + rng.Intn(6)
		grid := Grid{Rows: rows, Cols: cols}
		mask := make([]bool, grid.NumTags())
		vals := make([]float64, grid.NumTags())
		for i := range mask {
			mask[i] = rng.Intn(3) == 0
			vals[i] = rng.Float64() * 10
		}
		res := ClassifyShape(grid, vals, mask)
		if !res.Ok {
			for _, m := range mask {
				if m {
					return false // foreground present but unclassified
				}
			}
			return true
		}
		if res.Shape < stroke.Click || res.Shape > stroke.ArcRight {
			return false
		}
		b := res.Box
		return b.X0 >= 0 && b.Y0 >= 0 && b.X1 <= 1 && b.Y1 <= 1 && b.X1 >= b.X0 && b.Y1 >= b.Y0 &&
			res.CenterX >= 0 && res.CenterX <= 1 && res.CenterY >= 0 && res.CenterY <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargestComponentProperty(t *testing.T) {
	// The filtered mask is a subset of the input and, if the input had
	// any foreground, non-empty and fully 8-connected.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := Grid{Rows: 5, Cols: 5}
		mask := make([]bool, 25)
		any := false
		for i := range mask {
			mask[i] = rng.Intn(4) == 0
			any = any || mask[i]
		}
		out := LargestComponent(grid, mask, nil)
		count := 0
		for i := range out {
			if out[i] && !mask[i] {
				return false // not a subset
			}
			if out[i] {
				count++
			}
		}
		if any && count == 0 {
			return false
		}
		if !any {
			return count == 0
		}
		// Connectivity: flood fill from the first on-cell covers all.
		start := -1
		for i, m := range out {
			if m {
				start = i
				break
			}
		}
		seen := map[int]bool{start: true}
		stack := []int{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, c := grid.RowCol(cur)
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= 5 || nc < 0 || nc >= 5 {
						continue
					}
					ni := nr*5 + nc
					if out[ni] && !seen[ni] {
						seen[ni] = true
						stack = append(stack, ni)
					}
				}
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecognizerIngestMonotoneTime(t *testing.T) {
	// Feeding a quiet random stream produces no events and never
	// panics, regardless of timing jitter.
	cal := UniformCalibration(25)
	p := NewPipeline(Grid{Rows: 5, Cols: 5}, cal)
	rec := NewRecognizer(p, nil)
	rng := rand.New(rand.NewSource(5))
	tm := time.Duration(0)
	for i := 0; i < 500; i++ {
		tm += time.Duration(rng.Intn(40)) * time.Millisecond
		evs := rec.Ingest(Reading{
			TagIndex: rng.Intn(25),
			Time:     tm,
			Phase:    dsp.Wrap(1 + rng.NormFloat64()*0.02),
			RSS:      -45,
		})
		if len(evs) != 0 {
			t.Fatalf("quiet stream emitted %d events at %v", len(evs), tm)
		}
	}
	if evs := rec.Flush(tm); len(evs) != 0 {
		t.Fatalf("flush emitted %d events", len(evs))
	}
}
