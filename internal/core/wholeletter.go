package core

import (
	"math"
	"sort"
	"time"

	"rfipad/internal/grammar"
	"rfipad/internal/stroke"
)

// Whole-letter recognition implements the alternative the paper
// proposes in §VI ("Compounding errors"): instead of deducing a letter
// from its stroke sequence — where segmentation, stroke, and deduction
// errors compound — treat the letter as a whole and identify it by
// image matching after the OTSU operation. The composite disturbance
// image of the entire writing session is correlated against templates
// rasterized from the grammar's canonical letter layouts.

// templateSigma is the splat radius (in cells) when rasterizing
// canonical strokes onto the tag grid — roughly the hand's sensing
// footprint.
const templateSigma = 0.6

// rasterizeLetter renders a letter's canonical strokes onto the grid.
func rasterizeLetter(grid Grid, l grammar.Letter) []float64 {
	img := make([]float64, grid.NumTags())
	for _, p := range l.Strokes {
		pts := stroke.Waypoints(p.Motion)
		// Sample densely along the polyline within the stroke's box.
		for seg := 0; seg+1 < len(pts) || len(pts) == 1; seg++ {
			a := pts[seg]
			bIdx := seg + 1
			if len(pts) == 1 {
				bIdx = seg
			}
			b := pts[bIdx]
			steps := 8
			for s := 0; s <= steps; s++ {
				u := float64(s) / float64(steps)
				x, y := p.Box.Map(a.X+(b.X-a.X)*u, a.Y+(b.Y-a.Y)*u)
				splat(grid, img, x, y)
			}
			if len(pts) == 1 {
				break
			}
		}
	}
	return img
}

// splat deposits a Gaussian bump at normalized position (x, y).
func splat(grid Grid, img []float64, x, y float64) {
	for i := range img {
		cx, cy := grid.Norm(i)
		dx := (x - cx) * float64(grid.Cols-1)
		dy := (y - cy) * float64(grid.Rows-1)
		d2 := dx*dx + dy*dy
		img[i] += math.Exp(-d2 / (2 * templateSigma * templateSigma))
	}
}

// normalizeImage zero-means and unit-norms an image for correlation.
func normalizeImage(img []float64) []float64 {
	var sum float64
	for _, v := range img {
		sum += v
	}
	mean := sum / float64(len(img))
	out := make([]float64, len(img))
	var ss float64
	for i, v := range img {
		out[i] = v - mean
		ss += out[i] * out[i]
	}
	n := math.Sqrt(ss)
	if n == 0 {
		return out
	}
	for i := range out {
		out[i] /= n
	}
	return out
}

// WholeLetterClassifier matches composite disturbance images against
// templates of the 26 letters.
type WholeLetterClassifier struct {
	grid      Grid
	letters   []rune
	templates [][]float64 // normalized
}

// NewWholeLetterClassifier rasterizes the grammar onto the given grid.
func NewWholeLetterClassifier(grid Grid) *WholeLetterClassifier {
	c := &WholeLetterClassifier{grid: grid}
	for _, l := range grammar.Alphabet() {
		c.letters = append(c.letters, l.Char)
		c.templates = append(c.templates, normalizeImage(rasterizeLetter(grid, l)))
	}
	return c
}

// Match scores a composite disturbance image against every template
// and returns the best letter with its normalized correlation in
// [-1, 1]. ok is false for a degenerate (constant) image.
func (c *WholeLetterClassifier) Match(img []float64) (ch rune, score float64, ok bool) {
	norm := normalizeImage(LogCompress(img))
	var energy float64
	for _, v := range norm {
		energy += v * v
	}
	if energy < 1e-12 {
		return 0, 0, false
	}
	best := -2.0
	for i, tpl := range c.templates {
		var corr float64
		for j := range tpl {
			corr += tpl[j] * norm[j]
		}
		if corr > best {
			best = corr
			ch = c.letters[i]
		}
	}
	return ch, best, true
}

// Ranking returns every letter ordered by descending correlation —
// useful for diagnostics and lexicon-constrained decoding.
func (c *WholeLetterClassifier) Ranking(img []float64) []rune {
	norm := normalizeImage(LogCompress(img))
	type scored struct {
		ch   rune
		corr float64
	}
	list := make([]scored, len(c.templates))
	for i, tpl := range c.templates {
		var corr float64
		for j := range tpl {
			corr += tpl[j] * norm[j]
		}
		list[i] = scored{c.letters[i], corr}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].corr > list[j].corr })
	out := make([]rune, len(list))
	for i, s := range list {
		out[i] = s.ch
	}
	return out
}

// CompositeImage sums the disturbance maps of the given spans — the
// whole-letter image §VI proposes to classify. Spans typically come
// from the segmenter; readings outside them (adjustment intervals) are
// excluded so the raised-hand transits do not smear the letter.
func (p *Pipeline) CompositeImage(readings []Reading, spans []Span) []float64 {
	img := make([]float64, p.Grid.NumTags())
	for _, sp := range spans {
		vals := DisturbanceMap(window(readings, sp.Start, sp.End), p.Cal, p.Opts)
		for i, v := range vals {
			img[i] += v
		}
	}
	return img
}

// RecognizeWholeLetter runs the §VI alternative end to end: segment
// the capture, build the composite image, and template-match it.
func (p *Pipeline) RecognizeWholeLetter(c *WholeLetterClassifier, readings []Reading, seg *Segmenter, start, end time.Duration) (rune, bool) {
	if seg == nil {
		seg = NewSegmenter()
	}
	spans := seg.Segment(readings, p.Cal, start, end)
	if len(spans) == 0 {
		return 0, false
	}
	img := p.CompositeImage(readings, spans)
	ch, _, ok := c.Match(img)
	return ch, ok
}
