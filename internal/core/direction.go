package core

import (
	"math"
	"time"

	"rfipad/internal/dsp"
	"rfipad/internal/geo"
	"rfipad/internal/stroke"
)

// Direction-estimation tuning (§III-B's two-staged RSS trough
// estimation).
const (
	// troughSmoothWidth is the moving-average width for the coarse
	// stage.
	troughSmoothWidth = 5
	// troughMinDepthDB is the minimum excursion below the series
	// median to count as a trough.
	troughMinDepthDB = 2.5
)

// TagTrough records the trough found on one foreground tag.
type TagTrough struct {
	TagIndex int
	At       time.Duration
	DepthDB  float64
}

// FindTagTroughs runs the two-stage trough estimator over the RSS
// series of the given tags and returns the troughs found, ordered by
// time — the sequence of tags the hand passed (§III-B).
func FindTagTroughs(readings []Reading, numTags int, tags []int) []TagTrough {
	series := byTag(readings, numTags)
	var out []TagTrough
	for _, i := range tags {
		if i < 0 || i >= numTags {
			continue
		}
		samples := make([]dsp.TimedSample, len(series[i]))
		for j, r := range series[i] {
			samples[j] = dsp.TimedSample{T: r.Time, V: r.RSS}
		}
		tr, ok := dsp.FindTrough(samples, troughSmoothWidth, troughMinDepthDB)
		if !ok {
			continue
		}
		out = append(out, TagTrough{TagIndex: i, At: tr.T, DepthDB: tr.Depth})
	}
	// Order by trough time.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EstimateDirection fits the hand's travel direction across the
// foreground tags from the order of their RSS troughs. It returns a
// unit direction in normalized canvas coordinates. ok is false with
// fewer than two usable troughs.
func EstimateDirection(readings []Reading, grid Grid, fgTags []int) (dir geo.Vec2, troughs []TagTrough, ok bool) {
	troughs = FindTagTroughs(readings, grid.NumTags(), fgTags)
	if len(troughs) < 2 {
		return geo.Vec2{}, troughs, false
	}
	// Depth-weighted least squares of position against trough time.
	var wSum, tMean float64
	for _, tr := range troughs {
		wSum += tr.DepthDB
		tMean += tr.DepthDB * tr.At.Seconds()
	}
	tMean /= wSum
	var xMean, yMean float64
	for _, tr := range troughs {
		x, y := grid.Norm(tr.TagIndex)
		xMean += tr.DepthDB * x
		yMean += tr.DepthDB * y
	}
	xMean /= wSum
	yMean /= wSum
	var num geo.Vec2
	var den float64
	for _, tr := range troughs {
		x, y := grid.Norm(tr.TagIndex)
		dt := tr.At.Seconds() - tMean
		num.X += tr.DepthDB * dt * (x - xMean)
		num.Y += tr.DepthDB * dt * (y - yMean)
		den += tr.DepthDB * dt * dt
	}
	if den <= 1e-12 {
		return geo.Vec2{}, troughs, false
	}
	v := geo.V2(num.X/den, num.Y/den)
	if v.Norm() < 1e-9 {
		return geo.Vec2{}, troughs, false
	}
	return v.Unit(), troughs, true
}

// arcEndpointsDirection estimates the travel direction for arcs, where
// x reverses mid-stroke: the displacement from the first to the last
// trough position.
func arcEndpointsDirection(grid Grid, troughs []TagTrough) (geo.Vec2, bool) {
	if len(troughs) < 2 {
		return geo.Vec2{}, false
	}
	x0, y0 := grid.Norm(troughs[0].TagIndex)
	x1, y1 := grid.Norm(troughs[len(troughs)-1].TagIndex)
	d := geo.V2(x1-x0, y1-y0)
	if d.Norm() < 1e-9 {
		return geo.Vec2{}, false
	}
	return d.Unit(), true
}

// DirectionFor maps an estimated travel direction onto the stroke
// vocabulary's Forward/Reverse for the given shape (the open/close
// semantics of §III-B). ok is false for shapes without direction
// (click) or an indeterminate fit.
func DirectionFor(shape stroke.Shape, dir geo.Vec2) (stroke.Direction, bool) {
	if dir.Norm() == 0 {
		return 0, false
	}
	switch shape {
	case stroke.Horizontal:
		if dir.X >= 0 {
			return stroke.Forward, true // →
		}
		return stroke.Reverse, true
	case stroke.Vertical:
		if dir.Y <= 0 {
			return stroke.Forward, true // ↓
		}
		return stroke.Reverse, true
	case stroke.SlashUp:
		// "/" forward runs from the top-right end downward.
		if dir.X+dir.Y <= 0 {
			return stroke.Forward, true
		}
		return stroke.Reverse, true
	case stroke.SlashDown:
		// "\" forward runs from the top-left end downward.
		if dir.X-dir.Y >= 0 {
			return stroke.Forward, true
		}
		return stroke.Reverse, true
	case stroke.ArcLeft, stroke.ArcRight:
		// Arcs are drawn top-to-bottom when forward.
		if dir.Y <= 0 {
			return stroke.Forward, true
		}
		return stroke.Reverse, true
	default:
		return 0, false
	}
}

// directionAngleDiff is a test helper measuring how far two unit
// directions disagree, in radians.
func directionAngleDiff(a, b geo.Vec2) float64 {
	dot := a.Dot(b)
	dot = math.Max(-1, math.Min(1, dot))
	return math.Acos(dot)
}
