package core

import (
	"testing"

	"rfipad/internal/stroke"
)

func TestComposeLetterH(t *testing.T) {
	// Strokes in canvas coordinates (a sub-area of the plate): the
	// composer must renormalize before grammar matching.
	obs := []StrokeObservation{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.2, 0.2, 0.35, 0.8)},
		{Motion: stroke.M(stroke.Horizontal, stroke.Forward), Box: stroke.R(0.2, 0.4, 0.8, 0.6)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.65, 0.2, 0.8, 0.8)},
	}
	ch, ok := ComposeLetter(obs)
	if !ok || ch != 'H' {
		t.Errorf("ComposeLetter = %q,%v, want H", ch, ok)
	}
	if ch, ok := ComposeLetterStrict(obs); !ok || ch != 'H' {
		t.Errorf("strict = %q,%v", ch, ok)
	}
}

func TestComposeLetterDvsP(t *testing.T) {
	// Identical sequences; the bowl's vertical extent decides.
	dObs := []StrokeObservation{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.3, 0.1, 0.4, 0.9)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0.35, 0.1, 0.75, 0.9)},
	}
	pObs := []StrokeObservation{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.3, 0.1, 0.4, 0.9)},
		{Motion: stroke.M(stroke.ArcRight, stroke.Forward), Box: stroke.R(0.35, 0.55, 0.75, 0.9)},
	}
	if ch, ok := ComposeLetter(dObs); !ok || ch != 'D' {
		t.Errorf("full bowl = %q,%v, want D", ch, ok)
	}
	if ch, ok := ComposeLetter(pObs); !ok || ch != 'P' {
		t.Errorf("upper bowl = %q,%v, want P", ch, ok)
	}
}

func TestComposeLetterFuzzyFallback(t *testing.T) {
	// Wrong direction on one stroke: strict fails, fuzzy recovers.
	obs := []StrokeObservation{
		{Motion: stroke.M(stroke.Horizontal, stroke.Reverse), Box: stroke.R(0.1, 0.8, 0.9, 0.95)},
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.45, 0.1, 0.55, 0.95)},
	}
	if _, ok := ComposeLetterStrict(obs); ok {
		t.Error("strict should fail on wrong direction")
	}
	ch, ok := ComposeLetter(obs)
	if !ok || ch != 'T' {
		t.Errorf("fuzzy = %q,%v, want T", ch, ok)
	}
}

func TestComposeLetterEmpty(t *testing.T) {
	if _, ok := ComposeLetter(nil); ok {
		t.Error("empty composition should fail")
	}
}

func TestNormalizeToLetterBoxDegenerate(t *testing.T) {
	// A single stroke with zero width/height must not divide by zero.
	obs := []StrokeObservation{
		{Motion: stroke.M(stroke.Vertical, stroke.Forward), Box: stroke.R(0.5, 0.2, 0.5, 0.8)},
	}
	norm := normalizeToLetterBox(obs)
	if len(norm) != 1 {
		t.Fatalf("norm len = %d", len(norm))
	}
	b := norm[0].Box
	if b.X0 != 0 || b.Y0 != 0 {
		t.Errorf("degenerate box = %+v", b)
	}
}
