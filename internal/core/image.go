package core

import (
	"math"
	"strings"

	"rfipad/internal/dsp"
)

// GridImage is the grayscale "disturbance image" of §III-A3: one pixel
// per tag, brightness = I'_i. The whiter a pixel, the more the hand
// disturbed that tag.
type GridImage struct {
	Grid Grid
	// Vals holds one value per tag, row-major.
	Vals []float64
}

// NewGridImage wraps a disturbance map (copied).
func NewGridImage(grid Grid, vals []float64) *GridImage {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return &GridImage{Grid: grid, Vals: cp}
}

// Binarize applies Otsu's method (§III-A3, [21]) to the
// range-compressed image and returns the foreground mask: true pixels
// are where the hand moved.
func (g *GridImage) Binarize() []bool { return dsp.OtsuBinarize(LogCompress(g.Vals)) }

// LogCompress maps disturbance scores through ln(1 + v/median(v)),
// a scale-invariant dynamic-range compression. The hand's disturbance
// profile falls off along a stroke (the tags at the ends see less of
// the pass than the middle), and Otsu on the raw scores can split that
// gradient, keeping only the brightest cells; compressing the range
// first keeps the whole stroke in one foreground cluster while the
// idle cells stay well below it.
func LogCompress(vals []float64) []float64 {
	m := dsp.Median(vals)
	out := make([]float64, len(vals))
	if !(m > 0) {
		copy(out, vals)
		return out
	}
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		out[i] = math.Log1p(v / m)
	}
	return out
}

// Normalized returns the image rescaled to [0,1].
func (g *GridImage) Normalized() []float64 { return dsp.Normalize(g.Vals) }

// String renders the image as ASCII art (top row = highest row index,
// matching the y-up writing orientation): ten brightness levels from
// '.' to '@'.
func (g *GridImage) String() string {
	levels := []byte(".:-=+*#%8@")
	norm := g.Normalized()
	var b strings.Builder
	for r := g.Grid.Rows - 1; r >= 0; r-- {
		for c := 0; c < g.Grid.Cols; c++ {
			v := norm[r*g.Grid.Cols+c]
			idx := int(v * float64(len(levels)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(levels) {
				idx = len(levels) - 1
			}
			b.WriteByte(levels[idx])
		}
		if r > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// MaskString renders a binary mask as ASCII art ('#' foreground,
// '.' background), top row = highest row index.
func MaskString(grid Grid, mask []bool) string {
	var b strings.Builder
	for r := grid.Rows - 1; r >= 0; r-- {
		for c := 0; c < grid.Cols; c++ {
			if mask[r*grid.Cols+c] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if r > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
