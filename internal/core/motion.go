package core

import (
	"sync"

	"rfipad/internal/geo"
	"rfipad/internal/obs"
	"rfipad/internal/stroke"
)

// MotionResult is the full output of recognizing one stroke window.
type MotionResult struct {
	// Motion is the recognized motion (shape + direction).
	Motion stroke.Motion
	// Box is the stroke's bounding box in normalized canvas
	// coordinates.
	Box stroke.Rect
	// CenterX, CenterY is the intensity-weighted centroid — the
	// position information the letter composer uses for
	// disambiguation (§III-C2).
	CenterX, CenterY float64
	// Image is the grayscale disturbance image (Fig. 7b).
	Image *GridImage
	// Mask is the Otsu foreground (Fig. 7c).
	Mask []bool
	// Troughs are the per-tag RSS troughs, in time order.
	Troughs []TagTrough
	// TravelDir is the fitted hand travel direction (unit, normalized
	// canvas coordinates); zero when unavailable.
	TravelDir geo.Vec2
	// DirectionOK reports whether the direction came from RSS troughs
	// (false means the default Forward was assumed).
	DirectionOK bool
	// Ok is false when the window contained no recognizable motion.
	Ok bool
}

// Pipeline bundles the recognition configuration shared across
// windows: the grid, the calibration, and the suppression options.
type Pipeline struct {
	Grid Grid
	Cal  *Calibration
	Opts DisturbanceOptions
	// Obs selects the metrics registry stage latencies land in (nil =
	// obs.Default()). Set it before the first RecognizeWindow call.
	Obs *obs.Registry

	telOnce sync.Once
	tel     *pipelineTel
	// scratch pools DisturbanceScratch buffers: Pipelines are shared
	// across goroutines by the experiment harness and the engine's
	// shards each drive their own windows, so per-window workspaces
	// are pooled rather than owned.
	scratch sync.Pool
}

// NewPipeline builds a recognition pipeline with full diversity
// suppression.
func NewPipeline(grid Grid, cal *Calibration) *Pipeline {
	return &Pipeline{Grid: grid, Cal: cal}
}

// telemetry resolves the stage instruments once (Pipelines are shared
// across goroutines by the experiment harness).
func (p *Pipeline) telemetry() *pipelineTel {
	p.telOnce.Do(func() { p.tel = newPipelineTel(p.Obs) })
	return p.tel
}

// RecognizeWindow runs the §III pipeline over one stroke window's
// readings: disturbance map → grayscale image → Otsu → shape
// classification → RSS direction estimation.
func (p *Pipeline) RecognizeWindow(readings []Reading) MotionResult {
	tel := p.telemetry()
	tel.windows.Inc()

	sc, _ := p.scratch.Get().(*DisturbanceScratch)
	if sc == nil {
		sc = &DisturbanceScratch{}
	}
	defer p.scratch.Put(sc)

	span := obs.StartTimer(tel.disturbance)
	vals := sc.Map(readings, p.Cal, p.Opts)
	// Fill cells of dead (uncalibrated) tags from live neighbors so a
	// stroke crossing a hole in the array stays one bright region.
	vals = InterpolateDead(p.Grid, vals, p.Cal.Dead)
	img := NewGridImage(p.Grid, vals)
	span.End()
	if n := p.Cal.DeadCount(); n > 0 {
		tel.interpolated.Add(uint64(n))
	}

	span = obs.StartTimer(tel.classify)
	// Otsu runs on the range-compressed image so a stroke's intensity
	// gradient stays in one foreground cluster; the geometric
	// classifier weights cells by the raw scores so residual noise
	// cells in the mask barely deflect the fit.
	mask := LargestComponent(p.Grid, img.Binarize(), vals)
	shape := ClassifyShapeDegraded(p.Grid, vals, mask, p.Cal.Dead)
	span.End()
	if !shape.Ok {
		return MotionResult{Image: img, Mask: mask}
	}

	res := MotionResult{
		Box:     shape.Box,
		CenterX: shape.CenterX,
		CenterY: shape.CenterY,
		Image:   img,
		Mask:    mask,
		Ok:      true,
	}

	span = obs.StartTimer(tel.direction)
	if shape.Shape == stroke.Click {
		res.Motion = stroke.M(stroke.Click, 0)
		res.Troughs = FindTagTroughs(readings, p.Grid.NumTags(), shape.Cells)
		span.End()
		return res
	}

	dir, troughs, dirOK := EstimateDirection(readings, p.Grid, shape.Cells)
	if shape.Shape == stroke.ArcLeft || shape.Shape == stroke.ArcRight {
		// Arcs reverse course in x; endpoint displacement is the
		// robust direction cue.
		if d, ok := arcEndpointsDirection(p.Grid, troughs); ok {
			dir, dirOK = d, true
		}
	}
	span.End()
	res.Troughs = troughs
	res.TravelDir = dir

	// Position refinement (§III-C2: stroke positions come from tag
	// IDs): the RSS troughs mark the tags the hand actually passed —
	// a much tighter footprint than the phase disturbance, which
	// bleeds a cell past the trail. With enough troughs, they define
	// the stroke's box and centroid.
	if len(troughs) >= 3 {
		minX, minY := 2.0, 2.0
		maxX, maxY := -1.0, -1.0
		var wSum, cx, cy float64
		for _, tr := range troughs {
			x, y := p.Grid.Norm(tr.TagIndex)
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			wSum += tr.DepthDB
			cx += tr.DepthDB * x
			cy += tr.DepthDB * y
		}
		padX, padY := 0.0, 0.0
		if p.Grid.Cols > 1 {
			padX = 0.5 / float64(p.Grid.Cols-1)
		}
		if p.Grid.Rows > 1 {
			padY = 0.5 / float64(p.Grid.Rows-1)
		}
		res.Box = stroke.R(
			max(0, minX-padX), max(0, minY-padY),
			min(1, maxX+padX), min(1, maxY+padY),
		)
		res.CenterX = cx / wSum
		res.CenterY = cy / wSum
	}

	d := stroke.Forward
	if dirOK {
		if sd, ok := DirectionFor(shape.Shape, dir); ok {
			d = sd
			res.DirectionOK = true
		}
	}
	res.Motion = stroke.M(shape.Shape, d)
	return res
}
