package core

import (
	"time"

	"rfipad/internal/obs"
)

// EventKind tags streaming recognizer outputs.
type EventKind int

// Event kinds.
const (
	// StrokeDetected is emitted once per recognized stroke.
	StrokeDetected EventKind = iota + 1
	// LetterDeduced is emitted when a quiet period closes a letter.
	LetterDeduced
)

// Event is one streaming recognition output.
type Event struct {
	Kind EventKind
	// At is the stream time the event was emitted.
	At time.Duration
	// Stroke carries the recognition result for StrokeDetected.
	Stroke MotionResult
	// Span is the detected stroke interval for StrokeDetected.
	Span Span
	// Letter carries the deduced character for LetterDeduced.
	Letter rune
	// LetterOK reports whether the composition succeeded.
	LetterOK bool
	// Strokes lists the observations composed into the letter.
	Strokes []StrokeObservation
}

// Recognizer is the online engine: feed it readings as the reader
// reports them and it emits stroke and letter events. It underlies the
// "realtime reaction" requirement of §I and the response-time
// evaluation of §V-D.
type Recognizer struct {
	pipeline *Pipeline
	seg      *Segmenter
	tel      *recognizerTel

	// ConfirmGap is how long the stream must stay quiet past a span's
	// end before the span is considered closed (one segmentation
	// window by default).
	ConfirmGap time.Duration
	// LetterGap is the quiet period that finalizes a letter.
	LetterGap time.Duration

	buf      []Reading
	bufStart time.Duration
	now      time.Duration
	// emittedEnd is the end time of the last recognized span; spans
	// starting before it are re-detections of already-emitted strokes
	// (segment boundaries shift slightly as the buffer grows).
	emittedEnd time.Duration
	pending    []StrokeObservation
	lastStroke time.Duration
}

// NewRecognizer builds a streaming recognizer.
func NewRecognizer(p *Pipeline, seg *Segmenter) *Recognizer {
	if seg == nil {
		seg = NewSegmenter()
	}
	return &Recognizer{
		pipeline:   p,
		seg:        seg,
		tel:        newRecognizerTel(p.Obs),
		ConfirmGap: time.Duration(seg.WindowFrames) * seg.FrameLen,
		// The letter gap must exceed the longest inter-stroke
		// adjustment interval (~2 s for a slow writer).
		LetterGap: 2500 * time.Millisecond,
	}
}

// Ingest feeds one reading and returns any events it triggered.
// Readings should arrive roughly in time order, but the recognizer
// tolerates what a reconnecting transport produces: exact duplicates
// (same tag, same timestamp — replay overlap or a duplicated report
// frame) are dropped, and modestly out-of-order readings are inserted
// at their correct position so the per-tag phase series stay
// monotonic. Readings older than the already-trimmed history are
// discarded.
func (r *Recognizer) Ingest(rd Reading) []Event {
	r.tel.readings.Inc()
	if rd.Time > r.now {
		r.now = rd.Time
	}
	if rd.Time < r.bufStart {
		// Too late: this history was already recognized and trimmed.
		r.tel.late.Inc()
		return nil
	}
	// Find the insertion point from the end — O(1) for in-order
	// streams, a short walk for transport-reordered ones.
	i := len(r.buf)
	for i > 0 && r.buf[i-1].Time > rd.Time {
		i--
	}
	// Duplicate check: entries with the same timestamp sit immediately
	// before the insertion point.
	for j := i; j > 0 && r.buf[j-1].Time == rd.Time; j-- {
		if r.buf[j-1].TagIndex == rd.TagIndex {
			r.tel.dupes.Inc()
			return nil
		}
	}
	if i == len(r.buf) {
		r.buf = append(r.buf, rd)
	} else {
		r.tel.reordered.Inc()
		r.buf = append(r.buf, Reading{})
		copy(r.buf[i+1:], r.buf[i:])
		r.buf[i] = rd
	}
	return r.poll(r.now)
}

// Flush declares the stream over at the given time, forcing any
// pending stroke and letter out.
func (r *Recognizer) Flush(at time.Duration) []Event {
	if at < r.now {
		at = r.now
	}
	// Push the horizon far enough that every span closes.
	events := r.poll(at + r.ConfirmGap + time.Millisecond)
	if len(r.pending) > 0 {
		events = append(events, r.finishLetter(at)...)
	}
	return events
}

// streamWarmup is how much buffered context segmentation needs before
// its adaptive thresholds are trustworthy; earlier polls are skipped.
const streamWarmup = 2 * time.Second

// minPreContext is the quiet lead a span must have inside the buffer:
// a real stroke is always preceded by a lead-in or adjustment interval,
// while threshold artefacts hug the buffer edge.
const minPreContext = 800 * time.Millisecond

// historyKeep is how much recognized history stays in the buffer after
// a letter is finalized, anchoring the adaptive segmentation
// thresholds for the next one.
const historyKeep = 8 * time.Second

// poll re-segments the buffer and emits every newly closed span, plus
// a letter when the quiet gap has elapsed and nothing is in progress.
func (r *Recognizer) poll(horizon time.Duration) []Event {
	if horizon-r.bufStart < streamWarmup {
		return nil
	}
	var events []Event
	segSpan := obs.StartTimer(r.tel.segment)
	spans := r.seg.Segment(r.buf, r.pipeline.Cal, r.bufStart, horizon)
	segSpan.End()
	openSpan := false
	for _, sp := range spans {
		// Skip re-detections of spans already recognized: boundaries
		// wobble by a frame or two as context accumulates.
		if sp.Start < r.emittedEnd-2*r.seg.FrameLen {
			continue
		}
		if sp.Start-r.bufStart < minPreContext {
			continue
		}
		if sp.End+r.ConfirmGap > horizon {
			openSpan = true
			break // still open: more data may extend it
		}
		res := r.pipeline.RecognizeWindow(window(r.buf, sp.Start, sp.End))
		r.emittedEnd = sp.End
		r.lastStroke = sp.End
		if !res.Ok {
			continue
		}
		r.tel.strokes.Inc()
		r.pending = append(r.pending, StrokeObservation{Motion: res.Motion, Box: res.Box, CenterX: res.CenterX, CenterY: res.CenterY})
		events = append(events, Event{
			Kind:   StrokeDetected,
			At:     horizon,
			Stroke: res,
			Span:   sp,
		})
	}
	if len(r.pending) > 0 && !openSpan && horizon-r.lastStroke >= r.LetterGap {
		events = append(events, r.finishLetter(horizon)...)
	}
	return events
}

// finishLetter composes the pending strokes and resets for the next
// letter.
func (r *Recognizer) finishLetter(at time.Duration) []Event {
	span := obs.StartTimer(r.tel.grammar)
	ch, ok := ComposeLetter(r.pending)
	span.End()
	r.tel.letters.Inc()
	ev := Event{
		Kind:     LetterDeduced,
		At:       at,
		Letter:   ch,
		LetterOK: ok,
		Strokes:  r.pending,
	}
	// Trim old history so the buffer stays bounded, but keep several
	// seconds before the cut: the segmenter's adaptive thresholds need
	// real strokes in context, or quiet-period ripple right after a
	// letter would read as activity.
	cut := r.lastStroke - historyKeep
	if cut > r.bufStart {
		var kept []Reading
		for _, rd := range r.buf {
			if rd.Time >= cut {
				kept = append(kept, rd)
			}
		}
		r.buf = kept
		r.bufStart = cut
	}
	r.pending = nil
	return []Event{ev}
}
