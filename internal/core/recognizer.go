package core

import (
	"sort"
	"time"

	"rfipad/internal/obs"
)

// EventKind tags streaming recognizer outputs.
type EventKind int

// Event kinds.
const (
	// StrokeDetected is emitted once per recognized stroke.
	StrokeDetected EventKind = iota + 1
	// LetterDeduced is emitted when a quiet period closes a letter.
	LetterDeduced
)

// Event is one streaming recognition output.
type Event struct {
	Kind EventKind
	// At is the stream time the event was emitted.
	At time.Duration
	// Stroke carries the recognition result for StrokeDetected.
	Stroke MotionResult
	// Span is the detected stroke interval for StrokeDetected.
	Span Span
	// Letter carries the deduced character for LetterDeduced.
	Letter rune
	// LetterOK reports whether the composition succeeded.
	LetterOK bool
	// Strokes lists the observations composed into the letter.
	Strokes []StrokeObservation
}

// Recognizer is the online engine: feed it readings as the reader
// reports them and it emits stroke and letter events. It underlies the
// "realtime reaction" requirement of §I and the response-time
// evaluation of §V-D.
//
// The per-reading hot path is amortized O(1): each accepted reading
// folds into an incremental per-frame statistics cache (segCache), and
// full segmentation runs only when the stream crosses a frame boundary
// — never per reading — over cached frame values instead of the raw
// buffer. Steady-state ingest allocates nothing once the buffers reach
// their high-water marks; the history buffer trims in place and every
// segmentation workspace is recognizer-owned scratch.
type Recognizer struct {
	pipeline *Pipeline
	seg      *Segmenter
	tel      *recognizerTel

	// ConfirmGap is how long the stream must stay quiet past a span's
	// end before the span is considered closed (one segmentation
	// window by default).
	ConfirmGap time.Duration
	// LetterGap is the quiet period that finalizes a letter.
	LetterGap time.Duration

	// buf holds the retained history in time order; buf[head:] is the
	// live window. Trims advance head and compact in place once half
	// the backing array is dead, so steady-state ingest reuses one
	// allocation.
	buf      []Reading
	head     int
	bufStart time.Duration
	now      time.Duration

	cache         *segCache
	scratch       segScratch
	lastPollFrame int64

	// emittedEnd is the end time of the last recognized span; spans
	// starting before it are re-detections of already-emitted strokes
	// (segment boundaries shift slightly as the buffer grows).
	emittedEnd time.Duration
	pending    []StrokeObservation
	lastStroke time.Duration
}

// NewRecognizer builds a streaming recognizer. The segmenter's frame
// geometry is captured at construction; mutate seg before, not after.
func NewRecognizer(p *Pipeline, seg *Segmenter) *Recognizer {
	if seg == nil {
		seg = NewSegmenter()
	}
	return &Recognizer{
		pipeline:   p,
		seg:        seg,
		tel:        newRecognizerTel(p.Obs),
		cache:      newSegCache(seg.FrameLen, p.Cal),
		ConfirmGap: time.Duration(seg.WindowFrames) * seg.FrameLen,
		// The letter gap must exceed the longest inter-stroke
		// adjustment interval (~2 s for a slow writer).
		LetterGap:     2500 * time.Millisecond,
		lastPollFrame: -1,
	}
}

// SkipTo fast-forwards an empty recognizer to stream time t (aligned
// down to a frame boundary): history before t is treated as already
// recognized and trimmed, so readings older than t are dropped as
// late. It is how a restored stream resumes at its checkpointed frame
// cursor without replaying the prelude. No-op once readings have been
// ingested or when t is not ahead of the current history start.
func (r *Recognizer) SkipTo(t time.Duration) {
	t -= t % r.seg.FrameLen
	if len(r.buf) != 0 || t <= r.bufStart {
		return
	}
	r.bufStart = t
	r.now = t
	r.emittedEnd = t
	r.lastPollFrame = int64(t / r.seg.FrameLen)
	r.cache.skipTo(t)
}

// FrameCursor returns the frame-aligned stream time a checkpoint
// should resume recognition from: the newest complete frame boundary.
func (r *Recognizer) FrameCursor() time.Duration {
	return r.now - r.now%r.seg.FrameLen
}

// Ingest feeds one reading and returns any events it triggered.
// Readings should arrive roughly in time order, but the recognizer
// tolerates what a reconnecting transport produces: exact duplicates
// (same tag, same timestamp — replay overlap or a duplicated report
// frame) are dropped, and modestly out-of-order readings are inserted
// at their correct position so the per-tag phase series stay
// monotonic. Readings older than the already-trimmed history are
// discarded.
func (r *Recognizer) Ingest(rd Reading) []Event {
	r.tel.readings.Inc()
	if rd.Time > r.now {
		r.now = rd.Time
	}
	if rd.Time < r.bufStart {
		// Too late: this history was already recognized and trimmed.
		r.tel.late.Inc()
		return nil
	}
	live := r.buf[r.head:]
	// Find the insertion point from the end — O(1) for in-order
	// streams, a short walk for transport-reordered ones.
	i := len(live)
	for i > 0 && live[i-1].Time > rd.Time {
		i--
	}
	// Duplicate check: entries with the same timestamp sit immediately
	// before the insertion point.
	for j := i; j > 0 && live[j-1].Time == rd.Time; j-- {
		if live[j-1].TagIndex == rd.TagIndex {
			r.tel.dupes.Inc()
			return nil
		}
	}
	if i == len(live) {
		r.buf = append(r.buf, rd)
	} else {
		r.tel.reordered.Inc()
		r.buf = append(r.buf, Reading{})
		live = r.buf[r.head:]
		copy(live[i+1:], live[i:])
		live[i] = rd
	}
	r.cache.add(rd)
	// Throttle segmentation to frame boundaries: between two
	// boundaries every poll would see the identical complete-frame
	// trace, so re-running it per reading only burns cycles. Late
	// (reordered) readings dirty their old frame in the cache and are
	// picked up at the next boundary.
	pf := int64(r.now / r.seg.FrameLen)
	if pf == r.lastPollFrame {
		return nil
	}
	r.lastPollFrame = pf
	return r.poll(r.now)
}

// Flush declares the stream over at the given time, forcing any
// pending stroke and letter out.
func (r *Recognizer) Flush(at time.Duration) []Event {
	if at < r.now {
		at = r.now
	}
	// Push the horizon far enough that every span closes, bypassing
	// the frame-boundary throttle.
	horizon := at + r.ConfirmGap + time.Millisecond
	r.lastPollFrame = int64(horizon / r.seg.FrameLen)
	events := r.poll(horizon)
	if len(r.pending) > 0 {
		events = append(events, r.finishLetter(at)...)
	}
	return events
}

// streamWarmup is how much buffered context segmentation needs before
// its adaptive thresholds are trustworthy; earlier polls are skipped.
const streamWarmup = 2 * time.Second

// minPreContext is the quiet lead a span must have inside the buffer:
// a real stroke is always preceded by a lead-in or adjustment interval,
// while threshold artefacts hug the buffer edge.
const minPreContext = 800 * time.Millisecond

// historyKeep is how much recognized history stays in the buffer after
// a letter is finalized, anchoring the adaptive segmentation
// thresholds for the next one. A long-quiet stream is trimmed to the
// same depth, so the buffer stays bounded even when nobody writes.
const historyKeep = 8 * time.Second

// poll re-segments the cached frame trace and emits every newly closed
// span, plus a letter when the quiet gap has elapsed and nothing is in
// progress.
func (r *Recognizer) poll(horizon time.Duration) []Event {
	if horizon-r.bufStart < streamWarmup {
		return nil
	}
	var events []Event
	segSpan := obs.StartTimer(r.tel.segment)
	rms := r.cache.values(horizon)
	spans := r.seg.segmentRMS(rms, r.bufStart, &r.scratch)
	segSpan.End()
	openSpan := false
	var lastSpanEnd time.Duration
	for _, sp := range spans {
		if sp.End > lastSpanEnd {
			lastSpanEnd = sp.End
		}
		// Skip re-detections of spans already recognized: boundaries
		// wobble by a frame or two as context accumulates.
		if sp.Start < r.emittedEnd-2*r.seg.FrameLen {
			continue
		}
		if sp.Start-r.bufStart < minPreContext {
			continue
		}
		if sp.End+r.ConfirmGap > horizon {
			openSpan = true
			break // still open: more data may extend it
		}
		res := r.pipeline.RecognizeWindow(r.window(sp.Start, sp.End))
		r.emittedEnd = sp.End
		r.lastStroke = sp.End
		if !res.Ok {
			continue
		}
		r.tel.strokes.Inc()
		r.pending = append(r.pending, StrokeObservation{Motion: res.Motion, Box: res.Box, CenterX: res.CenterX, CenterY: res.CenterY})
		events = append(events, Event{
			Kind:   StrokeDetected,
			At:     horizon,
			Stroke: res,
			Span:   sp,
		})
	}
	if len(r.pending) > 0 && !openSpan && horizon-r.lastStroke >= r.LetterGap {
		events = append(events, r.finishLetter(horizon)...)
	} else if len(r.pending) == 0 && !openSpan {
		// Quiet-stream housekeeping: with no letter in progress the
		// only trim trigger used to be finishLetter, so an idle stream
		// grew its buffer forever. Trim to the same historyKeep depth a
		// letter leaves, but only when everything being dropped is
		// quiet (no span — detected, emitted, or skipped — reaches past
		// the cut), so the adaptive thresholds keep their context.
		cut := horizon - historyKeep
		if cut > r.bufStart && lastSpanEnd < cut && r.emittedEnd < cut && r.lastStroke < cut {
			r.trimTo(cut)
		}
	}
	return events
}

// window returns the retained readings with Time in [start, end). The
// history is time-sorted, so the window is one contiguous subslice —
// no copy. It aliases the recognizer's buffer and is only valid until
// the next Ingest.
func (r *Recognizer) window(start, end time.Duration) []Reading {
	live := r.buf[r.head:]
	lo := sort.Search(len(live), func(i int) bool { return live[i].Time >= start })
	hi := lo + sort.Search(len(live[lo:]), func(i int) bool { return live[lo+i].Time >= end })
	return live[lo:hi]
}

// trimTo discards history before cut (aligned down to a frame
// boundary so the cache's frame grid never shifts): the buffer head
// advances and compacts in place with copy once half the backing array
// is dead, reusing the existing allocation instead of re-growing a
// fresh slice per letter.
func (r *Recognizer) trimTo(cut time.Duration) {
	cut -= cut % r.seg.FrameLen
	if cut <= r.bufStart {
		return
	}
	live := r.buf[r.head:]
	r.head += sort.Search(len(live), func(i int) bool { return live[i].Time >= cut })
	if r.head > len(r.buf)/2 {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
	r.bufStart = cut
	r.cache.trimTo(cut)
}

// finishLetter composes the pending strokes and resets for the next
// letter.
func (r *Recognizer) finishLetter(at time.Duration) []Event {
	span := obs.StartTimer(r.tel.grammar)
	ch, ok := ComposeLetter(r.pending)
	span.End()
	r.tel.letters.Inc()
	ev := Event{
		Kind:     LetterDeduced,
		At:       at,
		Letter:   ch,
		LetterOK: ok,
		Strokes:  r.pending,
	}
	// Trim old history so the buffer stays bounded, but keep several
	// seconds before the cut: the segmenter's adaptive thresholds need
	// real strokes in context, or quiet-period ripple right after a
	// letter would read as activity.
	r.trimTo(r.lastStroke - historyKeep)
	r.pending = nil
	return []Event{ev}
}
