package core

import (
	"sort"
	"time"

	"rfipad/internal/obs"
)

// EventKind tags streaming recognizer outputs.
type EventKind int

// Event kinds.
const (
	// StrokeDetected is emitted once per recognized stroke.
	StrokeDetected EventKind = iota + 1
	// LetterDeduced is emitted when a quiet period closes a letter.
	LetterDeduced
)

// Event is one streaming recognition output.
type Event struct {
	Kind EventKind
	// At is the stream time the event was emitted.
	At time.Duration
	// Stroke carries the recognition result for StrokeDetected.
	Stroke MotionResult
	// Span is the detected stroke interval for StrokeDetected.
	Span Span
	// Letter carries the deduced character for LetterDeduced.
	Letter rune
	// LetterOK reports whether the composition succeeded.
	LetterOK bool
	// Strokes lists the observations composed into the letter.
	Strokes []StrokeObservation
}

// Recognizer is the online engine: feed it readings as the reader
// reports them and it emits stroke and letter events. It underlies the
// "realtime reaction" requirement of §I and the response-time
// evaluation of §V-D.
//
// The hot path is columnar: IngestBatch consumes a ReadingBatch
// (struct-of-arrays) and bulk-appends every strictly-in-order run with
// four copy calls, folding the run into the incremental per-frame
// statistics cache (segCache) in one column sweep. Full segmentation
// runs only when the stream crosses a frame boundary — never per
// reading — over cached frame values, and the segmenter's window stds
// are themselves maintained incrementally between polls. The
// per-reading Ingest survives as a thin wrapper over a one-element
// batch, so both entry points share one code path and emit identical
// events. Steady-state ingest allocates nothing once the buffers reach
// their high-water marks; the history columns trim in place and every
// segmentation workspace is recognizer-owned scratch.
type Recognizer struct {
	pipeline *Pipeline
	seg      *Segmenter
	tel      *recognizerTel

	// ConfirmGap is how long the stream must stay quiet past a span's
	// end before the span is considered closed (one segmentation
	// window by default).
	ConfirmGap time.Duration
	// LetterGap is the quiet period that finalizes a letter.
	LetterGap time.Duration

	// hist holds the retained history as time-ordered columns;
	// indices [head, hist.Len()) are the live window. Trims advance
	// head and compact in place once half the backing arrays are dead,
	// so steady-state ingest reuses one set of allocations.
	hist     ReadingBatch
	head     int
	bufStart time.Duration
	now      time.Duration

	cache         *segCache
	scratch       segScratch
	lastPollFrame int64

	// winScratch is the materialized []Reading view handed to
	// RecognizeWindow — rebuilt per detected stroke, never on the
	// per-reading path. EPC/Doppler are zero; the pipeline reads
	// neither.
	winScratch []Reading
	// scalarBatch is the reused one-element batch behind Ingest.
	scalarBatch ReadingBatch

	// emittedEnd is the end time of the last recognized span; spans
	// starting before it are re-detections of already-emitted strokes
	// (segment boundaries shift slightly as the buffer grows).
	emittedEnd time.Duration
	pending    []StrokeObservation
	lastStroke time.Duration
}

// NewRecognizer builds a streaming recognizer. The segmenter's frame
// geometry is captured at construction; mutate seg before, not after.
func NewRecognizer(p *Pipeline, seg *Segmenter) *Recognizer {
	if seg == nil {
		seg = NewSegmenter()
	}
	return &Recognizer{
		pipeline:   p,
		seg:        seg,
		tel:        newRecognizerTel(p.Obs),
		cache:      newSegCache(seg.FrameLen, p.Cal),
		ConfirmGap: time.Duration(seg.WindowFrames) * seg.FrameLen,
		// The letter gap must exceed the longest inter-stroke
		// adjustment interval (~2 s for a slow writer).
		LetterGap:     2500 * time.Millisecond,
		lastPollFrame: -1,
	}
}

// SkipTo fast-forwards an empty recognizer to stream time t (aligned
// down to a frame boundary): history before t is treated as already
// recognized and trimmed, so readings older than t are dropped as
// late. It is how a restored stream resumes at its checkpointed frame
// cursor without replaying the prelude. No-op once readings have been
// ingested or when t is not ahead of the current history start.
func (r *Recognizer) SkipTo(t time.Duration) {
	t -= t % r.seg.FrameLen
	if r.hist.Len() != 0 || t <= r.bufStart {
		return
	}
	r.bufStart = t
	r.now = t
	r.emittedEnd = t
	r.lastPollFrame = int64(t / r.seg.FrameLen)
	r.cache.skipTo(t)
}

// FrameCursor returns the frame-aligned stream time a checkpoint
// should resume recognition from: the newest complete frame boundary.
func (r *Recognizer) FrameCursor() time.Duration {
	return r.now - r.now%r.seg.FrameLen
}

// Ingest feeds one reading and returns any events it triggered. It is
// a thin compatibility wrapper over a one-element IngestBatch, so the
// scalar and columnar entry points share one implementation and one
// behavior: exact duplicates (same tag, same timestamp — replay
// overlap or a duplicated report frame) are dropped, modestly
// out-of-order readings are inserted at their correct position so the
// per-tag phase series stay monotonic, and readings older than the
// already-trimmed history are discarded.
func (r *Recognizer) Ingest(rd Reading) []Event {
	b := &r.scalarBatch
	b.Reset()
	b.AppendReading(rd)
	return r.IngestBatch(b)
}

// IngestBatch feeds a columnar batch of readings and returns every
// event they triggered, concatenated in emission order. The batch is
// only read — never retained — so the caller may Reset and reuse it as
// soon as IngestBatch returns. Readings should arrive roughly in time
// order; the recognizer tolerates what a reconnecting transport
// produces, with element-for-element the same accept/drop decisions,
// poll timing, and events as feeding the batch through Ingest one
// reading at a time.
//
// The hot path is the maximal strictly-increasing run that extends the
// history tail: it is appended with four bulk column copies and folded
// into the frame cache in one column sweep, with the segmentation poll
// fired at exactly the frame crossings the scalar path would fire it.
// Out-of-order, duplicate, and late readings fall back to a per-element
// path that mirrors the scalar logic.
func (r *Recognizer) IngestBatch(b *ReadingBatch) []Event {
	n := b.Len()
	if n == 0 {
		return nil
	}
	var events []Event
	var late, dupes, reordered uint64
	frameLen := r.seg.FrameLen
	times, phases, rss, tags := b.Times, b.Phases, b.RSS, b.TagIndices
	i := 0
	for i < n {
		t := times[i]
		histLen := r.hist.Len()
		inOrder := false
		if histLen == r.head {
			inOrder = t >= r.bufStart
		} else {
			inOrder = t > r.hist.Times[histLen-1]
		}
		if inOrder {
			// Poll gate: processing a reading whose time falls outside
			// [gateLo, gateHi) crosses a frame boundary and polls right
			// after that reading, exactly as the scalar path does. For
			// non-negative times, t outside the gate ⇔
			// int64(t/FrameLen) != lastPollFrame, without the division.
			gateLo := time.Duration(r.lastPollFrame) * frameLen
			gateHi := gateLo + frameLen
			j := i
			crossed := false
			for {
				tj := times[j]
				j++
				if tj >= gateHi || tj < gateLo {
					crossed = true
					break
				}
				if j >= n || times[j] <= tj {
					break
				}
			}
			r.hist.appendColumns(times[i:j], phases[i:j], rss[i:j], tags[i:j])
			r.cache.addColumns(times[i:j], phases[i:j], tags[i:j])
			// The run is strictly increasing and starts at or past both
			// bufStart and the history tail, so its last time is the new
			// stream high-water mark.
			if last := times[j-1]; last > r.now {
				r.now = last
			}
			if crossed {
				r.lastPollFrame = int64(r.now / frameLen)
				events = append(events, r.poll(r.now)...)
			}
			i = j
			continue
		}

		// Per-element path: late, duplicate, equal-time, or
		// out-of-order readings, handled exactly as the scalar
		// recognizer always has.
		if t > r.now {
			r.now = t
		}
		if t < r.bufStart {
			// Too late: this history was already recognized and trimmed.
			late++
			i++
			continue
		}
		liveTimes := r.hist.Times[r.head:]
		// Find the insertion point from the end — O(1) for in-order
		// streams, a short walk for transport-reordered ones.
		idx := len(liveTimes)
		for idx > 0 && liveTimes[idx-1] > t {
			idx--
		}
		// Duplicate check: entries with the same timestamp sit
		// immediately before the insertion point.
		tag := tags[i]
		dup := false
		for k := idx; k > 0 && liveTimes[k-1] == t; k-- {
			if r.hist.TagIndices[r.head+k-1] == tag {
				dup = true
				break
			}
		}
		if dup {
			dupes++
			i++
			continue
		}
		if idx == len(liveTimes) {
			r.hist.Append(t, phases[i], rss[i], tag)
		} else {
			reordered++
			r.hist.insertAt(r.head, idx, t, phases[i], rss[i], tag)
		}
		r.cache.add(Reading{TagIndex: int(tag), Time: t, Phase: phases[i], RSS: rss[i]})
		// Throttle segmentation to frame boundaries: between two
		// boundaries every poll would see the identical complete-frame
		// trace, so re-running it per reading only burns cycles. Late
		// (reordered) readings dirty their old frame in the cache and
		// are picked up at the next boundary.
		if pf := int64(r.now / frameLen); pf != r.lastPollFrame {
			r.lastPollFrame = pf
			events = append(events, r.poll(r.now)...)
		}
		i++
	}
	r.tel.readings.Add(uint64(n))
	if late > 0 {
		r.tel.late.Add(late)
	}
	if dupes > 0 {
		r.tel.dupes.Add(dupes)
	}
	if reordered > 0 {
		r.tel.reordered.Add(reordered)
	}
	return events
}

// Flush declares the stream over at the given time, forcing any
// pending stroke and letter out.
func (r *Recognizer) Flush(at time.Duration) []Event {
	if at < r.now {
		at = r.now
	}
	// Push the horizon far enough that every span closes, bypassing
	// the frame-boundary throttle.
	horizon := at + r.ConfirmGap + time.Millisecond
	r.lastPollFrame = int64(horizon / r.seg.FrameLen)
	events := r.poll(horizon)
	if len(r.pending) > 0 {
		events = append(events, r.finishLetter(at)...)
	}
	return events
}

// streamWarmup is how much buffered context segmentation needs before
// its adaptive thresholds are trustworthy; earlier polls are skipped.
const streamWarmup = 2 * time.Second

// minPreContext is the quiet lead a span must have inside the buffer:
// a real stroke is always preceded by a lead-in or adjustment interval,
// while threshold artefacts hug the buffer edge.
const minPreContext = 800 * time.Millisecond

// historyKeep is how much recognized history stays in the buffer after
// a letter is finalized, anchoring the adaptive segmentation
// thresholds for the next one. A long-quiet stream is trimmed to the
// same depth, so the buffer stays bounded even when nobody writes.
const historyKeep = 8 * time.Second

// poll re-segments the cached frame trace and emits every newly closed
// span, plus a letter when the quiet gap has elapsed and nothing is in
// progress.
func (r *Recognizer) poll(horizon time.Duration) []Event {
	if horizon-r.bufStart < streamWarmup {
		return nil
	}
	var events []Event
	segSpan := obs.StartTimer(r.tel.segment)
	rms, changed := r.cache.valuesSince(horizon)
	spans := r.seg.segmentRMSFrom(rms, r.bufStart, &r.scratch, changed)
	segSpan.End()
	openSpan := false
	var lastSpanEnd time.Duration
	for _, sp := range spans {
		if sp.End > lastSpanEnd {
			lastSpanEnd = sp.End
		}
		// Skip re-detections of spans already recognized: boundaries
		// wobble by a frame or two as context accumulates.
		if sp.Start < r.emittedEnd-2*r.seg.FrameLen {
			continue
		}
		if sp.Start-r.bufStart < minPreContext {
			continue
		}
		if sp.End+r.ConfirmGap > horizon {
			openSpan = true
			break // still open: more data may extend it
		}
		res := r.pipeline.RecognizeWindow(r.window(sp.Start, sp.End))
		r.emittedEnd = sp.End
		r.lastStroke = sp.End
		if !res.Ok {
			continue
		}
		r.tel.strokes.Inc()
		r.pending = append(r.pending, StrokeObservation{Motion: res.Motion, Box: res.Box, CenterX: res.CenterX, CenterY: res.CenterY})
		events = append(events, Event{
			Kind:   StrokeDetected,
			At:     horizon,
			Stroke: res,
			Span:   sp,
		})
	}
	if len(r.pending) > 0 && !openSpan && horizon-r.lastStroke >= r.LetterGap {
		events = append(events, r.finishLetter(horizon)...)
	} else if len(r.pending) == 0 && !openSpan {
		// Quiet-stream housekeeping: with no letter in progress the
		// only trim trigger used to be finishLetter, so an idle stream
		// grew its buffer forever. Trim to the same historyKeep depth a
		// letter leaves, but only when everything being dropped is
		// quiet (no span — detected, emitted, or skipped — reaches past
		// the cut), so the adaptive thresholds keep their context.
		cut := horizon - historyKeep
		if cut > r.bufStart && lastSpanEnd < cut && r.emittedEnd < cut && r.lastStroke < cut {
			r.trimTo(cut)
		}
	}
	return events
}

// window materializes the retained readings with Time in [start, end)
// into the recognizer's window scratch. The history is time-sorted, so
// the window is one contiguous column range located by binary search;
// the []Reading records exist only for RecognizeWindow's benefit and
// are rebuilt per call (EPC and Doppler are zero — the history columns
// do not carry them and the pipeline reads neither). The returned slice
// is only valid until the next window call.
func (r *Recognizer) window(start, end time.Duration) []Reading {
	liveTimes := r.hist.Times[r.head:]
	lo := sort.Search(len(liveTimes), func(i int) bool { return liveTimes[i] >= start })
	hi := lo + sort.Search(len(liveTimes[lo:]), func(i int) bool { return liveTimes[lo+i] >= end })
	m := hi - lo
	if cap(r.winScratch) < m {
		r.winScratch = make([]Reading, m)
	}
	r.winScratch = r.winScratch[:m]
	for k := 0; k < m; k++ {
		at := r.head + lo + k
		r.winScratch[k] = Reading{
			TagIndex: int(r.hist.TagIndices[at]),
			Time:     r.hist.Times[at],
			Phase:    r.hist.Phases[at],
			RSS:      r.hist.RSS[at],
		}
	}
	return r.winScratch
}

// trimTo discards history before cut (aligned down to a frame
// boundary so the cache's frame grid never shifts): the history head
// advances and the columns compact in place with copy once two thirds
// of the backing arrays are dead, reusing the existing allocations
// instead of re-growing fresh slices per letter.
func (r *Recognizer) trimTo(cut time.Duration) {
	cut -= cut % r.seg.FrameLen
	if cut <= r.bufStart {
		return
	}
	liveTimes := r.hist.Times[r.head:]
	r.head += sort.Search(len(liveTimes), func(i int) bool { return liveTimes[i] >= cut })
	// Compact lazily: waiting until two thirds of the backing arrays are
	// dead trades a little resident memory for ~⅓ fewer steady-state
	// memmoves, which show up directly in the batch-ingest hot path.
	if 3*r.head > 2*r.hist.Len() {
		r.hist.compactTo(r.head)
		r.head = 0
	}
	r.bufStart = cut
	r.cache.trimTo(cut)
}

// finishLetter composes the pending strokes and resets for the next
// letter.
func (r *Recognizer) finishLetter(at time.Duration) []Event {
	span := obs.StartTimer(r.tel.grammar)
	ch, ok := ComposeLetter(r.pending)
	span.End()
	r.tel.letters.Inc()
	ev := Event{
		Kind:     LetterDeduced,
		At:       at,
		Letter:   ch,
		LetterOK: ok,
		Strokes:  r.pending,
	}
	// Trim old history so the buffer stays bounded, but keep several
	// seconds before the cut: the segmenter's adaptive thresholds need
	// real strokes in context, or quiet-period ripple right after a
	// letter would read as activity.
	r.trimTo(r.lastStroke - historyKeep)
	r.pending = nil
	return []Event{ev}
}
