package core

import (
	"errors"
	"fmt"

	"rfipad/internal/dsp"
)

// minCalibrationReads is the minimum per-tag sample count for a usable
// calibration (the paper interrogates each tag 100 times for Fig. 4/5;
// far fewer suffice for stable means).
const minCalibrationReads = 8

// biasFloor keeps the inverse-bias weighting finite for unnaturally
// quiet tags.
const biasFloor = 0.005

// maxDeadFraction is the largest share of the array that may be dead
// (unreadable during the static capture) before calibration refuses:
// past that, neighbor interpolation has too little live context and
// the disturbance image degrades into guesswork.
const maxDeadFraction = 0.25

// Calibration holds the per-tag statistics RFIPad learns from a static
// capture (no hand present): the mean phase θ̃_i that cancels tag
// diversity (Eq. 6–8) and the deviation bias b_i whose inverse weights
// out location diversity (Eq. 9–10). Calibration is environmental, not
// behavioural: the paper's "no training period" claim refers to user
// behaviour — this static capture is a one-off deployment step.
type Calibration struct {
	// MeanPhase is θ̃_i: the circular mean of each tag's static phase.
	MeanPhase []float64
	// Bias is b_i: each tag's static phase standard deviation.
	Bias []float64
	// TVRate is each tag's measured noise accumulation rate: the total
	// variation its *static* suppressed phase stream gains per sample.
	// The disturbance metric subtracts TVRate·n from a window's total
	// variation, so a tag sitting in heavy ambient multipath does not
	// masquerade as hand motion — the operational form of the paper's
	// deviation-bias weighting.
	TVRate []float64
	// Dead flags tags the static capture could not characterize (too
	// few reads: detached, detuned, occluded, or lost to collisions).
	// Dead tags carry zero weight; the disturbance image interpolates
	// their cells from live neighbors before binarization.
	Dead []bool
	// weights caches w_i of Eq. 9.
	weights []float64
}

// Calibrate computes the per-tag statistics from a static capture.
// Tags with fewer than minCalibrationReads reads are flagged dead
// rather than failing the whole calibration — a production array
// survives a detached or occluded tag. Calibration only errors when
// so much of the array is dead (over maxDeadFraction) that the
// disturbance image could not be trusted.
func Calibrate(static []Reading, numTags int) (*Calibration, error) {
	if numTags <= 0 {
		return nil, errors.New("core: calibrate: no tags")
	}
	series := byTag(static, numTags)
	c := &Calibration{
		MeanPhase: make([]float64, numTags),
		Bias:      make([]float64, numTags),
		TVRate:    make([]float64, numTags),
		Dead:      make([]bool, numTags),
		weights:   make([]float64, numTags),
	}
	var biasSum float64
	dead := 0
	for i, s := range series {
		if len(s) < minCalibrationReads {
			c.Dead[i] = true
			dead++
			continue
		}
		phases := make([]float64, len(s))
		for j, r := range s {
			phases[j] = r.Phase
		}
		c.MeanPhase[i] = dsp.CircularMean(phases)
		b := dsp.CircularStd(phases)
		if b < biasFloor {
			b = biasFloor
		}
		c.Bias[i] = b
		biasSum += b

		// Noise accumulation rate: run the same (fused) suppression,
		// unwrap, smoothing, and total variation the disturbance metric
		// uses over this static stream.
		un := dsp.UnwrapColumn(nil, phases, c.MeanPhase[i])
		c.TVRate[i] = dsp.SmoothedTotalVariation(un, disturbanceSmoothWidth) / float64(len(un)-1)
	}
	if float64(dead) > maxDeadFraction*float64(numTags) {
		return nil, fmt.Errorf("core: calibrate: %d of %d tags have < %d reads — grid too degraded",
			dead, numTags, minCalibrationReads)
	}
	for i := range c.weights {
		if !c.Dead[i] {
			c.weights[i] = c.Bias[i] / biasSum // Eq. 9 over the live population
		}
	}
	return c, nil
}

// CalibrationSnapshot is the serializable form of a Calibration: the
// measured per-tag statistics without the derived weights, which
// RestoreCalibration recomputes. It is the payload checkpointing
// persists across process restarts.
type CalibrationSnapshot struct {
	MeanPhase []float64 `json:"mean_phase"`
	Bias      []float64 `json:"bias"`
	TVRate    []float64 `json:"tv_rate"`
	Dead      []bool    `json:"dead"`
}

// Snapshot exports the calibration's measured state (deep copy).
func (c *Calibration) Snapshot() CalibrationSnapshot {
	return CalibrationSnapshot{
		MeanPhase: append([]float64(nil), c.MeanPhase...),
		Bias:      append([]float64(nil), c.Bias...),
		TVRate:    append([]float64(nil), c.TVRate...),
		Dead:      append([]bool(nil), c.Dead...),
	}
}

// RestoreCalibration rebuilds a Calibration from a snapshot,
// revalidating it as if it had just been measured: consistent lengths,
// finite statistics, positive bias on live tags, and the same
// dead-fraction bound Calibrate enforces. A snapshot that fails any
// check returns an error so the caller falls back to live calibration
// rather than recognizing against garbage.
func RestoreCalibration(s CalibrationSnapshot) (*Calibration, error) {
	n := len(s.MeanPhase)
	if n == 0 {
		return nil, errors.New("core: restore calibration: no tags")
	}
	if len(s.Bias) != n || len(s.TVRate) != n || len(s.Dead) != n {
		return nil, fmt.Errorf("core: restore calibration: inconsistent lengths (%d/%d/%d/%d)",
			n, len(s.Bias), len(s.TVRate), len(s.Dead))
	}
	c := &Calibration{
		MeanPhase: append([]float64(nil), s.MeanPhase...),
		Bias:      append([]float64(nil), s.Bias...),
		TVRate:    append([]float64(nil), s.TVRate...),
		Dead:      append([]bool(nil), s.Dead...),
		weights:   make([]float64, n),
	}
	var biasSum float64
	dead := 0
	for i := 0; i < n; i++ {
		if c.Dead[i] {
			dead++
			continue
		}
		if !isFinite(c.MeanPhase[i]) || !isFinite(c.Bias[i]) || !isFinite(c.TVRate[i]) {
			return nil, fmt.Errorf("core: restore calibration: tag %d has non-finite statistics", i)
		}
		if c.Bias[i] <= 0 {
			return nil, fmt.Errorf("core: restore calibration: tag %d has non-positive bias %v", i, c.Bias[i])
		}
		biasSum += c.Bias[i]
	}
	if float64(dead) > maxDeadFraction*float64(n) {
		return nil, fmt.Errorf("core: restore calibration: %d of %d tags dead — grid too degraded", dead, n)
	}
	for i := range c.weights {
		if !c.Dead[i] {
			c.weights[i] = c.Bias[i] / biasSum
		}
	}
	return c, nil
}

// DeadCount returns how many tags calibration flagged dead.
func (c *Calibration) DeadCount() int {
	n := 0
	for _, d := range c.Dead {
		if d {
			n++
		}
	}
	return n
}

// IsDead reports whether tag i was flagged dead (false for
// calibrations predating the flag).
func (c *Calibration) IsDead(i int) bool {
	return c.Dead != nil && i < len(c.Dead) && c.Dead[i]
}

// Weight returns w_i of Eq. 9 for tag i.
func (c *Calibration) Weight(i int) float64 { return c.weights[i] }

// NumTags returns the calibrated population size.
func (c *Calibration) NumTags() int { return len(c.MeanPhase) }

// UniformCalibration builds a calibration with zero mean offsets and
// equal weights — what the pipeline degenerates to when diversity
// suppression is disabled (the "without suppression" arm of Fig. 16).
func UniformCalibration(numTags int) *Calibration {
	c := &Calibration{
		MeanPhase: make([]float64, numTags),
		Bias:      make([]float64, numTags),
		TVRate:    make([]float64, numTags),
		Dead:      make([]bool, numTags),
		weights:   make([]float64, numTags),
	}
	for i := range c.weights {
		c.Bias[i] = 1
		c.weights[i] = 1 / float64(numTags)
	}
	return c
}
