package core

import (
	"errors"
	"fmt"

	"rfipad/internal/dsp"
)

// minCalibrationReads is the minimum per-tag sample count for a usable
// calibration (the paper interrogates each tag 100 times for Fig. 4/5;
// far fewer suffice for stable means).
const minCalibrationReads = 8

// biasFloor keeps the inverse-bias weighting finite for unnaturally
// quiet tags.
const biasFloor = 0.005

// Calibration holds the per-tag statistics RFIPad learns from a static
// capture (no hand present): the mean phase θ̃_i that cancels tag
// diversity (Eq. 6–8) and the deviation bias b_i whose inverse weights
// out location diversity (Eq. 9–10). Calibration is environmental, not
// behavioural: the paper's "no training period" claim refers to user
// behaviour — this static capture is a one-off deployment step.
type Calibration struct {
	// MeanPhase is θ̃_i: the circular mean of each tag's static phase.
	MeanPhase []float64
	// Bias is b_i: each tag's static phase standard deviation.
	Bias []float64
	// TVRate is each tag's measured noise accumulation rate: the total
	// variation its *static* suppressed phase stream gains per sample.
	// The disturbance metric subtracts TVRate·n from a window's total
	// variation, so a tag sitting in heavy ambient multipath does not
	// masquerade as hand motion — the operational form of the paper's
	// deviation-bias weighting.
	TVRate []float64
	// weights caches w_i of Eq. 9.
	weights []float64
}

// Calibrate computes the per-tag statistics from a static capture.
// Every tag must have at least minCalibrationReads reads.
func Calibrate(static []Reading, numTags int) (*Calibration, error) {
	if numTags <= 0 {
		return nil, errors.New("core: calibrate: no tags")
	}
	series := byTag(static, numTags)
	c := &Calibration{
		MeanPhase: make([]float64, numTags),
		Bias:      make([]float64, numTags),
		TVRate:    make([]float64, numTags),
		weights:   make([]float64, numTags),
	}
	var biasSum float64
	for i, s := range series {
		if len(s) < minCalibrationReads {
			return nil, fmt.Errorf("core: calibrate: tag %d has %d reads, need >= %d", i, len(s), minCalibrationReads)
		}
		phases := make([]float64, len(s))
		for j, r := range s {
			phases[j] = r.Phase
		}
		c.MeanPhase[i] = dsp.CircularMean(phases)
		b := dsp.CircularStd(phases)
		if b < biasFloor {
			b = biasFloor
		}
		c.Bias[i] = b
		biasSum += b

		// Noise accumulation rate: run the same smoothing + total
		// variation the disturbance metric uses over this static
		// stream.
		suppressed := make([]float64, len(phases))
		for j, p := range phases {
			suppressed[j] = dsp.Wrap(p - c.MeanPhase[i])
		}
		sm := dsp.MovingAverage(dsp.Unwrap(suppressed), disturbanceSmoothWidth)
		c.TVRate[i] = dsp.TotalVariation(sm) / float64(len(sm)-1)
	}
	for i := range c.weights {
		c.weights[i] = c.Bias[i] / biasSum // Eq. 9
	}
	return c, nil
}

// Weight returns w_i of Eq. 9 for tag i.
func (c *Calibration) Weight(i int) float64 { return c.weights[i] }

// NumTags returns the calibrated population size.
func (c *Calibration) NumTags() int { return len(c.MeanPhase) }

// UniformCalibration builds a calibration with zero mean offsets and
// equal weights — what the pipeline degenerates to when diversity
// suppression is disabled (the "without suppression" arm of Fig. 16).
func UniformCalibration(numTags int) *Calibration {
	c := &Calibration{
		MeanPhase: make([]float64, numTags),
		Bias:      make([]float64, numTags),
		TVRate:    make([]float64, numTags),
		weights:   make([]float64, numTags),
	}
	for i := range c.weights {
		c.Bias[i] = 1
		c.weights[i] = 1 / float64(numTags)
	}
	return c
}
