package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/dsp"
)

// synthStroke builds a capture where the hand sweeps over the tags in
// hot, giving each a phase excursion of the given amplitude, while all
// tags keep their per-tag centres and noise.
func synthStroke(numTags, reads int, centres, sigmas []float64, hot map[int]float64, seed int64) []Reading {
	rng := rand.New(rand.NewSource(seed))
	var out []Reading
	dur := 2 * time.Second
	for j := 0; j < reads; j++ {
		tm := time.Duration(float64(dur) * float64(j) / float64(reads))
		u := float64(j) / float64(reads)
		for i := 0; i < numTags; i++ {
			p := centres[i] + rng.NormFloat64()*sigmas[i]
			if amp, isHot := hot[i]; isHot {
				// A passing hand: a few oscillations within the window.
				p += amp * math.Sin(u*2*math.Pi*2.5)
			}
			out = append(out, Reading{
				TagIndex: i, Time: tm + time.Duration(i)*time.Millisecond,
				Phase: dsp.Wrap(p), RSS: -45,
			})
		}
	}
	return out
}

func TestDisturbanceHighlightsSweptColumn(t *testing.T) {
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.04)
	cal, err := Calibrate(synthStatic(n, 60, centres, sigmas, 3), n)
	if err != nil {
		t.Fatal(err)
	}
	// Hand sweeps column 2 (indices 2,7,12,17,22).
	hot := map[int]float64{2: 1.2, 7: 1.4, 12: 1.5, 17: 1.4, 22: 1.2}
	readings := synthStroke(n, 60, centres, sigmas, hot, 4)
	vals := DisturbanceMap(readings, cal, DisturbanceOptions{})
	// Every hot tag outscores every cold tag.
	minHot, maxCold := math.Inf(1), math.Inf(-1)
	for i, v := range vals {
		if _, isHot := hot[i]; isHot {
			minHot = math.Min(minHot, v)
		} else {
			maxCold = math.Max(maxCold, v)
		}
	}
	if minHot <= maxCold {
		t.Errorf("hot floor %v <= cold ceiling %v", minHot, maxCold)
	}
	// And Otsu cleanly extracts the column (Fig. 7c).
	mask := dsp.OtsuBinarize(vals)
	for i, m := range mask {
		if m != (i%5 == 2) {
			t.Errorf("tag %d foreground=%v", i, m)
		}
	}
}

func TestSuppressionBeatsNoneUnderLocationDiversity(t *testing.T) {
	// One noisy tag off the stroke would outshine the stroke without
	// inverse-bias weighting (Fig. 16's premise).
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.03)
	sigmas[14] = 0.5 // violently jittery tag at (2,4)
	static := synthStatic(n, 80, centres, sigmas, 5)
	cal, err := Calibrate(static, n)
	if err != nil {
		t.Fatal(err)
	}
	hot := map[int]float64{2: 1.0, 7: 1.2, 12: 1.3, 17: 1.2, 22: 1.0}
	readings := synthStroke(n, 60, centres, sigmas, hot, 6)

	full := DisturbanceMap(readings, cal, DisturbanceOptions{Suppression: SuppressFull})
	maskFull := dsp.OtsuBinarize(full)
	if maskFull[14] {
		t.Errorf("full suppression kept the jittery tag in the foreground")
	}
	for _, i := range []int{2, 7, 12, 17, 22} {
		if !maskFull[i] {
			t.Errorf("full suppression lost stroke tag %d", i)
		}
	}

	// Without weighting, the jittery tag's noise total-variation
	// rivals the stroke tags.
	none := DisturbanceMap(readings, cal, DisturbanceOptions{Suppression: SuppressMeanOnly})
	var coldMax float64
	for i, v := range none {
		if _, isHot := hot[i]; !isHot && v > coldMax {
			coldMax = v
		}
	}
	if none[14] < coldMax {
		t.Error("expected tag 14 to be the loudest cold tag without weighting")
	}
	ratioFull := full[12] / full[14]
	ratioNone := none[12] / none[14]
	if ratioFull <= ratioNone {
		t.Errorf("weighting should improve stroke/noise contrast: %v <= %v", ratioFull, ratioNone)
	}
}

func TestDisturbanceAccumulatorVariants(t *testing.T) {
	const n = 4
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.01)
	cal, err := Calibrate(synthStatic(n, 50, centres, sigmas, 7), n)
	if err != nil {
		t.Fatal(err)
	}
	// An oscillating disturbance nets out to ~zero but has large total
	// variation — the reason Eq. 10 must be read as total variation.
	hot := map[int]float64{1: 1.5}
	readings := synthStroke(n, 80, centres, sigmas, hot, 8)
	tv := DisturbanceMap(readings, cal, DisturbanceOptions{Accumulator: AccumTotalVariation})
	net := DisturbanceMap(readings, cal, DisturbanceOptions{Accumulator: AccumNetChange})
	if tv[1] < 5*net[1] {
		t.Errorf("oscillation: TV %v should dwarf net change %v", tv[1], net[1])
	}
}

func TestDisturbanceSparseTagScoresZero(t *testing.T) {
	cal := UniformCalibration(3)
	readings := []Reading{
		{TagIndex: 0, Time: 0, Phase: 1},
		{TagIndex: 1, Time: 0, Phase: 1},
		{TagIndex: 1, Time: time.Millisecond, Phase: 2},
		{TagIndex: 1, Time: 2 * time.Millisecond, Phase: 3},
	}
	vals := DisturbanceMap(readings, cal, DisturbanceOptions{})
	if vals[0] != 0 {
		t.Errorf("single-read tag scored %v", vals[0])
	}
	if vals[2] != 0 {
		t.Errorf("unread tag scored %v", vals[2])
	}
	if vals[1] <= 0 {
		t.Errorf("multi-read tag scored %v", vals[1])
	}
}

func TestDisturbanceHandlesWrapBoundary(t *testing.T) {
	// A tag whose centre sits at ~0 rad: raw phases alternate around
	// the 0/2π boundary. Mean subtraction + unwrap must not inflate
	// its score.
	const n = 2
	centres := []float64{0.02, 3.0}
	sigmas := []float64{0.03, 0.03}
	cal, err := Calibrate(synthStatic(n, 80, centres, sigmas, 9), n)
	if err != nil {
		t.Fatal(err)
	}
	readings := synthStatic(n, 80, centres, sigmas, 10) // still static
	// With noise-rate subtraction both static tags score ≈ 0; without
	// it, the boundary tag's score must not be inflated by 2π jumps.
	vals := DisturbanceMap(readings, cal, DisturbanceOptions{})
	for i, v := range vals {
		if v > 1 {
			t.Errorf("static tag %d scored %v after suppression", i, v)
		}
	}
	raw := DisturbanceMap(readings, cal, DisturbanceOptions{Suppression: SuppressMeanOnly})
	ratio := raw[0] / raw[1]
	if ratio > 3 || ratio < 1.0/3 {
		t.Errorf("boundary tag score %v vs %v (ratio %v)", raw[0], raw[1], ratio)
	}
}
