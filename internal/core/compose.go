package core

import (
	"math"

	"rfipad/internal/grammar"
	"rfipad/internal/stroke"
)

// StrokeObservation is one recognized stroke ready for letter
// composition: the motion plus its bounding box and weighted centroid
// in canvas coordinates.
type StrokeObservation struct {
	Motion stroke.Motion
	Box    stroke.Rect
	// CenterX, CenterY is the intensity-weighted centroid; zero values
	// fall back to the box centre.
	CenterX, CenterY float64
}

// normalizeToLetterBox re-expresses the stroke boxes relative to their
// union — the letter's own box — so they can be compared against the
// grammar's unit-square layouts.
func normalizeToLetterBox(obs []StrokeObservation) []grammar.Observed {
	if len(obs) == 0 {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, o := range obs {
		minX = math.Min(minX, o.Box.X0)
		minY = math.Min(minY, o.Box.Y0)
		maxX = math.Max(maxX, o.Box.X1)
		maxY = math.Max(maxY, o.Box.Y1)
	}
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	out := make([]grammar.Observed, len(obs))
	for i, o := range obs {
		out[i] = grammar.Observed{
			Motion: o.Motion,
			Box: stroke.R(
				(o.Box.X0-minX)/w, (o.Box.Y0-minY)/h,
				(o.Box.X1-minX)/w, (o.Box.Y1-minY)/h,
			),
		}
		if o.CenterX != 0 || o.CenterY != 0 {
			out[i].CenterX = (o.CenterX - minX) / w
			out[i].CenterY = (o.CenterY - minY) / h
			out[i].HasCenter = true
		}
	}
	return out
}

// ComposeLetter deduces the letter written as the given recognized
// stroke sequence (§III-C2): stroke boxes are normalized to the
// letter's own extent and matched against the grammar, with fuzzy
// fallback for noisy direction estimates. ok is false when no letter
// has the observed stroke count.
func ComposeLetter(obs []StrokeObservation) (rune, bool) {
	return grammar.DeduceFuzzy(normalizeToLetterBox(obs))
}

// ComposeLetterStrict is the exact-sequence variant (no fuzzy
// fallback) used by the ablation benchmarks.
func ComposeLetterStrict(obs []StrokeObservation) (rune, bool) {
	return grammar.Deduce(normalizeToLetterBox(obs))
}
