package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/geo"
	"rfipad/internal/stroke"
)

// synthSweepRSS builds RSS series for a hand visiting the given tags in
// order: each visited tag shows a trough at its visit time; other tags
// stay flat.
func synthSweepRSS(grid Grid, order []int, visitGap time.Duration, seed int64) []Reading {
	rng := rand.New(rand.NewSource(seed))
	total := time.Duration(len(order)+2) * visitGap
	visit := map[int]time.Duration{}
	for k, i := range order {
		visit[i] = time.Duration(k+1) * visitGap
	}
	var out []Reading
	for tm := time.Duration(0); tm < total; tm += 25 * time.Millisecond {
		for i := 0; i < grid.NumTags(); i++ {
			rss := -45 + rng.NormFloat64()*0.4
			if at, ok := visit[i]; ok {
				d := (tm - at).Seconds() / 0.12
				rss -= 9 * math.Exp(-d*d)
			}
			out = append(out, Reading{TagIndex: i, Time: tm, RSS: rss, Phase: 1})
		}
	}
	return out
}

func TestFindTagTroughsOrdering(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	order := []int{2, 7, 12, 17, 22} // down column 2... visiting row 0 upward
	readings := synthSweepRSS(g, order, 300*time.Millisecond, 1)
	troughs := FindTagTroughs(readings, g.NumTags(), order)
	if len(troughs) != 5 {
		t.Fatalf("troughs = %d, want 5", len(troughs))
	}
	for k, tr := range troughs {
		if tr.TagIndex != order[k] {
			t.Errorf("trough %d on tag %d, want %d", k, tr.TagIndex, order[k])
		}
	}
	// Out-of-range indices are skipped silently.
	if got := FindTagTroughs(readings, g.NumTags(), []int{-1, 99}); len(got) != 0 {
		t.Errorf("bogus tags produced %d troughs", len(got))
	}
}

func TestEstimateDirectionUpAndDown(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	col := []int{2, 7, 12, 17, 22} // indices bottom row → top row
	// Visiting in this order means moving +y (upward).
	up := synthSweepRSS(g, col, 300*time.Millisecond, 2)
	dir, _, ok := EstimateDirection(up, g, col)
	if !ok {
		t.Fatal("no direction")
	}
	if dir.Y < 0.9 {
		t.Errorf("upward sweep direction = %v", dir)
	}
	// Reverse order → downward.
	rev := []int{22, 17, 12, 7, 2}
	down := synthSweepRSS(g, rev, 300*time.Millisecond, 3)
	dir, _, ok = EstimateDirection(down, g, col)
	if !ok {
		t.Fatal("no direction")
	}
	if dir.Y > -0.9 {
		t.Errorf("downward sweep direction = %v", dir)
	}
}

func TestEstimateDirectionDiagonal(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	diag := []int{0, 6, 12, 18, 24} // bottom-left → top-right
	readings := synthSweepRSS(g, diag, 250*time.Millisecond, 4)
	dir, troughs, ok := EstimateDirection(readings, g, diag)
	if !ok {
		t.Fatal("no direction")
	}
	want := geo.V2(1, 1).Unit()
	if directionAngleDiff(dir, want) > 0.3 {
		t.Errorf("diagonal direction = %v, want ≈%v", dir, want)
	}
	if len(troughs) < 3 {
		t.Errorf("troughs = %d", len(troughs))
	}
}

func TestEstimateDirectionInsufficientTroughs(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	// Flat RSS everywhere: no troughs, no direction.
	rng := rand.New(rand.NewSource(5))
	var readings []Reading
	for tm := time.Duration(0); tm < 2*time.Second; tm += 30 * time.Millisecond {
		for i := 0; i < 25; i++ {
			readings = append(readings, Reading{TagIndex: i, Time: tm, RSS: -45 + rng.NormFloat64()*0.3})
		}
	}
	if _, _, ok := EstimateDirection(readings, g, []int{2, 7, 12}); ok {
		t.Error("flat RSS should not yield a direction")
	}
}

func TestDirectionFor(t *testing.T) {
	tests := []struct {
		shape stroke.Shape
		dir   geo.Vec2
		want  stroke.Direction
	}{
		{stroke.Horizontal, geo.V2(1, 0), stroke.Forward},
		{stroke.Horizontal, geo.V2(-1, 0.1), stroke.Reverse},
		{stroke.Vertical, geo.V2(0, -1), stroke.Forward},
		{stroke.Vertical, geo.V2(0.1, 1), stroke.Reverse},
		{stroke.SlashUp, geo.V2(-0.7, -0.7), stroke.Forward},
		{stroke.SlashUp, geo.V2(0.7, 0.7), stroke.Reverse},
		{stroke.SlashDown, geo.V2(0.7, -0.7), stroke.Forward},
		{stroke.SlashDown, geo.V2(-0.7, 0.7), stroke.Reverse},
		{stroke.ArcLeft, geo.V2(0.2, -0.9), stroke.Forward},
		{stroke.ArcLeft, geo.V2(0.2, 0.9), stroke.Reverse},
		{stroke.ArcRight, geo.V2(-0.2, -0.9), stroke.Forward},
	}
	for _, tt := range tests {
		got, ok := DirectionFor(tt.shape, tt.dir)
		if !ok || got != tt.want {
			t.Errorf("DirectionFor(%v, %v) = %v,%v, want %v", tt.shape, tt.dir, got, ok, tt.want)
		}
	}
	if _, ok := DirectionFor(stroke.Click, geo.V2(1, 0)); ok {
		t.Error("click should have no direction")
	}
	if _, ok := DirectionFor(stroke.Horizontal, geo.V2(0, 0)); ok {
		t.Error("zero vector should fail")
	}
}

func TestArcEndpointsDirection(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	troughs := []TagTrough{
		{TagIndex: 23, At: 0},                      // (4,3): top
		{TagIndex: 10, At: 500 * time.Millisecond}, // (2,0): left middle
		{TagIndex: 3, At: time.Second},             // (0,3): bottom
	}
	dir, ok := arcEndpointsDirection(g, troughs)
	if !ok {
		t.Fatal("no direction")
	}
	if dir.Y >= 0 {
		t.Errorf("top→bottom arc direction = %v", dir)
	}
	if _, ok := arcEndpointsDirection(g, troughs[:1]); ok {
		t.Error("single trough should fail")
	}
	same := []TagTrough{{TagIndex: 5, At: 0}, {TagIndex: 5, At: time.Second}}
	if _, ok := arcEndpointsDirection(g, same); ok {
		t.Error("zero displacement should fail")
	}
}
