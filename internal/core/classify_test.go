package core

import (
	"strings"
	"testing"

	"rfipad/internal/stroke"
)

// maskFromArt parses a 5-line ASCII grid (top line = highest row, as
// MaskString renders) into a row-major mask.
func maskFromArt(t *testing.T, art string) (Grid, []bool) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(art), "\n")
	rows := len(lines)
	cols := len(strings.TrimSpace(lines[0]))
	g := Grid{Rows: rows, Cols: cols}
	mask := make([]bool, rows*cols)
	for li, line := range lines {
		line = strings.TrimSpace(line)
		if len(line) != cols {
			t.Fatalf("ragged art line %d", li)
		}
		r := rows - 1 - li
		for c, ch := range line {
			mask[r*cols+c] = ch == '#'
		}
	}
	return g, mask
}

func TestClassifyShapes(t *testing.T) {
	tests := []struct {
		name string
		art  string
		want stroke.Shape
	}{
		{"vertical-col2", `
			..#..
			..#..
			..#..
			..#..
			..#..`, stroke.Vertical},
		{"vertical-wobbly", `
			..#..
			..#..
			.##..
			.#...
			.#...`, stroke.Vertical},
		{"horizontal-row2", `
			.....
			.....
			#####
			.....
			.....`, stroke.Horizontal},
		{"slash-up", `
			....#
			...#.
			..#..
			.#...
			#....`, stroke.SlashUp},
		{"slash-down", `
			#....
			.#...
			..#..
			...#.
			....#`, stroke.SlashDown},
		{"arc-left", `
			.##..
			#....
			#....
			#....
			.##..`, stroke.ArcLeft},
		{"arc-right", `
			..##.
			....#
			....#
			....#
			..##.`, stroke.ArcRight},
		{"click-single", `
			.....
			.....
			..#..
			.....
			.....`, stroke.Click},
		{"click-blob", `
			.....
			.##..
			.#...
			.....
			.....`, stroke.Click},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, mask := maskFromArt(t, tt.art)
			res := ClassifyShape(g, nil, mask)
			if !res.Ok {
				t.Fatal("not ok")
			}
			if res.Shape != tt.want {
				t.Errorf("shape = %v, want %v\n%s", res.Shape, tt.want, MaskString(g, mask))
			}
		})
	}
}

func TestClassifyEmptyMask(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	res := ClassifyShape(g, nil, make([]bool, 25))
	if res.Ok {
		t.Error("empty mask should not classify")
	}
}

func TestClassifyBoxCoversStroke(t *testing.T) {
	g, mask := maskFromArt(t, `
		.....
		.....
		.....
		.....
		#####`)
	res := ClassifyShape(g, nil, mask)
	if res.Shape != stroke.Horizontal {
		t.Fatalf("shape = %v", res.Shape)
	}
	// A bottom-row stroke: box hugs y≈0 and spans x.
	if res.Box.Y1 > 0.4 {
		t.Errorf("box top = %v, want near bottom", res.Box.Y1)
	}
	if res.Box.X0 > 0.05 || res.Box.X1 < 0.95 {
		t.Errorf("box x = [%v,%v], want full span", res.Box.X0, res.Box.X1)
	}
}

func TestClassifyWeightsBreakArcTie(t *testing.T) {
	// A symmetric blob leans ⊂ or ⊃ depending on the intensity
	// weights, not just the mask.
	g := Grid{Rows: 5, Cols: 5}
	mask := make([]bool, 25)
	vals := make([]float64, 25)
	// Ring of cells with heavier left side.
	cells := map[int]float64{
		1 + 0*5: 1, 3 + 0*5: 1,
		0 + 1*5: 3, 0 + 2*5: 3, 0 + 3*5: 3,
		4 + 1*5: 1, 4 + 2*5: 1, 4 + 3*5: 1,
		1 + 4*5: 1, 3 + 4*5: 1,
	}
	for i, w := range cells {
		mask[i] = true
		vals[i] = w
	}
	res := ClassifyShape(g, vals, mask)
	if res.Shape != stroke.ArcLeft {
		t.Errorf("heavy-left ring = %v, want ⊂", res.Shape)
	}
}

func TestGridImageRendering(t *testing.T) {
	g := Grid{Rows: 2, Cols: 3}
	img := NewGridImage(g, []float64{0, 0.5, 1, 0.2, 0.9, 0.1})
	s := img.String()
	if len(strings.Split(s, "\n")) != 2 {
		t.Errorf("image string rows: %q", s)
	}
	mask := img.Binarize()
	if len(mask) != 6 {
		t.Errorf("mask len = %d", len(mask))
	}
	ms := MaskString(g, mask)
	if !strings.ContainsAny(ms, "#.") {
		t.Errorf("mask art = %q", ms)
	}
	// NewGridImage copies.
	vals := []float64{1, 2}
	img2 := NewGridImage(Grid{Rows: 1, Cols: 2}, vals)
	vals[0] = 99
	if img2.Vals[0] == 99 {
		t.Error("NewGridImage aliases input")
	}
}
