package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// equivPhase folds a raw phase value onto the reporting range [0, 2π).
func equivPhase(p float64) float64 {
	p = math.Mod(p, 2*math.Pi)
	if p < 0 {
		p += 2 * math.Pi
	}
	return p
}

// equivQuiet is a static prelude around the given per-tag base phases.
func equivQuiet(grid Grid, base []float64, to time.Duration, rng *rand.Rand) []Reading {
	n := grid.NumTags()
	var out []Reading
	for t := time.Duration(0); t < to; t += 10 * time.Millisecond {
		for i := 0; i < n; i++ {
			out = append(out, Reading{
				TagIndex: i,
				Time:     t + time.Duration(i)*time.Millisecond/10,
				Phase:    equivPhase(base[i] + rng.NormFloat64()*0.01),
				RSS:      -55,
			})
		}
	}
	return out
}

// equivStream builds a randomized reading stream for the batch/scalar
// equivalence test: a quiet carrier with motion-like phase bursts,
// plus the transport pathologies the recognizer must tolerate —
// local reordering, exact duplicates, very late readings, and
// out-of-range tag indices.
func equivStream(grid Grid, base []float64, secs int, rng *rand.Rand) []Reading {
	n := grid.NumTags()
	var out []Reading
	for t := time.Duration(0); t < time.Duration(secs)*time.Second; t += 10 * time.Millisecond {
		// Motion bursts: a smooth, strong phase disturbance sweeping a
		// few tags for ~600 ms, with quiet letter gaps between bursts.
		sec := t / time.Second
		burst := 0.0
		if sec%5 == 3 && t%(5*time.Second) < 3600*time.Millisecond {
			phase := float64(t%(5*time.Second)-3*time.Second) / float64(600*time.Millisecond)
			burst = 1.8 * math.Sin(phase*math.Pi)
		}
		for i := 0; i < n; i++ {
			p := base[i] + rng.NormFloat64()*0.01
			if burst != 0 && i%7 < 3 {
				p += burst
			}
			out = append(out, Reading{
				TagIndex: i,
				Time:     t + time.Duration(i)*time.Millisecond/10,
				Phase:    equivPhase(p),
				RSS:      -55 + rng.NormFloat64(),
			})
		}
	}
	// Local reordering: swap a few percent of adjacent pairs.
	for k := 0; k < len(out)/20; k++ {
		i := rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	// Exact duplicates of recent readings.
	for k := 0; k < len(out)/50; k++ {
		i := rng.Intn(len(out))
		out = append(out, out[i])
	}
	// Out-of-range tag indices (dropped by every path).
	for k := 0; k < 25; k++ {
		out = append(out, Reading{
			TagIndex: []int{-3, n, n + 17}[rng.Intn(3)],
			Time:     time.Duration(rng.Intn(secs*1000)) * time.Millisecond,
			Phase:    rng.Float64() * 2 * math.Pi,
			RSS:      -55,
		})
	}
	// Shuffle the appended tail into the body a little so duplicates
	// and strays arrive interleaved, not clumped at the end.
	tail := len(out) - len(out)/50 - 25
	for k := tail; k < len(out); k++ {
		i := tail/2 + rng.Intn(len(out)-tail/2)
		out[k], out[i] = out[i], out[k]
	}
	return out
}

// TestIngestBatchMatchesScalarIngest is the batch/scalar equivalence
// property: feeding a randomized stream through IngestBatch in
// arbitrary batch groupings emits exactly the same events — deeply
// equal, in the same order — as feeding it reading by reading, late
// and duplicate and out-of-range pathologies included. Run under
// -race in CI.
func TestIngestBatchMatchesScalarIngest(t *testing.T) {
	grid := Grid{Rows: 5, Cols: 5}
	rng := rand.New(rand.NewSource(11))
	base := make([]float64, grid.NumTags())
	for i := range base {
		base[i] = rng.Float64() * 6.28
	}
	static := equivQuiet(grid, base, 3*time.Second, rng)
	cal, err := Calibrate(static, grid.NumTags())
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 3; trial++ {
		stream := equivStream(grid, base, 20, rand.New(rand.NewSource(int64(100+trial))))
		grouping := rand.New(rand.NewSource(int64(trial)))

		recScalar := NewRecognizer(NewPipeline(grid, cal), nil)
		var wantEvents []Event
		for _, rd := range stream {
			wantEvents = append(wantEvents, recScalar.Ingest(rd)...)
		}
		wantEvents = append(wantEvents, recScalar.Flush(21*time.Second)...)

		recBatch := NewRecognizer(NewPipeline(grid, cal), nil)
		var gotEvents []Event
		var b ReadingBatch
		for i := 0; i < len(stream); {
			j := i + 1 + grouping.Intn(64)
			if j > len(stream) {
				j = len(stream)
			}
			b.Reset()
			for _, rd := range stream[i:j] {
				b.AppendReading(rd)
			}
			gotEvents = append(gotEvents, recBatch.IngestBatch(&b)...)
			i = j
		}
		gotEvents = append(gotEvents, recBatch.Flush(21*time.Second)...)

		if len(wantEvents) == 0 {
			t.Fatalf("trial %d: stream produced no events — equivalence test is vacuous", trial)
		}
		if !reflect.DeepEqual(gotEvents, wantEvents) {
			t.Fatalf("trial %d: batch events diverge from scalar events\nscalar: %d events\nbatch:  %d events\nscalar: %+v\nbatch:  %+v",
				trial, len(wantEvents), len(gotEvents), wantEvents, gotEvents)
		}
	}
}

// TestIngestBatchSingleElementMatchesIngest pins the scalar wrapper
// contract directly: Ingest(rd) and a one-element IngestBatch are the
// same operation.
func TestIngestBatchSingleElementMatchesIngest(t *testing.T) {
	grid := Grid{Rows: 5, Cols: 5}
	rng := rand.New(rand.NewSource(12))
	static := syntheticQuiet(grid, 0, 3*time.Second, 10*time.Millisecond, rng)
	cal, err := Calibrate(static, grid.NumTags())
	if err != nil {
		t.Fatal(err)
	}
	recA := NewRecognizer(NewPipeline(grid, cal), nil)
	recB := NewRecognizer(NewPipeline(grid, cal), nil)
	stream := syntheticQuiet(grid, 0, 12*time.Second, 10*time.Millisecond, rng)
	var b ReadingBatch
	for _, rd := range stream {
		evA := recA.Ingest(rd)
		b.Reset()
		b.AppendReading(rd)
		evB := recB.IngestBatch(&b)
		if !reflect.DeepEqual(evA, evB) {
			t.Fatalf("reading at %v: Ingest events %+v, one-element IngestBatch events %+v", rd.Time, evA, evB)
		}
	}
	if recA.hist.Len() != recB.hist.Len() || recA.now != recB.now || recA.bufStart != recB.bufStart {
		t.Fatalf("recognizer state diverged: hist %d/%d now %v/%v bufStart %v/%v",
			recA.hist.Len(), recB.hist.Len(), recA.now, recB.now, recA.bufStart, recB.bufStart)
	}
}

// TestDuplicatePolicyFirstArrivalWins pins the duplicate-merge policy
// shared by the batch splitter and both recognizer ingest paths: when
// two readings of the same tag carry the same timestamp, the one that
// arrived first survives — deterministically, in every path.
func TestDuplicatePolicyFirstArrivalWins(t *testing.T) {
	mk := func(ms int, phase float64) Reading {
		return Reading{TagIndex: 0, Time: time.Duration(ms) * time.Millisecond, Phase: phase, RSS: -55}
	}
	// Arrival order: phase 1.0 first, conflicting phase 2.0 later —
	// with surrounding readings in several arrangements.
	arrangements := [][]Reading{
		{mk(10, 1.0), mk(10, 2.0)},
		{mk(10, 1.0), mk(20, 9.0), mk(10, 2.0)},
		{mk(20, 9.0), mk(10, 1.0), mk(10, 2.0), mk(10, 3.0)},
	}
	for i, rs := range arrangements {
		series := byTag(rs, 1)
		var got float64
		for _, rd := range series[0] {
			if rd.Time == 10*time.Millisecond {
				got = rd.Phase
			}
		}
		if got != 1.0 {
			t.Errorf("arrangement %d: byTag kept phase %v at t=10ms, want 1.0 (first arrival)", i, got)
		}
	}

	// Recognizer paths: scalar and columnar must keep the same survivor.
	cal := UniformCalibration(4)
	check := func(name string, ingest func(*Recognizer, []Reading)) {
		rec := NewRecognizer(NewPipeline(Grid{Rows: 2, Cols: 2}, cal), nil)
		ingest(rec, []Reading{mk(10, 1.0), mk(20, 9.0), mk(10, 2.0)})
		for i := 0; i < rec.hist.Len(); i++ {
			if rec.hist.Times[i] == 10*time.Millisecond && rec.hist.Phases[i] != 1.0 {
				t.Errorf("%s: kept phase %v at t=10ms, want 1.0 (first arrival)", name, rec.hist.Phases[i])
			}
		}
	}
	check("scalar", func(rec *Recognizer, rs []Reading) {
		for _, rd := range rs {
			rec.Ingest(rd)
		}
	})
	check("columnar", func(rec *Recognizer, rs []Reading) {
		var b ReadingBatch
		for _, rd := range rs {
			b.AppendReading(rd)
		}
		rec.IngestBatch(&b)
	})
}
