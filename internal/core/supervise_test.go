package core

import (
	"math"
	"testing"
	"time"

	"rfipad/internal/obs"
)

// staticCalibration measures a real calibration from a synthetic static
// capture so snapshot tests exercise the same state production uses.
func staticCalibration(t *testing.T, numTags int) *Calibration {
	t.Helper()
	var static []Reading
	for i := 0; i < numTags; i++ {
		for j := 0; j < 40; j++ {
			static = append(static, Reading{
				TagIndex: i,
				Time:     time.Duration(j) * 25 * time.Millisecond,
				Phase:    float64(i)*0.3 + 0.02*math.Sin(float64(j)),
				RSS:      -55,
			})
		}
	}
	cal, err := Calibrate(static, numTags)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrationSnapshotRoundTrip(t *testing.T) {
	cal := staticCalibration(t, 25)
	snap := cal.Snapshot()

	restored, err := RestoreCalibration(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumTags() != cal.NumTags() {
		t.Fatalf("restored %d tags, want %d", restored.NumTags(), cal.NumTags())
	}
	for i := 0; i < cal.NumTags(); i++ {
		if restored.MeanPhase[i] != cal.MeanPhase[i] || restored.Bias[i] != cal.Bias[i] ||
			restored.TVRate[i] != cal.TVRate[i] || restored.Dead[i] != cal.Dead[i] {
			t.Fatalf("tag %d statistics diverged after restore", i)
		}
		// Weights are derived, not persisted: the restore must recompute
		// the identical Eq. 9 weighting.
		if got, want := restored.Weight(i), cal.Weight(i); math.Abs(got-want) > 1e-15 {
			t.Fatalf("tag %d weight %v, want %v", i, got, want)
		}
	}

	// The snapshot is a deep copy: mutating it must not reach back into
	// the live calibration.
	snap.MeanPhase[0] = 99
	snap.Dead[1] = true
	if cal.MeanPhase[0] == 99 || cal.Dead[1] {
		t.Fatal("snapshot aliases the calibration's slices")
	}
}

func TestRestoreCalibrationRejectsGarbage(t *testing.T) {
	good := staticCalibration(t, 8).Snapshot()

	cases := map[string]func(s *CalibrationSnapshot){
		"empty":            func(s *CalibrationSnapshot) { *s = CalibrationSnapshot{} },
		"length mismatch":  func(s *CalibrationSnapshot) { s.Bias = s.Bias[:3] },
		"nan mean phase":   func(s *CalibrationSnapshot) { s.MeanPhase[2] = math.NaN() },
		"inf tv rate":      func(s *CalibrationSnapshot) { s.TVRate[0] = math.Inf(1) },
		"zero bias":        func(s *CalibrationSnapshot) { s.Bias[1] = 0 },
		"negative bias":    func(s *CalibrationSnapshot) { s.Bias[1] = -0.5 },
		"mostly dead grid": func(s *CalibrationSnapshot) { s.Dead[0], s.Dead[1], s.Dead[2] = true, true, true },
	}
	for name, mutate := range cases {
		s := CalibrationSnapshot{
			MeanPhase: append([]float64(nil), good.MeanPhase...),
			Bias:      append([]float64(nil), good.Bias...),
			TVRate:    append([]float64(nil), good.TVRate...),
			Dead:      append([]bool(nil), good.Dead...),
		}
		mutate(&s)
		if _, err := RestoreCalibration(s); err == nil {
			t.Errorf("%s: restore accepted a garbage snapshot", name)
		}
	}

	// Non-finite statistics on a dead tag are fine: the tag carries no
	// weight, so its numbers are never consulted.
	s := good
	s.Dead[4] = true
	s.MeanPhase[4] = math.NaN()
	if _, err := RestoreCalibration(s); err != nil {
		t.Errorf("dead tag's NaN rejected: %v", err)
	}
}

func TestSanitizerAdmit(t *testing.T) {
	reg := obs.NewRegistry()
	san := NewSanitizer(reg)
	good := Reading{TagIndex: 0, Time: 5 * time.Second, Phase: 1.2, RSS: -60}

	if !san.Admit(good, 5*time.Second) {
		t.Fatal("clean reading rejected")
	}

	cases := []struct {
		name   string
		rd     Reading
		newest time.Duration
		reason string
	}{
		{"nan phase", Reading{Time: 5 * time.Second, Phase: math.NaN(), RSS: -60}, 5 * time.Second, "phase"},
		{"+inf phase", Reading{Time: 5 * time.Second, Phase: math.Inf(1), RSS: -60}, 5 * time.Second, "phase"},
		{"rss too low", Reading{Time: 5 * time.Second, Phase: 1, RSS: -150}, 5 * time.Second, "rss"},
		{"rss positive", Reading{Time: 5 * time.Second, Phase: 1, RSS: 3}, 5 * time.Second, "rss"},
		{"clock regression", Reading{Time: time.Second, Phase: 1, RSS: -60}, 10 * time.Second, "time_regression"},
	}
	for _, tc := range cases {
		before := reg.Snapshot().Value("readings_rejected_total", obs.L("reason", tc.reason))
		if san.Admit(tc.rd, tc.newest) {
			t.Errorf("%s: admitted", tc.name)
			continue
		}
		after := reg.Snapshot().Value("readings_rejected_total", obs.L("reason", tc.reason))
		if after != before+1 {
			t.Errorf("%s: readings_rejected_total{reason=%q} = %v, want %v", tc.name, tc.reason, after, before+1)
		}
	}

	// Within the duplicate window: modest regression is reordering, not
	// a broken clock, and passes through to the recognizer's dedup.
	if !san.Admit(Reading{Time: 9500 * time.Millisecond, Phase: 1, RSS: -60}, 10*time.Second) {
		t.Error("reading inside the regression window rejected")
	}
	// Before any delivery (newest == 0) nothing can regress.
	if !san.Admit(Reading{Time: 0, Phase: 1, RSS: -60}, 0) {
		t.Error("first reading rejected")
	}
}

func TestRecognizerSkipTo(t *testing.T) {
	cal := UniformCalibration(25)
	grid := Grid{Rows: 5, Cols: 5}

	rec := NewRecognizer(NewPipeline(grid, cal), nil)
	frame := NewSegmenter().FrameLen

	// SkipTo aligns down to a frame boundary and moves the cursor.
	target := 7*time.Second + frame/3
	rec.SkipTo(target)
	want := target - target%frame
	if got := rec.FrameCursor(); got != want {
		t.Fatalf("FrameCursor after SkipTo = %v, want %v", got, want)
	}

	// Ingesting a reading older than the cursor must not rewind it.
	rec.Ingest(Reading{TagIndex: 0, Time: want - 2*frame, Phase: 1, RSS: -60})
	if got := rec.FrameCursor(); got < want {
		t.Fatalf("late reading rewound cursor to %v", got)
	}

	// SkipTo after ingest started is a no-op: it only positions a fresh
	// recognizer (the restore path), never discards live state.
	rec2 := NewRecognizer(NewPipeline(grid, cal), nil)
	rec2.Ingest(Reading{TagIndex: 0, Time: frame, Phase: 1, RSS: -60})
	cursorBefore := rec2.FrameCursor()
	rec2.SkipTo(time.Minute)
	if got := rec2.FrameCursor(); got != cursorBefore {
		t.Fatalf("SkipTo moved a live recognizer from %v to %v", cursorBefore, got)
	}
}
