package core

// LargestComponent reduces a foreground mask to its largest
// 8-connected component. A hand stroke disturbs a contiguous run of
// tags, while interference flicker (arm shadowing in the LOS
// deployment, multipath pops) lights isolated cells; dropping all but
// the dominant component keeps the stroke and discards the specks.
// Ties are broken by the summed cell weight (vals may be nil for
// uniform weights). The input mask is not modified.
func LargestComponent(grid Grid, mask []bool, vals []float64) []bool {
	n := grid.NumTags()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var compWeight []float64
	var compSize []int

	var stack []int
	for start := 0; start < n; start++ {
		if !mask[start] || labels[start] >= 0 {
			continue
		}
		id := len(compWeight)
		compWeight = append(compWeight, 0)
		compSize = append(compSize, 0)
		stack = append(stack[:0], start)
		labels[start] = id
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			compSize[id]++
			w := 1.0
			if vals != nil && vals[cur] > 0 {
				w = vals[cur]
			}
			compWeight[id] += w
			r, c := grid.RowCol(cur)
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= grid.Rows || nc < 0 || nc >= grid.Cols {
						continue
					}
					ni := nr*grid.Cols + nc
					if mask[ni] && labels[ni] < 0 {
						labels[ni] = id
						stack = append(stack, ni)
					}
				}
			}
		}
	}
	if len(compWeight) <= 1 {
		out := make([]bool, n)
		copy(out, mask)
		return out
	}
	best := 0
	for id := 1; id < len(compWeight); id++ {
		if compSize[id] > compSize[best] ||
			(compSize[id] == compSize[best] && compWeight[id] > compWeight[best]) {
			best = id
		}
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = labels[i] == best
	}
	return out
}
