package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/dsp"
)

// synthLetterStream builds a stream with quiet–stroke–quiet–stroke–…
// structure: during stroke intervals a moving subset of tags shows
// large phase excursions; elsewhere only noise.
func synthLetterStream(numTags int, strokes []Span, total time.Duration, centres, sigmas []float64, seed int64) []Reading {
	rng := rand.New(rand.NewSource(seed))
	var out []Reading
	for tm := time.Duration(0); tm < total; tm += 30 * time.Millisecond {
		inStroke := false
		var u float64
		for _, sp := range strokes {
			if tm >= sp.Start && tm < sp.End {
				inStroke = true
				u = float64(tm-sp.Start) / float64(sp.End-sp.Start)
				break
			}
		}
		for i := 0; i < numTags; i++ {
			p := centres[i] + rng.NormFloat64()*sigmas[i]
			if inStroke && i%5 == 2 { // the swept column
				p += 1.3 * math.Sin(u*2*math.Pi*2)
			}
			out = append(out, Reading{
				TagIndex: i, Time: tm + time.Duration(i)*200*time.Microsecond,
				Phase: dsp.Wrap(p), RSS: -45,
			})
		}
	}
	return out
}

func TestSegmenterFindsStrokes(t *testing.T) {
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.04)
	cal, err := Calibrate(synthStatic(n, 60, centres, sigmas, 11), n)
	if err != nil {
		t.Fatal(err)
	}
	truth := []Span{
		{Start: time.Second, End: 2200 * time.Millisecond},
		{Start: 3200 * time.Millisecond, End: 4 * time.Second},
	}
	total := 5 * time.Second
	readings := synthLetterStream(n, truth, total, centres, sigmas, 12)
	seg := NewSegmenter()
	spans := seg.Segment(readings, cal, 0, total)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2: %v", len(spans), spans)
	}
	for k, sp := range spans {
		// Boundaries within ~0.35 s of truth (window-level detection,
		// frame-level trimming).
		tol := 350 * time.Millisecond
		if d := sp.Start - truth[k].Start; d < -tol || d > tol {
			t.Errorf("span %d start %v vs truth %v", k, sp.Start, truth[k].Start)
		}
		if d := sp.End - truth[k].End; d < -tol || d > tol {
			t.Errorf("span %d end %v vs truth %v", k, sp.End, truth[k].End)
		}
		if sp.Duration() <= 0 {
			t.Errorf("span %d empty", k)
		}
	}
}

func TestSegmenterQuietStreamHasNoSpans(t *testing.T) {
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.05)
	cal, err := Calibrate(synthStatic(n, 60, centres, sigmas, 13), n)
	if err != nil {
		t.Fatal(err)
	}
	readings := synthLetterStream(n, nil, 4*time.Second, centres, sigmas, 14)
	spans := NewSegmenter().Segment(readings, cal, 0, 4*time.Second)
	if len(spans) != 0 {
		t.Errorf("quiet stream produced %d spans: %v", len(spans), spans)
	}
}

func TestSegmenterTraces(t *testing.T) {
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.04)
	cal, err := Calibrate(synthStatic(n, 60, centres, sigmas, 15), n)
	if err != nil {
		t.Fatal(err)
	}
	truth := []Span{{Start: time.Second, End: 2 * time.Second}}
	readings := synthLetterStream(n, truth, 3*time.Second, centres, sigmas, 16)
	seg := NewSegmenter()
	rms := seg.FrameRMSTrace(readings, cal, 0, 3*time.Second)
	if len(rms) != 30 {
		t.Fatalf("frames = %d, want 30", len(rms))
	}
	// RMS during the stroke beats RMS before it (Fig. 9 middle).
	quiet := dsp.Mean(rms[2:8])
	active := dsp.Mean(rms[12:18])
	if active <= quiet*1.5 {
		t.Errorf("active RMS %v vs quiet %v", active, quiet)
	}
	stds := seg.WindowStdTrace(readings, cal, 0, 3*time.Second)
	if len(stds) != 30-seg.WindowFrames+1 {
		t.Fatalf("std trace = %d", len(stds))
	}
	// std(RMS) small in the adjustment interval, large in the stroke
	// (Fig. 9 bottom), with the adaptive threshold between them.
	thre := seg.EffectiveThreshold(readings, cal, 0, 3*time.Second)
	if thre <= 0 {
		t.Fatalf("threshold = %v", thre)
	}
	if stds[2] > thre {
		t.Errorf("quiet window std = %v above threshold %v", stds[2], thre)
	}
	peak := 0.0
	for _, s := range stds {
		peak = math.Max(peak, s)
	}
	if peak < thre*2 {
		t.Errorf("stroke window std peak = %v, want well above threshold %v", peak, thre)
	}
}

func TestSegmenterEmptyInput(t *testing.T) {
	cal := UniformCalibration(5)
	seg := NewSegmenter()
	if got := seg.Segment(nil, cal, 0, time.Second); got != nil {
		t.Errorf("empty stream spans = %v", got)
	}
	if got := seg.Segment(nil, cal, 0, 0); got != nil {
		t.Errorf("zero-length capture spans = %v", got)
	}
	if got := seg.WindowStdTrace(nil, cal, 0, 100*time.Millisecond); got != nil {
		t.Errorf("short trace = %v", got)
	}
}
