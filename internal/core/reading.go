// Package core implements RFIPad's recognition pipeline — the paper's
// contribution (§III): diversity suppression of per-tag phase streams,
// the accumulative phase-difference disturbance metric, image-assisted
// motion recognition via Otsu thresholding, RSS-based direction
// estimation, stroke segmentation from continuous phase streams, and
// letter composition over the stroke grammar.
package core

import (
	"cmp"
	"slices"
	"sort"
	"time"

	"rfipad/internal/tagmodel"
)

// Reading is one tag report as delivered by the reader: the tuple of
// §II-B (ID, channel parameters, timestamp).
type Reading struct {
	// TagIndex is the tag's row-major index in the array.
	TagIndex int
	// EPC is the tag identifier from the air protocol.
	EPC tagmodel.EPC
	// Time is the read timestamp.
	Time time.Duration
	// Phase is the reported phase in [0, 2π).
	Phase float64
	// RSS is the reported signal strength in dBm.
	RSS float64
	// Doppler is the reported Doppler shift in Hz.
	Doppler float64
}

// Grid describes the tag-array geometry the pipeline maps indices onto.
type Grid struct {
	Rows, Cols int
}

// NumTags returns the number of tags in the grid.
func (g Grid) NumTags() int { return g.Rows * g.Cols }

// RowCol converts a row-major tag index to grid coordinates.
func (g Grid) RowCol(index int) (row, col int) {
	return index / g.Cols, index % g.Cols
}

// Norm returns the tag's position in normalized canvas coordinates
// (x right along columns, y up along rows, both in [0,1]).
func (g Grid) Norm(index int) (x, y float64) {
	r, c := g.RowCol(index)
	if g.Cols > 1 {
		x = float64(c) / float64(g.Cols-1)
	}
	if g.Rows > 1 {
		y = float64(r) / float64(g.Rows-1)
	}
	return x, y
}

// byTag splits readings into per-tag series sorted by time. Readings
// with out-of-range indices are dropped, as are same-timestamp
// duplicates of the same tag: a reader can physically interrogate a
// tag only once per instant, so duplicates are transport artifacts
// (reconnect replay overlap, a duplicated report frame) that would
// otherwise distort the accumulative phase difference's sample count.
func byTag(readings []Reading, numTags int) [][]Reading {
	return byTagInto(nil, readings, numTags)
}

// byTagInto is byTag reusing dst's outer and per-tag backing arrays
// when their capacities allow — the allocation-free path for callers
// that split windows repeatedly (DisturbanceScratch). Bucketing
// preserves arrival order and the per-tag sort is stable, so when two
// readings of the same tag share a timestamp the one that arrived first
// deterministically wins the dedup — the same first-arrival-wins policy
// the streaming recognizer applies when it drops a duplicate at ingest
// (an unstable sort here used to make the survivor arbitrary).
func byTagInto(dst [][]Reading, readings []Reading, numTags int) [][]Reading {
	if cap(dst) < numTags {
		dst = make([][]Reading, numTags)
	}
	out := dst[:numTags]
	for i := range out {
		out[i] = out[i][:0]
	}
	for _, r := range readings {
		if r.TagIndex < 0 || r.TagIndex >= numTags {
			continue
		}
		out[r.TagIndex] = append(out[r.TagIndex], r)
	}
	for i := range out {
		s := out[i]
		// Streams arrive time-sorted in the common case; checking is one
		// cheap pass and skips the sort's buffer shuffling entirely.
		if !slices.IsSortedFunc(s, func(a, b Reading) int { return cmp.Compare(a.Time, b.Time) }) {
			slices.SortStableFunc(s, func(a, b Reading) int { return cmp.Compare(a.Time, b.Time) })
		}
		out[i] = dedupSorted(s)
	}
	return out
}

// dedupSorted removes same-timestamp entries from one tag's time-sorted
// series in place, keeping the first of each run. Combined with the
// stable sort in byTagInto this means the earliest-arriving duplicate
// wins — matching the recognizer's ingest-time policy, so batch
// (RecognizeStream over raw captures) and streaming paths see the same
// surviving sample.
func dedupSorted(s []Reading) []Reading {
	if len(s) < 2 {
		return s
	}
	kept := s[:1]
	for _, r := range s[1:] {
		if r.Time == kept[len(kept)-1].Time {
			continue
		}
		kept = append(kept, r)
	}
	return kept
}

// window extracts the readings with Time in [start, end), preserving
// order. Capture streams are time-sorted in practice, and for sorted
// input the window is a contiguous run located by two binary searches —
// a subslice of the input, no allocation, no copying. Unsorted input
// falls back to the filtering copy.
func window(readings []Reading, start, end time.Duration) []Reading {
	sorted := true
	for i := 1; i < len(readings); i++ {
		if readings[i].Time < readings[i-1].Time {
			sorted = false
			break
		}
	}
	if sorted {
		lo := sort.Search(len(readings), func(i int) bool { return readings[i].Time >= start })
		hi := lo + sort.Search(len(readings)-lo, func(i int) bool { return readings[lo+i].Time >= end })
		return readings[lo:hi:hi]
	}
	var out []Reading
	for _, r := range readings {
		if r.Time >= start && r.Time < end {
			out = append(out, r)
		}
	}
	return out
}
