package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rfipad/internal/dsp"
	"rfipad/internal/tagmodel"
)

// synthStatic builds a static capture: each tag's phase sits at its own
// centre with its own jitter — tag diversity plus deviation bias.
func synthStatic(numTags, reads int, centres, sigmas []float64, seed int64) []Reading {
	rng := rand.New(rand.NewSource(seed))
	var out []Reading
	for j := 0; j < reads; j++ {
		for i := 0; i < numTags; i++ {
			out = append(out, Reading{
				TagIndex: i,
				EPC:      tagmodel.MakeEPC(i),
				Time:     time.Duration(j*40+i) * time.Millisecond,
				Phase:    dsp.Wrap(centres[i] + rng.NormFloat64()*sigmas[i]),
				RSS:      -45,
			})
		}
	}
	return out
}

func evenCentres(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = dsp.Wrap(float64(i) * 2.39996) // golden-angle spread over the circle
	}
	return c
}

func constSigmas(n int, s float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestCalibrateRecoversCentresAndBias(t *testing.T) {
	const n = 25
	centres := evenCentres(n)
	sigmas := constSigmas(n, 0.03)
	sigmas[7] = 0.20 // one jittery tag (location diversity)
	cal, err := Calibrate(synthStatic(n, 100, centres, sigmas, 1), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		diff := math.Abs(dsp.WrapSigned(cal.MeanPhase[i] - centres[i]))
		if diff > 0.05 {
			t.Errorf("tag %d mean off by %v", i, diff)
		}
	}
	if cal.Bias[7] < 0.12 {
		t.Errorf("jittery tag bias = %v, want ≈0.2", cal.Bias[7])
	}
	// Eq. 9: weights sum to 1, and the jittery tag carries the largest.
	var sum float64
	maxI := 0
	for i := 0; i < n; i++ {
		sum += cal.Weight(i)
		if cal.Weight(i) > cal.Weight(maxI) {
			maxI = i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if maxI != 7 {
		t.Errorf("largest weight on tag %d, want 7", maxI)
	}
	if cal.NumTags() != n {
		t.Errorf("NumTags = %d", cal.NumTags())
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, 0); err == nil {
		t.Error("zero tags should error")
	}
	// A tag with too few reads errors.
	readings := synthStatic(3, 100, evenCentres(3), constSigmas(3, 0.03), 2)
	var thin []Reading
	for _, r := range readings {
		if r.TagIndex == 2 && r.Time > 200*time.Millisecond {
			continue
		}
		thin = append(thin, r)
	}
	// Remove most of tag 2's reads.
	var sparse []Reading
	kept := 0
	for _, r := range thin {
		if r.TagIndex == 2 {
			if kept >= minCalibrationReads-1 {
				continue
			}
			kept++
		}
		sparse = append(sparse, r)
	}
	if _, err := Calibrate(sparse, 3); err == nil {
		t.Error("starved tag should error")
	}
}

func TestUniformCalibration(t *testing.T) {
	c := UniformCalibration(10)
	for i := 0; i < 10; i++ {
		if c.MeanPhase[i] != 0 {
			t.Error("uniform calibration should have zero means")
		}
		if math.Abs(c.Weight(i)-0.1) > 1e-12 {
			t.Errorf("weight %d = %v", i, c.Weight(i))
		}
	}
}

func TestGridHelpers(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	if g.NumTags() != 25 {
		t.Errorf("NumTags = %d", g.NumTags())
	}
	r, c := g.RowCol(12)
	if r != 2 || c != 2 {
		t.Errorf("RowCol(12) = %d,%d", r, c)
	}
	x, y := g.Norm(12)
	if x != 0.5 || y != 0.5 {
		t.Errorf("Norm(12) = %v,%v", x, y)
	}
	x, y = g.Norm(0)
	if x != 0 || y != 0 {
		t.Errorf("Norm(0) = %v,%v", x, y)
	}
	x, y = g.Norm(24)
	if x != 1 || y != 1 {
		t.Errorf("Norm(24) = %v,%v", x, y)
	}
	// Degenerate single-row/col grids do not divide by zero.
	g1 := Grid{Rows: 1, Cols: 1}
	if x, y := g1.Norm(0); x != 0 || y != 0 {
		t.Errorf("1×1 Norm = %v,%v", x, y)
	}
}

func TestByTagDropsOutOfRange(t *testing.T) {
	rs := []Reading{
		{TagIndex: 0, Time: 2 * time.Millisecond},
		{TagIndex: 0, Time: time.Millisecond},
		{TagIndex: 5, Time: 0},
		{TagIndex: -1, Time: 0},
	}
	series := byTag(rs, 3)
	if len(series[0]) != 2 {
		t.Errorf("tag 0 series = %d", len(series[0]))
	}
	if series[0][0].Time > series[0][1].Time {
		t.Error("series not time-sorted")
	}
	if len(series[1])+len(series[2]) != 0 {
		t.Error("phantom readings")
	}
}
