package core

import (
	"math"
	"sync"
	"time"
)

// ReadingBatch is the columnar (struct-of-arrays) form of a run of
// readings: four parallel slices, one per hot field, indexed together.
// The ingest path moves batches of readings as columns end to end —
// decode, sanitize, shard mailbox, recognizer — so the per-reading cost
// is a few column writes instead of a 64-byte struct copy, and the
// recognizer's bulk append degenerates to four copy calls.
//
// EPC and Doppler are deliberately absent: nothing downstream of decode
// reads them (the pipeline keys on TagIndex and consumes Time, Phase,
// RSS), so carrying them would only dilute the cache lines the hot loop
// walks.
//
// The zero value is an empty batch. Batches are append-only between
// Resets; the backing arrays are retained across Reset so a reused
// batch reaches its high-water capacity once and then allocates
// nothing.
type ReadingBatch struct {
	// Times holds each reading's timestamp. The other columns are
	// parallel to it.
	Times []time.Duration
	// Phases holds the reported phases in [0, 2π).
	Phases []float64
	// RSS holds the reported signal strengths in dBm.
	RSS []float64
	// TagIndices holds each reading's row-major tag index. Indices that
	// cannot be represented in an int32 are stored as -1, which every
	// consumer already treats as out-of-range (the scalar path drops
	// such readings too — a grid cannot have 2³¹ tags).
	TagIndices []int32
}

// Len returns the number of readings in the batch.
func (b *ReadingBatch) Len() int { return len(b.Times) }

// Reset empties the batch, keeping the backing arrays for reuse.
func (b *ReadingBatch) Reset() {
	b.Times = b.Times[:0]
	b.Phases = b.Phases[:0]
	b.RSS = b.RSS[:0]
	b.TagIndices = b.TagIndices[:0]
}

// Append adds one reading from its hot fields.
func (b *ReadingBatch) Append(t time.Duration, phase, rss float64, tag int32) {
	b.Times = append(b.Times, t)
	b.Phases = append(b.Phases, phase)
	b.RSS = append(b.RSS, rss)
	b.TagIndices = append(b.TagIndices, tag)
}

// AppendReading adds one reading record, narrowing its tag index to the
// column type (out-of-int32-range indices become -1; see TagIndices).
func (b *ReadingBatch) AppendReading(rd Reading) {
	b.Append(rd.Time, rd.Phase, rd.RSS, NarrowTag(rd.TagIndex))
}

// NarrowTag converts a tag index to the column representation:
// out-of-int32-range indices become -1, which every consumer treats as
// out-of-range exactly as it treats the original index.
func NarrowTag(tag int) int32 {
	if tag < math.MinInt32 || tag > math.MaxInt32 {
		return -1
	}
	return int32(tag)
}

// Reading materializes reading i as a record. EPC and Doppler are zero
// — the columns do not carry them.
func (b *ReadingBatch) Reading(i int) Reading {
	return Reading{
		TagIndex: int(b.TagIndices[i]),
		Time:     b.Times[i],
		Phase:    b.Phases[i],
		RSS:      b.RSS[i],
	}
}

// Slice returns a view of readings [i, j) sharing this batch's backing
// arrays. The view must not be appended to.
func (b *ReadingBatch) Slice(i, j int) ReadingBatch {
	return ReadingBatch{
		Times:      b.Times[i:j:j],
		Phases:     b.Phases[i:j:j],
		RSS:        b.RSS[i:j:j],
		TagIndices: b.TagIndices[i:j:j],
	}
}

// AppendColumns bulk-appends parallel column runs (which must have
// equal lengths) — four copies, no per-element work. This is the
// fastest way to fill a batch from data that is already columnar.
func (b *ReadingBatch) AppendColumns(times []time.Duration, phases, rss []float64, tags []int32) {
	b.appendColumns(times, phases, rss, tags)
}

// appendColumns bulk-appends parallel column runs (which must have
// equal lengths) — four copies, no per-element work.
func (b *ReadingBatch) appendColumns(times []time.Duration, phases, rss []float64, tags []int32) {
	b.Times = append(b.Times, times...)
	b.Phases = append(b.Phases, phases...)
	b.RSS = append(b.RSS, rss...)
	b.TagIndices = append(b.TagIndices, tags...)
}

// insertAt opens one slot at live index i (relative to offset head) and
// stores the reading there, shifting the tail of every column up.
func (b *ReadingBatch) insertAt(head, i int, t time.Duration, phase, rss float64, tag int32) {
	b.Append(0, 0, 0, 0)
	at := head + i
	copy(b.Times[at+1:], b.Times[at:])
	copy(b.Phases[at+1:], b.Phases[at:])
	copy(b.RSS[at+1:], b.RSS[at:])
	copy(b.TagIndices[at+1:], b.TagIndices[at:])
	b.Times[at] = t
	b.Phases[at] = phase
	b.RSS[at] = rss
	b.TagIndices[at] = tag
}

// compactTo drops the first head readings in place, reusing the backing
// arrays.
func (b *ReadingBatch) compactTo(head int) {
	n := copy(b.Times, b.Times[head:])
	b.Times = b.Times[:n]
	b.Phases = b.Phases[:copy(b.Phases, b.Phases[head:])]
	b.RSS = b.RSS[:copy(b.RSS, b.RSS[head:])]
	b.TagIndices = b.TagIndices[:copy(b.TagIndices, b.TagIndices[head:])]
}

// batchPool recycles ReadingBatch buffers across the transport → engine
// → recognizer pipeline, so a steady stream settles into zero
// per-batch allocation regardless of how many batches are in flight.
var batchPool = sync.Pool{New: func() any { return new(ReadingBatch) }}

// GetBatch returns an empty batch from the pool. Return it with
// PutBatch once its readings have been consumed.
func GetBatch() *ReadingBatch {
	return batchPool.Get().(*ReadingBatch)
}

// PutBatch resets a batch and returns it to the pool. The caller must
// not touch the batch (or any Slice view of it) afterwards.
func PutBatch(b *ReadingBatch) {
	if b == nil {
		return
	}
	b.Reset()
	batchPool.Put(b)
}
