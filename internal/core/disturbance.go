package core

import (
	"math"

	"rfipad/internal/dsp"
)

// Suppression selects how much of the diversity-suppression machinery
// (§III-A2) is applied — the knobs behind the Fig. 16 comparison and
// the ablation benchmarks.
type Suppression int

// Suppression modes.
const (
	// SuppressFull applies both halves of §III-A2: θ̃_i mean
	// subtraction (tag diversity) and per-tag noise-rate subtraction
	// (location diversity). The subtraction is our operational form of
	// Eq. 9–10's inverse-bias weighting: it likewise "appropriately
	// weakens" the tags with larger deviation bias, but as a noise
	// floor removed from the accumulated variation rather than a
	// multiplicative distortion of the stroke's intensity profile.
	SuppressFull Suppression = iota + 1
	// SuppressMeanOnly subtracts the static mean but skips the
	// location-diversity compensation.
	SuppressMeanOnly
	// SuppressNone uses raw phases with no compensation — the
	// "without diversity suppression" arm of Fig. 16.
	SuppressNone
	// SuppressInverseWeight is the literal Eq. 10 form — divide each
	// tag's accumulated variation by w_i — kept for the ablation
	// benchmark comparing it against the subtractive form.
	SuppressInverseWeight
)

// Accumulator selects the reading of Eq. 10's sum for the ablation
// bench (DESIGN.md §5).
type Accumulator int

// Accumulator variants.
const (
	// AccumTotalVariation is Σ|θ'_{j+1}−θ'_j| — the reading consistent
	// with Fig. 7 and the default.
	AccumTotalVariation Accumulator = iota + 1
	// AccumNetChange is the literal telescoped sum θ'_M−θ'_1.
	AccumNetChange
)

// disturbanceSmoothWidth is the moving-average width applied to each
// tag's unwrapped phase stream before accumulation.
const disturbanceSmoothWidth = 3

// DisturbanceOptions tunes DisturbanceMap.
type DisturbanceOptions struct {
	// Suppression defaults to SuppressFull.
	Suppression Suppression
	// Accumulator defaults to AccumTotalVariation.
	Accumulator Accumulator
}

// DisturbanceMap computes I'_i (Eq. 10) for every tag from the readings
// of one stroke window: per tag, the phase stream is mean-subtracted
// (Eq. 8), unwrapped (§III-A3), accumulated, and divided by the tag's
// weight. The result has one entry per tag; tags with fewer than two
// reads in the window score zero.
func DisturbanceMap(readings []Reading, cal *Calibration, opts DisturbanceOptions) []float64 {
	return new(DisturbanceScratch).Map(readings, cal, opts)
}

// DisturbanceScratch owns every buffer one DisturbanceMap evaluation
// needs — the per-tag series split and the phase / unwrap / smoothing
// workspaces — so a hot caller evaluating windows repeatedly allocates
// nothing once the buffers reach their high-water marks. The zero
// value is ready. A scratch is not safe for concurrent use; the
// Pipeline keeps a sync.Pool of them.
type DisturbanceScratch struct {
	series [][]Reading
	phases []float64
	un     []float64
	out    []float64
}

// growFloats returns a slice of exactly length n, reusing buf's backing
// array when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Map is DisturbanceMap through this scratch's buffers. The returned
// slice is owned by the scratch and is invalidated by the next Map
// call — callers that retain it must copy (GridImage already does).
func (sc *DisturbanceScratch) Map(readings []Reading, cal *Calibration, opts DisturbanceOptions) []float64 {
	if opts.Suppression == 0 {
		opts.Suppression = SuppressFull
	}
	if opts.Accumulator == 0 {
		opts.Accumulator = AccumTotalVariation
	}
	n := cal.NumTags()
	sc.series = byTagInto(sc.series, readings, n)
	sc.out = growFloats(sc.out, n)
	out := sc.out
	for i := range out {
		out[i] = 0
	}
	for i, s := range sc.series {
		if cal.IsDead(i) {
			// An uncalibrated tag's sporadic reads would inject garbage;
			// its cell is interpolated from live neighbors downstream.
			continue
		}
		if len(s) < 2 {
			continue
		}
		sc.phases = growFloats(sc.phases, len(s))
		phases := sc.phases
		for j, r := range s {
			phases[j] = r.Phase
		}
		// θ'_ij = θ_ij − θ̃_i (Eq. 8), wrapped back onto the reporting
		// range, then unwrapped — fused into one column pass (a NaN mean
		// tells the kernel to skip the suppression, which is the
		// SuppressNone ablation arm).
		mean := math.NaN()
		if opts.Suppression != SuppressNone {
			mean = cal.MeanPhase[i]
		}
		sc.un = dsp.UnwrapColumn(sc.un, phases, mean)
		// Smooth before accumulating: measurement noise would otherwise
		// grow the total variation linearly with the read count, while
		// the hand's disturbance is smooth at the MAC's sampling rate.
		// The smoothed series is never materialized — the fused kernels
		// accumulate directly over the moving-average windows, exactly
		// reproducing the two-pass result.
		var acc float64
		if opts.Accumulator == AccumNetChange {
			if v := dsp.SmoothedNetChange(sc.un, disturbanceSmoothWidth); v >= 0 {
				acc = v
			} else {
				acc = -v
			}
		} else {
			acc = dsp.SmoothedTotalVariation(sc.un, disturbanceSmoothWidth)
		}
		switch opts.Suppression {
		case SuppressFull:
			// Subtract the tag's calibrated noise accumulation for a
			// window of this many samples; what remains is
			// hand-induced.
			acc -= cal.TVRate[i] * float64(len(s)-1)
			if acc < 0 {
				acc = 0
			}
		case SuppressInverseWeight:
			// I'_i = w_i⁻¹ · Σ … (Eq. 10 literal): quiet tags count
			// for more, jittery tags are damped.
			if w := cal.Weight(i); w > 0 {
				acc /= w * float64(n) // ×n keeps the scale read-count independent
			}
		default:
			// Mean-only and none keep uniform weighting.
		}
		out[i] = acc
	}
	return out
}
