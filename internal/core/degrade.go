package core

// Degraded-grid support: a production tag array loses cells — a tag
// detaches, detunes against a metal surface, or is occluded — and the
// paper's pipeline (§III-A3) silently renders those cells black, which
// splits a stroke's foreground in two and breaks shape classification.
// Calibration flags such tags dead (see Calibrate); before Otsu
// binarization the disturbance image fills each dead cell from its
// live neighbors so a stroke passing over the hole stays one connected
// bright region.

// InterpolateDead returns vals with every dead cell replaced by the
// mean of its live 4-neighbors (falling back to the live 8-neighbor
// ring when all edge-adjacent neighbors are dead too). Live cells are
// untouched; the input slice is not modified. A nil or all-false dead
// mask returns vals unchanged.
func InterpolateDead(grid Grid, vals []float64, dead []bool) []float64 {
	if dead == nil {
		return vals
	}
	any := false
	for i := range dead {
		if i < len(vals) && dead[i] {
			any = true
			break
		}
	}
	if !any {
		return vals
	}
	out := make([]float64, len(vals))
	copy(out, vals)
	for i := range vals {
		if i >= len(dead) || !dead[i] {
			continue
		}
		r, c := grid.RowCol(i)
		if v, ok := neighborMean(grid, vals, dead, r, c, false); ok {
			out[i] = v
		} else if v, ok := neighborMean(grid, vals, dead, r, c, true); ok {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
	return out
}

// neighborMean averages the live neighbors of (r, c): the 4-neighbor
// cross, or the full 8-neighbor ring when diagonal is set.
func neighborMean(grid Grid, vals []float64, dead []bool, r, c int, diagonal bool) (float64, bool) {
	var sum float64
	n := 0
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			if !diagonal && dr != 0 && dc != 0 {
				continue
			}
			nr, nc := r+dr, c+dc
			if nr < 0 || nr >= grid.Rows || nc < 0 || nc >= grid.Cols {
				continue
			}
			j := nr*grid.Cols + nc
			if j < len(dead) && dead[j] {
				continue
			}
			if j < len(vals) {
				sum += vals[j]
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
