package core

import (
	"math/rand"
	"testing"
	"time"
)

// syntheticQuiet produces a quiet (no-hand) reading stream covering
// [from, to): every tag reports each step with small phase noise around
// its own static mean.
func syntheticQuiet(grid Grid, from, to, step time.Duration, rng *rand.Rand) []Reading {
	n := grid.NumTags()
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.Float64() * 6.28
	}
	var out []Reading
	for t := from; t < to; t += step {
		for i := 0; i < n; i++ {
			out = append(out, Reading{
				TagIndex: i,
				Time:     t + time.Duration(i)*time.Millisecond/10,
				Phase:    base[i] + rng.NormFloat64()*0.01,
				RSS:      -55,
			})
		}
	}
	return out
}

// TestRecognizerTrimBoundsAndReusesBuffer pins the history-trim
// contract on a long quiet stream: the retained window stays bounded
// near historyKeep, every trim lands on a frame boundary (the cache's
// frame grid must never shift), and once the buffer reaches its
// high-water capacity, compaction reuses the backing array instead of
// re-growing a fresh one.
func TestRecognizerTrimBoundsAndReusesBuffer(t *testing.T) {
	grid := Grid{Rows: 5, Cols: 5}
	rng := rand.New(rand.NewSource(5))
	static := syntheticQuiet(grid, 0, 3*time.Second, 10*time.Millisecond, rng)
	cal, err := Calibrate(static, grid.NumTags())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecognizer(NewPipeline(grid, cal), nil)

	stream := syntheticQuiet(grid, 0, 60*time.Second, 10*time.Millisecond, rng)
	var capAt30 int
	for _, rd := range stream {
		rec.Ingest(rd)
		if capAt30 == 0 && rd.Time >= 30*time.Second {
			capAt30 = cap(rec.hist.Times)
		}
	}

	if rec.bufStart == 0 {
		t.Fatal("60 s of quiet stream never trimmed the buffer")
	}
	if rec.bufStart%rec.seg.FrameLen != 0 {
		t.Errorf("bufStart %v is not frame-aligned (frame %v)", rec.bufStart, rec.seg.FrameLen)
	}
	// The live window should hover near historyKeep; a couple of extra
	// seconds of slack covers trim cadence.
	live := rec.hist.Times[rec.head:]
	span := rec.now - rec.bufStart
	if limit := historyKeep + 4*time.Second; span > limit {
		t.Errorf("retained window %v exceeds %v", span, limit)
	}
	for _, at := range live {
		if at < rec.bufStart {
			t.Fatalf("live window holds reading at %v before bufStart %v", at, rec.bufStart)
		}
	}
	if got := cap(rec.hist.Times); got != capAt30 {
		t.Errorf("buffer capacity kept growing after warm-up: %d at 30s, %d at 60s — compaction is not reusing the backing array", capAt30, got)
	}

	// window() must agree with the trimmed state (end is exclusive, so
	// nudge past the newest reading).
	w := rec.window(rec.bufStart, rec.now+time.Millisecond)
	if len(w) != len(live) {
		t.Errorf("window over the full span returned %d readings, live window holds %d", len(w), len(live))
	}
}

// TestRecognizerTrimToAlignsAndCompacts drives trimTo directly: a cut
// inside the history advances the head, compacts once more than two
// thirds of the array is dead, and refuses to move backwards.
func TestRecognizerTrimToAlignsAndCompacts(t *testing.T) {
	grid := Grid{Rows: 5, Cols: 5}
	rng := rand.New(rand.NewSource(6))
	static := syntheticQuiet(grid, 0, 3*time.Second, 10*time.Millisecond, rng)
	cal, err := Calibrate(static, grid.NumTags())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecognizer(NewPipeline(grid, cal), nil)
	for _, rd := range syntheticQuiet(grid, 0, 10*time.Second, 10*time.Millisecond, rng) {
		rec.Ingest(rd)
	}

	rec.trimTo(6*time.Second + 50*time.Millisecond)
	if rec.bufStart != 6*time.Second {
		t.Errorf("cut not aligned down to a frame boundary: bufStart %v, want 6s", rec.bufStart)
	}
	if rec.head != 0 {
		// A cut past two thirds must have compacted.
		if 3*rec.head <= 2*rec.hist.Len() {
			t.Logf("head %d of %d retained without compaction", rec.head, rec.hist.Len())
		} else {
			t.Errorf("head %d of %d — compaction threshold missed", rec.head, rec.hist.Len())
		}
	}
	before := rec.bufStart
	rec.trimTo(2 * time.Second) // backwards: must be a no-op
	if rec.bufStart != before {
		t.Errorf("backwards trim moved bufStart from %v to %v", before, rec.bufStart)
	}
}
