package core

import (
	"math"
	"testing"
	"time"

	"rfipad/internal/stroke"
)

func TestInterpolateDeadFillsFromLiveNeighbors(t *testing.T) {
	g := Grid{Rows: 5, Cols: 5}
	vals := make([]float64, 25)
	// Bright vertical line through column 2.
	for r := 0; r < 5; r++ {
		vals[r*5+2] = 10
	}
	dead := make([]bool, 25)
	dead[2*5+2] = true // centre of the line
	vals[2*5+2] = 0    // dead cell scored nothing

	out := InterpolateDead(g, vals, dead)
	// Neighbors: up 10, down 10, left 0, right 0 → mean 5.
	if got := out[2*5+2]; math.Abs(got-5) > 1e-12 {
		t.Errorf("interpolated centre = %v, want 5", got)
	}
	// Live cells untouched, input not modified.
	if out[1*5+2] != 10 || vals[2*5+2] != 0 {
		t.Error("interpolation modified live cells or the input")
	}
}

func TestInterpolateDeadDiagonalFallback(t *testing.T) {
	g := Grid{Rows: 3, Cols: 3}
	vals := []float64{0, 0, 0, 0, 0, 0, 0, 0, 8}
	dead := make([]bool, 9)
	// Corner (0,0) dead with both 4-neighbors dead too: only the
	// diagonal (1,1) is live.
	dead[0], dead[1], dead[3] = true, true, true
	vals[4] = 6
	out := InterpolateDead(g, vals, dead)
	if out[0] != 6 {
		t.Errorf("diagonal fallback = %v, want 6", out[0])
	}
}

func TestInterpolateDeadNoOp(t *testing.T) {
	g := Grid{Rows: 2, Cols: 2}
	vals := []float64{1, 2, 3, 4}
	if got := InterpolateDead(g, vals, nil); &got[0] != &vals[0] {
		t.Error("nil dead mask should return the input unchanged")
	}
	if got := InterpolateDead(g, vals, make([]bool, 4)); &got[0] != &vals[0] {
		t.Error("all-live mask should return the input unchanged")
	}
}

func TestCalibrateFlagsDeadTag(t *testing.T) {
	const n = 25
	readings := synthStatic(n, 100, evenCentres(n), constSigmas(n, 0.03), 3)
	var degraded []Reading
	for _, r := range readings {
		if r.TagIndex == 7 {
			continue // tag 7 never reads: detached
		}
		degraded = append(degraded, r)
	}
	cal, err := Calibrate(degraded, n)
	if err != nil {
		t.Fatalf("one dead tag must not fail calibration: %v", err)
	}
	if !cal.IsDead(7) || cal.DeadCount() != 1 {
		t.Errorf("dead flags = %v (count %d), want tag 7 only", cal.Dead, cal.DeadCount())
	}
	if w := cal.Weight(7); w != 0 {
		t.Errorf("dead tag weight = %v, want 0", w)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += cal.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("live weights sum to %v, want 1", sum)
	}
}

func TestCalibrateTooDegraded(t *testing.T) {
	const n = 25
	readings := synthStatic(n, 100, evenCentres(n), constSigmas(n, 0.03), 4)
	var degraded []Reading
	for _, r := range readings {
		if r.TagIndex < 7 { // 7 of 25 dead = 28% > 25%
			continue
		}
		degraded = append(degraded, r)
	}
	if _, err := Calibrate(degraded, n); err == nil {
		t.Error("28% dead grid should fail calibration")
	}
}

func TestDisturbanceMapSkipsDeadTagReads(t *testing.T) {
	const n = 4
	cal := UniformCalibration(n)
	cal.Dead[1] = true
	// Tag 1 has sporadic garbage reads (an occluded tag flickering).
	var readings []Reading
	for j := 0; j < 20; j++ {
		readings = append(readings, Reading{TagIndex: 0, Time: time.Duration(j) * 10 * time.Millisecond, Phase: 0.1})
		readings = append(readings, Reading{TagIndex: 1, Time: time.Duration(j) * 10 * time.Millisecond, Phase: float64(j % 5)})
	}
	vals := DisturbanceMap(readings, cal, DisturbanceOptions{})
	if vals[1] != 0 {
		t.Errorf("dead tag scored %v, want 0 (interpolation happens downstream)", vals[1])
	}
}

func TestByTagDropsDuplicateTimestamps(t *testing.T) {
	rs := []Reading{
		{TagIndex: 0, Time: 10 * time.Millisecond, Phase: 1},
		{TagIndex: 0, Time: 20 * time.Millisecond, Phase: 2},
		{TagIndex: 0, Time: 10 * time.Millisecond, Phase: 1}, // replayed
		{TagIndex: 1, Time: 10 * time.Millisecond, Phase: 3}, // other tag, same instant: kept
	}
	series := byTag(rs, 2)
	if len(series[0]) != 2 {
		t.Errorf("tag 0 series = %d, want 2 after dedup", len(series[0]))
	}
	if len(series[1]) != 1 {
		t.Errorf("tag 1 series = %d, want 1", len(series[1]))
	}
}

func TestIngestToleratesDuplicatesAndReorder(t *testing.T) {
	cal := UniformCalibration(4)
	rec := NewRecognizer(NewPipeline(Grid{Rows: 2, Cols: 2}, cal), nil)
	mk := func(tag int, ms int) Reading {
		return Reading{TagIndex: tag, Time: time.Duration(ms) * time.Millisecond, Phase: 0.5}
	}
	rec.Ingest(mk(0, 10))
	rec.Ingest(mk(1, 30))
	rec.Ingest(mk(0, 20)) // late
	rec.Ingest(mk(1, 30)) // exact duplicate
	rec.Ingest(mk(0, 30)) // same instant, different tag: kept
	if rec.hist.Len() != 4 {
		t.Fatalf("buffer holds %d readings, want 4 (duplicate dropped)", rec.hist.Len())
	}
	for i := 1; i < rec.hist.Len(); i++ {
		if rec.hist.Times[i] < rec.hist.Times[i-1] {
			t.Fatal("buffer not time-sorted after out-of-order ingest")
		}
	}
	if rec.hist.TagIndices[1] != 0 || rec.hist.Times[1] != 20*time.Millisecond {
		t.Errorf("late reading not inserted in place: %+v", rec.hist)
	}
}

func TestRecognizeWindowInterpolatesDeadCell(t *testing.T) {
	// A synthetic vertical stroke on a 5×5 grid whose middle tag is
	// dead: readings sweep phase disturbance down column 2 while the
	// dead tag stays silent. The interpolated image must keep the
	// stroke a single vertical line.
	g := Grid{Rows: 5, Cols: 5}
	cal := UniformCalibration(g.NumTags())
	deadIdx := 2*5 + 2
	cal.Dead[deadIdx] = true

	var readings []Reading
	for j := 0; j < 100; j++ {
		t0 := time.Duration(j) * 10 * time.Millisecond
		for r := 0; r < 5; r++ {
			idx := r*5 + 2
			if idx == deadIdx {
				continue
			}
			// Each column-2 tag wobbles hard; the rest sit still.
			readings = append(readings, Reading{TagIndex: idx, Time: t0, Phase: float64(j%7) * 0.4})
		}
		for _, idx := range []int{0, 4, 20, 24, 6, 8} {
			readings = append(readings, Reading{TagIndex: idx, Time: t0, Phase: 0.02})
		}
	}
	p := NewPipeline(g, cal)
	res := p.RecognizeWindow(readings)
	if !res.Ok {
		t.Fatal("degraded window did not classify")
	}
	if res.Motion.Shape != stroke.Vertical {
		t.Errorf("shape = %v, want Vertical\nimage:\n%s\nmask:\n%s",
			res.Motion.Shape, res.Image.String(), MaskString(g, res.Mask))
	}
	if !res.Mask[deadIdx] {
		t.Errorf("dead cell not bridged into the foreground\nmask:\n%s", MaskString(g, res.Mask))
	}
}
