package core

import "rfipad/internal/obs"

// Recognition-stage names recorded under rfipad_stage_seconds. The
// five stages mirror §III's pipeline: stroke segmentation, the
// disturbance image, Otsu binarization + shape classification, RSS
// direction estimation, and letter composition against the grammar.
const (
	StageSegment     = "segment"
	StageDisturbance = "disturbance"
	StageClassify    = "classify"
	StageDirection   = "direction"
	StageGrammar     = "grammar"
)

const (
	stageMetric = "rfipad_stage_seconds"
	stageHelp   = "Per-stroke latency of each recognition stage."
)

// pipelineTel caches the per-window stage histograms and counters so
// RecognizeWindow never touches the registry's maps.
type pipelineTel struct {
	disturbance  *obs.Histogram
	classify     *obs.Histogram
	direction    *obs.Histogram
	windows      *obs.Counter
	interpolated *obs.Counter
}

func newPipelineTel(r *obs.Registry) *pipelineTel {
	r = obs.Or(r)
	return &pipelineTel{
		disturbance: r.Histogram(stageMetric, stageHelp, nil, obs.L("stage", StageDisturbance)),
		classify:    r.Histogram(stageMetric, stageHelp, nil, obs.L("stage", StageClassify)),
		direction:   r.Histogram(stageMetric, stageHelp, nil, obs.L("stage", StageDirection)),
		windows: r.Counter("rfipad_windows_total",
			"Stroke windows run through the recognition pipeline."),
		interpolated: r.Counter("rfipad_interpolated_cells_total",
			"Dead-tag cells filled from live neighbors across all windows."),
	}
}

// recognizerTel caches the streaming recognizer's ingest counters and
// stage histograms; Ingest runs once per tag report, so these must be
// straight atomic operations.
type recognizerTel struct {
	readings  *obs.Counter
	dupes     *obs.Counter
	late      *obs.Counter
	reordered *obs.Counter
	strokes   *obs.Counter
	letters   *obs.Counter
	segment   *obs.Histogram
	grammar   *obs.Histogram
}

func newRecognizerTel(r *obs.Registry) *recognizerTel {
	r = obs.Or(r)
	return &recognizerTel{
		readings: r.Counter("rfipad_readings_total",
			"Tag readings ingested by the streaming recognizer."),
		dupes: r.Counter("rfipad_readings_dropped_total",
			"Readings dropped before recognition, by reason.", obs.L("reason", "duplicate")),
		late: r.Counter("rfipad_readings_dropped_total",
			"Readings dropped before recognition, by reason.", obs.L("reason", "late")),
		reordered: r.Counter("rfipad_readings_reordered_total",
			"Out-of-order readings inserted back into time order."),
		strokes: r.Counter("rfipad_strokes_total",
			"Strokes recognized."),
		letters: r.Counter("rfipad_letters_total",
			"Letters deduced (including failed compositions)."),
		segment: r.Histogram(stageMetric, stageHelp, nil, obs.L("stage", StageSegment)),
		grammar: r.Histogram(stageMetric, stageHelp, nil, obs.L("stage", StageGrammar)),
	}
}
