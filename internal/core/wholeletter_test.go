package core

import (
	"testing"

	"rfipad/internal/grammar"
)

func TestTemplatesSelfConsistent(t *testing.T) {
	// Every letter's own rasterized template must be its best match —
	// the templates are mutually distinguishable at 5×5 resolution for
	// most of the alphabet; letters whose canonical renderings
	// genuinely collide at this resolution (same cells lit) are
	// tolerated as long as they are few.
	grid := Grid{Rows: 5, Cols: 5}
	c := NewWholeLetterClassifier(grid)
	collisions := 0
	for _, l := range grammar.Alphabet() {
		img := rasterizeLetter(grid, l)
		ch, score, ok := c.Match(img)
		if !ok {
			t.Fatalf("%q: degenerate template", l.Char)
		}
		if score < 0.5 {
			t.Errorf("%q: self-correlation %v too low", l.Char, score)
		}
		if ch != l.Char {
			collisions++
			t.Logf("%q best-matched %q (resolution collision)", l.Char, ch)
		}
	}
	if collisions > 6 {
		t.Errorf("%d template collisions; the alphabet is not separable", collisions)
	}
}

func TestMatchDegenerate(t *testing.T) {
	c := NewWholeLetterClassifier(Grid{Rows: 5, Cols: 5})
	if _, _, ok := c.Match(make([]float64, 25)); ok {
		t.Error("constant image should not match")
	}
}

func TestRankingOrdersByCorrelation(t *testing.T) {
	grid := Grid{Rows: 5, Cols: 5}
	c := NewWholeLetterClassifier(grid)
	l, _ := grammar.Lookup('L')
	img := rasterizeLetter(grid, l)
	ranking := c.Ranking(img)
	if len(ranking) != 26 {
		t.Fatalf("ranking size = %d", len(ranking))
	}
	if ranking[0] != 'L' {
		t.Errorf("top rank = %q, want L", ranking[0])
	}
}

func TestCompositeImageSumsSpans(t *testing.T) {
	cal := UniformCalibration(4)
	p := NewPipeline(Grid{Rows: 2, Cols: 2}, cal)
	readings := []Reading{
		{TagIndex: 0, Time: 0, Phase: 0.1},
		{TagIndex: 0, Time: 50e6, Phase: 1.1},
		{TagIndex: 0, Time: 100e6, Phase: 0.1},
		{TagIndex: 1, Time: 900e6, Phase: 0.2},
		{TagIndex: 1, Time: 950e6, Phase: 1.4},
		{TagIndex: 1, Time: 1000e6, Phase: 0.2},
	}
	spans := []Span{{Start: 0, End: 200e6}, {Start: 850e6, End: 1100e6}}
	img := p.CompositeImage(readings, spans)
	if img[0] <= 0 || img[1] <= 0 {
		t.Errorf("composite missing span contributions: %v", img)
	}
	if img[2] != 0 || img[3] != 0 {
		t.Errorf("untouched tags should be zero: %v", img)
	}
}
