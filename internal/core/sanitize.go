package core

import (
	"math"
	"time"

	"rfipad/internal/obs"
)

// Sanitizer is the ingest-boundary guard: it rejects readings no
// downstream stage could use — NaN/Inf phases, physically implausible
// RSSI, and timestamps regressing further than the transport's
// duplicate window — before they reach per-stream state. The
// recognizer tolerates modest reordering and exact duplicates on its
// own; the sanitizer exists for the pathological inputs (a corrupted
// frame that decoded "successfully", a reader with a broken clock)
// that would otherwise poison calibration means or segmentation
// statistics. Rejections count into readings_rejected_total by reason.
type Sanitizer struct {
	// MaxRegression is how far behind the newest delivered timestamp a
	// reading may arrive: the transport's resume overlap plus reorder
	// tolerance (default 1 s). Older readings are clock regressions,
	// not reordering.
	MaxRegression time.Duration
	// RSSMin/RSSMax bound plausible received signal strength in dBm
	// (defaults −120 and 0: passive-tag backscatter is always well
	// inside them).
	RSSMin, RSSMax float64

	phase *obs.Counter
	rss   *obs.Counter
	time  *obs.Counter
}

// NewSanitizer builds a sanitizer with default bounds, counting
// rejections into reg (nil = obs.Default()).
func NewSanitizer(reg *obs.Registry) *Sanitizer {
	r := obs.Or(reg)
	rejected := func(reason string) *obs.Counter {
		return r.Counter("readings_rejected_total",
			"Readings rejected at the ingest boundary, by reason.",
			obs.L("reason", reason))
	}
	return &Sanitizer{
		MaxRegression: time.Second,
		RSSMin:        -120,
		RSSMax:        0,
		phase:         rejected("phase"),
		rss:           rejected("rss"),
		time:          rejected("time_regression"),
	}
}

// Admit reports whether the reading is usable. newest is the stream's
// newest previously delivered timestamp (0 before any). A rejection is
// counted before returning false.
func (z *Sanitizer) Admit(rd Reading, newest time.Duration) bool {
	if !isFinite(rd.Phase) {
		z.phase.Inc()
		return false
	}
	if rd.RSS < z.RSSMin || rd.RSS > z.RSSMax {
		z.rss.Inc()
		return false
	}
	if newest > 0 && rd.Time < newest-z.MaxRegression {
		z.time.Inc()
		return false
	}
	return true
}

// AdmitColumns filters a columnar batch in place, keeping exactly the
// readings Admit would keep when the batch is delivered element by
// element: newest is the stream's newest previously delivered timestamp
// (0 before any) and advances over each admitted reading, so a
// regressing timestamp later in the batch is judged against the batch's
// own progress, just as the per-reading loop would. Rejections are
// counted by reason; admitted readings compact toward the front and the
// batch shrinks to hold only them.
func (z *Sanitizer) AdmitColumns(b *ReadingBatch, newest time.Duration) {
	times, phases, rss, tags := b.Times, b.Phases, b.RSS, b.TagIndices
	w := 0
	for i := range times {
		if !isFinite(phases[i]) {
			z.phase.Inc()
			continue
		}
		if rss[i] < z.RSSMin || rss[i] > z.RSSMax {
			z.rss.Inc()
			continue
		}
		t := times[i]
		if newest > 0 && t < newest-z.MaxRegression {
			z.time.Inc()
			continue
		}
		if t > newest {
			newest = t
		}
		if w != i {
			times[w] = t
			phases[w] = phases[i]
			rss[w] = rss[i]
			tags[w] = tags[i]
		}
		w++
	}
	b.Times = times[:w]
	b.Phases = phases[:w]
	b.RSS = rss[:w]
	b.TagIndices = tags[:w]
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
